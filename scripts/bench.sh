#!/usr/bin/env bash
# Runs the tracked benchmark suites and records ns/op, B/op and allocs/op
# as JSON, so the perf trajectory is visible per PR (CI uploads the
# BENCH_*.json files as artifacts):
#
#   BENCH_ROUTING.json  — routing and controller micro-benchmarks plus the
#                         Figure-4 sweep bench (tracked since PR 2)
#   BENCH_SCENARIO.json — the churn-sweep bench: the dynamic-network
#                         scenario engine end to end (tracked since PR 3)
#
# Usage: scripts/bench.sh [routing-output.json [scenario-output.json]]
#   BENCHTIME=200ms scripts/bench.sh   # quicker, noisier run
#   BENCHTIME=1x    scripts/bench.sh   # smoke (what CI records)
set -euo pipefail
cd "$(dirname "$0")/.."

routing_out="${1:-BENCH_ROUTING.json}"
scenario_out="${2:-BENCH_SCENARIO.json}"
benchtime="${BENCHTIME:-1s}"

# run_bench PATTERN OUTPUT — runs the root-package benchmarks matching
# PATTERN and records them as a JSON document in OUTPUT.
run_bench() {
  local pattern="$1" out="$2" tmp
  tmp="$(mktemp)"
  # shellcheck disable=SC2064
  trap "rm -f '$tmp'" RETURN
  go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 . | tee "$tmp" >&2

  {
    printf '{\n'
    printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "benchmarks": [\n'
    awk '
      /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        nsop = "null"; bop = "null"; allocs = "null"
        for (i = 3; i < NF; i++) {
          if ($(i+1) == "ns/op") nsop = $i
          if ($(i+1) == "B/op") bop = $i
          if ($(i+1) == "allocs/op") allocs = $i
        }
        if (sep != "") printf "%s\n", sep
        printf "    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", name, $2, nsop, bop, allocs
        sep = ","
      }
      END { printf "\n" }
    ' "$tmp"
    printf '  ]\n}\n'
  } > "$out"
  echo "wrote $out" >&2
}

run_bench 'BenchmarkRoutingN5$|BenchmarkAblationNShortest|BenchmarkAblationCSC|BenchmarkControllerSlot$|BenchmarkFigure4ParallelSweep' "$routing_out"
run_bench 'BenchmarkChurnSweep$' "$scenario_out"
