#!/usr/bin/env bash
# Runs the tracked benchmark suites and records ns/op, B/op and allocs/op
# as JSON, so the perf trajectory is visible per PR (CI uploads the
# BENCH_*.json files as artifacts):
#
#   BENCH_ROUTING.json  — routing and controller micro-benchmarks plus the
#                         Figure-4 sweep bench (tracked since PR 2)
#   BENCH_SCENARIO.json — the emulation fast-path benches: the churn sweep
#                         (scenario engine end to end, tracked since PR 3),
#                         one emulated second of the flaps scenario
#                         (tracked since PR 5), and the same second with
#                         the flight recorder + metrics sampling attached
#                         (BenchmarkMetricsOverhead — the ≤ 5% ns/op
#                         observability budget, tracked since PR 8)
#
# Before overwriting an output file, the previously committed numbers are
# kept and a delta table (old → new, with ratios) is printed, so a PR's
# perf effect is visible straight from the script output.
#
# Usage: scripts/bench.sh [routing-output.json [scenario-output.json]]
#   BENCHTIME=200ms scripts/bench.sh   # quicker, noisier run
#   BENCHTIME=1x    scripts/bench.sh   # smoke (what CI records)
set -euo pipefail
cd "$(dirname "$0")/.."

routing_out="${1:-BENCH_ROUTING.json}"
scenario_out="${2:-BENCH_SCENARIO.json}"
benchtime="${BENCHTIME:-1s}"

# run_bench PATTERN OUTPUT — runs the root-package benchmarks matching
# PATTERN and records them as a JSON document in OUTPUT. A pre-existing
# OUTPUT (the committed numbers) is diffed against the fresh run.
run_bench() {
  local pattern="$1" out="$2" tmp old
  tmp="$(mktemp)"
  old=""
  if [[ -f "$out" ]]; then
    old="$(mktemp)"
    cp "$out" "$old"
  fi
  # shellcheck disable=SC2064
  trap "rm -f '$tmp' ${old:+'$old'}" RETURN
  go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 . | tee "$tmp" >&2

  {
    printf '{\n'
    printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "benchmarks": [\n'
    awk '
      /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        nsop = "null"; bop = "null"; allocs = "null"
        for (i = 3; i < NF; i++) {
          if ($(i+1) == "ns/op") nsop = $i
          if ($(i+1) == "B/op") bop = $i
          if ($(i+1) == "allocs/op") allocs = $i
        }
        if (sep != "") printf "%s\n", sep
        printf "    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", name, $2, nsop, bop, allocs
        sep = ","
      }
      END { printf "\n" }
    ' "$tmp"
    printf '  ]\n}\n'
  } > "$out"
  echo "wrote $out" >&2
  if [[ -n "$old" ]]; then
    print_delta "$old" "$out" >&2
  fi
}

# print_delta OLD NEW — per-benchmark old → new table for ns/op and
# allocs/op, with improvement ratios (old/new: > 1 is faster/leaner).
print_delta() {
  awk '
    function load(file, dest,   line, name, ns, al) {
      while ((getline line < file) > 0) {
        if (line !~ /"name"/) continue
        name = line; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns_per_op":/, "", ns); sub(/[,}].*/, "", ns)
        al = line; sub(/.*"allocs_per_op":/, "", al); sub(/[,}].*/, "", al)
        dest[name] = ns "|" al
      }
      close(file)
    }
    function ratio(o, n) {
      if (o == "null" || n == "null" || n + 0 == 0) return "      -"
      return sprintf("%6.2fx", o / n)
    }
    BEGIN {
      load(ARGV[1], oldv)
      load(ARGV[2], newv)
      printf "\ndelta vs previously committed %s:\n", ARGV[2]
      printf "%-44s %14s %14s %8s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "speed", "old allocs", "new allocs", "allocs"
      n = 0
      for (name in newv) order[++n] = name
      # insertion sort: asort is gawk-only and CI runs mawk
      for (i = 2; i <= n; i++) {
        v = order[i]
        for (j = i - 1; j >= 1 && order[j] > v; j--) order[j+1] = order[j]
        order[j+1] = v
      }
      for (i = 1; i <= n; i++) {
        name = order[i]
        split(newv[name], nv, "|")
        if (!(name in oldv)) {
          printf "%-44s %14s %14s %8s %12s %12s %8s\n", name, "-", nv[1], "new", "-", nv[2], "new"
          continue
        }
        split(oldv[name], ov, "|")
        printf "%-44s %14s %14s %8s %12s %12s %8s\n", name, ov[1], nv[1], ratio(ov[1], nv[1]), ov[2], nv[2], ratio(ov[2], nv[2])
      }
      # Benchmarks present in the committed file but absent from this run
      # (renamed, removed, or filtered out by the pattern) must not vanish
      # silently from the report.
      m = 0
      for (name in oldv) if (!(name in newv)) gone[++m] = name
      for (i = 2; i <= m; i++) {
        v = gone[i]
        for (j = i - 1; j >= 1 && gone[j] > v; j--) gone[j+1] = gone[j]
        gone[j+1] = v
      }
      for (i = 1; i <= m; i++) {
        name = gone[i]
        split(oldv[name], ov, "|")
        printf "%-44s %14s %14s %8s %12s %12s %8s\n", name, ov[1], "-", "gone", ov[2], "-", "gone"
      }
    }
  ' "$1" "$2"
}

run_bench 'BenchmarkRoutingN5$|BenchmarkAblationNShortest|BenchmarkAblationCSC|BenchmarkControllerSlot$|BenchmarkControllerBatch$|BenchmarkFigure4ParallelSweep' "$routing_out"
run_bench 'BenchmarkChurnSweep$|BenchmarkChurnSweepSharded$|BenchmarkEmulationSecond$|BenchmarkEmulationSecondSharded$|BenchmarkMetricsOverhead$' "$scenario_out"
