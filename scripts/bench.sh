#!/usr/bin/env bash
# Runs the routing and controller micro-benchmarks plus the Figure-4 sweep
# bench and records ns/op, B/op and allocs/op in BENCH_ROUTING.json, so the
# hot-path perf trajectory is tracked from PR 2 onward.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=200ms scripts/bench.sh   # quicker, noisier run
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ROUTING.json}"
benchtime="${BENCHTIME:-1s}"
pattern='BenchmarkRoutingN5$|BenchmarkAblationNShortest|BenchmarkAblationCSC|BenchmarkControllerSlot$|BenchmarkFigure4ParallelSweep'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 . | tee "$tmp" >&2

{
  printf '{\n'
  printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      nsop = "null"; bop = "null"; allocs = "null"
      for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
      }
      if (sep != "") printf "%s\n", sep
      printf "    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", name, $2, nsop, bop, allocs
      sep = ","
    }
    END { printf "\n" }
  ' "$tmp"
  printf '  ]\n}\n'
} > "$out"
echo "wrote $out" >&2
