#!/usr/bin/env bash
# End-to-end smoke: builds every CLI, gives each a tiny run, and asserts
# exit codes plus output shape. This is the check that the six binaries
# stay wired together — flags parse, JSON envelopes keep their fields,
# figures actually produce samples, the fleet daemon serves and drains —
# independent of the unit suites.
#
# Usage: scripts/e2e.sh [bin-dir]
#   bin-dir defaults to a temporary directory that is removed on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

bindir="${1:-}"
if [[ -z "$bindir" ]]; then
  bindir="$(mktemp -d)"
  trap 'rm -rf "$bindir"' EXIT
fi

clis=(empower-sim empower-testbed empower-scenario empower-route empower-fuzz empower-fleet)

echo "== build (${clis[*]})" >&2
for c in "${clis[@]}"; do
  go build -o "$bindir/$c" "./cmd/$c"
done

# jq_check DESC FILE FILTER — asserts FILTER evaluates truthy on FILE.
jq_check() {
  local desc="$1" file="$2" filter="$3"
  if ! jq -e "$filter" "$file" > /dev/null; then
    echo "e2e: $desc: jq assertion failed: $filter" >&2
    echo "---- output ----" >&2
    cat "$file" >&2
    exit 1
  fi
}

echo "== empower-sim (figure 4, residential, 2 runs)" >&2
"$bindir/empower-sim" -fig 4 -topo residential -runs 2 -slots 300 -seed 1 -parallel 2 -json \
  > "$bindir/sim.json"
jq_check "empower-sim envelope" "$bindir/sim.json" \
  '.figure == "4" and .topo == "residential" and .seed == 1 and (.result | type == "object")'
jq_check "empower-sim samples" "$bindir/sim.json" \
  '.result.Samples | type == "object" and (keys | length) > 0'

echo "== empower-testbed (figure 10, 2 pairs, 5 emulated seconds)" >&2
"$bindir/empower-testbed" -fig 10 -duration 5 -pairs 2 -seed 1 -parallel 2 -json \
  > "$bindir/testbed.json"
jq_check "empower-testbed envelope" "$bindir/testbed.json" \
  '.figure == "10" and (.result | type == "object")'

echo "== empower-scenario (flaps, 2 runs, 2 schemes)" >&2
"$bindir/empower-scenario" -scenario examples/scenarios/flaps.json -runs 2 -seed 7 \
  -schemes EMPoWER,SP -json > "$bindir/scenario.json"
jq_check "empower-scenario envelope" "$bindir/scenario.json" \
  '.experiment == "churn-failover" and .seed == 7 and (.result | type == "object")'
jq_check "empower-scenario scheme rows" "$bindir/scenario.json" \
  '[.result.rows[].scheme] | contains(["EMPoWER", "SP"])'

echo "== empower-route (built-in Figure 1 example)" >&2
"$bindir/empower-route" -example -n 3 > "$bindir/route.out"
grep -q '^single-path:' "$bindir/route.out"
grep -q '^3-shortest:' "$bindir/route.out"
grep -q '^multipath combination' "$bindir/route.out"

echo "== empower-fuzz (3 scenarios)" >&2
"$bindir/empower-fuzz" -runs 3 -seed 1 -out "$bindir/fuzz-failures" > "$bindir/fuzz.out"
if [[ -d "$bindir/fuzz-failures" ]] && [[ -n "$(ls -A "$bindir/fuzz-failures" 2>/dev/null)" ]]; then
  echo "e2e: empower-fuzz wrote reproducers:" >&2
  ls "$bindir/fuzz-failures" >&2
  exit 1
fi

echo "== empower-fleet (daemon: submit, poll, results, SIGTERM drain)" >&2
fleet_port=18080
"$bindir/empower-fleet" -addr "127.0.0.1:$fleet_port" -wal "$bindir/fleet.wal" -quiet &
fleet_pid=$!
fleet_base="http://127.0.0.1:$fleet_port"
for _ in $(seq 1 100); do
  curl -sf "$fleet_base/healthz" > /dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$fleet_base/healthz" > /dev/null || { echo "e2e: empower-fleet never came up" >&2; exit 1; }

curl -sf "$fleet_base/sweeps" -d @examples/sweeps/quickstart.json > "$bindir/fleet-submit.json"
jq_check "empower-fleet submission" "$bindir/fleet-submit.json" \
  '.id == "sweep-000001" and .state == "pending" and .total == 15'
# A typo'd field must come back as a structured 400, not be silently run.
echo '{"scenario":{"name":"x"},"runz":3}' > "$bindir/fleet-bad.json"
curl -s "$fleet_base/sweeps" -d @"$bindir/fleet-bad.json" > "$bindir/fleet-reject.json"
jq_check "empower-fleet structured rejection" "$bindir/fleet-reject.json" \
  '.error.field == "runz" and .error.reason == "unknown field"'

for _ in $(seq 1 300); do
  state="$(curl -sf "$fleet_base/sweeps/sweep-000001" | jq -r .state)"
  [[ "$state" == "done" || "$state" == "failed" ]] && break
  sleep 0.2
done
curl -sf "$fleet_base/sweeps/sweep-000001" > "$bindir/fleet-status.json"
jq_check "empower-fleet sweep completion" "$bindir/fleet-status.json" \
  '.state == "done" and .completed == 15'
curl -sf "$fleet_base/sweeps/sweep-000001/results" > "$bindir/fleet-results.json"
jq_check "empower-fleet results shape" "$bindir/fleet-results.json" \
  '.scenario == "plc-flaps" and ([.rows[].scheme] | contains(["EMPoWER", "SP"]))'
curl -sf "$fleet_base/metrics" | grep -q '^fleet_reps_completed_total 15' \
  || { echo "e2e: empower-fleet /metrics misses the completed-replication counter" >&2; exit 1; }

kill -TERM "$fleet_pid"
if ! wait "$fleet_pid"; then
  echo "e2e: empower-fleet SIGTERM drain exited non-zero" >&2
  exit 1
fi

echo "e2e: all CLIs OK" >&2
