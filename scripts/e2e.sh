#!/usr/bin/env bash
# End-to-end smoke: builds every CLI, gives each a tiny run, and asserts
# exit codes plus output shape. This is the check that the five binaries
# stay wired together — flags parse, JSON envelopes keep their fields,
# figures actually produce samples — independent of the unit suites.
#
# Usage: scripts/e2e.sh [bin-dir]
#   bin-dir defaults to a temporary directory that is removed on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

bindir="${1:-}"
if [[ -z "$bindir" ]]; then
  bindir="$(mktemp -d)"
  trap 'rm -rf "$bindir"' EXIT
fi

clis=(empower-sim empower-testbed empower-scenario empower-route empower-fuzz)

echo "== build (${clis[*]})" >&2
for c in "${clis[@]}"; do
  go build -o "$bindir/$c" "./cmd/$c"
done

# jq_check DESC FILE FILTER — asserts FILTER evaluates truthy on FILE.
jq_check() {
  local desc="$1" file="$2" filter="$3"
  if ! jq -e "$filter" "$file" > /dev/null; then
    echo "e2e: $desc: jq assertion failed: $filter" >&2
    echo "---- output ----" >&2
    cat "$file" >&2
    exit 1
  fi
}

echo "== empower-sim (figure 4, residential, 2 runs)" >&2
"$bindir/empower-sim" -fig 4 -topo residential -runs 2 -slots 300 -seed 1 -parallel 2 -json \
  > "$bindir/sim.json"
jq_check "empower-sim envelope" "$bindir/sim.json" \
  '.figure == "4" and .topo == "residential" and .seed == 1 and (.result | type == "object")'
jq_check "empower-sim samples" "$bindir/sim.json" \
  '.result.Samples | type == "object" and (keys | length) > 0'

echo "== empower-testbed (figure 10, 2 pairs, 5 emulated seconds)" >&2
"$bindir/empower-testbed" -fig 10 -duration 5 -pairs 2 -seed 1 -parallel 2 -json \
  > "$bindir/testbed.json"
jq_check "empower-testbed envelope" "$bindir/testbed.json" \
  '.figure == "10" and (.result | type == "object")'

echo "== empower-scenario (flaps, 2 runs, 2 schemes)" >&2
"$bindir/empower-scenario" -scenario examples/scenarios/flaps.json -runs 2 -seed 7 \
  -schemes EMPoWER,SP -json > "$bindir/scenario.json"
jq_check "empower-scenario envelope" "$bindir/scenario.json" \
  '.experiment == "churn-failover" and .seed == 7 and (.result | type == "object")'
jq_check "empower-scenario scheme rows" "$bindir/scenario.json" \
  '[.result.rows[].scheme] | contains(["EMPoWER", "SP"])'

echo "== empower-route (built-in Figure 1 example)" >&2
"$bindir/empower-route" -example -n 3 > "$bindir/route.out"
grep -q '^single-path:' "$bindir/route.out"
grep -q '^3-shortest:' "$bindir/route.out"
grep -q '^multipath combination' "$bindir/route.out"

echo "== empower-fuzz (3 scenarios)" >&2
"$bindir/empower-fuzz" -runs 3 -seed 1 -out "$bindir/fuzz-failures" > "$bindir/fuzz.out"
if [[ -d "$bindir/fuzz-failures" ]] && [[ -n "$(ls -A "$bindir/fuzz-failures" 2>/dev/null)" ]]; then
  echo "e2e: empower-fuzz wrote reproducers:" >&2
  ls "$bindir/fuzz-failures" >&2
  exit 1
fi

echo "e2e: all CLIs OK" >&2
