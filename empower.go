// Package empower is the public API of the EMPoWER reproduction: a system
// for exploiting multiple paths over heterogeneous mediums (PLC + WiFi) in
// local networks, after "EMPoWER Hybrid Networks: Exploiting Multiple
// Paths over Wireless and ElectRical Mediums" (Henri, Vlachou, Herzen,
// Thiran — CoNEXT 2016).
//
// The facade re-exports the pieces a downstream user needs:
//
//   - building hybrid multigraphs (NewNetworkBuilder) or generating the
//     paper's random topologies (Residential, Enterprise, Testbed);
//   - the multipath routing protocol (FindRoutes, FindCombination);
//   - the distributed congestion controller (NewController);
//   - the packet-level emulation of the full EMPoWER node stack
//     (NewEmulation) including the layer-2.5 wire format;
//   - the centralized optimal baselines (OptimalRates) the paper compares
//     against.
//
// The Monte-Carlo sweeps behind every figure (internal/experiments) run
// on a deterministic parallel replication runner (internal/runner): the
// same base seed yields bit-identical figures at any worker count, so
// parallelism is purely a wall-clock knob (-parallel on the cmd/
// binaries).
//
// See examples/ for runnable walkthroughs and DESIGN.md for the map from
// paper sections to packages.
package empower

import (
	"math/rand"

	"repro/internal/congestion"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/optimal"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// Re-exported fundamental types.
type (
	// Network is the hybrid multigraph of §2.
	Network = graph.Network
	// NetworkBuilder assembles networks node by node.
	NetworkBuilder = graph.Builder
	// NodeID identifies a station.
	NodeID = graph.NodeID
	// LinkID identifies a directed link.
	LinkID = graph.LinkID
	// Tech is a link technology (medium).
	Tech = graph.Tech
	// Path is a loop-free route (a sequence of link IDs).
	Path = graph.Path

	// RoutingConfig tunes the §3 routing algorithms.
	RoutingConfig = routing.Config
	// Combination is a set of routes to be used simultaneously with
	// their exploration-tree rates.
	Combination = routing.Combination

	// Controller is the §4 congestion controller.
	Controller = congestion.Controller
	// ControllerOptions tunes the controller.
	ControllerOptions = congestion.Options
	// ControllerRoute attaches a path to a flow for the controller.
	ControllerRoute = congestion.Route
	// Utility is a flow utility function.
	Utility = congestion.Utility
	// ProportionalFairness is the paper's log(1+x) utility.
	ProportionalFairness = congestion.ProportionalFairness

	// Emulation is the packet-level EMPoWER node emulation of §6.
	Emulation = node.Emulation
	// EmulationConfig tunes it.
	EmulationConfig = node.Config
	// FlowSpec describes one emulated flow.
	FlowSpec = node.FlowSpec
	// Flow is the source-side handle of an emulated flow.
	Flow = node.Flow

	// Instance is a generated evaluation topology.
	Instance = topology.Instance
	// TopologyView selects hybrid / single-WiFi / dual-WiFi.
	TopologyView = topology.View
	// TopologyConfig tunes generation.
	TopologyConfig = topology.Config

	// Scenario is a declarative dynamic-network workload: timed link
	// failures/recoveries, capacity drift, node churn, and stochastic
	// flow arrival processes, bound to a running emulation.
	Scenario = scenario.Scenario
	// ScenarioOptions tunes the binding of a scenario to an emulation.
	ScenarioOptions = scenario.Options
	// ScenarioRuntime is a bound scenario: it drives the timeline and
	// measures failover latency and goodput.
	ScenarioRuntime = scenario.Runtime
)

// Technologies.
const (
	TechPLC   = graph.TechPLC
	TechWiFi  = graph.TechWiFi
	TechWiFi2 = graph.TechWiFi2
)

// Topology views.
const (
	ViewHybrid     = topology.ViewHybrid
	ViewWiFiSingle = topology.ViewWiFiSingle
	ViewWiFiDual   = topology.ViewWiFiDual
)

// Traffic kinds for emulated flows.
const (
	TrafficSaturated = node.TrafficSaturated
	TrafficFile      = node.TrafficFile
	TrafficExternal  = node.TrafficExternal
)

// NewNetworkBuilder returns a builder for a hybrid multigraph. A nil
// model uses single-collision-domain-per-technology interference (the
// paper's model for examples and small networks).
func NewNetworkBuilder(model graph.InterferenceModel) *NetworkBuilder {
	return graph.NewBuilder(model)
}

// DefaultRoutingConfig returns the paper's routing parameters (n = 5,
// CSC enabled, 6-hop routes).
func DefaultRoutingConfig() RoutingConfig { return routing.DefaultConfig() }

// FindSinglePath runs the §3.1 single-path procedure.
func FindSinglePath(net *Network, src, dst NodeID, cfg RoutingConfig) Path {
	return routing.SinglePath(net, src, dst, cfg)
}

// FindRoutes runs the §3.2 multipath procedure and returns the best
// combination of simultaneously usable paths.
func FindCombination(net *Network, src, dst NodeID, cfg RoutingConfig) Combination {
	return routing.Multipath(net, src, dst, cfg)
}

// FindRoutes returns just the paths of the best combination.
func FindRoutes(net *Network, src, dst NodeID, cfg RoutingConfig) []Path {
	return routing.Multipath(net, src, dst, cfg).Paths
}

// PathRate returns R(P): the maximum rate sustainable on the path alone
// under intra-path interference.
func PathRate(net *Network, p Path) float64 { return routing.RatePath(net, p) }

// NewController creates the §4 congestion controller over preselected
// routes.
func NewController(net *Network, routes []ControllerRoute, opts ControllerOptions) (*Controller, error) {
	return congestion.New(net, routes, opts)
}

// NewEmulation builds the §6 packet-level emulation of the EMPoWER node
// stack on the given network.
func NewEmulation(net *Network, cfg EmulationConfig, seed int64) *Emulation {
	return node.NewEmulation(net, cfg, seed)
}

// LoadScenario reads a dynamic-network scenario from a JSON file (see
// examples/scenarios/ and the schema section in DESIGN.md).
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// NewScenario starts building a scenario programmatically.
func NewScenario(name string, duration float64) *Scenario {
	return scenario.New(name, duration)
}

// BindScenario expands the scenario's stochastic processes with the seed
// and schedules its timeline on the emulation; run the returned runtime
// to drive the dynamics and measure failover.
func BindScenario(em *Emulation, sc *Scenario, seed int64, opts ScenarioOptions) (*ScenarioRuntime, error) {
	return scenario.Bind(em, sc, seed, opts)
}

// Residential generates the §5.1 residential topology instance.
func Residential(rng *rand.Rand, cfg TopologyConfig) *Instance {
	return topology.Residential(rng, cfg)
}

// Enterprise generates the §5.1 enterprise topology instance.
func Enterprise(rng *rand.Rand, cfg TopologyConfig) *Instance {
	return topology.Enterprise(rng, cfg)
}

// Testbed generates the 22-node §6 testbed instance.
func Testbed(rng *rand.Rand, cfg TopologyConfig) *Instance {
	return topology.Testbed(rng, cfg)
}

// OptimalRates computes the centralized utility-optimal per-flow rates
// over all simple paths (the paper's "optimal" baseline). Flows are
// (src, dst) pairs with proportional-fairness utility.
func OptimalRates(net *Network, flows [][2]NodeID) ([]float64, error) {
	specs := make([]optimal.FlowSpec, len(flows))
	for i, f := range flows {
		specs[i] = optimal.FlowSpec{Src: f[0], Dst: f[1]}
	}
	res, err := optimal.Optimal(net, specs, optimal.Config{})
	if err != nil {
		return nil, err
	}
	return res.FlowRates, nil
}

// ConservativeOptimalRates is the optimum under EMPoWER's conservative
// interference constraint (2).
func ConservativeOptimalRates(net *Network, flows [][2]NodeID) ([]float64, error) {
	specs := make([]optimal.FlowSpec, len(flows))
	for i, f := range flows {
		specs[i] = optimal.FlowSpec{Src: f[0], Dst: f[1]}
	}
	res, err := optimal.ConservativeOpt(net, specs, optimal.Config{})
	if err != nil {
		return nil, err
	}
	return res.FlowRates, nil
}
