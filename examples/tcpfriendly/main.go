// Tcpfriendly reproduces the §6.4 interaction at example scale: a
// Reno-style TCP flow runs first over a single path without congestion
// control, then over EMPoWER's two routes with the TCP constraint margin
// δ = 0.3 and destination-side delay equalization. EMPoWER's congestion
// controller drops packets above the allocation, TCP perceives them as
// congestion, and the received goodput follows the allocation.
package main

import (
	"flag"
	"fmt"
	"log"

	empower "repro"
	"repro/internal/node"
	"repro/internal/transport"
)

func main() {
	duration := flag.Float64("duration", 40, "seconds per phase")
	flag.Parse()

	// Figure 1-style scenario with enough WiFi capacity for TCP to bite.
	b := empower.NewNetworkBuilder(nil)
	a := b.AddNode("a", 0, 0, empower.TechPLC, empower.TechWiFi)
	mid := b.AddNode("b", 10, 0, empower.TechPLC, empower.TechWiFi)
	c := b.AddNode("c", 20, 0, empower.TechWiFi)
	b.AddDuplex(a, mid, empower.TechPLC, 20)
	b.AddDuplex(a, mid, empower.TechWiFi, 30)
	b.AddDuplex(mid, c, empower.TechWiFi, 60)
	net := b.Build()

	cfg := empower.DefaultRoutingConfig()
	single := empower.FindSinglePath(net, a, c, cfg)
	routes := empower.FindRoutes(net, a, c, cfg)

	run := func(name string, emCfg node.Config, paths []empower.Path) {
		em := empower.NewEmulation(net, emCfg, 99)
		conn, err := transport.Dial(em, a, c, paths, -1, transport.Config{}, 0)
		if err != nil {
			log.Fatal(err)
		}
		em.Run(*duration)
		sink := em.Agent(c).SinkFor(a, conn.Forward.ID)
		fmt.Printf("%-22s goodput %6.2f Mbps  (retx %d, timeouts %d, 2.5-layer losses %d)\n",
			name, sink.MeanRate(*duration/2, *duration),
			conn.Sender.Retransmits, conn.Sender.Timeouts, sink.Lost)
	}

	fmt.Printf("TCP over EMPoWER (%g s per phase)\n\n", *duration)
	run("SP-w/o-CC (1 route)", node.Config{DisableCC: true, Estimation: true}, []empower.Path{single})
	run("EMPoWER δ=0.3 (multi)", node.Config{Delta: 0.3, DelayEqualize: true, Estimation: true}, routes)
}
