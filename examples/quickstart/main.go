// Quickstart walks the public API through the paper's Figure 1 scenario:
// a PLC/WiFi gateway (a), a PLC/WiFi range extender (b) and a WiFi laptop
// (c). It finds the multipath combination, converges the congestion
// controller on it, and cross-checks against the centralized optimum —
// reproducing the 10 + 6.67 Mbps split of the paper's introduction.
package main

import (
	"fmt"
	"log"

	empower "repro"
)

func main() {
	// 1. Model the network: capacities in Mbps; PLC and WiFi do not
	//    interfere with each other, same-technology links share airtime.
	b := empower.NewNetworkBuilder(nil)
	gateway := b.AddNode("gateway", 0, 0, empower.TechPLC, empower.TechWiFi)
	extender := b.AddNode("extender", 12, 0, empower.TechPLC, empower.TechWiFi)
	laptop := b.AddNode("laptop", 24, 0, empower.TechWiFi)
	b.AddDuplex(gateway, extender, empower.TechPLC, 10)
	b.AddDuplex(gateway, extender, empower.TechWiFi, 15)
	b.AddDuplex(extender, laptop, empower.TechWiFi, 30)
	net := b.Build()

	// 2. Multipath routing (§3): the best combination of simultaneously
	//    usable routes.
	comb := empower.FindCombination(net, gateway, laptop, empower.DefaultRoutingConfig())
	fmt.Printf("multipath combination: total %.2f Mbps\n", comb.Total)
	for i, p := range comb.Paths {
		fmt.Printf("  route %d @ %5.2f Mbps: %s\n", i+1, comb.Rates[i], net.PathString(p))
	}

	// 3. Congestion control (§4): the distributed controller converges to
	//    the same allocation.
	var routes []empower.ControllerRoute
	for _, p := range comb.Paths {
		routes = append(routes, empower.ControllerRoute{Links: p, Flow: 0})
	}
	ctrl, err := empower.NewController(net, routes, empower.ControllerOptions{Alpha: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	ctrl.Run(5000)
	fmt.Printf("controller steady state: %.2f Mbps (per route: ", ctrl.FlowRate(0))
	for i, x := range ctrl.Rates() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.2f", x)
	}
	fmt.Println(")")

	// 4. Sanity: the centralized optimum over all simple paths.
	opt, err := empower.OptimalRates(net, [][2]empower.NodeID{{gateway, laptop}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized optimum:     %.2f Mbps\n", opt[0])

	// 5. Full packet-level emulation of the EMPoWER node stack (§6).
	em := empower.NewEmulation(net, empower.EmulationConfig{}, 42)
	flow, err := em.AddFlow(empower.FlowSpec{
		Src: gateway, Dst: laptop, Routes: comb.Paths, Kind: empower.TrafficSaturated,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	em.Run(30)
	sink := em.Agent(laptop).Sinks()[0]
	fmt.Printf("emulated goodput (packet level, 30 s): %.2f Mbps (loss: %d pkts)\n",
		sink.MeanRate(20, 30), sink.Lost)
	_ = flow
}
