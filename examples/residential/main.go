// Residential generates a random home network as in the paper's §5.1
// evaluation (10 nodes on 50×30 m, half with PLC), then compares EMPoWER
// against the single-path and WiFi-only alternatives for a download flow
// from a hybrid gateway node — the workload the paper's introduction
// motivates (a laptop fetching a file through a PLC/WiFi extender).
package main

import (
	"flag"
	"fmt"
	"math/rand"

	empower "repro"
	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 4, "topology seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := empower.Residential(rng, empower.TopologyConfig{})
	src, dst := inst.RandomFlow(rng)
	fmt.Printf("residential instance (seed %d): flow n%d -> n%d\n\n", *seed, src+1, dst+1)

	net := inst.Build(empower.ViewHybrid)
	fmt.Println("EMPoWER routes:")
	for _, p := range empower.FindRoutes(net.Network, src, dst, empower.DefaultRoutingConfig()) {
		fmt.Printf("  %s\n", net.PathString(p))
	}
	fmt.Println()

	for _, s := range []core.Scheme{
		core.SchemeEMPoWER, core.SchemeSP, core.SchemeMPWiFi,
		core.SchemeSPWiFi, core.SchemeMPmWiFi, core.SchemeMPWoCC,
	} {
		tx := core.Throughput(inst, s, src, dst, core.Options{})
		fmt.Printf("%-10s %7.2f Mbps\n", s, tx)
	}
}
