// Failover demonstrates EMPoWER's reaction to a link failure (§6.1: link
// failures are detected "to the order of hundred of milliseconds" via
// traffic-driven capacity estimation; §3.2: routes are recomputed on
// failure or large capacity variation). A flow runs over a PLC route and
// a WiFi route; mid-run the PLC medium dies (a noisy appliance, say), the
// capacity estimator flags it, the congestion controller drains the dead
// route, and the route manager recomputes the route set.
package main

import (
	"flag"
	"fmt"
	"log"

	empower "repro"
	"repro/internal/node"
	"repro/internal/routing"
)

func main() {
	failAt := flag.Float64("fail", 20, "seconds until the PLC link dies")
	duration := flag.Float64("duration", 60, "total emulated seconds")
	flag.Parse()

	b := empower.NewNetworkBuilder(nil)
	s := b.AddNode("src", 0, 0, empower.TechPLC, empower.TechWiFi)
	r := b.AddNode("relay", 10, 0, empower.TechPLC, empower.TechWiFi)
	d := b.AddNode("dst", 20, 0, empower.TechPLC, empower.TechWiFi)
	plcSD, _ := b.AddDuplex(s, d, empower.TechPLC, 40)
	b.AddDuplex(s, r, empower.TechWiFi, 60)
	b.AddDuplex(r, d, empower.TechWiFi, 60)
	net := b.Build()

	em := empower.NewEmulation(net, node.Config{Estimation: true}, 7)
	routes := empower.FindRoutes(net, s, d, empower.DefaultRoutingConfig())
	fmt.Println("initial routes:")
	for _, p := range routes {
		fmt.Printf("  %s\n", net.PathString(p))
	}
	flow, err := em.AddFlow(node.FlowSpec{
		Src: s, Dst: d, Routes: routes, Kind: node.TrafficSaturated,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	mgr := em.ManageRoutes(flow, routing.DefaultConfig())

	em.Engine.At(*failAt, func() {
		fmt.Printf("t=%.0fs: PLC medium dies\n", *failAt)
		em.SetLinkCapacity(plcSD, 0)
	})

	// Report once per 5 emulated seconds. The per-slot rate readout uses
	// the caller-buffer form (AppendRates) so the loop reuses one slice.
	var rates []float64
	for t := 5.0; t <= *duration; t += 5 {
		em.Run(t)
		sink := em.Agent(d).Sinks()[0]
		rates = flow.AppendRates(rates[:0])
		fmt.Printf("t=%4.0fs  goodput %6.2f Mbps  routes=%d  reroutes=%d  rates=%v\n",
			t, sink.MeanRate(t-5, t), len(flow.Routes()), mgr.Reroutes, compact(rates))
	}
	fmt.Println("\nfinal routes:")
	for _, p := range flow.Routes() {
		fmt.Printf("  %s\n", net.PathString(p))
	}
}

func compact(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10)) / 10
	}
	return out
}
