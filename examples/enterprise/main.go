// Enterprise generates the §5.1 enterprise topology (20 nodes on
// 100×60 m, 10 grid-placed PLC/WiFi APs, two electrical panels) and runs
// three contending flows, reporting the per-flow allocation and the
// aggregate proportional-fairness utility against the centralized optimum
// — the Figure 7 workload at single-instance scale.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"

	empower "repro"
	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 11, "topology seed")
	flows := flag.Int("flows", 3, "number of contending flows")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := empower.Enterprise(rng, empower.TopologyConfig{})
	pairs := make([][2]empower.NodeID, *flows)
	for i := range pairs {
		s, d := inst.RandomFlow(rng)
		pairs[i] = [2]empower.NodeID{s, d}
	}
	fmt.Printf("enterprise instance (seed %d), %d contending flows\n\n", *seed, *flows)

	net := inst.Build(empower.ViewHybrid)
	opt, err := empower.OptimalRates(net.Network, pairs)
	if err != nil {
		fmt.Println("optimal baseline failed:", err)
		return
	}
	var optUtil float64
	for _, x := range opt {
		optUtil += math.Log1p(x)
	}

	for _, s := range []core.Scheme{core.SchemeEMPoWER, core.SchemeMP2bp, core.SchemeSP, core.SchemeMPWoCC} {
		res := core.Evaluate(inst, s, pairs, core.Options{})
		fmt.Printf("%-10s utility %6.3f (%.0f%% of optimal)  rates:", s, res.Utility, 100*res.Utility/optUtil)
		for _, f := range res.Flows {
			fmt.Printf(" %6.2f", f.Throughput)
		}
		fmt.Println(" Mbps")
	}
	fmt.Printf("%-10s utility %6.3f              rates:", "optimal", optUtil)
	for _, x := range opt {
		fmt.Printf(" %6.2f", x)
	}
	fmt.Println(" Mbps")
}
