package congestion

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Route is a preselected path available to a flow. The congestion
// controller decides the rate x_r injected on each route; routing (package
// routing) decides which routes exist, keeping the two concerns separate as
// in the paper (Figure 2).
type Route struct {
	Links graph.Path
	// Flow is the index of the flow (source-destination pair) this route
	// belongs to. Several routes may share a flow.
	Flow int
}

// Mode selects the controller variant.
type Mode int

const (
	// ModeAuto uses the single-path controller when every flow has
	// exactly one route and the multipath controller otherwise.
	ModeAuto Mode = iota
	// ModeSinglePath forces the §4.2 controller (eqs. 7-10).
	ModeSinglePath
	// ModeMultipath forces the §4.3 proximal controller.
	ModeMultipath
)

// Options configures a Controller.
type Options struct {
	// Alpha is the fixed step size α. The paper's implementation starts at
	// 0.02 and adapts it (see AlphaTuner); the simulations use a fixed
	// value. Defaults to 0.02.
	Alpha float64
	// Delta is the constraint margin δ ∈ [0,1] of constraint (3);
	// airtime demand in each interference domain is kept below 1−δ.
	Delta float64
	// Utilities maps each flow to its utility; flows without an entry use
	// proportional fairness log(1+x).
	Utilities map[int]Utility
	// Mode selects the controller variant (default ModeAuto).
	Mode Mode
	// DisableRateCap removes the per-route cap at the route's bottleneck
	// capacity. The cap only suppresses the unbounded U'^{-1}(0) transient
	// at start-up and does not bind at the optimum.
	DisableRateCap bool
	// InitialRates seeds the per-route rates x_r[0] (nil = start from
	// zero). EMPoWER sources start near the routing procedure's assumed
	// loading R(P), which is what makes convergence a matter of tens of
	// slots rather than a cold-start ramp.
	InitialRates []float64
	// FairShareFloor is an extension beyond the paper (its §4.3 leaves
	// fair handling of external interference as future work): when
	// external stations saturate a medium, the stock controller backs
	// off to the leftover airtime, possibly to zero. With a floor
	// F ∈ (0,1), each domain's budget becomes
	//
	//	budget = max(1−δ−y_ext, F·(1−δ)),
	//
	// guaranteeing EMPoWER at least the fraction F of the medium — which
	// persistent CSMA contention can actually claim against a saturating
	// external station. Zero disables the extension (paper behaviour).
	FairShareFloor float64
	// UtilityScale is the gain S applied to the (U'_f − q_r) term of the
	// proximal multipath update. It leaves the fixed point unchanged
	// (U'_f = q_r on active routes) but moves the rates at a practical
	// Mbps-per-slot speed: with rates denominated in Mbps the marginal
	// utility of log(1+x) near 20 Mbps is ~0.05, and an unscaled update
	// would crawl at α·U' per slot. Defaults to 50, which yields
	// convergence in tens-to-hundreds of 100 ms slots as the paper
	// reports. Set to 1 for the textbook dynamics. The single-path
	// controller does not use it.
	UtilityScale float64
}

// Controller is the discrete-time congestion controller. Each Step invokes
// one time slot t → t+1 (100 ms in the paper's implementation): it updates
// the dual variables γ_l (congestion prices per link), the route prices
// q_r, and the route rates x_r.
//
// The state is laid out structure-of-arrays: dense rate/price/gamma/offered
// vectors indexed by route, flow and link slots, with the route→link,
// flow→route and link→interference memberships flattened to CSR index
// arrays. One Step is a handful of linear passes over those arrays — no
// per-flow objects, no maps, no interface calls on the hot path when every
// utility is the paper's proportional fairness — and allocates nothing.
// Trajectories are bit-identical to the per-flow reference implementation
// retained in reference_test.go.
//
// Capacities are latched from the network at New/Reset: a controller run
// assumes the network is not mutated between Steps (true for every
// analytic evaluation; the packet-level emulation runs its own per-ack
// updates, not this controller).
type Controller struct {
	net    *graph.Network
	routes []Route
	opts   Options

	flows  int
	single bool

	// Flow-slot arrays. flowOff/flowIdx is the flow→routes CSR: flow f's
	// route slots are flowIdx[flowOff[f]:flowOff[f+1]], in route order.
	util     []Utility
	fastUtil bool      // every utility is ProportionalFairness
	utilW    []float64 // fast-path weights w_f
	flowOff  []int32
	flowIdx  []int32
	frate    []float64 // per-flow total rate (scratch, recomputed per slot)
	fprime   []float64 // per-flow marginal utility (scratch)

	// Route-slot arrays. linkOff/linkIdx is the route→links CSR: route
	// r's link slots are linkIdx[linkOff[r]:linkOff[r+1]], in path order.
	flowOf   []int32
	routeCap []float64 // bottleneck capacity of route r (rate cap)
	linkOff  []int32
	linkIdx  []int32
	x        []float64 // per-route rates
	xbar     []float64 // proximal auxiliary variables
	q        []float64 // per-route prices
	newX     []float64 // next-slot rates (scratch for the proximal update)

	// Link-slot arrays. intOff/intIdx is the link→interference CSR
	// mirroring Network.Interference (rebuilt only when the network
	// changes); capv/dl latch the capacities and airtime costs at Reset.
	intOff  []int32
	intIdx  []int32
	capv    []float64
	dl      []float64 // d_l = 1/c_l (+Inf on dead links)
	gamma   []float64 // per-link dual variables
	offered []float64 // per-link own traffic Σ_{r∋l} x_r (scratch)
	airtime []float64 // per-link own airtime offered_l/c_l (scratch)
	extAir  []float64 // per-link external airtime (scratch, external path)
	extY    []float64 // per-link external airtime demand (scratch, external path)
	gsum    []float64 // per-link Σ_{i∈I_l} γ_i, filled for used links only
	y       []float64 // per-link own airtime demand in I_l (scratch)
	used    []int32   // links appearing on at least one route
	usedSet []bool    // scratch for deduplicating `used` at Reset

	// ExternalLoad can be set to per-link rates (Mbps) injected by
	// non-EMPoWER stations; the controller measures and respects them
	// (paper §4.3). Indexed by LinkID; nil means no external traffic.
	ExternalLoad []float64

	t int
}

// New creates a controller for the given network and preselected routes.
func New(net *graph.Network, routes []Route, opts Options) (*Controller, error) {
	c := &Controller{}
	if err := c.Reset(net, routes, opts); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset re-initializes the controller for a new problem — network, routes
// and options — reusing every backing array (grow-only), so a pooled
// controller makes repeated evaluations allocation-free. It is exactly
// equivalent to New: state (rates, duals, prices, slot counter,
// ExternalLoad) is cleared, capacities are re-latched, and the CSR index
// arrays are rebuilt (the interference CSR is reused when net is the same
// network as the previous Reset — topology is immutable after Build).
func (c *Controller) Reset(net *graph.Network, routes []Route, opts Options) error {
	if opts.Alpha == 0 {
		opts.Alpha = 0.02
	}
	if opts.UtilityScale == 0 {
		opts.UtilityScale = 50
	}
	if opts.UtilityScale < 0 {
		return fmt.Errorf("congestion: utility scale %v must be positive", opts.UtilityScale)
	}
	if opts.Alpha < 0 || opts.Alpha > 1 {
		return fmt.Errorf("congestion: alpha %v out of (0,1]", opts.Alpha)
	}
	if opts.Delta < 0 || opts.Delta >= 1 {
		return fmt.Errorf("congestion: delta %v out of [0,1)", opts.Delta)
	}
	if opts.FairShareFloor < 0 || opts.FairShareFloor >= 1 {
		return fmt.Errorf("congestion: fair-share floor %v out of [0,1)", opts.FairShareFloor)
	}
	maxFlow := -1
	totalLinks := 0
	for i, r := range routes {
		if len(r.Links) == 0 {
			return fmt.Errorf("congestion: route %d is empty", i)
		}
		if r.Flow < 0 {
			return fmt.Errorf("congestion: route %d has negative flow", i)
		}
		if r.Flow > maxFlow {
			maxFlow = r.Flow
		}
		totalLinks += len(r.Links)
	}

	sameNet := c.net == net && net != nil
	c.net, c.routes, c.opts = net, routes, opts
	c.flows = maxFlow + 1
	c.ExternalLoad = nil
	c.t = 0
	nr, nl := len(routes), net.NumLinks()

	// Link-slot arrays: latch capacities and airtime costs; rebuild the
	// interference CSR only when the network changed.
	c.capv = growF(c.capv, nl)
	c.dl = growF(c.dl, nl)
	for l := 0; l < nl; l++ {
		cl := net.Links[l].Capacity
		c.capv[l] = cl
		if cl > 0 {
			c.dl[l] = 1 / cl
		} else {
			c.dl[l] = math.Inf(1)
		}
	}
	if !sameNet {
		c.intOff = growI(c.intOff, nl+1)
		total := 0
		for l := 0; l < nl; l++ {
			c.intOff[l] = int32(total)
			total += len(net.Interference(graph.LinkID(l)))
		}
		c.intOff[nl] = int32(total)
		c.intIdx = growI(c.intIdx, total)
		pos := 0
		for l := 0; l < nl; l++ {
			for _, il := range net.Interference(graph.LinkID(l)) {
				c.intIdx[pos] = int32(il)
				pos++
			}
		}
	}

	// Route-slot arrays and the route→links CSR (path order preserved).
	c.flowOf = growI(c.flowOf, nr)
	c.routeCap = growF(c.routeCap, nr)
	c.linkOff = growI(c.linkOff, nr+1)
	c.linkIdx = growI(c.linkIdx, totalLinks)
	c.x = growF(c.x, nr)
	c.xbar = growF(c.xbar, nr)
	c.q = growF(c.q, nr)
	c.newX = growF(c.newX, nr)
	c.usedSet = growB(c.usedSet, nl)
	for l := range c.usedSet {
		c.usedSet[l] = false
	}
	c.used = c.used[:0]
	pos := 0
	for i, r := range routes {
		c.flowOf[i] = int32(r.Flow)
		c.linkOff[i] = int32(pos)
		cap := math.Inf(1)
		for _, l := range r.Links {
			c.linkIdx[pos] = int32(l)
			pos++
			if !c.usedSet[l] {
				c.usedSet[l] = true
				c.used = append(c.used, int32(l))
			}
			if cl := c.capv[l]; cl < cap {
				cap = cl
			}
		}
		c.routeCap[i] = cap
		c.x[i] = 0
		c.xbar[i] = 0
		c.q[i] = 0
		c.newX[i] = 0
	}
	c.linkOff[nr] = int32(pos)
	// The scatter in Step requires used links in ascending LinkID order
	// to reproduce the reference's ascending-domain gather bit for bit.
	for i := 1; i < len(c.used); i++ {
		for j := i; j > 0 && c.used[j] < c.used[j-1]; j-- {
			c.used[j], c.used[j-1] = c.used[j-1], c.used[j]
		}
	}
	if opts.InitialRates != nil {
		for i := 0; i < nr; i++ {
			if i < len(opts.InitialRates) && opts.InitialRates[i] > 0 {
				c.x[i] = opts.InitialRates[i]
				c.xbar[i] = opts.InitialRates[i]
			}
		}
	}

	// Flow-slot arrays and the flow→routes CSR: count, prefix-sum, fill
	// in route order (matching the append order of the reference).
	c.flowOff = growI(c.flowOff, c.flows+1)
	for f := 0; f <= c.flows; f++ {
		c.flowOff[f] = 0
	}
	for i := 0; i < nr; i++ {
		c.flowOff[c.flowOf[i]+1]++
	}
	for f := 0; f < c.flows; f++ {
		c.flowOff[f+1] += c.flowOff[f]
	}
	c.flowIdx = growI(c.flowIdx, nr)
	c.frate = growF(c.frate, c.flows)
	c.fprime = growF(c.fprime, c.flows)
	fillFlowCSR(c.flowIdx, c.flowOff, c.flowOf[:nr], c.flows)

	// Utilities: per-flow, defaulting to proportional fairness; the fast
	// path inlines w/(1+x) when every flow uses ProportionalFairness.
	c.util = growUtil(c.util, c.flows)
	c.utilW = growF(c.utilW, c.flows)
	c.fastUtil = true
	for f := 0; f < c.flows; f++ {
		var u Utility = ProportionalFairness{}
		if uu, ok := opts.Utilities[f]; ok && uu != nil {
			u = uu
		}
		c.util[f] = u
		if pf, ok := u.(ProportionalFairness); ok {
			c.utilW[f] = pf.w()
		} else {
			c.fastUtil = false
			c.utilW[f] = 0
		}
	}

	c.single = true
	for f := 0; f < c.flows; f++ {
		if c.flowOff[f+1]-c.flowOff[f] != 1 {
			c.single = false
		}
	}
	switch opts.Mode {
	case ModeSinglePath:
		c.single = true
	case ModeMultipath:
		c.single = false
	}

	c.gamma = growF(c.gamma, nl)
	c.offered = growF(c.offered, nl)
	c.airtime = growF(c.airtime, nl)
	c.extAir = growF(c.extAir, nl)
	c.extY = growF(c.extY, nl)
	c.gsum = growF(c.gsum, nl)
	c.y = growF(c.y, nl)
	for l := 0; l < nl; l++ {
		c.gamma[l] = 0
		c.offered[l] = 0
		c.airtime[l] = 0
		c.extAir[l] = 0
		c.extY[l] = 0
		c.gsum[l] = 0
		c.y[l] = 0
	}
	return nil
}

// fillFlowCSR places each route index into its flow's slot range, walking
// routes in ascending order so each flow's list stays route-ordered. off is
// used as a cursor and restored afterwards.
func fillFlowCSR(idx, off, flowOf []int32, flows int) {
	for i := range flowOf {
		f := flowOf[i]
		idx[off[f]] = int32(i)
		off[f]++
	}
	// Restore the prefix sums: off[f] now holds off[f+1]'s old value.
	for f := flows; f > 0; f-- {
		off[f] = off[f-1]
	}
	off[0] = 0
}

// NumRoutes returns the number of routes under control.
func (c *Controller) NumRoutes() int { return len(c.routes) }

// NumFlows returns the number of flows.
func (c *Controller) NumFlows() int { return c.flows }

// Rates returns the current per-route rate vector x (Mbps). The returned
// slice is owned by the controller; copy it to retain it across steps.
func (c *Controller) Rates() []float64 { return c.x[:len(c.routes)] }

// FlowRate returns x_f = Σ_{r∈f} x_r for flow f.
func (c *Controller) FlowRate(f int) float64 {
	var s float64
	for _, r := range c.flowIdx[c.flowOff[f]:c.flowOff[f+1]] {
		s += c.x[r]
	}
	return s
}

// FlowRates returns the per-flow total rates.
func (c *Controller) FlowRates() []float64 {
	out := make([]float64, c.flows)
	for f := range out {
		out[f] = c.FlowRate(f)
	}
	return out
}

// Utility returns the aggregate network utility Σ_f U_f(x_f) at the
// current rates.
func (c *Controller) Utility() float64 {
	var s float64
	for f := 0; f < c.flows; f++ {
		s += c.util[f].Value(c.FlowRate(f))
	}
	return s
}

// Price returns the current route price q_r.
func (c *Controller) Price(r int) float64 { return c.q[r] }

// Gamma returns the dual variable of link l.
func (c *Controller) Gamma(l graph.LinkID) float64 { return c.gamma[l] }

// SetAlpha changes the step size; used by AlphaTuner.
func (c *Controller) SetAlpha(a float64) { c.opts.Alpha = a }

// Alpha returns the current step size.
func (c *Controller) Alpha() float64 { return c.opts.Alpha }

// SetRate overrides a route rate (used to model non-controlled baselines
// and for tests).
func (c *Controller) SetRate(r int, x float64) { c.x[r] = x }

// Step advances the controller by one time slot: four linear passes over
// the dense arrays (offered-load scatter, per-link γ update, per-route
// price gather, rate update), allocation-free.
func (c *Controller) Step() {
	alpha := c.opts.Alpha
	limit := 1 - c.opts.Delta
	nl := len(c.capv)
	nr := len(c.routes)

	// offered_l = Σ_{r∋l} x_r (eq. 7 inner sum): own traffic only; the
	// external load enters the airtime sums separately so the fair-share
	// extension can distinguish the two.
	offered := c.offered
	for l := range offered {
		offered[l] = 0
	}
	for r := 0; r < nr; r++ {
		xr := c.x[r]
		for _, l := range c.linkIdx[c.linkOff[r]:c.linkOff[r+1]] {
			offered[l] += xr
		}
	}

	// Latch each link's own airtime offered_l/c_l once (the reference
	// divided inside every interference sum; same operands, one division
	// per link), so the γ pass is a pure gather of adds.
	airtime := c.airtime
	for l := 0; l < nl; l++ {
		if offered[l] > 0 && c.capv[l] > 0 {
			airtime[l] = offered[l] / c.capv[l]
		} else {
			airtime[l] = 0
		}
	}
	ext := c.ExternalLoad != nil
	if ext {
		for l := 0; l < nl; l++ {
			if c.ExternalLoad[l] > 0 && c.capv[l] > 0 {
				c.extAir[l] = c.ExternalLoad[l] / c.capv[l]
			} else {
				c.extAir[l] = 0
			}
		}
	}

	// y_l[t] = Σ_{l'∈I_l} d_{l'} · offered_{l'} (eq. 7). Gathering that
	// per link costs Σ|I_l| ≈ L² adds per slot, yet airtime is nonzero
	// only on the few links routes actually traverse — so scatter instead:
	// each loaded link adds its airtime to every domain it belongs to
	// (interference is symmetric: lp ∈ I_l ⟺ l ∈ I_lp). Scattering in
	// ascending LinkID order reproduces the reference's ascending-domain
	// gather exactly — the skipped zero terms are exact no-ops on a
	// non-negative sum.
	y := c.y
	for l := range y {
		y[l] = 0
	}
	for _, l := range c.used {
		if a := airtime[l]; a > 0 {
			for _, lp := range c.intIdx[c.intOff[l]:c.intOff[l+1]] {
				y[lp] += a
			}
		}
	}
	if ext {
		// External airtime can sit on any link, not just used ones: same
		// scatter, iterating all links in ascending order.
		for l := range c.extY {
			c.extY[l] = 0
		}
		for l := 0; l < nl; l++ {
			if a := c.extAir[l]; a > 0 {
				for _, lp := range c.intIdx[c.intOff[l]:c.intOff[l+1]] {
					c.extY[lp] += a
				}
			}
		}
	}

	// γ_l[t+1] = [γ_l[t] + α(y_own − budget)]+ (eq. 8; with no external
	// traffic and no floor the budget is exactly the paper's 1−δ).
	floor := c.opts.FairShareFloor
	for l := 0; l < nl; l++ {
		budget := limit
		if ext {
			budget = limit - c.extY[l]
		}
		if floor > 0 && budget < floor*limit {
			budget = floor * limit
		}
		g := c.gamma[l] + alpha*(y[l]-budget)
		if g < 0 {
			g = 0
		}
		c.gamma[l] = g
	}

	// q_r[t] = Σ_{l∈r} d_l Σ_{i∈I_l} γ_i (eq. 9). The inner γ sum is
	// latched once per link actually on a route; routes sharing links
	// reuse it.
	for _, l := range c.used {
		var s float64
		for _, il := range c.intIdx[c.intOff[l]:c.intOff[l+1]] {
			s += c.gamma[il]
		}
		c.gsum[l] = s
	}
	for r := 0; r < nr; r++ {
		var qr float64
		for _, l := range c.linkIdx[c.linkOff[r]:c.linkOff[r+1]] {
			if c.capv[l] <= 0 {
				qr = math.Inf(1)
				break
			}
			qr += c.dl[l] * c.gsum[l]
		}
		c.q[r] = qr
	}

	if c.single {
		// x_r[t+1] = U'^{-1}(q_r[t])  (eq. 10), damped: the pure best
		// response switches discontinuously between the rate cap and 0
		// around q = U'(0) and saw-tooths with a fixed dual step, so the
		// implementation relaxes toward it (same fixed point).
		const beta = 0.3
		if c.fastUtil {
			for r := 0; r < nr; r++ {
				q := c.q[r]
				var inv float64
				if q <= 0 {
					inv = math.Inf(1)
				} else {
					inv = c.utilW[c.flowOf[r]]/q - 1
					if inv < 0 {
						inv = 0
					}
				}
				x := c.capRate(r, inv)
				c.x[r] = (1-beta)*c.x[r] + beta*x
			}
		} else {
			for r := 0; r < nr; r++ {
				x := c.capRate(r, c.util[c.flowOf[r]].PrimeInv(c.q[r]))
				c.x[r] = (1-beta)*c.x[r] + beta*x
			}
		}
	} else {
		// Proximal multipath update (§4.3). The term U'_f − q_r is scaled
		// by S (Options.UtilityScale): this is the proximal controller for
		// the equivalently-maximized objective Σ S·U_f − S/2 Σ (x−x̄)²
		// expressed in normalized prices q/S, and it moves the rates at a
		// practical Mbps-per-slot speed. The fixed point U'_f(x_f) = q_r
		// for active routes is unchanged. The flow rates and marginal
		// utilities are computed once per slot (x does not change inside
		// the loop; newX is scratch).
		scale := c.opts.UtilityScale
		for f := 0; f < c.flows; f++ {
			var s float64
			for _, r := range c.flowIdx[c.flowOff[f]:c.flowOff[f+1]] {
				s += c.x[r]
			}
			c.frate[f] = s
			if c.fastUtil {
				if s < 0 {
					s = 0
				}
				c.fprime[f] = c.utilW[f] / (1 + s)
			} else {
				c.fprime[f] = c.util[f].Prime(s)
			}
		}
		for r := 0; r < nr; r++ {
			inner := c.xbar[r] + scale*(c.fprime[c.flowOf[r]]-c.q[r])
			if inner < 0 {
				inner = 0
			}
			nx := (1-alpha)*c.x[r] + alpha*inner
			c.newX[r] = c.capRate(r, nx)
		}
		for r := 0; r < nr; r++ {
			c.xbar[r] = (1-alpha)*c.xbar[r] + alpha*c.x[r]
		}
		copy(c.x[:nr], c.newX[:nr])
	}
	c.t++
}

func (c *Controller) capRate(i int, x float64) float64 {
	if x < 0 {
		return 0
	}
	if !c.opts.DisableRateCap && x > c.routeCap[i] {
		return c.routeCap[i]
	}
	if math.IsInf(x, 1) {
		return c.routeCap[i]
	}
	return x
}

// RunAppend advances n slots and appends the per-flow total rates after
// each slot to dst — n·NumFlows values, slot-major — returning the
// extended slice. With a preallocated dst this is the allocation-free
// batch form of Run; Evaluate's pooled sweep path uses it.
func (c *Controller) RunAppend(n int, dst []float64) []float64 {
	for t := 0; t < n; t++ {
		c.Step()
		for f := 0; f < c.flows; f++ {
			dst = append(dst, c.FlowRate(f))
		}
	}
	return dst
}

// Run advances n slots and returns the trajectory of per-flow total rates:
// out[t][f] is flow f's rate after slot t. The rows share one backing
// array, so a whole trajectory costs two allocations instead of n+1.
func (c *Controller) Run(n int) [][]float64 {
	out := make([][]float64, n)
	if n <= 0 {
		return out
	}
	flat := c.RunAppend(n, make([]float64, 0, n*c.flows))
	for t := 0; t < n; t++ {
		out[t] = flat[t*c.flows : (t+1)*c.flows : (t+1)*c.flows]
	}
	return out
}

// MaxAirtimeViolation returns max_l (y_l − 1): how much the airtime
// constraint (2) is exceeded at the current rates (≤ 0 when feasible).
// It recomputes loads from the current rates.
func (c *Controller) MaxAirtimeViolation() float64 {
	for l := range c.offered {
		c.offered[l] = 0
	}
	for i, r := range c.routes {
		for _, l := range r.Links {
			c.offered[l] += c.x[i]
		}
	}
	if c.ExternalLoad != nil {
		for l := range c.offered {
			c.offered[l] += c.ExternalLoad[l]
		}
	}
	worst := math.Inf(-1)
	for l := 0; l < c.net.NumLinks(); l++ {
		var y float64
		for _, lp := range c.net.Interference(graph.LinkID(l)) {
			link := c.net.Link(lp)
			if c.offered[lp] > 0 && link.Capacity > 0 {
				y += c.offered[lp] / link.Capacity
			}
		}
		if v := y - 1; v > worst {
			worst = v
		}
	}
	return worst
}

// SlotsToSteady returns the first slot index after which every value of
// series stays within tol (relative) of the final value — the paper's
// steady-state criterion ("throughput within 1% of the final throughput").
// It returns len(series) if the series never settles.
func SlotsToSteady(series []float64, tol float64) int {
	if len(series) == 0 {
		return 0
	}
	final := series[len(series)-1]
	band := tol * math.Abs(final)
	if band == 0 {
		band = tol
	}
	for t := 0; t < len(series); t++ {
		ok := true
		for u := t; u < len(series); u++ {
			if math.Abs(series[u]-final) > band {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	return len(series)
}

// growF resizes a float64 scratch slice to n, reusing capacity.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growI resizes an int32 index slice to n, reusing capacity.
func growI(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growB resizes a bool scratch slice to n, reusing capacity.
func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// growUtil resizes the per-flow utility slice to n, reusing capacity.
func growUtil(s []Utility, n int) []Utility {
	if cap(s) < n {
		return make([]Utility, n)
	}
	return s[:n]
}
