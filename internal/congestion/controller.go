package congestion

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Route is a preselected path available to a flow. The congestion
// controller decides the rate x_r injected on each route; routing (package
// routing) decides which routes exist, keeping the two concerns separate as
// in the paper (Figure 2).
type Route struct {
	Links graph.Path
	// Flow is the index of the flow (source-destination pair) this route
	// belongs to. Several routes may share a flow.
	Flow int
}

// Mode selects the controller variant.
type Mode int

const (
	// ModeAuto uses the single-path controller when every flow has
	// exactly one route and the multipath controller otherwise.
	ModeAuto Mode = iota
	// ModeSinglePath forces the §4.2 controller (eqs. 7-10).
	ModeSinglePath
	// ModeMultipath forces the §4.3 proximal controller.
	ModeMultipath
)

// Options configures a Controller.
type Options struct {
	// Alpha is the fixed step size α. The paper's implementation starts at
	// 0.02 and adapts it (see AlphaTuner); the simulations use a fixed
	// value. Defaults to 0.02.
	Alpha float64
	// Delta is the constraint margin δ ∈ [0,1] of constraint (3);
	// airtime demand in each interference domain is kept below 1−δ.
	Delta float64
	// Utilities maps each flow to its utility; flows without an entry use
	// proportional fairness log(1+x).
	Utilities map[int]Utility
	// Mode selects the controller variant (default ModeAuto).
	Mode Mode
	// DisableRateCap removes the per-route cap at the route's bottleneck
	// capacity. The cap only suppresses the unbounded U'^{-1}(0) transient
	// at start-up and does not bind at the optimum.
	DisableRateCap bool
	// InitialRates seeds the per-route rates x_r[0] (nil = start from
	// zero). EMPoWER sources start near the routing procedure's assumed
	// loading R(P), which is what makes convergence a matter of tens of
	// slots rather than a cold-start ramp.
	InitialRates []float64
	// FairShareFloor is an extension beyond the paper (its §4.3 leaves
	// fair handling of external interference as future work): when
	// external stations saturate a medium, the stock controller backs
	// off to the leftover airtime, possibly to zero. With a floor
	// F ∈ (0,1), each domain's budget becomes
	//
	//	budget = max(1−δ−y_ext, F·(1−δ)),
	//
	// guaranteeing EMPoWER at least the fraction F of the medium — which
	// persistent CSMA contention can actually claim against a saturating
	// external station. Zero disables the extension (paper behaviour).
	FairShareFloor float64
	// UtilityScale is the gain S applied to the (U'_f − q_r) term of the
	// proximal multipath update. It leaves the fixed point unchanged
	// (U'_f = q_r on active routes) but moves the rates at a practical
	// Mbps-per-slot speed: with rates denominated in Mbps the marginal
	// utility of log(1+x) near 20 Mbps is ~0.05, and an unscaled update
	// would crawl at α·U' per slot. Defaults to 50, which yields
	// convergence in tens-to-hundreds of 100 ms slots as the paper
	// reports. Set to 1 for the textbook dynamics. The single-path
	// controller does not use it.
	UtilityScale float64
}

// Controller is the discrete-time congestion controller. Each Step invokes
// one time slot t → t+1 (100 ms in the paper's implementation): it updates
// the dual variables γ_l (congestion prices per link), the route prices
// q_r, and the route rates x_r.
type Controller struct {
	net    *graph.Network
	routes []Route
	opts   Options

	flows      int
	flowOf     []int     // route -> flow
	util       []Utility // per flow
	flowRoutes [][]int   // flow -> route indices

	// linkRoutes[l] lists the routes traversing link l.
	linkRoutes [][]int
	// routeCap[r] is the bottleneck capacity of route r (rate cap).
	routeCap []float64

	single bool

	// State.
	x     []float64 // per-route rates
	xbar  []float64 // proximal auxiliary variables
	gamma []float64 // per-link dual variables
	load  []float64 // per-link traffic Σ_{r∋l} x_r (scratch)
	y     []float64 // per-link airtime demand in I_l (scratch)
	q     []float64 // per-route prices
	newX  []float64 // next-slot rates (scratch for the proximal update)
	frate []float64 // per-flow total rates (scratch, recomputed per slot)

	// ExternalLoad can be set to per-link rates (Mbps) injected by
	// non-EMPoWER stations; the controller measures and respects them
	// (paper §4.3). Indexed by LinkID; nil means no external traffic.
	ExternalLoad []float64

	t int
}

// New creates a controller for the given network and preselected routes.
func New(net *graph.Network, routes []Route, opts Options) (*Controller, error) {
	if opts.Alpha == 0 {
		opts.Alpha = 0.02
	}
	if opts.UtilityScale == 0 {
		opts.UtilityScale = 50
	}
	if opts.UtilityScale < 0 {
		return nil, fmt.Errorf("congestion: utility scale %v must be positive", opts.UtilityScale)
	}
	if opts.Alpha < 0 || opts.Alpha > 1 {
		return nil, fmt.Errorf("congestion: alpha %v out of (0,1]", opts.Alpha)
	}
	if opts.Delta < 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("congestion: delta %v out of [0,1)", opts.Delta)
	}
	if opts.FairShareFloor < 0 || opts.FairShareFloor >= 1 {
		return nil, fmt.Errorf("congestion: fair-share floor %v out of [0,1)", opts.FairShareFloor)
	}
	c := &Controller{net: net, routes: routes, opts: opts}
	maxFlow := -1
	for i, r := range routes {
		if len(r.Links) == 0 {
			return nil, fmt.Errorf("congestion: route %d is empty", i)
		}
		if r.Flow < 0 {
			return nil, fmt.Errorf("congestion: route %d has negative flow", i)
		}
		if r.Flow > maxFlow {
			maxFlow = r.Flow
		}
	}
	c.flows = maxFlow + 1
	c.flowOf = make([]int, len(routes))
	c.flowRoutes = make([][]int, c.flows)
	c.routeCap = make([]float64, len(routes))
	c.linkRoutes = make([][]int, net.NumLinks())
	for i, r := range routes {
		c.flowOf[i] = r.Flow
		c.flowRoutes[r.Flow] = append(c.flowRoutes[r.Flow], i)
		cap := math.Inf(1)
		for _, l := range r.Links {
			c.linkRoutes[l] = append(c.linkRoutes[l], i)
			if cl := net.Link(l).Capacity; cl < cap {
				cap = cl
			}
		}
		c.routeCap[i] = cap
	}
	c.util = make([]Utility, c.flows)
	for f := 0; f < c.flows; f++ {
		if u, ok := opts.Utilities[f]; ok && u != nil {
			c.util[f] = u
		} else {
			c.util[f] = ProportionalFairness{}
		}
	}
	c.single = true
	for f := 0; f < c.flows; f++ {
		if len(c.flowRoutes[f]) != 1 {
			c.single = false
		}
	}
	switch opts.Mode {
	case ModeSinglePath:
		c.single = true
	case ModeMultipath:
		c.single = false
	}
	c.x = make([]float64, len(routes))
	c.xbar = make([]float64, len(routes))
	if opts.InitialRates != nil {
		for i := range c.x {
			if i < len(opts.InitialRates) && opts.InitialRates[i] > 0 {
				c.x[i] = opts.InitialRates[i]
				c.xbar[i] = opts.InitialRates[i]
			}
		}
	}
	c.gamma = make([]float64, net.NumLinks())
	c.load = make([]float64, net.NumLinks())
	c.y = make([]float64, net.NumLinks())
	c.q = make([]float64, len(routes))
	c.newX = make([]float64, len(routes))
	c.frate = make([]float64, c.flows)
	return c, nil
}

// NumRoutes returns the number of routes under control.
func (c *Controller) NumRoutes() int { return len(c.routes) }

// NumFlows returns the number of flows.
func (c *Controller) NumFlows() int { return c.flows }

// Rates returns the current per-route rate vector x (Mbps). The returned
// slice is owned by the controller; copy it to retain it across steps.
func (c *Controller) Rates() []float64 { return c.x }

// FlowRate returns x_f = Σ_{r∈f} x_r for flow f.
func (c *Controller) FlowRate(f int) float64 {
	var s float64
	for _, r := range c.flowRoutes[f] {
		s += c.x[r]
	}
	return s
}

// FlowRates returns the per-flow total rates.
func (c *Controller) FlowRates() []float64 {
	out := make([]float64, c.flows)
	for f := range out {
		out[f] = c.FlowRate(f)
	}
	return out
}

// Utility returns the aggregate network utility Σ_f U_f(x_f) at the
// current rates.
func (c *Controller) Utility() float64 {
	var s float64
	for f := 0; f < c.flows; f++ {
		s += c.util[f].Value(c.FlowRate(f))
	}
	return s
}

// Price returns the current route price q_r.
func (c *Controller) Price(r int) float64 { return c.q[r] }

// Gamma returns the dual variable of link l.
func (c *Controller) Gamma(l graph.LinkID) float64 { return c.gamma[l] }

// SetAlpha changes the step size; used by AlphaTuner.
func (c *Controller) SetAlpha(a float64) { c.opts.Alpha = a }

// Alpha returns the current step size.
func (c *Controller) Alpha() float64 { return c.opts.Alpha }

// SetRate overrides a route rate (used to model non-controlled baselines
// and for tests).
func (c *Controller) SetRate(r int, x float64) { c.x[r] = x }

// Step advances the controller by one time slot.
func (c *Controller) Step() {
	alpha := c.opts.Alpha
	limit := 1 - c.opts.Delta

	// Per-link traffic loads (eq. 7 inner sum): own traffic only; the
	// external load enters the airtime sums separately so the fair-share
	// extension can distinguish the two.
	for l := range c.load {
		c.load[l] = 0
	}
	for i, r := range c.routes {
		for _, l := range r.Links {
			c.load[l] += c.x[i]
		}
	}

	// y_l[t] = Σ_{l'∈I_l} d_{l'} · load_{l'}  (eq. 7), split into own and
	// external airtime.
	for l := 0; l < c.net.NumLinks(); l++ {
		var yOwn, yExt float64
		for _, lp := range c.net.Interference(graph.LinkID(l)) {
			link := c.net.Link(lp)
			if link.Capacity <= 0 {
				continue
			}
			if c.load[lp] > 0 {
				yOwn += c.load[lp] / link.Capacity
			}
			if c.ExternalLoad != nil && c.ExternalLoad[lp] > 0 {
				yExt += c.ExternalLoad[lp] / link.Capacity
			}
		}
		// Effective budget for own traffic in this domain.
		budget := limit - yExt
		if f := c.opts.FairShareFloor; f > 0 && budget < f*limit {
			budget = f * limit
		}
		c.y[l] = yOwn
		// γ_l[t+1] = [γ_l[t] + α(y_own − budget)]+  (eq. 8; with no
		// external traffic and no floor this is exactly the paper's
		// y_l − (1−δ)).
		g := c.gamma[l] + alpha*(yOwn-budget)
		if g < 0 {
			g = 0
		}
		c.gamma[l] = g
	}

	// q_r[t] = Σ_{l∈r} d_l Σ_{i∈I_l} γ_i  (eq. 9)
	for i, r := range c.routes {
		var q float64
		for _, l := range r.Links {
			link := c.net.Link(l)
			if link.Capacity <= 0 {
				q = math.Inf(1)
				break
			}
			var gsum float64
			for _, il := range c.net.Interference(l) {
				gsum += c.gamma[il]
			}
			q += link.D() * gsum
		}
		c.q[i] = q
	}

	if c.single {
		// x_r[t+1] = U'^{-1}(q_r[t])  (eq. 10), damped: the pure best
		// response switches discontinuously between the rate cap and 0
		// around q = U'(0) and saw-tooths with a fixed dual step, so the
		// implementation relaxes toward it (same fixed point).
		const beta = 0.3
		for i := range c.routes {
			x := c.capRate(i, c.util[c.flowOf[i]].PrimeInv(c.q[i]))
			c.x[i] = (1-beta)*c.x[i] + beta*x
		}
	} else {
		// Proximal multipath update (§4.3). The term U'_f − q_r is scaled
		// by S (Options.UtilityScale): this is the proximal controller for
		// the equivalently-maximized objective Σ S·U_f − S/2 Σ (x−x̄)²
		// expressed in normalized prices q/S, and it moves the rates at a
		// practical Mbps-per-slot speed. The fixed point U'_f(x_f) = q_r
		// for active routes is unchanged. The flow rates are computed once
		// per slot (x does not change inside the loop; newX is scratch).
		scale := c.opts.UtilityScale
		for f := 0; f < c.flows; f++ {
			c.frate[f] = c.FlowRate(f)
		}
		for i := range c.routes {
			f := c.flowOf[i]
			inner := c.xbar[i] + scale*(c.util[f].Prime(c.frate[f])-c.q[i])
			if inner < 0 {
				inner = 0
			}
			nx := (1-alpha)*c.x[i] + alpha*inner
			c.newX[i] = c.capRate(i, nx)
		}
		for i := range c.xbar {
			c.xbar[i] = (1-alpha)*c.xbar[i] + alpha*c.x[i]
		}
		copy(c.x, c.newX)
	}
	c.t++
}

func (c *Controller) capRate(i int, x float64) float64 {
	if x < 0 {
		return 0
	}
	if !c.opts.DisableRateCap && x > c.routeCap[i] {
		return c.routeCap[i]
	}
	if math.IsInf(x, 1) {
		return c.routeCap[i]
	}
	return x
}

// Run advances n slots and returns the trajectory of per-flow total rates:
// out[t][f] is flow f's rate after slot t. The rows share one backing
// array, so a whole trajectory costs two allocations instead of n+1.
func (c *Controller) Run(n int) [][]float64 {
	out := make([][]float64, n)
	if n <= 0 {
		return out
	}
	flat := make([]float64, n*c.flows)
	for t := 0; t < n; t++ {
		c.Step()
		row := flat[t*c.flows : (t+1)*c.flows : (t+1)*c.flows]
		for f := range row {
			row[f] = c.FlowRate(f)
		}
		out[t] = row
	}
	return out
}

// MaxAirtimeViolation returns max_l (y_l − 1): how much the airtime
// constraint (2) is exceeded at the current rates (≤ 0 when feasible).
// It recomputes loads from the current rates.
func (c *Controller) MaxAirtimeViolation() float64 {
	for l := range c.load {
		c.load[l] = 0
	}
	for i, r := range c.routes {
		for _, l := range r.Links {
			c.load[l] += c.x[i]
		}
	}
	if c.ExternalLoad != nil {
		for l := range c.load {
			c.load[l] += c.ExternalLoad[l]
		}
	}
	worst := math.Inf(-1)
	for l := 0; l < c.net.NumLinks(); l++ {
		var y float64
		for _, lp := range c.net.Interference(graph.LinkID(l)) {
			link := c.net.Link(lp)
			if c.load[lp] > 0 && link.Capacity > 0 {
				y += c.load[lp] / link.Capacity
			}
		}
		if v := y - 1; v > worst {
			worst = v
		}
	}
	return worst
}

// SlotsToSteady returns the first slot index after which every value of
// series stays within tol (relative) of the final value — the paper's
// steady-state criterion ("throughput within 1% of the final throughput").
// It returns len(series) if the series never settles.
func SlotsToSteady(series []float64, tol float64) int {
	if len(series) == 0 {
		return 0
	}
	final := series[len(series)-1]
	band := tol * math.Abs(final)
	if band == 0 {
		band = tol
	}
	for t := 0; t < len(series); t++ {
		ok := true
		for u := t; u < len(series); u++ {
			if math.Abs(series[u]-final) > band {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	return len(series)
}
