package congestion

import (
	"math/rand"
	"testing"
)

// TestAllocsControllerBatch guards the SoA batch core: once a pooled
// controller has been sized by one Reset+RunAppend, re-solving the same
// problem — Reset, stepping, and appending a full trajectory into a
// reused buffer — performs zero heap allocations. CI runs the Allocs
// guards as a regression gate (`go test -run Allocs ./...`).
func TestAllocsControllerBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gnet, routes := randomScenario(rng)
	for gnet == nil {
		gnet, routes = randomScenario(rng)
	}
	var ctrl Controller
	if err := ctrl.Reset(gnet, routes, Options{}); err != nil {
		t.Fatal(err)
	}
	traj := ctrl.RunAppend(50, nil) // size the trajectory buffer

	if avg := testing.AllocsPerRun(100, func() {
		if err := ctrl.Reset(gnet, routes, Options{}); err != nil {
			t.Fatal(err)
		}
		traj = ctrl.RunAppend(50, traj[:0])
	}); avg != 0 {
		t.Errorf("warm Reset+RunAppend allocates %v per evaluation, want 0", avg)
	}

	if avg := testing.AllocsPerRun(200, func() {
		ctrl.Step()
	}); avg != 0 {
		t.Errorf("Step allocates %v per slot, want 0", avg)
	}
}
