package congestion

// Property tests asserting the SoA batch controller is exact-== equivalent
// to the scalar reference (reference_test.go): same trajectories, bit for
// bit, across random topologies, flow sets, alpha values, CSC on/off
// routing, both controller modes, external load, fair-share floors and
// non-default utilities.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// randomScenario draws a random instance, view and route set the way the
// §5 sweeps do: single-path or multipath routes for 1-4 random flows, CSC
// on or off.
func randomScenario(rng *rand.Rand) (*graph.Network, []Route) {
	var inst *topology.Instance
	if rng.Intn(2) == 0 {
		inst = topology.Residential(rng, topology.Config{})
	} else {
		inst = topology.Enterprise(rng, topology.Config{})
	}
	view := topology.View(rng.Intn(3))
	net := inst.BuildCached(view)
	cfg := routing.Config{N: 2 + rng.Intn(4), UseCSC: rng.Intn(2) == 0}
	multi := rng.Intn(2) == 0
	flows := 1 + rng.Intn(4)
	var routes []Route
	for f := 0; f < flows; f++ {
		src, dst := inst.RandomFlow(rng)
		if multi {
			for _, p := range routing.Multipath(net.Network, src, dst, cfg).Paths {
				routes = append(routes, Route{Links: p, Flow: f})
			}
		} else {
			if p := routing.SinglePath(net.Network, src, dst, cfg); p != nil {
				routes = append(routes, Route{Links: p, Flow: f})
			}
		}
	}
	if len(routes) == 0 {
		return nil, nil
	}
	return net.Network, routes
}

// randomOptions draws controller options spanning the feature surface.
func randomOptions(rng *rand.Rand, routes []Route) Options {
	opts := Options{}
	switch rng.Intn(3) {
	case 0:
		opts.Alpha = 0.02
	case 1:
		opts.Alpha = 0.005 + rng.Float64()*0.1
	case 2:
		opts.Alpha = 1 // boundary
	}
	if rng.Intn(2) == 0 {
		opts.Delta = rng.Float64() * 0.3
	}
	opts.Mode = Mode(rng.Intn(3))
	opts.DisableRateCap = rng.Intn(4) == 0
	if rng.Intn(3) == 0 {
		opts.FairShareFloor = 0.1 + rng.Float64()*0.5
	}
	if rng.Intn(3) == 0 {
		opts.UtilityScale = 1 + rng.Float64()*99
	}
	if rng.Intn(3) == 0 {
		opts.InitialRates = make([]float64, len(routes))
		for i := range opts.InitialRates {
			opts.InitialRates[i] = rng.Float64() * 30
		}
	}
	if rng.Intn(4) == 0 {
		opts.Utilities = map[int]Utility{}
		for f := 0; f < 4; f++ {
			switch rng.Intn(3) {
			case 0:
				opts.Utilities[f] = ProportionalFairness{Weight: 1 + rng.Float64()}
			case 1:
				opts.Utilities[f] = AlphaFair{A: 2}
			}
		}
	}
	return opts
}

// TestBatchMatchesReferenceTrajectories is the core equivalence property:
// over random scenarios, every slot of every flow's trajectory must be
// exactly equal (==, no tolerance) between the batch controller and the
// scalar reference.
func TestBatchMatchesReferenceTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	cases := 60
	if testing.Short() {
		cases = 15
	}
	for it := 0; it < cases; it++ {
		net, routes := randomScenario(rng)
		if net == nil {
			continue
		}
		opts := randomOptions(rng, routes)
		slots := 50 + rng.Intn(200)

		ctrl, err := New(net, routes, opts)
		if err != nil {
			t.Fatalf("case %d: New: %v", it, err)
		}
		ref, err := newRef(net, routes, opts)
		if err != nil {
			t.Fatalf("case %d: newRef: %v", it, err)
		}
		if rng.Intn(3) == 0 {
			ext := make([]float64, net.NumLinks())
			for l := range ext {
				if rng.Intn(4) == 0 {
					ext[l] = rng.Float64() * 20
				}
			}
			ctrl.ExternalLoad = ext
			ref.ExternalLoad = ext
		}

		got := ctrl.Run(slots)
		want := ref.Run(slots)
		for s := range want {
			for f := range want[s] {
				if got[s][f] != want[s][f] {
					t.Fatalf("case %d (routes=%d opts=%+v): slot %d flow %d: batch %v != reference %v",
						it, len(routes), opts, s, f, got[s][f], want[s][f])
				}
			}
		}
		// Duals and prices must agree too, not just the rate projections.
		for l := 0; l < net.NumLinks(); l++ {
			if g, w := ctrl.Gamma(graph.LinkID(l)), ref.gamma[l]; g != w {
				t.Fatalf("case %d: gamma[%d]: batch %v != reference %v", it, l, g, w)
			}
		}
		for r := range routes {
			if g, w := ctrl.Price(r), ref.q[r]; g != w {
				t.Fatalf("case %d: q[%d]: batch %v != reference %v", it, r, g, w)
			}
		}
	}
}

// TestResetMatchesFreshController: a controller Reset onto a new problem
// must behave exactly like a freshly allocated one — the pooled sweep path
// depends on this.
func TestResetMatchesFreshController(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctrl := &Controller{}
	for it := 0; it < 25; it++ {
		net, routes := randomScenario(rng)
		if net == nil {
			continue
		}
		opts := randomOptions(rng, routes)
		if err := ctrl.Reset(net, routes, opts); err != nil {
			t.Fatalf("case %d: Reset: %v", it, err)
		}
		fresh, err := New(net, routes, opts)
		if err != nil {
			t.Fatalf("case %d: New: %v", it, err)
		}
		slots := 30 + rng.Intn(100)
		got := ctrl.Run(slots)
		want := fresh.Run(slots)
		for s := range want {
			for f := range want[s] {
				if got[s][f] != want[s][f] {
					t.Fatalf("case %d: slot %d flow %d: reset %v != fresh %v", it, s, f, got[s][f], want[s][f])
				}
			}
		}
	}
}

// TestRunAppendMatchesRun: the flat batch form must produce the same
// values as the row-sliced Run.
func TestRunAppendMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for it := 0; it < 10; it++ {
		net, routes := randomScenario(rng)
		if net == nil {
			continue
		}
		opts := randomOptions(rng, routes)
		a, err := New(net, routes, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(net, routes, opts)
		if err != nil {
			t.Fatal(err)
		}
		rows := a.Run(80)
		flat := b.RunAppend(80, nil)
		nf := a.NumFlows()
		if len(flat) != 80*nf {
			t.Fatalf("RunAppend length %d, want %d", len(flat), 80*nf)
		}
		for s := range rows {
			for f := range rows[s] {
				if rows[s][f] != flat[s*nf+f] {
					t.Fatalf("slot %d flow %d: Run %v != RunAppend %v", s, f, rows[s][f], flat[s*nf+f])
				}
			}
		}
	}
}

// TestBatchDeadLinkMatchesReference pins the cap<=0 edge cases (infinite
// prices, zero-capacity bottlenecks) that the SoA rewrite restructured.
func TestBatchDeadLinkMatchesReference(t *testing.T) {
	b := graph.NewBuilder(nil)
	n0 := b.AddNode("a", 0, 0, graph.TechWiFi)
	n1 := b.AddNode("b", 1, 0, graph.TechWiFi)
	n2 := b.AddNode("c", 2, 0, graph.TechWiFi)
	l0 := b.AddLink(n0, n1, graph.TechWiFi, 0) // dead link
	l1 := b.AddLink(n1, n2, graph.TechWiFi, 30)
	net := b.Build()
	routes := []Route{{Links: graph.Path{l0, l1}, Flow: 0}, {Links: graph.Path{l1}, Flow: 1}}
	for _, mode := range []Mode{ModeAuto, ModeMultipath} {
		opts := Options{Mode: mode}
		ctrl, err := New(net, routes, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := newRef(net, routes, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, want := ctrl.Run(120), ref.Run(120)
		for s := range want {
			for f := range want[s] {
				if got[s][f] != want[s][f] {
					t.Fatalf("mode %v slot %d flow %d: %v != %v", mode, s, f, got[s][f], want[s][f])
				}
			}
		}
		if !math.IsInf(ctrl.Price(0), 1) {
			t.Fatalf("mode %v: expected infinite price on dead route, got %v", mode, ctrl.Price(0))
		}
	}
}
