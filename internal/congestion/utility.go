// Package congestion implements the EMPoWER congestion-control algorithms
// (paper §4): a distributed utility-maximizing rate controller under the
// airtime interference constraint
//
//	Σ_{l'∈I_l} d_{l'} Σ_{r: l'∈r} x_r ≤ 1 − δ   ∀ l ∈ L,
//
// in its single-path form (dual subgradient, eqs. 7–10) and its multipath
// form (proximal optimization, eq. 11 with the corresponding update rules).
// The package also provides the step-size heuristic used by the paper's
// implementation (§6.1) and steady-state detection used by the evaluation.
package congestion

import "math"

// Utility is an increasing, strictly concave utility function attached to
// a flow. It describes the benefit the flow's source obtains from sending
// at rate x (Mbps).
type Utility interface {
	// Value returns U(x).
	Value(x float64) float64
	// Prime returns U'(x), the marginal utility.
	Prime(x float64) float64
	// PrimeInv returns U'^{-1}(q): the rate at which marginal utility
	// equals the price q. It must return 0 when q ≥ U'(0).
	PrimeInv(q float64) float64
}

// ProportionalFairness is the utility used throughout the paper's
// evaluation: U(x) = w·log(1 + x). It tunes the classic throughput-vs-
// fairness trade-off.
type ProportionalFairness struct {
	// Weight scales the utility; 1 if zero.
	Weight float64
}

func (u ProportionalFairness) w() float64 {
	if u.Weight == 0 {
		return 1
	}
	return u.Weight
}

// Value implements Utility.
func (u ProportionalFairness) Value(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return u.w() * math.Log1p(x)
}

// Prime implements Utility.
func (u ProportionalFairness) Prime(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return u.w() / (1 + x)
}

// PrimeInv implements Utility. For U' = w/(1+x): x = w/q − 1, clamped at 0.
func (u ProportionalFairness) PrimeInv(q float64) float64 {
	if q <= 0 {
		return math.Inf(1)
	}
	x := u.w()/q - 1
	if x < 0 {
		return 0
	}
	return x
}

// AlphaFair is the α-fair utility family (Mo & Walrand):
// U(x) = x^{1−a}/(1−a) for a ≠ 1 and log utility in the limit a → 1.
// a = 0 is throughput maximization (not strictly concave, avoid), a = 1 is
// proportional fairness over x (not 1+x), a = 2 approximates minimum
// potential delay fairness, a → ∞ max-min fairness.
type AlphaFair struct {
	A float64
	// Eps regularizes near x = 0 where log/α-fair utilities diverge;
	// defaults to 1e-3.
	Eps float64
}

func (u AlphaFair) eps() float64 {
	if u.Eps <= 0 {
		return 1e-3
	}
	return u.Eps
}

// Value implements Utility.
func (u AlphaFair) Value(x float64) float64 {
	if x < 0 {
		x = 0
	}
	x += u.eps()
	if u.A == 1 {
		return math.Log(x)
	}
	return math.Pow(x, 1-u.A) / (1 - u.A)
}

// Prime implements Utility: U'(x) = (x+eps)^{-a}.
func (u AlphaFair) Prime(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Pow(x+u.eps(), -u.A)
}

// PrimeInv implements Utility: x = q^{-1/a} − eps.
func (u AlphaFair) PrimeInv(q float64) float64 {
	if q <= 0 {
		return math.Inf(1)
	}
	x := math.Pow(q, -1/u.A) - u.eps()
	if x < 0 {
		return 0
	}
	return x
}
