package congestion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// figure1 builds the paper's Figure 1 network (see routing tests).
func figure1() (*graph.Network, graph.Path, graph.Path) {
	b := graph.NewBuilder(nil)
	a := b.AddNode("a", 0, 0, graph.TechPLC, graph.TechWiFi)
	bb := b.AddNode("b", 10, 0, graph.TechPLC, graph.TechWiFi)
	c := b.AddNode("c", 20, 0, graph.TechWiFi)
	plcAB, _ := b.AddDuplex(a, bb, graph.TechPLC, 10)
	wifiAB, _ := b.AddDuplex(a, bb, graph.TechWiFi, 15)
	wifiBC, _ := b.AddDuplex(bb, c, graph.TechWiFi, 30)
	net := b.Build()
	route1 := graph.Path{plcAB, wifiBC}  // hybrid
	route2 := graph.Path{wifiAB, wifiBC} // two-hop WiFi
	return net, route1, route2
}

// singleLink builds a network with one link of the given capacity and
// returns the network and the link's path.
func singleLink(capacity float64) (*graph.Network, graph.Path) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	l := b.AddLink(u, v, graph.TechWiFi, capacity)
	return b.Build(), graph.Path{l}
}

func TestProportionalFairness(t *testing.T) {
	u := ProportionalFairness{}
	if u.Value(0) != 0 {
		t.Error("U(0) != 0")
	}
	if math.Abs(u.Prime(0)-1) > 1e-12 {
		t.Error("U'(0) != 1")
	}
	// PrimeInv inverts Prime.
	for _, x := range []float64{0, 0.5, 3, 100} {
		if got := u.PrimeInv(u.Prime(x)); math.Abs(got-x) > 1e-9 {
			t.Errorf("PrimeInv(Prime(%v)) = %v", x, got)
		}
	}
	// Prices above U'(0) give zero rate.
	if u.PrimeInv(2) != 0 {
		t.Error("PrimeInv above U'(0) should be 0")
	}
	if !math.IsInf(u.PrimeInv(0), 1) {
		t.Error("PrimeInv(0) should be +Inf")
	}
	// Weighted variant scales.
	w := ProportionalFairness{Weight: 2}
	if math.Abs(w.Prime(1)-1) > 1e-12 {
		t.Error("weighted Prime wrong")
	}
}

func TestProportionalFairnessConcavity(t *testing.T) {
	u := ProportionalFairness{}
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 100))
		y := math.Abs(math.Mod(b, 100))
		if x > y {
			x, y = y, x
		}
		if x == y {
			return true
		}
		// Increasing and marginal utility decreasing.
		return u.Value(y) >= u.Value(x) && u.Prime(y) <= u.Prime(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaFair(t *testing.T) {
	u := AlphaFair{A: 2}
	for _, x := range []float64{0.1, 1, 5} {
		if got := u.PrimeInv(u.Prime(x)); math.Abs(got-x) > 1e-6 {
			t.Errorf("AlphaFair PrimeInv(Prime(%v)) = %v", x, got)
		}
	}
	log := AlphaFair{A: 1}
	if math.Abs(log.Value(math.E-log.eps())-1) > 1e-9 {
		t.Error("A=1 should be log utility")
	}
}

func TestNewValidation(t *testing.T) {
	net, r1, _ := figure1()
	if _, err := New(net, []Route{{Links: nil, Flow: 0}}, Options{}); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := New(net, []Route{{Links: r1, Flow: -1}}, Options{}); err == nil {
		t.Error("negative flow accepted")
	}
	if _, err := New(net, []Route{{Links: r1, Flow: 0}}, Options{Alpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := New(net, []Route{{Links: r1, Flow: 0}}, Options{Delta: 1}); err == nil {
		t.Error("delta = 1 accepted")
	}
}

func TestSingleFlowSingleLinkConvergesToCapacity(t *testing.T) {
	net, p := singleLink(10)
	c, err := New(net, []Route{{Links: p, Flow: 0}}, Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2000)
	if got := c.FlowRate(0); math.Abs(got-10) > 0.5 {
		t.Errorf("flow rate = %v, want ~10", got)
	}
	if v := c.MaxAirtimeViolation(); v > 0.05 {
		t.Errorf("airtime violation %v", v)
	}
}

func TestTwoFlowsShareLinkFairly(t *testing.T) {
	net, p := singleLink(10)
	c, err := New(net, []Route{
		{Links: p, Flow: 0},
		{Links: p, Flow: 1},
	}, Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(4000)
	x0, x1 := c.FlowRate(0), c.FlowRate(1)
	// Proportional fairness with identical utilities: equal split at 5.
	if math.Abs(x0-5) > 0.5 || math.Abs(x1-5) > 0.5 {
		t.Errorf("rates = %v, %v, want ~5 each", x0, x1)
	}
	if v := c.MaxAirtimeViolation(); v > 0.05 {
		t.Errorf("airtime violation %v", v)
	}
}

func TestDeltaMarginReducesRate(t *testing.T) {
	net, p := singleLink(10)
	c, _ := New(net, []Route{{Links: p, Flow: 0}}, Options{Alpha: 0.05, Delta: 0.3})
	c.Run(3000)
	if got := c.FlowRate(0); math.Abs(got-7) > 0.5 {
		t.Errorf("flow rate with δ=0.3 = %v, want ~7", got)
	}
}

func TestMultipathFigure1ConvergesToOptimal(t *testing.T) {
	net, r1, r2 := figure1()
	c, err := New(net, []Route{
		{Links: r1, Flow: 0},
		{Links: r2, Flow: 0},
	}, Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(6000)
	total := c.FlowRate(0)
	// Paper: optimal split is 10 Mbps on Route 1 and 6.67 on Route 2.
	if math.Abs(total-50.0/3) > 1.0 {
		t.Errorf("total rate = %v, want ~16.67", total)
	}
	if v := c.MaxAirtimeViolation(); v > 0.05 {
		t.Errorf("airtime violation %v at rates %v", v, c.Rates())
	}
	// Route 1 should carry more than Route 2.
	if c.Rates()[0] < c.Rates()[1] {
		t.Errorf("route rates %v: hybrid route should dominate", c.Rates())
	}
}

func TestMultipathAvoidsCongestedMedium(t *testing.T) {
	// Two flows: flow 0 has a PLC route and a WiFi route; flow 1 has only
	// WiFi. At the optimum flow 0 should lean on PLC, leaving WiFi
	// airtime to flow 1 (the Figure 9 offloading behaviour).
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	s2 := b.AddNode("s2", 2, 0, graph.TechWiFi)
	d2 := b.AddNode("d2", 3, 0, graph.TechWiFi)
	plc := b.AddLink(s, d, graph.TechPLC, 50)
	wifi := b.AddLink(s, d, graph.TechWiFi, 50)
	wifi2 := b.AddLink(s2, d2, graph.TechWiFi, 50)
	net := b.Build()
	c, err := New(net, []Route{
		{Links: graph.Path{plc}, Flow: 0},
		{Links: graph.Path{wifi}, Flow: 0},
		{Links: graph.Path{wifi2}, Flow: 1},
	}, Options{Alpha: 0.05, Mode: ModeMultipath})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(8000)
	// Flow 0 should saturate PLC (~50); WiFi is shared between flow 0's
	// second route and flow 1. Proportional fairness splits WiFi airtime
	// to equalize marginal utilities: flow 1 (only WiFi) gets more WiFi
	// than flow 0's WiFi route.
	if c.Rates()[0] < 40 {
		t.Errorf("PLC route rate = %v, want ~50", c.Rates()[0])
	}
	if c.Rates()[2] < c.Rates()[1] {
		t.Errorf("flow 1 WiFi rate %v should exceed flow 0's WiFi rate %v", c.Rates()[2], c.Rates()[1])
	}
	if v := c.MaxAirtimeViolation(); v > 0.05 {
		t.Errorf("airtime violation %v", v)
	}
}

func TestExternalLoadRespected(t *testing.T) {
	net, p := singleLink(10)
	c, _ := New(net, []Route{{Links: p, Flow: 0}}, Options{Alpha: 0.05})
	ext := make([]float64, net.NumLinks())
	ext[p[0]] = 5 // an external station consumes half the medium
	c.ExternalLoad = ext
	c.Run(3000)
	if got := c.FlowRate(0); math.Abs(got-5) > 0.5 {
		t.Errorf("rate with external load = %v, want ~5", got)
	}
}

func TestDeadLinkRouteGetsZeroRate(t *testing.T) {
	net, p := singleLink(10)
	net.Link(p[0]).Capacity = 0
	c, _ := New(net, []Route{{Links: p, Flow: 0}}, Options{Alpha: 0.05})
	c.Run(100)
	if got := c.FlowRate(0); got != 0 {
		t.Errorf("rate over dead link = %v, want 0", got)
	}
}

func TestAirtimeConstraintProperty(t *testing.T) {
	// After convergence the airtime constraint must hold (within wiggle)
	// for random capacities.
	f := func(rawCap uint16) bool {
		capacity := 5 + float64(rawCap%200)
		net, p := singleLink(capacity)
		c, _ := New(net, []Route{{Links: p, Flow: 0}}, Options{Alpha: 0.05})
		c.Run(1500)
		return c.MaxAirtimeViolation() < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFlowRatesAndUtility(t *testing.T) {
	net, p := singleLink(10)
	c, _ := New(net, []Route{{Links: p, Flow: 0}}, Options{})
	c.SetRate(0, 4)
	if got := c.FlowRates(); len(got) != 1 || got[0] != 4 {
		t.Errorf("FlowRates = %v", got)
	}
	if got := c.Utility(); math.Abs(got-math.Log(5)) > 1e-12 {
		t.Errorf("Utility = %v, want log(5)", got)
	}
	if c.NumRoutes() != 1 || c.NumFlows() != 1 {
		t.Error("counts wrong")
	}
}

func TestSlotsToSteady(t *testing.T) {
	// Converges at index 3.
	s := []float64{0, 5, 9, 10, 10, 10}
	if got := SlotsToSteady(s, 0.01); got != 3 {
		t.Errorf("SlotsToSteady = %d, want 3", got)
	}
	// Never settles within 1%: a late excursion.
	s2 := []float64{10, 10, 20, 10}
	if got := SlotsToSteady(s2, 0.01); got != 3 {
		t.Errorf("SlotsToSteady = %d, want 3", got)
	}
	if SlotsToSteady(nil, 0.01) != 0 {
		t.Error("empty series should settle at 0")
	}
	// Constant series settles immediately.
	if got := SlotsToSteady([]float64{5, 5, 5}, 0.01); got != 0 {
		t.Errorf("constant series: %d, want 0", got)
	}
}

func TestAlphaTunerScaling(t *testing.T) {
	// One-hop route: 4x.
	if a := NewAlphaTuner(0.02, 1, 1).Alpha(); math.Abs(a-0.08) > 1e-12 {
		t.Errorf("one-hop alpha = %v, want 0.08", a)
	}
	// Two-hop: 2x.
	if a := NewAlphaTuner(0.02, 2, 2).Alpha(); math.Abs(a-0.04) > 1e-12 {
		t.Errorf("two-hop alpha = %v, want 0.04", a)
	}
	// Single path, long route: 2x.
	if a := NewAlphaTuner(0.02, 1, 4).Alpha(); math.Abs(a-0.04) > 1e-12 {
		t.Errorf("single-path alpha = %v, want 0.04", a)
	}
	// Multipath, long route: base.
	if a := NewAlphaTuner(0.02, 2, 4).Alpha(); math.Abs(a-0.02) > 1e-12 {
		t.Errorf("multipath long alpha = %v, want 0.02", a)
	}
}

func TestAlphaTunerHalvesOnOscillation(t *testing.T) {
	tun := NewAlphaTuner(0.02, 2, 4)
	before := tun.Alpha()
	// Feed a growing oscillation: amplitudes never decrease.
	changed := false
	for i := 0; i < 40; i++ {
		v := 10.0
		amp := 1 + float64(i)*0.1
		if i%2 == 0 {
			v += amp
		} else {
			v -= amp
		}
		if tun.Observe(v) {
			changed = true
		}
	}
	if !changed || tun.Alpha() >= before {
		t.Errorf("alpha should halve under sustained oscillation: %v -> %v", before, tun.Alpha())
	}
}

func TestAlphaTunerStableUnderConvergence(t *testing.T) {
	tun := NewAlphaTuner(0.02, 2, 4)
	before := tun.Alpha()
	// A converging (damped) trajectory must not trigger halving.
	for i := 0; i < 60; i++ {
		v := 10 + math.Pow(0.8, float64(i))*math.Cos(float64(i))
		tun.Observe(v)
	}
	if tun.Alpha() != before {
		t.Errorf("alpha changed on damped trajectory: %v -> %v", before, tun.Alpha())
	}
}

func TestConvergenceFastWithTunedAlpha(t *testing.T) {
	// The paper reports ~90 slots to steady state in simulations. Check
	// that a simple scenario converges within a few hundred slots at the
	// tuned alpha for 2-hop routes (0.04).
	net, r1, r2 := figure1()
	c, _ := New(net, []Route{
		{Links: r1, Flow: 0},
		{Links: r2, Flow: 0},
	}, Options{Alpha: 0.04})
	traj := c.Run(4000)
	series := make([]float64, len(traj))
	for i, row := range traj {
		series[i] = row[0]
	}
	steady := SlotsToSteady(series, 0.01)
	if steady > 3000 {
		t.Errorf("convergence took %d slots", steady)
	}
	t.Logf("slots to steady state: %d (final rate %.2f)", steady, series[len(series)-1])
}
