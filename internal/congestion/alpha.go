package congestion

// AlphaTuner implements the step-size heuristic of §6.1: α starts at a
// base value (0.02 in the paper), is multiplied by 2 when the flow uses a
// single path or its longest route has two hops, by 4 when the longest
// route has one hop, and is divided by 2 whenever 6 or more non-decreasing
// oscillations of the flow rate are observed.
type AlphaTuner struct {
	// Base is the initial step size (default 0.02).
	Base float64
	// MinAlpha floors the division (default 1e-4).
	MinAlpha float64

	alpha float64

	// Oscillation tracking.
	last      float64
	lastDelta float64
	lastAmp   float64
	nondec    int
	started   bool
}

// NewAlphaTuner returns a tuner initialized per the paper's heuristic for
// a flow whose longest route has longestHops hops and which uses
// numRoutes routes.
func NewAlphaTuner(base float64, numRoutes, longestHops int) *AlphaTuner {
	if base <= 0 {
		base = 0.02
	}
	t := &AlphaTuner{Base: base, MinAlpha: 1e-4}
	a := base
	switch {
	case longestHops <= 1:
		a *= 4
	case numRoutes == 1 || longestHops == 2:
		a *= 2
	}
	t.alpha = a
	return t
}

// Alpha returns the current step size.
func (t *AlphaTuner) Alpha() float64 { return t.alpha }

// Observe feeds the current flow rate; it detects oscillations whose
// amplitude does not decrease and halves α after 6 of them in a row.
// It returns true when α changed.
func (t *AlphaTuner) Observe(rate float64) bool {
	if !t.started {
		t.started = true
		t.last = rate
		return false
	}
	delta := rate - t.last
	changed := false
	// A sign change in the rate increments marks a turning point; the
	// amplitude of the half-oscillation is |delta from the previous
	// extremum|, approximated by the last increment magnitude.
	if t.lastDelta != 0 && delta*t.lastDelta < 0 {
		amp := abs(t.lastDelta)
		if t.lastAmp > 0 && amp >= t.lastAmp {
			t.nondec++
			if t.nondec >= 6 {
				t.alpha /= 2
				if t.alpha < t.MinAlpha {
					t.alpha = t.MinAlpha
				}
				t.nondec = 0
				changed = true
			}
		} else {
			t.nondec = 0
		}
		t.lastAmp = amp
	}
	if delta != 0 {
		t.lastDelta = delta
	}
	t.last = rate
	return changed
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
