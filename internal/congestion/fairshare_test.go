package congestion

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// externalScenario builds one 10 Mbps link carrying an EMPoWER flow plus
// a saturating external station on the same medium.
func externalScenario(extRate float64) (*Controller, error) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	l := b.AddLink(u, v, graph.TechWiFi, 10)
	ext := b.AddLink(v, u, graph.TechWiFi, 10) // the external transmitter
	net := b.Build()
	c, err := New(net, []Route{{Links: graph.Path{l}, Flow: 0}}, Options{
		Alpha:          0.05,
		FairShareFloor: 0.5,
	})
	if err != nil {
		return nil, err
	}
	load := make([]float64, net.NumLinks())
	load[ext] = extRate
	c.ExternalLoad = load
	return c, nil
}

// TestFairShareFloorClaimsHalf: with an external station saturating the
// medium, the stock controller would starve; the fairness extension keeps
// at least half the airtime (5 Mbps on a 10 Mbps link).
func TestFairShareFloorClaimsHalf(t *testing.T) {
	c, err := externalScenario(10) // external saturates: y_ext = 1
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3000)
	if got := c.FlowRate(0); math.Abs(got-5) > 0.5 {
		t.Errorf("rate with fair-share floor = %v, want ~5", got)
	}
}

// TestFairShareFloorInactiveWhenRoomRemains: with light external load the
// floor must not bind — the controller uses the true leftover airtime.
func TestFairShareFloorInactiveWhenRoomRemains(t *testing.T) {
	c, err := externalScenario(2) // y_ext = 0.2, leftover 0.8 > floor 0.5
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3000)
	if got := c.FlowRate(0); math.Abs(got-8) > 0.5 {
		t.Errorf("rate with light external load = %v, want ~8", got)
	}
}

// TestPaperBehaviourWithoutFloor: with the extension disabled the
// controller converges to the leftover airtime, reproducing the paper's
// "if one external node saturates WiFi, EMPoWER converges to an
// allocation that never uses WiFi".
func TestPaperBehaviourWithoutFloor(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	l := b.AddLink(u, v, graph.TechWiFi, 10)
	ext := b.AddLink(v, u, graph.TechWiFi, 10)
	net := b.Build()
	c, err := New(net, []Route{{Links: graph.Path{l}, Flow: 0}}, Options{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, net.NumLinks())
	load[ext] = 10 // saturating
	c.ExternalLoad = load
	c.Run(3000)
	if got := c.FlowRate(0); got > 0.5 {
		t.Errorf("rate without floor under saturation = %v, want ~0", got)
	}
}

func TestFairShareFloorValidation(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	l := b.AddLink(u, v, graph.TechWiFi, 10)
	net := b.Build()
	if _, err := New(net, []Route{{Links: graph.Path{l}, Flow: 0}}, Options{FairShareFloor: 1}); err == nil {
		t.Error("floor = 1 accepted")
	}
	if _, err := New(net, []Route{{Links: graph.Path{l}, Flow: 0}}, Options{FairShareFloor: -0.1}); err == nil {
		t.Error("negative floor accepted")
	}
}
