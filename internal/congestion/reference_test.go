package congestion

// The pre-SoA scalar controller, kept verbatim (renamed) as an executable
// specification: equivalence_test.go asserts the batch controller produces
// exact-== trajectories against it. Mirrors the reference_test.go pattern
// PR 2 established for the routing workspace rewrite.

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// refController is the per-flow/per-route scalar implementation the SoA
// batch core replaced.
type refController struct {
	net    *graph.Network
	routes []Route
	opts   Options

	flows      int
	flowOf     []int     // route -> flow
	util       []Utility // per flow
	flowRoutes [][]int   // flow -> route indices

	linkRoutes [][]int
	routeCap   []float64

	single bool

	x     []float64
	xbar  []float64
	gamma []float64
	load  []float64
	y     []float64
	q     []float64
	newX  []float64
	frate []float64

	ExternalLoad []float64

	t int
}

func newRef(net *graph.Network, routes []Route, opts Options) (*refController, error) {
	if opts.Alpha == 0 {
		opts.Alpha = 0.02
	}
	if opts.UtilityScale == 0 {
		opts.UtilityScale = 50
	}
	if opts.UtilityScale < 0 {
		return nil, fmt.Errorf("congestion: utility scale %v must be positive", opts.UtilityScale)
	}
	if opts.Alpha < 0 || opts.Alpha > 1 {
		return nil, fmt.Errorf("congestion: alpha %v out of (0,1]", opts.Alpha)
	}
	if opts.Delta < 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("congestion: delta %v out of [0,1)", opts.Delta)
	}
	if opts.FairShareFloor < 0 || opts.FairShareFloor >= 1 {
		return nil, fmt.Errorf("congestion: fair-share floor %v out of [0,1)", opts.FairShareFloor)
	}
	c := &refController{net: net, routes: routes, opts: opts}
	maxFlow := -1
	for i, r := range routes {
		if len(r.Links) == 0 {
			return nil, fmt.Errorf("congestion: route %d is empty", i)
		}
		if r.Flow < 0 {
			return nil, fmt.Errorf("congestion: route %d has negative flow", i)
		}
		if r.Flow > maxFlow {
			maxFlow = r.Flow
		}
	}
	c.flows = maxFlow + 1
	c.flowOf = make([]int, len(routes))
	c.flowRoutes = make([][]int, c.flows)
	c.routeCap = make([]float64, len(routes))
	c.linkRoutes = make([][]int, net.NumLinks())
	for i, r := range routes {
		c.flowOf[i] = r.Flow
		c.flowRoutes[r.Flow] = append(c.flowRoutes[r.Flow], i)
		cap := math.Inf(1)
		for _, l := range r.Links {
			c.linkRoutes[l] = append(c.linkRoutes[l], i)
			if cl := net.Link(l).Capacity; cl < cap {
				cap = cl
			}
		}
		c.routeCap[i] = cap
	}
	c.util = make([]Utility, c.flows)
	for f := 0; f < c.flows; f++ {
		if u, ok := opts.Utilities[f]; ok && u != nil {
			c.util[f] = u
		} else {
			c.util[f] = ProportionalFairness{}
		}
	}
	c.single = true
	for f := 0; f < c.flows; f++ {
		if len(c.flowRoutes[f]) != 1 {
			c.single = false
		}
	}
	switch opts.Mode {
	case ModeSinglePath:
		c.single = true
	case ModeMultipath:
		c.single = false
	}
	c.x = make([]float64, len(routes))
	c.xbar = make([]float64, len(routes))
	if opts.InitialRates != nil {
		for i := range c.x {
			if i < len(opts.InitialRates) && opts.InitialRates[i] > 0 {
				c.x[i] = opts.InitialRates[i]
				c.xbar[i] = opts.InitialRates[i]
			}
		}
	}
	c.gamma = make([]float64, net.NumLinks())
	c.load = make([]float64, net.NumLinks())
	c.y = make([]float64, net.NumLinks())
	c.q = make([]float64, len(routes))
	c.newX = make([]float64, len(routes))
	c.frate = make([]float64, c.flows)
	return c, nil
}

func (c *refController) FlowRate(f int) float64 {
	var s float64
	for _, r := range c.flowRoutes[f] {
		s += c.x[r]
	}
	return s
}

func (c *refController) Step() {
	alpha := c.opts.Alpha
	limit := 1 - c.opts.Delta

	for l := range c.load {
		c.load[l] = 0
	}
	for i, r := range c.routes {
		for _, l := range r.Links {
			c.load[l] += c.x[i]
		}
	}

	for l := 0; l < c.net.NumLinks(); l++ {
		var yOwn, yExt float64
		for _, lp := range c.net.Interference(graph.LinkID(l)) {
			link := c.net.Link(lp)
			if link.Capacity <= 0 {
				continue
			}
			if c.load[lp] > 0 {
				yOwn += c.load[lp] / link.Capacity
			}
			if c.ExternalLoad != nil && c.ExternalLoad[lp] > 0 {
				yExt += c.ExternalLoad[lp] / link.Capacity
			}
		}
		budget := limit - yExt
		if f := c.opts.FairShareFloor; f > 0 && budget < f*limit {
			budget = f * limit
		}
		c.y[l] = yOwn
		g := c.gamma[l] + alpha*(yOwn-budget)
		if g < 0 {
			g = 0
		}
		c.gamma[l] = g
	}

	for i, r := range c.routes {
		var q float64
		for _, l := range r.Links {
			link := c.net.Link(l)
			if link.Capacity <= 0 {
				q = math.Inf(1)
				break
			}
			var gsum float64
			for _, il := range c.net.Interference(l) {
				gsum += c.gamma[il]
			}
			q += link.D() * gsum
		}
		c.q[i] = q
	}

	if c.single {
		const beta = 0.3
		for i := range c.routes {
			x := c.capRate(i, c.util[c.flowOf[i]].PrimeInv(c.q[i]))
			c.x[i] = (1-beta)*c.x[i] + beta*x
		}
	} else {
		scale := c.opts.UtilityScale
		for f := 0; f < c.flows; f++ {
			c.frate[f] = c.FlowRate(f)
		}
		for i := range c.routes {
			f := c.flowOf[i]
			inner := c.xbar[i] + scale*(c.util[f].Prime(c.frate[f])-c.q[i])
			if inner < 0 {
				inner = 0
			}
			nx := (1-alpha)*c.x[i] + alpha*inner
			c.newX[i] = c.capRate(i, nx)
		}
		for i := range c.xbar {
			c.xbar[i] = (1-alpha)*c.xbar[i] + alpha*c.x[i]
		}
		copy(c.x, c.newX)
	}
	c.t++
}

func (c *refController) capRate(i int, x float64) float64 {
	if x < 0 {
		return 0
	}
	if !c.opts.DisableRateCap && x > c.routeCap[i] {
		return c.routeCap[i]
	}
	if math.IsInf(x, 1) {
		return c.routeCap[i]
	}
	return x
}

func (c *refController) Run(n int) [][]float64 {
	out := make([][]float64, n)
	if n <= 0 {
		return out
	}
	flat := make([]float64, n*c.flows)
	for t := 0; t < n; t++ {
		c.Step()
		row := flat[t*c.flows : (t+1)*c.flows : (t+1)*c.flows]
		for f := range row {
			row[f] = c.FlowRate(f)
		}
		out[t] = row
	}
	return out
}
