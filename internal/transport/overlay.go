package transport

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/routing"
)

// Connection couples a mini-TCP sender/receiver pair with two EMPoWER
// flows: a forward flow carrying data segments over the given routes and
// a reverse flow carrying acknowledgements over the best single path
// ("TCP acks are always sent on the best reversed route", §6.4).
type Connection struct {
	Sender   *Sender
	Receiver *Receiver
	Forward  *node.Flow
	Reverse  *node.Flow

	// FinishedAt is the virtual completion time of a bounded transfer
	// (< 0 while unfinished).
	FinishedAt float64
}

// Dial establishes a TCP connection from src to dst over the emulation,
// transferring totalBytes (-1 = unbounded) on the supplied routes,
// starting at virtual time startAt.
func Dial(em *node.Emulation, src, dst graph.NodeID, routes []graph.Path, totalBytes int64, cfg Config, startAt float64) (*Connection, error) {
	fwd, err := em.AddFlow(node.FlowSpec{
		Src: src, Dst: dst, Routes: routes, Kind: node.TrafficExternal, TCP: true,
	}, startAt)
	if err != nil {
		return nil, fmt.Errorf("transport: forward flow: %w", err)
	}
	back := routing.SinglePath(em.Net, dst, src, routing.DefaultConfig())
	if back == nil {
		return nil, fmt.Errorf("transport: no reverse path %d -> %d", dst, src)
	}
	rev, err := em.AddFlow(node.FlowSpec{
		Src: dst, Dst: src, Routes: []graph.Path{back}, Kind: node.TrafficExternal, TCP: true,
	}, startAt)
	if err != nil {
		return nil, fmt.Errorf("transport: reverse flow: %w", err)
	}

	conn := &Connection{Forward: fwd, Reverse: rev, FinishedAt: -1}

	conn.Sender = NewSender(em.Engine, cfg, totalBytes, func(seg Segment) error {
		return fwd.Push(seg.Len, seg)
	})
	conn.Sender.OnDone(func(at float64) { conn.FinishedAt = at })

	const tcpAckBytes = 40
	conn.Receiver = NewReceiver(func(a Ack) error {
		return rev.Push(tcpAckBytes, a)
	})

	// Wire the EMPoWER sinks to the TCP state machines. The sinks deliver
	// payloads in order by layer-2.5 sequence (with losses skipped), so
	// TCP sees ordinary gaps.
	em.Agent(dst).SinkFor(src, fwd.ID).OnDeliver = func(_ uint32, _ int, meta interface{}) {
		if seg, ok := meta.(Segment); ok {
			conn.Receiver.OnSegment(seg)
		}
	}
	em.Agent(src).SinkFor(dst, rev.ID).OnDeliver = func(_ uint32, _ int, meta interface{}) {
		if a, ok := meta.(Ack); ok {
			conn.Sender.OnAck(a)
		}
	}

	em.Engine.At(startAt, func() { conn.Sender.Start() })
	return conn, nil
}
