package transport

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
)

// pipe is a lossy, delayed in-process conduit for unit-testing the TCP
// state machines without the full emulation.
type pipe struct {
	engine  *sim.Engine
	delay   float64
	lossSeq map[int]bool // drop the i-th data transmission
	count   int
	recv    *Receiver
}

func (p *pipe) send(seg Segment) error {
	i := p.count
	p.count++
	if p.lossSeq[i] {
		return nil // silently lost in the network
	}
	p.engine.Schedule(p.delay, func() { p.recv.OnSegment(seg) })
	return nil
}

// loop wires sender and receiver over in-process pipes with symmetric
// delay.
func loop(engine *sim.Engine, total int64, loss map[int]bool) (*Sender, *Receiver, *pipe) {
	p := &pipe{engine: engine, delay: 0.01, lossSeq: loss}
	var snd *Sender
	p.recv = NewReceiver(func(a Ack) error {
		engine.Schedule(p.delay, func() { snd.OnAck(a) })
		return nil
	})
	snd = NewSender(engine, Config{}, total, p.send)
	return snd, p.recv, p
}

func TestTCPTransfersAllBytes(t *testing.T) {
	var e sim.Engine
	snd, rcv, _ := loop(&e, 100_000, nil)
	snd.Start()
	e.Run(30)
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if rcv.DeliveredBytes != 100_000 {
		t.Errorf("delivered %d bytes, want 100000", rcv.DeliveredBytes)
	}
	if snd.Retransmits != 0 {
		t.Errorf("unexpected retransmits on a clean pipe: %d", snd.Retransmits)
	}
}

func TestTCPSlowStartGrowth(t *testing.T) {
	var e sim.Engine
	snd, _, _ := loop(&e, -1, nil)
	snd.Start()
	start := snd.Cwnd()
	e.Run(1)
	if snd.Cwnd() <= start*4 {
		t.Errorf("cwnd grew %v -> %v; slow start should be faster", start, snd.Cwnd())
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	var e sim.Engine
	// Drop the 5th and 20th data transmissions.
	snd, rcv, _ := loop(&e, 200_000, map[int]bool{5: true, 20: true})
	snd.Start()
	e.Run(60)
	if !snd.Done() {
		t.Fatalf("transfer did not complete (delivered %d)", rcv.DeliveredBytes)
	}
	if rcv.DeliveredBytes != 200_000 {
		t.Errorf("delivered %d bytes, want 200000", rcv.DeliveredBytes)
	}
	if snd.Retransmits == 0 {
		t.Error("losses should cause retransmissions")
	}
}

func TestTCPFastRetransmit(t *testing.T) {
	var e sim.Engine
	snd, _, _ := loop(&e, 500_000, map[int]bool{10: true})
	snd.Start()
	e.Run(60)
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if snd.FastRecovers == 0 {
		t.Error("a single mid-stream loss should trigger fast retransmit, not timeout")
	}
}

func TestTCPTimeoutOnBurstLoss(t *testing.T) {
	var e sim.Engine
	// Drop the whole initial window and the first few retries: dupacks
	// cannot arrive, forcing RTOs with exponential backoff.
	loss := map[int]bool{}
	for i := 0; i < 4; i++ {
		loss[i] = true
	}
	snd, _, _ := loop(&e, 100_000, loss)
	snd.Start()
	e.Run(120)
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if snd.Timeouts == 0 {
		t.Error("burst loss of the initial window should force a timeout")
	}
}

func TestReceiverDuplicateHandling(t *testing.T) {
	var acks []int64
	r := NewReceiver(func(a Ack) error { acks = append(acks, a.CumAck); return nil })
	r.OnSegment(Segment{Seq: 0, Len: 100})
	r.OnSegment(Segment{Seq: 0, Len: 100})   // duplicate
	r.OnSegment(Segment{Seq: 200, Len: 100}) // gap
	r.OnSegment(Segment{Seq: 100, Len: 100}) // fills the hole
	if r.DeliveredBytes != 300 {
		t.Errorf("delivered %d, want 300", r.DeliveredBytes)
	}
	want := []int64{100, 100, 100, 300}
	if len(acks) != len(want) {
		t.Fatalf("acks = %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
}

func TestTCPOverEmulationSinglePath(t *testing.T) {
	// End-to-end: TCP over an EMPoWER single-path flow on one 20 Mbps
	// link should transfer a 2 MB file in roughly a second (with CC
	// shaping and δ=0.3 effective for TCP).
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	l := b.AddLink(u, v, graph.TechWiFi, 20)
	b.AddLink(v, u, graph.TechWiFi, 20)
	net := b.Build()
	em := node.NewEmulation(net, node.Config{}, 21)
	conn, err := Dial(em, u, v, []graph.Path{{l}}, 2_000_000, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(90)
	if !conn.Sender.Done() {
		t.Fatalf("TCP transfer incomplete: %d/%d bytes delivered, cwnd %.0f, retx %d, timeouts %d",
			conn.Receiver.DeliveredBytes, 2_000_000, conn.Sender.Cwnd(), conn.Sender.Retransmits, conn.Sender.Timeouts)
	}
	if conn.FinishedAt <= 0 || conn.FinishedAt > 60 {
		t.Errorf("finished at %.1f s, want within 60 s", conn.FinishedAt)
	}
	t.Logf("2 MB over 20 Mbps TCP finished at %.2f s (retx %d, timeouts %d)",
		conn.FinishedAt, conn.Sender.Retransmits, conn.Sender.Timeouts)
}

func TestTCPOverEmulationMultipath(t *testing.T) {
	// TCP over two routes with delay equalization (§6.4's critical case,
	// scaled down): the transfer must complete and exploit both routes.
	b := graph.NewBuilder(nil)
	a := b.AddNode("a", 0, 0, graph.TechPLC, graph.TechWiFi)
	bb := b.AddNode("b", 10, 0, graph.TechPLC, graph.TechWiFi)
	c := b.AddNode("c", 20, 0, graph.TechWiFi)
	plcAB, _ := b.AddDuplex(a, bb, graph.TechPLC, 10)
	wifiAB, _ := b.AddDuplex(a, bb, graph.TechWiFi, 15)
	wifiBC, _ := b.AddDuplex(bb, c, graph.TechWiFi, 30)
	net := b.Build()
	em := node.NewEmulation(net, node.Config{DelayEqualize: true}, 22)
	routes := []graph.Path{{plcAB, wifiBC}, {wifiAB, wifiBC}}
	conn, err := Dial(em, a, c, routes, 5_000_000, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(200)
	if !conn.Sender.Done() {
		t.Fatalf("multipath TCP incomplete: %d bytes", conn.Receiver.DeliveredBytes)
	}
	// Both routes must have carried data.
	sent := conn.Forward.RouteSentBits
	if sent[0] == 0 || sent[1] == 0 {
		t.Errorf("route usage %v: both routes should carry TCP", sent)
	}
	goodput := 5_000_000 * 8 / conn.FinishedAt / 1e6
	if goodput < 5 {
		t.Errorf("TCP multipath goodput %.2f Mbps too low", goodput)
	}
	t.Logf("5 MB multipath TCP: %.1f s (%.2f Mbps), retx %d, timeouts %d",
		conn.FinishedAt, goodput, conn.Sender.Retransmits, conn.Sender.Timeouts)
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.mss() != 1460 || c.initCwnd() != 2 || math.Abs(c.rtoMin()-0.2) > 1e-12 || c.maxCwnd() != 512 {
		t.Error("defaults wrong")
	}
}
