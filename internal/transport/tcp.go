// Package transport implements the Reno-style mini-TCP used to reproduce
// the TCP-friendliness evaluation of §6.4. The paper runs standard Linux
// TCP over the EMPoWER datapath; what matters for the reported behaviour
// is TCP's reaction to loss, reordering and delay:
//
//   - slow start and AIMD congestion avoidance;
//   - retransmission timeouts with exponential backoff and Karn's rule;
//   - fast retransmit on three duplicate acknowledgements;
//   - cumulative acknowledgements with out-of-order buffering at the
//     receiver.
//
// Segments travel as opaque payloads over an EMPoWER flow (node.Flow);
// packets pushed above the congestion-control allocation are dropped at
// the source (ErrOverRate), which TCP perceives as congestion — exactly
// the §6.4 interaction. Acknowledgements ride a reverse flow over the
// best single path.
package transport

import (
	"repro/internal/sim"
)

// Segment is the metadata attached to a data packet carrying TCP payload.
type Segment struct {
	Seq int64 // first payload byte
	Len int   // payload bytes
}

// Ack is the metadata of a TCP acknowledgement.
type Ack struct {
	// CumAck is the next expected byte (cumulative acknowledgement).
	CumAck int64
}

// Config tunes the mini-TCP sender.
type Config struct {
	// MSS is the maximum segment size in bytes (default 1460).
	MSS int
	// InitCwnd is the initial window in segments (default 2).
	InitCwnd float64
	// RTOMin is the minimum retransmission timeout in seconds (default
	// 0.2, Linux's value).
	RTOMin float64
	// MaxCwndSegments caps the window (default 512 segments).
	MaxCwndSegments float64
}

func (c Config) mss() int {
	if c.MSS <= 0 {
		return 1460
	}
	return c.MSS
}

func (c Config) initCwnd() float64 {
	if c.InitCwnd <= 0 {
		return 2
	}
	return c.InitCwnd
}

func (c Config) rtoMin() float64 {
	if c.RTOMin <= 0 {
		return 0.2
	}
	return c.RTOMin
}

func (c Config) maxCwnd() float64 {
	if c.MaxCwndSegments <= 0 {
		return 512
	}
	return c.MaxCwndSegments
}

// SendFunc pushes one segment toward the receiver; it returns an error
// when the packet was dropped at the source (rate shaping or inactive
// flow). The segment is then simply lost from TCP's point of view.
type SendFunc func(seg Segment) error

// Sender is the TCP sender state machine.
type Sender struct {
	engine *sim.Engine
	cfg    Config
	send   SendFunc

	// totalBytes is the amount of application data to transfer;
	// -1 streams forever.
	totalBytes int64

	sndUna         int64   // oldest unacknowledged byte
	sndNxt         int64   // next byte to send
	cwnd           float64 // congestion window in bytes
	ssthresh       float64
	dupAcks        int
	inFastRecovery bool

	// RTT estimation (RFC 6298).
	srtt, rttvar, rto float64
	hasRTT            bool
	// sendTimes maps segment start byte to transmit time for RTT samples
	// (Karn's rule: retransmitted segments are not sampled).
	sendTimes map[int64]float64
	retxSeqs  map[int64]bool

	rtoTimer sim.TimerRef
	done     bool
	onDone   func(finishedAt float64)

	// Stats.
	Retransmits  int
	Timeouts     int
	FastRecovers int
	SentSegments int
}

// NewSender creates a sender transferring totalBytes (-1 = unbounded)
// using send to emit segments.
func NewSender(engine *sim.Engine, cfg Config, totalBytes int64, send SendFunc) *Sender {
	s := &Sender{
		engine:     engine,
		cfg:        cfg,
		send:       send,
		totalBytes: totalBytes,
		cwnd:       cfg.initCwnd() * float64(cfg.mss()),
		ssthresh:   1e12,
		rto:        1.0,
		sendTimes:  map[int64]float64{},
		retxSeqs:   map[int64]bool{},
	}
	return s
}

// OnDone registers a completion callback (file transfers).
func (s *Sender) OnDone(fn func(finishedAt float64)) { s.onDone = fn }

// Done reports whether the transfer completed (all bytes acked).
func (s *Sender) Done() bool { return s.done }

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Start begins transmission.
func (s *Sender) Start() { s.pump() }

// pump sends as many segments as the window allows.
func (s *Sender) pump() {
	if s.done {
		return
	}
	mss := int64(s.cfg.mss())
	for {
		inflight := s.sndNxt - s.sndUna
		if float64(inflight)+float64(mss) > s.cwnd+1e-9 {
			break
		}
		if s.totalBytes >= 0 && s.sndNxt >= s.totalBytes {
			break
		}
		segLen := mss
		if s.totalBytes >= 0 && s.sndNxt+segLen > s.totalBytes {
			segLen = s.totalBytes - s.sndNxt
		}
		if segLen <= 0 {
			break
		}
		seq := s.sndNxt
		s.sndNxt += segLen
		s.transmit(seq, int(segLen), false)
	}
	s.armRTO()
}

func (s *Sender) transmit(seq int64, length int, isRetx bool) {
	s.SentSegments++
	if isRetx {
		s.Retransmits++
		s.retxSeqs[seq] = true
	} else if !s.retxSeqs[seq] {
		s.sendTimes[seq] = s.engine.Now()
	}
	// A send error means the packet was dropped at the source; TCP just
	// waits for its loss signals.
	_ = s.send(Segment{Seq: seq, Len: length})
}

func (s *Sender) armRTO() {
	s.rtoTimer.Cancel()
	s.rtoTimer = sim.TimerRef{}
	if s.sndUna == s.sndNxt || s.done {
		return // nothing in flight
	}
	s.rtoTimer = s.engine.Schedule(s.rto, s.onTimeout)
}

func (s *Sender) onTimeout() {
	if s.done || s.sndUna == s.sndNxt {
		return
	}
	s.Timeouts++
	// RFC 5681: collapse to one segment, back off the timer.
	s.ssthresh = maxf(float64(s.sndNxt-s.sndUna)/2, 2*float64(s.cfg.mss()))
	s.cwnd = float64(s.cfg.mss())
	s.rto = minf(s.rto*2, 60)
	s.dupAcks = 0
	s.inFastRecovery = false
	// Go-back-N from the hole.
	s.sndNxt = s.sndUna
	s.pump()
}

// OnAck processes a cumulative acknowledgement.
func (s *Sender) OnAck(a Ack) {
	if s.done {
		return
	}
	now := s.engine.Now()
	switch {
	case a.CumAck > s.sndUna:
		// New data acknowledged.
		if t, ok := s.sendTimes[s.sndUna]; ok && !s.retxSeqs[s.sndUna] {
			s.rttSample(now - t)
		}
		for seq := range s.sendTimes {
			if seq < a.CumAck {
				delete(s.sendTimes, seq)
			}
		}
		for seq := range s.retxSeqs {
			if seq < a.CumAck {
				delete(s.retxSeqs, seq)
			}
		}
		acked := a.CumAck - s.sndUna
		s.sndUna = a.CumAck
		s.dupAcks = 0
		mss := float64(s.cfg.mss())
		if s.inFastRecovery {
			// Exit fast recovery: deflate to ssthresh.
			s.cwnd = s.ssthresh
			s.inFastRecovery = false
		} else if s.cwnd < s.ssthresh {
			s.cwnd += float64(acked) // slow start
		} else {
			s.cwnd += mss * mss / s.cwnd // congestion avoidance
		}
		if s.cwnd > s.cfg.maxCwnd()*mss {
			s.cwnd = s.cfg.maxCwnd() * mss
		}
		if s.totalBytes >= 0 && s.sndUna >= s.totalBytes {
			s.done = true
			s.rtoTimer.Cancel()
			if s.onDone != nil {
				s.onDone(now)
			}
			return
		}
		s.armRTO()
		s.pump()
	case a.CumAck == s.sndUna && s.sndNxt > s.sndUna:
		s.dupAcks++
		mss := float64(s.cfg.mss())
		if s.inFastRecovery {
			s.cwnd += mss // window inflation per extra dupack
			s.pump()
		} else if s.dupAcks >= 3 {
			// Fast retransmit.
			s.FastRecovers++
			s.ssthresh = maxf(float64(s.sndNxt-s.sndUna)/2, 2*mss)
			s.cwnd = s.ssthresh + 3*mss
			s.inFastRecovery = true
			s.transmit(s.sndUna, s.cfg.mss(), true)
			s.armRTO()
		}
	}
}

// rttSample updates SRTT/RTTVAR/RTO per RFC 6298.
func (s *Sender) rttSample(r float64) {
	if r <= 0 {
		return
	}
	if !s.hasRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.hasRTT = true
	} else {
		const alpha, beta = 0.125, 0.25
		s.rttvar = (1-beta)*s.rttvar + beta*absf(s.srtt-r)
		s.srtt = (1-alpha)*s.srtt + alpha*r
	}
	s.rto = maxf(s.srtt+4*s.rttvar, s.cfg.rtoMin())
}

// AckFunc emits an acknowledgement toward the sender.
type AckFunc func(a Ack) error

// Receiver is the TCP receive side: it buffers out-of-order segments and
// emits cumulative acks.
type Receiver struct {
	rcvNxt int64
	buf    map[int64]int // seq -> len
	ack    AckFunc

	// DeliveredBytes counts in-order payload handed to the application.
	DeliveredBytes int64
}

// NewReceiver creates a receiver emitting acks through ack.
func NewReceiver(ack AckFunc) *Receiver {
	return &Receiver{buf: map[int64]int{}, ack: ack}
}

// OnSegment ingests a data segment (possibly out of order or duplicate).
func (r *Receiver) OnSegment(seg Segment) {
	if seg.Seq+int64(seg.Len) <= r.rcvNxt {
		// Full duplicate: re-ack.
		_ = r.ack(Ack{CumAck: r.rcvNxt})
		return
	}
	if seg.Seq > r.rcvNxt {
		if _, dup := r.buf[seg.Seq]; !dup {
			r.buf[seg.Seq] = seg.Len
		}
		_ = r.ack(Ack{CumAck: r.rcvNxt}) // duplicate ack signalling the hole
		return
	}
	// In-order (or overlapping) segment: advance.
	adv := seg.Seq + int64(seg.Len) - r.rcvNxt
	r.rcvNxt += adv
	r.DeliveredBytes += adv
	// Drain the buffer.
	for {
		l, ok := r.buf[r.rcvNxt]
		if !ok {
			break
		}
		delete(r.buf, r.rcvNxt)
		r.rcvNxt += int64(l)
		r.DeliveredBytes += int64(l)
	}
	_ = r.ack(Ack{CumAck: r.rcvNxt})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
