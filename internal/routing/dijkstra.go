package routing

import (
	"math"

	"repro/internal/graph"
)

// noTech marks the absence of an ingress technology (the path source).
const noTech graph.Tech = -1

// dijkstra runs the single-path procedure of §3.1 on the virtual graph of
// interfaces from src to dst under the capacity overlay capv. It returns
// the best path and its weight, or (nil, +Inf) if dst is unreachable. The
// returned path aliases ws.pathBuf; callers copy it before the next search.
//
// States are (node, ingress technology) pairs so that the channel-switching
// cost — which depends on the ingress and egress technologies at each
// intermediate node — is Markovian and Dijkstra applies. Link weights and
// CSCs are non-negative, so the isotonicity requirement of §3.1 holds.
// States are flattened to node*stride + tech + 1 so the distance, parent
// and visited sets are epoch-stamped slices rather than maps; together with
// a heap that replicates container/heap's sift rules this pops states in
// exactly the reference implementation's order, ties included.
//
// When useBans is set, links and nodes whose ban marks carry the current
// ban epoch are excluded (Yen spur searches); ingress is the technology of
// the link entering the search source (noTech at the true path source).
func (ws *workspace) dijkstra(capv []float64, src, dst graph.NodeID, cfg Config, ingress graph.Tech, useBans bool) (graph.Path, float64) {
	net := ws.net
	ws.searchEpoch++
	ep := ws.searchEpoch
	maxHops := int32(cfg.maxHops())
	stride := ws.stride

	start := int32(int(src)*stride + int(ingress) + 1)
	ws.dist[start] = 0
	ws.distMark[start] = ep
	ws.hops[start] = 0
	ws.prevState[start] = -1
	h := ws.heap[:0]
	h = heapPushState(h, heapState{dist: 0, state: start})

	best := int32(-1)
	bestDist := math.Inf(1)

	for len(h) > 0 {
		var e heapState
		h, e = heapPopState(h)
		s := e.state
		if ws.visMark[s] == ep {
			continue
		}
		ws.visMark[s] = ep
		if e.dist >= bestDist {
			break // every remaining state is at least as far
		}
		node := graph.NodeID(int(s) / stride)
		if node == dst {
			best, bestDist = s, e.dist
			break
		}
		if ws.hops[s] >= maxHops {
			continue
		}
		in := graph.Tech(int(s)%stride - 1)
		for _, id := range net.Out(node) {
			if useBans && ws.banLinkMark[id] == ws.banEpoch {
				continue
			}
			c := capv[id]
			if c <= 0 {
				continue
			}
			l := net.Link(id)
			if useBans && ws.banNodeMark[l.To] == ws.banEpoch {
				continue
			}
			w := 1 / c
			if cfg.UseCSC && in != noTech && in == l.Tech {
				w += ws.wns[node]
			}
			next := int32(int(l.To)*stride + int(l.Tech) + 1)
			nd := e.dist + w
			if ws.distMark[next] != ep || nd < ws.dist[next] {
				ws.dist[next] = nd
				ws.distMark[next] = ep
				ws.prevLink[next] = int32(id)
				ws.prevState[next] = s
				ws.hops[next] = ws.hops[s] + 1
				h = heapPushState(h, heapState{dist: nd, state: next})
			}
		}
	}
	ws.heap = h[:0]

	if best < 0 {
		return nil, math.Inf(1)
	}
	// Reconstruct backwards into the reusable buffer, then reverse.
	p := ws.pathBuf[:0]
	for s := best; s != start; s = ws.prevState[s] {
		p = append(p, graph.LinkID(ws.prevLink[s]))
	}
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	ws.pathBuf = p
	p = ws.removeNodeLoops(p)
	ws.pathBuf = p
	return p, pathWeightView(ws, capv, p, cfg)
}

// removeNodeLoops shortcuts any node revisits in a walk. With the EMPoWER
// weights this never increases the path weight: removing a loop at node u
// drops at least one egress link of u (weight ≥ w_ns(u)) while adding at
// most w_ns(u) of channel-switching cost. The walk is modified in place.
func removeNodeLoops(net *graph.Network, p graph.Path) graph.Path {
	ws := getWS(net)
	p = ws.removeNodeLoops(p)
	putWS(ws)
	return p
}

// SinglePath runs the single-path procedure of §3.1: the shortest path on
// the virtual interface graph from src to dst under the EMPoWER link metric
// and CSC. It returns nil if dst is unreachable.
func SinglePath(net *graph.Network, src, dst graph.NodeID, cfg Config) graph.Path {
	ws := getWS(net)
	ws.prepareSearch()
	ws.computeWns(ws.capRoot)
	p, w := ws.dijkstra(ws.capRoot, src, dst, cfg, noTech, false)
	if math.IsInf(w, 1) {
		putWS(ws)
		return nil
	}
	out := make(graph.Path, len(p))
	copy(out, p)
	putWS(ws)
	return out
}
