package routing

import (
	"container/heap"
	"math"

	"repro/internal/graph"
)

// noTech marks the absence of an ingress technology (the path source).
const noTech graph.Tech = -1

// searchConstraints restricts a shortest-path search; used by Yen's
// algorithm for spur-path computations.
type searchConstraints struct {
	bannedLinks map[graph.LinkID]bool
	bannedNodes map[graph.NodeID]bool
	// ingress is the technology of the link entering the search source
	// (noTech when the source is the true path source). It determines the
	// CSC applied to the first hop of the result.
	ingress graph.Tech
}

// vstate is a vertex of the virtual interface graph: a node together with
// the technology of the link used to enter it.
type vstate struct {
	node graph.NodeID
	in   graph.Tech // noTech at the source
}

type pqItem struct {
	state vstate
	dist  float64
	index int
}

type priorityQueue []*pqItem

func (q priorityQueue) Len() int           { return len(q) }
func (q priorityQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *priorityQueue) Push(x interface{}) {
	it := x.(*pqItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// dijkstra runs the single-path procedure of §3.1 on the virtual graph of
// interfaces from src to dst, honoring the search constraints. It returns
// the best path and its weight, or (nil, +Inf) if dst is unreachable.
//
// States are (node, ingress technology) pairs so that the channel-switching
// cost — which depends on the ingress and egress technologies at each
// intermediate node — is Markovian and Dijkstra applies. Link weights and
// CSCs are non-negative, so the isotonicity requirement of §3.1 holds.
func dijkstra(net *graph.Network, src, dst graph.NodeID, cfg Config, cons searchConstraints) (graph.Path, float64) {
	dist := make(map[vstate]float64)
	prevLink := make(map[vstate]graph.LinkID)
	prevState := make(map[vstate]vstate)
	hops := make(map[vstate]int)

	pq := &priorityQueue{}
	start := vstate{node: src, in: cons.ingress}
	dist[start] = 0
	hops[start] = 0
	heap.Push(pq, &pqItem{state: start, dist: 0})

	visited := make(map[vstate]bool)
	maxHops := cfg.maxHops()

	var best vstate
	bestDist := math.Inf(1)

	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		s := it.state
		if visited[s] {
			continue
		}
		visited[s] = true
		if it.dist >= bestDist {
			break // every remaining state is at least as far
		}
		if s.node == dst {
			best, bestDist = s, it.dist
			break
		}
		if hops[s] >= maxHops {
			continue
		}
		for _, id := range net.Out(s.node) {
			if cons.bannedLinks[id] {
				continue
			}
			l := net.Link(id)
			if l.Capacity <= 0 {
				continue
			}
			if cons.bannedNodes[l.To] {
				continue
			}
			w := l.D()
			if cfg.UseCSC && s.in != noTech && s.in == l.Tech {
				w += wns(net, s.node)
			}
			next := vstate{node: l.To, in: l.Tech}
			nd := it.dist + w
			if old, ok := dist[next]; !ok || nd < old {
				dist[next] = nd
				prevLink[next] = id
				prevState[next] = s
				hops[next] = hops[s] + 1
				heap.Push(pq, &pqItem{state: next, dist: nd})
			}
		}
	}

	if math.IsInf(bestDist, 1) {
		return nil, math.Inf(1)
	}
	// Reconstruct.
	var rev []graph.LinkID
	for s := best; s != start; s = prevState[s] {
		rev = append(rev, prevLink[s])
	}
	p := make(graph.Path, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	p = removeNodeLoops(net, p)
	return p, PathWeight(net, p, cfg)
}

// removeNodeLoops shortcuts any node revisits in a walk. With the EMPoWER
// weights this never increases the path weight: removing a loop at node u
// drops at least one egress link of u (weight ≥ w_ns(u)) while adding at
// most w_ns(u) of channel-switching cost.
func removeNodeLoops(net *graph.Network, p graph.Path) graph.Path {
	for {
		seen := make(map[graph.NodeID]int) // node -> index in p of the link leaving it
		loop := false
		if len(p) == 0 {
			return p
		}
		seen[net.Link(p[0]).From] = 0
		for i, id := range p {
			to := net.Link(id).To
			if j, ok := seen[to]; ok {
				// Links j..i form a loop returning to node `to`; cut them.
				np := make(graph.Path, 0, len(p)-(i-j+1))
				np = append(np, p[:j]...)
				np = append(np, p[i+1:]...)
				p = np
				loop = true
				break
			}
			seen[to] = i + 1
		}
		if !loop {
			return p
		}
	}
}

// SinglePath runs the single-path procedure of §3.1: the shortest path on
// the virtual interface graph from src to dst under the EMPoWER link metric
// and CSC. It returns nil if dst is unreachable.
func SinglePath(net *graph.Network, src, dst graph.NodeID, cfg Config) graph.Path {
	p, w := dijkstra(net, src, dst, cfg, searchConstraints{ingress: noTech})
	if math.IsInf(w, 1) {
		return nil
	}
	return p
}
