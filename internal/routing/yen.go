package routing

import (
	"math"

	"repro/internal/graph"
)

// NShortest implements the n-shortest step of §3.2: it returns up to cfg.N
// loopless paths from src to dst in increasing order of routing weight,
// computed with Yen's algorithm over the virtual interface graph. Paths
// through zero-capacity links are never returned.
func NShortest(net *graph.Network, src, dst graph.NodeID, cfg Config) []graph.Path {
	ws := getWS(net)
	ws.prepareSearch()
	res := ws.nShortest(ws.capRoot, src, dst, cfg)
	out := copyPaths(res)
	ws.putPathSlice(res)
	putWS(ws)
	return out
}

// nShortest is the workspace-backed implementation. The spur-search banned
// sets are epoch-stamped slices, candidates live in a min-heap ordered by
// (weight, generation) — which selects exactly the candidate the reference
// implementation's repeated stable sort selects — and path de-duplication
// uses packed comparable keys instead of strings. Accepted and candidate
// paths live in the workspace link arena and the result header slice comes
// from the free list: callers must hand the result back with putPathSlice
// (deep-copying via copyPaths anything that escapes the workspace).
func (ws *workspace) nShortest(capv []float64, src, dst graph.NodeID, cfg Config) []graph.Path {
	if cfg.N <= 0 {
		return ws.getPathSlice()
	}
	ws.computeWns(capv)
	p0, w0 := ws.dijkstra(capv, src, dst, cfg, noTech, false)
	if math.IsInf(w0, 1) {
		return ws.getPathSlice()
	}
	first := ws.arenaAlloc(len(p0))
	copy(first, p0)
	accepted := append(ws.getPathSlice(), first)

	if ws.seenKeys == nil {
		ws.seenKeys = make(map[pathKey]struct{}, 32)
	} else {
		clear(ws.seenKeys)
	}
	ws.seenKeys[ws.key(first)] = struct{}{}
	cands := ws.cands[:0]
	seq := 0
	maxHops := cfg.maxHops()

	for len(accepted) < cfg.N {
		prev := accepted[len(accepted)-1]
		prevNodes, ok := ws.pathNodes(prev)
		if !ok {
			break
		}
		for i := 0; i < len(prev); i++ {
			spurNode := prevNodes[i]

			// Ban the next link of every accepted path sharing this root,
			// forcing a deviation at the spur node, and ban the root nodes
			// (except the spur node) to keep paths loopless.
			ws.banEpoch++
			for _, q := range accepted {
				if len(q) > i && samePrefix(q, prev, i) {
					ws.banLinkMark[q[i]] = ws.banEpoch
				}
			}
			for _, v := range prevNodes[:i] {
				ws.banNodeMark[v] = ws.banEpoch
			}
			ingress := noTech
			if i > 0 {
				ingress = ws.net.Link(prev[i-1]).Tech
			}

			spurCfg := cfg
			spurCfg.MaxHops = maxHops - i
			if spurCfg.MaxHops <= 0 {
				continue
			}
			spur, w := ws.dijkstra(capv, spurNode, dst, spurCfg, ingress, true)
			if math.IsInf(w, 1) || len(spur) == 0 {
				continue
			}
			total := append(ws.totalBuf[:0], prev[:i]...)
			total = append(total, spur...)
			ws.totalBuf = total
			k := ws.key(total)
			if _, dup := ws.seenKeys[k]; dup {
				continue
			}
			if !ws.validPath(total, src, dst) {
				continue
			}
			ws.seenKeys[k] = struct{}{}
			durable := ws.arenaAlloc(len(total))
			copy(durable, total)
			cands = heapPushCand(cands, candEntry{
				weight: pathWeightView(ws, capv, durable, cfg),
				seq:    seq,
				path:   durable,
			})
			seq++
		}
		if len(cands) == 0 {
			break
		}
		var next candEntry
		cands, next = heapPopCand(cands)
		accepted = append(accepted, next.path)
	}
	for i := range cands {
		cands[i] = candEntry{} // drop stale arena-path headers
	}
	ws.cands = cands[:0]
	return accepted
}

func samePrefix(a, b graph.Path, n int) bool {
	if len(a) < n || len(b) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
