package routing

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// NShortest implements the n-shortest step of §3.2: it returns up to cfg.N
// loopless paths from src to dst in increasing order of routing weight,
// computed with Yen's algorithm over the virtual interface graph. Paths
// through zero-capacity links are never returned.
func NShortest(net *graph.Network, src, dst graph.NodeID, cfg Config) []graph.Path {
	if cfg.N <= 0 {
		return nil
	}
	first := SinglePath(net, src, dst, cfg)
	if first == nil {
		return nil
	}
	accepted := []graph.Path{first}
	acceptedKeys := map[string]bool{PathKey(first): true}

	type candidate struct {
		path   graph.Path
		weight float64
	}
	var candidates []candidate
	candidateKeys := map[string]bool{}

	for len(accepted) < cfg.N {
		prev := accepted[len(accepted)-1]
		prevNodes, err := net.PathNodes(prev)
		if err != nil {
			break
		}
		for i := 0; i < len(prev); i++ {
			spurNode := prevNodes[i]
			root := prev[:i]

			cons := searchConstraints{
				bannedLinks: make(map[graph.LinkID]bool),
				bannedNodes: make(map[graph.NodeID]bool),
				ingress:     noTech,
			}
			if i > 0 {
				cons.ingress = net.Link(prev[i-1]).Tech
			}
			// Ban the next link of every accepted path sharing this root,
			// forcing a deviation at the spur node.
			for _, q := range accepted {
				if len(q) > i && samePrefix(q, prev, i) {
					cons.bannedLinks[q[i]] = true
				}
			}
			// Ban root nodes (except the spur node) to keep paths loopless.
			for _, v := range prevNodes[:i] {
				cons.bannedNodes[v] = true
			}

			spurCfg := cfg
			spurCfg.MaxHops = cfg.maxHops() - i
			if spurCfg.MaxHops <= 0 {
				continue
			}
			spur, w := dijkstra(net, spurNode, dst, spurCfg, cons)
			if math.IsInf(w, 1) || len(spur) == 0 {
				continue
			}
			total := make(graph.Path, 0, len(root)+len(spur))
			total = append(total, root...)
			total = append(total, spur...)
			key := PathKey(total)
			if acceptedKeys[key] || candidateKeys[key] {
				continue
			}
			if err := validLoopless(net, total, src, dst); err != nil {
				continue
			}
			candidateKeys[key] = true
			candidates = append(candidates, candidate{total, PathWeight(net, total, cfg)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].weight < candidates[b].weight })
		next := candidates[0]
		candidates = candidates[1:]
		delete(candidateKeys, PathKey(next.path))
		accepted = append(accepted, next.path)
		acceptedKeys[PathKey(next.path)] = true
	}
	return accepted
}

func samePrefix(a, b graph.Path, n int) bool {
	if len(a) < n || len(b) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validLoopless(net *graph.Network, p graph.Path, src, dst graph.NodeID) error {
	return net.ValidatePath(p, src, dst)
}
