package routing

// The pre-dense-workspace routing core, kept verbatim (modulo ref renames)
// as the reference implementation for the equivalence property tests: the
// map-based Dijkstra over (node, ingress-tech) states, string-keyed Yen
// with stable-sorted candidates, and the clone-per-vertex exploration
// tree. The dense implementation must reproduce its output bit for bit —
// same paths, same weights, same tie-breaks.

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/graph"
)

type refConstraints struct {
	bannedLinks map[graph.LinkID]bool
	bannedNodes map[graph.NodeID]bool
	ingress     graph.Tech
}

type refVstate struct {
	node graph.NodeID
	in   graph.Tech
}

type refPqItem struct {
	state refVstate
	dist  float64
	index int
}

type refPriorityQueue []*refPqItem

func (q refPriorityQueue) Len() int           { return len(q) }
func (q refPriorityQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q refPriorityQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refPriorityQueue) Push(x interface{}) {
	it := x.(*refPqItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *refPriorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

func refDijkstra(net *graph.Network, src, dst graph.NodeID, cfg Config, cons refConstraints) (graph.Path, float64) {
	dist := make(map[refVstate]float64)
	prevLink := make(map[refVstate]graph.LinkID)
	prevState := make(map[refVstate]refVstate)
	hops := make(map[refVstate]int)

	pq := &refPriorityQueue{}
	start := refVstate{node: src, in: cons.ingress}
	dist[start] = 0
	hops[start] = 0
	heap.Push(pq, &refPqItem{state: start, dist: 0})

	visited := make(map[refVstate]bool)
	maxHops := cfg.maxHops()

	var best refVstate
	bestDist := math.Inf(1)

	for pq.Len() > 0 {
		it := heap.Pop(pq).(*refPqItem)
		s := it.state
		if visited[s] {
			continue
		}
		visited[s] = true
		if it.dist >= bestDist {
			break
		}
		if s.node == dst {
			best, bestDist = s, it.dist
			break
		}
		if hops[s] >= maxHops {
			continue
		}
		for _, id := range net.Out(s.node) {
			if cons.bannedLinks[id] {
				continue
			}
			l := net.Link(id)
			if l.Capacity <= 0 {
				continue
			}
			if cons.bannedNodes[l.To] {
				continue
			}
			w := l.D()
			if cfg.UseCSC && s.in != noTech && s.in == l.Tech {
				w += wns(net, s.node)
			}
			next := refVstate{node: l.To, in: l.Tech}
			nd := it.dist + w
			if old, ok := dist[next]; !ok || nd < old {
				dist[next] = nd
				prevLink[next] = id
				prevState[next] = s
				hops[next] = hops[s] + 1
				heap.Push(pq, &refPqItem{state: next, dist: nd})
			}
		}
	}

	if math.IsInf(bestDist, 1) {
		return nil, math.Inf(1)
	}
	var rev []graph.LinkID
	for s := best; s != start; s = prevState[s] {
		rev = append(rev, prevLink[s])
	}
	p := make(graph.Path, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	p = refRemoveNodeLoops(net, p)
	return p, PathWeight(net, p, cfg)
}

func refRemoveNodeLoops(net *graph.Network, p graph.Path) graph.Path {
	for {
		seen := make(map[graph.NodeID]int)
		loop := false
		if len(p) == 0 {
			return p
		}
		seen[net.Link(p[0]).From] = 0
		for i, id := range p {
			to := net.Link(id).To
			if j, ok := seen[to]; ok {
				np := make(graph.Path, 0, len(p)-(i-j+1))
				np = append(np, p[:j]...)
				np = append(np, p[i+1:]...)
				p = np
				loop = true
				break
			}
			seen[to] = i + 1
		}
		if !loop {
			return p
		}
	}
}

func refSinglePath(net *graph.Network, src, dst graph.NodeID, cfg Config) graph.Path {
	p, w := refDijkstra(net, src, dst, cfg, refConstraints{ingress: noTech})
	if math.IsInf(w, 1) {
		return nil
	}
	return p
}

func refNShortest(net *graph.Network, src, dst graph.NodeID, cfg Config) []graph.Path {
	if cfg.N <= 0 {
		return nil
	}
	first := refSinglePath(net, src, dst, cfg)
	if first == nil {
		return nil
	}
	accepted := []graph.Path{first}
	acceptedKeys := map[string]bool{PathKey(first): true}

	type candidate struct {
		path   graph.Path
		weight float64
	}
	var candidates []candidate
	candidateKeys := map[string]bool{}

	for len(accepted) < cfg.N {
		prev := accepted[len(accepted)-1]
		prevNodes, err := net.PathNodes(prev)
		if err != nil {
			break
		}
		for i := 0; i < len(prev); i++ {
			spurNode := prevNodes[i]
			root := prev[:i]

			cons := refConstraints{
				bannedLinks: make(map[graph.LinkID]bool),
				bannedNodes: make(map[graph.NodeID]bool),
				ingress:     noTech,
			}
			if i > 0 {
				cons.ingress = net.Link(prev[i-1]).Tech
			}
			for _, q := range accepted {
				if len(q) > i && samePrefix(q, prev, i) {
					cons.bannedLinks[q[i]] = true
				}
			}
			for _, v := range prevNodes[:i] {
				cons.bannedNodes[v] = true
			}

			spurCfg := cfg
			spurCfg.MaxHops = cfg.maxHops() - i
			if spurCfg.MaxHops <= 0 {
				continue
			}
			spur, w := refDijkstra(net, spurNode, dst, spurCfg, cons)
			if math.IsInf(w, 1) || len(spur) == 0 {
				continue
			}
			total := make(graph.Path, 0, len(root)+len(spur))
			total = append(total, root...)
			total = append(total, spur...)
			key := PathKey(total)
			if acceptedKeys[key] || candidateKeys[key] {
				continue
			}
			if err := net.ValidatePath(total, src, dst); err != nil {
				continue
			}
			candidateKeys[key] = true
			candidates = append(candidates, candidate{total, PathWeight(net, total, cfg)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].weight < candidates[b].weight })
		next := candidates[0]
		candidates = candidates[1:]
		delete(candidateKeys, PathKey(next.path))
		accepted = append(accepted, next.path)
		acceptedKeys[PathKey(next.path)] = true
	}
	return accepted
}

func refRatePath(net *graph.Network, p graph.Path) float64 {
	if len(p) == 0 {
		return 0
	}
	inPath := make(map[graph.LinkID]bool, len(p))
	for _, id := range p {
		inPath[id] = true
	}
	worst := 0.0
	for _, id := range p {
		var sum float64
		for _, i := range net.Interference(id) {
			if inPath[i] {
				l := net.Link(i)
				if l.Capacity <= 0 {
					return 0
				}
				sum += l.D()
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	if worst == 0 {
		return 0
	}
	return 1 / worst
}

func refUpdate(net *graph.Network, p graph.Path) *graph.Network {
	out := net.Clone()
	r := refRatePath(net, p)
	if r <= 0 {
		return out
	}
	inPath := make(map[graph.LinkID]bool, len(p))
	for _, id := range p {
		inPath[id] = true
	}
	affected := make(map[graph.LinkID]bool)
	for _, id := range p {
		for _, i := range net.Interference(id) {
			affected[i] = true
		}
	}
	for id := range affected {
		var consumed float64
		for _, i := range net.Interference(id) {
			if inPath[i] {
				consumed += r * net.Link(i).D()
			}
		}
		frac := 1 - consumed
		if frac < 0 {
			frac = 0
		}
		out.Link(id).Capacity = net.Link(id).Capacity * frac
		if out.Link(id).Capacity < capacityEpsilon {
			out.Link(id).Capacity = 0
		}
	}
	return out
}

func refMultipath(net *graph.Network, src, dst graph.NodeID, cfg Config) Combination {
	var best Combination
	refExplore(net, src, dst, cfg, 0, Combination{}, &best)
	return best
}

func refExplore(g *graph.Network, src, dst graph.NodeID, cfg Config, depth int, cur Combination, best *Combination) {
	if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
		if cur.Total > best.Total {
			*best = cur
		}
		return
	}
	paths := refNShortest(g, src, dst, cfg)
	leaf := true
	for _, p := range paths {
		r := refRatePath(g, p)
		if r <= capacityEpsilon {
			continue
		}
		leaf = false
		child := refUpdate(g, p)
		next := Combination{
			Paths: append(append([]graph.Path(nil), cur.Paths...), p),
			Rates: append(append([]float64(nil), cur.Rates...), r),
			Total: cur.Total + r,
		}
		refExplore(child, src, dst, cfg, depth+1, next, best)
	}
	if leaf && cur.Total > best.Total {
		*best = cur
	}
}
