package routing

import (
	"math/rand"

	"repro/internal/graph"
)

// newRng returns a deterministic RNG for property tests.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randomNetwork builds a small random hybrid multigraph for property
// testing: 4-8 nodes, each with WiFi and possibly PLC, random duplex links
// with capacities in (5, 100) Mbps. It returns the network plus a random
// source and destination pair.
func randomNetwork(rng *rand.Rand) (*graph.Network, graph.NodeID, graph.NodeID) {
	n := 4 + rng.Intn(5)
	b := graph.NewBuilder(nil)
	plc := make([]bool, n)
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		plc[i] = rng.Float64() < 0.6
		techs := []graph.Tech{graph.TechWiFi}
		if plc[i] {
			techs = append(techs, graph.TechPLC)
		}
		ids[i] = b.AddNode("", rng.Float64()*50, rng.Float64()*30, techs...)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				b.AddDuplex(ids[i], ids[j], graph.TechWiFi, 5+rng.Float64()*95)
			}
			if plc[i] && plc[j] && rng.Float64() < 0.5 {
				b.AddDuplex(ids[i], ids[j], graph.TechPLC, 5+rng.Float64()*95)
			}
		}
	}
	return b.Build(), ids[0], ids[n-1]
}
