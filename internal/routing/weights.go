// Package routing implements the EMPoWER routing algorithms (paper §3):
//
//   - the single-path procedure: Dijkstra's algorithm over the virtual
//     graph of network interfaces with link metric W(l) = d_l = 1/c_l and a
//     channel-switching cost (CSC) that favors technology-alternating paths
//     (§3.1, following Yang et al.);
//   - an n-shortest-path generalization (Yen's algorithm) used as the
//     building block of the multipath procedure;
//   - the multipath procedure (§3.2): the maximum per-path rate R(P) under
//     intra-path interference, the residual-capacity procedure update(P,G),
//     and the exploration tree that returns the combination of paths with
//     the highest total achievable rate.
package routing

import (
	"math"

	"repro/internal/graph"
)

// Config holds the routing-protocol parameters.
type Config struct {
	// N is the number of shortest paths computed by n-shortest at every
	// tree vertex. The paper uses N = 5.
	N int
	// UseCSC enables the channel-switching cost. The paper disables it
	// (CSC = 0) for single-technology (WiFi-only) scenarios.
	UseCSC bool
	// MaxDepth bounds the exploration-tree depth; 0 means unbounded. The
	// paper reports depths of 1–3 in practice, so the bound exists only as
	// a safety valve for adversarial inputs.
	MaxDepth int
	// MaxHops bounds the path length in links; 0 means the wire-format
	// limit of 6 (the EMPoWER header stores at most 6 hops).
	MaxHops int
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: n = 5, CSC on, unbounded depth, 6-hop routes.
func DefaultConfig() Config {
	return Config{N: 5, UseCSC: true, MaxDepth: 0, MaxHops: 6}
}

func (c Config) maxHops() int {
	if c.MaxHops <= 0 {
		return 6
	}
	return c.MaxHops
}

// wns returns the non-switching channel cost of node u:
// w_ns(u) = min_{l ∈ L(u)} d_l over the positive-capacity egress links of
// u (paper §3.1). The switching cost w_s(u) is 0 by construction. If u has
// no live egress links the cost is 0 (such nodes cannot be intermediate
// anyway).
func wns(net *graph.Network, u graph.NodeID) float64 {
	best := math.Inf(1)
	for _, id := range net.Out(u) {
		l := net.Link(id)
		if l.Capacity > 0 && l.D() < best {
			best = l.D()
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// PathWeight returns the routing weight of a path: the sum of the link
// metrics W(l) = d_l plus the channel-switching costs of the intermediate
// nodes (w_ns when two contiguous links use the same technology, w_s = 0
// otherwise). Dead links make the weight +Inf.
func PathWeight(net *graph.Network, p graph.Path, cfg Config) float64 {
	var w float64
	for i, id := range p {
		l := net.Link(id)
		if l.Capacity <= 0 {
			return math.Inf(1)
		}
		w += l.D()
		if cfg.UseCSC && i > 0 {
			prev := net.Link(p[i-1])
			if prev.Tech == l.Tech {
				w += wns(net, l.From)
			}
		}
	}
	return w
}

// pathWeightView is PathWeight under a capacity overlay, with the per-node
// w_ns precomputed into the workspace (ws.computeWns must have run for the
// same overlay). Values and operation order match PathWeight exactly.
func pathWeightView(ws *workspace, capv []float64, p graph.Path, cfg Config) float64 {
	var w float64
	for i, id := range p {
		c := capv[id]
		if c <= 0 {
			return math.Inf(1)
		}
		w += 1 / c
		if cfg.UseCSC && i > 0 {
			l := ws.net.Link(id)
			if ws.net.Link(p[i-1]).Tech == l.Tech {
				w += ws.wns[l.From]
			}
		}
	}
	return w
}

// PathKey returns a canonical comparable key for a path, used to
// de-duplicate paths across Yen iterations.
func PathKey(p graph.Path) string {
	b := make([]byte, 0, len(p)*3)
	for _, id := range p {
		b = append(b, byte(id>>16), byte(id>>8), byte(id))
	}
	return string(b)
}
