package routing

// Equivalence property tests: the dense workspace-backed routing core must
// return bit-identical results — same paths, same weights, same
// tie-breaks — to the map-based reference implementation kept in
// reference_test.go, across randomized instances, CSC on/off, and varying
// N and MaxHops.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/topology"
)

func pathsEqual(a, b graph.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathListsEqual(a, b []graph.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !pathsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// checkEquivalence runs dense vs reference on one (net, src, dst, cfg) and
// reports the first divergence.
func checkEquivalence(t *testing.T, tag string, net *graph.Network, src, dst graph.NodeID, cfg Config) {
	t.Helper()

	sp := SinglePath(net, src, dst, cfg)
	rsp := refSinglePath(net, src, dst, cfg)
	if (sp == nil) != (rsp == nil) || !pathsEqual(sp, rsp) {
		t.Fatalf("%s: SinglePath diverged: dense %v, reference %v", tag, sp, rsp)
	}
	if sp != nil {
		dw := PathWeight(net, sp, cfg)
		rw := PathWeight(net, rsp, cfg)
		if dw != rw {
			t.Fatalf("%s: SinglePath weight diverged: dense %v, reference %v", tag, dw, rw)
		}
	}

	ns := NShortest(net, src, dst, cfg)
	rns := refNShortest(net, src, dst, cfg)
	if !pathListsEqual(ns, rns) {
		t.Fatalf("%s: NShortest diverged:\n dense     %v\n reference %v", tag, ns, rns)
	}
	for i := range ns {
		if dw, rw := PathWeight(net, ns[i], cfg), PathWeight(net, rns[i], cfg); dw != rw {
			t.Fatalf("%s: NShortest weight %d diverged: dense %v, reference %v", tag, i, dw, rw)
		}
	}

	comb := Multipath(net, src, dst, cfg)
	rcomb := refMultipath(net, src, dst, cfg)
	if !pathListsEqual(comb.Paths, rcomb.Paths) {
		t.Fatalf("%s: Multipath paths diverged:\n dense     %v\n reference %v", tag, comb.Paths, rcomb.Paths)
	}
	if len(comb.Rates) != len(rcomb.Rates) || comb.Total != rcomb.Total {
		t.Fatalf("%s: Multipath rates/total diverged: dense %v/%v, reference %v/%v",
			tag, comb.Rates, comb.Total, rcomb.Rates, rcomb.Total)
	}
	for i := range comb.Rates {
		if comb.Rates[i] != rcomb.Rates[i] {
			t.Fatalf("%s: Multipath rate %d diverged: dense %v, reference %v", tag, i, comb.Rates[i], rcomb.Rates[i])
		}
	}
}

// TestDenseMatchesReferenceRandom sweeps random small multigraphs across
// the full configuration grid.
func TestDenseMatchesReferenceRandom(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := newRng(seed)
		net, src, dst := randomNetwork(rng)
		for _, csc := range []bool{true, false} {
			for _, n := range []int{1, 2, 5} {
				for _, maxHops := range []int{3, 6, 8} {
					cfg := Config{N: n, UseCSC: csc, MaxHops: maxHops}
					tag := fmt.Sprintf("seed=%d csc=%v n=%d maxhops=%d", seed, csc, n, maxHops)
					checkEquivalence(t, tag, net, src, dst, cfg)
				}
			}
		}
	}
}

// TestDenseMatchesReferenceTopologies runs the paper's residential and
// enterprise instance generators (the §5 Monte-Carlo population) through
// the equivalence check.
func TestDenseMatchesReferenceTopologies(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	builders := []struct {
		name  string
		build func(seed int64) (*graph.Network, graph.NodeID, graph.NodeID)
	}{
		{"residential", func(seed int64) (*graph.Network, graph.NodeID, graph.NodeID) {
			inst := topology.Residential(stats.NewRand(seed), topology.Config{})
			net := inst.Build(topology.ViewHybrid)
			src, dst := inst.RandomFlow(stats.NewRand(seed + 1000))
			return net.Network, src, dst
		}},
		{"enterprise", func(seed int64) (*graph.Network, graph.NodeID, graph.NodeID) {
			inst := topology.Enterprise(stats.NewRand(seed), topology.Config{})
			net := inst.Build(topology.ViewHybrid)
			src, dst := inst.RandomFlow(stats.NewRand(seed + 2000))
			return net.Network, src, dst
		}},
		{"residential-wifi", func(seed int64) (*graph.Network, graph.NodeID, graph.NodeID) {
			inst := topology.Residential(stats.NewRand(seed), topology.Config{})
			net := inst.Build(topology.ViewWiFiSingle)
			src, dst := inst.RandomFlow(stats.NewRand(seed + 3000))
			return net.Network, src, dst
		}},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				net, src, dst := b.build(seed)
				for _, csc := range []bool{true, false} {
					cfg := DefaultConfig()
					cfg.UseCSC = csc
					tag := fmt.Sprintf("%s seed=%d csc=%v", b.name, seed, csc)
					checkEquivalence(t, tag, net, src, dst, cfg)
				}
			}
		})
	}
}

// TestRateProceduresMatchReference pins RatePath / RateOnLink / Update /
// SequentialRates to the reference formulas on random instances.
func TestRateProceduresMatchReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := newRng(seed + 500)
		net, src, dst := randomNetwork(rng)
		paths := refNShortest(net, src, dst, DefaultConfig())
		for _, p := range paths {
			if got, want := RatePath(net, p), refRatePath(net, p); got != want {
				t.Fatalf("seed %d: RatePath %v != reference %v", seed, got, want)
			}
			for _, l := range p {
				got := RateOnLink(net, l, p)
				// Reference formula inline: sum of d over I_l ∩ P.
				var sum float64
				dead := false
				for _, i := range net.Interference(l) {
					for _, q := range p {
						if q == i {
							if net.Link(i).Capacity <= 0 {
								dead = true
							}
							sum += net.Link(i).D()
						}
					}
				}
				want := math.Inf(1)
				if dead {
					want = 0
				} else if sum > 0 {
					want = 1 / sum
				}
				if got != want {
					t.Fatalf("seed %d: RateOnLink %v != reference %v", seed, got, want)
				}
			}
			g1 := Update(net, p)
			g2 := refUpdate(net, p)
			for i := 0; i < net.NumLinks(); i++ {
				if g1.Link(graph.LinkID(i)).Capacity != g2.Link(graph.LinkID(i)).Capacity {
					t.Fatalf("seed %d: Update capacity %d diverged: %v != %v",
						seed, i, g1.Link(graph.LinkID(i)).Capacity, g2.Link(graph.LinkID(i)).Capacity)
				}
			}
		}
		// SequentialRates vs the RatePath/Update chain it replaces.
		rates := SequentialRates(net, paths)
		g := net
		for i, p := range paths {
			want := refRatePath(g, p)
			if rates[i] != want {
				t.Fatalf("seed %d: SequentialRates[%d] = %v, chain gives %v", seed, i, rates[i], want)
			}
			if want > 0 {
				g = refUpdate(g, p)
			}
		}
	}
}
