package routing

import (
	"math"
	"sync"

	"repro/internal/graph"
)

// workspace holds every piece of scratch state the routing procedures need,
// sized to one network and reused across calls through a sync.Pool. All
// set-shaped scratch (visited, banned, in-path membership, …) is
// epoch-stamped: a slot belongs to the current operation iff its mark equals
// the operation's epoch, so reuse needs no clearing — acquiring a fresh set
// is a single counter increment. Slices are grown, never shrunk; stale marks
// from a larger previous network can never equal a fresh epoch because
// epochs only move forward.
//
// A workspace is not safe for concurrent use; the pool hands each goroutine
// its own. Exported entry points acquire and release one per call, internal
// routines thread the caller's through.
type workspace struct {
	net *graph.Network

	// Virtual-interface search state (dijkstra). States are dense integers
	// idx = node*stride + tech + 1, where tech = -1 (noTech) for the search
	// source; stride = maxTech + 2.
	stride      int
	searchEpoch uint64
	distMark    []uint64
	visMark     []uint64
	dist        []float64
	prevLink    []int32
	prevState   []int32
	hops        []int32
	heap        []heapState

	// Banned link/node sets for Yen spur searches (by LinkID / NodeID).
	banEpoch    uint64
	banLinkMark []uint64
	banNodeMark []uint64

	// Link-membership set for R(P) / R(l,P) / update(P,G) (by LinkID).
	// dPath[l] caches d_l of the marked links at mark time, i.e. before
	// update mutates the capacities in place.
	pathEpoch  uint64
	inPathMark []uint64
	dPath      []float64

	// Affected-link set for update(P,G): the union of the interference
	// domains of the path's links, collected once per update.
	affEpoch uint64
	affMark  []uint64
	affList  []graph.LinkID

	// Node marks for loop removal and path validation (by NodeID).
	nodeEpoch uint64
	nodeMark  []uint64
	nodeIdx   []int32

	// Reusable path and node-sequence buffers.
	pathBuf  []graph.LinkID // dijkstra reconstruction target
	totalBuf []graph.LinkID // Yen root+spur assembly
	nodesBuf []graph.NodeID // node sequence of the deviation path

	// Yen candidate heap and de-duplication keys.
	cands    []candEntry
	seenKeys map[pathKey]struct{}

	// Per-view capacity overlay and precomputed per-node w_ns. capRoot is
	// the root vertex's capacities (copied from the network once per call);
	// the exploration tree's children draw further overlays from the free
	// list instead of cloning the network.
	capRoot  []float64
	wns      []float64
	overlays [][]float64

	// Path-key packing: paths of up to maxPackLen links pack injectively
	// into a uint64 (positional code with digits id+1 in base numLinks+1);
	// longer paths fall back to a string key.
	packBase   uint64
	maxPackLen int

	// Link arena for the paths built during one search (Yen's accepted
	// and candidate paths, the exploration tree's branches). Chunks are
	// never reallocated, so arena paths stay valid until the next
	// prepareSearch; results that outlive the call (Multipath/NShortest
	// returns) are deep-copied out on exit.
	chunks [][]graph.LinkID
	chunkI int

	// Free list of path-slice headers (nShortest accepted lists).
	pathSlices [][]graph.Path

	// Exploration-tree branch stack: the root-to-vertex paths and rates,
	// replacing the per-vertex Combination copies.
	branchPaths []graph.Path
	branchRates []float64
}

// heapState is a dijkstra frontier entry. The heap is a manual binary heap
// with exactly container/heap's sift rules and a less of strict dist
// comparison, so pop order — including the order among equal distances —
// is identical to the reference map-based implementation.
type heapState struct {
	dist  float64
	state int32
}

// candEntry is a Yen candidate. seq is the generation number; ordering by
// (weight, seq) reproduces the reference implementation's repeated
// stable-sort selection: among equal-weight minima, the earliest-generated
// candidate wins.
type candEntry struct {
	weight float64
	seq    int
	path   graph.Path
}

// pathKey is a comparable de-duplication key for a path: the packed uint64
// code when the path fits, a string fallback otherwise. The two variants
// cannot collide (fallback keys carry a non-empty string).
type pathKey struct {
	packed uint64
	long   string
}

var wsPool = sync.Pool{New: func() any { return &workspace{} }}

// getWS acquires a workspace sized for net's links and nodes. Search state
// (dijkstra arrays, key packing, capacity overlay) is sized separately by
// prepareSearch, so rate-only operations skip it.
func getWS(net *graph.Network) *workspace {
	ws := wsPool.Get().(*workspace)
	ws.net = net
	nl, nn := net.NumLinks(), net.NumNodes()
	ws.banLinkMark = growU64(ws.banLinkMark, nl)
	ws.inPathMark = growU64(ws.inPathMark, nl)
	ws.dPath = growF64(ws.dPath, nl)
	ws.affMark = growU64(ws.affMark, nl)
	ws.banNodeMark = growU64(ws.banNodeMark, nn)
	ws.nodeMark = growU64(ws.nodeMark, nn)
	ws.nodeIdx = growI32(ws.nodeIdx, nn)
	return ws
}

func putWS(ws *workspace) {
	ws.net = nil
	wsPool.Put(ws)
}

// prepareSearch sizes the dijkstra state for the virtual interface graph,
// fills the root capacity overlay, and derives the key-packing parameters.
func (ws *workspace) prepareSearch() {
	net := ws.net
	maxTech := -1
	for i := range net.Links {
		if t := int(net.Links[i].Tech); t > maxTech {
			maxTech = t
		}
	}
	ws.stride = maxTech + 2
	n := net.NumNodes() * ws.stride
	ws.distMark = growU64(ws.distMark, n)
	ws.visMark = growU64(ws.visMark, n)
	ws.dist = growF64(ws.dist, n)
	ws.prevLink = growI32(ws.prevLink, n)
	ws.prevState = growI32(ws.prevState, n)
	ws.hops = growI32(ws.hops, n)
	ws.wns = growF64(ws.wns, net.NumNodes())
	ws.fillCap()

	ws.packBase = uint64(net.NumLinks()) + 1
	ws.maxPackLen = 0
	if ws.packBase >= 2 {
		prod := uint64(1)
		for ws.maxPackLen < 64 && prod <= math.MaxUint64/ws.packBase {
			prod *= ws.packBase
			ws.maxPackLen++
		}
	}

	ws.arenaReset()
	ws.branchPaths = ws.branchPaths[:0]
	ws.branchRates = ws.branchRates[:0]
}

// arenaChunkLinks is the size of one arena chunk. Paths longer than this
// (impossible under realistic hop limits) fall back to a plain allocation.
const arenaChunkLinks = 1024

// arenaReset recycles every arena chunk for a new top-level search. Paths
// handed out before the reset must not be referenced afterwards; the public
// entry points guarantee that by deep-copying escaping results.
func (ws *workspace) arenaReset() {
	for i := range ws.chunks {
		ws.chunks[i] = ws.chunks[i][:0]
	}
	ws.chunkI = 0
}

// arenaAlloc carves a path of length n out of the arena. Chunks are never
// reallocated, so the returned slice stays valid until the next arenaReset.
func (ws *workspace) arenaAlloc(n int) graph.Path {
	if n > arenaChunkLinks {
		return make(graph.Path, n)
	}
	for {
		if ws.chunkI == len(ws.chunks) {
			ws.chunks = append(ws.chunks, make([]graph.LinkID, 0, arenaChunkLinks))
		}
		c := ws.chunks[ws.chunkI]
		if len(c)+n <= cap(c) {
			p := c[len(c) : len(c)+n : len(c)+n]
			ws.chunks[ws.chunkI] = c[:len(c)+n]
			return p
		}
		ws.chunkI++
	}
}

// getPathSlice returns an empty path-header slice from the free list;
// putPathSlice gives one back once its paths are consumed. nShortest takes
// one per call (including empty-result returns) and every caller returns
// it, so the free list never grows past the exploration depth.
func (ws *workspace) getPathSlice() []graph.Path {
	if k := len(ws.pathSlices); k > 0 {
		s := ws.pathSlices[k-1]
		ws.pathSlices[k-1] = nil
		ws.pathSlices = ws.pathSlices[:k-1]
		return s[:0]
	}
	return nil
}

func (ws *workspace) putPathSlice(s []graph.Path) {
	ws.pathSlices = append(ws.pathSlices, s[:0])
}

// copyPaths deep-copies arena-backed paths into fresh storage — one flat
// backing array plus the header slice — so results can outlive the
// workspace that built them. Empty input yields nil.
func copyPaths(src []graph.Path) []graph.Path {
	if len(src) == 0 {
		return nil
	}
	n := 0
	for _, p := range src {
		n += len(p)
	}
	flat := make([]graph.LinkID, n)
	out := make([]graph.Path, len(src))
	pos := 0
	for i, p := range src {
		end := pos + len(p)
		out[i] = flat[pos:end:end]
		copy(out[i], p)
		pos = end
	}
	return out
}

// fillCap copies the network's current capacities into the root overlay.
func (ws *workspace) fillCap() {
	ws.capRoot = growF64(ws.capRoot, ws.net.NumLinks())
	for i := range ws.net.Links {
		ws.capRoot[i] = ws.net.Links[i].Capacity
	}
}

// computeWns fills ws.wns with w_ns(u) for every node under the given
// capacity overlay: the minimum d_l over u's live egress links, 0 when u
// has none (same values, same comparison order as the wns function).
func (ws *workspace) computeWns(capv []float64) {
	net := ws.net
	for u := range net.Nodes {
		best := math.Inf(1)
		for _, id := range net.Out(graph.NodeID(u)) {
			if c := capv[id]; c > 0 {
				if d := 1 / c; d < best {
					best = d
				}
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		ws.wns[u] = best
	}
}

// key returns the de-duplication key of a path.
func (ws *workspace) key(p []graph.LinkID) pathKey {
	if len(p) <= ws.maxPackLen {
		var k uint64
		for i := len(p) - 1; i >= 0; i-- {
			k = k*ws.packBase + uint64(p[i]) + 1
		}
		return pathKey{packed: k}
	}
	b := make([]byte, 0, len(p)*4)
	for _, id := range p {
		b = append(b, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return pathKey{packed: ^uint64(0), long: string(b)}
}

// getOverlay returns a capacity overlay of the network's link count from
// the free list (or a fresh one); putOverlay returns it after the child
// vertex's subtree is explored.
func (ws *workspace) getOverlay() []float64 {
	n := ws.net.NumLinks()
	if k := len(ws.overlays); k > 0 {
		o := ws.overlays[k-1]
		ws.overlays = ws.overlays[:k-1]
		if cap(o) >= n {
			return o[:n]
		}
	}
	return make([]float64, n)
}

func (ws *workspace) putOverlay(o []float64) {
	ws.overlays = append(ws.overlays, o)
}

// pathNodes writes the node sequence of p into the reusable buffer. ok is
// false when the links do not chain (mirrors Network.PathNodes failing).
func (ws *workspace) pathNodes(p graph.Path) (nodes []graph.NodeID, ok bool) {
	if len(p) == 0 {
		return nil, false
	}
	nodes = ws.nodesBuf[:0]
	cur := ws.net.Link(p[0]).From
	nodes = append(nodes, cur)
	for _, id := range p {
		l := ws.net.Link(id)
		if l.From != cur {
			ws.nodesBuf = nodes
			return nil, false
		}
		cur = l.To
		nodes = append(nodes, cur)
	}
	ws.nodesBuf = nodes
	return nodes, true
}

// validPath reports whether p is a connected loop-free path from src to
// dst — the allocation-free equivalent of Network.ValidatePath == nil.
func (ws *workspace) validPath(p graph.Path, src, dst graph.NodeID) bool {
	if len(p) == 0 {
		return false
	}
	net := ws.net
	if net.Link(p[0]).From != src {
		return false
	}
	ws.nodeEpoch++
	ep := ws.nodeEpoch
	cur := src
	ws.nodeMark[cur] = ep
	for _, id := range p {
		l := net.Link(id)
		if l.From != cur {
			return false
		}
		cur = l.To
		if ws.nodeMark[cur] == ep {
			return false
		}
		ws.nodeMark[cur] = ep
	}
	return cur == dst
}

// removeNodeLoops shortcuts node revisits in a walk, in place, with the
// same cut-first-revisit-and-restart policy as the reference
// implementation (see the removeNodeLoops wrapper for why cuts never
// increase the path weight).
func (ws *workspace) removeNodeLoops(p []graph.LinkID) []graph.LinkID {
	net := ws.net
	for {
		if len(p) == 0 {
			return p
		}
		ws.nodeEpoch++
		ep := ws.nodeEpoch
		from := net.Link(p[0]).From
		ws.nodeMark[from] = ep
		ws.nodeIdx[from] = 0
		loop := false
		for i, id := range p {
			to := net.Link(id).To
			if ws.nodeMark[to] == ep {
				// Links j..i form a loop returning to node `to`; cut them.
				j := int(ws.nodeIdx[to])
				p = p[:j+copy(p[j:], p[i+1:])]
				loop = true
				break
			}
			ws.nodeMark[to] = ep
			ws.nodeIdx[to] = int32(i + 1)
		}
		if !loop {
			return p
		}
	}
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// --- manual binary heaps -------------------------------------------------

// heapPushState appends e and sifts up, exactly as container/heap.Push.
func heapPushState(h []heapState, e heapState) []heapState {
	h = append(h, e)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

// heapPopState removes and returns the minimum, exactly as
// container/heap.Pop (swap root with last, sift down, truncate).
func heapPopState(h []heapState) ([]heapState, heapState) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	return h[:n], e
}

func candLess(a, b candEntry) bool {
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return a.seq < b.seq
}

func heapPushCand(h []candEntry, e candEntry) []candEntry {
	h = append(h, e)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !candLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

func heapPopCand(h []candEntry) ([]candEntry, candEntry) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && candLess(h[j2], h[j1]) {
			j = j2
		}
		if !candLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	h[n] = candEntry{} // release the path for GC
	return h[:n], e
}
