package routing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// figure1 builds the paper's Figure 1 scenario: gateway a, range extender
// b, client c. PLC a-b at 10 Mbps, WiFi a-b at 15 Mbps, WiFi b-c at
// 30 Mbps. Optimal load balancing sends 10 Mbps on the hybrid Route 1
// (a-PLC->b-WiFi->c) and 6.6 Mbps on the two-hop WiFi Route 2.
func figure1() (*graph.Network, graph.NodeID, graph.NodeID, graph.NodeID) {
	b := graph.NewBuilder(nil)
	a := b.AddNode("a", 0, 0, graph.TechPLC, graph.TechWiFi)
	bb := b.AddNode("b", 10, 0, graph.TechPLC, graph.TechWiFi)
	c := b.AddNode("c", 20, 0, graph.TechWiFi)
	b.AddDuplex(a, bb, graph.TechPLC, 10)
	b.AddDuplex(a, bb, graph.TechWiFi, 15)
	b.AddDuplex(bb, c, graph.TechWiFi, 30)
	return b.Build(), a, bb, c
}

func pathTechs(net *graph.Network, p graph.Path) []graph.Tech {
	ts := make([]graph.Tech, len(p))
	for i, id := range p {
		ts[i] = net.Link(id).Tech
	}
	return ts
}

func TestSinglePathFigure1(t *testing.T) {
	net, a, _, c := figure1()
	p := SinglePath(net, a, c, DefaultConfig())
	if p == nil {
		t.Fatal("no path found")
	}
	if err := net.ValidatePath(p, a, c); err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("path length %d, want 2", len(p))
	}
	// Both 2-hop paths have weight 2/15 under the EMPoWER metric (the
	// PLC-WiFi route pays d=1/10+1/30 with zero CSC; the WiFi-WiFi route
	// pays 1/15+1/30 plus wns(b)=1/30). The tie makes either acceptable.
	w := PathWeight(net, p, DefaultConfig())
	if math.Abs(w-2.0/15) > 1e-9 {
		t.Errorf("path weight %v, want %v", w, 2.0/15)
	}
}

func TestSinglePathUnreachable(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	w := b.AddNode("w", 2, 0, graph.TechPLC)
	b.AddDuplex(u, v, graph.TechWiFi, 10)
	net := b.Build()
	if p := SinglePath(net, u, w, DefaultConfig()); p != nil {
		t.Errorf("expected nil path to unreachable node, got %v", p)
	}
}

func TestSinglePathIgnoresDeadLinks(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	dead := b.AddLink(u, v, graph.TechWiFi, 0)
	live := b.AddLink(u, v, graph.TechWiFi, 20)
	net := b.Build()
	p := SinglePath(net, u, v, DefaultConfig())
	if len(p) != 1 || p[0] != live {
		t.Errorf("path = %v, want [%d] (dead link %d skipped)", p, live, dead)
	}
}

func TestCSCFavorsAlternatingTechs(t *testing.T) {
	// Two 2-hop routes with identical capacities; one alternates PLC/WiFi,
	// the other stays on WiFi. With CSC the alternating route must win.
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	m := b.AddNode("m", 1, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 2, 0, graph.TechPLC, graph.TechWiFi)
	b.AddDuplex(s, m, graph.TechPLC, 20)
	b.AddDuplex(s, m, graph.TechWiFi, 20)
	b.AddDuplex(m, d, graph.TechWiFi, 20)
	net := b.Build()
	p := SinglePath(net, s, d, DefaultConfig())
	techs := pathTechs(net, p)
	if len(techs) != 2 || techs[0] != graph.TechPLC || techs[1] != graph.TechWiFi {
		t.Errorf("CSC should pick PLC then WiFi, got %v", techs)
	}
	// Without CSC the two routes tie, so just check it still finds one.
	noCSC := DefaultConfig()
	noCSC.UseCSC = false
	if q := SinglePath(net, s, d, noCSC); len(q) != 2 {
		t.Errorf("no-CSC path length %d, want 2", len(q))
	}
}

func TestPathWeightDeadLinkInf(t *testing.T) {
	net, a, bb, _ := figure1()
	id := net.FindLink(a, bb, graph.TechPLC)
	clone := net.Clone()
	clone.Link(id).Capacity = 0
	if w := PathWeight(clone, graph.Path{id}, DefaultConfig()); !math.IsInf(w, 1) {
		t.Errorf("weight of dead path = %v, want +Inf", w)
	}
}

func TestMaxHopsRespected(t *testing.T) {
	// A chain of 8 nodes: with the default 6-hop limit the far end is
	// unreachable; raising MaxHops makes it reachable.
	b := graph.NewBuilder(nil)
	ids := make([]graph.NodeID, 9)
	for i := range ids {
		ids[i] = b.AddNode("", float64(i), 0, graph.TechWiFi)
	}
	for i := 0; i < 8; i++ {
		b.AddDuplex(ids[i], ids[i+1], graph.TechWiFi, 10)
	}
	net := b.Build()
	cfg := DefaultConfig()
	if p := SinglePath(net, ids[0], ids[8], cfg); p != nil {
		t.Errorf("8-hop path returned despite 6-hop limit: %d hops", len(p))
	}
	cfg.MaxHops = 8
	if p := SinglePath(net, ids[0], ids[8], cfg); len(p) != 8 {
		t.Errorf("with MaxHops=8 expected 8-hop path, got %v", p)
	}
}

func TestNShortestFigure1(t *testing.T) {
	net, a, _, c := figure1()
	paths := NShortest(net, a, c, DefaultConfig())
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (PLC-WiFi and WiFi-WiFi)", len(paths))
	}
	for _, p := range paths {
		if err := net.ValidatePath(p, a, c); err != nil {
			t.Errorf("invalid path %v: %v", p, err)
		}
	}
	// The two paths must be distinct.
	if PathKey(paths[0]) == PathKey(paths[1]) {
		t.Error("duplicate paths returned")
	}
}

func TestNShortestOrdering(t *testing.T) {
	net, a, _, c := figure1()
	cfg := DefaultConfig()
	paths := NShortest(net, a, c, cfg)
	for i := 1; i < len(paths); i++ {
		if PathWeight(net, paths[i-1], cfg) > PathWeight(net, paths[i], cfg)+1e-12 {
			t.Errorf("paths not in increasing weight order at %d", i)
		}
	}
}

func TestNShortestRespectsN(t *testing.T) {
	net, a, _, c := figure1()
	cfg := DefaultConfig()
	cfg.N = 1
	if got := NShortest(net, a, c, cfg); len(got) != 1 {
		t.Errorf("N=1 returned %d paths", len(got))
	}
	cfg.N = 0
	if got := NShortest(net, a, c, cfg); got != nil {
		t.Errorf("N=0 should return nil, got %v", got)
	}
}

func TestRatePathFigure1(t *testing.T) {
	net, a, bb, c := figure1()
	plc := net.FindLink(a, bb, graph.TechPLC)
	wab := net.FindLink(a, bb, graph.TechWiFi)
	wbc := net.FindLink(bb, c, graph.TechWiFi)

	hybrid := graph.Path{plc, wbc}
	wifi := graph.Path{wab, wbc}
	// Hybrid route: PLC and WiFi don't interfere; R = min(10, 30) = 10.
	if r := RatePath(net, hybrid); math.Abs(r-10) > 1e-9 {
		t.Errorf("R(hybrid) = %v, want 10", r)
	}
	// WiFi-WiFi route: links share the medium; R = 1/(1/15+1/30) = 10.
	if r := RatePath(net, wifi); math.Abs(r-10) > 1e-9 {
		t.Errorf("R(wifi) = %v, want 10", r)
	}
	if RatePath(net, nil) != 0 {
		t.Error("R(empty) should be 0")
	}
}

func TestRateOnLink(t *testing.T) {
	net, a, bb, c := figure1()
	wab := net.FindLink(a, bb, graph.TechWiFi)
	wbc := net.FindLink(bb, c, graph.TechWiFi)
	p := graph.Path{wab, wbc}
	// Both links contend: R(l,P) identical on both = 10.
	if r := RateOnLink(net, wab, p); math.Abs(r-10) > 1e-9 {
		t.Errorf("R(l,P) = %v, want 10", r)
	}
	plc := net.FindLink(a, bb, graph.TechPLC)
	hp := graph.Path{plc, wbc}
	// On the hybrid path the PLC link sees only itself: R = 10.
	if r := RateOnLink(net, plc, hp); math.Abs(r-10) > 1e-9 {
		t.Errorf("R(plc,P) = %v, want 10", r)
	}
	// And the WiFi link sees only itself: R = 30.
	if r := RateOnLink(net, wbc, hp); math.Abs(r-30) > 1e-9 {
		t.Errorf("R(wbc,P) = %v, want 30", r)
	}
}

func TestUpdateBottleneckZeroed(t *testing.T) {
	net, a, bb, c := figure1()
	plc := net.FindLink(a, bb, graph.TechPLC)
	wbc := net.FindLink(bb, c, graph.TechWiFi)
	hybrid := graph.Path{plc, wbc}
	g1 := Update(net, hybrid)
	// PLC is the bottleneck (10 = R(P)): its capacity must drop to 0.
	if g1.Link(plc).Capacity != 0 {
		t.Errorf("bottleneck capacity = %v, want 0", g1.Link(plc).Capacity)
	}
	// WiFi b-c had 30, consumed 10/30 of its medium: 30·(2/3) = 20.
	if got := g1.Link(wbc).Capacity; math.Abs(got-20) > 1e-9 {
		t.Errorf("wbc capacity = %v, want 20", got)
	}
	// WiFi a-b shares the WiFi medium: 15·(2/3) = 10.
	wab := net.FindLink(a, bb, graph.TechWiFi)
	if got := g1.Link(wab).Capacity; math.Abs(got-10) > 1e-9 {
		t.Errorf("wab capacity = %v, want 10", got)
	}
	// The original network is untouched.
	if net.Link(plc).Capacity != 10 {
		t.Error("Update mutated its input")
	}
}

func TestUpdatePropertyNonNegativeAndBounded(t *testing.T) {
	net, a, _, c := figure1()
	for _, p := range NShortest(net, a, c, DefaultConfig()) {
		g1 := Update(net, p)
		hasZero := false
		for i := 0; i < g1.NumLinks(); i++ {
			before := net.Link(graph.LinkID(i)).Capacity
			after := g1.Link(graph.LinkID(i)).Capacity
			if after < 0 || after > before+1e-9 {
				t.Fatalf("capacity out of range: %v -> %v", before, after)
			}
		}
		for _, id := range p {
			if g1.Link(id).Capacity == 0 {
				hasZero = true
			}
		}
		if !hasZero {
			t.Error("Update must zero at least one path link (the bottleneck)")
		}
	}
}

func TestMultipathFigure1(t *testing.T) {
	net, a, _, c := figure1()
	comb := Multipath(net, a, c, DefaultConfig())
	// Paper: Route 1 at 10 Mbps + Route 2 at 6.67 Mbps = 16.67 total.
	if math.Abs(comb.Total-50.0/3) > 1e-6 {
		t.Fatalf("combination total = %v, want 16.667", comb.Total)
	}
	if len(comb.Paths) != 2 {
		t.Fatalf("combination uses %d paths, want 2", len(comb.Paths))
	}
	if math.Abs(comb.Rates[0]-10) > 1e-6 {
		t.Errorf("first route rate = %v, want 10", comb.Rates[0])
	}
	if math.Abs(comb.Rates[1]-20.0/3) > 1e-6 {
		t.Errorf("second route rate = %v, want 6.667", comb.Rates[1])
	}
	// The first route must be the hybrid one (its WiFi hop leaves room).
	techs := pathTechs(net, comb.Paths[0])
	if techs[0] != graph.TechPLC {
		t.Errorf("first route should start with PLC, got %v", techs)
	}
}

// TestMultipathBestSingleNotInBestCombination reproduces the key insight of
// Figure 3: the best isolated route is not necessarily part of the best
// combination of routes.
func TestMultipathBestSingleNotInBestCombination(t *testing.T) {
	// Medium A (solid), medium B (dashed); single collision domain each.
	// Route 2 (best single, 11 Mbps) uses both mediums and starves
	// everything; Routes 1 and 3 together reach 20 Mbps.
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	m := b.AddNode("m", 1, 0, graph.TechPLC, graph.TechWiFi)
	x := b.AddNode("x", 2, 0, graph.TechWiFi)
	d := b.AddNode("d", 3, 0, graph.TechPLC, graph.TechWiFi)
	// Route 1: s -PLC(10)-> d
	b.AddLink(s, d, graph.TechPLC, 10)
	// Route 2: s -PLC(11)-> m -WiFi(11)-> d
	b.AddLink(s, m, graph.TechPLC, 11)
	b.AddLink(m, d, graph.TechWiFi, 11)
	// Route 3: s -WiFi(15)-> x -WiFi(30)-> d
	b.AddLink(s, x, graph.TechWiFi, 15)
	b.AddLink(x, d, graph.TechWiFi, 30)
	net := b.Build()

	// Best isolated route is Route 2 at min(11,11) = 11.
	best1 := 0.0
	for _, p := range NShortest(net, s, d, DefaultConfig()) {
		if r := RatePath(net, p); r > best1 {
			best1 = r
		}
	}
	if math.Abs(best1-11) > 1e-9 {
		t.Fatalf("best single rate = %v, want 11", best1)
	}

	comb := Multipath(net, s, d, DefaultConfig())
	if math.Abs(comb.Total-20) > 1e-6 {
		t.Fatalf("combination total = %v, want 20 (Routes 1+3)", comb.Total)
	}
	// Route 2's middle link (PLC s->m at 11) must not appear.
	for _, p := range comb.Paths {
		for _, id := range p {
			l := net.Link(id)
			if l.From == s && l.To == m {
				t.Error("best combination should not use Route 2")
			}
		}
	}
}

func TestMultipathUnreachable(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	b.AddNode("v", 1, 0, graph.TechWiFi)
	net := b.Build()
	comb := Multipath(net, u, graph.NodeID(1), DefaultConfig())
	if comb.Total != 0 || len(comb.Paths) != 0 {
		t.Errorf("unreachable combination = %+v, want zero", comb)
	}
}

func TestMultipathSingleLink(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	b.AddLink(u, v, graph.TechWiFi, 42)
	net := b.Build()
	comb := Multipath(net, u, v, DefaultConfig())
	if len(comb.Paths) != 1 || math.Abs(comb.Total-42) > 1e-9 {
		t.Errorf("single-link combination = %+v", comb)
	}
}

func TestMultipathDepthLimit(t *testing.T) {
	net, a, _, c := figure1()
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	comb := Multipath(net, a, c, cfg)
	if len(comb.Paths) != 1 {
		t.Errorf("depth-1 combination uses %d paths, want 1", len(comb.Paths))
	}
	if math.Abs(comb.Total-10) > 1e-6 {
		t.Errorf("depth-1 total = %v, want 10", comb.Total)
	}
}

func TestTwoBestPaths(t *testing.T) {
	net, a, _, c := figure1()
	paths := TwoBestPaths(net, a, c, DefaultConfig())
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
}

// TestMultipathTotalAtLeastBestSingle checks the protocol-level invariant
// that the combination total is never worse than the best isolated route.
func TestMultipathTotalAtLeastBestSingle(t *testing.T) {
	nets := []*graph.Network{}
	{
		n, _, _, _ := figure1()
		nets = append(nets, n)
	}
	for _, net := range nets {
		cfg := DefaultConfig()
		comb := Multipath(net, 0, graph.NodeID(net.NumNodes()-1), cfg)
		for _, p := range NShortest(net, 0, graph.NodeID(net.NumNodes()-1), cfg) {
			if r := RatePath(net, p); comb.Total < r-1e-9 {
				t.Errorf("combination total %v < single-route rate %v", comb.Total, r)
			}
		}
	}
}

// TestMultipathRandomInvariants runs the full procedure over random small
// multigraphs and asserts structural invariants: valid loopless paths,
// non-negative rates, and termination.
func TestMultipathRandomInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		net, src, dst := randomNetwork(rng)
		cfg := DefaultConfig()
		comb := Multipath(net, src, dst, cfg)
		if comb.Total < 0 {
			return false
		}
		for i, p := range comb.Paths {
			if err := net.ValidatePath(p, src, dst); err != nil {
				t.Logf("seed %d: invalid path: %v", seed, err)
				return false
			}
			if comb.Rates[i] <= 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRemoveNodeLoops(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	w := b.AddNode("w", 2, 0, graph.TechWiFi)
	uv := b.AddLink(u, v, graph.TechWiFi, 10)
	vu := b.AddLink(v, u, graph.TechWiFi, 10)
	uv2 := b.AddLink(u, v, graph.TechWiFi, 20)
	vw := b.AddLink(v, w, graph.TechWiFi, 10)
	net := b.Build()
	// Walk u->v->u->v->w has a loop at v... (cut at first revisit).
	got := removeNodeLoops(net, graph.Path{uv, vu, uv2, vw})
	if err := net.ValidatePath(got, u, w); err != nil {
		t.Fatalf("loop removal failed: %v (%v)", err, got)
	}
	if len(got) != 2 {
		t.Errorf("expected 2-hop path after loop removal, got %v", got)
	}
	// A loopless path is unchanged.
	p := graph.Path{uv, vw}
	if got := removeNodeLoops(net, p); len(got) != 2 || got[0] != uv || got[1] != vw {
		t.Errorf("loopless path modified: %v", got)
	}
}

func TestPathKeyUnique(t *testing.T) {
	a := graph.Path{1, 2, 3}
	b := graph.Path{1, 2}
	c := graph.Path{3, 2, 1}
	if PathKey(a) == PathKey(b) || PathKey(a) == PathKey(c) {
		t.Error("PathKey collision")
	}
	if PathKey(a) != PathKey(graph.Path{1, 2, 3}) {
		t.Error("PathKey not deterministic")
	}
}
