package routing

import (
	"testing"

	"repro/internal/graph"
)

// TestAblationCSCImprovesCombination checks the design choice behind the
// channel-switching cost: on hybrid topologies, routing with the CSC
// should never pick worse combinations (by total achievable rate) than
// routing without it, and should win on scenarios where alternating
// technologies avoids intra-path interference.
func TestAblationCSCImprovesCombination(t *testing.T) {
	winsOn, winsOff := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		rng := newRng(seed)
		net, src, dst := randomNetwork(rng)
		on := DefaultConfig()
		off := DefaultConfig()
		off.UseCSC = false
		tOn := Multipath(net, src, dst, on).Total
		tOff := Multipath(net, src, dst, off).Total
		if tOn > tOff+1e-6 {
			winsOn++
		}
		if tOff > tOn+1e-6 {
			winsOff++
		}
	}
	// The CSC is a heuristic: it may occasionally lose, but it should not
	// lose more often than it wins on hybrid networks.
	if winsOff > winsOn {
		t.Errorf("CSC off wins %d vs on %d — CSC is hurting route quality", winsOff, winsOn)
	}
	t.Logf("CSC wins %d, loses %d (rest ties)", winsOn, winsOff)
}

// TestAblationNImprovesTotal checks that increasing n (the n-shortest
// budget) never decreases the combination total — more candidate paths
// can only widen the explored tree.
func TestAblationNImprovesTotal(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := newRng(seed + 100)
		net, src, dst := randomNetwork(rng)
		prev := -1.0
		for _, n := range []int{1, 2, 5} {
			cfg := DefaultConfig()
			cfg.N = n
			total := Multipath(net, src, dst, cfg).Total
			if total < prev-1e-6 {
				t.Errorf("seed %d: total decreased from %.3f to %.3f when n grew to %d",
					seed, prev, total, n)
			}
			prev = total
		}
	}
}

// TestAblationCombinationVsTwoBest quantifies the gap between the full
// exploration tree and the naive MP-2bp route choice the paper compares
// against: the tree's total must always be at least the two-best-paths'
// joint achievable rate.
func TestAblationCombinationVsTwoBest(t *testing.T) {
	strictly := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := newRng(seed + 200)
		net, src, dst := randomNetwork(rng)
		cfg := DefaultConfig()
		comb := Multipath(net, src, dst, cfg)
		two := TwoBestPaths(net, src, dst, cfg)
		if len(two) == 0 {
			continue
		}
		// Joint rate of the naive pair: load the first, then the second
		// on the residual graph.
		joint := RatePath(net, two[0])
		if len(two) > 1 {
			g1 := Update(net, two[0])
			joint += RatePath(g1, two[1])
		}
		if comb.Total < joint-1e-6 {
			t.Errorf("seed %d: combination %.3f below naive pair %.3f", seed, comb.Total, joint)
		}
		if comb.Total > joint+1e-6 {
			strictly++
		}
	}
	t.Logf("exploration tree strictly better than naive 2-best on %d/30 instances", strictly)
}

// TestCSCOptimalOnAlternatingChain verifies the CSC's purpose directly: a
// chain where each hop is available on both technologies must be routed
// with alternating technologies (which doubles the achievable rate).
func TestCSCOptimalOnAlternatingChain(t *testing.T) {
	b := graph.NewBuilder(nil)
	var ids []graph.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, b.AddNode("", float64(i), 0, graph.TechPLC, graph.TechWiFi))
	}
	for i := 0; i < 3; i++ {
		b.AddDuplex(ids[i], ids[i+1], graph.TechPLC, 20)
		b.AddDuplex(ids[i], ids[i+1], graph.TechWiFi, 20)
	}
	net := b.Build()
	p := SinglePath(net, ids[0], ids[3], DefaultConfig())
	if p == nil {
		t.Fatal("no path")
	}
	for i := 1; i < len(p); i++ {
		if net.Link(p[i]).Tech == net.Link(p[i-1]).Tech {
			t.Fatalf("CSC failed to alternate technologies: %s", net.PathString(p))
		}
	}
	// Alternating 3-hop path: middle hop alone on its medium; ends share
	// one medium. R = 1/(2/20) = 10 vs 6.67 for a same-tech path.
	if r := RatePath(net, p); r < 10-1e-9 {
		t.Errorf("alternating path rate %.2f, want 10", r)
	}
}
