package routing

import (
	"math"

	"repro/internal/graph"
)

// RatePath returns R(P), the maximum end-to-end rate achievable on path P
// alone (§3.2): R(P) = ( max_{l∈P} Σ_{l'∈ I_l ∩ P} d_{l'} )^{-1}. It is
// the largest rate simultaneously supported by every link of the path under
// intra-path interference (Lemma 1 applied per interference domain).
func RatePath(net *graph.Network, p graph.Path) float64 {
	if len(p) == 0 {
		return 0
	}
	inPath := make(map[graph.LinkID]bool, len(p))
	for _, id := range p {
		inPath[id] = true
	}
	worst := 0.0
	for _, id := range p {
		var sum float64
		for _, i := range net.Interference(id) {
			if inPath[i] {
				l := net.Link(i)
				if l.Capacity <= 0 {
					return 0
				}
				sum += l.D()
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	if worst == 0 {
		return 0
	}
	return 1 / worst
}

// RateOnLink returns R(l,P) = (Σ_{l'∈ I_l ∩ P} d_{l'})^{-1}: the maximum
// path rate supported by link l (which must be on P).
func RateOnLink(net *graph.Network, l graph.LinkID, p graph.Path) float64 {
	inPath := make(map[graph.LinkID]bool, len(p))
	for _, id := range p {
		inPath[id] = true
	}
	var sum float64
	for _, i := range net.Interference(l) {
		if inPath[i] {
			link := net.Link(i)
			if link.Capacity <= 0 {
				return 0
			}
			sum += link.D()
		}
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 1 / sum
}

// Update implements the procedure update(P,G) of §3.2: it returns a copy of
// the multigraph whose link capacities reflect the consumption of resources
// when traffic is sent on P at the full rate R(P). For every link l in the
// union of the interference domains of P's links,
//
//	C(l) ← max{0, C(l) · r(l,P)},  r(l,P) = 1 − Σ_{l'∈ I_l ∩ P} R(P)·d_{l'}.
//
// At least one link of P (the bottleneck) ends with zero capacity, which
// guarantees the exploration tree terminates.
func Update(net *graph.Network, p graph.Path) *graph.Network {
	out := net.Clone()
	r := RatePath(net, p)
	if r <= 0 {
		return out
	}
	inPath := make(map[graph.LinkID]bool, len(p))
	for _, id := range p {
		inPath[id] = true
	}
	// Collect the union of interference domains of the path's links.
	affected := make(map[graph.LinkID]bool)
	for _, id := range p {
		for _, i := range net.Interference(id) {
			affected[i] = true
		}
	}
	for id := range affected {
		// r(l,P) = 1 - Σ_{l'∈ I_l ∩ P} R(P)·d_{l'} with capacities from net.
		var consumed float64
		for _, i := range net.Interference(id) {
			if inPath[i] {
				consumed += r * net.Link(i).D()
			}
		}
		frac := 1 - consumed
		if frac < 0 {
			frac = 0
		}
		out.Link(id).Capacity = net.Link(id).Capacity * frac
		if out.Link(id).Capacity < capacityEpsilon {
			out.Link(id).Capacity = 0
		}
	}
	return out
}

// capacityEpsilon (Mbps) flushes numerical residue to zero so the
// exploration tree terminates cleanly.
const capacityEpsilon = 1e-9

// Combination is the result of the multipath procedure: a set of paths to
// be employed simultaneously, the rate R(P) at which each was assumed
// loaded during exploration, and the resulting total achievable capacity
// C_B = Σ R(P).
type Combination struct {
	Paths []graph.Path
	Rates []float64
	Total float64
}

// Multipath runs the full multipath-routing procedure of §3.2: it builds
// the exploration tree whose root is net, where each edge is a path
// returned by n-shortest and each child vertex the multigraph updated by
// Update, and returns the path set on the root-to-leaf branch maximizing
// total capacity. The zero Combination is returned when dst is unreachable.
func Multipath(net *graph.Network, src, dst graph.NodeID, cfg Config) Combination {
	var best Combination
	explore(net, src, dst, cfg, 0, Combination{}, &best)
	return best
}

func explore(g *graph.Network, src, dst graph.NodeID, cfg Config, depth int, cur Combination, best *Combination) {
	if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
		if cur.Total > best.Total {
			*best = cur
		}
		return
	}
	paths := NShortest(g, src, dst, cfg)
	// Keep only paths with strictly positive achievable rate.
	leaf := true
	for _, p := range paths {
		r := RatePath(g, p)
		if r <= capacityEpsilon {
			continue
		}
		leaf = false
		child := Update(g, p)
		next := Combination{
			Paths: append(append([]graph.Path(nil), cur.Paths...), p),
			Rates: append(append([]float64(nil), cur.Rates...), r),
			Total: cur.Total + r,
		}
		explore(child, src, dst, cfg, depth+1, next, best)
	}
	if leaf && cur.Total > best.Total {
		*best = cur
	}
}

// TwoBestPaths implements the naive MP-2bp baseline of §5.1: the two best
// paths from the n-shortest procedure (2-shortest), without the
// combination-aware tree search.
func TwoBestPaths(net *graph.Network, src, dst graph.NodeID, cfg Config) []graph.Path {
	c := cfg
	c.N = 2
	return NShortest(net, src, dst, c)
}
