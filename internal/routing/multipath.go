package routing

import (
	"math"

	"repro/internal/graph"
)

// RatePath returns R(P), the maximum end-to-end rate achievable on path P
// alone (§3.2): R(P) = ( max_{l∈P} Σ_{l'∈ I_l ∩ P} d_{l'} )^{-1}. It is
// the largest rate simultaneously supported by every link of the path under
// intra-path interference (Lemma 1 applied per interference domain).
func RatePath(net *graph.Network, p graph.Path) float64 {
	ws := getWS(net)
	ws.fillCap()
	r := ws.ratePath(ws.capRoot, p)
	putWS(ws)
	return r
}

// ratePath computes R(P) under a capacity overlay. Path membership is an
// epoch-stamped scratch set, so the call allocates nothing.
func (ws *workspace) ratePath(capv []float64, p graph.Path) float64 {
	if len(p) == 0 {
		return 0
	}
	ws.pathEpoch++
	ep := ws.pathEpoch
	for _, id := range p {
		ws.inPathMark[id] = ep
	}
	worst := 0.0
	for _, id := range p {
		var sum float64
		for _, i := range ws.net.Interference(id) {
			if ws.inPathMark[i] == ep {
				c := capv[i]
				if c <= 0 {
					return 0
				}
				sum += 1 / c
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	if worst == 0 {
		return 0
	}
	return 1 / worst
}

// RateOnLink returns R(l,P) = (Σ_{l'∈ I_l ∩ P} d_{l'})^{-1}: the maximum
// path rate supported by link l (which must be on P).
func RateOnLink(net *graph.Network, l graph.LinkID, p graph.Path) float64 {
	ws := getWS(net)
	ws.pathEpoch++
	ep := ws.pathEpoch
	for _, id := range p {
		ws.inPathMark[id] = ep
	}
	var sum float64
	for _, i := range net.Interference(l) {
		if ws.inPathMark[i] == ep {
			c := net.Link(i).Capacity
			if c <= 0 {
				putWS(ws)
				return 0
			}
			sum += 1 / c
		}
	}
	putWS(ws)
	if sum == 0 {
		return math.Inf(1)
	}
	return 1 / sum
}

// Update implements the procedure update(P,G) of §3.2: it returns a copy of
// the multigraph whose link capacities reflect the consumption of resources
// when traffic is sent on P at the full rate R(P). For every link l in the
// union of the interference domains of P's links,
//
//	C(l) ← max{0, C(l) · r(l,P)},  r(l,P) = 1 − Σ_{l'∈ I_l ∩ P} R(P)·d_{l'}.
//
// At least one link of P (the bottleneck) ends with zero capacity, which
// guarantees the exploration tree terminates.
func Update(net *graph.Network, p graph.Path) *graph.Network {
	out := net.Clone()
	ws := getWS(net)
	ws.fillCap()
	if r := ws.ratePath(ws.capRoot, p); r > 0 {
		ws.update(ws.capRoot, p, r)
		for i := range out.Links {
			out.Links[i].Capacity = ws.capRoot[i]
		}
	}
	putWS(ws)
	return out
}

// update applies update(P,G) to a capacity overlay in place, given
// r = R(P) > 0 computed on the same overlay. The pre-update d_l of the
// path's links are latched at mark time (ws.dPath), so the in-place
// mutation observes exactly the capacities the reference implementation's
// cloned-network version observes.
func (ws *workspace) update(capv []float64, p graph.Path, r float64) {
	ws.pathEpoch++
	ep := ws.pathEpoch
	for _, id := range p {
		ws.inPathMark[id] = ep
		if c := capv[id]; c > 0 {
			ws.dPath[id] = 1 / c
		} else {
			ws.dPath[id] = math.Inf(1)
		}
	}
	// Collect the union of interference domains of the path's links.
	ws.affEpoch++
	aep := ws.affEpoch
	aff := ws.affList[:0]
	for _, id := range p {
		for _, i := range ws.net.Interference(id) {
			if ws.affMark[i] != aep {
				ws.affMark[i] = aep
				aff = append(aff, i)
			}
		}
	}
	for _, id := range aff {
		// r(l,P) = 1 - Σ_{l'∈ I_l ∩ P} R(P)·d_{l'} with pre-update d.
		var consumed float64
		for _, i := range ws.net.Interference(id) {
			if ws.inPathMark[i] == ep {
				consumed += r * ws.dPath[i]
			}
		}
		frac := 1 - consumed
		if frac < 0 {
			frac = 0
		}
		nc := capv[id] * frac
		if nc < capacityEpsilon {
			nc = 0
		}
		capv[id] = nc
	}
	ws.affList = aff[:0]
}

// SequentialRates returns R(P_i) for each path when the paths are loaded in
// order, each at its full residual rate — the §3.2 exploration-tree
// accounting that sources use to seed the congestion controller. It is
// equivalent to chaining RatePath and Update per path but runs on one
// reusable capacity overlay instead of cloning the network per step.
func SequentialRates(net *graph.Network, paths []graph.Path) []float64 {
	if len(paths) == 0 {
		return nil
	}
	return AppendSequentialRates(net, paths, make([]float64, 0, len(paths)))
}

// AppendSequentialRates appends R(P_i) for each path to dst and returns
// the extended slice: the allocation-free form of SequentialRates for
// callers that keep a scratch buffer (controller seeding on the sweep and
// emulation hot paths).
func AppendSequentialRates(net *graph.Network, paths []graph.Path, dst []float64) []float64 {
	if len(paths) == 0 {
		return dst
	}
	ws := getWS(net)
	ws.fillCap()
	for _, p := range paths {
		r := ws.ratePath(ws.capRoot, p)
		dst = append(dst, r)
		if r > 0 {
			ws.update(ws.capRoot, p, r)
		}
	}
	putWS(ws)
	return dst
}

// capacityEpsilon (Mbps) flushes numerical residue to zero so the
// exploration tree terminates cleanly.
const capacityEpsilon = 1e-9

// Combination is the result of the multipath procedure: a set of paths to
// be employed simultaneously, the rate R(P) at which each was assumed
// loaded during exploration, and the resulting total achievable capacity
// C_B = Σ R(P).
type Combination struct {
	Paths []graph.Path
	Rates []float64
	Total float64
}

// Multipath runs the full multipath-routing procedure of §3.2: it builds
// the exploration tree whose root is net, where each edge is a path
// returned by n-shortest and each child vertex the multigraph updated by
// Update, and returns the path set on the root-to-leaf branch maximizing
// total capacity. The zero Combination is returned when dst is unreachable.
func Multipath(net *graph.Network, src, dst graph.NodeID, cfg Config) Combination {
	ws := getWS(net)
	ws.prepareSearch()
	var best Combination
	ws.explore(ws.capRoot, src, dst, cfg, 0, 0, &best)
	best.Paths = copyPaths(best.Paths) // winner escapes the workspace arena
	putWS(ws)
	return best
}

// explore recurses over the exploration tree. Each child vertex is a
// capacity overlay drawn from the workspace free list — copy the parent's
// capacities, apply update(P,G) in place — rather than a Network clone.
// The branch from the root to the current vertex lives on the workspace
// branch stacks instead of per-vertex Combination copies; only an improving
// leaf (or depth cutoff) copies the stacks into best.
func (ws *workspace) explore(capv []float64, src, dst graph.NodeID, cfg Config, depth int, total float64, best *Combination) {
	if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
		ws.captureBest(total, best)
		return
	}
	paths := ws.nShortest(capv, src, dst, cfg)
	// Keep only paths with strictly positive achievable rate.
	leaf := true
	for _, p := range paths {
		r := ws.ratePath(capv, p)
		if r <= capacityEpsilon {
			continue
		}
		leaf = false
		child := ws.getOverlay()
		copy(child, capv)
		ws.update(child, p, r)
		ws.branchPaths = append(ws.branchPaths, p)
		ws.branchRates = append(ws.branchRates, r)
		ws.explore(child, src, dst, cfg, depth+1, total+r, best)
		ws.branchPaths = ws.branchPaths[:len(ws.branchPaths)-1]
		ws.branchRates = ws.branchRates[:len(ws.branchRates)-1]
		ws.putOverlay(child)
	}
	ws.putPathSlice(paths)
	if leaf {
		ws.captureBest(total, best)
	}
}

// captureBest copies the current branch stacks into best when the branch's
// total beats the best so far. The path headers still point into the
// workspace arena; Multipath deep-copies the winner before returning. The
// strict > keeps the reference implementation's tie-breaking: among equal
// totals the branch visited first wins.
func (ws *workspace) captureBest(total float64, best *Combination) {
	if total <= best.Total {
		return
	}
	best.Paths = append(best.Paths[:0], ws.branchPaths...)
	best.Rates = append(best.Rates[:0], ws.branchRates...)
	best.Total = total
}

// TwoBestPaths implements the naive MP-2bp baseline of §5.1: the two best
// paths from the n-shortest procedure (2-shortest), without the
// combination-aware tree search.
func TwoBestPaths(net *graph.Network, src, dst graph.NodeID, cfg Config) []graph.Path {
	c := cfg
	c.N = 2
	return NShortest(net, src, dst, c)
}
