//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation changes allocation counts, so the nonzero-bound alloc
// guards only run in the dedicated non-race CI step.
const raceEnabled = true
