package core

import (
	"math/rand"
	"testing"

	"repro/internal/node"
	"repro/internal/topology"
)

// TestAnalyticMatchesPacketEmulation validates the two evaluation modes
// against each other: the analytic controller steady state and the
// packet-level emulation of the full node stack must agree on delivered
// throughput within a modest tolerance (estimation noise, margins, MAC
// overheads all live in the packet path).
func TestAnalyticMatchesPacketEmulation(t *testing.T) {
	if testing.Short() {
		t.Skip("packet emulation cross-check is slow")
	}
	checked := 0
	for seed := int64(0); seed < 8 && checked < 3; seed++ {
		inst := topology.Residential(rand.New(rand.NewSource(seed)), topology.Config{})
		rng := rand.New(rand.NewSource(seed + 3000))
		src, dst := inst.RandomFlow(rng)

		analytic := Throughput(inst, SchemeEMPoWER, src, dst, Options{Delta: 0.05})
		if analytic < 5 || analytic > 60 {
			// Skip weak pairs (relative tolerance blows up) and very fast
			// ones: near 100 Mbps the proportional-fairness marginal
			// utility is so flat that the distributed agents ramp for
			// hundreds of virtual seconds (the paper's testbed flows run
			// 1000 s; its rates are 10-40 Mbps).
			continue
		}
		net := inst.Build(topology.ViewHybrid)
		routes := RoutesFor(SchemeEMPoWER, net.Network, src, dst)
		em := node.NewEmulation(net.Network, node.Config{Delta: 0.05, Estimation: true}, seed)
		_, err := em.AddFlow(node.FlowSpec{Src: src, Dst: dst, Routes: routes, Kind: node.TrafficSaturated}, 0)
		if err != nil {
			t.Fatal(err)
		}
		// High-rate flows take longer for the distributed agents to ramp
		// (proximal increments shrink as marginal utility flattens), so
		// give the emulation a couple of virtual minutes.
		em.Run(150)
		packet := em.Agent(dst).Sinks()[0].MeanRate(120, 150)

		ratio := packet / analytic
		if ratio < 0.55 || ratio > 1.4 {
			t.Errorf("seed %d: packet %.2f vs analytic %.2f (ratio %.2f)", seed, packet, analytic, ratio)
		} else {
			t.Logf("seed %d: packet %.2f vs analytic %.2f (ratio %.2f)", seed, packet, analytic, ratio)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no strong flows found")
	}
}
