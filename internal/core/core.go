// Package core orchestrates the evaluation schemes of §5.1: it combines a
// topology view, a routing configuration and a congestion-control mode
// into per-flow throughput results. Two evaluation modes exist:
//
//   - analytic: route selection followed by running the (centralized
//     mathematics of the) congestion controller to convergence, or the
//     fluid MAC model for the no-congestion-control baselines. This is
//     the mode used for the paper's 1000-instance Monte-Carlo sweeps
//     (Figures 4-7); the packet-level simulator agrees with it at steady
//     state (see the cross-check tests).
//   - packet: the full node-agent emulation over the event-driven MAC
//     (used for the testbed experiments of §6).
package core

import (
	"fmt"
	"sync"

	"repro/internal/congestion"
	"repro/internal/graph"
	"repro/internal/mac"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Scheme identifies one evaluation configuration of §5.1.
type Scheme int

// The schemes of §5.1.
const (
	// SchemeEMPoWER: multipath routing + congestion control, PLC/WiFi.
	SchemeEMPoWER Scheme = iota
	// SchemeSP: single-path routing + congestion control, PLC/WiFi.
	SchemeSP
	// SchemeMPWiFi: multipath + congestion control, single-channel WiFi.
	SchemeMPWiFi
	// SchemeSPWiFi: single-path + congestion control, single-channel WiFi.
	SchemeSPWiFi
	// SchemeMPmWiFi: multipath + congestion control, two-channel WiFi.
	SchemeMPmWiFi
	// SchemeMPWoCC: multipath routing without congestion control, PLC/WiFi.
	SchemeMPWoCC
	// SchemeSPWoCC: single-path routing without congestion control, PLC/WiFi.
	SchemeSPWoCC
	// SchemeMP2bp: naive two-best-paths routing + congestion control,
	// PLC/WiFi.
	SchemeMP2bp
)

// String implements fmt.Stringer (the paper's scheme names).
func (s Scheme) String() string {
	switch s {
	case SchemeEMPoWER:
		return "EMPoWER"
	case SchemeSP:
		return "SP"
	case SchemeMPWiFi:
		return "MP-WiFi"
	case SchemeSPWiFi:
		return "SP-WiFi"
	case SchemeMPmWiFi:
		return "MP-mWiFi"
	case SchemeMPWoCC:
		return "MP-w/o-CC"
	case SchemeSPWoCC:
		return "SP-w/o-CC"
	case SchemeMP2bp:
		return "MP-2bp"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// MarshalText implements encoding.TextMarshaler so JSON-encoded results
// (including maps keyed by Scheme) carry the paper's scheme names rather
// than enum ordinals.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// View returns the topology view the scheme runs on.
func (s Scheme) View() topology.View {
	switch s {
	case SchemeMPWiFi, SchemeSPWiFi:
		return topology.ViewWiFiSingle
	case SchemeMPmWiFi:
		return topology.ViewWiFiDual
	default:
		return topology.ViewHybrid
	}
}

// Multipath reports whether the scheme uses the multipath procedure.
func (s Scheme) Multipath() bool {
	switch s {
	case SchemeSP, SchemeSPWiFi, SchemeSPWoCC:
		return false
	default:
		return true
	}
}

// CC reports whether the scheme runs the congestion controller.
func (s Scheme) CC() bool {
	return s != SchemeMPWoCC && s != SchemeSPWoCC
}

// AllSchemes lists every scheme in declaration order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeEMPoWER, SchemeSP, SchemeMPWiFi, SchemeSPWiFi,
		SchemeMPmWiFi, SchemeMPWoCC, SchemeSPWoCC, SchemeMP2bp}
}

// ParseScheme maps a paper scheme name (as printed by Scheme.String) back
// to its Scheme value.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range AllSchemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}

// routingConfig returns the routing configuration for a scheme: the CSC
// is disabled on WiFi-only views (§5.1: "when using only WiFi, the CSC is
// set to 0").
func (s Scheme) routingConfig() routing.Config {
	cfg := routing.DefaultConfig()
	if s.View() == topology.ViewWiFiSingle {
		cfg.UseCSC = false
	}
	return cfg
}

// RoutesFor computes the routes the scheme's routing component selects
// for a flow on the (already view-materialized) network. It returns nil
// when the destination is unreachable.
func RoutesFor(s Scheme, net *graph.Network, src, dst graph.NodeID) []graph.Path {
	cfg := s.routingConfig()
	switch {
	case s == SchemeMP2bp:
		return routing.TwoBestPaths(net, src, dst, cfg)
	case s.Multipath():
		comb := routing.Multipath(net, src, dst, cfg)
		return comb.Paths
	default:
		p := routing.SinglePath(net, src, dst, cfg)
		if p == nil {
			return nil
		}
		return []graph.Path{p}
	}
}

// Options tunes analytic evaluation.
type Options struct {
	// Delta is the congestion-control constraint margin δ.
	Delta float64
	// Slots is the number of controller iterations (default 4000).
	Slots int
	// Alpha is the controller step size (default 0.05 — the effective
	// value after the paper's α heuristic for short routes).
	Alpha float64
}

func (o Options) slots() int {
	if o.Slots <= 0 {
		return 4000
	}
	return o.Slots
}

func (o Options) alpha() float64 {
	if o.Alpha <= 0 {
		return 0.05
	}
	return o.Alpha
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	Routes     []graph.Path
	Throughput float64 // Mbps
}

// Result is the outcome of evaluating one scheme on one instance.
type Result struct {
	Scheme  Scheme
	Flows   []FlowResult
	Utility float64
	// ConvergenceSlots is the slots-to-steady-state of the total-rate
	// trajectory at the paper's 1 %% band (CC schemes only; 0 otherwise).
	ConvergenceSlots int
	// ConvergenceSlots5 uses a 5 %% band, appropriate for the fixed-step
	// controller whose iterates hover around the optimizer.
	ConvergenceSlots5 int
}

// evaluator holds the per-evaluation scratch state — the batch congestion
// controller and every intermediate slice Evaluate needs. Instances are
// pooled: a Monte-Carlo sweep reuses a handful of evaluators across
// thousands of instances instead of reallocating route lists, seed-rate
// buffers and trajectories per run. Every field is fully overwritten (or
// length-reset) per evaluation, so pooling never changes results; only
// Result and the route paths themselves escape.
type evaluator struct {
	ctrl          congestion.Controller
	ccRoutes      []congestion.Route
	routesPerFlow [][]graph.Path
	initial       []float64
	seqBuf        []float64
	traj          []float64 // slot-major per-flow rates from RunAppend
	totals        []float64
	avg           []float64
	allRoutes     []graph.Path
	inject        []float64
}

var evalPool = sync.Pool{New: func() any { return new(evaluator) }}

// Evaluate computes the scheme's converged per-flow throughput on an
// instance for the given source-destination pairs (analytic mode).
func Evaluate(inst *topology.Instance, s Scheme, pairs [][2]graph.NodeID, opts Options) Result {
	// Every downstream consumer here is read-only on the network (route
	// selection clones before mutating, the controller and fluid MAC only
	// read capacities), so the per-instance view cache is safe and
	// collapses the per-scheme rebuilds that dominate sweep allocations.
	net := inst.BuildCached(s.View())
	res := Result{Scheme: s, Flows: make([]FlowResult, len(pairs))}

	ev := evalPool.Get().(*evaluator)
	defer evalPool.Put(ev)

	// Route selection per flow.
	ccRoutes := ev.ccRoutes[:0]
	routesPerFlow := growPaths(ev.routesPerFlow, len(pairs))
	for f, pr := range pairs {
		routes := RoutesFor(s, net.Network, pr[0], pr[1])
		routesPerFlow[f] = routes
		res.Flows[f].Routes = routes
		for _, p := range routes {
			ccRoutes = append(ccRoutes, congestion.Route{Links: p, Flow: f})
		}
	}
	ev.ccRoutes, ev.routesPerFlow = ccRoutes, routesPerFlow
	if len(ccRoutes) == 0 {
		for f := range res.Flows {
			res.Utility += congestion.ProportionalFairness{}.Value(res.Flows[f].Throughput)
		}
		return res
	}

	if s.CC() {
		// Seed the controller near the routing procedure's assumed
		// loading: 70 % of each route's residual achievable rate. Sources
		// know these rates from the §3.2 exploration tree, and warm
		// starting is what gives the paper's tens-of-slots convergence.
		initial := ev.initial[:0]
		for _, routes := range routesPerFlow {
			ev.seqBuf = routing.AppendSequentialRates(net.Network, routes, ev.seqBuf[:0])
			for _, r := range ev.seqBuf {
				initial = append(initial, 0.7*r)
			}
		}
		ev.initial = initial
		if err := ev.ctrl.Reset(net.Network, ccRoutes, congestion.Options{
			Alpha:        opts.alpha(),
			Delta:        opts.Delta,
			InitialRates: initial,
		}); err != nil {
			// Routes are validated upstream; an error here is programmer
			// error on the scheme plumbing.
			panic(fmt.Sprintf("core: controller: %v", err))
		}
		slots := opts.slots()
		nf := ev.ctrl.NumFlows()
		traj := ev.ctrl.RunAppend(slots, ev.traj[:0])
		ev.traj = traj
		totals := growFloats(ev.totals, slots)
		ev.totals = totals
		for t := 0; t < slots; t++ {
			var tot float64
			for _, v := range traj[t*nf : (t+1)*nf] {
				tot += v
			}
			totals[t] = tot
		}
		res.ConvergenceSlots = congestion.SlotsToSteady(totals, 0.01)
		res.ConvergenceSlots5 = congestion.SlotsToSteady(totals, 0.05)
		// Report the time-averaged rates over the last quarter of the
		// run: with a fixed step size the iterates hover around the
		// optimizer, and the ergodic average is the converged allocation.
		tail := slots / 4
		if tail < 1 {
			tail = 1
		}
		avg := growFloats(ev.avg, len(pairs))
		ev.avg = avg
		for f := range avg {
			avg[f] = 0
		}
		for t := slots - tail; t < slots; t++ {
			row := traj[t*nf : (t+1)*nf]
			for f := range avg {
				avg[f] += row[f]
			}
		}
		var util float64
		for f := range pairs {
			res.Flows[f].Throughput = avg[f] / float64(tail)
			util += congestion.ProportionalFairness{}.Value(res.Flows[f].Throughput)
		}
		res.Utility = util
		return res
	}

	// Without congestion control: saturated injection on every selected
	// route; the fluid MAC model yields the delivered (post-collapse)
	// rates. Injection at the first hop's capacity approximates a source
	// that keeps its first hop backlogged. Routes are appended flow by
	// flow, so flow f's rates occupy a contiguous index range.
	allRoutes := ev.allRoutes[:0]
	inject := ev.inject[:0]
	for _, routes := range routesPerFlow {
		for _, p := range routes {
			allRoutes = append(allRoutes, p)
			inject = append(inject, net.Link(p[0]).Capacity)
		}
	}
	ev.allRoutes, ev.inject = allRoutes, inject
	delivered := mac.FluidDelivered(net.Network, allRoutes, inject, 0)
	pos := 0
	for f, routes := range routesPerFlow {
		var sum float64
		for range routes {
			sum += delivered[pos]
			pos++
		}
		res.Flows[f].Throughput = sum
		res.Utility += congestion.ProportionalFairness{}.Value(sum)
	}
	return res
}

// growPaths resizes a route-list scratch slice, reusing capacity.
func growPaths(s [][]graph.Path, n int) [][]graph.Path {
	if cap(s) < n {
		return make([][]graph.Path, n)
	}
	return s[:n]
}

// growFloats resizes a float64 scratch slice, reusing capacity.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Throughput is a convenience for single-flow evaluations.
func Throughput(inst *topology.Instance, s Scheme, src, dst graph.NodeID, opts Options) float64 {
	r := Evaluate(inst, s, [][2]graph.NodeID{{src, dst}}, opts)
	return r.Flows[0].Throughput
}
