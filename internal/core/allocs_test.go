package core

import (
	"testing"

	"repro/internal/graph"
)

// TestAllocsEvaluate bounds the warm per-evaluation allocation count of
// the §5 sweep path. After the evaluator pool, view cache and routing
// workspaces are primed, an Evaluate call should allocate only what
// escapes into the Result — the FlowResult slice and the durable copies
// of the selected routes; controller state, trajectories and search
// scratch are reused. The bounds sit a few allocations above the measured
// values (see BenchmarkFigure4ParallelSweep for the end-to-end budget) so
// they fail on a regression to per-call route or trajectory reallocation,
// not on allocator noise.
func TestAllocsEvaluate(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation changes allocation counts")
	}
	inst := instance(1)
	src, dst := connectedPair(t, inst, 2)

	cases := []struct {
		scheme Scheme
		bound  float64
	}{
		{SchemeSP, 8},       // measured 3
		{SchemeSPWiFi, 8},   // measured 3
		{SchemeEMPoWER, 16}, // measured 5
		{SchemeMPmWiFi, 16}, // measured 5
		{SchemeMPWoCC, 24},  // measured 10
	}
	for _, tc := range cases {
		t.Run(tc.scheme.String(), func(t *testing.T) {
			pairs := [][2]graph.NodeID{{src, dst}}
			// Warm the evaluator pool, the view cache and the routing
			// workspaces for this scheme.
			Evaluate(inst, tc.scheme, pairs, Options{Slots: 50})
			avg := testing.AllocsPerRun(20, func() {
				Evaluate(inst, tc.scheme, pairs, Options{Slots: 50})
			})
			if avg > tc.bound {
				t.Errorf("%s: Evaluate allocates %v per call, want <= %v", tc.scheme, avg, tc.bound)
			}
			t.Logf("%s: %v allocs per warm Evaluate", tc.scheme, avg)
		})
	}
}
