package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func instance(seed int64) *topology.Instance {
	return topology.Residential(rand.New(rand.NewSource(seed)), topology.Config{})
}

// connectedPair finds a flow pair with hybrid connectivity on the
// instance.
func connectedPair(t *testing.T, inst *topology.Instance, seed int64) (graph.NodeID, graph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := inst.Build(topology.ViewHybrid)
	for tries := 0; tries < 200; tries++ {
		src, dst := inst.RandomFlow(rng)
		if routes := RoutesFor(SchemeEMPoWER, net.Network, src, dst); len(routes) > 0 {
			return src, dst
		}
	}
	t.Skip("no connected pair on this seed")
	return 0, 0
}

func TestSchemeProperties(t *testing.T) {
	if SchemeEMPoWER.View() != topology.ViewHybrid || !SchemeEMPoWER.Multipath() || !SchemeEMPoWER.CC() {
		t.Error("EMPoWER properties wrong")
	}
	if SchemeSPWiFi.View() != topology.ViewWiFiSingle || SchemeSPWiFi.Multipath() {
		t.Error("SP-WiFi properties wrong")
	}
	if SchemeMPmWiFi.View() != topology.ViewWiFiDual {
		t.Error("MP-mWiFi view wrong")
	}
	if SchemeMPWoCC.CC() || SchemeSPWoCC.CC() {
		t.Error("w/o-CC schemes should not have CC")
	}
	if len(AllSchemes()) != 8 {
		t.Error("expected 8 schemes")
	}
	for _, s := range AllSchemes() {
		if s.String() == "" {
			t.Error("scheme with empty name")
		}
	}
}

func TestRoutesForSingleVsMulti(t *testing.T) {
	inst := instance(1)
	src, dst := connectedPair(t, inst, 2)
	net := inst.Build(topology.ViewHybrid)
	sp := RoutesFor(SchemeSP, net.Network, src, dst)
	if len(sp) != 1 {
		t.Fatalf("SP returned %d routes, want 1", len(sp))
	}
	mp := RoutesFor(SchemeEMPoWER, net.Network, src, dst)
	if len(mp) < 1 {
		t.Fatal("EMPoWER returned no routes")
	}
	bp := RoutesFor(SchemeMP2bp, net.Network, src, dst)
	if len(bp) < 1 || len(bp) > 2 {
		t.Fatalf("MP-2bp returned %d routes", len(bp))
	}
}

func TestEvaluateEMPoWERBeatsOrMatchesSP(t *testing.T) {
	if testing.Short() {
		t.Skip("10-instance analytic sweep")
	}
	better, worse := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		inst := instance(seed)
		rng := rand.New(rand.NewSource(seed + 100))
		src, dst := inst.RandomFlow(rng)
		emp := Throughput(inst, SchemeEMPoWER, src, dst, Options{})
		sp := Throughput(inst, SchemeSP, src, dst, Options{})
		if emp >= sp-0.8 {
			better++
		} else {
			worse++
			t.Logf("seed %d: EMPoWER %.2f < SP %.2f", seed, emp, sp)
		}
	}
	if worse > 2 {
		t.Errorf("EMPoWER materially below SP in %d/10 instances", worse)
	}
}

func TestEvaluateHybridBeatsWiFiOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("12-instance analytic sweep")
	}
	var hybridSum, wifiSum float64
	n := 12
	for seed := int64(0); seed < int64(n); seed++ {
		inst := instance(seed)
		rng := rand.New(rand.NewSource(seed + 500))
		src, dst := inst.RandomFlow(rng)
		hybridSum += Throughput(inst, SchemeEMPoWER, src, dst, Options{})
		wifiSum += Throughput(inst, SchemeSPWiFi, src, dst, Options{})
	}
	if hybridSum <= wifiSum {
		t.Errorf("hybrid EMPoWER (%.1f) should beat SP-WiFi (%.1f) in aggregate", hybridSum, wifiSum)
	}
	t.Logf("aggregate: EMPoWER %.1f vs SP-WiFi %.1f (gain %.0f%%)",
		hybridSum, wifiSum, 100*(hybridSum-wifiSum)/wifiSum)
}

func TestMPWiFiMatchesSPWiFi(t *testing.T) {
	// §5.2.1: multipath on a single channel cannot help — MP-WiFi
	// coincides with SP-WiFi.
	for seed := int64(0); seed < 6; seed++ {
		inst := instance(seed)
		rng := rand.New(rand.NewSource(seed + 900))
		src, dst := inst.RandomFlow(rng)
		mp := Throughput(inst, SchemeMPWiFi, src, dst, Options{})
		sp := Throughput(inst, SchemeSPWiFi, src, dst, Options{})
		if diff := mp - sp; diff < -0.8 || diff > 0.8 {
			t.Errorf("seed %d: MP-WiFi %.2f vs SP-WiFi %.2f should coincide", seed, mp, sp)
		}
	}
}

func TestMPmWiFiAtLeastDoublesSPWiFiRoughly(t *testing.T) {
	// The paper models T_MP-mWiFi = 2·T_SP-WiFi (identical capacities on
	// both channels). Our dual-channel routing is more general — it can
	// also alternate channels across the hops of one route, removing
	// intra-path interference — so the ratio is at least ~2 and can be
	// larger on multihop flows (documented deviation).
	for seed := int64(3); seed < 9; seed++ {
		inst := instance(seed)
		rng := rand.New(rand.NewSource(seed + 1300))
		src, dst := inst.RandomFlow(rng)
		dual := Throughput(inst, SchemeMPmWiFi, src, dst, Options{})
		single := Throughput(inst, SchemeSPWiFi, src, dst, Options{})
		if single == 0 {
			if dual != 0 {
				t.Errorf("seed %d: dual %.2f with no single-channel connectivity", seed, dual)
			}
			continue
		}
		ratio := dual / single
		if ratio < 1.5 {
			t.Errorf("seed %d: T_mWiFi/T_WiFi = %.2f, want >= ~2", seed, ratio)
		}
	}
}

func TestCCBeatsNoCC(t *testing.T) {
	wins, losses := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		inst := instance(seed)
		rng := rand.New(rand.NewSource(seed + 1700))
		src, dst := inst.RandomFlow(rng)
		cc := Throughput(inst, SchemeEMPoWER, src, dst, Options{})
		nocc := Throughput(inst, SchemeMPWoCC, src, dst, Options{})
		if cc >= nocc-0.8 {
			wins++
		} else {
			losses++
			t.Logf("seed %d: EMPoWER %.2f < MP-w/o-CC %.2f", seed, cc, nocc)
		}
	}
	if losses > 2 {
		t.Errorf("EMPoWER lost to MP-w/o-CC in %d/10 instances", losses)
	}
}

func TestEvaluateUnreachableFlow(t *testing.T) {
	// An instance may have disconnected pairs: throughput must be 0.
	inst := instance(42)
	// Build a pair guaranteed disconnected by removing all links via a
	// tiny custom instance instead.
	tiny := &topology.Instance{
		Kind: "tiny",
		Nodes: []topology.NodeSpec{
			{X: 0, Y: 0, Hybrid: true},
			{X: 49, Y: 29, Hybrid: false},
		},
		WiFiCap: [][]float64{{0, 0}, {0, 0}},
		PLCCap:  [][]float64{{0, 0}, {0, 0}},
	}
	res := Evaluate(tiny, SchemeEMPoWER, [][2]graph.NodeID{{0, 1}}, Options{})
	if res.Flows[0].Throughput != 0 {
		t.Errorf("unreachable throughput = %v", res.Flows[0].Throughput)
	}
	_ = inst
}

func TestEvaluateMultipleFlowsUtility(t *testing.T) {
	inst := instance(5)
	rng := rand.New(rand.NewSource(2000))
	pairs := make([][2]graph.NodeID, 3)
	for i := range pairs {
		s, d := inst.RandomFlow(rng)
		pairs[i] = [2]graph.NodeID{s, d}
	}
	res := Evaluate(inst, SchemeEMPoWER, pairs, Options{})
	if len(res.Flows) != 3 {
		t.Fatal("flow count wrong")
	}
	if res.Utility == 0 && (res.Flows[0].Throughput > 0 || res.Flows[1].Throughput > 0) {
		t.Error("utility not computed")
	}
}

func TestConvergenceSlotsReported(t *testing.T) {
	inst := instance(6)
	rng := rand.New(rand.NewSource(2100))
	src, dst := inst.RandomFlow(rng)
	res := Evaluate(inst, SchemeEMPoWER, [][2]graph.NodeID{{src, dst}}, Options{})
	if res.Flows[0].Throughput > 0 {
		if res.ConvergenceSlots <= 0 || res.ConvergenceSlots >= 4000 {
			t.Errorf("convergence slots = %d, want within the run", res.ConvergenceSlots)
		}
		t.Logf("converged in %d slots", res.ConvergenceSlots)
	}
}

func TestDeltaMarginLowersThroughput(t *testing.T) {
	inst := instance(7)
	rng := rand.New(rand.NewSource(2200))
	src, dst := inst.RandomFlow(rng)
	t0 := Throughput(inst, SchemeEMPoWER, src, dst, Options{})
	t3 := Throughput(inst, SchemeEMPoWER, src, dst, Options{Delta: 0.3})
	if t0 == 0 {
		t.Skip("disconnected pair")
	}
	if t3 >= t0 {
		t.Errorf("δ=0.3 throughput %.2f should be below δ=0 throughput %.2f", t3, t0)
	}
}
