package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// loadFlaps loads the shipped canonical flap scenario — tests run
// against the same file the CLI and README point at, so schema drift
// breaks loudly here.
func loadFlaps(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Load("../../examples/scenarios/flaps.json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestChurnParallelDeterminism mirrors TestFigure4ParallelDeterminism
// for the scenario engine: the same seed and the same scenario file must
// produce bit-identical trajectories — failover latencies, goodputs,
// reroute counts, everything — at parallel=1 and parallel=8.
// reflect.DeepEqual on the full result is exact-bits comparison.
func TestChurnParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps emulate minutes of virtual time per replication")
	}
	sc := loadFlaps(t)
	base := ChurnConfig{
		Seed: 7, Runs: 2, ManageRoutes: true,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	}
	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8
	r1, err := ChurnFailover(sc, serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := ChurnFailover(sc, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("churn results differ across worker counts:\n  parallel=1: %+v\n  parallel=8: %+v", r1, r8)
	}
}

// TestGrayfailParallelDeterminism extends the determinism contract to
// every event and process kind this PR added: the shipped grayfail
// scenario exercises link groups (group-fail/group-recover), gray-loss
// windows, and a flash crowd, with the invariant checker attached and
// the sharded engine underneath. Same seed, parallel=1 vs parallel=8:
// bit-identical results — including the per-reason drop counters and
// the (empty) violation counts the checker adds to each row.
func TestGrayfailParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps emulate minutes of virtual time per replication")
	}
	sc, err := scenario.Load("../../examples/scenarios/grayfail.json")
	if err != nil {
		t.Fatal(err)
	}
	base := ChurnConfig{
		Seed: 11, Runs: 2, ManageRoutes: true, Shards: 1, Invariants: true,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	}
	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8
	r1, err := ChurnFailover(sc, serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := ChurnFailover(sc, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("grayfail results differ across worker counts:\n  parallel=1: %+v\n  parallel=8: %+v", r1, r8)
	}
	for _, row := range r1.Rows {
		if row.Violations != 0 {
			t.Errorf("%s: invariant checker flagged %d violations on the shipped scenario", row.Scheme, row.Violations)
		}
		if row.Drops == nil {
			t.Errorf("%s: per-reason drop counters missing with invariants on", row.Scheme)
		}
	}
}

// TestChurnFailoverClaim pins the §6.1-style acceptance criterion on the
// shipped flap scenario: EMPoWER's median failover latency is finite
// (detection within the estimation timeout plus the rate shift — a
// second or so at this measurement bin), while SP-w/o-CC cannot fail
// over at all — its episodes are censored and its goodput inside the
// failure windows stays degraded near zero.
func TestChurnFailoverClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps emulate minutes of virtual time per replication")
	}
	sc := loadFlaps(t)
	res, err := ChurnFailover(sc, ChurnConfig{
		Seed: 7, Runs: 4, ManageRoutes: true, Parallel: 8,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]ChurnRow{}
	for _, row := range res.Rows {
		byScheme[row.Scheme] = row
	}
	emp := byScheme["EMPoWER"]
	if emp.Episodes == 0 {
		t.Fatal("EMPoWER saw no failure episodes; the flap process did not fire")
	}
	if emp.MedianLatency < 0 {
		t.Errorf("EMPoWER median failover latency is infinite (censored %d/%d), want finite", emp.Censored, emp.Episodes)
	}
	if emp.MedianLatency > 5 {
		t.Errorf("EMPoWER median failover latency %.2f s, want well under 5 s", emp.MedianLatency)
	}
	sp := byScheme["SP-w/o-CC"]
	if sp.Episodes == 0 {
		t.Fatal("SP-w/o-CC saw no failure episodes")
	}
	if sp.MedianLatency >= 0 {
		t.Errorf("SP-w/o-CC median failover latency %.2f s, want infinite (no alternative route)", sp.MedianLatency)
	}
	if sp.DegradedGoodput > 3 {
		t.Errorf("SP-w/o-CC goodput %.2f Mbps inside failure windows, want degraded near zero", sp.DegradedGoodput)
	}
	if emp.DegradedGoodput < 10 {
		t.Errorf("EMPoWER goodput %.2f Mbps inside failure windows, want the surviving route's worth", emp.DegradedGoodput)
	}
}

// TestChurnFlapSweepShape smoke-tests the goodput-vs-flap-rate sweep:
// result dimensions match, every cell is populated, and the w/o-CC
// single path suffers more at high flap rates than EMPoWER does.
func TestChurnFlapSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps emulate minutes of virtual time per replication")
	}
	sc := loadFlaps(t)
	rates := []float64{0.5, 2}
	res, err := ChurnFlapSweep(sc, ChurnConfig{
		Seed: 3, Runs: 1, ManageRoutes: true, Parallel: 8,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Goodput) != 2 || len(res.Goodput[0]) != len(rates) {
		t.Fatalf("result shape %dx%d, want 2x%d", len(res.Goodput), len(res.Goodput[0]), len(rates))
	}
	for si, name := range res.Schemes {
		for ri, rate := range rates {
			if res.Goodput[si][ri] <= 0 {
				t.Errorf("%s at %.1f flaps/min delivered nothing", name, rate)
			}
		}
	}
	// At every flap rate EMPoWER (multipath, CC) must beat the
	// single-path no-CC baseline on this scenario.
	for ri := range rates {
		if res.Goodput[0][ri] <= res.Goodput[1][ri] {
			t.Errorf("EMPoWER %.2f <= SP-w/o-CC %.2f at %.1f flaps/min",
				res.Goodput[0][ri], res.Goodput[1][ri], rates[ri])
		}
	}
}

// TestParseSchemes covers the CLI's scheme-list parsing.
func TestParseSchemes(t *testing.T) {
	all, err := ParseSchemes("all")
	if err != nil || len(all) != 8 {
		t.Fatalf("ParseSchemes(all) = %v, %v", all, err)
	}
	two, err := ParseSchemes("EMPoWER, SP-w/o-CC")
	if err != nil || len(two) != 2 || two[0] != core.SchemeEMPoWER || two[1] != core.SchemeSPWoCC {
		t.Fatalf("ParseSchemes = %v, %v", two, err)
	}
	if _, err := ParseSchemes("EMPoWER,NoSuch"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
