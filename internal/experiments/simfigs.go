// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 by Monte-Carlo simulation over random topologies, §6 by
// packet-level emulation of the 22-node testbed). Each function returns a
// structured result with a printable text rendering, and the cmd/
// binaries expose them behind flags. EXPERIMENTS.md records the measured
// outputs against the paper's claims.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/optimal"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Topo selects the §5.1 topology family.
type Topo int

// Topology families.
const (
	TopoResidential Topo = iota
	TopoEnterprise
)

// String implements fmt.Stringer.
func (t Topo) String() string {
	if t == TopoEnterprise {
		return "enterprise"
	}
	return "residential"
}

// MarshalText implements encoding.TextMarshaler so JSON-encoded results
// name the topology family instead of its ordinal.
func (t Topo) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

func generate(t Topo, seed int64) *topology.Instance {
	rng := stats.NewRand(seed)
	if t == TopoEnterprise {
		return topology.Enterprise(rng, topology.Config{})
	}
	return topology.Residential(rng, topology.Config{})
}

// SimConfig tunes the Monte-Carlo sweeps.
type SimConfig struct {
	// Runs is the number of random instances (the paper uses 1000;
	// defaults to 200 for fast regeneration — pass -runs to match).
	Runs int
	// Seed is the base RNG seed.
	Seed int64
	// Core tunes the analytic evaluation.
	Core core.Options
	// Parallel bounds the replication worker pool (<= 0: GOMAXPROCS).
	// The worker count never changes results, only wall-clock time.
	Parallel int
	// Progress, when non-nil, receives (done, total) as runs complete.
	Progress func(done, total int)
	// JobTime, when non-nil, receives each run's wall-clock duration
	// (serialized with Progress).
	JobTime func(d time.Duration)
}

func (c SimConfig) runs() int {
	if c.Runs <= 0 {
		return 200
	}
	return c.Runs
}

// runnerConfig maps the sweep configuration onto the shared runner.
func (c SimConfig) runnerConfig() runner.Config {
	return runner.Config{Workers: c.Parallel, BaseSeed: c.Seed, OnProgress: c.Progress, OnJobTime: c.JobTime}
}

// instanceFor regenerates the historical per-run seeding of the serial
// loops (base+run for the instance, base+run+1e6 for the flow draw), so
// sweeps produce the same figures the serial code recorded. rep.Seed is
// deliberately unused here: new experiments should prefer it, but the
// published figures are tied to this derivation.
func instanceFor(t Topo, cfg SimConfig, run int) (*topology.Instance, graph.NodeID, graph.NodeID) {
	inst := generate(t, cfg.Seed+int64(run))
	rng := stats.NewRand(cfg.Seed + int64(run) + 1_000_000)
	src, dst := inst.RandomFlow(rng)
	return inst, src, dst
}

// Figure4Result holds the per-scheme throughput samples of Figure 4.
type Figure4Result struct {
	Topo    Topo
	Samples map[core.Scheme][]float64
	// GainVsWiFi is the mean EMPoWER gain over SP-WiFi (paper: 59 %
	// residential, 68 % enterprise); GainVsSP over single-path hybrid
	// (39 % / 31 %).
	GainVsWiFi, GainVsSP float64
}

// Figure4 reproduces Figure 4: the distribution of single-flow throughput
// under EMPoWER, SP, SP-WiFi, MP-WiFi and MP-mWiFi over random instances.
func Figure4(t Topo, cfg SimConfig) Figure4Result {
	res, _ := Figure4Ctx(context.Background(), t, cfg)
	return res
}

// Figure4Ctx is Figure4 with cancellation; the replications run on the
// shared parallel runner and are aggregated in replication order, so the
// result is identical for every worker count.
func Figure4Ctx(ctx context.Context, t Topo, cfg SimConfig) (Figure4Result, error) {
	schemes := []core.Scheme{core.SchemeEMPoWER, core.SchemeSP, core.SchemeSPWiFi,
		core.SchemeMPWiFi, core.SchemeMPmWiFi}
	res := Figure4Result{Topo: t, Samples: map[core.Scheme][]float64{}}
	rows, err := runner.Collect(ctx, cfg.runs(), cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) []float64 {
			inst, src, dst := instanceFor(t, cfg, rep.Index)
			out := make([]float64, len(schemes))
			for i, s := range schemes {
				out[i] = core.Throughput(inst, s, src, dst, cfg.Core)
			}
			return out
		})
	if err != nil {
		return res, err
	}
	for _, row := range rows {
		for i, s := range schemes {
			res.Samples[s] = append(res.Samples[s], row[i])
		}
	}
	res.GainVsWiFi = meanGain(res.Samples[core.SchemeEMPoWER], res.Samples[core.SchemeSPWiFi])
	res.GainVsSP = meanGain(res.Samples[core.SchemeEMPoWER], res.Samples[core.SchemeSP])
	return res, nil
}

// meanGain returns mean(a)/mean(b) − 1.
func meanGain(a, b []float64) float64 {
	mb := stats.Mean(b)
	if mb == 0 {
		return 0
	}
	return stats.Mean(a)/mb - 1
}

// Render prints the figure as CDF tables plus the headline gains.
func (r Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s): CDF of flow throughput T_X (Mbps)\n", r.Topo)
	order := []core.Scheme{core.SchemeEMPoWER, core.SchemeSP, core.SchemeSPWiFi,
		core.SchemeMPWiFi, core.SchemeMPmWiFi}
	renderCDFs(&b, order, r.Samples, "Mbps")
	fmt.Fprintf(&b, "mean gain EMPoWER vs SP-WiFi: %.0f%%  (paper: 59%% res / 68%% ent)\n", 100*r.GainVsWiFi)
	fmt.Fprintf(&b, "mean gain EMPoWER vs SP:      %.0f%%  (paper: 39%% res / 31%% ent)\n", 100*r.GainVsSP)
	return b.String()
}

// Figure5Result holds the worst-flow ratio distribution of Figure 5.
type Figure5Result struct {
	Topo Topo
	// Ratios is T_MP-mWiFi / T_EMPoWER over the worst-20 % flows.
	Ratios []float64
	// RescueFrac is the fraction of worst flows where PLC/WiFi has
	// connectivity and multi-channel WiFi has none (paper: 6 % res,
	// 19 % ent).
	RescueFrac float64
	// EMPoWERBetterFrac is the fraction with ratio < 1.
	EMPoWERBetterFrac float64
}

// Figure5 reproduces Figure 5 from the Figure 4 samples: the CDF of
// T_MP-mWiFi/T_EMPoWER over the bottom-20 % of flows by min throughput.
func Figure5(f4 Figure4Result) Figure5Result {
	emp := f4.Samples[core.SchemeEMPoWER]
	mw := f4.Samples[core.SchemeMPmWiFi]
	idx := stats.BottomFractionByMin(mw, emp, 0.2)
	res := Figure5Result{Topo: f4.Topo}
	rescue := 0
	for _, i := range idx {
		if emp[i] > 0 && mw[i] == 0 {
			rescue++
			continue // ratio 0 counted in the CDF below
		}
	}
	var a, b []float64
	for _, i := range idx {
		a = append(a, mw[i])
		b = append(b, emp[i])
	}
	for _, r := range stats.Ratios(a, b) {
		if !math.IsInf(r, 0) {
			res.Ratios = append(res.Ratios, r)
		} else {
			res.Ratios = append(res.Ratios, 10) // mWiFi-only connectivity
		}
	}
	if len(idx) > 0 {
		res.RescueFrac = float64(rescue) / float64(len(idx))
	}
	better := 0
	for _, r := range res.Ratios {
		if r < 1 {
			better++
		}
	}
	if len(res.Ratios) > 0 {
		res.EMPoWERBetterFrac = float64(better) / float64(len(res.Ratios))
	}
	return res
}

// Render prints the ratio CDF.
func (r Figure5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (%s): CDF of T_MP-mWiFi/T_EMPoWER, worst-20%% flows\n", r.Topo)
	writeCDF(&b, "ratio", r.Ratios)
	fmt.Fprintf(&b, "EMPoWER better on %.0f%% of worst flows (paper: ~60%%)\n", 100*r.EMPoWERBetterFrac)
	fmt.Fprintf(&b, "PLC/WiFi rescues connectivity on %.0f%% (paper: 6%% res / 19%% ent)\n", 100*r.RescueFrac)
	return b.String()
}

// Figure6Result holds the throughput-vs-optimal ratios of Figure 6.
type Figure6Result struct {
	Topo Topo
	// Ratios[s] is T_s / T_optimal per run.
	Ratios map[string][]float64
}

// Figure6 reproduces Figure 6: the distribution of T_X/T_optimal for
// conservative-opt, EMPoWER, MP-2bp, MP-w/o-CC and SP on single flows.
func Figure6(t Topo, cfg SimConfig) Figure6Result {
	res, _ := Figure6Ctx(context.Background(), t, cfg)
	return res
}

// f6run is one Figure 6 replication: the conservative-opt ratio followed
// by one ratio per scheme. A nil run is a disconnected or unsolvable
// instance (the serial loops skipped those with continue).
type f6run struct {
	cons   float64
	ratios []float64
}

// Figure6Ctx is Figure6 with cancellation on the shared parallel runner.
func Figure6Ctx(ctx context.Context, t Topo, cfg SimConfig) (Figure6Result, error) {
	schemes := []core.Scheme{core.SchemeEMPoWER, core.SchemeMP2bp, core.SchemeMPWoCC, core.SchemeSP}
	// Bound the baselines' path enumeration: local-network routes are a
	// few hops (§3.2), and beyond ~500 paths the extra routes carry no
	// capacity while slowing the solver.
	optCfg := optimal.Config{Enumerate: optimal.EnumerateOptions{MaxHops: 4, MaxPaths: 512}}
	res := Figure6Result{Topo: t, Ratios: map[string][]float64{}}
	runs, err := runner.Collect(ctx, cfg.runs(), cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) *f6run {
			inst, src, dst := instanceFor(t, cfg, rep.Index)
			net := inst.BuildCached(topology.ViewHybrid)
			flows := []optimal.FlowSpec{{Src: src, Dst: dst}}
			opt, err := optimal.Optimal(net.Network, flows, optCfg)
			if err != nil || opt.FlowRates[0] <= 0 {
				return nil // disconnected pair: ratios undefined
			}
			cons, err := optimal.ConservativeOpt(net.Network, flows, optCfg)
			if err != nil {
				return nil
			}
			out := &f6run{cons: clampRatio(cons.FlowRates[0] / opt.FlowRates[0])}
			for _, s := range schemes {
				tx := core.Throughput(inst, s, src, dst, cfg.Core)
				out.ratios = append(out.ratios, clampRatio(tx/opt.FlowRates[0]))
			}
			return out
		})
	if err != nil {
		return res, err
	}
	for _, r := range runs {
		if r == nil {
			continue
		}
		res.Ratios["conservative opt"] = append(res.Ratios["conservative opt"], r.cons)
		for i, s := range schemes {
			res.Ratios[s.String()] = append(res.Ratios[s.String()], r.ratios[i])
		}
	}
	return res, nil
}

// clampRatio guards against tiny solver noise pushing ratios above 1.
func clampRatio(r float64) float64 {
	if r > 1 {
		return 1
	}
	if r < 0 {
		return 0
	}
	return r
}

// Render prints the ratio CDFs and the headline optimality fractions.
func (r Figure6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (%s): CDF of T_X/T_optimal\n", r.Topo)
	names := []string{"conservative opt", "EMPoWER", "MP-2bp", "MP-w/o-CC", "SP"}
	for _, n := range names {
		writeCDF(&b, n, r.Ratios[n])
	}
	if emp := r.Ratios["EMPoWER"]; len(emp) > 0 {
		within := 0
		for _, v := range emp {
			if v >= 0.85 {
				within++
			}
		}
		fmt.Fprintf(&b, "EMPoWER within 15%% of optimal on %.0f%% of flows (paper: 99%% res / 83%% ent)\n",
			100*float64(within)/float64(len(emp)))
	}
	return b.String()
}

// Figure7Result holds the utility ratios of Figure 7.
type Figure7Result struct {
	Topo   Topo
	Ratios map[string][]float64
}

// Figure7 reproduces Figure 7: total network utility with three
// contending flows, as a fraction of the optimal utility.
func Figure7(t Topo, cfg SimConfig) Figure7Result {
	res, _ := Figure7Ctx(context.Background(), t, cfg)
	return res
}

// Figure7Ctx is Figure7 with cancellation on the shared parallel runner.
func Figure7Ctx(ctx context.Context, t Topo, cfg SimConfig) (Figure7Result, error) {
	schemes := []core.Scheme{core.SchemeEMPoWER, core.SchemeMP2bp, core.SchemeMPWoCC, core.SchemeSP}
	res := Figure7Result{Topo: t, Ratios: map[string][]float64{}}
	runs, err := runner.Collect(ctx, cfg.runs(), cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) *f6run {
			inst := generate(t, cfg.Seed+int64(rep.Index))
			rng := stats.NewRand(cfg.Seed + int64(rep.Index) + 1_000_000)
			pairs := make([][2]graph.NodeID, 3)
			flows := make([]optimal.FlowSpec, 3)
			for i := range pairs {
				s, d := inst.RandomFlow(rng)
				pairs[i] = [2]graph.NodeID{s, d}
				flows[i] = optimal.FlowSpec{Src: s, Dst: d}
			}
			net := inst.BuildCached(topology.ViewHybrid)
			optCfg := optimal.Config{Enumerate: optimal.EnumerateOptions{MaxHops: 4, MaxPaths: 512}}
			opt, err := optimal.Optimal(net.Network, flows, optCfg)
			if err != nil || opt.Utility <= 0 {
				return nil
			}
			cons, err := optimal.ConservativeOpt(net.Network, flows, optCfg)
			if err != nil {
				return nil
			}
			out := &f6run{cons: clampRatio(cons.Utility / opt.Utility)}
			for _, s := range schemes {
				ev := core.Evaluate(inst, s, pairs, cfg.Core)
				out.ratios = append(out.ratios, clampRatio(ev.Utility/opt.Utility))
			}
			return out
		})
	if err != nil {
		return res, err
	}
	for _, r := range runs {
		if r == nil {
			continue
		}
		res.Ratios["conservative opt"] = append(res.Ratios["conservative opt"], r.cons)
		for i, s := range schemes {
			res.Ratios[s.String()] = append(res.Ratios[s.String()], r.ratios[i])
		}
	}
	return res, nil
}

// Render prints the utility-ratio CDFs.
func (r Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (%s): CDF of U_X/U_optimal, 3 contending flows\n", r.Topo)
	for _, n := range []string{"conservative opt", "EMPoWER", "MP-2bp", "MP-w/o-CC", "SP"} {
		writeCDF(&b, n, r.Ratios[n])
	}
	return b.String()
}

// ConvergenceResult compares EMPoWER and backpressure convergence
// (§5.2.2's timing claims).
type ConvergenceResult struct {
	Topo Topo
	// EMPoWERSlots is the mean slots-to-steady-state of the controller
	// (paper: ~90 residential, ~77 enterprise).
	EMPoWERSlots float64
	// BackpressureSlots is the mean slots for backpressure to reach 90 %
	// of its final rate (paper: >3000 / >10000).
	BackpressureSlots float64
	Runs              int
}

// Convergence reproduces the §5.2.2 convergence comparison on a reduced
// number of instances (backpressure simulation is expensive by design —
// that is the point being reproduced). Both systems are measured with
// the same criterion — slots until the flow first reaches 90 % of its
// final rate — on multihop flows in the paper's 10-40 Mbps regime:
// backpressure's convergence penalty is a routing-exploration phenomenon
// (good routes are used only after queues on bad routes fill up), which
// single-hop or line-rate flows do not exhibit.
func Convergence(t Topo, cfg SimConfig) ConvergenceResult {
	res, _ := ConvergenceCtx(context.Background(), t, cfg)
	return res
}

// convRun is one accepted convergence measurement; nil marks a candidate
// instance the regime filters rejected.
type convRun struct {
	emp, bp float64
}

// ConvergenceCtx is Convergence with cancellation. The serial loop
// stopped as soon as it had accepted `runs` instances out of at most
// 4×runs candidates; to keep that early-stop semantics deterministic
// under parallelism, candidates are dispatched in index-ordered waves and
// the aggregate takes the first `runs` accepted candidates by index —
// the exact set the serial loop measured, for every worker count.
func ConvergenceCtx(ctx context.Context, t Topo, cfg SimConfig) (ConvergenceResult, error) {
	runs := cfg.runs()
	if runs > 20 {
		runs = 20
	}
	res := ConvergenceResult{Topo: t, Runs: runs}
	measure := func(run int) *convRun {
		inst, src, dst := instanceFor(t, cfg, run)
		net := inst.BuildCached(topology.ViewHybrid)
		routes := core.RoutesFor(core.SchemeEMPoWER, net.Network, src, dst)
		if len(routes) == 0 {
			return nil
		}
		multihop, longest := false, 0
		for _, p := range routes {
			if len(p) >= 2 {
				multihop = true
			}
			if len(p) > longest {
				longest = len(p)
			}
		}
		if !multihop {
			return nil
		}
		// EMPoWER controller with the paper's α heuristic, warm-started
		// at the routing procedure's assumed loading (as the real source
		// is: it computed R(P) per route during route selection).
		ccRoutes := make([]congestion.Route, len(routes))
		for i, p := range routes {
			ccRoutes[i] = congestion.Route{Links: p, Flow: 0}
		}
		initial := routing.SequentialRates(net.Network, routes)
		for i := range initial {
			initial[i] *= 0.7
		}
		tuner := congestion.NewAlphaTuner(0.02, len(routes), longest)
		ctrl, err := congestion.New(net.Network, ccRoutes, congestion.Options{
			Alpha:        tuner.Alpha(),
			InitialRates: initial,
		})
		if err != nil {
			return nil
		}
		// Single flow, so the flat batch trajectory is the totals series.
		totals := ctrl.RunAppend(4000, make([]float64, 0, 4000))
		final := stats.Mean(totals[len(totals)*3/4:])
		if final < 5 || final > 60 {
			return nil // outside the paper's moderate-rate regime
		}
		// Steady state: within 5 % of the final rate for good (the warm
		// start makes "first touch 90 %" trivially early).
		empSlots := congestion.SlotsToSteady(totals, 0.05)

		bp := optimal.NewBackpressure(net.Network, []optimal.FlowSpec{{Src: src, Dst: dst}})
		bp.V = 5000
		series := bp.Run(12000, 0, 300)
		bpFinal := stats.Mean(series[len(series)*3/4:])
		if bpFinal <= 0 {
			return nil
		}
		return &convRun{
			emp: float64(empSlots),
			bp:  float64(optimal.SlotsToFractionOfOptimal(series, bpFinal, 0.9)),
		}
	}

	chunk := 2 * runner.PoolSize(cfg.Parallel)
	if chunk < 8 {
		chunk = 8
	}
	total := runs * 4
	var accepted []convRun
	completed := 0
	for lo := 0; lo < total && len(accepted) < runs; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		rcfg := runner.Config{Workers: cfg.Parallel, BaseSeed: cfg.Seed}
		if cfg.Progress != nil {
			// Report against the candidate upper bound; the sweep may
			// stop early once enough instances are accepted.
			base := completed
			rcfg.OnProgress = func(done, _ int) { cfg.Progress(base+done, total) }
		}
		wave, err := runner.Collect(ctx, hi-lo, rcfg,
			func(_ context.Context, rep runner.Rep) *convRun {
				return measure(lo + rep.Index)
			})
		if err != nil {
			return res, err
		}
		completed += hi - lo
		for _, r := range wave {
			if r != nil && len(accepted) < runs {
				accepted = append(accepted, *r)
			}
		}
	}
	if len(accepted) > 0 {
		var empSum, bpSum float64
		for _, r := range accepted {
			empSum += r.emp
			bpSum += r.bp
		}
		res.EMPoWERSlots = empSum / float64(len(accepted))
		res.BackpressureSlots = bpSum / float64(len(accepted))
		res.Runs = len(accepted)
	}
	return res, nil
}

// Render prints the convergence comparison.
func (r ConvergenceResult) Render() string {
	return fmt.Sprintf(
		"Convergence (%s, %d runs):\n  EMPoWER:      %.0f slots to steady state (paper: ~90 res / ~77 ent)\n  backpressure: %.0f slots to 90%% of final (paper: >3000 res / >10000 ent)\n",
		r.Topo, r.Runs, r.EMPoWERSlots, r.BackpressureSlots)
}

// renderCDFs writes compact CDF tables for several schemes.
func renderCDFs(b *strings.Builder, order []core.Scheme, samples map[core.Scheme][]float64, unit string) {
	for _, s := range order {
		writeCDF(b, s.String(), samples[s])
	}
	_ = unit
}

// writeCDF renders a down-sampled CDF as one row of quantiles.
func writeCDF(b *strings.Builder, name string, xs []float64) {
	if len(xs) == 0 {
		fmt.Fprintf(b, "%-18s (no samples)\n", name)
		return
	}
	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	fmt.Fprintf(b, "%-18s", name)
	for _, q := range qs {
		fmt.Fprintf(b, " p%02.0f=%7.2f", q*100, stats.Quantile(xs, q))
	}
	fmt.Fprintf(b, "  mean=%7.2f n=%d\n", stats.Mean(xs), len(xs))
}

// CDFOf exposes the full empirical CDF of a sample set for plotting.
func CDFOf(xs []float64, points int) stats.CDF {
	return stats.NewCDF(xs).Points(points)
}
