package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// ChurnConfig tunes the dynamic-network (churn) experiment family: the
// workload class the paper gestures at in §6.1 — failover under link
// failures, flapping links, node churn and flow arrival processes — run
// as Monte-Carlo sweeps over scenario replications on the deterministic
// parallel runner.
type ChurnConfig struct {
	Seed int64
	// Runs is the number of scenario replications per scheme (default
	// 20). Generated topologies get a fresh channel realization per run;
	// each run uses the same realization and the same expanded event
	// timeline across all schemes, so scheme differences are paired.
	Runs int
	// Schemes selects the evaluated schemes (default: all eight).
	Schemes []core.Scheme
	// Delta is the congestion-control constraint margin δ.
	Delta float64
	// Bin is the failover-measurement bin width in seconds (default 0.2
	// — the resolution of the paper's "hundreds of milliseconds" claim).
	Bin float64
	// Frac is the goodput-recovery fraction defining failover (default
	// 0.8 of the episode's own steady level).
	Frac float64
	// ManageRoutes attaches the §3.2 route manager (with fast failover)
	// to the flows of CC schemes, letting them recompute routes — under
	// their own scheme's selection procedure — when a route dies or the
	// network's capacity shifts. The w/o-CC baselines never get one: the
	// paper's baselines have no EMPoWER machinery.
	ManageRoutes bool
	// Parallel bounds the replication worker pool (<= 0: GOMAXPROCS).
	// The worker count never changes results, only wall-clock time.
	Parallel int
	// Shards enables the domain-sharded emulation engine inside each
	// replication (node.Config.Shards): 0 keeps the classic single
	// engine, n >= 1 decomposes multi-domain topologies and runs up to n
	// domain workers, node.ShardsAuto uses GOMAXPROCS. Like Parallel, it
	// never changes results — the trajectory is bit-identical at any
	// shard count.
	Shards int
	// Invariants attaches the runtime invariant checker to every
	// replication and surfaces violation counts and per-reason drop
	// totals in the result rows. Off, the output stays byte-identical
	// to a build without the checker.
	Invariants bool
	// Recorder sizes the per-domain flight recorder of each
	// replication's emulation (node.Config.Recorder; 0 disables). With
	// Invariants set, a zero Recorder defaults to 256 records so
	// violation reports carry their domain's event tail. Recording is
	// observational: results are bit-identical with it on or off.
	Recorder int
	// Progress, when non-nil, receives (done, total) after every
	// finished replication (serialized, completion order).
	Progress func(done, total int)
	// JobTime, when non-nil, receives each replication's wall-clock
	// duration (serialized with Progress).
	JobTime func(d time.Duration)
	// Metrics, when non-nil, aggregates every replication's sampled
	// registry — the -metrics plumbing of the sweep CLIs.
	Metrics *obs.Aggregator
	// Phases, when non-nil, accumulates the bind/run/collect wall-clock
	// breakdown across replications.
	Phases *obs.Phases
}

func (c ChurnConfig) recorder() int {
	if c.Recorder == 0 && c.Invariants {
		return 256
	}
	return c.Recorder
}

func (c ChurnConfig) runs() int {
	if c.Runs <= 0 {
		return 20
	}
	return c.Runs
}

func (c ChurnConfig) schemes() []core.Scheme {
	if len(c.Schemes) == 0 {
		return core.AllSchemes()
	}
	return c.Schemes
}

func (c ChurnConfig) bin() float64 {
	if c.Bin <= 0 {
		return 0.2
	}
	return c.Bin
}

func (c ChurnConfig) frac() float64 {
	if c.Frac <= 0 {
		return 0.8
	}
	return c.Frac
}

// ParseSchemes maps a comma-separated list of paper scheme names
// ("EMPoWER,SP-w/o-CC", or "all") to scheme values.
func ParseSchemes(csv string) ([]core.Scheme, error) {
	if csv == "" || csv == "all" {
		return core.AllSchemes(), nil
	}
	var out []core.Scheme
	for _, name := range strings.Split(csv, ",") {
		s, err := core.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ChurnRow aggregates one scheme's behaviour across scenario
// replications.
type ChurnRow struct {
	Scheme string `json:"scheme"`
	// Latencies are the finite failover latencies in seconds, one per
	// recovered failure episode, in (run, episode) order.
	Latencies []float64 `json:"latencies"`
	// Censored counts episodes that never failed over — the flow stayed
	// degraded until the link itself returned (§6.1's contrast case).
	Censored int `json:"censored"`
	// MedianLatency is the median over all episodes with censored ones
	// counted as infinite; -1 encodes an infinite or undefined median.
	MedianLatency float64 `json:"median_latency"`
	// MeanGoodput is the aggregate delivered goodput (Mbps) averaged
	// over runs; DegradedGoodput the mean goodput of affected flows
	// inside failure windows.
	MeanGoodput     float64 `json:"mean_goodput"`
	DegradedGoodput float64 `json:"degraded_goodput"`
	// Reroutes counts route-manager swaps (ManageRoutes only);
	// SkippedFlows counts arrivals that found no route.
	Reroutes     int `json:"reroutes"`
	SkippedFlows int `json:"skipped_flows"`
	Episodes     int `json:"episodes"`
	// Drops totals the per-reason MAC drop counters across runs and
	// Violations counts invariant breaches; both only with
	// ChurnConfig.Invariants (absent otherwise, keeping default output
	// byte-stable).
	Drops      map[string]int `json:"drops,omitempty"`
	Violations int            `json:"violations,omitempty"`
	// ViolationDetails carries each violation line together with the
	// owning domain's flight-recorder tail (Invariants only; absent
	// when no violation fired).
	ViolationDetails []string `json:"violation_details,omitempty"`
}

// ChurnResult is the failover experiment outcome.
type ChurnResult struct {
	Scenario string     `json:"scenario"`
	Runs     int        `json:"runs"`
	Rows     []ChurnRow `json:"rows"`
}

// ChurnRepOut is one (run, scheme) replication outcome — the unit of
// work a churn failover sweep checkpoints. It is deliberately a plain
// JSON-serializable record with no omitempty tags: a round trip through
// encoding/json is lossless in every aspect MergeChurnReps folds on
// (float64 encodes with shortest-roundtrip precision; a nil Drops map
// stays nil through null), so a sweep resumed from persisted rep
// records merges to output byte-identical to an uninterrupted run.
type ChurnRepOut struct {
	Latencies        []float64      `json:"latencies"`
	Censored         int            `json:"censored"`
	Goodput          float64        `json:"goodput"`
	Degraded         []float64      `json:"degraded"`
	Reroutes         int            `json:"reroutes"`
	Skipped          int            `json:"skipped"`
	Drops            map[string]int `json:"drops"`
	Violations       int            `json:"violations"`
	ViolationDetails []string       `json:"violation_details"`
}

// bindChurn builds one (run, scheme) replication's emulation and binds
// the scenario to it — shared by the sweep replications and the trace
// re-runs, so both see the identical trajectory for a given seed pair.
func bindChurn(sc *scenario.Scenario, scheme core.Scheme, cfg ChurnConfig, run int, emSeed int64, recorder int) (*scenario.Runtime, error) {
	if sc.Topology == nil {
		return nil, fmt.Errorf("experiments: scenario %q has no topology; churn sweeps need self-contained scenarios", sc.Name)
	}
	// The topology and timeline seed domains are offset away from the
	// runner's per-replication SplitSeed(Seed, index) domain: replication
	// index `run` must not share an RNG stream with run `run`'s channel
	// realization, or replications would be statistically correlated.
	topoSeed := stats.SplitSeed(cfg.Seed, 2_000_000+run)
	net, err := sc.Topology.BuildView(topoSeed, scheme.View())
	if err != nil {
		return nil, err
	}
	em := node.NewEmulation(net, node.Config{
		Delta: cfg.Delta, DisableCC: !scheme.CC(), Estimation: true,
		ExpectedDuration: sc.Duration, Shards: cfg.Shards, Recorder: recorder,
	}, emSeed)
	opts := scenario.Options{
		Routes: func(n *graph.Network, src, dst graph.NodeID) []graph.Path {
			return core.RoutesFor(scheme, n, src, dst)
		},
		ManageRoutes: cfg.ManageRoutes && scheme.CC(),
		Invariants:   cfg.Invariants,
	}
	scSeed := stats.SplitSeed(cfg.Seed, 1_000_000+run)
	return scenario.Bind(em, sc, scSeed, opts)
}

// churnReplication executes one scenario replication under one scheme.
// All seeds are pure functions of (base seed, run, scheme position), so
// sweeps are bit-identical at any worker count; the topology realization
// and the expanded event timeline depend only on the run, so schemes are
// compared on paired instances.
func churnReplication(sc *scenario.Scenario, scheme core.Scheme, cfg ChurnConfig, run int, emSeed int64) (*ChurnRepOut, error) {
	bindStart := time.Now()
	rt, err := bindChurn(sc, scheme, cfg, run, emSeed, cfg.recorder())
	if err != nil {
		return nil, err
	}
	cfg.Phases.AddBind(time.Since(bindStart))
	runStart := time.Now()
	rt.Run()
	cfg.Phases.AddRun(time.Since(runStart))
	collectStart := time.Now()
	lat, censored := rt.FailoverLatencies(cfg.bin(), cfg.frac())
	out := &ChurnRepOut{
		Latencies: lat,
		Censored:  censored,
		Goodput:   rt.AggregateGoodput(),
		Degraded:  rt.DegradedGoodput(),
		Reroutes:  rt.Reroutes(),
		Skipped:   len(rt.SkippedFlows),
	}
	if cfg.Invariants {
		out.Drops = rt.DropsByReason()
		vs := rt.Violations()
		out.Violations = len(vs)
		for _, v := range vs {
			out.ViolationDetails = append(out.ViolationDetails,
				rt.ViolationReport(v, violationTail))
		}
	}
	if cfg.Metrics != nil {
		reg := obs.NewRegistry()
		rt.SampleMetrics(reg)
		cfg.Metrics.Add(reg)
	}
	cfg.Phases.AddCollect(time.Since(collectStart))
	return out, nil
}

// violationTail is how many flight-recorder records a violation report
// carries from the owning domain.
const violationTail = 64

// ChurnTrace re-runs one (run, scheme) replication with a flight
// recorder of `size` records per domain and returns each domain's full
// ring contents — the -trace export of empower-scenario. The re-run is
// bit-identical to the sweep's own replication (same seed derivations),
// so the trace shows exactly the trajectory the sweep measured.
func ChurnTrace(sc *scenario.Scenario, cfg ChurnConfig, run int, scheme core.Scheme, size int) ([][]obs.Record, error) {
	schemes := cfg.schemes()
	si := 0
	for i, s := range schemes {
		if s == scheme {
			si = i
			break
		}
	}
	emSeed := stats.SplitSeed(cfg.Seed, run*len(schemes)+si)
	rt, err := bindChurn(sc, scheme, cfg, run, emSeed, size)
	if err != nil {
		return nil, err
	}
	rt.Run()
	doms := make([][]obs.Record, rt.Em.NumDomains())
	for d := range doms {
		doms[d] = rt.RecorderTail(d, size)
	}
	return doms, nil
}

// ChurnFailover runs the failover experiment: Runs replications of the
// scenario per scheme, collecting failover-latency distributions and
// goodput under churn.
func ChurnFailover(sc *scenario.Scenario, cfg ChurnConfig) (ChurnResult, error) {
	return ChurnFailoverCtx(context.Background(), sc, cfg)
}

// ChurnFailoverCtx is ChurnFailover with cancellation. Replications fan
// out over (run, scheme) on the parallel runner and fold back in run
// order per scheme. It is exactly ChurnReps + ChurnRepJob + a full
// runner.Run + MergeChurnReps — the same primitives a checkpointing
// service composes with runner.RunFrom, so a resumed sweep reproduces
// this function's output bit for bit.
func ChurnFailoverCtx(ctx context.Context, sc *scenario.Scenario, cfg ChurnConfig) (ChurnResult, error) {
	outs, err := runner.Run(ctx, ChurnReps(cfg),
		runner.Config{Workers: cfg.Parallel, BaseSeed: cfg.Seed, OnProgress: cfg.Progress, OnJobTime: cfg.JobTime},
		ChurnRepJob(sc, cfg))
	if err != nil {
		return ChurnResult{Scenario: sc.Name, Runs: cfg.runs()}, err
	}
	return MergeChurnReps(sc.Name, cfg, outs), nil
}

// ChurnReps returns the flat replication count of a churn failover
// sweep: runs × schemes. Index i maps to run i/len(schemes), scheme
// i%len(schemes) — the layout ChurnRepJob and MergeChurnReps share.
func ChurnReps(cfg ChurnConfig) int {
	return cfg.runs() * len(cfg.schemes())
}

// ChurnRepJob returns the per-replication job of the churn failover
// sweep in the runner's flat index space. Every seed a replication draws
// is a pure function of (cfg.Seed, index), so any subset of indices can
// be executed on any pool — or re-executed after a crash — and yield the
// identical ChurnRepOut.
func ChurnRepJob(sc *scenario.Scenario, cfg ChurnConfig) runner.Job[*ChurnRepOut] {
	schemes := cfg.schemes()
	return func(_ context.Context, rep runner.Rep) (*ChurnRepOut, error) {
		run, si := rep.Index/len(schemes), rep.Index%len(schemes)
		return churnReplication(sc, schemes[si], cfg, run, rep.Seed)
	}
}

// MergeChurnReps folds a complete, index-ordered replication set into
// the sweep result. The fold is a pure function of the slice contents,
// so callers that persist ChurnRepOut records (a checkpointing daemon)
// and callers that hold them in memory (ChurnFailoverCtx) produce the
// same ChurnResult — and the same JSON bytes — for the same sweep.
// Every entry must be non-nil and outs must have length ChurnReps(cfg).
func MergeChurnReps(scenarioName string, cfg ChurnConfig, outs []*ChurnRepOut) ChurnResult {
	schemes := cfg.schemes()
	runs := cfg.runs()
	res := ChurnResult{Scenario: scenarioName, Runs: runs}
	for si, scheme := range schemes {
		row := ChurnRow{Scheme: scheme.String()}
		var goodputs, degraded []float64
		for run := 0; run < runs; run++ {
			out := outs[run*len(schemes)+si]
			row.Latencies = append(row.Latencies, out.Latencies...)
			row.Censored += out.Censored
			row.Reroutes += out.Reroutes
			row.SkippedFlows += out.Skipped
			goodputs = append(goodputs, out.Goodput)
			degraded = append(degraded, out.Degraded...)
			if out.Drops != nil {
				if row.Drops == nil {
					row.Drops = map[string]int{}
				}
				for reason, n := range out.Drops {
					row.Drops[reason] += n
				}
				row.Violations += out.Violations
				row.ViolationDetails = append(row.ViolationDetails, out.ViolationDetails...)
			}
		}
		row.Episodes = len(row.Latencies) + row.Censored
		row.MedianLatency = medianWithCensored(row.Latencies, row.Censored)
		row.MeanGoodput = stats.Mean(goodputs)
		row.DegradedGoodput = stats.Mean(degraded)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// medianWithCensored returns the median of the episode latencies with
// censored episodes counted as +Inf, encoded as -1 (JSON cannot carry
// infinities).
func medianWithCensored(finite []float64, censored int) float64 {
	n := len(finite) + censored
	if n == 0 {
		return -1
	}
	sorted := append([]float64(nil), finite...)
	sort.Float64s(sorted)
	mid := n / 2
	if mid >= len(sorted) {
		return -1
	}
	return sorted[mid]
}

// Render prints the per-scheme failover summary and latency CDFs.
func (r ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn failover: scenario %q, %d runs per scheme\n", r.Scenario, r.Runs)
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %10s %10s %9s\n",
		"scheme", "episodes", "censored", "median(s)", "goodput", "degraded", "reroutes")
	for _, row := range r.Rows {
		med := "inf"
		if row.MedianLatency >= 0 {
			med = fmt.Sprintf("%.2f", row.MedianLatency)
		}
		fmt.Fprintf(&b, "%-10s %9d %9d %9s %10.2f %10.2f %9d\n",
			row.Scheme, row.Episodes, row.Censored, med,
			row.MeanGoodput, row.DegradedGoodput, row.Reroutes)
	}
	// The drops/violations section appears only when the invariant
	// checker ran, so default output stays byte-identical.
	if len(r.Rows) > 0 && r.Rows[0].Drops != nil {
		fmt.Fprintf(&b, "Drops by reason (invariant checker on):\n")
		for _, row := range r.Rows {
			reasons := make([]string, 0, len(row.Drops))
			for reason := range row.Drops {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			fmt.Fprintf(&b, "%-10s", row.Scheme)
			for _, reason := range reasons {
				fmt.Fprintf(&b, " %s=%d", reason, row.Drops[reason])
			}
			fmt.Fprintf(&b, " violations=%d\n", row.Violations)
		}
	}
	fmt.Fprintf(&b, "Failover-latency CDFs (finite episodes only):\n")
	for _, row := range r.Rows {
		writeCDF(&b, row.Scheme, row.Latencies)
	}
	return b.String()
}

// FlapSweepResult is the goodput-vs-flap-rate sweep outcome.
type FlapSweepResult struct {
	Scenario string `json:"scenario"`
	// RatesPerMin are the swept flap frequencies (cycles per minute).
	RatesPerMin []float64 `json:"rates_per_min"`
	Schemes     []string  `json:"schemes"`
	// Goodput[s][r] is scheme s's mean aggregate goodput (Mbps) at flap
	// rate r, averaged over runs.
	Goodput [][]float64 `json:"goodput"`
}

// ChurnFlapSweep sweeps the scenario's flap processes across flap
// frequencies and measures goodput per scheme.
func ChurnFlapSweep(sc *scenario.Scenario, cfg ChurnConfig, ratesPerMin []float64) (FlapSweepResult, error) {
	return ChurnFlapSweepCtx(context.Background(), sc, cfg, ratesPerMin)
}

// ChurnFlapSweepCtx is ChurnFlapSweep with cancellation. For each swept
// rate, every flap process keeps its down-time fraction but changes its
// cycle length to 60/rate seconds; everything else about the scenario is
// untouched. All (rate, run, scheme) replications run on the parallel
// runner and fold back in index order.
func ChurnFlapSweepCtx(ctx context.Context, sc *scenario.Scenario, cfg ChurnConfig, ratesPerMin []float64) (FlapSweepResult, error) {
	schemes := cfg.schemes()
	runs := cfg.runs()
	res := FlapSweepResult{Scenario: sc.Name, RatesPerMin: ratesPerMin}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.String())
	}

	scaled := make([]*scenario.Scenario, len(ratesPerMin))
	for i, rate := range ratesPerMin {
		if rate <= 0 {
			return res, fmt.Errorf("experiments: flap rate must be positive, got %g", rate)
		}
		scaled[i] = flapScaled(sc, rate)
	}

	perRate := runs * len(schemes)
	outs, err := runner.Run(ctx, len(ratesPerMin)*perRate,
		runner.Config{Workers: cfg.Parallel, BaseSeed: cfg.Seed, OnProgress: cfg.Progress, OnJobTime: cfg.JobTime},
		func(_ context.Context, rep runner.Rep) (*ChurnRepOut, error) {
			ri := rep.Index / perRate
			rem := rep.Index % perRate
			run, si := rem/len(schemes), rem%len(schemes)
			return churnReplication(scaled[ri], schemes[si], cfg, run, rep.Seed)
		})
	if err != nil {
		return res, err
	}

	res.Goodput = make([][]float64, len(schemes))
	for si := range schemes {
		res.Goodput[si] = make([]float64, len(ratesPerMin))
		for ri := range ratesPerMin {
			var g []float64
			for run := 0; run < runs; run++ {
				g = append(g, outs[ri*perRate+run*len(schemes)+si].Goodput)
			}
			res.Goodput[si][ri] = stats.Mean(g)
		}
	}
	return res, nil
}

// flapScaled derives a scenario whose flap processes run at the given
// frequency (cycles per minute), preserving each process's down-time
// fraction exactly: the clamp floors the whole cycle (at 2 s, against
// degenerate sub-second flapping), never the components, so the realized
// outage fraction is the scenario's at every swept rate.
func flapScaled(sc *scenario.Scenario, ratePerMin float64) *scenario.Scenario {
	out := *sc
	out.Processes = append([]scenario.Process(nil), sc.Processes...)
	cycle := 60 / ratePerMin
	if cycle < 2 {
		cycle = 2
	}
	for i, p := range out.Processes {
		if p.Kind != scenario.ProcFlap {
			continue
		}
		frac := p.DownMean / (p.DownMean + p.UpMean)
		p.DownMean = frac * cycle
		p.UpMean = cycle - p.DownMean
		out.Processes[i] = p
	}
	return &out
}

// Render prints the sweep as a rate × scheme table.
func (r FlapSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Goodput vs flap rate: scenario %q (Mbps, mean over runs)\n", r.Scenario)
	fmt.Fprintf(&b, "%-12s", "flaps/min")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %10s", s)
	}
	fmt.Fprintln(&b)
	for ri, rate := range r.RatesPerMin {
		fmt.Fprintf(&b, "%-12.2f", rate)
		for si := range r.Schemes {
			fmt.Fprintf(&b, " %10.2f", r.Goodput[si][ri])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
