package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestFigure4ParallelDeterminism is the tentpole guarantee of the runner
// refactor: the same base seed produces bit-identical aggregates at
// parallel=1 and parallel=8, so the worker count is purely a wall-clock
// knob. reflect.DeepEqual on float64 slices is exact-bits comparison —
// any reordering of the sample collection would fail it.
func TestFigure4ParallelDeterminism(t *testing.T) {
	base := SimConfig{Runs: 8, Seed: 7, Core: core.Options{Slots: 1500}}

	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8

	r1 := Figure4(TopoResidential, serial)
	r8 := Figure4(TopoResidential, wide)
	if !reflect.DeepEqual(r1.Samples, r8.Samples) {
		t.Fatal("Figure4 samples differ between parallel=1 and parallel=8")
	}
	if r1.GainVsWiFi != r8.GainVsWiFi || r1.GainVsSP != r8.GainVsSP {
		t.Fatalf("Figure4 gains differ: (%v, %v) vs (%v, %v)",
			r1.GainVsWiFi, r1.GainVsSP, r8.GainVsWiFi, r8.GainVsSP)
	}
}

// TestFigure6ParallelDeterminism covers the optimality-ratio sweep. It
// also pins the centralized solver itself: optimal.Solve once iterated its
// constraint coefficient maps directly, which made every airtime sum
// follow Go's randomized map order and the ratios differ in the last bits
// from run to run — caught here by exact-bits comparison of two sweeps.
func TestFigure6ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 6 solves two centralized baselines per replication")
	}
	base := SimConfig{Runs: 4, Seed: 11, Core: core.Options{Slots: 1500}}
	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8
	r1 := Figure6(TopoResidential, serial)
	r8 := Figure6(TopoResidential, wide)
	if !reflect.DeepEqual(r1.Ratios, r8.Ratios) {
		t.Fatalf("Figure6 ratios differ across worker counts:\n  parallel=1: %+v\n  parallel=8: %+v", r1.Ratios, r8.Ratios)
	}
}

// TestFigure7ParallelDeterminism covers the fairness-utility sweep on the
// batch-controller evaluation path: per-scheme utility ratio samples must
// be bit-identical at parallel=1 and parallel=8, pinning both the wave
// dispatch and the pooled evaluator state against scheduling effects.
func TestFigure7ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 7 evaluates every scheme per replication")
	}
	base := SimConfig{Runs: 6, Seed: 13, Core: core.Options{Slots: 1500}}
	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8
	r1 := Figure7(TopoResidential, serial)
	r8 := Figure7(TopoResidential, wide)
	if !reflect.DeepEqual(r1.Ratios, r8.Ratios) {
		t.Fatalf("Figure7 ratios differ across worker counts:\n  parallel=1: %+v\n  parallel=8: %+v", r1.Ratios, r8.Ratios)
	}
}

// TestConvergenceParallelDeterminism covers the early-stop sweep: the
// wave dispatch must accept exactly the candidates the serial loop
// accepted, in the same order, for any worker count.
func TestConvergenceParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence sweeps are slow")
	}
	base := SimConfig{Runs: 3, Seed: 23, Core: core.Options{Slots: 3000}}
	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8
	r1 := Convergence(TopoResidential, serial)
	r8 := Convergence(TopoResidential, wide)
	if r1 != r8 {
		t.Fatalf("Convergence differs across worker counts:\n  parallel=1: %+v\n  parallel=8: %+v", r1, r8)
	}
}

// TestFigure10ParallelDeterminism covers the testbed side: pair draws,
// emulation seeds and ratio aggregation must be scheduling-independent.
func TestFigure10ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed emulations are slow")
	}
	base := TestbedConfig{Seed: 7, Duration: 12, Pairs: 3, Flows: 2, Repeats: 1}
	serial := base
	serial.Parallel = 1
	wide := base
	wide.Parallel = 8
	r1 := Figure10(serial)
	r8 := Figure10(wide)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("Figure10 differs across worker counts:\n  parallel=1: %+v\n  parallel=8: %+v", r1, r8)
	}
}

// TestFigure4Cancellation proves a sweep aborts promptly when its
// context is canceled instead of running all replications.
func TestFigure4Cancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := SimConfig{Runs: 500, Seed: 7, Core: core.Options{Slots: 1500}, Parallel: 2}
	done := 0
	cfg.Progress = func(d, total int) {
		done = d
		if d == 3 {
			cancel()
		}
	}
	if _, err := Figure4Ctx(ctx, TopoResidential, cfg); err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if done >= 500 {
		t.Fatalf("sweep ran all %d replications despite cancellation", done)
	}
}
