package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// fastSim keeps the Monte-Carlo smoke tests quick.
var fastSim = SimConfig{Runs: 12, Seed: 7, Core: core.Options{Slots: 1500}}

// fastTestbed keeps the emulation smoke tests quick.
var fastTestbed = TestbedConfig{Seed: 7, Duration: 12, Pairs: 4, Flows: 2, Repeats: 1}

func TestFigure4ShapesHold(t *testing.T) {
	res := Figure4(TopoResidential, fastSim)
	for _, s := range []core.Scheme{core.SchemeEMPoWER, core.SchemeSP, core.SchemeSPWiFi, core.SchemeMPmWiFi} {
		if len(res.Samples[s]) != fastSim.Runs {
			t.Fatalf("%v has %d samples, want %d", s, len(res.Samples[s]), fastSim.Runs)
		}
	}
	// The headline shape: hybrid EMPoWER gains over WiFi-only and over
	// single-path hybrid on average.
	if res.GainVsWiFi <= 0 {
		t.Errorf("gain vs SP-WiFi = %.2f, want > 0", res.GainVsWiFi)
	}
	if res.GainVsSP <= 0 {
		t.Errorf("gain vs SP = %.2f, want > 0", res.GainVsSP)
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestFigure4Enterprise(t *testing.T) {
	res := Figure4(TopoEnterprise, SimConfig{Runs: 6, Seed: 3, Core: core.Options{Slots: 1500}})
	if len(res.Samples[core.SchemeEMPoWER]) != 6 {
		t.Fatal("sample count wrong")
	}
	if res.Topo != TopoEnterprise {
		t.Error("topo label wrong")
	}
}

func TestFigure5FromFigure4(t *testing.T) {
	f4 := Figure4(TopoResidential, fastSim)
	res := Figure5(f4)
	if len(res.Ratios) == 0 {
		t.Fatal("no worst-flow ratios")
	}
	for _, r := range res.Ratios {
		if r < 0 {
			t.Fatalf("negative ratio %v", r)
		}
	}
	if res.EMPoWERBetterFrac < 0 || res.EMPoWERBetterFrac > 1 {
		t.Error("fraction out of range")
	}
	_ = res.Render()
}

func TestFigure6RatiosBounded(t *testing.T) {
	runs := 8
	if testing.Short() {
		runs = 2 // the optimal-baseline solver dominates this sweep
	}
	res := Figure6(TopoResidential, SimConfig{Runs: runs, Seed: 11, Core: core.Options{Slots: 1500}})
	names := []string{"conservative opt", "EMPoWER", "MP-2bp", "MP-w/o-CC", "SP"}
	for _, n := range names {
		for _, v := range res.Ratios[n] {
			if v < 0 || v > 1 {
				t.Fatalf("%s ratio %v out of [0,1]", n, v)
			}
		}
	}
	// EMPoWER should dominate SP in the mean.
	if len(res.Ratios["EMPoWER"]) > 0 && len(res.Ratios["SP"]) > 0 {
		if mean(res.Ratios["EMPoWER"]) < mean(res.Ratios["SP"])-0.05 {
			t.Errorf("EMPoWER mean ratio %.2f below SP %.2f",
				mean(res.Ratios["EMPoWER"]), mean(res.Ratios["SP"]))
		}
	}
	_ = res.Render()
}

func TestFigure7UtilityRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("3-flow optimal baseline is ~10 s per instance")
	}
	res := Figure7(TopoResidential, SimConfig{Runs: 5, Seed: 17, Core: core.Options{Slots: 1500}})
	if len(res.Ratios["EMPoWER"]) == 0 {
		t.Skip("no connected 3-flow instances in this tiny sweep")
	}
	for _, v := range res.Ratios["EMPoWER"] {
		if v < 0 || v > 1 {
			t.Fatalf("utility ratio %v out of range", v)
		}
	}
	_ = res.Render()
}

func TestConvergenceComparison(t *testing.T) {
	res := Convergence(TopoEnterprise, SimConfig{Runs: 8, Seed: 23, Core: core.Options{Slots: 3000}})
	if res.EMPoWERSlots <= 0 || res.BackpressureSlots <= 0 {
		t.Skip("no connected instances in this tiny sweep")
	}
	// The separation of timescales is the reproduced claim; on small
	// samples individual instances vary, so assert the aggregate
	// direction with slack.
	if res.BackpressureSlots < res.EMPoWERSlots*1.2 {
		t.Errorf("backpressure (%0.f slots) should converge clearly slower than EMPoWER (%.0f)",
			res.BackpressureSlots, res.EMPoWERSlots)
	}
	t.Log(res.Render())
}

func TestFigure9Trace(t *testing.T) {
	res, err := Figure9(fastTestbed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) == 0 || len(res.Total) != len(res.Times) {
		t.Fatal("trace series malformed")
	}
	// The received goodput in the final phase should be positive.
	last := res.Received[len(res.Received)-1]
	if last <= 0 {
		t.Errorf("no goodput at the end of the trace")
	}
	_ = res.Render()
}

func TestFigure10Ratios(t *testing.T) {
	if testing.Short() {
		t.Skip("per-pair packet emulation plus five analytic schemes is slow")
	}
	res := Figure10(fastTestbed)
	if len(res.Ratios["SP"]) == 0 {
		t.Skip("no connected pairs in this tiny run")
	}
	// SP-bf can never exceed the EMPoWER combination by much; SP-WiFi
	// ratios must be finite and non-negative.
	for name, rs := range res.Ratios {
		for _, v := range rs {
			if v < 0 {
				t.Fatalf("%s ratio %v negative", name, v)
			}
		}
	}
	_ = res.Render()
}

func TestFigure11Table(t *testing.T) {
	res := Figure11(fastTestbed)
	if len(res.Pairs) != fastTestbed.Flows {
		t.Fatalf("pairs = %d, want %d", len(res.Pairs), fastTestbed.Flows)
	}
	for _, s := range res.Schemes {
		if len(res.Mean[s]) != len(res.Pairs) {
			t.Fatalf("%s means missing", s)
		}
	}
	_ = res.Render()
}

func TestTable1SmallFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("file-download emulation is slow")
	}
	cfg := fastTestbed
	res := Table1(cfg)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	tiny, short := res.Rows[0], res.Rows[1]
	if tiny.EMPoWERMean <= 0 || short.EMPoWERMean <= 0 {
		t.Error("download times not measured")
	}
	if tiny.EMPoWERMean >= short.EMPoWERMean {
		t.Errorf("tiny (%.2f s) should download faster than short (%.2f s)",
			tiny.EMPoWERMean, short.EMPoWERMean)
	}
	_ = res.Render()
}

func TestFigure12TCPPhases(t *testing.T) {
	res, err := Figure12(fastTestbed)
	if err != nil {
		t.Fatal(err)
	}
	if res.EMPoWERGoodput <= 0 {
		t.Error("EMPoWER TCP phase produced no goodput")
	}
	_ = res.Render()
}

func TestFigure13Comparison(t *testing.T) {
	res := Figure13(fastTestbed)
	if len(res.Pairs) != fastTestbed.Flows {
		t.Fatalf("pairs = %d, want %d", len(res.Pairs), fastTestbed.Flows)
	}
	_ = res.Render()
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
