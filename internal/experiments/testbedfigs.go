package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
)

// TestbedConfig tunes the §6 testbed-emulation experiments. The paper's
// wall-clock durations (1000-5000 s per run) are scaled down by default;
// the dynamics converge in tens of seconds, so the scaled runs show the
// same behaviour. Pass -full on the CLI for paper-duration runs.
type TestbedConfig struct {
	Seed int64
	// Duration is the per-run emulated duration in seconds (default 60).
	Duration float64
	// Pairs is the number of random station pairs for Figure 10
	// (default 20; the paper uses 50).
	Pairs int
	// Flows is the number of flows for Figures 11/13 (default 10).
	Flows int
	// Repeats for Table 1 (defaults 5; the paper uses 40/10).
	Repeats int
	// Delta is the constraint margin (§6.3 uses 0.05).
	Delta float64
	// Parallel bounds the replication worker pool (<= 0: GOMAXPROCS).
	// Pair selection stays serial (it consumes a shared RNG stream);
	// only the independent per-pair/per-repeat emulations fan out, so
	// the worker count never changes results.
	Parallel int
	// Shards enables the domain-sharded emulation engine inside each
	// emulation (node.Config.Shards). The testbed topology is connected —
	// one interference domain — so this is a no-op there; it matters for
	// custom multi-cluster topologies and never changes results.
	Shards int
	// Progress, when non-nil, receives (done, total) after every
	// finished replication of the current figure.
	Progress func(done, total int)
	// JobTime, when non-nil, receives each replication's wall-clock
	// duration (serialized with Progress).
	JobTime func(d time.Duration)
	// Drops, when non-nil, tallies every emulation's per-reason MAC drop
	// counters for the -drops report (see DropTally).
	Drops *DropTally
	// Metrics, when non-nil, aggregates every emulation's sampled
	// registry — the -metrics plumbing.
	Metrics *obs.Aggregator
}

func (c TestbedConfig) duration() float64 {
	if c.Duration <= 0 {
		return 60
	}
	return c.Duration
}

func (c TestbedConfig) pairs() int {
	if c.Pairs <= 0 {
		return 20
	}
	return c.Pairs
}

func (c TestbedConfig) flows() int {
	if c.Flows <= 0 {
		return 10
	}
	return c.Flows
}

func (c TestbedConfig) repeats() int {
	if c.Repeats <= 0 {
		return 5
	}
	return c.Repeats
}

func (c TestbedConfig) delta() float64 {
	if c.Delta <= 0 {
		return 0.05
	}
	return c.Delta
}

// runnerConfig maps the emulation configuration onto the shared runner.
func (c TestbedConfig) runnerConfig() runner.Config {
	return runner.Config{Workers: c.Parallel, BaseSeed: c.Seed, OnProgress: c.Progress, OnJobTime: c.JobTime}
}

// testbedInstance builds the 22-node testbed with a fixed channel
// realization per seed.
func testbedInstance(seed int64) *topology.Instance {
	return topology.Testbed(stats.NewRand(seed), topology.Config{})
}

// nodeID maps the paper's 1-based testbed node numbers to graph IDs.
func nodeID(k int) graph.NodeID { return graph.NodeID(k - 1) }

// Figure9Result is the two-flow time trace of §6.2.
type Figure9Result struct {
	// Times are bin midpoints (s); Route1/Route2 the rates injected on
	// Flow 1-13's two routes; Total their sum; Received the goodput at
	// node 13. Flow2Start/Flow2Stop mark Flow 4-7's activity window.
	Times, Route1, Route2, Total, Received []float64
	Flow2Start, Flow2Stop                  float64
	BestSinglePath                         float64
	Routes                                 []string
}

// Figure9 reproduces Figure 9 scaled in time: Flow 1-13 starts at 0 with
// the multipath routes the routing protocol selects; Flow 4-7 (single-hop
// WiFi) is active during the middle third of the run; the congestion
// controller offloads WiFi while the contender is active.
func Figure9(cfg TestbedConfig) (Figure9Result, error) {
	inst := testbedInstance(cfg.Seed + 9)
	net := inst.Build(topology.ViewHybrid)
	dur := cfg.duration() * 5 // the trace needs three phases
	start2, stop2 := dur*0.39, dur*0.79

	em := node.NewEmulation(net.Network, node.Config{Delta: cfg.delta(), Estimation: true, Shards: cfg.Shards}, cfg.Seed+90)
	routes1 := core.RoutesFor(core.SchemeEMPoWER, net.Network, nodeID(1), nodeID(13))
	if len(routes1) == 0 {
		return Figure9Result{}, fmt.Errorf("experiments: no route 1->13 on this channel realization")
	}
	if len(routes1) > 2 {
		routes1 = routes1[:2]
	}
	f1, err := em.AddFlow(node.FlowSpec{
		Src: nodeID(1), Dst: nodeID(13), Routes: routes1, Kind: node.TrafficSaturated,
	}, 0)
	if err != nil {
		return Figure9Result{}, err
	}
	routes2 := core.RoutesFor(core.SchemeSP, net.Network, nodeID(4), nodeID(7))
	if len(routes2) == 0 {
		return Figure9Result{}, fmt.Errorf("experiments: no route 4->7")
	}
	f2, err := em.AddFlow(node.FlowSpec{
		Src: nodeID(4), Dst: nodeID(7), Routes: routes2[:1], Kind: node.TrafficSaturated,
	}, start2)
	if err != nil {
		return Figure9Result{}, err
	}
	em.Engine.At(stop2, f2.Stop)
	em.Run(dur)
	cfg.observe(em)

	bin := dur / 100
	res := Figure9Result{Flow2Start: start2, Flow2Stop: stop2}
	res.Times, res.Route1 = f1.RouteRateSeries(0, bin)
	if len(routes1) > 1 {
		_, res.Route2 = f1.RouteRateSeries(1, bin)
	} else {
		res.Route2 = make([]float64, len(res.Route1))
	}
	_, res.Total = f1.SentRateSeries(bin)
	_, res.Received = em.Agent(nodeID(13)).Sinks()[0].RateSeries(bin)
	// Pad the received series to the same length.
	for len(res.Received) < len(res.Times) {
		res.Received = append(res.Received, 0)
	}
	// Best single path baseline: the max R(P) over the flow's routes.
	for _, p := range routes1 {
		if r := routing.RatePath(net.Network, p); r > res.BestSinglePath {
			res.BestSinglePath = r
		}
	}
	for _, p := range routes1 {
		res.Routes = append(res.Routes, net.PathString(p))
	}
	return res, nil
}

// Render prints the trace as columns.
func (r Figure9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Flow 1-13 multipath trace (contending Flow 4-7 active %.0f-%.0f s)\n", r.Flow2Start, r.Flow2Stop)
	for _, s := range r.Routes {
		fmt.Fprintf(&b, "  route: %s\n", s)
	}
	fmt.Fprintf(&b, "  best single-path rate: %.1f Mbps\n", r.BestSinglePath)
	fmt.Fprintf(&b, "%8s %8s %8s %8s %8s\n", "t(s)", "route1", "route2", "total", "recv")
	step := len(r.Times) / 25
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Times); i += step {
		fmt.Fprintf(&b, "%8.1f %8.2f %8.2f %8.2f %8.2f\n",
			r.Times[i], r.Route1[i], r.Route2[i], r.Total[i], at(r.Received, i))
	}
	return b.String()
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

// Figure10Result holds the testbed scheme-ratio CDFs (left plot) and the
// convergence fractions (right plot).
type Figure10Result struct {
	// Ratios[s] is T_s/T_EMPoWER over the station pairs.
	Ratios map[string][]float64
	// Frac10_20 and Frac190_200 are T(window)/T_final per pair for
	// EMPoWER (right plot).
	Frac10_20, Frac190_200 []float64
	// EMPoWERBetterThanMWiFi is the fraction of pairs where EMPoWER beats
	// MP-mWiFi (paper: 75 %).
	EMPoWERBetterThanMWiFi float64
}

// Figure10 reproduces Figure 10 on the emulated testbed. The ratio CDF
// (left panel) compares all schemes with one evaluator — the analytic
// steady state on the same channel realization — so the ratios measure
// scheme differences rather than evaluator differences; the packet
// emulation of EMPoWER supplies the convergence fractions (right panel)
// and is cross-checked against the analytic steady state elsewhere
// (TestAnalyticMatchesPacketEmulation). The brute-force baselines SP-bf
// and SP-WiFi-bf are the exact maximum sustainable rate R(P) of the
// corresponding single path.
func Figure10(cfg TestbedConfig) Figure10Result {
	res, _ := Figure10Ctx(context.Background(), cfg)
	return res
}

// f10run is one Figure 10 station pair: the convergence fractions (when
// the packet emulation delivered) and the ordered ratio-panel entries
// (when the analytic EMPoWER throughput is positive).
type f10run struct {
	hasFrac               bool
	frac1020, frac190_200 float64
	ratios                []struct {
		name string
		v    float64
	}
	counted, mwBetter bool
}

// Figure10Ctx is Figure10 with cancellation. The station pairs are drawn
// serially first (they consume one shared RNG stream), then the per-pair
// emulations — the dominant cost — run on the parallel runner and are
// folded back in pair order.
func Figure10Ctx(ctx context.Context, cfg TestbedConfig) (Figure10Result, error) {
	inst := testbedInstance(cfg.Seed + 10)
	hybrid := inst.Build(topology.ViewHybrid)
	wifi := inst.Build(topology.ViewWiFiSingle)
	rng := stats.NewRand(cfg.Seed + 100)
	res := Figure10Result{Ratios: map[string][]float64{}}
	copts := core.Options{Delta: cfg.delta()}

	pairs := make([][2]graph.NodeID, cfg.pairs())
	for p := range pairs {
		src, dst := inst.RandomFlow(rng)
		pairs[p] = [2]graph.NodeID{src, dst}
	}

	runs, err := runner.Collect(ctx, len(pairs), cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) *f10run {
			p := rep.Index
			src, dst := pairs[p][0], pairs[p][1]
			routes := core.RoutesFor(core.SchemeEMPoWER, hybrid.Network, src, dst)
			if len(routes) == 0 {
				return nil
			}
			out := &f10run{}
			// Packet emulation of EMPoWER for this pair: convergence panel.
			em := node.NewEmulation(hybrid.Network, node.Config{Delta: cfg.delta(), Estimation: true, Shards: cfg.Shards}, cfg.Seed+int64(p))
			_, err := em.AddFlow(node.FlowSpec{Src: src, Dst: dst, Routes: routes, Kind: node.TrafficSaturated}, 0)
			if err != nil {
				return nil
			}
			dur := cfg.duration()
			em.Run(dur)
			cfg.observe(em)
			sink := em.Agent(dst).Sinks()[0]
			emuFinal := sink.MeanRate(dur*0.8, dur)
			if emuFinal > 0 {
				out.hasFrac = true
				out.frac1020 = ratio0(sink.MeanRate(10, 20), emuFinal)
				out.frac190_200 = ratio0(sink.MeanRate(dur*0.95, dur), emuFinal)
			}

			// Ratio panel: one evaluator for every scheme.
			final := core.Throughput(inst, core.SchemeEMPoWER, src, dst, copts)
			if final <= 0 {
				return out
			}
			add := func(name string, v float64) {
				out.ratios = append(out.ratios, struct {
					name string
					v    float64
				}{name, v / final})
			}
			add("SP", core.Throughput(inst, core.SchemeSP, src, dst, copts))
			add("MP-2bp", core.Throughput(inst, core.SchemeMP2bp, src, dst, copts))
			add("SP-WiFi", core.Throughput(inst, core.SchemeSPWiFi, src, dst, copts))
			mw := core.Throughput(inst, core.SchemeMPmWiFi, src, dst, copts)
			add("MP-mWiFi", mw)
			// Brute-force single paths: max sustainable rate on the chosen
			// single route (no margin, no estimation error).
			if sp := routing.SinglePath(hybrid.Network, src, dst, routing.DefaultConfig()); sp != nil {
				add("SP-bf", routing.RatePath(hybrid.Network, sp))
			}
			wcfg := routing.DefaultConfig()
			wcfg.UseCSC = false
			if sp := routing.SinglePath(wifi.Network, src, dst, wcfg); sp != nil {
				add("SP-WiFi-bf", routing.RatePath(wifi.Network, sp))
			} else {
				add("SP-WiFi-bf", 0)
			}
			out.counted = true
			out.mwBetter = mw < final
			return out
		})
	if err != nil {
		return res, err
	}

	mwBetter, n := 0, 0
	for _, r := range runs {
		if r == nil {
			continue
		}
		if r.hasFrac {
			res.Frac10_20 = append(res.Frac10_20, r.frac1020)
			res.Frac190_200 = append(res.Frac190_200, r.frac190_200)
		}
		for _, e := range r.ratios {
			res.Ratios[e.name] = append(res.Ratios[e.name], e.v)
		}
		if r.counted {
			if r.mwBetter {
				mwBetter++
			}
			n++
		}
	}
	if n > 0 {
		res.EMPoWERBetterThanMWiFi = float64(mwBetter) / float64(n)
	}
	return res, nil
}

func ratio0(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Render prints the two panels of Figure 10.
func (r Figure10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (left): CDF of T_X/T_EMPoWER over testbed pairs\n")
	var names []string
	for n := range r.Ratios {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeCDF(&b, n, r.Ratios[n])
	}
	fmt.Fprintf(&b, "EMPoWER beats MP-mWiFi on %.0f%% of pairs (paper: 75%%)\n", 100*r.EMPoWERBetterThanMWiFi)
	fmt.Fprintf(&b, "Figure 10 (right): convergence fractions of final throughput\n")
	writeCDF(&b, "after 10-20s", r.Frac10_20)
	writeCDF(&b, "end of run", r.Frac190_200)
	return b.String()
}

// Figure11Result is the per-flow mean ± stddev comparison of Figure 11.
type Figure11Result struct {
	Pairs   [][2]int // 1-based node numbers
	Mean    map[string][]float64
	Std     map[string][]float64
	Schemes []string
}

// Figure11 reproduces Figure 11: for each selected pair, the steady-state
// mean and standard deviation of per-second throughput measurements under
// EMPoWER, MP-mWiFi and SP (packet emulation for EMPoWER/SP on the hybrid
// view and for MP-mWiFi on the dual-channel view).
func Figure11(cfg TestbedConfig) Figure11Result {
	res, _ := Figure11Ctx(context.Background(), cfg)
	return res
}

// Figure11Ctx is Figure11 with cancellation: the flow pairs are selected
// serially (the draw stream is shared and the validity check is cheap
// next to an emulation), then every (pair, scheme) emulation runs on the
// parallel runner and is folded back in pair-then-scheme order.
func Figure11Ctx(ctx context.Context, cfg TestbedConfig) (Figure11Result, error) {
	inst := testbedInstance(cfg.Seed + 11)
	rng := stats.NewRand(cfg.Seed + 110)
	res := Figure11Result{
		Mean:    map[string][]float64{},
		Std:     map[string][]float64{},
		Schemes: []string{"EMPoWER", "MP-mWiFi", "SP"},
	}
	type schemeRun struct {
		name   string
		scheme core.Scheme
	}
	runs := []schemeRun{
		{"EMPoWER", core.SchemeEMPoWER},
		{"MP-mWiFi", core.SchemeMPmWiFi},
		{"SP", core.SchemeSP},
	}
	var sel [][2]graph.NodeID
	hybrid := inst.Build(topology.ViewHybrid)
	for tried := 0; len(sel) < cfg.flows() && tried < cfg.flows()*40; tried++ {
		src, dst := inst.RandomFlow(rng)
		if len(core.RoutesFor(core.SchemeEMPoWER, hybrid.Network, src, dst)) == 0 {
			continue
		}
		sel = append(sel, [2]graph.NodeID{src, dst})
		res.Pairs = append(res.Pairs, [2]int{int(src) + 1, int(dst) + 1})
	}

	type cell struct{ mean, std float64 }
	cells, err := runner.Collect(ctx, len(sel)*len(runs), cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) cell {
			pair, sr := rep.Index/len(runs), runs[rep.Index%len(runs)]
			src, dst := sel[pair][0], sel[pair][1]
			view := inst.Build(sr.scheme.View())
			routes := core.RoutesFor(sr.scheme, view.Network, src, dst)
			if len(routes) == 0 {
				return cell{}
			}
			// The emulation seed keeps the serial loop's derivation:
			// 1-based pair ordinal × 31 plus the scheme-name length.
			em := node.NewEmulation(view.Network, node.Config{Delta: cfg.delta(), Estimation: true, Shards: cfg.Shards},
				cfg.Seed+int64(pair+1)*31+int64(len(sr.name)))
			_, err := em.AddFlow(node.FlowSpec{Src: src, Dst: dst, Routes: routes, Kind: node.TrafficSaturated}, 0)
			if err != nil {
				return cell{}
			}
			dur := cfg.duration()
			em.Run(dur)
			cfg.observe(em)
			_, series := em.Agent(dst).Sinks()[0].RateSeries(1.0)
			tail := series
			if len(series) > int(dur/2) {
				tail = series[len(series)-int(dur/2):]
			}
			s := stats.Summarize(tail)
			return cell{mean: s.Mean, std: s.Std}
		})
	if err != nil {
		return res, err
	}
	for i, c := range cells {
		name := runs[i%len(runs)].name
		res.Mean[name] = append(res.Mean[name], c.mean)
		res.Std[name] = append(res.Std[name], c.std)
	}
	return res, nil
}

// Render prints the bar-chart data.
func (r Figure11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: steady-state rate mean ± std per flow (Mbps)\n")
	fmt.Fprintf(&b, "%-8s", "flow")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %18s", s)
	}
	fmt.Fprintln(&b)
	for i, p := range r.Pairs {
		fmt.Fprintf(&b, "%3d-%-4d", p[0], p[1])
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, "    %7.2f ± %5.2f", r.Mean[s][i], r.Std[s][i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table1Result holds the download-time table of §6.3.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one experiment line.
type Table1Row struct {
	Name          string
	FileBytes     int64
	EMPoWERMean   float64
	EMPoWERStd    float64
	WithoutCCMean float64
	WithoutCCStd  float64
	Repeats       int
}

// Table1 reproduces Table 1: download times for Tiny (100 kB), Short
// (5 MB), Long and Conc file transfers on Flow 6-13, with Conc adding a
// concurrent Flow 12-8 of five 5 MB files with Poisson starting times,
// comparing EMPoWER with MP-w/o-CC. The Long/Conc file is scaled from
// 2 GB to 200 MB by default (wall-clock honesty; same contention
// behaviour) — the scale is recorded in the row name.
func Table1(cfg TestbedConfig) Table1Result {
	res, _ := Table1Ctx(context.Background(), cfg)
	return res
}

// t1run is one Table 1 download measurement; nil marks a repetition that
// failed to complete within the cap.
type t1run struct {
	f613, f128 float64
}

// Table1Ctx is Table1 with cancellation. Every (row, repetition, scheme)
// download is independent — the emulation seed depends only on those
// coordinates — so all of them run on the parallel runner; the per-row
// summaries are folded in repetition order, exactly as the serial loop
// appended them.
func Table1Ctx(ctx context.Context, cfg TestbedConfig) (Table1Result, error) {
	inst := testbedInstance(cfg.Seed + 1)
	net := inst.Build(topology.ViewHybrid)
	const longBytes = 200_000_000
	rows := []Table1Row{
		{Name: "Tiny, F.6-13 (100 kB)", FileBytes: 100_000},
		{Name: "Short, F.6-13 (5 MB)", FileBytes: 5_000_000},
		{Name: "Long, F.6-13 (200 MB)", FileBytes: longBytes},
		{Name: "Conc, F.6-13 (200 MB)", FileBytes: longBytes},
		{Name: "Conc, F.12-8 (25 MB)", FileBytes: 0}, // measured within Conc
	}
	routes613 := core.RoutesFor(core.SchemeEMPoWER, net.Network, nodeID(6), nodeID(13))
	routes128 := core.RoutesFor(core.SchemeEMPoWER, net.Network, nodeID(12), nodeID(8))

	measure := func(disableCC bool, rep int, row int) (f613 float64, f128 float64, ok bool) {
		em := node.NewEmulation(net.Network, node.Config{
			Delta: cfg.delta(), DisableCC: disableCC, Estimation: true, Shards: cfg.Shards,
		}, cfg.Seed+int64(rep)*997+int64(row))
		conc := rows[row].Name[:4] == "Conc"
		fileBytes := rows[row].FileBytes
		fl, err := em.AddFlow(node.FlowSpec{
			Src: nodeID(6), Dst: nodeID(13), Routes: routes613,
			Kind: node.TrafficFile, FileBytes: fileBytes,
		}, 0)
		if err != nil {
			return 0, 0, false
		}
		var concFlows []*node.Flow
		if conc {
			rng := stats.NewRand(cfg.Seed + int64(rep)*13)
			start := 0.0
			for i := 0; i < 5; i++ {
				start += rng.ExpFloat64() * 20 // Poisson arrivals, mean 20 s (scaled from 60)
				cf, err := em.AddFlow(node.FlowSpec{
					Src: nodeID(12), Dst: nodeID(8), Routes: routes128,
					Kind: node.TrafficFile, FileBytes: 5_000_000,
				}, start)
				if err == nil {
					concFlows = append(concFlows, cf)
				}
			}
		}
		// Run until the destination has received the full file. Transfers
		// are reliable (the source keeps sending until the 100 ms acks
		// confirm FileBytes), so the byte count always completes; the
		// download time is the moment the last needed byte arrived.
		sink := em.Agent(nodeID(13)).SinkFor(nodeID(6), fl.ID)
		const cap = 3600.0
		done := false
		for t := 0.25; t < cap; t += 0.25 {
			em.Run(t)
			if sink.TotalBytes >= fileBytes {
				done = true
				break
			}
		}
		if !done {
			cfg.observe(em)
			return 0, 0, false
		}
		f613 = sink.LastDeliveryAt()
		if conc {
			// Let the concurrent flows drain too.
			allDone := func() bool {
				for _, cf := range concFlows {
					if !cf.Done() {
						return false
					}
				}
				for _, s := range em.Agent(nodeID(8)).Sinks() {
					if s.IdleFor(em.Engine.Now()) < 2 {
						return false
					}
				}
				return true
			}
			var last float64
			for t := em.Engine.Now() + 0.5; t < cap; t += 0.5 {
				em.Run(t)
				if allDone() {
					break
				}
			}
			for _, s := range em.Agent(nodeID(8)).Sinks() {
				if s.LastDeliveryAt() > last {
					last = s.LastDeliveryAt()
				}
			}
			f128 = last
		}
		cfg.observe(em)
		return f613, f128, true
	}

	// One job per (row, repetition, scheme); index layout row-major so
	// the fold below reads repetitions in serial-loop order.
	repeats := cfg.repeats()
	perRow := repeats * 2
	outs, err := runner.Collect(ctx, 4*perRow, cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) *t1run {
			row := rep.Index / perRow
			rem := rep.Index % perRow
			r, disableCC := rem/2, rem%2 == 1
			if t1, t2, ok := measure(disableCC, r, row); ok {
				return &t1run{f613: t1, f128: t2}
			}
			return nil
		})
	if err != nil {
		return Table1Result{}, err
	}

	for row := range rows[:4] {
		var empTimes, noccTimes []float64
		var empConc, noccConc []float64
		for rep := 0; rep < repeats; rep++ {
			if r := outs[row*perRow+rep*2]; r != nil {
				empTimes = append(empTimes, r.f613)
				if row == 3 {
					empConc = append(empConc, r.f128)
				}
			}
			if r := outs[row*perRow+rep*2+1]; r != nil {
				noccTimes = append(noccTimes, r.f613)
				if row == 3 {
					noccConc = append(noccConc, r.f128)
				}
			}
		}
		rows[row].Repeats = repeats
		se, sn := stats.Summarize(empTimes), stats.Summarize(noccTimes)
		rows[row].EMPoWERMean, rows[row].EMPoWERStd = se.Mean, se.Std
		rows[row].WithoutCCMean, rows[row].WithoutCCStd = sn.Mean, sn.Std
		if row == 3 {
			se, sn = stats.Summarize(empConc), stats.Summarize(noccConc)
			rows[4].EMPoWERMean, rows[4].EMPoWERStd = se.Mean, se.Std
			rows[4].WithoutCCMean, rows[4].WithoutCCStd = sn.Mean, sn.Std
			rows[4].Repeats = repeats
		}
	}
	return Table1Result{Rows: rows}, nil
}

// Render prints the table in the paper's layout.
func (t Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: download times (s), mean ± std over %d repeats\n", t.Rows[0].Repeats)
	fmt.Fprintf(&b, "%-26s %18s %18s\n", "", "EMPoWER", "MP-w/o-CC")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-26s %9.2f ± %5.2f %9.2f ± %5.2f\n",
			r.Name, r.EMPoWERMean, r.EMPoWERStd, r.WithoutCCMean, r.WithoutCCStd)
	}
	return b.String()
}

// Figure12Result is the TCP trace of §6.4.
type Figure12Result struct {
	// Times, RateSP, RateEMP: goodput series; the first half runs TCP on
	// SP-w/o-CC, the second half on EMPoWER with two routes and δ=0.3.
	Times, Rate    []float64
	SwitchAt       float64
	SPGoodput      float64
	EMPoWERGoodput float64
	Routes         []string
}

// Figure12 reproduces Figure 12: a TCP flow 9→13 running over a single
// route without congestion control for the first half, then over
// EMPoWER's two routes with δ = 0.3 and delay equalization for the
// second half.
func Figure12(cfg TestbedConfig) (Figure12Result, error) {
	return Figure12Ctx(context.Background(), cfg)
}

// Figure12Ctx is Figure12 with cancellation. The two phases are separate
// emulations with their own seeds, so they run as two replications on
// the parallel runner.
func Figure12Ctx(ctx context.Context, cfg TestbedConfig) (Figure12Result, error) {
	inst := testbedInstance(cfg.Seed + 12)
	net := inst.Build(topology.ViewHybrid)
	dur := cfg.duration() * 2
	half := dur / 2

	res := Figure12Result{SwitchAt: half}

	spRoutes := core.RoutesFor(core.SchemeSP, net.Network, nodeID(9), nodeID(13))
	mpRoutes := core.RoutesFor(core.SchemeEMPoWER, net.Network, nodeID(9), nodeID(13))
	if len(spRoutes) == 0 || len(mpRoutes) == 0 {
		return res, fmt.Errorf("experiments: no routes 9->13")
	}
	if len(mpRoutes) > 2 {
		mpRoutes = mpRoutes[:2]
	}

	series, err := runner.Run(ctx, 2, cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) ([]float64, error) {
			var em *node.Emulation
			var routes []graph.Path
			if rep.Index == 0 {
				// Phase 1: TCP over the single path without CC.
				em = node.NewEmulation(net.Network, node.Config{DisableCC: true, Estimation: true, Shards: cfg.Shards}, cfg.Seed+120)
				routes = spRoutes[:1]
			} else {
				// Phase 2: TCP over EMPoWER multipath with δ=0.3 + delay
				// equalization.
				em = node.NewEmulation(net.Network, node.Config{
					Delta: 0.3, DelayEqualize: true, Estimation: true, Shards: cfg.Shards,
				}, cfg.Seed+121)
				routes = mpRoutes
			}
			c, err := transport.Dial(em, nodeID(9), nodeID(13), routes, -1, transport.Config{}, 0)
			if err != nil {
				return nil, err
			}
			em.Run(half)
			cfg.observe(em)
			_, s := em.Agent(nodeID(13)).SinkFor(nodeID(9), c.Forward.ID).RateSeries(1.0)
			return s, nil
		})
	if err != nil {
		return res, err
	}
	s1, s2 := series[0], series[1]

	for i, v := range s1 {
		res.Times = append(res.Times, float64(i)+0.5)
		res.Rate = append(res.Rate, v)
	}
	for i, v := range s2 {
		res.Times = append(res.Times, half+float64(i)+0.5)
		res.Rate = append(res.Rate, v)
	}
	res.SPGoodput = stats.Mean(tailHalf(s1))
	res.EMPoWERGoodput = stats.Mean(tailHalf(s2))
	for _, p := range mpRoutes {
		res.Routes = append(res.Routes, net.PathString(p))
	}
	return res, nil
}

func tailHalf(xs []float64) []float64 {
	if len(xs) < 2 {
		return xs
	}
	return xs[len(xs)/2:]
}

// Render prints the TCP trace summary.
func (r Figure12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: TCP flow 9-13; SP-w/o-CC before %.0f s, EMPoWER (δ=0.3) after\n", r.SwitchAt)
	for _, s := range r.Routes {
		fmt.Fprintf(&b, "  EMPoWER route: %s\n", s)
	}
	fmt.Fprintf(&b, "  steady goodput: SP-w/o-CC %.2f Mbps, EMPoWER %.2f Mbps\n", r.SPGoodput, r.EMPoWERGoodput)
	step := len(r.Times) / 30
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(&b, "%8s %8s\n", "t(s)", "Mbps")
	for i := 0; i < len(r.Times); i += step {
		fmt.Fprintf(&b, "%8.1f %8.2f\n", r.Times[i], r.Rate[i])
	}
	return b.String()
}

// Figure13Result compares TCP rates under EMPoWER and SP-w/o-CC per flow.
type Figure13Result struct {
	Pairs                   [][2]int
	EMPoWERMean, EMPoWERStd []float64
	SPMean, SPStd           []float64
}

// Figure13 reproduces Figure 13: average TCP rate with standard
// deviation for random flows that use two routes under EMPoWER (δ = 0.3)
// versus single-path TCP without congestion control.
func Figure13(cfg TestbedConfig) Figure13Result {
	res, _ := Figure13Ctx(context.Background(), cfg)
	return res
}

// Figure13Ctx is Figure13 with cancellation. Route computation doubles as
// the pair filter and consumes a shared RNG stream, so selection stays
// serial; the TCP emulations — two per selected pair, by far the
// dominant cost — run on the parallel runner.
func Figure13Ctx(ctx context.Context, cfg TestbedConfig) (Figure13Result, error) {
	inst := testbedInstance(cfg.Seed + 13)
	net := inst.Build(topology.ViewHybrid)
	rng := stats.NewRand(cfg.Seed + 130)
	res := Figure13Result{}
	type pick struct {
		src, dst graph.NodeID
		mp, sp   []graph.Path
	}
	var sel []pick
	tried := 0
	for len(sel) < cfg.flows() && tried < cfg.flows()*40 {
		tried++
		src, dst := inst.RandomFlow(rng)
		mp := core.RoutesFor(core.SchemeEMPoWER, net.Network, src, dst)
		sp := core.RoutesFor(core.SchemeSP, net.Network, src, dst)
		if len(mp) < 2 || len(sp) == 0 {
			continue // the figure selects flows that use two routes
		}
		// Stay in the paper's moderate-rate regime (its TCP flows run at
		// 10-60 Mbps): on very strong single paths the δ = 0.3 margin
		// alone can outweigh the multipath gain.
		if routing.RatePath(net.Network, sp[0]) > 60 {
			continue
		}
		sel = append(sel, pick{src: src, dst: dst, mp: mp[:2], sp: sp})
		res.Pairs = append(res.Pairs, [2]int{int(src) + 1, int(dst) + 1})
	}

	type cell struct{ mean, std float64 }
	cells, err := runner.Collect(ctx, len(sel)*2, cfg.runnerConfig(),
		func(_ context.Context, rep runner.Rep) cell {
			p, emp := sel[rep.Index/2], rep.Index%2 == 0
			var cfgN node.Config
			if emp {
				cfgN = node.Config{Delta: 0.3, DelayEqualize: true, Estimation: true, Shards: cfg.Shards}
			} else {
				cfgN = node.Config{DisableCC: true, Estimation: true, Shards: cfg.Shards}
			}
			// The emulation seed keeps the serial loop's derivation:
			// 1-based pair ordinal × 71 plus the scheme bit.
			em := node.NewEmulation(net.Network, cfgN, cfg.Seed+int64(rep.Index/2+1)*71+boolInt64(emp))
			rs := p.sp[:1]
			if emp {
				rs = p.mp
			}
			conn, err := transport.Dial(em, p.src, p.dst, rs, -1, transport.Config{}, 0)
			if err != nil {
				return cell{}
			}
			dur := cfg.duration()
			em.Run(dur)
			cfg.observe(em)
			_, series := em.Agent(p.dst).SinkFor(p.src, conn.Forward.ID).RateSeries(1.0)
			s := stats.Summarize(tailHalf(series))
			return cell{mean: s.Mean, std: s.Std}
		})
	if err != nil {
		return res, err
	}
	for i := 0; i < len(cells); i += 2 {
		res.EMPoWERMean = append(res.EMPoWERMean, cells[i].mean)
		res.EMPoWERStd = append(res.EMPoWERStd, cells[i].std)
		res.SPMean = append(res.SPMean, cells[i+1].mean)
		res.SPStd = append(res.SPStd, cells[i+1].std)
	}
	return res, nil
}

func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Render prints the bar-chart data.
func (r Figure13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: average TCP rate ± std (Mbps), δ=0.3\n")
	fmt.Fprintf(&b, "%-9s %18s %18s\n", "flow", "EMPoWER", "SP-w/o-CC")
	for i, p := range r.Pairs {
		fmt.Fprintf(&b, "%3d-%-5d %9.2f ± %5.2f %9.2f ± %5.2f\n",
			p[0], p[1], r.EMPoWERMean[i], r.EMPoWERStd[i], r.SPMean[i], r.SPStd[i])
	}
	return b.String()
}
