package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mac"
	"repro/internal/node"
	"repro/internal/obs"
)

// DropTally accumulates per-reason MAC drop counters across the
// emulations of a testbed figure. The figure closures run on worker
// goroutines, so the tally carries its own mutex; reading an emulation's
// counters happens after its Run returned, never concurrently with it.
// A nil *DropTally is inert, so default runs pay nothing and print
// nothing (byte-stable output; the -drops flag allocates one).
type DropTally struct {
	mu     sync.Mutex
	counts [mac.NumDropReasons]int
	pkts   int
}

// AddEmulation folds one finished emulation's drop counters in.
func (t *DropTally) AddEmulation(em *node.Emulation) {
	if t == nil {
		return
	}
	var total mac.LinkStats
	for d := 0; d < em.NumDomains(); d++ {
		st := em.Domain(d).MAC.TotalStats()
		for r := range st.Dropped {
			total.Dropped[r] += st.Dropped[r]
		}
		total.DeliveredPkts += st.DeliveredPkts
	}
	t.mu.Lock()
	for r := range total.Dropped {
		t.counts[r] += total.Dropped[r]
	}
	t.pkts += total.DeliveredPkts
	t.mu.Unlock()
}

// Counts returns the per-reason totals keyed by reason name (every
// reason present, zero or not, like scenario.Runtime.DropsByReason).
func (t *DropTally) Counts() map[string]int {
	out := make(map[string]int, int(mac.NumDropReasons))
	if t == nil {
		for r := mac.DropReason(0); r < mac.NumDropReasons; r++ {
			out[r.String()] = 0
		}
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for r := mac.DropReason(0); r < mac.NumDropReasons; r++ {
		out[r.String()] = t.counts[r]
	}
	return out
}

// Render prints the tally as one stable-ordered line block, matching the
// per-reason drops section empower-scenario prints with -invariants.
func (t *DropTally) Render() string {
	counts := t.Counts()
	reasons := make([]string, 0, len(counts))
	for reason := range counts {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	var b strings.Builder
	b.WriteString("Drops by reason:")
	for _, reason := range reasons {
		fmt.Fprintf(&b, " %s=%d", reason, counts[reason])
	}
	if t != nil {
		t.mu.Lock()
		fmt.Fprintf(&b, " (delivered=%d)", t.pkts)
		t.mu.Unlock()
	}
	b.WriteString("\n")
	return b.String()
}

// observe folds one finished emulation into the configured observability
// sinks (drop tally, metrics aggregator). Inert when neither is set.
func (c TestbedConfig) observe(em *node.Emulation) {
	c.Drops.AddEmulation(em)
	if c.Metrics != nil {
		reg := obs.NewRegistry()
		em.SampleMetrics(reg)
		c.Metrics.Add(reg)
	}
}
