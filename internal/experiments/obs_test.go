package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestMetricsByteIdenticalOnOff pins the observability layer's central
// contract: metrics sampling, the flight recorder, phase timing and the
// progress/job-time callbacks are purely observational. The same sweep at
// the same seed must produce byte-identical rendered output — and
// bit-identical result structs — with the full instrumentation attached
// and with none of it.
func TestMetricsByteIdenticalOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps emulate minutes of virtual time per replication")
	}
	sc := loadFlaps(t)
	base := ChurnConfig{
		Seed: 7, Runs: 2, ManageRoutes: true, Parallel: 4,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	}

	plain := base
	instrumented := base
	instrumented.Recorder = 512
	instrumented.Metrics = obs.NewAggregator()
	instrumented.Phases = &obs.Phases{}
	instrumented.Progress = func(done, total int) {}
	instrumented.JobTime = func(d time.Duration) {}

	off, err := ChurnFailover(sc, plain)
	if err != nil {
		t.Fatal(err)
	}
	on, err := ChurnFailover(sc, instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("results differ with instrumentation on:\n  off: %+v\n  on:  %+v", off, on)
	}
	if off.Render() != on.Render() {
		t.Fatalf("rendered output differs with instrumentation on:\n--- off ---\n%s\n--- on ---\n%s",
			off.Render(), on.Render())
	}

	// The instrumented run must actually have observed something, and
	// its aggregate snapshot must be a lint-clean Prometheus exposition.
	var buf bytes.Buffer
	if err := instrumented.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.String()
	if !strings.Contains(snap, "empower_events_fired_total") {
		t.Fatalf("aggregate snapshot missing engine counters:\n%s", snap)
	}
	if err := obs.Lint(buf.Bytes()); err != nil {
		t.Fatalf("aggregate snapshot fails lint: %v", err)
	}
	bd := instrumented.Phases.Breakdown()
	if bd.RunSeconds <= 0 {
		t.Errorf("phase breakdown recorded no run time: %+v", bd)
	}
}

// TestChurnTraceMatchesSweep checks the -trace export path: re-running a
// sweep replication with a recorder attached yields records for every
// domain, and the re-run is bit-identical to the sweep's own replication
// (the sweep result with and without a trace-sized recorder agrees, which
// TestMetricsByteIdenticalOnOff already pins; here the trace itself must
// be non-empty and time-ordered).
func TestChurnTraceMatchesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps emulate minutes of virtual time per replication")
	}
	sc := loadFlaps(t)
	cfg := ChurnConfig{
		Seed: 7, Runs: 2, ManageRoutes: true,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	}
	doms, err := ChurnTrace(sc, cfg, 0, core.SchemeEMPoWER, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(doms) == 0 {
		t.Fatal("trace has no domains")
	}
	total := 0
	for d, recs := range doms {
		total += len(recs)
		for i := 1; i < len(recs); i++ {
			if recs[i].At < recs[i-1].At {
				t.Fatalf("domain %d: records out of order at %d: %.9f after %.9f",
					d, i, recs[i].At, recs[i-1].At)
			}
		}
	}
	if total == 0 {
		t.Fatal("trace recorded no events")
	}
}
