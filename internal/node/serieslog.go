package node

// seriesLog accumulates (time, bits) points for rate series. Points are
// stored in fixed-size chunks instead of one doubling slice: a run that
// logs millions of packets allocates one 64 KB chunk per 4096 points and
// never copies old data (the doubling slice used to re-copy the whole
// log ~20 times over a long run, which dominated the emulation's byte
// churn). The chunk-pointer slice is presized from the configured
// duration when the emulation knows it.
type seriesLog struct {
	chunks []*seriesChunk
	n      int // total points
}

const seriesChunkPoints = 4096

type seriesChunk struct {
	times [seriesChunkPoints]float64
	bits  [seriesChunkPoints]float64
}

// newSeriesLog builds a log, presizing the chunk directory for
// expectedDuration emulated seconds (a saturated 1500 B source at tens
// of Mbps logs on the order of a thousand points per second).
func newSeriesLog(expectedDuration float64) *seriesLog {
	s := &seriesLog{}
	if expectedDuration > 0 {
		est := int(expectedDuration*1000)/seriesChunkPoints + 1
		s.chunks = make([]*seriesChunk, 0, est)
	}
	return s
}

func (s *seriesLog) add(t, b float64) {
	i := s.n % seriesChunkPoints
	if i == 0 {
		s.chunks = append(s.chunks, &seriesChunk{})
	}
	c := s.chunks[len(s.chunks)-1]
	c.times[i] = t
	c.bits[i] = b
	s.n++
}

// series bins the log into rates: returns bin midpoints (s) and rates
// (Mbps). Points are visited in insertion (chronological) order, so the
// per-bin float sums match the flat-slice implementation bit for bit.
func (s *seriesLog) series(bin float64) ([]float64, []float64) {
	if s.n == 0 || bin <= 0 {
		return nil, nil
	}
	last := s.chunks[(s.n-1)/seriesChunkPoints]
	end := last.times[(s.n-1)%seriesChunkPoints]
	n := int(end/bin) + 1
	sums := make([]float64, n)
	for ci, c := range s.chunks {
		limit := seriesChunkPoints
		if rem := s.n - ci*seriesChunkPoints; rem < limit {
			limit = rem
		}
		for i := 0; i < limit; i++ {
			idx := int(c.times[i] / bin)
			if idx >= n {
				idx = n - 1
			}
			sums[idx] += c.bits[i]
		}
	}
	ts := make([]float64, n)
	rates := make([]float64, n)
	for i := range sums {
		ts[i] = (float64(i) + 0.5) * bin
		rates[i] = sums[i] / bin / 1e6
	}
	return ts, rates
}
