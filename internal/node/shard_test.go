package node

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// clusterNet builds k disjoint diamond clusters (a→{b,c}→d, duplex WiFi)
// spaced far beyond the sensing radius, so the network decomposes into k
// interference domains. It returns the network and, per cluster, the
// flow endpoints with two disjoint routes.
type clusterFlow struct {
	src, dst graph.NodeID
	routes   []graph.Path
}

func clusterNet(k int) (*graph.Network, []clusterFlow) {
	b := graph.NewBuilder(graph.RangeBased{SenseRadius: map[graph.Tech]float64{graph.TechWiFi: 50}})
	type quad struct{ a, bb, c, d graph.NodeID }
	quads := make([]quad, k)
	type linkPair struct{ ab, bd, ac, cd graph.LinkID }
	pairs := make([]linkPair, k)
	for i := 0; i < k; i++ {
		ox := float64(i) * 1000
		q := quad{
			a:  b.AddNode(fmt.Sprintf("a%d", i), ox, 0, graph.TechWiFi),
			bb: b.AddNode(fmt.Sprintf("b%d", i), ox+10, 10, graph.TechWiFi),
			c:  b.AddNode(fmt.Sprintf("c%d", i), ox+10, -10, graph.TechWiFi),
			d:  b.AddNode(fmt.Sprintf("d%d", i), ox+20, 0, graph.TechWiFi),
		}
		quads[i] = q
		cap := 30 + 6*float64(i%3)
		pairs[i].ab, _ = b.AddDuplex(q.a, q.bb, graph.TechWiFi, cap)
		pairs[i].bd, _ = b.AddDuplex(q.bb, q.d, graph.TechWiFi, cap)
		pairs[i].ac, _ = b.AddDuplex(q.a, q.c, graph.TechWiFi, cap-6)
		pairs[i].cd, _ = b.AddDuplex(q.c, q.d, graph.TechWiFi, cap-6)
	}
	net := b.Build()
	flows := make([]clusterFlow, k)
	for i := range flows {
		flows[i] = clusterFlow{
			src: quads[i].a,
			dst: quads[i].d,
			routes: []graph.Path{
				{pairs[i].ab, pairs[i].bd},
				{pairs[i].ac, pairs[i].cd},
			},
		}
	}
	return net, flows
}

// shardedFingerprint runs the cluster workload at a shard count and
// folds the full observable trajectory — delivered bytes, exact
// congestion-control rates, forwarding counters — into a string.
func shardedFingerprint(t *testing.T, shards int, seconds float64) string {
	t.Helper()
	net, cflows := clusterNet(4)
	em := NewEmulation(net, Config{Estimation: true, Shards: shards}, 77)
	var flows []*Flow
	for _, cf := range cflows {
		fl, err := em.AddFlow(FlowSpec{Src: cf.src, Dst: cf.dst, Routes: cf.routes, Kind: TrafficSaturated}, 0)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, fl)
	}
	em.Run(seconds)
	out := ""
	for i, fl := range flows {
		s := em.Agent(fl.Dst).SinkFor(fl.Src, fl.ID)
		out += fmt.Sprintf("flow%d bytes=%d rates=%v\n", i, s.TotalBytes, fl.Rates())
	}
	for n, a := range em.Agents {
		if a.Forwarded+a.Consumed > 0 {
			out += fmt.Sprintf("node%d fwd=%d consumed=%d\n", n, a.Forwarded, a.Consumed)
		}
	}
	return out
}

// TestShardedDeterminismAcrossShardCounts is the tentpole contract at
// the node layer: the same seed yields a bit-identical trajectory at any
// shard count, because the domain decomposition and the per-domain seed
// splits depend only on the topology — Shards merely caps the worker
// pool.
func TestShardedDeterminismAcrossShardCounts(t *testing.T) {
	seconds := 12.0
	if testing.Short() {
		seconds = 4.0
	}
	ref := shardedFingerprint(t, 1, seconds)
	for _, shards := range []int{2, 4, ShardsAuto} {
		if got := shardedFingerprint(t, shards, seconds); got != ref {
			t.Fatalf("shards=%d diverged from shards=1:\n--- shards=1\n%s--- shards=%d\n%s", shards, ref, shards, got)
		}
	}
	if rerun := shardedFingerprint(t, 4, seconds); rerun != ref {
		t.Fatalf("shards=4 rerun diverged (nondeterminism within a shard count)")
	}
}

// TestShardedSingleDomainFallsBack: a connected topology is one
// interference domain, so any Shards value runs the classic single
// engine and reproduces the Shards=0 trajectory byte-for-byte.
func TestShardedSingleDomainFallsBack(t *testing.T) {
	run := func(shards int) (*Emulation, string) {
		net, a, c, routes := figure1()
		em := NewEmulation(net, Config{Estimation: true, Shards: shards}, 21)
		fl, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
		if err != nil {
			t.Fatal(err)
		}
		em.Run(6)
		s := em.Agent(c).SinkFor(a, fl.ID)
		return em, fmt.Sprintf("bytes=%d rates=%v", s.TotalBytes, fl.Rates())
	}
	em4, got := run(4)
	if em4.Sharded() {
		t.Fatal("connected topology came out sharded")
	}
	if em4.NumDomains() != 1 {
		t.Fatalf("NumDomains = %d, want 1", em4.NumDomains())
	}
	if _, want := run(0); got != want {
		t.Fatalf("shards=4 trajectory %q differs from the classic engine's %q", got, want)
	}
}

// TestShardedDispatch pins the dispatcher surface: domain lookups,
// capacity mutation routing (with the top-level mirror), and the merged
// agent view.
func TestShardedDispatch(t *testing.T) {
	net, cflows := clusterNet(3)
	em := NewEmulation(net, Config{Estimation: true, Shards: 2}, 5)
	if !em.Sharded() || em.NumDomains() != 3 {
		t.Fatalf("sharded=%v domains=%d, want true/3", em.Sharded(), em.NumDomains())
	}
	if em.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", em.Workers())
	}
	// Node/link ownership is cluster-contiguous by construction.
	for i, cf := range cflows {
		if em.NodeDomain(cf.src) != i || em.NodeDomain(cf.dst) != i {
			t.Fatalf("cluster %d endpoints mapped to domains %d/%d", i, em.NodeDomain(cf.src), em.NodeDomain(cf.dst))
		}
		for _, l := range cf.routes[0] {
			if em.LinkDomain(l) != i {
				t.Fatalf("cluster %d link %d mapped to domain %d", i, l, em.LinkDomain(l))
			}
		}
	}
	// A capacity change lands in the owning domain's clone, mirrors into
	// the top-level network, and leaves other domains untouched.
	l := cflows[1].routes[0][0]
	em.SetLinkCapacity(l, 0)
	if em.Net.Link(l).Capacity != 0 {
		t.Fatal("top-level capacity not mirrored")
	}
	if em.Domain(1).Net.Link(l).Capacity != 0 {
		t.Fatal("owning domain's clone not mutated")
	}
	if em.Domain(0).Net.Link(l).Capacity == 0 {
		t.Fatal("foreign domain's clone mutated")
	}
	// The merged agent view serves every node, owned by its domain.
	for n := 0; n < net.NumNodes(); n++ {
		a := em.Agent(graph.NodeID(n))
		if a == nil {
			t.Fatalf("merged agent view has no agent for node %d", n)
		}
		if em.Domain(em.NodeDomain(graph.NodeID(n))).Agents[n] != a {
			t.Fatalf("node %d agent not owned by its domain", n)
		}
	}
}

// TestAllocsShardedRunSlot extends the zero-alloc steady-state guard to
// the sharded engine: with a sequential worker (Shards=1 spawns no
// goroutines), a warm multi-domain emulation runs a full report slot
// without a single heap allocation — each domain engine's pools work
// exactly as in the classic engine, and the coordinator's window loop is
// allocation-free.
func TestAllocsShardedRunSlot(t *testing.T) {
	net, cflows := clusterNet(2)
	em := NewEmulation(net, Config{Estimation: true, Shards: 1}, 21)
	var flows []*Flow
	for _, cf := range cflows {
		fl, err := em.AddFlow(FlowSpec{Src: cf.src, Dst: cf.dst, Routes: cf.routes, Kind: TrafficSaturated}, 0)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, fl)
	}
	em.Run(5) // warm: pools, rings, report tables, reverse-path caches
	for _, fl := range flows {
		fl.Stop()
	}
	em.Run(5.05) // drain in-flight frames

	// Pin the cached reverse paths, as in TestAllocsEmulationReportSlot.
	for _, ag := range em.Agents {
		for _, s := range ag.sinks {
			if s.reverse != nil {
				s.reverseAt = 1e18
			}
		}
	}

	slots := 0
	if avg := testing.AllocsPerRun(10, func() {
		slots++
		em.Run(5.05 + 0.1*float64(slots))
	}); avg != 0 {
		t.Errorf("sharded steady-state report slot allocates %v per 100 ms, want 0", avg)
	}
}
