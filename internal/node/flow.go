package node

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/congestion"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TrafficKind selects the application driving a flow.
type TrafficKind int

// Traffic kinds.
const (
	// TrafficSaturated models a saturated UDP iperf source.
	TrafficSaturated TrafficKind = iota
	// TrafficFile models a file download of FileBytes.
	TrafficFile
	// TrafficExternal is pushed by an external layer (e.g. the mini-TCP
	// of package transport) via Push.
	TrafficExternal
)

// ErrOverRate is returned by Push when the congestion controller's token
// bucket is empty: the rate from the layers above exceeds the flow's
// allocation, so the packet is dropped (TCP perceives this as congestion,
// §6.4).
var ErrOverRate = errors.New("node: send rate above congestion-control allocation")

// FlowSpec configures AddFlow.
type FlowSpec struct {
	Src, Dst graph.NodeID
	// Routes are the preselected routes from the routing protocol.
	Routes []graph.Path
	Kind   TrafficKind
	// FileBytes is the download size for TrafficFile.
	FileBytes int64
	// Utility defaults to proportional fairness.
	Utility congestion.Utility
	// TCP marks the flow as TCP for the §6.4 δ signalling.
	TCP bool
}

// Flow is the source-side state of one EMPoWER flow.
type Flow struct {
	ID       uint16
	Src, Dst graph.NodeID
	spec     FlowSpec

	em    *Emulation
	agent *Agent

	routes    []graph.Path
	ifaceIDs  [][]wire.InterfaceID
	firstLink []graph.LinkID

	// Congestion-control state (proximal multipath controller).
	x, xbar []float64
	lastQR  []float64
	tuner   *congestion.AlphaTuner
	util    congestion.Utility
	// seqBuf is scratch for the sequential-rate warm starts (seedRates,
	// setRoutesOn): reroutes and flow churn stay allocation-free.
	seqBuf []float64

	// Token bucket shaping at rate Σx (bits), with a small queue ahead
	// of the drop decision to absorb transport bursts.
	tokens     float64
	lastRefil  float64
	shapeQ     []shapedPkt
	drainTimer sim.TimerRef

	seq      uint32
	sentBits float64
	// lastAckAt is the virtual time of the most recent acknowledgement
	// (-1 before the first): the freshness signal the invariant checker
	// gates its rate-vs-capacity bound on (a flow whose acks stopped
	// coasts on stale rates, which is correct behaviour, not a violation).
	lastAckAt float64
	// File-transfer accounting (TrafficFile): downloads are reliable —
	// the source keeps sending until the destination has confirmed
	// FileBytes of payload through the 100 ms acknowledgements (lost
	// packets are covered by fresh ones, as a reliable transport would).
	sentPayload    int64
	confirmedBytes int64
	active         bool
	sendTimer      sim.TimerRef

	// RouteSentBits tracks per-route injected bits (Figure 9's
	// "rate sent on Route i" series).
	RouteSentBits []float64
	rateLog       *seriesLog
	routeLogs     []*seriesLog
}

// AddFlow registers a flow and starts its traffic at virtual time
// startAt.
func (e *Emulation) AddFlow(spec FlowSpec, startAt float64) (*Flow, error) {
	if len(spec.Routes) == 0 {
		return nil, fmt.Errorf("node: flow needs at least one route")
	}
	if e.doms != nil {
		// A flow lives entirely inside its source's interference domain:
		// there are no cross-domain links, so route validation in the
		// sub-emulation rejects anything else naturally.
		return e.doms[e.nodeDom[spec.Src]].AddFlow(spec, startAt)
	}
	f := &Flow{
		ID:     uint16(len(e.flows) + 1),
		Src:    spec.Src,
		Dst:    spec.Dst,
		spec:   spec,
		em:     e,
		agent:  e.Agents[spec.Src],
		routes: spec.Routes,
		util:   spec.Utility,
	}
	if f.util == nil {
		f.util = congestion.ProportionalFairness{}
	}
	longest := 0
	for _, r := range spec.Routes {
		if err := e.Net.ValidatePath(r, spec.Src, spec.Dst); err != nil {
			return nil, fmt.Errorf("node: flow route invalid: %w", err)
		}
		if len(r) > wire.MaxHops {
			return nil, fmt.Errorf("node: route longer than %d hops", wire.MaxHops)
		}
		if len(r) > longest {
			longest = len(r)
		}
		ids := make([]wire.InterfaceID, len(r))
		for i, l := range r {
			link := e.Net.Link(l)
			ids[i] = wire.HashInterface(link.To, link.Tech)
		}
		f.ifaceIDs = append(f.ifaceIDs, ids)
		f.firstLink = append(f.firstLink, r[0])
	}
	n := len(spec.Routes)
	f.x = make([]float64, n)
	f.xbar = make([]float64, n)
	f.lastQR = make([]float64, n)
	f.RouteSentBits = make([]float64, n)
	f.routeLogs = make([]*seriesLog, n)
	for i := range f.routeLogs {
		f.routeLogs[i] = newSeriesLog(e.cfg.ExpectedDuration)
	}
	f.rateLog = newSeriesLog(e.cfg.ExpectedDuration)
	f.lastAckAt = -1
	f.seedRates()
	f.tuner = congestion.NewAlphaTuner(e.cfg.flowAlphaBase(), n, longest)
	e.flows = append(e.flows, f)
	f.agent.source[f.ID] = f
	if spec.TCP {
		f.agent.tcpSeen = true
	}
	e.Engine.AtFunc(startAt, flowStart, f)
	return f, nil
}

func flowStart(arg any) { arg.(*Flow).start() }

func (f *Flow) start() {
	f.active = true
	f.lastRefil = f.em.Engine.Now()
	f.scheduleNext()
}

// Stop halts the flow's traffic.
func (f *Flow) Stop() {
	f.active = false
	f.sendTimer.Cancel()
}

// Rates returns a copy of the current per-route congestion-control rates
// (Mbps). Per-slot callers use AppendRates to avoid the allocation.
func (f *Flow) Rates() []float64 { return append([]float64(nil), f.x...) }

// AppendRates appends the current per-route rates (Mbps) to dst and
// returns it — the caller-buffer form of Rates for hot paths that read
// the rates every slot.
func (f *Flow) AppendRates(dst []float64) []float64 { return append(dst, f.x...) }

// TotalRate returns Σ_r x_r (Mbps).
func (f *Flow) TotalRate() float64 {
	var s float64
	for _, v := range f.x {
		s += v
	}
	return s
}

// Routes returns the flow's routes.
func (f *Flow) Routes() []graph.Path { return f.routes }

// Active reports whether the flow is currently emitting traffic.
func (f *Flow) Active() bool { return f.active }

// CC reports whether the flow runs under congestion control (false for
// the w/o-CC baselines).
func (f *Flow) CC() bool { return !f.em.cfg.DisableCC }

// InjectedPackets returns the number of data packets the source has
// built so far (the sequence-number high-water mark; an upper bound on
// what any sink can deliver or declare lost).
func (f *Flow) InjectedPackets() int { return int(f.seq) }

// LastAckAt returns the virtual time of the most recent acknowledgement
// (-1 if none arrived yet).
func (f *Flow) LastAckAt() float64 { return f.lastAckAt }

// Done reports whether a file flow's payload has been confirmed
// delivered in full.
func (f *Flow) Done() bool {
	return f.spec.Kind == TrafficFile && f.confirmedBytes >= f.spec.FileBytes
}

// fileSendable reports whether a file flow should still emit packets: the
// transfer is reliable, so sending continues (covering losses with fresh
// payload) until the destination confirmed the full file.
func (f *Flow) fileSendable() bool {
	if f.spec.Kind != TrafficFile {
		return true
	}
	return f.confirmedBytes < f.spec.FileBytes
}

// flowSendTick is the closure-free body of the per-packet send timer.
func flowSendTick(arg any) {
	f := arg.(*Flow)
	f.emitOne()
	f.scheduleNext()
}

// scheduleNext arms the next packet transmission for self-clocked
// sources.
func (f *Flow) scheduleNext() {
	if !f.active || f.spec.Kind == TrafficExternal {
		return
	}
	if !f.fileSendable() {
		return
	}
	pktBits := float64(f.em.cfg.packetBytes()) * 8
	var gap float64
	if f.em.cfg.DisableCC {
		// Without congestion control the source keeps its first hops
		// backlogged: inject as fast as the MAC drains (poll at a fine
		// interval and top the queues up).
		gap = 0.0005
	} else {
		rate := f.TotalRate() * 1e6 // bits per second
		if rate < 1e4 {
			rate = 1e4
		}
		gap = pktBits / rate
	}
	f.sendTimer = f.em.Engine.ScheduleFunc(gap, flowSendTick, f)
}

// emitOne sends one packet (or tops up queues in w/o-CC mode).
func (f *Flow) emitOne() {
	if !f.active {
		return
	}
	if f.em.cfg.DisableCC {
		// Keep up to 4 packets queued per route's first hop. A dead first
		// hop rejects every send without the queue growing — skip it, or
		// the top-up loop would spin forever (scenario link failures hit
		// this; w/o-CC sources just blast into the void and lose).
		for r := range f.routes {
			if f.em.Net.Link(f.firstLink[r]).Capacity <= 0 {
				continue
			}
			for f.em.MAC.QueueLen(f.firstLink[r]) < 4 {
				if !f.fileSendable() {
					return
				}
				f.sendPacket(r, f.em.cfg.packetBytes(), nil)
			}
		}
		return
	}
	if !f.fileSendable() {
		return
	}
	r := f.pickRoute()
	f.sendPacket(r, f.em.cfg.packetBytes(), nil)
}

// pickRoute samples a route with probability proportional to x_r (§6.1:
// "each packet is sent over route r with a probability proportional to
// the rate x_r").
func (f *Flow) pickRoute() int {
	total := f.TotalRate()
	if total <= 0 {
		return 0
	}
	u := f.em.rng.Float64() * total
	for i, v := range f.x {
		u -= v
		if u <= 0 {
			return i
		}
	}
	return len(f.x) - 1
}

// shapedPkt is a packet waiting for tokens in the shaping queue.
type shapedPkt struct {
	bytes int
	meta  interface{}
}

// shapeQueueLimit bounds the shaping queue ahead of the congestion
// controller's drop decision (packets).
const shapeQueueLimit = 30

// Push injects an externally produced packet (TrafficExternal flows, e.g.
// TCP segments). The congestion controller shapes with a token bucket at
// rate Σx; a short queue absorbs transport bursts, and packets beyond it
// are dropped with ErrOverRate (which TCP perceives as congestion, §6.4).
func (f *Flow) Push(payloadBytes int, meta interface{}) error {
	if !f.active {
		return errors.New("node: flow not active")
	}
	if !f.em.cfg.DisableCC {
		f.refillTokens()
		need := float64(payloadBytes) * 8
		if len(f.shapeQ) > 0 || f.tokens < need {
			if len(f.shapeQ) >= shapeQueueLimit {
				return ErrOverRate
			}
			f.shapeQ = append(f.shapeQ, shapedPkt{payloadBytes, meta})
			f.armDrain()
			return nil
		}
		f.tokens -= need
	}
	f.sendPacket(f.pickRoute(), payloadBytes, meta)
	return nil
}

// armDrain schedules the shaping queue to drain when enough tokens have
// accumulated for its head packet.
func (f *Flow) armDrain() {
	if f.drainTimer.Active() || len(f.shapeQ) == 0 {
		return
	}
	need := float64(f.shapeQ[0].bytes) * 8
	rate := f.TotalRate() * 1e6
	if rate < 1e4 {
		rate = 1e4
	}
	wait := (need - f.tokens) / rate
	// Floor the wait at 0.1 ms: a float-precision-zero wait would respin
	// the drain at the same virtual instant forever.
	if wait < 1e-4 {
		wait = 1e-4
	}
	f.drainTimer = f.em.Engine.ScheduleFunc(wait, flowDrain, f)
}

func flowDrain(arg any) { arg.(*Flow).drainShaped() }

func (f *Flow) drainShaped() {
	f.drainTimer = sim.TimerRef{}
	if !f.active {
		f.shapeQ = nil
		return
	}
	f.refillTokens()
	for len(f.shapeQ) > 0 {
		p := f.shapeQ[0]
		need := float64(p.bytes) * 8
		if f.tokens < need {
			break
		}
		f.tokens -= need
		f.shapeQ = f.shapeQ[1:]
		f.sendPacket(f.pickRoute(), p.bytes, p.meta)
	}
	f.armDrain()
}

func (f *Flow) refillTokens() {
	now := f.em.Engine.Now()
	dt := now - f.lastRefil
	if dt <= 0 {
		return
	}
	f.lastRefil = now
	f.tokens += f.TotalRate() * 1e6 * dt
	// Bucket depth: 100 ms worth of traffic (one ack interval).
	max := f.TotalRate() * 1e6 * 0.1
	if max < 8*12000 {
		max = 8 * 12000
	}
	if f.tokens > max {
		f.tokens = max
	}
}

// sendPacket builds one data frame on route r in a pooled packet and
// offers it to the MAC. The pool owns the frame from the moment it is
// handed to sendOnLink: a failed send already released it through the
// MAC's drop callback.
func (f *Flow) sendPacket(r int, payloadBytes int, meta interface{}) {
	p := f.em.newPkt()
	df := &p.frame
	df.Src = f.Src
	df.Dst = f.Dst
	df.FlowID = f.ID
	df.RouteIdx = uint8(r)
	df.Hop = 0
	df.SentAt = f.em.Engine.Now()
	df.PayloadLen = uint16(payloadBytes)
	df.Header.Seq = f.seq
	f.seq++
	if err := df.Header.SetRoute(f.ifaceIDs[r]); err != nil {
		panic(err) // routes validated at AddFlow
	}
	p.meta = meta
	first := f.firstLink[r]
	f.agent.addPrice(first, &df.Header)
	bits := frameBits(df)
	if f.agent.sendOnLink(first, bits, p) {
		f.sentBits += bits
		f.sentPayload += int64(payloadBytes)
		f.RouteSentBits[r] += bits
		f.routeLogs[r].add(f.em.Engine.Now(), bits)
		f.rateLog.add(f.em.Engine.Now(), bits)
	}
}

// seedRates warm-starts the per-route rates at 85 %% of the sequential
// residual achievable rate R(P) (the §3.2 exploration-tree loading the
// source computed during route selection), floored at the configured
// initial rate. Warm starting reproduces the paper's behaviour of
// reaching near-target rates within seconds (Figure 9/10-right); the
// controller then trims against the measured prices.
func (f *Flow) seedRates() {
	f.seqBuf = routing.AppendSequentialRates(f.em.Net, f.routes, f.seqBuf[:0])
	for i, r := range f.seqBuf {
		x := 0.85 * r
		if x < f.em.cfg.initialRate() {
			x = f.em.cfg.initialRate()
		}
		f.x[i] = x
		f.xbar[i] = x
	}
}

// onAck applies the §4.3 proximal update per acknowledged route and
// advances the reliable-transfer confirmation counter.
func (f *Flow) onAck(ack *wire.AckFrame) {
	f.lastAckAt = f.em.Engine.Now()
	for _, ra := range ack.Routes {
		f.confirmedBytes += int64(ra.Delivered)
	}
	if f.em.cfg.DisableCC {
		return
	}
	alpha := f.tuner.Alpha()
	scale := f.em.cfg.utilityScale()
	total := f.TotalRate()
	for _, ra := range ack.Routes {
		r := int(ra.RouteIdx)
		if r >= len(f.x) {
			continue
		}
		q := ra.QR
		f.lastQR[r] = q
		inner := f.xbar[r] + scale*(f.util.Prime(total)-q)
		if inner < 0 {
			inner = 0
		}
		nx := (1-alpha)*f.x[r] + alpha*inner
		// Cap at the route's estimated bottleneck to suppress transients.
		if cap := f.routeCap(r); nx > cap {
			nx = cap
		}
		f.xbar[r] = (1-alpha)*f.xbar[r] + alpha*f.x[r]
		f.x[r] = nx
	}
	f.tuner.Observe(f.TotalRate())
}

func (f *Flow) routeCap(r int) float64 {
	cap := math.Inf(1)
	for _, l := range f.routes[r] {
		if c := f.em.linkEstimate(l); c < cap {
			cap = c
		}
	}
	return cap
}

// SentRateSeries returns the injected rate (Mbps) in bins of binSeconds.
func (f *Flow) SentRateSeries(binSeconds float64) ([]float64, []float64) {
	return f.rateLog.series(binSeconds)
}

// RouteRateSeries returns the per-route injected rate series.
func (f *Flow) RouteRateSeries(r int, binSeconds float64) ([]float64, []float64) {
	return f.routeLogs[r].series(binSeconds)
}
