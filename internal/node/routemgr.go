package node

import (
	"errors"
	"math"

	"repro/internal/congestion"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/wire"
)

// ErrNoRoutes is returned by SetRoutes for an empty route set.
var ErrNoRoutes = errors.New("node: flow needs at least one route")

// RouteManager implements the route-maintenance policy of §3.2: "the
// routes need to be recomputed only when there is a link failure or a
// large capacity variation, which occurs infrequently". It periodically
// rebuilds the source's view of the network from the capacity estimates
// (on the real system these are disseminated link-state style; here the
// estimates live at each agent) and recomputes the multipath combination;
// when a route died or the achievable total moved by more than the
// threshold, the flow's routes are swapped live.
type RouteManager struct {
	em   *Emulation
	flow *Flow
	cfg  routing.Config

	// Threshold is the relative change of the combination total that
	// triggers a reroute (default 0.3).
	Threshold float64
	// Interval is the check period in seconds (default 2; route checks
	// are cheap relative to their ~minutes-scale trigger frequency).
	Interval float64

	// Reroutes counts route swaps (for tests and logs).
	Reroutes int

	lastTotal float64
	periodic  interface{ Stop() }
}

// ManageRoutes starts periodic route maintenance for a flow.
func (e *Emulation) ManageRoutes(f *Flow, cfg routing.Config) *RouteManager {
	m := &RouteManager{em: e, flow: f, cfg: cfg, Threshold: 0.3, Interval: 2}
	m.lastTotal = m.currentTotal(e.EstimatedNetwork())
	m.periodic = e.Engine.Every(m.Interval, m.check)
	return m
}

// Stop ends maintenance.
func (m *RouteManager) Stop() { m.periodic.Stop() }

// EstimatedNetwork assembles the routing view of the network from the
// per-agent capacity estimates: the capacities every EMPoWER node would
// advertise in its link state. Failed links appear with zero capacity.
func (e *Emulation) EstimatedNetwork() *graph.Network {
	est := e.Net.Clone()
	for l := 0; l < est.NumLinks(); l++ {
		est.Link(graph.LinkID(l)).Capacity = e.linkEstimate(graph.LinkID(l))
	}
	return est
}

// currentTotal evaluates the flow's current routes on a network view:
// the combination total of loading each route in sequence on the
// residual graph (the §3.2 accounting).
func (m *RouteManager) currentTotal(view *graph.Network) float64 {
	var total float64
	for _, r := range routing.SequentialRates(view, m.flow.routes) {
		if r > 0 {
			total += r
		}
	}
	return total
}

// check runs one maintenance round.
func (m *RouteManager) check() {
	if !m.flow.active {
		return
	}
	view := m.em.EstimatedNetwork()
	cur := m.currentTotal(view)
	dead := false
	for _, p := range m.flow.routes {
		if routing.RatePath(view, p) <= 0 {
			dead = true
			break
		}
	}
	if !dead && m.lastTotal > 0 {
		rel := math.Abs(cur-m.lastTotal) / m.lastTotal
		if rel < m.Threshold {
			return // no large variation: keep the routes (the paper's policy)
		}
	}
	comb := routing.Multipath(view, m.flow.Src, m.flow.Dst, m.cfg)
	if len(comb.Paths) == 0 {
		return // nothing better known; keep limping
	}
	if !dead && comb.Total <= cur*(1+m.Threshold/2) {
		// A variation occurred but the recomputed routes are not
		// materially better; avoid churning.
		m.lastTotal = cur
		return
	}
	if err := m.flow.SetRoutes(comb.Paths); err != nil {
		return
	}
	m.Reroutes++
	m.lastTotal = comb.Total
}

// SetRoutes swaps the flow's route set live: congestion-control state is
// re-seeded (the controller reconverges within tens of slots) and the
// sequence space continues, so the destination's reordering is
// unaffected. Routes longer than the header limit are rejected.
func (f *Flow) SetRoutes(routes []graph.Path) error {
	if len(routes) == 0 {
		return ErrNoRoutes
	}
	var ifaceIDs [][]wire.InterfaceID
	var firsts []graph.LinkID
	for _, r := range routes {
		if err := f.em.Net.ValidatePath(r, f.Src, f.Dst); err != nil {
			return err
		}
		if len(r) > wire.MaxHops {
			return wire.ErrRouteTooLong
		}
		ids := make([]wire.InterfaceID, len(r))
		for i, l := range r {
			link := f.em.Net.Link(l)
			ids[i] = wire.HashInterface(link.To, link.Tech)
		}
		ifaceIDs = append(ifaceIDs, ids)
		firsts = append(firsts, r[0])
	}
	f.routes = append([]graph.Path(nil), routes...)
	f.ifaceIDs = ifaceIDs
	f.firstLink = firsts
	n := len(routes)
	f.x = make([]float64, n)
	f.xbar = make([]float64, n)
	f.lastQR = make([]float64, n)
	f.RouteSentBits = make([]float64, n)
	f.routeLogs = make([]*seriesLog, n)
	for i := range f.routeLogs {
		f.routeLogs[i] = newSeriesLog()
	}
	for i := range f.x {
		f.x[i] = f.em.cfg.initialRate()
	}
	longest := 0
	for _, r := range routes {
		if len(r) > longest {
			longest = len(r)
		}
	}
	f.tuner = congestion.NewAlphaTuner(f.em.cfg.flowAlphaBase(), n, longest)
	return nil
}
