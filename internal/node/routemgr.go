package node

import (
	"errors"
	"math"

	"repro/internal/congestion"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/wire"
)

// ErrNoRoutes is returned by SetRoutes for an empty route set.
var ErrNoRoutes = errors.New("node: flow needs at least one route")

// RouteManager implements the route-maintenance policy of §3.2: "the
// routes need to be recomputed only when there is a link failure or a
// large capacity variation, which occurs infrequently". It periodically
// rebuilds the source's view of the network from the capacity estimates
// (on the real system these are disseminated link-state style; here the
// estimates live at each agent) and recomputes the multipath combination;
// when a route died or the achievable total moved by more than the
// threshold, the flow's routes are swapped live.
type RouteManager struct {
	em   *Emulation
	flow *Flow
	cfg  routing.Config

	// Threshold is the relative change of the combination total that
	// triggers a reroute (default 0.3).
	Threshold float64
	// Interval is the check period in seconds (default 2; route checks
	// are cheap relative to their ~minutes-scale trigger frequency).
	Interval float64
	// Select overrides the route-selection procedure run on a reroute
	// (default: the §3.2 multipath combination with the manager's
	// routing configuration). Scheme sweeps use this so a single-path
	// scheme's manager recomputes a single path, not a combination.
	Select SelectFn

	// Reroutes counts route swaps (for tests and logs).
	Reroutes int

	lastTotal float64
	// seqBuf is scratch for the periodic sequential-rate evaluations, so
	// the 2 s maintenance rounds stay allocation-free.
	seqBuf []float64
	// lastNetTotal tracks the network-wide estimated capacity sum: the
	// cheap signal for "a large capacity variation occurred" somewhere
	// else than on the current routes — most importantly, a previously
	// failed link coming back, which the current routes' total cannot
	// see.
	lastNetTotal float64
	periodic     interface{ Stop() }
	fast         interface{ Stop() }
}

// SelectFn chooses a flow's route set on a network view.
type SelectFn func(view *graph.Network, src, dst graph.NodeID) []graph.Path

// ManageRoutes starts periodic route maintenance for a flow.
func (e *Emulation) ManageRoutes(f *Flow, cfg routing.Config) *RouteManager {
	if f.em != e {
		// Sharded dispatch: the manager's periodic checks must run on the
		// engine of the domain that owns the flow.
		return f.em.ManageRoutes(f, cfg)
	}
	m := &RouteManager{em: e, flow: f, cfg: cfg, Threshold: 0.3, Interval: 2}
	view := e.EstimatedNetwork()
	m.lastTotal = m.currentTotal(view)
	m.lastNetTotal = netCapacityTotal(view)
	m.periodic = e.Engine.Every(m.Interval, m.check)
	return m
}

// EnableFastFailover adds a lightweight dead-route check every `interval`
// seconds (default 0.25 when <= 0) on top of the periodic maintenance:
// the full §3.2 recomputation stays infrequent, but a route whose
// capacity estimate collapsed to zero — the estimator's failure signal —
// triggers an immediate reroute, so failover latency is governed by the
// estimation timeout (§6.1's hundreds of milliseconds) rather than the
// maintenance interval. Scenario engines enable this on the flows they
// manage.
func (m *RouteManager) EnableFastFailover(interval float64) {
	if interval <= 0 {
		interval = 0.25
	}
	if m.fast != nil {
		m.fast.Stop()
	}
	m.fast = m.em.Engine.Every(interval, m.failCheck)
}

// Stop ends maintenance.
func (m *RouteManager) Stop() {
	m.periodic.Stop()
	if m.fast != nil {
		m.fast.Stop()
	}
}

// CheckNow runs one maintenance round immediately (outside the periodic
// cadence) — for tests and event-driven callers.
func (m *RouteManager) CheckNow() { m.check() }

// failCheck is the fast path: recompute only when some current route is
// dead on the estimated view.
func (m *RouteManager) failCheck() {
	if !m.flow.active {
		return
	}
	view := m.em.EstimatedNetwork()
	for _, p := range m.flow.routes {
		if routing.RatePath(view, p) <= 0 {
			m.em.failovers++
			m.checkWith(view)
			return
		}
	}
}

// EstimatedNetwork assembles the routing view of the network from the
// per-agent capacity estimates: the capacities every EMPoWER node would
// advertise in its link state. Failed links appear with zero capacity.
func (e *Emulation) EstimatedNetwork() *graph.Network {
	est := e.Net.Clone()
	for l := 0; l < est.NumLinks(); l++ {
		est.Link(graph.LinkID(l)).Capacity = e.linkEstimate(graph.LinkID(l))
	}
	return est
}

// currentTotal evaluates the flow's current routes on a network view:
// the combination total of loading each route in sequence on the
// residual graph (the §3.2 accounting).
func (m *RouteManager) currentTotal(view *graph.Network) float64 {
	var total float64
	m.seqBuf = routing.AppendSequentialRates(view, m.flow.routes, m.seqBuf[:0])
	for _, r := range m.seqBuf {
		if r > 0 {
			total += r
		}
	}
	return total
}

// check runs one maintenance round.
func (m *RouteManager) check() {
	if !m.flow.active {
		return
	}
	m.checkWith(m.em.EstimatedNetwork())
}

// checkWith runs one maintenance round on a prepared network view.
func (m *RouteManager) checkWith(view *graph.Network) {
	cur := m.currentTotal(view)
	netTotal := netCapacityTotal(view)
	dead := false
	for _, p := range m.flow.routes {
		if routing.RatePath(view, p) <= 0 {
			dead = true
			break
		}
	}
	if !dead && m.lastTotal > 0 {
		relRoutes := math.Abs(cur-m.lastTotal) / m.lastTotal
		relNet := 0.0
		if m.lastNetTotal > 0 {
			relNet = math.Abs(netTotal-m.lastNetTotal) / m.lastNetTotal
		}
		// The paper's policy: recompute only on failure or large capacity
		// variation. The variation is watched both on the current routes
		// and network-wide — a recovered link elsewhere (e.g. the medium
		// that failed a minute ago coming back) moves only the latter.
		if relRoutes < m.Threshold && relNet < m.Threshold/2 {
			return
		}
	}
	paths := m.selectRoutes(view)
	if len(paths) == 0 {
		return // nothing better known; keep limping
	}
	total := 0.0
	m.seqBuf = routing.AppendSequentialRates(view, paths, m.seqBuf[:0])
	for _, r := range m.seqBuf {
		if r > 0 {
			total += r
		}
	}
	if !dead && total <= cur*(1+m.Threshold/2) {
		// A variation occurred but the recomputed routes are not
		// materially better; avoid churning.
		m.lastTotal = cur
		m.lastNetTotal = netTotal
		return
	}
	if err := m.flow.setRoutesOn(view, paths); err != nil {
		return
	}
	m.Reroutes++
	m.em.reroutes++
	if rec := m.em.Engine.Recorder(); rec != nil {
		rec.Record(m.em.Engine.Now(), obs.RecReroute, int32(m.flow.ID), int32(len(paths)), 0)
	}
	m.lastTotal = total
	m.lastNetTotal = netTotal
}

// selectRoutes runs the configured route selection on a view.
func (m *RouteManager) selectRoutes(view *graph.Network) []graph.Path {
	if m.Select != nil {
		return m.Select(view, m.flow.Src, m.flow.Dst)
	}
	return routing.Multipath(view, m.flow.Src, m.flow.Dst, m.cfg).Paths
}

// netCapacityTotal sums the view's link capacities — the cheap O(L)
// signal for network-wide capacity variation.
func netCapacityTotal(view *graph.Network) float64 {
	var s float64
	for l := 0; l < view.NumLinks(); l++ {
		s += view.Link(graph.LinkID(l)).Capacity
	}
	return s
}

// SetRoutes swaps the flow's route set live: congestion-control state is
// re-seeded (the controller reconverges within tens of slots) and the
// sequence space continues, so the destination's reordering is
// unaffected. Routes longer than the header limit are rejected.
func (f *Flow) SetRoutes(routes []graph.Path) error {
	return f.setRoutesOn(f.em.EstimatedNetwork(), routes)
}

// setRoutesOn is SetRoutes with the warm-start view supplied by the
// caller — the route manager already holds the estimated network it
// selected the routes on, so it must not be cloned a second time.
func (f *Flow) setRoutesOn(view *graph.Network, routes []graph.Path) error {
	if len(routes) == 0 {
		return ErrNoRoutes
	}
	var ifaceIDs [][]wire.InterfaceID
	var firsts []graph.LinkID
	for _, r := range routes {
		if err := f.em.Net.ValidatePath(r, f.Src, f.Dst); err != nil {
			return err
		}
		if len(r) > wire.MaxHops {
			return wire.ErrRouteTooLong
		}
		ids := make([]wire.InterfaceID, len(r))
		for i, l := range r {
			link := f.em.Net.Link(l)
			ids[i] = wire.HashInterface(link.To, link.Tech)
		}
		ifaceIDs = append(ifaceIDs, ids)
		firsts = append(firsts, r[0])
	}
	f.routes = append([]graph.Path(nil), routes...)
	f.ifaceIDs = ifaceIDs
	f.firstLink = firsts
	n := len(routes)
	f.x = make([]float64, n)
	f.xbar = make([]float64, n)
	f.lastQR = make([]float64, n)
	f.RouteSentBits = make([]float64, n)
	f.routeLogs = make([]*seriesLog, n)
	for i := range f.routeLogs {
		f.routeLogs[i] = newSeriesLog(f.em.cfg.ExpectedDuration)
	}
	// Warm-start the rates from the estimated network — the link state
	// the source actually knows — like seedRates does at flow creation
	// from ground truth. A reroute then costs tens of controller slots
	// instead of a from-scratch ramp, which is what makes mid-failure
	// reroutes (the §3.2 policy) non-disruptive.
	f.seqBuf = routing.AppendSequentialRates(view, f.routes, f.seqBuf[:0])
	for i, r := range f.seqBuf {
		x := 0.85 * r
		if x < f.em.cfg.initialRate() {
			x = f.em.cfg.initialRate()
		}
		f.x[i] = x
		f.xbar[i] = x
	}
	longest := 0
	for _, r := range routes {
		if len(r) > longest {
			longest = len(r)
		}
	}
	f.tuner = congestion.NewAlphaTuner(f.em.cfg.flowAlphaBase(), n, longest)
	return nil
}
