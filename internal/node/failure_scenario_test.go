package node_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/scenario"
)

// TestLinkFailureShiftsTraffic kills one of two parallel routes mid-run
// through the scenario engine and restores it later: the congestion
// controller must move the flow onto the surviving route (the §6.1 claim
// that traffic-driven estimation detects failures within hundreds of
// milliseconds and the controller adapts) and move traffic back after
// recovery. Formerly this test poked net.Link(plc).Capacity = 0 by hand;
// it now runs on the declarative scenario API, which also exercises the
// MAC queue flush and estimator resume on the way.
func TestLinkFailureShiftsTraffic(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	plc := b.AddLink(s, d, graph.TechPLC, 40)
	wifi := b.AddLink(s, d, graph.TechWiFi, 40)
	b.AddLink(d, s, graph.TechPLC, 40)
	b.AddLink(d, s, graph.TechWiFi, 40)
	net := b.Build()

	em := node.NewEmulation(net, node.Config{Estimation: true}, 31)
	fl, err := em.AddFlow(node.FlowSpec{
		Src: s, Dst: d, Routes: []graph.Path{{plc}, {wifi}}, Kind: node.TrafficSaturated,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The PLC link dies at 30 s (e.g. a noisy appliance) and recovers at
	// 150 s. The flow itself is pre-registered above (the scenario only
	// drives the dynamics), so the scenario carries no flows.
	sc := scenario.New("plc-outage", 270)
	sc.FailLink(30, scenario.Link("s", "d", graph.TechPLC))
	sc.RecoverLink(150, scenario.Link("s", "d", graph.TechPLC))
	if _, err := scenario.Bind(em, sc, 1, scenario.Options{Strict: true}); err != nil {
		t.Fatal(err)
	}

	em.Run(30)
	beforePLC := fl.Rates()[0]
	if beforePLC < 20 {
		t.Fatalf("PLC route should carry ~40 before failure, got %.2f", beforePLC)
	}

	// Failure phase: traffic must shift onto WiFi.
	em.Run(150)
	after := fl.Rates()
	if after[0] > 2 {
		t.Errorf("PLC route rate %.2f after failure, want ~0", after[0])
	}
	if after[1] < 25 {
		t.Errorf("WiFi route rate %.2f after failure, want ~40", after[1])
	}
	sink := em.Agent(d).Sinks()[0]
	if rate := sink.MeanRate(130, 150); rate < 25 {
		t.Errorf("delivered %.2f Mbps after failover, want most of the WiFi capacity", rate)
	}

	// Recovery phase: capacity restored, traffic must shift back.
	em.Run(270)
	recovered := fl.Rates()
	if recovered[0] < 20 {
		t.Errorf("PLC route rate %.2f after recovery, want most of its 40 Mbps back", recovered[0])
	}
	if rate := sink.MeanRate(250, 270); rate < 50 {
		t.Errorf("delivered %.2f Mbps after recovery, want both routes' worth", rate)
	}
}
