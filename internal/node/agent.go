package node

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/linkest"
	"repro/internal/mac"
	"repro/internal/wire"
)

// neighborReport is a cached price broadcast from one neighbor on one
// technology. Reports live in a dense per-agent [tech][node] table;
// heardAt < 0 marks a slot that never heard anything.
type neighborReport struct {
	airtime  float64
	gammaSum float64
	tcp      bool
	heardAt  float64
}

// Agent is the per-node EMPoWER daemon: forwarding, price accounting, and
// the endpoints of any flows sourced at or destined to this node. Its
// per-packet state — γ duals, offered bits, neighbor reports, estimators
// — is dense (indexed by link, technology and node), so the forwarding
// and price paths never touch a map or allocate.
type Agent struct {
	id graph.NodeID
	em *Emulation

	// ifaceOut maps the layer-2.5 interface ID of a neighbor's ingress
	// interface to this node's egress link reaching it.
	ifaceOut map[wire.InterfaceID]graph.LinkID

	// egress caches the node's egress links (the Net.Out order every
	// iteration below follows), techs the first-seen egress technologies.
	egress []graph.LinkID
	techs  []graph.Tech

	// gamma is the dual variable per egress link, dense by LinkID.
	gamma []float64
	// offeredBits accumulates bits offered to the MAC per egress link
	// during the current price interval (airtime-demand measurement).
	offeredBits []float64

	// reports[tech][origin] caches overheard price broadcasts.
	reports [][]neighborReport

	// est tracks per-egress-link capacity estimators, dense by LinkID
	// (nil for links not owned by this node).
	est []*linkest.Estimator

	// extBusy tracks carrier-sensed external airtime, dense by
	// technology; sense[tech] is the precomputed carrier-sense set.
	extBusy []externalBusy
	sense   [][]graph.LinkID
	// busyScratch accumulates per-transmitter busy airtime inside
	// measureExternal, dense by NodeID.
	busyScratch []float64

	// priceFrame is the scratch frame priceTick broadcasts from.
	priceFrame wire.PriceFrame

	// Flow endpoints.
	source  map[uint16]*Flow  // flows sourced here, by flow ID
	sinks   map[sinkKey]*Sink // flows terminating here
	tcpSeen bool              // a TCP flow touches this node (δ signal)

	// Forwarding statistics. Every data frame this agent ingests is
	// counted in DataIn and ends up in exactly one of Consumed (local
	// destination), Forwarded (relayed) or RouteDrops (malformed or
	// stale route) — the relay flow-conservation invariant.
	DataIn     int
	Forwarded  int
	Consumed   int
	RouteDrops int
}

type sinkKey struct {
	src    graph.NodeID
	flowID uint16
}

func newAgent(em *Emulation, id graph.NodeID) *Agent {
	a := &Agent{
		id:          id,
		em:          em,
		ifaceOut:    map[wire.InterfaceID]graph.LinkID{},
		gamma:       make([]float64, em.Net.NumLinks()),
		offeredBits: make([]float64, em.Net.NumLinks()),
		est:         make([]*linkest.Estimator, em.Net.NumLinks()),
		reports:     make([][]neighborReport, em.numTechs),
		extBusy:     make([]externalBusy, em.numTechs),
		sense:       make([][]graph.LinkID, em.numTechs),
		busyScratch: make([]float64, em.Net.NumNodes()),
		source:      map[uint16]*Flow{},
		sinks:       map[sinkKey]*Sink{},
	}
	a.egress = em.Net.Out(id)
	seen := make([]bool, em.numTechs)
	for _, l := range a.egress {
		link := em.Net.Link(l)
		a.ifaceOut[wire.HashInterface(link.To, link.Tech)] = l
		a.est[l] = linkest.New(linkest.Config{})
		if !seen[link.Tech] {
			seen[link.Tech] = true
			a.techs = append(a.techs, link.Tech)
		}
	}
	for t := range a.reports {
		a.reports[t] = make([]neighborReport, em.Net.NumNodes())
		for n := range a.reports[t] {
			a.reports[t][n].heardAt = -1
		}
		a.sense[t] = a.senseSet(graph.Tech(t))
		a.extBusy[t].lastBusy = make([]float64, em.Net.NumLinks())
	}
	// Probe-mode estimation keeps estimates fresh on idle links.
	if em.cfg.Estimation {
		em.Engine.Every(a.est0ProbeInterval(), a.probeTick)
	}
	return a
}

func (a *Agent) est0ProbeInterval() float64 {
	for _, e := range a.est {
		if e != nil {
			return e.ProbeInterval()
		}
	}
	return 0.25
}

// probeTick samples every idle egress link at probe precision. Links are
// visited in the network's egress order, not map order: each sample
// draws from the emulation's RNG, so the visit order must be a pure
// function of the seed for runs to be reproducible.
func (a *Agent) probeTick() {
	now := a.em.Engine.Now()
	for _, l := range a.egress {
		e := a.est[l]
		if e.Mode() == linkest.ModeProbe {
			cap := a.em.effectiveCapacity(l)
			if cap > 0 {
				e.Observe(e.Sample(cap, a.em.rng), now)
			}
		}
	}
}

// sendOnLink offers a frame of the given size to the MAC on egress link
// l, recording airtime demand and feeding traffic-mode capacity
// estimation.
func (a *Agent) sendOnLink(l graph.LinkID, bits float64, payload interface{}) bool {
	a.offeredBits[l] += bits
	if est := a.est[l]; est != nil && a.em.cfg.Estimation {
		est.SetMode(linkest.ModeTraffic)
		// Sample the effective capacity c·(1−p): under gray failure the
		// estimate (and with it congestion control and failover) tracks
		// what the link actually delivers, not its nominal rate.
		cap := a.em.effectiveCapacity(l)
		if cap > 0 {
			est.Observe(est.Sample(cap, a.em.rng), a.em.Engine.Now())
		}
	}
	return a.em.MAC.Send(l, bits, payload)
}

// receive handles a MAC delivery on ingress link l.
func (a *Agent) receive(l graph.LinkID, pkt mac.Packet) {
	switch f := pkt.Payload.(type) {
	case *dataPkt:
		a.onData(f)
	case *ackHop:
		// Acknowledgement in transit on its reverse path: forward the
		// next hop (or hand to the flow source at the end of the path).
		f.sink.forwardAck(f.ack, f.path, f.hop+1)
		a.em.freeAckHop(f)
	default:
		// Unknown payloads are dropped silently (future frame types).
	}
}

// onData implements the Check-Dst / Fwd pipeline of Figure 2. It owns
// the pooled frame: consumption and drops free it, a forward hands it to
// the MAC (whose Drop callback frees it on failure).
func (a *Agent) onData(p *dataPkt) {
	f := &p.frame
	a.DataIn++
	if f.Dst == a.id {
		a.Consumed++
		a.sinkFor(f.Src, f.FlowID).onData(p)
		return
	}
	// Forward to the next hop.
	f.Hop++
	if int(f.Hop) >= f.Header.RouteLen() {
		a.RouteDrops++
		a.em.freePkt(p)
		return // malformed route; drop
	}
	next, ok := a.ifaceOut[f.Header.Route[f.Hop]]
	if !ok {
		a.RouteDrops++
		a.em.freePkt(p)
		return // we are not on this route; drop
	}
	a.addPrice(next, &f.Header)
	a.Forwarded++
	a.sendOnLink(next, frameBits(f), p)
}

// addPrice adds d_l · Σ_{i∈I_l} γ_i to the header's q_r field (§4.2).
func (a *Agent) addPrice(l graph.LinkID, h *wire.Header) {
	h.AddQR(a.priceTerm(l))
}

// priceTerm computes d_l · Σ_{i∈I_l} γ_i from local state: the node's own
// γ over its egress links of the link's technology plus the γ sums
// reported by neighbors on that technology.
func (a *Agent) priceTerm(l graph.LinkID) float64 {
	tech := a.em.Net.Link(l).Tech
	gsum := a.ownGammaSum(tech) + a.freshGammaSum(tech, a.em.Engine.Now())
	return a.em.dEstimate(l) * gsum
}

// freshGammaSum accumulates the unexpired neighbor reports' γ sums in
// ascending node order. Float addition is not associative, so the order
// must be reproducible for runs to be seed-deterministic; the dense
// table gives ascending order for free. This runs per forwarded packet —
// a plain loop, no callback, no allocation.
func (a *Agent) freshGammaSum(tech graph.Tech, now float64) float64 {
	if int(tech) >= len(a.reports) {
		return 0
	}
	var s float64
	stale := a.em.cfg.reportStale()
	reps := a.reports[tech]
	for n := range reps {
		if rep := &reps[n]; rep.heardAt >= 0 && now-rep.heardAt <= stale {
			s += rep.gammaSum
		}
	}
	return s
}

// freshAirtimeSum is freshGammaSum for the reports' airtime claims.
func (a *Agent) freshAirtimeSum(tech graph.Tech, now float64) float64 {
	if int(tech) >= len(a.reports) {
		return 0
	}
	var s float64
	stale := a.em.cfg.reportStale()
	reps := a.reports[tech]
	for n := range reps {
		if rep := &reps[n]; rep.heardAt >= 0 && now-rep.heardAt <= stale {
			s += rep.airtime
		}
	}
	return s
}

func (a *Agent) ownGammaSum(tech graph.Tech) float64 {
	var s float64
	for _, l := range a.egress {
		if a.em.Net.Link(l).Tech == tech {
			s += a.gamma[l]
		}
	}
	return s
}

// ownAirtime returns the node's aggregate airtime demand on a technology
// over the last price interval.
func (a *Agent) ownAirtime(tech graph.Tech) float64 {
	var s float64
	for _, l := range a.egress {
		if a.em.Net.Link(l).Tech != tech {
			continue
		}
		c := a.em.linkEstimate(l)
		if c > 0 {
			// bits per interval -> Mbps -> airtime fraction.
			rate := a.offeredBits[l] / a.em.cfg.priceInterval() / 1e6
			s += rate / c
		}
	}
	return s
}

// priceTick runs every price interval: measure airtime, update γ per
// egress link (eq. 8), broadcast the per-technology aggregates, and reset
// the measurement window.
func (a *Agent) priceTick() {
	now := a.em.Engine.Now()
	limit := 1 - a.effectiveDelta()
	// Technologies in first-seen egress order (precomputed at
	// construction): the per-tech price broadcasts schedule engine
	// events, so their order must be reproducible.
	for _, tech := range a.techs {
		// y for this node's links of `tech`: own demand + fresh reports +
		// carrier-sensed external airtime (§4.3).
		y := a.ownAirtime(tech)
		y += a.freshAirtimeSum(tech, now)
		y += a.measureExternal(tech)
		for _, l := range a.egress {
			if a.em.Net.Link(l).Tech != tech {
				continue
			}
			g := a.gamma[l] + a.em.cfg.gammaAlpha()*(y-limit)
			if g < 0 {
				g = 0
			}
			a.gamma[l] = g
		}
		a.priceFrame = wire.PriceFrame{
			Origin:     a.id,
			Tech:       tech,
			Airtime:    a.ownAirtime(tech),
			GammaSum:   a.ownGammaSum(tech),
			TCPPresent: a.tcpSeen,
		}
		a.em.broadcastPrice(a.id, &a.priceFrame)
	}
	// Idle egress links fall back to probe-mode estimation (checked
	// before the counters reset).
	if a.em.cfg.Estimation {
		for _, l := range a.egress {
			if est := a.est[l]; a.offeredBits[l] == 0 && est.Mode() == linkest.ModeTraffic {
				est.SetMode(linkest.ModeProbe)
			}
		}
	}
	for _, l := range a.egress {
		a.offeredBits[l] = 0
	}
}

// effectiveDelta returns δ, raised to the TCP value when a TCP flow was
// signalled in this node's contention domain (§6.4).
func (a *Agent) effectiveDelta() float64 {
	d := a.em.cfg.Delta
	if a.tcpSeen && d < tcpDelta {
		return tcpDelta
	}
	return d
}

// tcpDelta is the §6.4 constraint margin for TCP traffic.
const tcpDelta = 0.3

// onPrice caches a neighbor's broadcast.
func (a *Agent) onPrice(f *wire.PriceFrame) {
	if int(f.Tech) >= len(a.reports) || int(f.Origin) >= len(a.reports[f.Tech]) {
		return // technology or node outside this network; ignore
	}
	rep := &a.reports[f.Tech][f.Origin]
	rep.airtime = f.Airtime
	rep.gammaSum = f.GammaSum
	rep.tcp = f.TCPPresent
	rep.heardAt = a.em.Engine.Now()
	if f.TCPPresent {
		a.tcpSeen = true
	}
}

// onAck feeds an acknowledgement back into the flow it belongs to.
func (a *Agent) onAck(f *wire.AckFrame) {
	if f.Src != a.id {
		return // not ours (acks are source-routed; shouldn't happen)
	}
	if fl := a.source[f.FlowID]; fl != nil {
		fl.onAck(f)
	}
}

// sinkFor returns (creating on demand) the sink state of a flow
// terminating here.
func (a *Agent) sinkFor(src graph.NodeID, flowID uint16) *Sink {
	k := sinkKey{src, flowID}
	s := a.sinks[k]
	if s == nil {
		s = newSink(a, src, flowID)
		a.sinks[k] = s
		a.em.Engine.Every(a.em.cfg.ackInterval(), s.ackTick)
	}
	return s
}

// SinkFor returns (creating on demand) the sink of the flow identified by
// its source node and flow ID — the hook point for transport receivers.
func (a *Agent) SinkFor(src graph.NodeID, flowID uint16) *Sink {
	return a.sinkFor(src, flowID)
}

// PeekSink returns the sink of the identified flow without creating it —
// the read-only form for observers (SinkFor schedules an ack tick on
// creation, which would perturb the trajectory under observation).
func (a *Agent) PeekSink(src graph.NodeID, flowID uint16) *Sink {
	return a.sinks[sinkKey{src, flowID}]
}

// Sinks lists the sinks terminating at this node (for measurements),
// ordered by (source node, flow ID) so callers that index into the
// result select the same sink every run.
func (a *Agent) Sinks() []*Sink {
	out := make([]*Sink, 0, len(a.sinks))
	for _, s := range a.sinks {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		return out[i].flowID < out[j].flowID
	})
	return out
}

// Gamma exposes the dual variable of an egress link (for tests).
func (a *Agent) Gamma(l graph.LinkID) float64 { return a.gamma[l] }

// frameBits returns the on-air size of a data frame in bits.
func frameBits(f *wire.DataFrame) float64 {
	return float64(f.WireLen()) * 8
}

// ackBits returns the on-air size of an ack frame in bits.
func ackBits(f *wire.AckFrame) float64 {
	return float64(f.WireLen()+18) * 8 // plus an Ethernet-ish envelope
}
