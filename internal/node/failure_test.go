package node

import (
	"testing"

	"repro/internal/graph"
)

// TestLinkFailureShiftsTraffic lives in failure_scenario_test.go
// (package node_test): it runs on the scenario API, which this package
// cannot import without a cycle.

// TestCapacityDropAdapts halves a link's capacity mid-run; the rate must
// follow it down without sustained overload.
func TestCapacityDropAdapts(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechWiFi)
	l := b.AddLink(s, d, graph.TechWiFi, 40)
	b.AddLink(d, s, graph.TechWiFi, 40)
	net := b.Build()

	em := NewEmulation(net, Config{Estimation: true}, 32)
	fl, err := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{l}}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	if fl.TotalRate() < 30 {
		t.Fatalf("rate %.2f before the drop, want ~40", fl.TotalRate())
	}
	em.Engine.At(30, func() { em.SetLinkCapacity(l, 20) })
	em.Run(90)
	if r := fl.TotalRate(); r < 14 || r > 22 {
		t.Errorf("rate %.2f after capacity drop to 20, want ~18-20", r)
	}
	sink := em.Agent(d).Sinks()[0]
	lossFrac := float64(sink.Lost) / float64(sink.TotalPackets+sink.Lost+1)
	if lossFrac > 0.15 {
		t.Errorf("loss fraction %.3f during adaptation too high", lossFrac)
	}
}

// TestCapacityRecoveryAdaptsUp restores capacity and expects the rate to
// climb back.
func TestCapacityRecoveryAdaptsUp(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechWiFi)
	l := b.AddLink(s, d, graph.TechWiFi, 10)
	b.AddLink(d, s, graph.TechWiFi, 10)
	net := b.Build()

	em := NewEmulation(net, Config{Estimation: true}, 33)
	fl, _ := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{l}}, Kind: TrafficSaturated}, 0)
	em.Run(20)
	em.Engine.At(20, func() { em.SetLinkCapacity(l, 50) })
	em.Run(80)
	if r := fl.TotalRate(); r < 35 {
		t.Errorf("rate %.2f after capacity recovery to 50, want > 35", r)
	}
}
