package node

import (
	"testing"

	"repro/internal/graph"
)

// TestLinkFailureShiftsTraffic kills one of two parallel routes mid-run:
// the congestion controller must move the flow onto the surviving route
// (the §6.1 claim that traffic-driven estimation detects failures within
// hundreds of milliseconds and the controller adapts).
func TestLinkFailureShiftsTraffic(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	plc := b.AddLink(s, d, graph.TechPLC, 40)
	wifi := b.AddLink(s, d, graph.TechWiFi, 40)
	b.AddLink(d, s, graph.TechPLC, 40)
	b.AddLink(d, s, graph.TechWiFi, 40)
	net := b.Build()

	em := NewEmulation(net, Config{Estimation: true}, 31)
	fl, err := em.AddFlow(FlowSpec{
		Src: s, Dst: d, Routes: []graph.Path{{plc}, {wifi}}, Kind: TrafficSaturated,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	beforePLC := fl.Rates()[0]
	if beforePLC < 20 {
		t.Fatalf("PLC route should carry ~40 before failure, got %.2f", beforePLC)
	}
	// The PLC link dies (e.g. a noisy appliance).
	net.Link(plc).Capacity = 0
	em.Run(120)
	after := fl.Rates()
	if after[0] > 2 {
		t.Errorf("PLC route rate %.2f after failure, want ~0", after[0])
	}
	if after[1] < 25 {
		t.Errorf("WiFi route rate %.2f after failure, want ~40", after[1])
	}
	sink := em.Agent(d).Sinks()[0]
	if rate := sink.MeanRate(100, 120); rate < 25 {
		t.Errorf("delivered %.2f Mbps after failover, want most of the WiFi capacity", rate)
	}
}

// TestCapacityDropAdapts halves a link's capacity mid-run; the rate must
// follow it down without sustained overload.
func TestCapacityDropAdapts(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechWiFi)
	l := b.AddLink(s, d, graph.TechWiFi, 40)
	b.AddLink(d, s, graph.TechWiFi, 40)
	net := b.Build()

	em := NewEmulation(net, Config{Estimation: true}, 32)
	fl, err := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{l}}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	if fl.TotalRate() < 30 {
		t.Fatalf("rate %.2f before the drop, want ~40", fl.TotalRate())
	}
	net.Link(l).Capacity = 20
	em.Run(90)
	if r := fl.TotalRate(); r < 14 || r > 22 {
		t.Errorf("rate %.2f after capacity drop to 20, want ~18-20", r)
	}
	sink := em.Agent(d).Sinks()[0]
	lossFrac := float64(sink.Lost) / float64(sink.TotalPackets+sink.Lost+1)
	if lossFrac > 0.15 {
		t.Errorf("loss fraction %.3f during adaptation too high", lossFrac)
	}
}

// TestCapacityRecoveryAdaptsUp restores capacity and expects the rate to
// climb back.
func TestCapacityRecoveryAdaptsUp(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechWiFi)
	l := b.AddLink(s, d, graph.TechWiFi, 10)
	b.AddLink(d, s, graph.TechWiFi, 10)
	net := b.Build()

	em := NewEmulation(net, Config{Estimation: true}, 33)
	fl, _ := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{l}}, Kind: TrafficSaturated}, 0)
	em.Run(20)
	net.Link(l).Capacity = 50
	em.Run(80)
	if r := fl.TotalRate(); r < 35 {
		t.Errorf("rate %.2f after capacity recovery to 50, want > 35", r)
	}
}
