package node

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// trajectoryFingerprint replays a Figure 9-shaped scenario — a
// saturated multipath flow plus a contending single-path flow joining
// mid-run, which is where price broadcasts and neighbor-report sums
// actually interact — and hashes the exact bits of the delivered-rate
// series of both sinks.
func trajectoryFingerprint(t *testing.T) string {
	t.Helper()
	inst := topology.Testbed(stats.NewRand(20), topology.Config{})
	net := inst.Build(topology.ViewHybrid)
	em := NewEmulation(net.Network, Config{Delta: 0.05, Estimation: true}, 90)
	routes1 := routing.Multipath(net.Network, 0, 12, routing.DefaultConfig()).Paths
	routes2 := routing.Multipath(net.Network, 3, 6, routing.DefaultConfig()).Paths
	if len(routes1) == 0 || len(routes2) == 0 {
		t.Fatal("no routes on this channel realization")
	}
	if len(routes1) > 2 {
		routes1 = routes1[:2]
	}
	if _, err := em.AddFlow(FlowSpec{Src: 0, Dst: 12, Routes: routes1, Kind: TrafficSaturated}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := em.AddFlow(FlowSpec{Src: 3, Dst: 6, Routes: routes2[:1], Kind: TrafficSaturated}, 8); err != nil {
		t.Fatal(err)
	}
	em.Run(25)
	h := fnv.New64a()
	for _, dst := range []int{12, 6} {
		_, series := em.Agent(graph.NodeID(dst)).Sinks()[0].RateSeries(0.5)
		if len(series) == 0 {
			t.Fatal("no rate series")
		}
		for _, v := range series {
			var buf [8]byte
			bits := math.Float64bits(v)
			for i := range buf {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestEmulationSeedDeterminismAcrossProcesses pins the reproducibility
// contract the parallel runner depends on: the same seed must produce
// bit-identical trajectories in separate processes. The historical
// failure modes were map iterations wherever the emulation draws from
// its RNG, accumulates floats, or schedules events (probe-mode
// estimation, price broadcasts, neighbor-report sums, sink listings):
// Go's per-process map hash seed changes the iteration order between
// processes, so any such site makes trajectories diverge run to run
// while looking stable within one process. The test therefore re-executes
// itself in child processes and compares their fingerprints.
func TestEmulationSeedDeterminismAcrossProcesses(t *testing.T) {
	const childMark = "trajectory:"
	if os.Getenv("EMU_TRAJ_CHILD") == "1" {
		fmt.Println(childMark + trajectoryFingerprint(t))
		return
	}
	if testing.Short() {
		t.Skip("spawns testbed emulations in child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	child := func() string {
		cmd := exec.Command(exe, "-test.run", "TestEmulationSeedDeterminismAcrossProcesses$", "-test.count=1")
		cmd.Env = append(os.Environ(), "EMU_TRAJ_CHILD=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child run: %v\n%s", err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if rest, ok := strings.CutPrefix(line, childMark); ok {
				return rest
			}
		}
		t.Fatalf("child printed no fingerprint:\n%s", out)
		return ""
	}
	first := child()
	for trial := 0; trial < 2; trial++ {
		if again := child(); again != first {
			t.Fatalf("trajectory fingerprint changed across processes: %s vs %s (seed-determinism regression)", first, again)
		}
	}
}
