package node

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
)

// diamond builds s->d with two disjoint 2-hop branches: via m1 (PLC) and
// via m2 (WiFi), plus a weak direct WiFi link.
func diamond() (*graph.Network, graph.NodeID, graph.NodeID, graph.Path, graph.Path) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	m1 := b.AddNode("m1", 1, 1, graph.TechPLC)
	m2 := b.AddNode("m2", 1, -1, graph.TechWiFi)
	d := b.AddNode("d", 2, 0, graph.TechPLC, graph.TechWiFi)
	p1a := b.AddLink(s, m1, graph.TechPLC, 40)
	p1b := b.AddLink(m1, d, graph.TechPLC, 40)
	p2a := b.AddLink(s, m2, graph.TechWiFi, 40)
	p2b := b.AddLink(m2, d, graph.TechWiFi, 40)
	// Reverse links for acks.
	b.AddLink(d, m1, graph.TechPLC, 40)
	b.AddLink(m1, s, graph.TechPLC, 40)
	b.AddLink(d, m2, graph.TechWiFi, 40)
	b.AddLink(m2, s, graph.TechWiFi, 40)
	net := b.Build()
	return net, s, d, graph.Path{p1a, p1b}, graph.Path{p2a, p2b}
}

func TestRouteManagerSwapsOnFailure(t *testing.T) {
	net, s, d, plcRoute, wifiRoute := diamond()
	em := NewEmulation(net, Config{Estimation: true}, 51)
	// Start the flow on the PLC branch only.
	fl, err := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{plcRoute}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr := em.ManageRoutes(fl, routing.DefaultConfig())
	em.Run(20)
	if mgr.Reroutes > 1 {
		t.Errorf("%d reroutes during steady operation, want ~0", mgr.Reroutes)
	}
	// Kill the PLC branch: the manager must move the flow to WiFi.
	net.Link(plcRoute[0]).Capacity = 0
	em.Run(60)
	if mgr.Reroutes == 0 {
		t.Fatal("route manager did not react to the link failure")
	}
	usesWiFi := false
	for _, r := range fl.Routes() {
		if r[0] == wifiRoute[0] {
			usesWiFi = true
		}
		if r[0] == plcRoute[0] {
			t.Error("dead PLC route still in use")
		}
	}
	if !usesWiFi {
		t.Errorf("flow routes after failure: %v, want the WiFi branch", fl.Routes())
	}
	sink := em.Agent(d).Sinks()[0]
	// The WiFi branch is a same-medium 2-hop path: Lemma 1 caps it at
	// 1/(1/40+1/40) = 20 Mbps.
	if rate := sink.MeanRate(45, 60); rate < 15 {
		t.Errorf("delivered %.2f Mbps after reroute, want close to the 20 Mbps branch limit", rate)
	}
}

func TestRouteManagerStableWithoutChanges(t *testing.T) {
	net, s, d, plcRoute, wifiRoute := diamond()
	em := NewEmulation(net, Config{Estimation: true}, 52)
	fl, err := em.AddFlow(FlowSpec{
		Src: s, Dst: d, Routes: []graph.Path{plcRoute, wifiRoute}, Kind: TrafficSaturated,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr := em.ManageRoutes(fl, routing.DefaultConfig())
	em.Run(60)
	if mgr.Reroutes > 1 {
		t.Errorf("%d reroutes on a stable network (estimation noise should not churn routes)", mgr.Reroutes)
	}
}

func TestSetRoutesValidation(t *testing.T) {
	net, s, d, plcRoute, _ := diamond()
	em := NewEmulation(net, Config{}, 53)
	fl, _ := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{plcRoute}, Kind: TrafficSaturated}, 0)
	if err := fl.SetRoutes(nil); err == nil {
		t.Error("empty route set accepted")
	}
	if err := fl.SetRoutes([]graph.Path{{plcRoute[1]}}); err == nil {
		t.Error("broken route accepted")
	}
}

func TestEstimatedNetworkTracksCapacities(t *testing.T) {
	net, s, d, plcRoute, _ := diamond()
	em := NewEmulation(net, Config{Estimation: true}, 54)
	em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{plcRoute}, Kind: TrafficSaturated}, 0)
	em.Run(10)
	est := em.EstimatedNetwork()
	// Active link's estimate should be near truth.
	got := est.Link(plcRoute[0]).Capacity
	if got < 30 || got > 50 {
		t.Errorf("estimated capacity %.2f, true 40", got)
	}
}
