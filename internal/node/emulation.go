// Package node implements the EMPoWER node agent of §6.1 — the Go
// equivalent of the paper's Click Modular Router datapath — running over
// the discrete-event engine and the CSMA MAC:
//
//   - source routing with the 20-byte layer-2.5 header (package wire);
//     intermediate nodes check the destination and forward to the next
//     hop, adding their price contribution d_l·Σ_{i∈I_l}γ_i to the q_r
//     header field;
//   - per-technology price broadcasts every 100 ms carrying the node's
//     aggregate airtime demand and γ sum (§4.2), from which neighbors
//     compute y_l and update their duals;
//   - destination-side packet reordering by sequence number, loss
//     detection ("a packet with sequence number S is lost when packets
//     with higher sequence numbers arrived on all routes"), optional
//     delay equalization for TCP (§6.4), and acknowledgements at most 10
//     per second returning q_r per route;
//   - source-side multipath congestion control: each packet picks route r
//     with probability proportional to x_r, and the rates follow the
//     proximal update of §4.3 driven by acknowledged prices, with the α
//     step-size heuristic of §6.1.
//
// The steady-state packet path is allocation-free: data frames, ack
// frames, ack forwarding hops, price deliveries and delay-equalization
// holds all come from per-emulation free lists and return to them when
// consumed. The ownership rule is strict — whoever takes a pooled object
// off the MAC or the engine either hands it on or frees it, and nobody
// holds a pooled pointer across events after freeing it.
package node

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linkest"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/optimal"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config tunes the emulation.
type Config struct {
	// AckInterval is the destination acknowledgement period (default
	// 0.1 s — at most 10 acks per second as in the paper).
	AckInterval float64
	// PriceInterval is the price-broadcast and γ-update period (default
	// 0.1 s).
	PriceInterval float64
	// GammaAlpha is the dual step size for the per-link γ updates
	// (default 0.1).
	GammaAlpha float64
	// FlowAlphaBase is the base α of the per-flow rate updates, adapted
	// by the paper's heuristic (default 0.02).
	FlowAlphaBase float64
	// Delta is the constraint margin δ (default 0; §6.3 uses 0.05, §6.4
	// uses 0.3 for TCP).
	Delta float64
	// UtilityScale is the proximal gain (see congestion.Options).
	UtilityScale float64
	// PacketBytes is the application payload per packet (default 1500).
	PacketBytes int
	// QueueLimit is the per-link MAC queue in packets (default 100).
	QueueLimit int
	// LossProb[l] is an optional static per-link channel error
	// probability, indexed by LinkID (the gray-failure model for
	// non-scenario runs; scenarios mutate loss mid-run through
	// SetLinkLoss). Missing entries and absent slices mean lossless.
	LossProb []float64
	// DelayEqualize enables destination-side delay equalization across
	// routes (§6.4; default off).
	DelayEqualize bool
	// ReportStale expires neighbor price reports after this many seconds
	// (default 0.5).
	ReportStale float64
	// DisableCC turns congestion control off (the w/o-CC baselines):
	// sources keep their first hops backlogged and no shaping occurs.
	DisableCC bool
	// InitialRate bootstraps each route's rate in Mbps (default 0.5).
	InitialRate float64
	// Estimation enables noisy link-capacity estimation (package
	// linkest) instead of oracle capacities for the price terms
	// (default true in testbed experiments; tests may disable it).
	Estimation bool
	// ExpectedDuration, when positive, presizes per-flow and per-sink
	// rate logs for a run of this many emulated seconds (callers that
	// know the scenario duration set it; zero means grow on demand).
	ExpectedDuration float64
	// Shards enables the sharded engine for topologies that decompose
	// into several interference domains (optimal.InterferenceDomains):
	// 0 (the zero value) always runs the classic single engine; n >= 1
	// runs one pooled engine per domain with up to n worker goroutines
	// (1 = sequential, still domain-decomposed); ShardsAuto sizes the
	// worker pool to GOMAXPROCS. The decomposition depends only on the
	// topology — never on the shard count — and each domain draws from
	// its own seed split, so the trajectory is bit-identical at any
	// Shards >= 1. A single-domain topology (every connected network)
	// always takes the classic engine, making Shards >= 1 byte-identical
	// to the zero value there.
	Shards int
	// Recorder, when positive, attaches a flight recorder of that many
	// records (rounded up to a power of two) to every domain engine and
	// its MAC. Recording costs one ring-index write per event and is
	// purely observational: it draws no RNG and schedules nothing, so
	// the trajectory is identical with it on or off. Zero disables
	// recording entirely (the default; also the zero-alloc-guard path).
	Recorder int
}

// ShardsAuto, as Config.Shards, sizes the sharded engine's worker pool
// to GOMAXPROCS (cmd flags map -shards 0 to it).
const ShardsAuto = -1

func (c Config) ackInterval() float64 {
	if c.AckInterval <= 0 {
		return 0.1
	}
	return c.AckInterval
}

func (c Config) priceInterval() float64 {
	if c.PriceInterval <= 0 {
		return 0.1
	}
	return c.PriceInterval
}

func (c Config) gammaAlpha() float64 {
	if c.GammaAlpha <= 0 {
		return 0.1
	}
	return c.GammaAlpha
}

func (c Config) flowAlphaBase() float64 {
	if c.FlowAlphaBase <= 0 {
		return 0.02
	}
	return c.FlowAlphaBase
}

func (c Config) utilityScale() float64 {
	if c.UtilityScale <= 0 {
		return 50
	}
	return c.UtilityScale
}

func (c Config) packetBytes() int {
	if c.PacketBytes <= 0 {
		return 1500
	}
	return c.PacketBytes
}

func (c Config) queueLimit() int {
	if c.QueueLimit <= 0 {
		return 100
	}
	return c.QueueLimit
}

func (c Config) reportStale() float64 {
	if c.ReportStale <= 0 {
		return 0.5
	}
	return c.ReportStale
}

func (c Config) initialRate() float64 {
	if c.InitialRate <= 0 {
		return 0.5
	}
	return c.InitialRate
}

// dataPkt is the pooled in-flight form of a data frame: the wire frame
// plus the opaque transport metadata that, on the real testbed, rides in
// the Ethernet encapsulation. It is owned by exactly one holder at a
// time (a flow building it, a MAC queue, an agent forwarding it, a sink
// consuming it) and returns to the emulation's free list when consumed
// or dropped.
type dataPkt struct {
	frame wire.DataFrame
	meta  interface{}
}

// Emulation owns the engine, the MAC, and one Agent per network node.
type Emulation struct {
	Engine *sim.Engine
	Net    *graph.Network
	MAC    *mac.MAC
	Agents []*Agent

	cfg   Config
	rng   *rand.Rand
	flows []*Flow

	// capEpoch[l] counts link l's capacity changes — the invariant
	// checker's witness that a link stayed dead (or alive) across a
	// whole sampling interval. Sharded dispatchers leave it nil; the
	// owning domain's counter is authoritative.
	capEpoch []uint32

	// Intrinsic observability counters, bumped on the owning domain's
	// event loop and sampled by internal/obs at barriers (see
	// node/obs.go). Sharded dispatchers keep them at zero; the accessors
	// sum over domains.
	estResets int
	reroutes  int
	failovers int

	// numTechs bounds the dense per-technology agent state.
	numTechs int

	// Free lists for the steady-state packet path. All are LIFO stacks;
	// see the package comment for the ownership rule.
	pktFree   []*dataPkt
	ackFree   []*wire.AckFrame
	hopFree   []*ackHop
	priceFree []*priceDelivery
	holdFree  []*heldFrame

	// priceBuf is the scratch encode buffer of broadcastPrice.
	priceBuf []byte

	// Sharded-mode state (see shard.go). A sharded top-level emulation is
	// a dispatcher: Engine and MAC are nil, doms holds one closed
	// sub-emulation per interference domain, and Agents merges the
	// per-domain agents. Inside a sub-emulation, doms is nil and Agents
	// has nil entries for foreign nodes.
	doms    []*Emulation
	nodeDom []int
	linkDom []int
	sh      *sim.Sharded
}

func (e *Emulation) newPkt() *dataPkt {
	if n := len(e.pktFree); n > 0 {
		p := e.pktFree[n-1]
		e.pktFree = e.pktFree[:n-1]
		return p
	}
	return &dataPkt{}
}

// freePkt returns a consumed or dropped frame to the pool. The frame is
// cleared here so a reused slot never leaks a stale q_r, route or
// sequence number into the next packet.
func (e *Emulation) freePkt(p *dataPkt) {
	p.frame = wire.DataFrame{}
	p.meta = nil
	e.pktFree = append(e.pktFree, p)
}

func (e *Emulation) newAck() *wire.AckFrame {
	if n := len(e.ackFree); n > 0 {
		a := e.ackFree[n-1]
		e.ackFree = e.ackFree[:n-1]
		return a
	}
	return &wire.AckFrame{}
}

func (e *Emulation) freeAck(a *wire.AckFrame) {
	routes := a.Routes[:0] // keep the backing array
	*a = wire.AckFrame{Routes: routes}
	e.ackFree = append(e.ackFree, a)
}

func (e *Emulation) newAckHop() *ackHop {
	if n := len(e.hopFree); n > 0 {
		h := e.hopFree[n-1]
		e.hopFree = e.hopFree[:n-1]
		return h
	}
	return &ackHop{}
}

func (e *Emulation) freeAckHop(h *ackHop) {
	*h = ackHop{}
	e.hopFree = append(e.hopFree, h)
}

func (e *Emulation) newPriceDelivery() *priceDelivery {
	if n := len(e.priceFree); n > 0 {
		pd := e.priceFree[n-1]
		e.priceFree = e.priceFree[:n-1]
		return pd
	}
	return &priceDelivery{}
}

func (e *Emulation) freePriceDelivery(pd *priceDelivery) {
	pd.agent = nil
	e.priceFree = append(e.priceFree, pd)
}

func (e *Emulation) newHeldFrame() *heldFrame {
	if n := len(e.holdFree); n > 0 {
		h := e.holdFree[n-1]
		e.holdFree = e.holdFree[:n-1]
		return h
	}
	return &heldFrame{}
}

func (e *Emulation) freeHeldFrame(h *heldFrame) {
	*h = heldFrame{}
	e.holdFree = append(e.holdFree, h)
}

// NewEmulation builds the emulated network. With Config.Shards set and a
// topology that decomposes into several interference domains, the result
// is a sharded emulation running one engine per domain (see shard.go);
// otherwise it is the classic single-engine emulation.
func NewEmulation(net *graph.Network, cfg Config, seed int64) *Emulation {
	if cfg.Shards != 0 {
		if dec := optimal.InterferenceDomains(net); dec.Num > 1 {
			return newSharded(net, cfg, seed, dec)
		}
	}
	return newEmulationOwned(net, cfg, seed, nil)
}

// newEmulationOwned is the working constructor: own == nil builds the
// classic emulation over every node; a non-nil ownership mask builds one
// domain's closed sub-emulation — agents, price ticks and the RNG belong
// to the owned nodes only, while the network (a per-domain clone) keeps
// its full shape so global node and link IDs stay valid.
func newEmulationOwned(net *graph.Network, cfg Config, seed int64, own []bool) *Emulation {
	e := &Emulation{
		Engine:   &sim.Engine{},
		Net:      net,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		capEpoch: make([]uint32, net.NumLinks()),
	}
	e.numTechs = 1
	for l := 0; l < net.NumLinks(); l++ {
		if t := int(net.Link(graph.LinkID(l)).Tech); t+1 > e.numTechs {
			e.numTechs = t + 1
		}
	}
	for i := 0; i < net.NumNodes(); i++ {
		for _, t := range net.Node(graph.NodeID(i)).Techs {
			if int(t)+1 > e.numTechs {
				e.numTechs = int(t) + 1
			}
		}
	}
	e.MAC = mac.New(e.Engine, net, e.rng, mac.Options{QueueLimit: cfg.queueLimit(), LossProb: cfg.LossProb})
	e.MAC.Deliver = e.deliver
	e.MAC.Drop = e.macDrop
	if cfg.Recorder > 0 {
		rec := obs.NewRecorder(cfg.Recorder)
		e.Engine.SetRecorder(rec)
		e.MAC.SetRecorder(rec)
	}
	e.Agents = make([]*Agent, net.NumNodes())
	for i := range e.Agents {
		if own != nil && !own[i] {
			continue
		}
		e.Agents[i] = newAgent(e, graph.NodeID(i))
	}
	// Periodic per-node price broadcasts and dual updates, staggered a
	// little to avoid artificial synchronization. The offsets use the
	// global node index and count in every mode, so a node's tick phase
	// does not depend on how the topology sharded.
	for i, a := range e.Agents {
		if a == nil {
			continue
		}
		a := a
		offset := cfg.priceInterval() * float64(i) / float64(len(e.Agents)+1)
		e.Engine.Schedule(offset, func() {
			a.priceTick()
			e.Engine.Every(cfg.priceInterval(), a.priceTick)
		})
	}
	return e
}

// Flows returns the registered flows. On a sharded emulation the flows
// are merged in domain order; note that flow IDs are unique only within
// a domain (they only ride intra-domain frames).
func (e *Emulation) Flows() []*Flow {
	if e.doms == nil {
		return e.flows
	}
	var out []*Flow
	for _, d := range e.doms {
		out = append(out, d.flows...)
	}
	return out
}

// Agent returns node id's agent.
func (e *Emulation) Agent(id graph.NodeID) *Agent { return e.Agents[id] }

// deliver dispatches MAC deliveries to the receiving agent.
func (e *Emulation) deliver(l graph.LinkID, pkt mac.Packet) {
	to := e.Net.Link(l).To
	e.Agents[to].receive(l, pkt)
}

// macDrop releases the pooled state of frames the MAC dropped (delivered
// frames release it at their consumer).
func (e *Emulation) macDrop(_ graph.LinkID, pkt mac.Packet, _ mac.DropReason) {
	switch p := pkt.Payload.(type) {
	case *dataPkt:
		e.freePkt(p)
	case *ackHop:
		e.freeAck(p.ack)
		e.freeAckHop(p)
	}
}

// Run advances the emulation to absolute virtual time t (seconds). A
// sharded emulation advances every domain engine through the
// conservative-window coordinator.
func (e *Emulation) Run(t float64) {
	if e.sh != nil {
		e.sh.Run(t)
		return
	}
	e.Engine.Run(t)
}

// SetLinkCapacity mutates link l's capacity at the current virtual time —
// the scenario-engine hook behind link failure (c = 0), recovery and
// capacity drift. Unlike poking Net.Link(l).Capacity directly, it keeps
// the rest of the stack consistent:
//
//   - the MAC flushes a dead link's queue (releasing the transport
//     metadata of the lost frames) and kicks a recovered link back into
//     contention;
//   - on recovery of a dead link, the owning agent's estimator resumes
//     probe-mode sampling so the estimate re-learns.
//
// Detection of the change still happens through traffic-driven estimation
// (the §6.1 story), never through an oracle shortcut: a failure surfaces
// when samples stop arriving (linkest.Estimator.Failed, within the
// failure timeout), a capacity change when the noisy samples move.
func (e *Emulation) SetLinkCapacity(l graph.LinkID, c float64) {
	if e.doms != nil {
		// Dispatch to the owning domain (whose clone is the live ground
		// truth) and mirror into the top-level network, so external
		// readers keep seeing one consistent capacity map. Concurrent
		// domain goroutines only ever touch their own links, so the
		// mirror writes are element-disjoint.
		d := e.doms[e.linkDom[l]]
		d.SetLinkCapacity(l, c)
		e.Net.Link(l).Capacity = d.Net.Link(l).Capacity
		return
	}
	if c < 0 {
		c = 0
	}
	link := e.Net.Link(l)
	if link.Capacity == c {
		return
	}
	wasDead := link.Capacity <= 0
	link.Capacity = c
	e.capEpoch[l]++
	e.MAC.LinkChanged(l)
	if e.cfg.Estimation && wasDead && c > 0 && e.Agents[link.From] != nil {
		if est := e.Agents[link.From].est[l]; est != nil {
			// The estimator starved while the link was down; the probe
			// tick only samples ModeProbe links, so switch back explicitly
			// (an active flow's next send flips it to traffic mode again).
			est.SetMode(linkest.ModeProbe)
			e.estResets++
		}
	}
}

// SetLinkLoss sets link l's channel error probability at the current
// virtual time — the gray-failure scenario hook (set-loss events). The
// link stays up: frames still consume airtime and a fraction p of them
// is dropped at reception. Like SetLinkCapacity, detection is honest —
// the estimator samples the effective capacity c·(1−p), so congestion
// control and routing see the degradation only through the noisy
// estimates, never through an oracle shortcut.
func (e *Emulation) SetLinkLoss(l graph.LinkID, p float64) {
	if e.doms != nil {
		// Dispatch to the owning domain's MAC; concurrent domain
		// goroutines only ever touch their own links.
		e.doms[e.linkDom[l]].SetLinkLoss(l, p)
		return
	}
	e.MAC.SetLossProb(l, p)
}

// LinkLoss returns link l's current channel error probability.
func (e *Emulation) LinkLoss(l graph.LinkID) float64 {
	if e.doms != nil {
		return e.doms[e.linkDom[l]].LinkLoss(l)
	}
	return e.MAC.LossProb(l)
}

// CapacityEpoch counts link l's capacity changes since construction.
// Two equal readings bracket an interval with no capacity transition —
// what lets the invariant checker reason about a sampled window instead
// of just its endpoints.
func (e *Emulation) CapacityEpoch(l graph.LinkID) uint32 {
	if e.doms != nil {
		return e.doms[e.linkDom[l]].capEpoch[l]
	}
	return e.capEpoch[l]
}

// effectiveCapacity is the goodput-bearing capacity the estimator
// samples: the ground-truth capacity scaled by the channel delivery
// probability. With zero loss it is exactly the capacity, so the
// estimation path is bit-identical to the pre-gray-failure behaviour.
func (e *Emulation) effectiveCapacity(l graph.LinkID) float64 {
	c := e.Net.Link(l).Capacity
	if c <= 0 {
		return c
	}
	if p := e.MAC.LossProb(l); p > 0 {
		c *= 1 - p
	}
	return c
}

// priceDelivery is the pooled in-flight form of a price broadcast: the
// decoded frame plus its receiver, scheduled through the closure-free
// engine path.
type priceDelivery struct {
	agent *Agent
	frame wire.PriceFrame
}

func deliverPrice(arg any) {
	pd := arg.(*priceDelivery)
	em := pd.agent.em
	pd.agent.onPrice(&pd.frame)
	em.freePriceDelivery(pd)
}

// broadcastPrice delivers a price frame to every node sharing technology
// k within interference range of the origin. Price frames are modeled on
// the control plane (no airtime): the paper reports their overhead as
// negligible ("a small communication-overhead among the nodes"). The
// frame round-trips through its wire encoding in a retained scratch
// buffer, and each delivery rides a pooled priceDelivery.
func (e *Emulation) broadcastPrice(from graph.NodeID, f *wire.PriceFrame) {
	e.priceBuf = f.AppendBinary(e.priceBuf[:0])
	for _, a := range e.Agents {
		if a == nil || a.id == from {
			// Foreign nodes of a domain sub-emulation have no agent here;
			// they are never in earshot anyway (earshot is an interference
			// relation, and interference never crosses a domain).
			continue
		}
		if !e.Net.Node(a.id).HasTech(f.Tech) && !hasIngress(e.Net, a.id, f.Tech) {
			continue
		}
		if !e.inEarshot(from, a.id, f.Tech) {
			continue
		}
		pd := e.newPriceDelivery()
		if err := pd.frame.UnmarshalBinary(e.priceBuf); err != nil {
			panic(fmt.Sprintf("node: price frame round-trip: %v", err))
		}
		pd.agent = a
		e.Engine.ScheduleFunc(1e-4, deliverPrice, pd)
	}
}

// inEarshot reports whether a broadcast by `from` on technology k is
// overheard by `to`: some link of `from` on k interferes with some link of
// `to` on k (the §4.2 "nodes in the interference domains of the outgoing
// links" rule).
func (e *Emulation) inEarshot(from, to graph.NodeID, tech graph.Tech) bool {
	for _, lf := range e.Net.Out(from) {
		if e.Net.Link(lf).Tech != tech {
			continue
		}
		for _, i := range e.Net.Interference(lf) {
			li := e.Net.Link(i)
			if li.Tech == tech && (li.From == to || li.To == to) {
				return true
			}
		}
	}
	return false
}

func hasIngress(net *graph.Network, id graph.NodeID, tech graph.Tech) bool {
	for _, l := range net.In(id) {
		if net.Link(l).Tech == tech {
			return true
		}
	}
	return false
}

// linkEstimate returns the capacity estimate used for price terms: the
// linkest estimate when estimation is enabled and warmed up, the true
// capacity otherwise.
func (e *Emulation) linkEstimate(l graph.LinkID) float64 {
	if e.cfg.Estimation {
		a := e.Agents[e.Net.Link(l).From]
		if a == nil {
			// A foreign link of a domain sub-emulation: no local estimator.
			// Fall back to the domain clone's (frozen) capacity — routing
			// inside the domain can never use a foreign link, so the value
			// only feeds aggregate signals.
			return e.Net.Link(l).Capacity
		}
		if est := a.est[l]; est != nil {
			if est.Failed(e.Engine.Now()) {
				// Samples stopped arriving: the link is down (§6.1's
				// rapid failure detection). Routing and rate control see
				// zero capacity.
				return 0
			}
			if v := est.Estimate(); v > 0 {
				return v
			}
		}
	}
	return e.Net.Link(l).Capacity
}

// LinkEstimate exposes the capacity estimate feeding the price terms
// (the invariant checker bounds controller rates against it). On a
// sharded emulation it reads the owning domain's estimator through the
// merged agent view, exactly like the internal price path does.
func (e *Emulation) LinkEstimate(l graph.LinkID) float64 {
	if e.doms != nil {
		return e.doms[e.linkDom[l]].linkEstimate(l)
	}
	return e.linkEstimate(l)
}

// dEstimate returns the estimated d_l = 1/ĉ_l (+Inf treated as a huge
// price on dead links).
func (e *Emulation) dEstimate(l graph.LinkID) float64 {
	c := e.linkEstimate(l)
	if c <= 0 {
		return 1e9
	}
	return 1 / c
}
