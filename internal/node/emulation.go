// Package node implements the EMPoWER node agent of §6.1 — the Go
// equivalent of the paper's Click Modular Router datapath — running over
// the discrete-event engine and the CSMA MAC:
//
//   - source routing with the 20-byte layer-2.5 header (package wire);
//     intermediate nodes check the destination and forward to the next
//     hop, adding their price contribution d_l·Σ_{i∈I_l}γ_i to the q_r
//     header field;
//   - per-technology price broadcasts every 100 ms carrying the node's
//     aggregate airtime demand and γ sum (§4.2), from which neighbors
//     compute y_l and update their duals;
//   - destination-side packet reordering by sequence number, loss
//     detection ("a packet with sequence number S is lost when packets
//     with higher sequence numbers arrived on all routes"), optional
//     delay equalization for TCP (§6.4), and acknowledgements at most 10
//     per second returning q_r per route;
//   - source-side multipath congestion control: each packet picks route r
//     with probability proportional to x_r, and the rates follow the
//     proximal update of §4.3 driven by acknowledged prices, with the α
//     step-size heuristic of §6.1.
//
// The steady-state packet path is allocation-free: data frames, ack
// frames, ack forwarding hops, price deliveries and delay-equalization
// holds all come from per-emulation free lists and return to them when
// consumed. The ownership rule is strict — whoever takes a pooled object
// off the MAC or the engine either hands it on or frees it, and nobody
// holds a pooled pointer across events after freeing it.
package node

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/linkest"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config tunes the emulation.
type Config struct {
	// AckInterval is the destination acknowledgement period (default
	// 0.1 s — at most 10 acks per second as in the paper).
	AckInterval float64
	// PriceInterval is the price-broadcast and γ-update period (default
	// 0.1 s).
	PriceInterval float64
	// GammaAlpha is the dual step size for the per-link γ updates
	// (default 0.1).
	GammaAlpha float64
	// FlowAlphaBase is the base α of the per-flow rate updates, adapted
	// by the paper's heuristic (default 0.02).
	FlowAlphaBase float64
	// Delta is the constraint margin δ (default 0; §6.3 uses 0.05, §6.4
	// uses 0.3 for TCP).
	Delta float64
	// UtilityScale is the proximal gain (see congestion.Options).
	UtilityScale float64
	// PacketBytes is the application payload per packet (default 1500).
	PacketBytes int
	// QueueLimit is the per-link MAC queue in packets (default 100).
	QueueLimit int
	// DelayEqualize enables destination-side delay equalization across
	// routes (§6.4; default off).
	DelayEqualize bool
	// ReportStale expires neighbor price reports after this many seconds
	// (default 0.5).
	ReportStale float64
	// DisableCC turns congestion control off (the w/o-CC baselines):
	// sources keep their first hops backlogged and no shaping occurs.
	DisableCC bool
	// InitialRate bootstraps each route's rate in Mbps (default 0.5).
	InitialRate float64
	// Estimation enables noisy link-capacity estimation (package
	// linkest) instead of oracle capacities for the price terms
	// (default true in testbed experiments; tests may disable it).
	Estimation bool
	// ExpectedDuration, when positive, presizes per-flow and per-sink
	// rate logs for a run of this many emulated seconds (callers that
	// know the scenario duration set it; zero means grow on demand).
	ExpectedDuration float64
}

func (c Config) ackInterval() float64 {
	if c.AckInterval <= 0 {
		return 0.1
	}
	return c.AckInterval
}

func (c Config) priceInterval() float64 {
	if c.PriceInterval <= 0 {
		return 0.1
	}
	return c.PriceInterval
}

func (c Config) gammaAlpha() float64 {
	if c.GammaAlpha <= 0 {
		return 0.1
	}
	return c.GammaAlpha
}

func (c Config) flowAlphaBase() float64 {
	if c.FlowAlphaBase <= 0 {
		return 0.02
	}
	return c.FlowAlphaBase
}

func (c Config) utilityScale() float64 {
	if c.UtilityScale <= 0 {
		return 50
	}
	return c.UtilityScale
}

func (c Config) packetBytes() int {
	if c.PacketBytes <= 0 {
		return 1500
	}
	return c.PacketBytes
}

func (c Config) queueLimit() int {
	if c.QueueLimit <= 0 {
		return 100
	}
	return c.QueueLimit
}

func (c Config) reportStale() float64 {
	if c.ReportStale <= 0 {
		return 0.5
	}
	return c.ReportStale
}

func (c Config) initialRate() float64 {
	if c.InitialRate <= 0 {
		return 0.5
	}
	return c.InitialRate
}

// dataPkt is the pooled in-flight form of a data frame: the wire frame
// plus the opaque transport metadata that, on the real testbed, rides in
// the Ethernet encapsulation. It is owned by exactly one holder at a
// time (a flow building it, a MAC queue, an agent forwarding it, a sink
// consuming it) and returns to the emulation's free list when consumed
// or dropped.
type dataPkt struct {
	frame wire.DataFrame
	meta  interface{}
}

// Emulation owns the engine, the MAC, and one Agent per network node.
type Emulation struct {
	Engine *sim.Engine
	Net    *graph.Network
	MAC    *mac.MAC
	Agents []*Agent

	cfg   Config
	rng   *rand.Rand
	flows []*Flow

	// numTechs bounds the dense per-technology agent state.
	numTechs int

	// Free lists for the steady-state packet path. All are LIFO stacks;
	// see the package comment for the ownership rule.
	pktFree   []*dataPkt
	ackFree   []*wire.AckFrame
	hopFree   []*ackHop
	priceFree []*priceDelivery
	holdFree  []*heldFrame

	// priceBuf is the scratch encode buffer of broadcastPrice.
	priceBuf []byte
}

func (e *Emulation) newPkt() *dataPkt {
	if n := len(e.pktFree); n > 0 {
		p := e.pktFree[n-1]
		e.pktFree = e.pktFree[:n-1]
		return p
	}
	return &dataPkt{}
}

// freePkt returns a consumed or dropped frame to the pool. The frame is
// cleared here so a reused slot never leaks a stale q_r, route or
// sequence number into the next packet.
func (e *Emulation) freePkt(p *dataPkt) {
	p.frame = wire.DataFrame{}
	p.meta = nil
	e.pktFree = append(e.pktFree, p)
}

func (e *Emulation) newAck() *wire.AckFrame {
	if n := len(e.ackFree); n > 0 {
		a := e.ackFree[n-1]
		e.ackFree = e.ackFree[:n-1]
		return a
	}
	return &wire.AckFrame{}
}

func (e *Emulation) freeAck(a *wire.AckFrame) {
	routes := a.Routes[:0] // keep the backing array
	*a = wire.AckFrame{Routes: routes}
	e.ackFree = append(e.ackFree, a)
}

func (e *Emulation) newAckHop() *ackHop {
	if n := len(e.hopFree); n > 0 {
		h := e.hopFree[n-1]
		e.hopFree = e.hopFree[:n-1]
		return h
	}
	return &ackHop{}
}

func (e *Emulation) freeAckHop(h *ackHop) {
	*h = ackHop{}
	e.hopFree = append(e.hopFree, h)
}

func (e *Emulation) newPriceDelivery() *priceDelivery {
	if n := len(e.priceFree); n > 0 {
		pd := e.priceFree[n-1]
		e.priceFree = e.priceFree[:n-1]
		return pd
	}
	return &priceDelivery{}
}

func (e *Emulation) freePriceDelivery(pd *priceDelivery) {
	pd.agent = nil
	e.priceFree = append(e.priceFree, pd)
}

func (e *Emulation) newHeldFrame() *heldFrame {
	if n := len(e.holdFree); n > 0 {
		h := e.holdFree[n-1]
		e.holdFree = e.holdFree[:n-1]
		return h
	}
	return &heldFrame{}
}

func (e *Emulation) freeHeldFrame(h *heldFrame) {
	*h = heldFrame{}
	e.holdFree = append(e.holdFree, h)
}

// NewEmulation builds the emulated network.
func NewEmulation(net *graph.Network, cfg Config, seed int64) *Emulation {
	e := &Emulation{
		Engine: &sim.Engine{},
		Net:    net,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
	}
	e.numTechs = 1
	for l := 0; l < net.NumLinks(); l++ {
		if t := int(net.Link(graph.LinkID(l)).Tech); t+1 > e.numTechs {
			e.numTechs = t + 1
		}
	}
	for i := 0; i < net.NumNodes(); i++ {
		for _, t := range net.Node(graph.NodeID(i)).Techs {
			if int(t)+1 > e.numTechs {
				e.numTechs = int(t) + 1
			}
		}
	}
	e.MAC = mac.New(e.Engine, net, e.rng, mac.Options{QueueLimit: cfg.queueLimit()})
	e.MAC.Deliver = e.deliver
	e.MAC.Drop = e.macDrop
	e.Agents = make([]*Agent, net.NumNodes())
	for i := range e.Agents {
		e.Agents[i] = newAgent(e, graph.NodeID(i))
	}
	// Periodic per-node price broadcasts and dual updates, staggered a
	// little to avoid artificial synchronization.
	for i, a := range e.Agents {
		a := a
		offset := cfg.priceInterval() * float64(i) / float64(len(e.Agents)+1)
		e.Engine.Schedule(offset, func() {
			a.priceTick()
			e.Engine.Every(cfg.priceInterval(), a.priceTick)
		})
	}
	return e
}

// Flows returns the registered flows.
func (e *Emulation) Flows() []*Flow { return e.flows }

// Agent returns node id's agent.
func (e *Emulation) Agent(id graph.NodeID) *Agent { return e.Agents[id] }

// deliver dispatches MAC deliveries to the receiving agent.
func (e *Emulation) deliver(l graph.LinkID, pkt mac.Packet) {
	to := e.Net.Link(l).To
	e.Agents[to].receive(l, pkt)
}

// macDrop releases the pooled state of frames the MAC dropped (delivered
// frames release it at their consumer).
func (e *Emulation) macDrop(_ graph.LinkID, pkt mac.Packet, _ string) {
	switch p := pkt.Payload.(type) {
	case *dataPkt:
		e.freePkt(p)
	case *ackHop:
		e.freeAck(p.ack)
		e.freeAckHop(p)
	}
}

// Run advances the emulation to absolute virtual time t (seconds).
func (e *Emulation) Run(t float64) { e.Engine.Run(t) }

// SetLinkCapacity mutates link l's capacity at the current virtual time —
// the scenario-engine hook behind link failure (c = 0), recovery and
// capacity drift. Unlike poking Net.Link(l).Capacity directly, it keeps
// the rest of the stack consistent:
//
//   - the MAC flushes a dead link's queue (releasing the transport
//     metadata of the lost frames) and kicks a recovered link back into
//     contention;
//   - on recovery of a dead link, the owning agent's estimator resumes
//     probe-mode sampling so the estimate re-learns.
//
// Detection of the change still happens through traffic-driven estimation
// (the §6.1 story), never through an oracle shortcut: a failure surfaces
// when samples stop arriving (linkest.Estimator.Failed, within the
// failure timeout), a capacity change when the noisy samples move.
func (e *Emulation) SetLinkCapacity(l graph.LinkID, c float64) {
	if c < 0 {
		c = 0
	}
	link := e.Net.Link(l)
	if link.Capacity == c {
		return
	}
	wasDead := link.Capacity <= 0
	link.Capacity = c
	e.MAC.LinkChanged(l)
	if e.cfg.Estimation && wasDead && c > 0 {
		if est := e.Agents[link.From].est[l]; est != nil {
			// The estimator starved while the link was down; the probe
			// tick only samples ModeProbe links, so switch back explicitly
			// (an active flow's next send flips it to traffic mode again).
			est.SetMode(linkest.ModeProbe)
		}
	}
}

// priceDelivery is the pooled in-flight form of a price broadcast: the
// decoded frame plus its receiver, scheduled through the closure-free
// engine path.
type priceDelivery struct {
	agent *Agent
	frame wire.PriceFrame
}

func deliverPrice(arg any) {
	pd := arg.(*priceDelivery)
	em := pd.agent.em
	pd.agent.onPrice(&pd.frame)
	em.freePriceDelivery(pd)
}

// broadcastPrice delivers a price frame to every node sharing technology
// k within interference range of the origin. Price frames are modeled on
// the control plane (no airtime): the paper reports their overhead as
// negligible ("a small communication-overhead among the nodes"). The
// frame round-trips through its wire encoding in a retained scratch
// buffer, and each delivery rides a pooled priceDelivery.
func (e *Emulation) broadcastPrice(from graph.NodeID, f *wire.PriceFrame) {
	e.priceBuf = f.AppendBinary(e.priceBuf[:0])
	for _, a := range e.Agents {
		if a.id == from {
			continue
		}
		if !e.Net.Node(a.id).HasTech(f.Tech) && !hasIngress(e.Net, a.id, f.Tech) {
			continue
		}
		if !e.inEarshot(from, a.id, f.Tech) {
			continue
		}
		pd := e.newPriceDelivery()
		if err := pd.frame.UnmarshalBinary(e.priceBuf); err != nil {
			panic(fmt.Sprintf("node: price frame round-trip: %v", err))
		}
		pd.agent = a
		e.Engine.ScheduleFunc(1e-4, deliverPrice, pd)
	}
}

// inEarshot reports whether a broadcast by `from` on technology k is
// overheard by `to`: some link of `from` on k interferes with some link of
// `to` on k (the §4.2 "nodes in the interference domains of the outgoing
// links" rule).
func (e *Emulation) inEarshot(from, to graph.NodeID, tech graph.Tech) bool {
	for _, lf := range e.Net.Out(from) {
		if e.Net.Link(lf).Tech != tech {
			continue
		}
		for _, i := range e.Net.Interference(lf) {
			li := e.Net.Link(i)
			if li.Tech == tech && (li.From == to || li.To == to) {
				return true
			}
		}
	}
	return false
}

func hasIngress(net *graph.Network, id graph.NodeID, tech graph.Tech) bool {
	for _, l := range net.In(id) {
		if net.Link(l).Tech == tech {
			return true
		}
	}
	return false
}

// linkEstimate returns the capacity estimate used for price terms: the
// linkest estimate when estimation is enabled and warmed up, the true
// capacity otherwise.
func (e *Emulation) linkEstimate(l graph.LinkID) float64 {
	if e.cfg.Estimation {
		a := e.Agents[e.Net.Link(l).From]
		if est := a.est[l]; est != nil {
			if est.Failed(e.Engine.Now()) {
				// Samples stopped arriving: the link is down (§6.1's
				// rapid failure detection). Routing and rate control see
				// zero capacity.
				return 0
			}
			if v := est.Estimate(); v > 0 {
				return v
			}
		}
	}
	return e.Net.Link(l).Capacity
}

// dEstimate returns the estimated d_l = 1/ĉ_l (+Inf treated as a huge
// price on dead links).
func (e *Emulation) dEstimate(l graph.LinkID) float64 {
	c := e.linkEstimate(l)
	if c <= 0 {
		return 1e9
	}
	return 1 / c
}
