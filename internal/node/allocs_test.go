package node

import (
	"testing"
)

// TestAllocsEmulationReportSlot guards the emulation's control-plane
// fast path: once warm, a full 100 ms report slot — per-agent price
// ticks with γ updates and broadcasts, probe-mode estimation, sink
// acknowledgement generation and the ack's hop-by-hop trip back through
// the MAC — performs zero heap allocations. CI runs the Allocs guards as
// a regression gate (`go test -run Allocs ./...`).
//
// Traffic is stopped before measuring: the data plane's only remaining
// allocation is the seriesLog's one chunk per 4096 logged packets, which
// would show up here as noise while being exactly the amortized cost the
// chunk design intends.
func TestAllocsEmulationReportSlot(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{Estimation: true}, 21)
	fl, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(5) // warm: pools, rings, report tables, reverse-path caches
	fl.Stop()
	em.Run(5.05) // drain in-flight frames

	// Pin every sink's cached reverse path so the once-per-second
	// routing.SinglePath refresh (which legitimately allocates) stays
	// outside the measured slots.
	for _, ag := range em.Agents {
		for _, s := range ag.sinks {
			if s.reverse != nil {
				s.reverseAt = 1e18
			}
		}
	}

	now := em.Engine.Now()
	slots := 0
	if avg := testing.AllocsPerRun(10, func() {
		slots++
		em.Run(now + 0.1*float64(slots))
	}); avg != 0 {
		t.Errorf("steady-state report slot allocates %v per 100 ms, want 0", avg)
	}
}

// TestAllocsEmulationInstrumented is the same guard with the full
// observability layer attached: a 256-record flight recorder per domain
// hooked into the engine's timer dispatch and the MAC's tx/deliver/drop
// paths. Recording is one ring-slot write per event — the instrumented
// steady state must stay at zero heap allocations too, which is the
// issue's "zero-overhead" claim made executable.
func TestAllocsEmulationInstrumented(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{Estimation: true, Recorder: 256}, 21)
	fl, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(5) // warm: pools, rings, report tables, reverse-path caches
	fl.Stop()
	em.Run(5.05) // drain in-flight frames

	for _, ag := range em.Agents {
		for _, s := range ag.sinks {
			if s.reverse != nil {
				s.reverseAt = 1e18
			}
		}
	}
	if em.Engine.Recorder() == nil {
		t.Fatal("recorder not attached")
	}

	now := em.Engine.Now()
	slots := 0
	if avg := testing.AllocsPerRun(10, func() {
		slots++
		em.Run(now + 0.1*float64(slots))
	}); avg != 0 {
		t.Errorf("instrumented steady-state report slot allocates %v per 100 ms, want 0", avg)
	}
	if em.Engine.Recorder().Total() == 0 {
		t.Error("recorder saw no events during the measured slots")
	}
}
