package node

import (
	"testing"

	"repro/internal/graph"
)

// externalNet builds two same-medium links: one EMPoWER flow and one
// external station share the WiFi channel.
func externalNet() (*graph.Network, graph.NodeID, graph.NodeID, graph.LinkID, graph.LinkID) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechWiFi)
	xs := b.AddNode("xs", 2, 0, graph.TechWiFi)
	xd := b.AddNode("xd", 3, 0, graph.TechWiFi)
	emp := b.AddLink(s, d, graph.TechWiFi, 30)
	b.AddLink(d, s, graph.TechWiFi, 30)
	ext := b.AddLink(xs, xd, graph.TechWiFi, 30)
	return b.Build(), s, d, emp, ext
}

// TestExternalTrafficRespected reproduces the §4.3 claim: EMPoWER
// measures external airtime by carrier sensing and converges to the
// optimal allocation under that load, leaving the external station
// unharmed ("non-EMPoWER clients are not affected by EMPoWER clients").
func TestExternalTrafficRespected(t *testing.T) {
	net, s, d, emp, ext := externalNet()
	em := NewEmulation(net, Config{Estimation: true}, 61)
	// External station at 10 Mbps on a 30 Mbps medium: airtime 1/3.
	src := em.AddExternalSource(ext, 10)
	_, err := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{emp}}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(60)
	// EMPoWER should take roughly the leftover 2/3 airtime: ~20 Mbps.
	rate := em.Agent(d).Sinks()[0].MeanRate(45, 60)
	if rate < 14 || rate > 23 {
		t.Errorf("EMPoWER rate under external load = %.2f, want ~18-20", rate)
	}
	// The external station keeps its 10 Mbps (within MAC sharing limits).
	extRate := src.DeliveredBits / 60 / 1e6
	_ = extRate // DeliveredBits accounting is optional; check MAC stats.
	st := em.MAC.Stats(ext)
	got := st.DeliveredBits / 60 / 1e6
	if got < 8.5 {
		t.Errorf("external station delivered %.2f Mbps, want ~10 (unharmed)", got)
	}
	t.Logf("EMPoWER %.2f Mbps, external %.2f Mbps", rate, got)
}

// TestExternalStopsFlowReclaims: when the external station stops, the
// controller reclaims the freed airtime.
func TestExternalStopsFlowReclaims(t *testing.T) {
	net, s, d, emp, ext := externalNet()
	em := NewEmulation(net, Config{Estimation: true}, 62)
	src := em.AddExternalSource(ext, 15)
	fl, err := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{emp}}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(50)
	under := fl.TotalRate()
	src.Stop()
	em.Run(150)
	after := fl.TotalRate()
	if after <= under+3 {
		t.Errorf("rate should recover after external stops: %.2f -> %.2f", under, after)
	}
	if after < 24 {
		t.Errorf("rate after reclaim = %.2f, want near 30", after)
	}
}

// TestNoExternalMeansNoPhantomAirtime: the carrier-sense measurement must
// not hallucinate external load from EMPoWER's own traffic.
func TestNoExternalMeansNoPhantomAirtime(t *testing.T) {
	net, s, d, emp, _ := externalNet()
	em := NewEmulation(net, Config{Estimation: true}, 63)
	fl, err := em.AddFlow(FlowSpec{Src: s, Dst: d, Routes: []graph.Path{{emp}}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(60)
	// Without external traffic the flow should reach most of the link.
	if fl.TotalRate() < 24 {
		t.Errorf("rate without external traffic = %.2f, want near 30 (phantom external airtime?)", fl.TotalRate())
	}
}
