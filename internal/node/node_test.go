package node

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// figure1 builds the paper's Figure 1 network and the two routes of the
// running example.
func figure1() (*graph.Network, graph.NodeID, graph.NodeID, []graph.Path) {
	b := graph.NewBuilder(nil)
	a := b.AddNode("a", 0, 0, graph.TechPLC, graph.TechWiFi)
	bb := b.AddNode("b", 10, 0, graph.TechPLC, graph.TechWiFi)
	c := b.AddNode("c", 20, 0, graph.TechWiFi)
	plcAB, _ := b.AddDuplex(a, bb, graph.TechPLC, 10)
	wifiAB, _ := b.AddDuplex(a, bb, graph.TechWiFi, 15)
	wifiBC, _ := b.AddDuplex(bb, c, graph.TechWiFi, 30)
	net := b.Build()
	return net, a, c, []graph.Path{{plcAB, wifiBC}, {wifiAB, wifiBC}}
}

func oneLink(capacity float64) (*graph.Network, graph.NodeID, graph.NodeID, graph.Path) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	l := b.AddLink(u, v, graph.TechWiFi, capacity)
	lr := b.AddLink(v, u, graph.TechWiFi, capacity)
	_ = lr
	return b.Build(), u, v, graph.Path{l}
}

func TestAddFlowValidation(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{}, 1)
	if _, err := em.AddFlow(FlowSpec{Src: a, Dst: c}, 0); err == nil {
		t.Error("flow without routes accepted")
	}
	// A route not connecting src to dst must be rejected.
	bad := graph.Path{routes[0][1]}
	if _, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: []graph.Path{bad}}, 0); err == nil {
		t.Error("broken route accepted")
	}
	if _, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes}, 0); err != nil {
		t.Errorf("valid flow rejected: %v", err)
	}
}

func TestSingleLinkFlowReachesCapacity(t *testing.T) {
	net, u, v, p := oneLink(10)
	em := NewEmulation(net, Config{}, 2)
	fl, err := em.AddFlow(FlowSpec{Src: u, Dst: v, Routes: []graph.Path{p}, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(40)
	sink := em.Agent(v).Sinks()[0]
	rate := sink.MeanRate(30, 40)
	if rate < 8 || rate > 10.5 {
		t.Errorf("delivered rate = %.2f Mbps, want ~9-10", rate)
	}
	if fl.TotalRate() < 8 {
		t.Errorf("controller rate = %.2f, want near 10", fl.TotalRate())
	}
}

func TestFigure1EmulationMultipathGain(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{}, 3)
	fl, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(60)
	sink := em.Agent(c).Sinks()[0]
	rate := sink.MeanRate(45, 60)
	// The optimum is 16.67 Mbps; the distributed emulation with noisy
	// estimation should exceed the best single route (10) clearly and
	// approach the optimum.
	if rate < 12 {
		t.Errorf("multipath delivered %.2f Mbps, want > 12 (optimum 16.7)", rate)
	}
	if rate > 18 {
		t.Errorf("multipath delivered %.2f Mbps, above the optimum — airtime violated?", rate)
	}
	rates := fl.Rates()
	if rates[0] < rates[1] {
		t.Errorf("hybrid route should carry more: %v", rates)
	}
	t.Logf("delivered %.2f Mbps, route rates %v", rate, rates)
}

func TestLowLossAfterConvergence(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{Delta: 0.05}, 4)
	_, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(60)
	sink := em.Agent(c).Sinks()[0]
	lossFrac := float64(sink.Lost) / float64(sink.TotalPackets+sink.Lost+1)
	if lossFrac > 0.05 {
		t.Errorf("loss fraction %.3f too high", lossFrac)
	}
}

func TestReorderingDeliversInOrder(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{}, 5)
	fl, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficExternal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(0.5) // let the flow start and prices settle
	var seqs []uint32
	em.Agent(c).sinkFor(a, fl.ID).OnDeliver = func(seq uint32, bytes int, meta interface{}) {
		seqs = append(seqs, seq)
	}
	// Push packets; CC tokens bootstrap at the initial rate.
	for i := 0; i < 50; i++ {
		em.Run(0.5 + float64(i)*0.05)
		fl.Push(500, nil)
	}
	em.Run(10)
	if len(seqs) == 0 {
		t.Fatal("nothing delivered")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("out-of-order delivery: %v", seqs)
		}
	}
}

func TestPushOverRateDrops(t *testing.T) {
	net, u, v, p := oneLink(10)
	em := NewEmulation(net, Config{InitialRate: 0.1}, 6)
	fl, _ := em.AddFlow(FlowSpec{Src: u, Dst: v, Routes: []graph.Path{p}, Kind: TrafficExternal}, 0)
	em.Run(0.01)
	// Burst way beyond the token bucket: some pushes must fail.
	over := 0
	for i := 0; i < 200; i++ {
		if err := fl.Push(1500, nil); err == ErrOverRate {
			over++
		}
	}
	if over == 0 {
		t.Error("no over-rate drops on a 200-packet burst at 0.1 Mbps")
	}
}

func TestWithoutCCFloodsAndCollapses(t *testing.T) {
	// MP-w/o-CC on the Figure 1 scenario: both routes saturated without
	// congestion control. The shared WiFi hop b->c must carry both
	// routes' traffic but only wins a fair share of packet
	// opportunities, so node b's queue overflows and the delivered rate
	// collapses well below the 16.7 Mbps EMPoWER achieves.
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{DisableCC: true}, 7)
	_, err := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	sink := em.Agent(c).Sinks()[0]
	rate := sink.MeanRate(20, 30)
	if rate <= 1 || rate >= 14 {
		t.Errorf("MP-w/o-CC rate = %.2f, want clearly below the 16.7 optimum", rate)
	}
	if sink.Lost == 0 {
		t.Error("saturation should lose packets at the relay")
	}
	t.Logf("MP-w/o-CC rate %.2f Mbps, lost %d", rate, sink.Lost)
}

func TestCCOutperformsNoCCMultipath(t *testing.T) {
	rate := func(disable bool) float64 {
		net, a, c, routes := figure1()
		em := NewEmulation(net, Config{DisableCC: disable}, 8)
		em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
		em.Run(50)
		return em.Agent(c).Sinks()[0].MeanRate(40, 50)
	}
	withCC, withoutCC := rate(false), rate(true)
	if withCC <= withoutCC+1 {
		t.Errorf("CC (%.2f) should clearly beat no-CC (%.2f) on multipath", withCC, withoutCC)
	}
	t.Logf("CC %.2f vs no-CC %.2f Mbps", withCC, withoutCC)
}

func TestFigure9Offloading(t *testing.T) {
	// Flow 0 has a PLC direct route and a WiFi direct route; flow 1 is
	// WiFi-only between two other nodes on the same channel. When flow 1
	// starts, flow 0 must shift its traffic off WiFi (§6.2's behaviour).
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	s2 := b.AddNode("s2", 2, 0, graph.TechWiFi)
	d2 := b.AddNode("d2", 3, 0, graph.TechWiFi)
	plc := b.AddLink(s, d, graph.TechPLC, 30)
	wifi := b.AddLink(s, d, graph.TechWiFi, 30)
	wifi2 := b.AddLink(s2, d2, graph.TechWiFi, 30)
	b.AddLink(d, s, graph.TechPLC, 30)
	b.AddLink(d, s, graph.TechWiFi, 30)
	b.AddLink(d2, s2, graph.TechWiFi, 30)
	net := b.Build()
	em := NewEmulation(net, Config{}, 9)
	f0, err := em.AddFlow(FlowSpec{
		Src: s, Dst: d, Routes: []graph.Path{{plc}, {wifi}}, Kind: TrafficSaturated,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(40)
	wifiShareBefore := f0.Rates()[1] / f0.TotalRate()
	// Start the contending WiFi flow.
	_, err = em.AddFlow(FlowSpec{
		Src: s2, Dst: d2, Routes: []graph.Path{{wifi2}}, Kind: TrafficSaturated,
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(120)
	wifiShareAfter := f0.Rates()[1] / f0.TotalRate()
	if wifiShareAfter >= wifiShareBefore {
		t.Errorf("flow 0 WiFi share should drop when contention appears: %.2f -> %.2f",
			wifiShareBefore, wifiShareAfter)
	}
	// Flow 0 keeps its PLC rate high.
	if f0.Rates()[0] < 20 {
		t.Errorf("PLC route rate %.2f, want near 30", f0.Rates()[0])
	}
	t.Logf("WiFi share %.2f -> %.2f, rates %v", wifiShareBefore, wifiShareAfter, f0.Rates())
}

func TestFileFlowCompletes(t *testing.T) {
	net, u, v, p := oneLink(10)
	em := NewEmulation(net, Config{}, 10)
	const fileBytes = 2_000_000 // 2 MB over 10 Mbps ≈ 1.6 s at full rate
	fl, _ := em.AddFlow(FlowSpec{
		Src: u, Dst: v, Routes: []graph.Path{p}, Kind: TrafficFile, FileBytes: fileBytes,
	}, 0)
	em.Run(60)
	if !fl.Done() {
		t.Fatal("file flow did not finish injecting")
	}
	sink := em.Agent(v).Sinks()[0]
	if sink.TotalBytes < fileBytes*95/100 {
		t.Errorf("delivered %d of %d bytes", sink.TotalBytes, fileBytes)
	}
}

func TestGammaRisesUnderOverload(t *testing.T) {
	net, u, v, p := oneLink(5)
	em := NewEmulation(net, Config{}, 11)
	em.AddFlow(FlowSpec{Src: u, Dst: v, Routes: []graph.Path{p}, Kind: TrafficSaturated}, 0)
	em.Run(20)
	if g := em.Agent(u).Gamma(p[0]); g <= 0 {
		t.Errorf("gamma = %v, want > 0 on a saturated link", g)
	}
}

func TestDelayEqualization(t *testing.T) {
	// Two routes with very different delays; with equalization on, the
	// in-order delivery stream should show (a) no losses from reordering
	// pressure and (b) near-equal observed per-route delays at the sink.
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{DelayEqualize: true}, 12)
	fl, _ := em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	em.Run(30)
	sink := em.Agent(c).sinkFor(a, fl.ID)
	withDelay := 0
	for i := range sink.routes {
		if sink.routes[i].hasDelay {
			withDelay++
		}
	}
	if withDelay < 2 {
		t.Skip("only one route active")
	}
	if sink.TotalPackets == 0 {
		t.Fatal("nothing delivered with delay equalization")
	}
}

func TestPriceBroadcastReachesNeighbors(t *testing.T) {
	net, a, c, routes := figure1()
	em := NewEmulation(net, Config{}, 13)
	em.AddFlow(FlowSpec{Src: a, Dst: c, Routes: routes, Kind: TrafficSaturated}, 0)
	em.Run(5)
	// Node b (index 1) must have heard WiFi reports from a.
	agentB := em.Agent(1)
	heard := 0
	for n := range agentB.reports[graph.TechWiFi] {
		if agentB.reports[graph.TechWiFi][n].heardAt >= 0 {
			heard++
		}
	}
	if heard == 0 {
		t.Error("node b heard no WiFi price broadcasts")
	}
}

func TestInterfaceMapMatchesWireHashes(t *testing.T) {
	net, _, _, _ := figure1()
	em := NewEmulation(net, Config{}, 14)
	for _, ag := range em.Agents {
		for _, l := range net.Out(ag.id) {
			link := net.Link(l)
			id := wire.HashInterface(link.To, link.Tech)
			if got, ok := ag.ifaceOut[id]; !ok || got != l {
				t.Fatalf("agent %d iface map missing link %d", ag.id, l)
			}
		}
	}
}

func TestSeriesLog(t *testing.T) {
	s := newSeriesLog(0)
	s.add(0.1, 1e6)
	s.add(0.9, 1e6)
	s.add(1.5, 2e6)
	ts, rates := s.series(1.0)
	if len(ts) != 2 {
		t.Fatalf("bins = %d, want 2", len(ts))
	}
	if math.Abs(rates[0]-2) > 1e-9 || math.Abs(rates[1]-2) > 1e-9 {
		t.Errorf("rates = %v, want [2 2]", rates)
	}
	if a, b := s.series(0); a != nil || b != nil {
		t.Error("zero bin should return nil")
	}
}
