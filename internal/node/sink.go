package node

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/wire"
)

// DeliverFunc observes in-order application deliveries at a flow's
// destination (seq is the layer-2.5 sequence number; meta is the opaque
// transport metadata attached by Flow.Push).
type DeliverFunc func(seq uint32, payloadBytes int, meta interface{})

// Sink is the destination-side state of one flow: per-route price and
// sequence tracking, the reordering buffer, loss detection, delay
// equalization, and acknowledgement generation.
type Sink struct {
	agent  *Agent
	src    graph.NodeID
	flowID uint16

	// Per-route state, indexed by RouteIdx.
	qr        map[uint8]float64
	maxSeq    map[uint8]uint32
	delivered map[uint8]uint32 // payload bytes since last ack
	seenRoute map[uint8]bool
	lastSeen  map[uint8]float64 // last delivery time per route

	// Reordering.
	nextSeq uint32
	buffer  map[uint32]*bufEntry
	// Loss counters.
	Lost int

	// Delay equalization (§6.4).
	delayEWMA map[uint8]float64

	// Delivery accounting.
	TotalBytes   int64
	TotalPackets int
	log          *seriesLog

	// OnDeliver, when set, receives in-order payloads (TCP receiver hook).
	OnDeliver DeliverFunc

	// reverse caches the ack return route.
	reverse    graph.Path
	reverseIDs []wire.InterfaceID
	reverseAt  float64
	firstSeen  float64
	lastData   float64
}

type bufEntry struct {
	frame *wire.DataFrame
	meta  interface{}
}

func newSink(a *Agent, src graph.NodeID, flowID uint16) *Sink {
	return &Sink{
		agent:     a,
		src:       src,
		flowID:    flowID,
		qr:        map[uint8]float64{},
		maxSeq:    map[uint8]uint32{},
		delivered: map[uint8]uint32{},
		seenRoute: map[uint8]bool{},
		lastSeen:  map[uint8]float64{},
		buffer:    map[uint32]*bufEntry{},
		delayEWMA: map[uint8]float64{},
		log:       newSeriesLog(),
		firstSeen: a.em.Engine.Now(),
		lastData:  a.em.Engine.Now(),
	}
}

// Src returns the flow's source node.
func (s *Sink) Src() graph.NodeID { return s.src }

// LastDeliveryAt returns the virtual time of the most recent data
// arrival for this flow.
func (s *Sink) LastDeliveryAt() float64 { return s.lastData }

// IdleFor returns how long the flow has been silent at time now.
func (s *Sink) IdleFor(now float64) float64 { return now - s.lastData }

// FlowID returns the flow identifier.
func (s *Sink) FlowID() uint16 { return s.flowID }

// onData ingests a data frame addressed to this node.
func (s *Sink) onData(f *wire.DataFrame) {
	now := s.agent.em.Engine.Now()
	s.lastData = now
	r := f.RouteIdx
	s.seenRoute[r] = true
	s.lastSeen[r] = now
	s.qr[r] = f.Header.QR
	if f.Header.Seq > s.maxSeq[r] || !s.seenRoute[r] {
		s.maxSeq[r] = f.Header.Seq
	}
	s.delivered[r] += uint32(f.PayloadLen)

	meta := s.agent.em.takeMeta(f)

	// Delay equalization: delay fast-route packets so that all routes
	// show approximately the slowest route's delay (§6.4), reducing TCP
	// reordering timeouts.
	if s.agent.em.cfg.DelayEqualize {
		d := now - f.SentAt
		if old, ok := s.delayEWMA[r]; ok {
			s.delayEWMA[r] = 0.9*old + 0.1*d
		} else {
			s.delayEWMA[r] = d
		}
		target := 0.0
		for _, v := range s.delayEWMA {
			if v > target {
				target = v
			}
		}
		if hold := target - s.delayEWMA[r]; hold > 1e-6 {
			frame := f
			s.agent.em.Engine.Schedule(hold, func() { s.admit(frame, meta) })
			return
		}
	}
	s.admit(f, meta)
}

// admit places the frame into the reorder buffer and flushes whatever is
// now deliverable, applying the paper's loss rule: a missing sequence
// number S is declared lost (and skipped) once every route has delivered
// a packet with sequence greater than S.
func (s *Sink) admit(f *wire.DataFrame, meta interface{}) {
	if f.Header.Seq >= s.nextSeq {
		s.buffer[f.Header.Seq] = &bufEntry{frame: f, meta: meta}
	}
	s.flush()
}

func (s *Sink) flush() {
	for {
		if e, ok := s.buffer[s.nextSeq]; ok {
			s.deliver(e)
			delete(s.buffer, s.nextSeq)
			s.nextSeq++
			continue
		}
		// nextSeq missing: lost if all active routes are past it.
		if len(s.seenRoute) == 0 || !s.allRoutesPast(s.nextSeq) {
			return
		}
		s.Lost++
		s.nextSeq++
	}
}

// routeStaleAfter excludes a route from the loss rule once it has been
// silent this long: a failed route would otherwise stall reordering
// forever (the source abandons dead routes within ~1 s via capacity
// estimation, so its sequence numbers never advance again).
const routeStaleAfter = 1.0

func (s *Sink) allRoutesPast(seq uint32) bool {
	now := s.agent.em.Engine.Now()
	live := 0
	for r := range s.seenRoute {
		if now-s.lastSeen[r] > routeStaleAfter {
			continue // stale route: ignore its frozen sequence state
		}
		live++
		if s.maxSeq[r] <= seq {
			return false
		}
	}
	return live > 0
}

func (s *Sink) deliver(e *bufEntry) {
	now := s.agent.em.Engine.Now()
	bytes := int(e.frame.PayloadLen)
	s.TotalBytes += int64(bytes)
	s.TotalPackets++
	s.log.add(now, float64(bytes)*8)
	if s.OnDeliver != nil {
		s.OnDeliver(e.frame.Header.Seq, bytes, e.meta)
	}
}

// RateSeries returns the delivered goodput (Mbps) in bins of binSeconds.
func (s *Sink) RateSeries(binSeconds float64) ([]float64, []float64) {
	return s.log.series(binSeconds)
}

// MeanRate returns average goodput (Mbps) between two absolute times.
func (s *Sink) MeanRate(from, to float64) float64 {
	ts, rates := s.log.series(0.5)
	if len(ts) == 0 || to <= from {
		return 0
	}
	var sum float64
	var n int
	for i, t := range ts {
		if t >= from && t < to {
			sum += rates[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ackTick emits the periodic acknowledgement (at most every ack interval)
// with per-route q_r, max sequence and delivered byte counts, sent to the
// flow source over the best reverse single path with priority (small
// high-priority frames in the paper; small frames here).
func (s *Sink) ackTick() {
	if len(s.seenRoute) == 0 {
		return
	}
	now := s.agent.em.Engine.Now()
	// Stop acking a dead flow after 2 s of silence.
	if now-s.lastData > 2 {
		return
	}
	ack := &wire.AckFrame{
		Src:    s.src,
		Dst:    s.agent.id,
		FlowID: s.flowID,
		SentAt: now,
	}
	var idxs []int
	for r := range s.seenRoute {
		idxs = append(idxs, int(r))
	}
	sort.Ints(idxs)
	for _, ri := range idxs {
		r := uint8(ri)
		ack.Routes = append(ack.Routes, wire.RouteAck{
			RouteIdx:  r,
			QR:        s.qr[r],
			MaxSeq:    s.maxSeq[r],
			Delivered: s.delivered[r],
		})
		s.delivered[r] = 0
	}
	s.sendAck(ack)
}

// sendAck transmits the ack over the cached best reverse path, refreshing
// the cache every second. The ack travels hop-by-hop through the MAC; the
// final hop's agent dispatches it to the flow.
func (s *Sink) sendAck(ack *wire.AckFrame) {
	now := s.agent.em.Engine.Now()
	if s.reverse == nil || now-s.reverseAt > 1 {
		s.reverse = routing.SinglePath(s.agent.em.Net, s.agent.id, s.src, routing.DefaultConfig())
		s.reverseAt = now
	}
	if s.reverse == nil {
		return // no way back; the source will coast on old prices
	}
	s.forwardAck(ack, s.reverse, 0)
}

// forwardAck sends the ack over hop h of the reverse path and chains to
// the next hop upon MAC delivery. Acknowledgements ride the same MAC but
// are tiny; the paper gives them prioritized queues, which our FIFO MAC
// approximates by their negligible airtime.
func (s *Sink) forwardAck(ack *wire.AckFrame, path graph.Path, hop int) {
	if hop >= len(path) {
		s.agent.em.Agents[s.src].onAck(ack)
		return
	}
	l := path[hop]
	em := s.agent.em
	from := em.Net.Link(l).From
	bits := ackBits(ack)
	// Chain delivery through a wrapper payload.
	em.Agents[from].sendOnLink(l, bits, &ackHop{ack: ack, sink: s, path: path, hop: hop})
}

// ackHop is the MAC payload that chains an ack along its reverse path.
type ackHop struct {
	ack  *wire.AckFrame
	sink *Sink
	path graph.Path
	hop  int
}
