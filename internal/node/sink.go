package node

import (
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/wire"
)

// DeliverFunc observes in-order application deliveries at a flow's
// destination (seq is the layer-2.5 sequence number; meta is the opaque
// transport metadata attached by Flow.Push).
type DeliverFunc func(seq uint32, payloadBytes int, meta interface{})

// routeState is the per-route receive state, dense by RouteIdx.
type routeState struct {
	seen      bool
	qr        float64
	maxSeq    uint32
	delivered uint32 // payload bytes since last ack
	lastSeen  float64
	// Delay equalization (§6.4).
	delayEWMA float64
	hasDelay  bool
}

// Sink is the destination-side state of one flow: per-route price and
// sequence tracking, the reordering buffer, loss detection, delay
// equalization, and acknowledgement generation. The per-packet path is
// allocation-free: route state is dense, the reorder buffer holds plain
// values, and the frames themselves return to the emulation's pool the
// moment their fields are extracted.
type Sink struct {
	agent  *Agent
	src    graph.NodeID
	flowID uint16

	// routes is the per-route state, indexed by RouteIdx (grown on
	// first sight of a route).
	routes []routeState

	// Reordering.
	nextSeq uint32
	buffer  map[uint32]bufEntry
	// Loss counters.
	Lost int

	// Delivery accounting.
	TotalBytes   int64
	TotalPackets int
	log          *seriesLog

	// OnDeliver, when set, receives in-order payloads (TCP receiver hook).
	OnDeliver DeliverFunc

	// reverse caches the ack return route.
	reverse   graph.Path
	reverseAt float64
	firstSeen float64
	lastData  float64
}

// bufEntry is one reordered packet waiting for its predecessors: the
// fields deliver needs, held by value (the frame is long since back in
// the pool).
type bufEntry struct {
	payloadLen uint16
	meta       interface{}
}

func newSink(a *Agent, src graph.NodeID, flowID uint16) *Sink {
	return &Sink{
		agent:     a,
		src:       src,
		flowID:    flowID,
		buffer:    map[uint32]bufEntry{},
		log:       newSeriesLog(a.em.cfg.ExpectedDuration),
		firstSeen: a.em.Engine.Now(),
		lastData:  a.em.Engine.Now(),
	}
}

// Src returns the flow's source node.
func (s *Sink) Src() graph.NodeID { return s.src }

// LastDeliveryAt returns the virtual time of the most recent data
// arrival for this flow.
func (s *Sink) LastDeliveryAt() float64 { return s.lastData }

// IdleFor returns how long the flow has been silent at time now.
func (s *Sink) IdleFor(now float64) float64 { return now - s.lastData }

// FlowID returns the flow identifier.
func (s *Sink) FlowID() uint16 { return s.flowID }

// route returns the state of route r, growing the dense table on first
// sight. The pointer is only valid until the next route call.
func (s *Sink) route(r uint8) *routeState {
	for int(r) >= len(s.routes) {
		s.routes = append(s.routes, routeState{})
	}
	return &s.routes[r]
}

// heldFrame carries a delay-equalized packet between its arrival and its
// deferred admission; pooled on the emulation.
type heldFrame struct {
	sink       *Sink
	seq        uint32
	payloadLen uint16
	meta       interface{}
}

func admitHeld(arg any) {
	h := arg.(*heldFrame)
	s, seq, plen, meta := h.sink, h.seq, h.payloadLen, h.meta
	s.agent.em.freeHeldFrame(h)
	s.admit(seq, plen, meta)
}

// onData ingests a data frame addressed to this node, consuming the
// pooled packet: every field the sink needs is extracted before the
// frame returns to the pool.
func (s *Sink) onData(p *dataPkt) {
	f := &p.frame
	now := s.agent.em.Engine.Now()
	s.lastData = now
	r := f.RouteIdx
	rs := s.route(r)
	rs.seen = true
	rs.lastSeen = now
	rs.qr = f.Header.QR
	if f.Header.Seq > rs.maxSeq {
		rs.maxSeq = f.Header.Seq
	}
	rs.delivered += uint32(f.PayloadLen)

	seq := f.Header.Seq
	payloadLen := f.PayloadLen
	sentAt := f.SentAt
	meta := p.meta
	s.agent.em.freePkt(p)

	// Delay equalization: delay fast-route packets so that all routes
	// show approximately the slowest route's delay (§6.4), reducing TCP
	// reordering timeouts.
	if s.agent.em.cfg.DelayEqualize {
		d := now - sentAt
		if rs.hasDelay {
			rs.delayEWMA = 0.9*rs.delayEWMA + 0.1*d
		} else {
			rs.delayEWMA = d
			rs.hasDelay = true
		}
		target := 0.0
		for i := range s.routes {
			if s.routes[i].hasDelay && s.routes[i].delayEWMA > target {
				target = s.routes[i].delayEWMA
			}
		}
		if hold := target - rs.delayEWMA; hold > 1e-6 {
			em := s.agent.em
			h := em.newHeldFrame()
			h.sink, h.seq, h.payloadLen, h.meta = s, seq, payloadLen, meta
			em.Engine.ScheduleFunc(hold, admitHeld, h)
			return
		}
	}
	s.admit(seq, payloadLen, meta)
}

// admit places the packet into the reorder buffer and flushes whatever is
// now deliverable, applying the paper's loss rule: a missing sequence
// number S is declared lost (and skipped) once every route has delivered
// a packet with sequence greater than S.
func (s *Sink) admit(seq uint32, payloadLen uint16, meta interface{}) {
	if seq >= s.nextSeq {
		s.buffer[seq] = bufEntry{payloadLen: payloadLen, meta: meta}
	}
	s.flush()
}

func (s *Sink) flush() {
	for {
		if e, ok := s.buffer[s.nextSeq]; ok {
			s.deliver(s.nextSeq, e)
			delete(s.buffer, s.nextSeq)
			s.nextSeq++
			continue
		}
		// nextSeq missing: lost if all active routes are past it.
		if !s.allRoutesPast(s.nextSeq) {
			return
		}
		s.Lost++
		s.nextSeq++
	}
}

// routeStaleAfter excludes a route from the loss rule once it has been
// silent this long: a failed route would otherwise stall reordering
// forever (the source abandons dead routes within ~1 s via capacity
// estimation, so its sequence numbers never advance again).
const routeStaleAfter = 1.0

func (s *Sink) allRoutesPast(seq uint32) bool {
	now := s.agent.em.Engine.Now()
	live := 0
	for i := range s.routes {
		rs := &s.routes[i]
		if !rs.seen {
			continue
		}
		if now-rs.lastSeen > routeStaleAfter {
			continue // stale route: ignore its frozen sequence state
		}
		live++
		if rs.maxSeq <= seq {
			return false
		}
	}
	return live > 0
}

func (s *Sink) deliver(seq uint32, e bufEntry) {
	now := s.agent.em.Engine.Now()
	bytes := int(e.payloadLen)
	s.TotalBytes += int64(bytes)
	s.TotalPackets++
	s.log.add(now, float64(bytes)*8)
	if s.OnDeliver != nil {
		s.OnDeliver(seq, bytes, e.meta)
	}
}

// RateSeries returns the delivered goodput (Mbps) in bins of binSeconds.
func (s *Sink) RateSeries(binSeconds float64) ([]float64, []float64) {
	return s.log.series(binSeconds)
}

// MeanRate returns average goodput (Mbps) between two absolute times.
func (s *Sink) MeanRate(from, to float64) float64 {
	ts, rates := s.log.series(0.5)
	if len(ts) == 0 || to <= from {
		return 0
	}
	var sum float64
	var n int
	for i, t := range ts {
		if t >= from && t < to {
			sum += rates[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ackTick emits the periodic acknowledgement (at most every ack interval)
// with per-route q_r, max sequence and delivered byte counts, sent to the
// flow source over the best reverse single path with priority (small
// high-priority frames in the paper; small frames here). The frame and
// its Routes backing come from the emulation's ack pool.
func (s *Sink) ackTick() {
	seen := false
	for i := range s.routes {
		if s.routes[i].seen {
			seen = true
			break
		}
	}
	if !seen {
		return
	}
	now := s.agent.em.Engine.Now()
	// Stop acking a dead flow after 2 s of silence.
	if now-s.lastData > 2 {
		return
	}
	ack := s.agent.em.newAck()
	ack.Src = s.src
	ack.Dst = s.agent.id
	ack.FlowID = s.flowID
	ack.SentAt = now
	for i := range s.routes {
		rs := &s.routes[i]
		if !rs.seen {
			continue
		}
		ack.Routes = append(ack.Routes, wire.RouteAck{
			RouteIdx:  uint8(i),
			QR:        rs.qr,
			MaxSeq:    rs.maxSeq,
			Delivered: rs.delivered,
		})
		rs.delivered = 0
	}
	s.sendAck(ack)
}

// sendAck transmits the ack over the cached best reverse path, refreshing
// the cache every second. The ack travels hop-by-hop through the MAC; the
// final hop's agent dispatches it to the flow.
func (s *Sink) sendAck(ack *wire.AckFrame) {
	now := s.agent.em.Engine.Now()
	if s.reverse == nil || now-s.reverseAt > 1 {
		s.reverse = routing.SinglePath(s.agent.em.Net, s.agent.id, s.src, routing.DefaultConfig())
		s.reverseAt = now
	}
	if s.reverse == nil {
		s.agent.em.freeAck(ack)
		return // no way back; the source will coast on old prices
	}
	s.forwardAck(ack, s.reverse, 0)
}

// forwardAck sends the ack over hop h of the reverse path and chains to
// the next hop upon MAC delivery. Acknowledgements ride the same MAC but
// are tiny; the paper gives them prioritized queues, which our FIFO MAC
// approximates by their negligible airtime. The ack and its per-hop
// wrapper are pooled: the MAC's drop callback releases both when a hop
// dies, the final hop releases the ack after the source consumed it.
func (s *Sink) forwardAck(ack *wire.AckFrame, path graph.Path, hop int) {
	em := s.agent.em
	if hop >= len(path) {
		em.Agents[s.src].onAck(ack)
		em.freeAck(ack)
		return
	}
	l := path[hop]
	from := em.Net.Link(l).From
	bits := ackBits(ack)
	h := em.newAckHop()
	h.ack, h.sink, h.path, h.hop = ack, s, path, hop
	em.Agents[from].sendOnLink(l, bits, h)
}

// ackHop is the MAC payload that chains an ack along its reverse path.
type ackHop struct {
	ack  *wire.AckFrame
	sink *Sink
	path graph.Path
	hop  int
}
