package node

import (
	"runtime"

	"repro/internal/graph"
	"repro/internal/optimal"
	"repro/internal/sim"
	"repro/internal/stats"
)

// domainSeedBase offsets the per-domain RNG seed splits away from the
// seed domains the experiment runners already use (runner tasks use the
// plain index, scenario expansion 1_000_000+run, topology generation
// 2_000_000+run).
const domainSeedBase = 3_000_000

// newSharded builds the sharded form of the emulation: one closed
// sub-emulation per interference domain, each with its own pooled
// engine, MAC, agents, free lists, and RNG (split deterministically from
// the base seed), coordinated by sim.Sharded.
//
// The decomposition merges links across interference and shared
// endpoints (optimal.InterferenceDomains), which closes each domain
// under every interaction the emulation has — MAC contention, frame
// forwarding, price earshot, flow paths. Domains therefore exchange no
// events at runtime and the coordinator's lookahead stays at its
// infinite default: each Run is a single conservative window. The
// decomposition and the per-domain seeds depend only on the topology and
// the base seed — never on Config.Shards, which merely caps the worker
// pool — so the trajectory is bit-identical at any shard count.
func newSharded(net *graph.Network, cfg Config, seed int64, dec *optimal.Domains) *Emulation {
	e := &Emulation{
		Net:     net,
		cfg:     cfg,
		nodeDom: dec.Node,
		linkDom: dec.Link,
		doms:    make([]*Emulation, dec.Num),
	}
	workers := cfg.Shards
	if workers == ShardsAuto {
		workers = runtime.GOMAXPROCS(0)
	}
	subCfg := cfg
	subCfg.Shards = 0
	engines := make([]*sim.Engine, dec.Num)
	own := make([]bool, net.NumNodes())
	for d := range e.doms {
		for n := range own {
			own[n] = dec.Node[n] == d
		}
		// Each domain works on its own clone: links are deep-copied, so
		// capacity mutations stay domain-local, while the immutable
		// topology (nodes, interference, adjacency) is shared.
		sub := newEmulationOwned(net.Clone(), subCfg, stats.SplitSeed(seed, domainSeedBase+d), own)
		e.doms[d] = sub
		engines[d] = sub.Engine
	}
	e.sh = sim.NewSharded(engines, workers)
	// The merged agent view: Agents[n] is node n's agent in its owning
	// domain, so Agent() and post-run measurement work unchanged.
	e.Agents = make([]*Agent, net.NumNodes())
	for n := range e.Agents {
		e.Agents[n] = e.doms[dec.Node[n]].Agents[n]
	}
	return e
}

// Sharded reports whether this emulation runs the domain-sharded engine.
func (e *Emulation) Sharded() bool { return e.doms != nil }

// NumDomains returns the number of interference domains (1 for the
// classic single-engine emulation).
func (e *Emulation) NumDomains() int {
	if e.doms == nil {
		return 1
	}
	return len(e.doms)
}

// Domain returns domain d's closed sub-emulation. The classic emulation
// is its own (only) domain.
func (e *Emulation) Domain(d int) *Emulation {
	if e.doms == nil {
		return e
	}
	return e.doms[d]
}

// NodeDomain returns the domain owning node n.
func (e *Emulation) NodeDomain(n graph.NodeID) int {
	if e.nodeDom == nil {
		return 0
	}
	return e.nodeDom[n]
}

// LinkDomain returns the domain owning link l.
func (e *Emulation) LinkDomain(l graph.LinkID) int {
	if e.linkDom == nil {
		return 0
	}
	return e.linkDom[l]
}

// Workers returns the worker-goroutine cap of the sharded engine (1 for
// the classic emulation).
func (e *Emulation) Workers() int {
	if e.sh == nil {
		return 1
	}
	return e.sh.Workers()
}
