package node

import (
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the node layer's face of internal/obs: accessors over the
// intrinsic counters (which exist whether or not anything observes them)
// and SampleMetrics, which reads them into registry slots at a barrier —
// after a Run returns, never concurrently with it.

// EstimatorResets counts ModeProbe resets after link recoveries, summed
// over domains.
func (e *Emulation) EstimatorResets() int {
	if e.doms == nil {
		return e.estResets
	}
	n := 0
	for _, d := range e.doms {
		n += d.estResets
	}
	return n
}

// Reroutes counts route swaps by managed flows, summed over domains.
func (e *Emulation) Reroutes() int {
	if e.doms == nil {
		return e.reroutes
	}
	n := 0
	for _, d := range e.doms {
		n += d.reroutes
	}
	return n
}

// Failovers counts dead-route detections by fast failover checks,
// summed over domains.
func (e *Emulation) Failovers() int {
	if e.doms == nil {
		return e.failovers
	}
	n := 0
	for _, d := range e.doms {
		n += d.failovers
	}
	return n
}

// EventsFired sums the engine event counters over domains.
func (e *Emulation) EventsFired() uint64 {
	var n uint64
	for d := 0; d < e.NumDomains(); d++ {
		n += e.Domain(d).Engine.Fired()
	}
	return n
}

// ShardStats returns the sharded coordinator's window statistics (zero
// for the classic single-engine emulation).
func (e *Emulation) ShardStats() sim.WindowStats {
	if e.sh == nil {
		return sim.WindowStats{}
	}
	return e.sh.Stats()
}

// DomainRecorder returns domain d's flight recorder, or nil when
// recording is off (Config.Recorder == 0).
func (e *Emulation) DomainRecorder(d int) *obs.Recorder {
	return e.Domain(d).Engine.Recorder()
}

// SampleMetrics reads the emulation's intrinsic counters into registry
// slots — the barrier sampling of the observability design. Call it
// after Run returns (end of a replication); it only reads, so a
// trajectory with sampling is identical to one without.
func (e *Emulation) SampleMetrics(r *obs.Registry) {
	r.Counter("empower_events_fired_total",
		"discrete events processed by the engines").Add(float64(e.EventsFired()))
	r.Counter("empower_reroutes_total",
		"route swaps by managed flows").Add(float64(e.Reroutes()))
	r.Counter("empower_failovers_total",
		"dead-route detections by fast failover checks").Add(float64(e.Failovers()))
	r.Counter("empower_estimator_resets_total",
		"link estimators reset to probe mode after recovery").Add(float64(e.EstimatorResets()))

	heapDepth, freeTimers, queueDepth := 0, 0, 0
	var total mac.LinkStats
	for d := 0; d < e.NumDomains(); d++ {
		dom := e.Domain(d)
		if p := dom.Engine.Pending(); p > heapDepth {
			heapDepth = p
		}
		if f := dom.Engine.FreeTimers(); f > freeTimers {
			freeTimers = f
		}
		if q := dom.MAC.TotalQueueLen(); q > queueDepth {
			queueDepth = q
		}
		st := dom.MAC.TotalStats()
		total.DeliveredBits += st.DeliveredBits
		total.DeliveredPkts += st.DeliveredPkts
		total.DroppedPkts += st.DroppedPkts
		for i := range st.Dropped {
			total.Dropped[i] += st.Dropped[i]
		}
		total.BusySeconds += st.BusySeconds
	}
	r.Gauge("empower_engine_heap_depth",
		"peak sampled pending-timer count of any domain engine").Max(float64(heapDepth))
	r.Gauge("empower_engine_timer_pool",
		"peak sampled recycled-timer pool occupancy of any domain engine").Max(float64(freeTimers))
	r.Gauge("empower_mac_queue_depth",
		"peak sampled MAC backlog of any domain (packets)").Max(float64(queueDepth))
	r.Counter("empower_mac_delivered_packets_total",
		"frames delivered across links").Add(float64(total.DeliveredPkts))
	r.Counter("empower_mac_delivered_bits_total",
		"bits delivered across links").Add(total.DeliveredBits)
	r.Counter("empower_mac_airtime_seconds_total",
		"link busy time (airtime) in emulated seconds").Add(total.BusySeconds)
	for reason := 0; reason < int(mac.NumDropReasons); reason++ {
		r.Counter("empower_mac_dropped_packets_total",
			"frames dropped, by reason",
			obs.Label{Key: "reason", Value: mac.DropReason(reason).String()}).
			Add(float64(total.Dropped[reason]))
	}

	ws := e.ShardStats()
	r.Counter("empower_shard_windows_total",
		"conservative windows executed by the sharded coordinator").Add(float64(ws.Windows))
	r.Counter("empower_shard_lookahead_stalls_total",
		"windows cut short of the run horizon by the lookahead").Add(float64(ws.Stalls))
	r.Counter("empower_shard_cross_events_total",
		"cross-domain events drained at window barriers").Add(float64(ws.CrossDrained))
	r.Gauge("empower_shard_cross_queue_depth",
		"deepest cross-domain queue observed at a barrier").Max(float64(ws.MaxCrossDepth))
	r.Gauge("empower_domains",
		"interference domains of the emulated topology").Max(float64(e.NumDomains()))
}
