package node

import (
	"repro/internal/graph"
)

// ExternalSource is a non-EMPoWER station transmitting on a link: it
// injects raw MAC frames at a fixed rate, oblivious to prices and
// acknowledgements. EMPoWER agents measure its airtime by carrier
// sensing (the §4.3 mechanism: "nodes can measure traffic from external
// nodes and add the corresponding airtimes in (7)") and converge to the
// optimal allocation under that external load without disturbing it.
type ExternalSource struct {
	em   *Emulation
	link graph.LinkID
	rate float64 // Mbps
	bits float64 // per-packet size

	// DeliveredBits counts what the external receiver got.
	DeliveredBits float64

	periodic interface{ Stop() }
}

// AddExternalSource starts a constant-rate external transmitter on the
// given link (payload 1500 B frames at rate Mbps). The source itself is
// the MAC payload — agents ignore payloads they don't recognize, exactly
// how EMPoWER nodes treat foreign traffic.
func (e *Emulation) AddExternalSource(l graph.LinkID, rate float64) *ExternalSource {
	s := &ExternalSource{em: e, link: l, rate: rate, bits: 1500 * 8}
	gap := s.bits / (rate * 1e6)
	s.periodic = e.Engine.Every(gap, func() {
		e.MAC.Send(l, s.bits, s)
	})
	return s
}

// Stop halts the source.
func (s *ExternalSource) Stop() { s.periodic.Stop() }

// Rate returns the configured sending rate (Mbps).
func (s *ExternalSource) Rate() float64 { return s.rate }

// externalBusy tracks carrier-sensed airtime for one agent and
// technology. Busy time is attributed to the transmitting node (WiFi and
// PLC frame headers identify the transmitter); the slice of a node's
// busy time that exceeds what its price broadcast claims — or, for this
// agent itself, what it offered to the MAC — is external traffic.
type externalBusy struct {
	// lastBusy is the previous BusySeconds reading per sensed link,
	// dense by LinkID.
	lastBusy []float64
	// ewma smooths the measured external airtime.
	ewma float64
}

// senseSet returns the links of technology tech whose transmissions the
// agent can sense: everything interfering with one of its egress links of
// that technology. Precomputed per technology at agent construction (the
// interference sets are static).
func (a *Agent) senseSet(tech graph.Tech) []graph.LinkID {
	seen := map[graph.LinkID]bool{}
	var out []graph.LinkID
	for _, l := range a.em.Net.Out(a.id) {
		if a.em.Net.Link(l).Tech != tech {
			continue
		}
		for _, i := range a.em.Net.Interference(l) {
			if !seen[i] && a.em.Net.Link(i).Tech == tech {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// measureExternal returns the smoothed external airtime on a technology.
// Sensed busy time is grouped by transmitter; each transmitter's busy
// slice is compared against the EMPoWER airtime that transmitter claims
// (its overheard price broadcast, or this agent's own offered demand).
// Unclaimed busy time is external traffic and enters y_l per §4.3.
//
// The accumulation runs over dense per-node scratch in ascending node
// order: float addition is not associative, so map-order iteration would
// make runs diverge in the low bits and compound through the price
// feedback loop.
func (a *Agent) measureExternal(tech graph.Tech) float64 {
	eb := &a.extBusy[tech]
	interval := a.em.cfg.priceInterval()
	now := a.em.Engine.Now()

	// Busy airtime per transmitting node over the last interval.
	busy := a.busyScratch
	for i := range busy {
		busy[i] = 0
	}
	for _, l := range a.sense[tech] {
		cur := a.em.MAC.Stats(l).BusySeconds
		delta := cur - eb.lastBusy[l]
		eb.lastBusy[l] = cur
		if delta > 0 {
			busy[a.em.Net.Link(l).From] += delta / interval
		}
	}
	var external float64
	for ni := range busy {
		if busy[ni] == 0 {
			continue
		}
		n := graph.NodeID(ni)
		var claimed float64
		if n == a.id {
			claimed = a.ownAirtime(tech)
		} else if rep := &a.reports[tech][n]; rep.heardAt >= 0 && now-rep.heardAt <= a.em.cfg.reportStale() {
			claimed = rep.airtime
		}
		if busy[ni] > claimed {
			external += busy[ni] - claimed
		}
	}
	const gain = 0.3
	eb.ewma += gain * (external - eb.ewma)
	// Suppress measurement noise below 2% airtime.
	if eb.ewma < 0.02 {
		return 0
	}
	return eb.ewma
}
