package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("empower_events_fired_total", "events fired")
	c.Add(3)
	c.Inc()
	g := r.Gauge("empower_queue_depth", "queue depth", Label{"link", "4"})
	g.Set(2)
	g.Max(7)
	g.Max(1)
	h := r.Histogram("empower_window_depth", "cross depth", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE empower_events_fired_total counter",
		"empower_events_fired_total 4",
		`empower_queue_depth{link="4"} 7`,
		`empower_window_depth_bucket{le="1"} 1`,
		`empower_window_depth_bucket{le="10"} 2`,
		`empower_window_depth_bucket{le="+Inf"} 3`,
		"empower_window_depth_sum 105.5",
		"empower_window_depth_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Errorf("Lint rejected valid snapshot: %v", err)
	}
}

func TestRegistryMergeCommutes(t *testing.T) {
	mk := func(c, g float64, obs []float64) *Registry {
		r := NewRegistry()
		r.Counter("c_total", "").Add(c)
		r.Gauge("g", "").Set(g)
		h := r.Histogram("h", "", []float64{1, 2})
		for _, v := range obs {
			h.Observe(v)
		}
		return r
	}
	a1, b1 := mk(2, 5, []float64{0.5, 3}), mk(3, 4, []float64{1.5})
	a2, b2 := mk(2, 5, []float64{0.5, 3}), mk(3, 4, []float64{1.5})

	m1 := NewRegistry()
	m1.Merge(a1)
	m1.Merge(b1)
	m2 := NewRegistry()
	m2.Merge(b2)
	m2.Merge(a2)

	var s1, s2 bytes.Buffer
	m1.WritePrometheus(&s1)
	m2.WritePrometheus(&s2)
	if s1.String() != s2.String() {
		t.Errorf("merge not commutative:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	if !strings.Contains(s1.String(), "c_total 5") {
		t.Errorf("counters should sum: %s", s1.String())
	}
	if !strings.Contains(s1.String(), "\ng 5\n") {
		t.Errorf("gauges should max: %s", s1.String())
	}
}

func TestLintRejects(t *testing.T) {
	for name, snap := range map[string]string{
		"nan":       "m_total NaN\n",
		"dup":       "a 1\na 1\n",
		"bad-name":  "9metric 1\n",
		"no-value":  "lonely\n",
		"empty":     "# only comments\n",
		"bad-float": "m notanumber\n",
	} {
		if err := Lint([]byte(snap)); err == nil {
			t.Errorf("%s: Lint accepted %q", name, snap)
		}
	}
	if err := Lint([]byte("# HELP m h\n# TYPE m counter\nm 1\n")); err != nil {
		t.Errorf("Lint rejected valid input: %v", err)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(1) // rounds up to 64
	if r.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", r.Cap())
	}
	for i := 0; i < 100; i++ {
		r.Record(float64(i), RecTimerFire, int32(i), 0, 0)
	}
	if r.Total() != 100 {
		t.Fatalf("Total = %d", r.Total())
	}
	tail := r.Tail(8)
	if len(tail) != 8 {
		t.Fatalf("Tail(8) len = %d", len(tail))
	}
	for i, rec := range tail {
		if want := float64(92 + i); rec.At != want {
			t.Errorf("tail[%d].At = %g, want %g", i, rec.At, want)
		}
	}
	// Tail larger than held returns everything held (ring capacity).
	if got := len(r.Tail(1000)); got != 64 {
		t.Errorf("Tail(1000) len = %d, want 64", got)
	}
}

func TestRecorderZeroAlloc(t *testing.T) {
	r := NewRecorder(256)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(1.5, RecDeliver, 3, 0, 8192)
	})
	if allocs != 0 {
		t.Errorf("Record allocates %v/op, want 0", allocs)
	}
}

func TestChromeTraceParses(t *testing.T) {
	rec := NewRecorder(64)
	rec.Record(0.5, RecTxStart, 1, 0, 8192)
	rec.Record(0.6, RecDeliver, 1, 0, 8192)
	rec.Record(0.7, RecDrop, 2, 1, 8192)
	rec.Record(0.8, RecReroute, 0, 2, 0)
	rec.Record(0.9, RecScenarioEvent, 3, 4, 0)
	rec.Record(1.0, RecWindowBarrier, 5, 0, 0)
	rec.Record(1.1, RecTimerFire, 0, 0, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, [][]Record{rec.Tail(64), nil}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 7 records + 2 thread_name metadata events.
	if len(events) != 9 {
		t.Fatalf("got %d events, want 9", len(events))
	}
	for _, ev := range events {
		if _, ok := ev["ph"]; !ok {
			t.Errorf("event missing ph: %v", ev)
		}
	}
}

func TestFormatTail(t *testing.T) {
	recs := []Record{
		{At: 1.25, Kind: RecDrop, A: 7, B: 2, V: 8192},
		{At: 1.5, Kind: RecReroute, A: 0, B: 3},
	}
	out := FormatTail(1, recs)
	if !strings.Contains(out, "dom=1 t=1.250000 drop link=7 reason=2") {
		t.Errorf("unexpected tail:\n%s", out)
	}
	if !strings.Contains(out, "reroute flow=0 routes=3") {
		t.Errorf("unexpected tail:\n%s", out)
	}
}

func TestPhasesBreakdown(t *testing.T) {
	var p Phases
	p.AddBind(100 * time.Millisecond)
	p.AddRun(time.Second)
	p.AddRun(time.Second)
	p.AddCollect(50 * time.Millisecond)
	b := p.Breakdown()
	if math.Abs(b.BindSeconds-0.1) > 1e-9 || math.Abs(b.RunSeconds-2) > 1e-9 || math.Abs(b.CollectSeconds-0.05) > 1e-9 {
		t.Errorf("breakdown = %+v", b)
	}
	var nilP *Phases
	nilP.AddRun(time.Second) // must not panic
	if nilP.Breakdown() != (PhaseBreakdown{}) {
		t.Error("nil breakdown not zero")
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressLine(&buf, "figure4")
	base := time.Unix(1000, 0)
	p.now = func() time.Time { return base }
	p.start = base
	p.Update(0, 10)
	base = base.Add(2 * time.Second)
	p.Update(4, 10)
	out := buf.String()
	if !strings.Contains(out, "figure4") || !strings.Contains(out, "4/10") {
		t.Errorf("progress output %q", out)
	}
	if !strings.Contains(out, "2.0 reps/s") {
		t.Errorf("rate missing from %q", out)
	}
	if !strings.Contains(out, "ETA 3s") {
		t.Errorf("ETA missing from %q", out)
	}
	p.Finish()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("Finish should newline-terminate")
	}
}

func TestEmitterFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/metrics.prom"
	agg := NewAggregator()
	r := NewRegistry()
	r.Counter("empower_test_total", "t").Add(5)
	agg.Add(r)
	e, err := StartEmitter(path, agg, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "empower_test_total 5") {
		t.Errorf("snapshot file: %s", data)
	}
	if err := Lint(data); err != nil {
		t.Errorf("Lint: %v", err)
	}
	// Empty target is a no-op.
	if e, err := StartEmitter("", agg, 0); e != nil || err != nil {
		t.Errorf("empty target: %v %v", e, err)
	}
}

func TestLooksLikeHostPort(t *testing.T) {
	for target, want := range map[string]bool{
		":9090":          true,
		"localhost:9090": true,
		"metrics.prom":   false,
		"out/m.prom":     false,
		"dir/m:1":        false,
	} {
		if got := looksLikeHostPort(target); got != want {
			t.Errorf("looksLikeHostPort(%q) = %v, want %v", target, got, want)
		}
	}
}
