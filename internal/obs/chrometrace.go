package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChromeTrace renders per-domain flight-recorder records as Chrome
// trace-event JSON (the JSON-array format), readable in Perfetto or
// chrome://tracing: one thread track per domain, every record an instant
// event at its virtual time (microsecond timestamps = virtual seconds ×
// 1e6). Window barriers render as their own named events, so a sharded
// run's conservative windows are visible across the domain tracks.
func WriteChromeTrace(w io.Writer, domains [][]Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for d, recs := range domains {
		// Name the track so Perfetto shows "domain N" instead of a bare
		// thread id.
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"domain %d"}}`, d, d)
		for _, r := range recs {
			ts := r.At * 1e6
			switch r.Kind {
			case RecTxStart:
				emit(`{"name":"tx link %d","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"bits":%g}}`, r.A, ts, d, r.V)
			case RecDeliver:
				emit(`{"name":"rx link %d","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"bits":%g}}`, r.A, ts, d, r.V)
			case RecDrop:
				emit(`{"name":"drop link %d","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"reason":%d,"bits":%g}}`, r.A, ts, d, r.B, r.V)
			case RecTimerFire:
				emit(`{"name":"timer","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d}`, ts, d)
			case RecReroute:
				emit(`{"name":"reroute flow %d","ph":"i","s":"p","ts":%.3f,"pid":1,"tid":%d,"args":{"routes":%d}}`, r.A, ts, d, r.B)
			case RecScenarioEvent:
				emit(`{"name":"scenario event","ph":"i","s":"p","ts":%.3f,"pid":1,"tid":%d,"args":{"kind":%d,"subject":%d}}`, ts, d, r.A, r.B)
			case RecWindowBarrier:
				emit(`{"name":"window barrier","ph":"i","s":"g","ts":%.3f,"pid":1,"tid":%d,"args":{"drained":%d}}`, ts, d, r.A)
			default:
				emit(`{"name":"%s","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d}`, r.Kind, ts, d)
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
