package obs

import (
	"fmt"
	"io"
	"strings"
)

// RecKind classifies one flight-recorder record.
type RecKind uint8

// Record kinds. The enum is dense so kind names live in a fixed array
// and formatting needs no map.
const (
	// RecTxStart: a MAC transmission started (A = link, V = frame bits).
	RecTxStart RecKind = iota
	// RecDeliver: a frame crossed a link (A = link, V = frame bits).
	RecDeliver
	// RecDrop: a frame was lost (A = link, B = DropReason, V = bits).
	RecDrop
	// RecTimerFire: an engine timer fired (no operands; At carries the
	// virtual time, which is the payload).
	RecTimerFire
	// RecReroute: a route manager swapped a flow's routes (A = flow ID,
	// B = new route count).
	RecReroute
	// RecScenarioEvent: a scenario timeline event applied (A = event
	// kind ordinal, B = subject link or node, -1 when neither).
	RecScenarioEvent
	// RecWindowBarrier: the sharded coordinator drained the cross queues
	// at a window barrier (A = records drained into this domain).
	RecWindowBarrier
	// NumRecKinds sizes dense per-kind tables.
	NumRecKinds
)

var recKindNames = [NumRecKinds]string{
	"tx-start", "deliver", "drop", "timer-fire", "reroute", "scenario-event", "window-barrier",
}

func (k RecKind) String() string {
	if int(k) < len(recKindNames) {
		return recKindNames[k]
	}
	return "unknown"
}

// Record is one compact flight-recorder entry: the virtual time, a kind,
// two small operands and one value. Records live inline in the ring —
// writing one is a single indexed struct store.
type Record struct {
	At   float64
	Kind RecKind
	A, B int32
	V    float64
}

// Recorder is a fixed-size ring of Records with a single writer (the
// owning domain engine's goroutine). The ring never grows after New, so
// a record costs one index write and zero allocations; when full it
// overwrites the oldest entry, keeping the most recent window — exactly
// what a post-mortem wants.
type Recorder struct {
	buf  []Record
	mask uint64
	n    uint64 // total records ever written
}

// NewRecorder builds a recorder holding `size` records (rounded up to a
// power of two, minimum 64).
func NewRecorder(size int) *Recorder {
	n := 64
	for n < size {
		n *= 2
	}
	return &Recorder{buf: make([]Record, n), mask: uint64(n - 1)}
}

// Record appends one entry — the hot-path write.
func (r *Recorder) Record(at float64, kind RecKind, a, b int32, v float64) {
	r.buf[r.n&r.mask] = Record{At: at, Kind: kind, A: a, B: b, V: v}
	r.n++
}

// Total returns the number of records ever written (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 { return r.n }

// Cap returns the ring capacity in records.
func (r *Recorder) Cap() int { return len(r.buf) }

// Tail returns a copy of the most recent min(n, held) records, oldest
// first. It allocates and is meant for post-run dumps, not hot paths.
func (r *Recorder) Tail(n int) []Record {
	held := r.n
	if held > uint64(len(r.buf)) {
		held = uint64(len(r.buf))
	}
	if uint64(n) < held {
		held = uint64(n)
	}
	out := make([]Record, held)
	for i := uint64(0); i < held; i++ {
		out[i] = r.buf[(r.n-held+i)&r.mask]
	}
	return out
}

// FormatRecord renders one record as a compact text line.
func FormatRecord(rec Record) string {
	switch rec.Kind {
	case RecTxStart, RecDeliver:
		return fmt.Sprintf("t=%.6f %s link=%d bits=%g", rec.At, rec.Kind, rec.A, rec.V)
	case RecDrop:
		return fmt.Sprintf("t=%.6f %s link=%d reason=%d bits=%g", rec.At, rec.Kind, rec.A, rec.B, rec.V)
	case RecReroute:
		return fmt.Sprintf("t=%.6f %s flow=%d routes=%d", rec.At, rec.Kind, rec.A, rec.B)
	case RecScenarioEvent:
		return fmt.Sprintf("t=%.6f %s kind=%d subject=%d", rec.At, rec.Kind, rec.A, rec.B)
	case RecWindowBarrier:
		return fmt.Sprintf("t=%.6f %s drained=%d", rec.At, rec.Kind, rec.A)
	default:
		return fmt.Sprintf("t=%.6f %s a=%d b=%d v=%g", rec.At, rec.Kind, rec.A, rec.B, rec.V)
	}
}

// FormatTail renders the most recent n records, one line each, prefixed
// with the owning domain — the failure-message payload of the
// -invariants violation tail.
func FormatTail(domain int, recs []Record) string {
	var b strings.Builder
	for _, rec := range recs {
		fmt.Fprintf(&b, "  dom=%d %s\n", domain, FormatRecord(rec))
	}
	return b.String()
}

// WriteTail writes FormatTail to w.
func WriteTail(w io.Writer, domain int, recs []Record) error {
	_, err := io.WriteString(w, FormatTail(domain, recs))
	return err
}
