package obs

import (
	"sync/atomic"
	"time"
)

// Phases accumulates wall-clock time per sweep phase (bind, run,
// collect) with atomic adds, so parallel replications can contribute
// concurrently. The totals sum worker time, not elapsed time — on W
// workers the run phase can exceed wall clock by up to W×.
type Phases struct {
	bindNS    atomic.Int64
	runNS     atomic.Int64
	collectNS atomic.Int64
}

// AddBind charges d to the bind phase (topology build + scenario bind).
func (p *Phases) AddBind(d time.Duration) {
	if p != nil {
		p.bindNS.Add(int64(d))
	}
}

// AddRun charges d to the run phase (virtual-time execution).
func (p *Phases) AddRun(d time.Duration) {
	if p != nil {
		p.runNS.Add(int64(d))
	}
}

// AddCollect charges d to the collect phase (measurement + folding).
func (p *Phases) AddCollect(d time.Duration) {
	if p != nil {
		p.collectNS.Add(int64(d))
	}
}

// PhaseBreakdown is the JSON-friendly snapshot of a Phases.
type PhaseBreakdown struct {
	BindSeconds    float64 `json:"bind_seconds"`
	RunSeconds     float64 `json:"run_seconds"`
	CollectSeconds float64 `json:"collect_seconds"`
}

// Breakdown snapshots the accumulated totals in seconds.
func (p *Phases) Breakdown() PhaseBreakdown {
	if p == nil {
		return PhaseBreakdown{}
	}
	return PhaseBreakdown{
		BindSeconds:    time.Duration(p.bindNS.Load()).Seconds(),
		RunSeconds:     time.Duration(p.runNS.Load()).Seconds(),
		CollectSeconds: time.Duration(p.collectNS.Load()).Seconds(),
	}
}
