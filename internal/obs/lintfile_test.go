package obs

import (
	"os"
	"strings"
	"testing"
)

// TestLintFile validates a Prometheus snapshot file named by the PROMFILE
// environment variable — the CI instrumented-sweep step runs a short
// sweep with -metrics and points this test at the output. Without
// PROMFILE the test is skipped, so normal test runs are unaffected.
func TestLintFile(t *testing.T) {
	path := os.Getenv("PROMFILE")
	if path == "" {
		t.Skip("PROMFILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("%s: empty snapshot", path)
	}
	if err := Lint(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if !strings.Contains(string(data), "empower_") {
		t.Fatalf("%s: no empower_ series in snapshot", path)
	}
}
