package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"
)

// Emitter periodically publishes Prometheus snapshots of an Aggregator
// to either a file (atomic rename) or an HTTP /metrics endpoint,
// depending on the -metrics argument: a leading ':' or a host:port
// means serve, anything else is a file path.
type Emitter struct {
	agg  *Aggregator
	file string
	srv  *http.Server
	stop chan struct{}
	wg   sync.WaitGroup
}

// StartEmitter interprets target and begins emission. File targets are
// rewritten every interval (and on Close); HTTP targets serve /metrics
// on demand. An empty target returns (nil, nil).
func StartEmitter(target string, agg *Aggregator, interval time.Duration) (*Emitter, error) {
	if target == "" {
		return nil, nil
	}
	e := &Emitter{agg: agg, stop: make(chan struct{})}
	if strings.HasPrefix(target, ":") || looksLikeHostPort(target) {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			agg.WritePrometheus(w)
		})
		ln, err := net.Listen("tcp", target)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics listen %s: %w", target, err)
		}
		e.srv = &http.Server{Handler: mux}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.srv.Serve(ln)
		}()
		return e, nil
	}
	e.file = target
	if interval <= 0 {
		interval = 2 * time.Second
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.writeFile()
			case <-e.stop:
				return
			}
		}
	}()
	return e, nil
}

// looksLikeHostPort reports whether target parses as host:port with a
// non-empty port (so plain file paths with colons stay files).
func looksLikeHostPort(target string) bool {
	host, port, err := net.SplitHostPort(target)
	if err != nil || port == "" {
		return false
	}
	// Paths like "dir/metrics:1" should stay paths.
	return !strings.ContainsAny(host, "/\\")
}

// writeFile writes a snapshot next to the target and renames it in, so
// readers never see a torn file.
func (e *Emitter) writeFile() error {
	tmp := e.file + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := e.agg.WritePrometheus(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, e.file)
}

// Close stops emission; file targets get one final snapshot.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	close(e.stop)
	if e.srv != nil {
		e.srv.Close()
	}
	e.wg.Wait()
	if e.file != "" {
		return e.writeFile()
	}
	return nil
}

// ServePprof exposes net/http/pprof handlers on addr in a background
// goroutine — the -pprof flag of the long-running CLIs. The server runs
// until process exit.
func ServePprof(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	go http.Serve(ln, mux)
	return nil
}
