// Package obs is the observability layer of the reproduction: a
// fixed-slot metrics registry with a Prometheus-text exporter, a
// per-domain-engine flight recorder (a fixed ring of compact event
// records), a Chrome-trace exporter for Perfetto, and small sweep-level
// helpers (progress line, phase breakdown, HTTP serving).
//
// The package is a dependency leaf — it imports nothing from the rest
// of the stack — so every layer (sim, mac, node, scenario, runner, the
// CLIs) can attach to it without cycles.
//
// Everything here is observational by construction. The hot layers keep
// cheap intrinsic counters (plain integer fields bumped on their own
// event loops) whether or not anything observes them; the registry
// samples those counters into its slots at deterministic barriers (end
// of a replication, a window barrier), so enabling metrics draws no RNG,
// reorders no events, and changes no output byte. The flight recorder is
// the only true hot-path instrumentation and costs one ring-index write
// per record behind a nil guard.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind is a metric's Prometheus type.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value pair of a metric series.
type Label struct {
	Key, Value string
}

// metric is one registered slot. Updates are plain field writes through
// the handle types; no atomics — a slot is only ever written by the
// goroutine that owns its layer (one emulation, one domain engine), and
// cross-goroutine aggregation happens through Aggregator's mutex at
// replication barriers.
type metric struct {
	name   string // family name
	help   string
	kind   Kind
	labels []Label
	series string // rendered name{labels} key, unique per registry

	val float64 // counter/gauge value

	// Histogram state (kind == KindHistogram): cumulative bucket counts
	// are computed at export; counts[i] holds the per-bucket (le
	// bounds[i]) increment.
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

// Counter is a monotonically increasing slot.
type Counter struct{ m *metric }

// Add increments the counter (negative deltas are ignored).
func (c Counter) Add(v float64) {
	if c.m != nil && v > 0 {
		c.m.val += v
	}
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Set forces the counter to an absolute sampled value (the sampling
// idiom: intrinsic counters are read at barriers, so the slot mirrors
// the intrinsic total rather than accumulating deltas).
func (c Counter) Set(v float64) {
	if c.m != nil && v > c.m.val {
		c.m.val = v
	}
}

// Value returns the current value.
func (c Counter) Value() float64 {
	if c.m == nil {
		return 0
	}
	return c.m.val
}

// Gauge is a slot holding an instantaneous value.
type Gauge struct{ m *metric }

// Set stores the value.
func (g Gauge) Set(v float64) {
	if g.m != nil {
		g.m.val = v
	}
}

// Max keeps the running maximum — the deterministic fold for gauges
// merged across replications that may finish in any order.
func (g Gauge) Max(v float64) {
	if g.m != nil && v > g.m.val {
		g.m.val = v
	}
}

// Value returns the current value.
func (g Gauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return g.m.val
}

// Histogram is a fixed-bucket histogram slot.
type Histogram struct{ m *metric }

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	m := h.m
	if m == nil {
		return
	}
	for i, b := range m.bounds {
		if v <= b {
			m.counts[i]++
			break
		}
	}
	// Samples above every bound land only in +Inf (the implicit last
	// bucket rendered at export).
	m.sum += v
	m.count++
}

// Registry is a set of metric slots registered at bind time. It is not
// goroutine-safe: a registry belongs to one replication (or one
// aggregator behind its own mutex), and its slots are updated by plain
// writes.
type Registry struct {
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

// seriesKey renders the canonical name{k="v",...} identity of a series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register creates (or returns the existing) slot for a series.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []Label) *metric {
	key := seriesKey(name, labels)
	if m := r.byKey[key]; m != nil {
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels, series: key}
	if kind == KindHistogram {
		m.bounds = append([]float64(nil), bounds...)
		m.counts = make([]uint64, len(m.bounds))
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	return Counter{r.register(name, help, KindCounter, nil, labels)}
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{r.register(name, help, KindGauge, nil, labels)}
}

// Histogram registers (or finds) a histogram series with the given
// upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	return Histogram{r.register(name, help, KindHistogram, bounds, labels)}
}

// Merge folds another registry into this one with deterministic,
// order-independent semantics: counters sum, gauges keep the maximum,
// histograms merge bucket-wise (bounds must match). Series missing here
// are created. Replications complete in scheduler order, so only
// commutative folds keep the aggregate bit-identical at any worker
// count.
func (r *Registry) Merge(other *Registry) {
	for _, om := range other.metrics {
		m := r.register(om.name, om.help, om.kind, om.bounds, om.labels)
		switch om.kind {
		case KindCounter:
			m.val += om.val
		case KindGauge:
			if om.val > m.val {
				m.val = om.val
			}
		case KindHistogram:
			if len(m.counts) == len(om.counts) {
				for i := range om.counts {
					m.counts[i] += om.counts[i]
				}
				m.sum += om.sum
				m.count += om.count
			}
		}
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, series sorted by name for a stable snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sorted := append([]*metric(nil), r.metrics...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].series < sorted[j].series })
	seen := map[string]bool{}
	for _, m := range sorted {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case KindHistogram:
			cum := uint64(0)
			for i, b := range m.bounds {
				cum += m.counts[i]
				fmt.Fprintf(bw, "%s %d\n", seriesKey(m.name+"_bucket", append(append([]Label(nil), m.labels...), Label{"le", formatFloat(b)})), cum)
			}
			fmt.Fprintf(bw, "%s %d\n", seriesKey(m.name+"_bucket", append(append([]Label(nil), m.labels...), Label{"le", "+Inf"})), m.count)
			fmt.Fprintf(bw, "%s %s\n", seriesKey(m.name+"_sum", m.labels), formatFloat(m.sum))
			fmt.Fprintf(bw, "%s %d\n", seriesKey(m.name+"_count", m.labels), m.count)
		default:
			fmt.Fprintf(bw, "%s %s\n", m.series, formatFloat(m.val))
		}
	}
	return bw.Flush()
}

// formatFloat renders a value the Prometheus way ("+Inf" for the
// implicit last histogram bound, %g otherwise).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Aggregator merges per-replication registries behind a mutex: workers
// call Add as their replications finish (any order — the folds are
// commutative), readers snapshot with WritePrometheus.
type Aggregator struct {
	mu  sync.Mutex
	reg *Registry
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{reg: NewRegistry()}
}

// Add merges one finished replication's registry into the aggregate.
func (a *Aggregator) Add(r *Registry) {
	a.mu.Lock()
	a.reg.Merge(r)
	a.mu.Unlock()
}

// With runs fn on the aggregate registry under the mutex — for sweep-
// level gauges owned by the coordinator (reps/sec, utilization).
func (a *Aggregator) With(fn func(*Registry)) {
	a.mu.Lock()
	fn(a.reg)
	a.mu.Unlock()
}

// WritePrometheus snapshots the aggregate under the mutex.
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reg.WritePrometheus(w)
}

// Lint validates a Prometheus text snapshot: every non-comment line must
// parse as `series value`, series must be unique, metric names must be
// legal, and no value may be NaN. It is what the CI instrumented-sweep
// step runs against the -metrics output.
func Lint(data []byte) error {
	seen := map[string]bool{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return fmt.Errorf("obs: line %d: no value: %q", ln+1, line)
		}
		series, val := line[:i], line[i+1:]
		name := series
		if j := strings.IndexByte(series, '{'); j >= 0 {
			if !strings.HasSuffix(series, "}") {
				return fmt.Errorf("obs: line %d: unterminated labels: %q", ln+1, series)
			}
			name = series[:j]
		}
		if !validMetricName(name) {
			return fmt.Errorf("obs: line %d: bad metric name %q", ln+1, name)
		}
		if seen[series] {
			return fmt.Errorf("obs: line %d: duplicate series %q", ln+1, series)
		}
		seen[series] = true
		if val == "+Inf" || val == "-Inf" {
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			return fmt.Errorf("obs: line %d: bad value %q: %v", ln+1, val, err)
		}
		if math.IsNaN(f) {
			return fmt.Errorf("obs: line %d: NaN value for %q", ln+1, series)
		}
	}
	if len(seen) == 0 {
		return fmt.Errorf("obs: snapshot contains no series")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
