package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressLine renders a live one-line sweep progress display
// (done/total, reps/sec, ETA) to a terminal stream. Hook Update into
// runner.Config.OnProgress; the runner already serializes those calls,
// but ProgressLine carries its own mutex so several sweeps can share
// one line. Progress goes to stderr only — stdout stays byte-identical.
type ProgressLine struct {
	mu      sync.Mutex
	w       io.Writer
	label   string
	start   time.Time
	last    time.Time
	written bool
	now     func() time.Time // test seam
}

// NewProgressLine starts a progress line labelled label on w.
func NewProgressLine(w io.Writer, label string) *ProgressLine {
	p := &ProgressLine{w: w, label: label, now: time.Now}
	p.start = p.now()
	return p
}

// Update redraws the line for done of total replications. Redraws are
// throttled to ~10/sec except for the final update.
func (p *ProgressLine) Update(done, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if done < total && p.written && now.Sub(p.last) < 100*time.Millisecond {
		return
	}
	p.last = now
	p.written = true
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := "--"
	if rate > 0 && done < total {
		eta = formatETA(float64(total-done) / rate)
	} else if done >= total {
		eta = "done"
	}
	fmt.Fprintf(p.w, "\r%-12s %4d/%d  %6.1f reps/s  ETA %s ", p.label, done, total, rate, eta)
}

// Finish terminates the line with a newline if anything was drawn.
func (p *ProgressLine) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.written {
		fmt.Fprintln(p.w)
		p.written = false
	}
}

// Rate returns replications per second of wall clock so far.
func (p *ProgressLine) Rate(done int) float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := p.now().Sub(p.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(done) / elapsed
}

func formatETA(sec float64) string {
	if sec < 0 {
		sec = 0
	}
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}
