package obs

import (
	"sync"
	"time"
)

// RunnerStats folds the parallel runner's per-replication wall-clock
// timings (runner.Config.OnJobTime) into sweep-level throughput and
// worker-utilization metrics. The runner serializes OnJobTime calls, but
// a sweep may issue several runner invocations, so the stats carry their
// own mutex. A nil *RunnerStats is inert.
type RunnerStats struct {
	mu      sync.Mutex
	workers int
	jobs    int
	busy    time.Duration
	start   time.Time
	now     func() time.Time // test seam
}

// NewRunnerStats starts tracking a sweep executed on `workers` workers.
func NewRunnerStats(workers int) *RunnerStats {
	s := &RunnerStats{workers: workers, now: time.Now}
	s.start = s.now()
	return s
}

// JobTime records one replication's wall-clock duration — wire it to
// runner.Config.OnJobTime.
func (s *RunnerStats) JobTime(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.jobs++
	s.busy += d
	s.mu.Unlock()
}

// Sample registers the runner series into r: replications completed,
// summed replication wall-clock, completion rate, and worker utilization
// (busy worker-seconds over elapsed × workers). The values are wall-clock
// derived, so they belong in metric snapshots, never in result output.
func (s *RunnerStats) Sample(r *Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := s.now().Sub(s.start).Seconds()
	r.Counter("empower_runner_replications_total",
		"replications completed by the parallel runner").Set(float64(s.jobs))
	r.Counter("empower_runner_job_seconds_total",
		"summed per-replication wall-clock time").Set(s.busy.Seconds())
	rate := r.Gauge("empower_runner_replications_per_second",
		"replication completion rate since sweep start")
	util := r.Gauge("empower_runner_worker_utilization",
		"busy worker-seconds over elapsed time x workers (0..1)")
	if elapsed > 0 {
		rate.Set(float64(s.jobs) / elapsed)
		if s.workers > 0 {
			u := s.busy.Seconds() / (elapsed * float64(s.workers))
			if u > 1 {
				u = 1
			}
			util.Set(u)
		}
	}
}
