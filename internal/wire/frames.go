package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
)

// DataFrame is a layer-2.5 data packet: the 20-byte header plus the
// metadata that, on the real testbed, rides in the Ethernet encapsulation
// and kernel timestamps (source/destination node, flow tag, hop cursor,
// send timestamp for delay equalization, payload length).
type DataFrame struct {
	Header   Header
	Src, Dst graph.NodeID
	FlowID   uint16
	// RouteIdx identifies which of the flow's routes this packet rides
	// (destination tracks per-route sequence state with it).
	RouteIdx uint8
	// Hop is the forwarding cursor into Header.Route.
	Hop uint8
	// SentAt is the source timestamp in seconds (for delay equalization).
	SentAt float64
	// PayloadLen is the application payload size in bytes.
	PayloadLen uint16
}

const dataFrameSize = 1 + HeaderSize + 2 + 2 + 2 + 1 + 1 + 8 + 2

// WireLen returns the total frame size in bytes (framing + payload).
func (f *DataFrame) WireLen() int { return dataFrameSize + int(f.PayloadLen) }

// AppendBinary appends the frame encoding (without the simulated payload
// bytes) to buf and returns the extended slice; see Header.AppendBinary
// for the scratch-buffer convention.
func (f *DataFrame) AppendBinary(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, byte(TypeData))
	buf = f.Header.AppendBinary(buf)
	buf = appendZeros(buf, dataFrameSize-1-HeaderSize)
	off := start + 1 + HeaderSize
	binary.BigEndian.PutUint16(buf[off:], uint16(f.Src))
	binary.BigEndian.PutUint16(buf[off+2:], uint16(f.Dst))
	binary.BigEndian.PutUint16(buf[off+4:], f.FlowID)
	buf[off+6] = f.RouteIdx
	buf[off+7] = f.Hop
	binary.BigEndian.PutUint64(buf[off+8:], floatBits(f.SentAt))
	binary.BigEndian.PutUint16(buf[off+16:], f.PayloadLen)
	return buf
}

// MarshalBinary encodes the frame (without the simulated payload bytes).
func (f *DataFrame) MarshalBinary() []byte {
	return f.AppendBinary(make([]byte, 0, dataFrameSize))
}

// UnmarshalBinary decodes a data frame.
func (f *DataFrame) UnmarshalBinary(buf []byte) error {
	if len(buf) < dataFrameSize {
		return ErrShort
	}
	if FrameType(buf[0]) != TypeData {
		return ErrBadType
	}
	if err := f.Header.UnmarshalBinary(buf[1:]); err != nil {
		return err
	}
	off := 1 + HeaderSize
	f.Src = graph.NodeID(binary.BigEndian.Uint16(buf[off:]))
	f.Dst = graph.NodeID(binary.BigEndian.Uint16(buf[off+2:]))
	f.FlowID = binary.BigEndian.Uint16(buf[off+4:])
	f.RouteIdx = buf[off+6]
	f.Hop = buf[off+7]
	f.SentAt = bitsFloat(binary.BigEndian.Uint64(buf[off+8:]))
	f.PayloadLen = binary.BigEndian.Uint16(buf[off+16:])
	return nil
}

// RouteAck carries one route's feedback inside an AckFrame.
type RouteAck struct {
	RouteIdx uint8
	// QR is the accumulated price observed at the destination (§4.2's
	// "the destination can send back q_r to the source").
	QR float64
	// MaxSeq is the highest sequence number received on this route, used
	// by the source for loss detection and rate accounting.
	MaxSeq uint32
	// Delivered counts payload bytes received on this route since the
	// previous acknowledgement.
	Delivered uint32
}

// AckFrame is the per-flow acknowledgement the destination emits every
// 100 ms (at most 10 per second), sent back over the best single path with
// priority.
type AckFrame struct {
	Src, Dst graph.NodeID // Src = flow source (ack receiver)
	FlowID   uint16
	// SentAt timestamps the ack for RTT estimation.
	SentAt float64
	Routes []RouteAck
}

const ackFixedSize = 1 + 2 + 2 + 2 + 8 + 1
const routeAckSize = 1 + 4 + 4 + 4

// WireLen returns the encoded size in bytes.
func (f *AckFrame) WireLen() int { return ackFixedSize + len(f.Routes)*routeAckSize }

// AppendBinary appends the ack encoding to buf and returns the extended
// slice; see Header.AppendBinary for the scratch-buffer convention.
func (f *AckFrame) AppendBinary(buf []byte) ([]byte, error) {
	if len(f.Routes) > 255 {
		return buf, fmt.Errorf("wire: %d route acks exceed 255", len(f.Routes))
	}
	start := len(buf)
	buf = appendZeros(buf, ackFixedSize)
	buf[start] = byte(TypeAck)
	binary.BigEndian.PutUint16(buf[start+1:], uint16(f.Src))
	binary.BigEndian.PutUint16(buf[start+3:], uint16(f.Dst))
	binary.BigEndian.PutUint16(buf[start+5:], f.FlowID)
	binary.BigEndian.PutUint64(buf[start+7:], floatBits(f.SentAt))
	buf[start+15] = byte(len(f.Routes))
	for _, r := range f.Routes {
		off := len(buf)
		buf = appendZeros(buf, routeAckSize)
		buf[off] = r.RouteIdx
		binary.BigEndian.PutUint32(buf[off+1:], encodeFixed(r.QR))
		binary.BigEndian.PutUint32(buf[off+5:], r.MaxSeq)
		binary.BigEndian.PutUint32(buf[off+9:], r.Delivered)
	}
	return buf, nil
}

// MarshalBinary encodes the ack.
func (f *AckFrame) MarshalBinary() ([]byte, error) {
	return f.AppendBinary(make([]byte, 0, f.WireLen()))
}

// UnmarshalBinary decodes an ack.
func (f *AckFrame) UnmarshalBinary(buf []byte) error {
	if len(buf) < ackFixedSize {
		return ErrShort
	}
	if FrameType(buf[0]) != TypeAck {
		return ErrBadType
	}
	f.Src = graph.NodeID(binary.BigEndian.Uint16(buf[1:]))
	f.Dst = graph.NodeID(binary.BigEndian.Uint16(buf[3:]))
	f.FlowID = binary.BigEndian.Uint16(buf[5:])
	f.SentAt = bitsFloat(binary.BigEndian.Uint64(buf[7:]))
	n := int(buf[15])
	if len(buf) < ackFixedSize+n*routeAckSize {
		return ErrShort
	}
	// Reuse the Routes backing array across decodes: steady-state ack
	// processing must not allocate per frame.
	if cap(f.Routes) >= n {
		f.Routes = f.Routes[:n]
	} else {
		f.Routes = make([]RouteAck, n)
	}
	off := ackFixedSize
	for i := range f.Routes {
		f.Routes[i] = RouteAck{
			RouteIdx:  buf[off],
			QR:        decodeFixed(binary.BigEndian.Uint32(buf[off+1:])),
			MaxSeq:    binary.BigEndian.Uint32(buf[off+5:]),
			Delivered: binary.BigEndian.Uint32(buf[off+9:]),
		}
		off += routeAckSize
	}
	return nil
}

// PriceFrame is the periodic per-technology broadcast of §4.2: a node
// advertises, for each technology k it uses, (i) its aggregate airtime
// demand over its egress links of k and (ii) the sum of its dual variables
// γ_l over those links. Overhearing nodes use these to compute y_l for
// their own links (eq. 7) and the Σ_{i∈I_l} γ_i term of the route price
// (eq. 9). The TCPPresent bit piggybacks the §6.4 signal that a TCP flow
// traverses this node's contention domain, asking neighbors to apply the
// larger constraint margin δ.
type PriceFrame struct {
	Origin graph.NodeID
	Tech   graph.Tech
	// Airtime is the node's aggregate airtime demand on this technology
	// (dimensionless, 16.16 fixed point on the wire).
	Airtime float64
	// GammaSum is Σ γ_l over the node's egress links of this technology.
	GammaSum float64
	// TCPPresent piggybacks TCP presence for δ selection (§6.4).
	TCPPresent bool
}

const priceFrameSize = 1 + 2 + 1 + 4 + 4 + 1

// WireLen returns the encoded size in bytes.
func (f *PriceFrame) WireLen() int { return priceFrameSize }

// AppendBinary appends the price-broadcast encoding to buf and returns
// the extended slice; see Header.AppendBinary for the scratch-buffer
// convention.
func (f *PriceFrame) AppendBinary(buf []byte) []byte {
	off := len(buf)
	buf = appendZeros(buf, priceFrameSize)
	buf[off] = byte(TypePrice)
	binary.BigEndian.PutUint16(buf[off+1:], uint16(f.Origin))
	buf[off+3] = byte(f.Tech)
	binary.BigEndian.PutUint32(buf[off+4:], encodeFixed(f.Airtime))
	binary.BigEndian.PutUint32(buf[off+8:], encodeFixed(f.GammaSum))
	if f.TCPPresent {
		buf[off+12] = 1
	}
	return buf
}

// MarshalBinary encodes the price broadcast.
func (f *PriceFrame) MarshalBinary() []byte {
	return f.AppendBinary(make([]byte, 0, priceFrameSize))
}

// UnmarshalBinary decodes a price broadcast.
func (f *PriceFrame) UnmarshalBinary(buf []byte) error {
	if len(buf) < priceFrameSize {
		return ErrShort
	}
	if FrameType(buf[0]) != TypePrice {
		return ErrBadType
	}
	f.Origin = graph.NodeID(binary.BigEndian.Uint16(buf[1:]))
	f.Tech = graph.Tech(buf[3])
	f.Airtime = decodeFixed(binary.BigEndian.Uint32(buf[4:]))
	f.GammaSum = decodeFixed(binary.BigEndian.Uint32(buf[8:]))
	f.TCPPresent = buf[12] == 1
	return nil
}

// Peek returns the frame type of an encoded buffer.
func Peek(buf []byte) (FrameType, error) {
	if len(buf) < 1 {
		return 0, ErrShort
	}
	t := FrameType(buf[0])
	switch t {
	case TypeData, TypeAck, TypePrice:
		return t, nil
	default:
		return 0, ErrBadType
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(u uint64) float64 { return math.Float64frombits(u) }
