package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// TestDecodersNeverPanicOnRandomBytes feeds random buffers of assorted
// sizes to every decoder: they must return errors or valid frames, never
// panic or read out of bounds.
func TestDecodersNeverPanicOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(96)
		buf := make([]byte, n)
		rng.Read(buf)
		var h Header
		_ = h.UnmarshalBinary(buf)
		var d DataFrame
		_ = d.UnmarshalBinary(buf)
		var a AckFrame
		_ = a.UnmarshalBinary(buf)
		var p PriceFrame
		_ = p.UnmarshalBinary(buf)
		_, _ = Peek(buf)
	}
}

// TestDataFramePropertyRoundTrip round-trips random frames.
func TestDataFramePropertyRoundTrip(t *testing.T) {
	f := func(src, dst, flow uint16, ri, hop uint8, seq uint32, pl uint16) bool {
		df := DataFrame{
			Src: graph.NodeID(src), Dst: graph.NodeID(dst), FlowID: flow,
			RouteIdx: ri, Hop: hop, PayloadLen: pl,
		}
		df.Header.Seq = seq
		var g DataFrame
		if err := g.UnmarshalBinary(df.MarshalBinary()); err != nil {
			return false
		}
		return g.Src == df.Src && g.Dst == df.Dst && g.FlowID == flow &&
			g.RouteIdx == ri && g.Hop == hop && g.Header.Seq == seq && g.PayloadLen == pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAckFramePropertyRoundTrip round-trips random acks.
func TestAckFramePropertyRoundTrip(t *testing.T) {
	f := func(src, dst, flow uint16, n uint8, seqBase uint32) bool {
		routes := int(n % 8)
		ack := AckFrame{Src: graph.NodeID(src), Dst: graph.NodeID(dst), FlowID: flow}
		for i := 0; i < routes; i++ {
			ack.Routes = append(ack.Routes, RouteAck{
				RouteIdx: uint8(i), MaxSeq: seqBase + uint32(i), Delivered: uint32(i) * 100,
			})
		}
		buf, err := ack.MarshalBinary()
		if err != nil {
			return false
		}
		var g AckFrame
		if err := g.UnmarshalBinary(buf); err != nil {
			return false
		}
		if len(g.Routes) != routes {
			return false
		}
		for i := range g.Routes {
			if g.Routes[i].MaxSeq != ack.Routes[i].MaxSeq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
