package wire

import (
	"bytes"
	"testing"
)

// TestAppendBinaryMatchesMarshal pins AppendBinary to MarshalBinary for
// all three frame types plus the bare header, including appending after
// existing bytes.
func TestAppendBinaryMatchesMarshal(t *testing.T) {
	h := Header{QR: 3.75, Seq: 99}
	h.SetRoute([]InterfaceID{7, 8, 9})

	df := DataFrame{Header: h, Src: 2, Dst: 11, FlowID: 4, RouteIdx: 1, Hop: 2, SentAt: 1.5, PayloadLen: 1400}
	ack := AckFrame{Src: 2, Dst: 11, FlowID: 4, SentAt: 2.25, Routes: []RouteAck{
		{RouteIdx: 0, QR: 0.5, MaxSeq: 10, Delivered: 4200},
		{RouteIdx: 1, QR: 1.25, MaxSeq: 7, Delivered: 2800},
	}}
	pf := PriceFrame{Origin: 5, Tech: 1, Airtime: 0.75, GammaSum: 2.5, TCPPresent: true}

	prefix := []byte{0xde, 0xad}
	if got := h.AppendBinary(append([]byte(nil), prefix...)); !bytes.Equal(got[2:], h.MarshalBinary()) || !bytes.Equal(got[:2], prefix) {
		t.Errorf("Header.AppendBinary = %x", got)
	}
	if got := df.AppendBinary(append([]byte(nil), prefix...)); !bytes.Equal(got[2:], df.MarshalBinary()) || !bytes.Equal(got[:2], prefix) {
		t.Errorf("DataFrame.AppendBinary = %x", got)
	}
	want, err := ack.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ack.AppendBinary(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[2:], want) || !bytes.Equal(got[:2], prefix) {
		t.Errorf("AckFrame.AppendBinary = %x, want %x", got[2:], want)
	}
	if got := pf.AppendBinary(append([]byte(nil), prefix...)); !bytes.Equal(got[2:], pf.MarshalBinary()) || !bytes.Equal(got[:2], prefix) {
		t.Errorf("PriceFrame.AppendBinary = %x", got)
	}
}

// TestAppendBinaryTooManyRoutes: the 255-route limit errors through
// AppendBinary like it does through MarshalBinary.
func TestAppendBinaryTooManyRoutes(t *testing.T) {
	f := AckFrame{Routes: make([]RouteAck, 256)}
	if _, err := f.AppendBinary(nil); err == nil {
		t.Error("256 route acks should not encode")
	}
}

// TestAckUnmarshalReusesRoutes: decoding into an AckFrame whose Routes
// slice already has capacity must reuse it (the steady-state ack path is
// allocation-free).
func TestAckUnmarshalReusesRoutes(t *testing.T) {
	src := AckFrame{Src: 1, Dst: 2, FlowID: 3, Routes: []RouteAck{
		{RouteIdx: 0, QR: 1, MaxSeq: 5, Delivered: 100},
		{RouteIdx: 1, QR: 2, MaxSeq: 6, Delivered: 200},
	}}
	buf, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g := AckFrame{Routes: make([]RouteAck, 0, 8)}
	backing := g.Routes[:8]
	if err := g.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if len(g.Routes) != 2 || g.Routes[1].Delivered != 200 {
		t.Fatalf("decoded routes %+v", g.Routes)
	}
	if &g.Routes[0] != &backing[0] {
		t.Error("UnmarshalBinary reallocated Routes despite sufficient capacity")
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := g.UnmarshalBinary(buf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state ack decode allocates %v per frame, want 0", avg)
	}
}

// TestAppendBinaryScratchReuse: encoding into a warm scratch buffer
// allocates nothing.
func TestAppendBinaryScratchReuse(t *testing.T) {
	df := DataFrame{Src: 1, Dst: 2, FlowID: 3, PayloadLen: 1500}
	df.Header.SetRoute([]InterfaceID{4, 5, 6})
	pf := PriceFrame{Origin: 1, Tech: 2, Airtime: 0.5, GammaSum: 1}
	scratch := make([]byte, 0, 64)
	if avg := testing.AllocsPerRun(100, func() {
		scratch = df.AppendBinary(scratch[:0])
		scratch = pf.AppendBinary(scratch[:0])
	}); avg != 0 {
		t.Errorf("warm-scratch encode allocates %v per run, want 0", avg)
	}
}
