// Package wire defines the EMPoWER layer-2.5 frame formats of §6.1.
//
// The data header is the paper's fixed 20-byte header:
//
//	bytes  0..11  source route: 6 hops × 2-byte interface identifiers
//	              (short hashes of the interfaces' MAC addresses; 0x0000
//	              marks unused slots)
//	bytes 12..15  q_r, the accumulated route price (unsigned 16.16 fixed
//	              point), updated by every forwarding node
//	bytes 16..19  sequence number, used by the destination to reorder
//	              packets arriving over different routes
//
// Control frames (acknowledgements carrying q_r and per-route receive
// state back to the source every 100 ms, and the per-technology price
// broadcasts of §4.2) are given explicit binary formats here; on the real
// testbed their fields ride in Click packet annotations and Ethernet
// headers, so their exact layout is implementation-defined. A one-byte
// frame-type prefix plays the role of the EtherType demultiplexer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Frame format constants.
const (
	// HeaderSize is the EMPoWER data-header size in bytes (paper §6.1).
	HeaderSize = 20
	// MaxHops is the maximum route length the header can carry.
	MaxHops = 6
	// fixedPointOne is the 16.16 fixed-point representation of 1.0 used
	// for the q_r field.
	fixedPointOne = 1 << 16
)

// FrameType discriminates layer-2.5 frames.
type FrameType byte

// Frame types.
const (
	TypeData  FrameType = 1
	TypeAck   FrameType = 2
	TypePrice FrameType = 3
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypePrice:
		return "price"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// InterfaceID is the 2-byte identifier of a network interface at layer
// 2.5 (a short hash of the interface's MAC address in the paper). The
// zero value marks an unused route slot, so valid IDs are nonzero.
type InterfaceID uint16

// HashInterface derives a stable nonzero InterfaceID for a node's
// interface of the given technology (an FNV-style mix standing in for the
// MAC-address hash).
func HashInterface(node graph.NodeID, tech graph.Tech) InterfaceID {
	h := uint32(2166136261)
	h = (h ^ uint32(node+1)) * 16777619
	h = (h ^ uint32(tech+1)) * 16777619
	id := InterfaceID(h>>16) ^ InterfaceID(h)
	if id == 0 {
		id = 1
	}
	return id
}

// Errors returned by decoders.
var (
	ErrShort        = errors.New("wire: buffer too short")
	ErrBadType      = errors.New("wire: unknown frame type")
	ErrRouteTooLong = errors.New("wire: route exceeds 6 hops")
)

// Header is the 20-byte EMPoWER data header.
type Header struct {
	// Route lists the ingress interface of each hop along the source
	// route; unused slots are zero.
	Route [MaxHops]InterfaceID
	// QR is the accumulated route price q_r (nonnegative; saturates at
	// ~65535 in the 16.16 encoding).
	QR float64
	// Seq is the per-flow-route-set sequence number.
	Seq uint32
}

// RouteLen returns the number of used route slots.
func (h *Header) RouteLen() int {
	n := 0
	for _, r := range h.Route {
		if r != 0 {
			n++
		} else {
			break
		}
	}
	return n
}

// SetRoute fills the route slots from ids. It fails if len(ids) exceeds
// MaxHops — routes longer than 6 hops cannot be represented, which is the
// header's (and the paper's) deliberate limit for local networks.
func (h *Header) SetRoute(ids []InterfaceID) error {
	if len(ids) > MaxHops {
		return ErrRouteTooLong
	}
	h.Route = [MaxHops]InterfaceID{}
	copy(h.Route[:], ids)
	return nil
}

// AddQR accumulates a forwarding node's price contribution
// d_l · Σ_{i∈I_l} γ_i into the QR field (§4.2).
func (h *Header) AddQR(v float64) {
	if v > 0 {
		h.QR += v
	}
}

func encodeFixed(v float64) uint32 {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	f := v * fixedPointOne
	if f >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(f)
}

func decodeFixed(u uint32) float64 { return float64(u) / fixedPointOne }

// zeros backs appendZeros; large enough for any fixed-size frame chunk.
var zeros [64]byte

// appendZeros extends buf by n zero bytes without a temporary slice.
func appendZeros(buf []byte, n int) []byte {
	for n > len(zeros) {
		buf = append(buf, zeros[:]...)
		n -= len(zeros)
	}
	return append(buf, zeros[:n]...)
}

// AppendBinary appends the HeaderSize-byte encoding to buf and returns
// the extended slice. Callers on hot paths pass a retained scratch
// buffer (`buf[:0]`) so encoding allocates nothing once the scratch has
// grown to size.
func (h *Header) AppendBinary(buf []byte) []byte {
	off := len(buf)
	buf = appendZeros(buf, HeaderSize)
	for i, r := range h.Route {
		binary.BigEndian.PutUint16(buf[off+i*2:], uint16(r))
	}
	binary.BigEndian.PutUint32(buf[off+12:], encodeFixed(h.QR))
	binary.BigEndian.PutUint32(buf[off+16:], h.Seq)
	return buf
}

// MarshalBinary encodes the header into exactly HeaderSize bytes.
func (h *Header) MarshalBinary() []byte {
	return h.AppendBinary(make([]byte, 0, HeaderSize))
}

// UnmarshalBinary decodes a header from buf.
func (h *Header) UnmarshalBinary(buf []byte) error {
	if len(buf) < HeaderSize {
		return ErrShort
	}
	for i := range h.Route {
		h.Route[i] = InterfaceID(binary.BigEndian.Uint16(buf[i*2:]))
	}
	h.QR = decodeFixed(binary.BigEndian.Uint32(buf[12:]))
	h.Seq = binary.BigEndian.Uint32(buf[16:])
	return nil
}
