package wire

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{QR: 1.5, Seq: 123456}
	if err := h.SetRoute([]InterfaceID{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	buf := h.MarshalBinary()
	if len(buf) != HeaderSize {
		t.Fatalf("header size %d, want %d", len(buf), HeaderSize)
	}
	var g Header
	if err := g.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if g.Seq != h.Seq || g.Route != h.Route {
		t.Errorf("round trip mismatch: %+v vs %+v", g, h)
	}
	if math.Abs(g.QR-h.QR) > 1.0/65536 {
		t.Errorf("QR %v vs %v", g.QR, h.QR)
	}
}

func TestHeaderRouteLen(t *testing.T) {
	var h Header
	if h.RouteLen() != 0 {
		t.Error("empty route len != 0")
	}
	h.SetRoute([]InterfaceID{1, 2})
	if h.RouteLen() != 2 {
		t.Errorf("RouteLen = %d, want 2", h.RouteLen())
	}
	// SetRoute clears old entries.
	h.SetRoute([]InterfaceID{9})
	if h.RouteLen() != 1 {
		t.Errorf("RouteLen after reset = %d, want 1", h.RouteLen())
	}
}

func TestHeaderRouteTooLong(t *testing.T) {
	var h Header
	ids := make([]InterfaceID, 7)
	for i := range ids {
		ids[i] = InterfaceID(i + 1)
	}
	if err := h.SetRoute(ids); err != ErrRouteTooLong {
		t.Errorf("err = %v, want ErrRouteTooLong", err)
	}
}

func TestHeaderShortBuffer(t *testing.T) {
	var h Header
	if err := h.UnmarshalBinary(make([]byte, 10)); err != ErrShort {
		t.Errorf("err = %v, want ErrShort", err)
	}
}

func TestAddQR(t *testing.T) {
	var h Header
	h.AddQR(0.5)
	h.AddQR(0.25)
	h.AddQR(-3) // ignored
	if math.Abs(h.QR-0.75) > 1e-12 {
		t.Errorf("QR = %v, want 0.75", h.QR)
	}
}

func TestFixedPointSaturation(t *testing.T) {
	h := Header{QR: 1e9} // beyond 16.16 range
	var g Header
	g.UnmarshalBinary(h.MarshalBinary())
	if g.QR < 65000 {
		t.Errorf("saturated QR = %v, want near max", g.QR)
	}
	// NaN encodes as 0.
	h = Header{QR: math.NaN()}
	g = Header{}
	g.UnmarshalBinary(h.MarshalBinary())
	if g.QR != 0 {
		t.Errorf("NaN QR decoded to %v, want 0", g.QR)
	}
}

func TestHeaderQRPropertyRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw) / 65536 // representable range
		h := Header{QR: v}
		var g Header
		g.UnmarshalBinary(h.MarshalBinary())
		return math.Abs(g.QR-v) <= 1.0/65536
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashInterface(t *testing.T) {
	seen := map[InterfaceID]bool{}
	collisions := 0
	for n := 0; n < 50; n++ {
		for _, tech := range []graph.Tech{graph.TechPLC, graph.TechWiFi, graph.TechWiFi2} {
			id := HashInterface(graph.NodeID(n), tech)
			if id == 0 {
				t.Fatal("interface ID must be nonzero")
			}
			if seen[id] {
				collisions++
			}
			seen[id] = true
		}
	}
	// 150 IDs in a 16-bit space: a couple of collisions are tolerable,
	// many are not.
	if collisions > 2 {
		t.Errorf("%d hash collisions across 150 interfaces", collisions)
	}
	// Deterministic.
	if HashInterface(3, graph.TechWiFi) != HashInterface(3, graph.TechWiFi) {
		t.Error("hash not deterministic")
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	f := DataFrame{
		Src: 4, Dst: 17, FlowID: 3, RouteIdx: 1, Hop: 2,
		SentAt: 12.345, PayloadLen: 1400,
	}
	f.Header.Seq = 999
	f.Header.SetRoute([]InterfaceID{7, 8})
	f.Header.QR = 2.5

	buf := f.MarshalBinary()
	var g DataFrame
	if err := g.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if g.Src != f.Src || g.Dst != f.Dst || g.FlowID != f.FlowID ||
		g.RouteIdx != f.RouteIdx || g.Hop != f.Hop || g.PayloadLen != f.PayloadLen {
		t.Errorf("round trip mismatch: %+v vs %+v", g, f)
	}
	if g.SentAt != f.SentAt {
		t.Errorf("SentAt %v vs %v", g.SentAt, f.SentAt)
	}
	if g.Header.Seq != 999 || g.Header.RouteLen() != 2 {
		t.Errorf("header mismatch: %+v", g.Header)
	}
	if f.WireLen() != len(buf)+1400 {
		t.Errorf("WireLen = %d", f.WireLen())
	}
}

func TestDataFrameErrors(t *testing.T) {
	var g DataFrame
	if err := g.UnmarshalBinary(nil); err != ErrShort {
		t.Error("want ErrShort")
	}
	buf := make([]byte, 64)
	buf[0] = byte(TypeAck)
	if err := g.UnmarshalBinary(buf); err != ErrBadType {
		t.Error("want ErrBadType")
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	f := AckFrame{
		Src: 1, Dst: 13, FlowID: 2, SentAt: 99.5,
		Routes: []RouteAck{
			{RouteIdx: 0, QR: 0.75, MaxSeq: 100, Delivered: 50000},
			{RouteIdx: 1, QR: 1.25, MaxSeq: 90, Delivered: 25000},
		},
	}
	buf, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != f.WireLen() {
		t.Errorf("encoded %d bytes, WireLen says %d", len(buf), f.WireLen())
	}
	var g AckFrame
	if err := g.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if g.Src != f.Src || g.Dst != f.Dst || g.FlowID != f.FlowID || g.SentAt != f.SentAt {
		t.Errorf("fixed fields mismatch: %+v", g)
	}
	if len(g.Routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(g.Routes))
	}
	for i := range f.Routes {
		if g.Routes[i].MaxSeq != f.Routes[i].MaxSeq ||
			g.Routes[i].Delivered != f.Routes[i].Delivered ||
			g.Routes[i].RouteIdx != f.Routes[i].RouteIdx {
			t.Errorf("route %d mismatch: %+v vs %+v", i, g.Routes[i], f.Routes[i])
		}
		if math.Abs(g.Routes[i].QR-f.Routes[i].QR) > 1.0/65536 {
			t.Errorf("route %d QR %v vs %v", i, g.Routes[i].QR, f.Routes[i].QR)
		}
	}
}

func TestAckFrameTruncatedRoutes(t *testing.T) {
	f := AckFrame{Routes: []RouteAck{{}, {}}}
	buf, _ := f.MarshalBinary()
	var g AckFrame
	if err := g.UnmarshalBinary(buf[:len(buf)-4]); err != ErrShort {
		t.Errorf("err = %v, want ErrShort", err)
	}
}

func TestPriceFrameRoundTrip(t *testing.T) {
	f := PriceFrame{Origin: 9, Tech: graph.TechPLC, Airtime: 0.42, GammaSum: 3.5, TCPPresent: true}
	buf := f.MarshalBinary()
	if len(buf) != f.WireLen() {
		t.Errorf("encoded %d, WireLen %d", len(buf), f.WireLen())
	}
	var g PriceFrame
	if err := g.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if g.Origin != 9 || g.Tech != graph.TechPLC || !g.TCPPresent {
		t.Errorf("mismatch: %+v", g)
	}
	if math.Abs(g.Airtime-0.42) > 1.0/65536 || math.Abs(g.GammaSum-3.5) > 1.0/65536 {
		t.Errorf("values: %+v", g)
	}
}

func TestPeek(t *testing.T) {
	d := (&DataFrame{}).MarshalBinary()
	if ty, err := Peek(d); err != nil || ty != TypeData {
		t.Errorf("Peek data = %v, %v", ty, err)
	}
	p := (&PriceFrame{}).MarshalBinary()
	if ty, err := Peek(p); err != nil || ty != TypePrice {
		t.Errorf("Peek price = %v, %v", ty, err)
	}
	if _, err := Peek(nil); err != ErrShort {
		t.Error("want ErrShort")
	}
	if _, err := Peek([]byte{77}); err != ErrBadType {
		t.Error("want ErrBadType")
	}
}

func TestFrameTypeString(t *testing.T) {
	if TypeData.String() != "data" || TypeAck.String() != "ack" || TypePrice.String() != "price" {
		t.Error("FrameType strings wrong")
	}
	if FrameType(9).String() == "" {
		t.Error("unknown type string empty")
	}
}
