package optimal

import (
	"repro/internal/congestion"
	"repro/internal/graph"
)

// Backpressure is a time-slotted simulator of the utility-optimal
// backpressure scheme (Neely et al.) the paper uses as its "optimal"
// reference: per-destination queues, max-weight link scheduling over the
// conflict graph, and utility-based flow control at the sources. The
// paper's point — reproduced by this implementation — is that although the
// scheme is throughput-optimal at steady state, good routes are used only
// after queues on bad routes fill up, so convergence takes thousands of
// time slots versus tens for EMPoWER.
type Backpressure struct {
	net   *graph.Network
	flows []FlowSpec
	cg    *ConflictGraph

	// V is the utility-vs-queue-backlog trade-off parameter; larger V
	// approaches the optimum more closely but grows queues and slows
	// convergence further. Default 2000.
	V float64
	// SlotSeconds is the scheduler granularity. Note the paper's footnote:
	// for the backpressure baseline a "time slot" is one invocation of the
	// centralized scheduler, which is much finer-grained than EMPoWER's
	// 100 ms acknowledgement slot (and correspondingly more expensive).
	// Default 0.01 s.
	SlotSeconds float64
	// ExactSchedLimit bounds the exact max-weight independent-set search
	// (default 24 weighted links; greedy beyond).
	ExactSchedLimit int

	// queues[n][d] is the backlog (Mb) at node n destined to node d.
	queues [][]float64
	// admitted[f] counts megabits admitted into the network by flow f.
	admitted []float64
	// delivered[f] counts megabits that reached the destination.
	delivered []float64
	t         int
}

// NewBackpressure creates a simulator for the given flows.
func NewBackpressure(net *graph.Network, flows []FlowSpec) *Backpressure {
	b := &Backpressure{
		net:             net,
		flows:           flows,
		cg:              NewConflictGraph(net),
		V:               2000,
		SlotSeconds:     0.01,
		ExactSchedLimit: 24,
		admitted:        make([]float64, len(flows)),
		delivered:       make([]float64, len(flows)),
	}
	b.queues = make([][]float64, net.NumNodes())
	for i := range b.queues {
		b.queues[i] = make([]float64, net.NumNodes())
	}
	return b
}

// Step advances one slot: flow control, scheduling, transmission.
func (b *Backpressure) Step() {
	// 1. Flow control: each source admits x_f = argmax V·U_f(x) − x·Q_s(d)
	//    => x = U'^{-1}(Q/V), capped at the node's total egress capacity.
	for f, spec := range b.flows {
		u := spec.Utility
		if u == nil {
			u = congestion.ProportionalFairness{}
		}
		q := b.queues[spec.Src][spec.Dst]
		x := u.PrimeInv(q / b.V)
		var capOut float64
		for _, l := range b.net.Out(spec.Src) {
			capOut += b.net.Link(l).Capacity
		}
		if x > capOut {
			x = capOut
		}
		amount := x * b.SlotSeconds
		b.queues[spec.Src][spec.Dst] += amount
		b.admitted[f] += amount
	}

	// 2. Max-weight scheduling: w_l = c_l · max_d (Q_from(d) − Q_to(d))+.
	n := b.net.NumLinks()
	weights := make([]float64, n)
	bestDst := make([]graph.NodeID, n)
	for l := 0; l < n; l++ {
		link := b.net.Link(graph.LinkID(l))
		if link.Capacity <= 0 {
			continue
		}
		var best float64
		var bd graph.NodeID = -1
		for d := 0; d < b.net.NumNodes(); d++ {
			diff := b.queues[link.From][d] - b.queues[link.To][d]
			if graph.NodeID(d) == link.To {
				// Delivered traffic leaves the system: receiver backlog 0.
				diff = b.queues[link.From][d]
			}
			if diff > best {
				best, bd = diff, graph.NodeID(d)
			}
		}
		if bd >= 0 {
			weights[l] = best * link.Capacity
			bestDst[l] = bd
		} else {
			bestDst[l] = -1
		}
	}
	sched := b.cg.MaxWeightIndependentSet(weights, b.ExactSchedLimit)

	// 3. Transmit on the scheduled links.
	type transfer struct {
		from, to graph.NodeID
		dst      graph.NodeID
		amount   float64
	}
	var moves []transfer
	for _, l := range sched {
		link := b.net.Link(graph.LinkID(l))
		d := bestDst[l]
		if d < 0 {
			continue
		}
		amount := link.Capacity * b.SlotSeconds
		if q := b.queues[link.From][d]; amount > q {
			amount = q
		}
		if amount <= 0 {
			continue
		}
		moves = append(moves, transfer{link.From, link.To, d, amount})
	}
	for _, m := range moves {
		b.queues[m.from][m.dst] -= m.amount
		if m.to == m.dst {
			for f, spec := range b.flows {
				if spec.Dst == m.dst {
					// Attribute deliveries to the (unique in our runs)
					// flow with this destination.
					b.delivered[f] += m.amount
					break
				}
			}
		} else {
			b.queues[m.to][m.dst] += m.amount
		}
	}
	b.t++
}

// Run advances n slots and returns the per-slot delivered throughput of
// flow f (Mbps averaged over a trailing window of `window` slots).
func (b *Backpressure) Run(n, f, window int) []float64 {
	if window <= 0 {
		window = 50
	}
	series := make([]float64, n)
	hist := make([]float64, 0, n+1)
	hist = append(hist, 0)
	for t := 0; t < n; t++ {
		b.Step()
		hist = append(hist, b.delivered[f])
		w := window
		if t+1 < w {
			w = t + 1
		}
		series[t] = (hist[t+1] - hist[t+1-w]) / (float64(w) * b.SlotSeconds)
	}
	return series
}

// DeliveredRate returns flow f's average delivered throughput so far.
func (b *Backpressure) DeliveredRate(f int) float64 {
	if b.t == 0 {
		return 0
	}
	return b.delivered[f] / (float64(b.t) * b.SlotSeconds)
}

// TotalQueue returns the aggregate backlog in the network (Mb), a measure
// of the large queues backpressure needs before converging.
func (b *Backpressure) TotalQueue() float64 {
	var s float64
	for _, row := range b.queues {
		for _, q := range row {
			s += q
		}
	}
	return s
}

// SlotsToFractionOfOptimal returns the first slot at which the trailing
// throughput reaches frac·target, or n if never.
func SlotsToFractionOfOptimal(series []float64, target, frac float64) int {
	for t, v := range series {
		if v >= frac*target {
			return t
		}
	}
	return len(series)
}
