// Package optimal implements the centralized baselines the paper compares
// EMPoWER against (§5.2.2):
//
//   - "optimal": utility maximization over all simple paths under
//     per-clique airtime constraints of the link conflict graph — the
//     steady-state throughput of the backpressure scheme of Neely et al.
//     with a perfect centralized scheduler (the clique bound is exact for
//     the per-technology collision domains used in the evaluation);
//   - "conservative opt": the same maximization under EMPoWER's
//     conservative per-link interference constraint (2), which charges the
//     whole interference domain of every link;
//   - a time-slotted backpressure simulator (max-weight scheduling with
//     utility-based flow control) used to reproduce the convergence-time
//     comparison: backpressure needs thousands of slots where EMPoWER
//     needs tens.
package optimal

import (
	"repro/internal/graph"
)

// EnumerateOptions bounds the simple-path enumeration.
type EnumerateOptions struct {
	// MaxHops bounds the path length in links (default 6, the EMPoWER
	// header limit).
	MaxHops int
	// MaxPaths stops the enumeration after this many paths (default 4096)
	// as a safety valve on dense graphs.
	MaxPaths int
}

func (o EnumerateOptions) maxHops() int {
	if o.MaxHops <= 0 {
		return 6
	}
	return o.MaxHops
}

func (o EnumerateOptions) maxPaths() int {
	if o.MaxPaths <= 0 {
		return 4096
	}
	return o.MaxPaths
}

// EnumeratePaths returns every simple (node-loopless) path from src to dst
// over positive-capacity links, up to the option bounds, in DFS order.
func EnumeratePaths(net *graph.Network, src, dst graph.NodeID, opts EnumerateOptions) []graph.Path {
	var out []graph.Path
	visited := make([]bool, net.NumNodes())
	var cur graph.Path
	var dfs func(u graph.NodeID)
	dfs = func(u graph.NodeID) {
		if len(out) >= opts.maxPaths() {
			return
		}
		if u == dst {
			out = append(out, append(graph.Path(nil), cur...))
			return
		}
		if len(cur) >= opts.maxHops() {
			return
		}
		visited[u] = true
		for _, id := range net.Out(u) {
			l := net.Link(id)
			if l.Capacity <= 0 || visited[l.To] {
				continue
			}
			cur = append(cur, id)
			dfs(l.To)
			cur = cur[:len(cur)-1]
		}
		visited[u] = false
	}
	dfs(src)
	return out
}
