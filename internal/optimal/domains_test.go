package optimal

import (
	"testing"

	"repro/internal/graph"
)

// clusteredNet builds k disjoint triangles of WiFi nodes, spaced far
// beyond the sensing radius, so each triangle is its own interference
// domain.
func clusteredNet(k int) *graph.Network {
	b := graph.NewBuilder(graph.RangeBased{SenseRadius: map[graph.Tech]float64{graph.TechWiFi: 50}})
	for c := 0; c < k; c++ {
		ox := float64(c) * 1000
		a := b.AddNode("", ox, 0, graph.TechWiFi)
		m := b.AddNode("", ox+10, 0, graph.TechWiFi)
		z := b.AddNode("", ox+20, 0, graph.TechWiFi)
		b.AddDuplex(a, m, graph.TechWiFi, 54)
		b.AddDuplex(m, z, graph.TechWiFi, 54)
	}
	return b.Build()
}

func TestInterferenceDomainsClusters(t *testing.T) {
	net := clusteredNet(4)
	d := InterferenceDomains(net)
	if d.Num != 4 {
		t.Fatalf("domains = %d, want 4", d.Num)
	}
	// Links 0..3 belong to cluster 0, 4..7 to cluster 1, and so on, and
	// numbering follows first appearance in LinkID order.
	for l := 0; l < net.NumLinks(); l++ {
		if want := l / 4; d.Link[l] != want {
			t.Fatalf("link %d domain = %d, want %d", l, d.Link[l], want)
		}
	}
	for n := 0; n < net.NumNodes(); n++ {
		if want := n / 3; d.Node[n] != want {
			t.Fatalf("node %d domain = %d, want %d", n, d.Node[n], want)
		}
	}
}

func TestInterferenceDomainsSingleComponent(t *testing.T) {
	// The default model (all same-tech links interfere) plus shared
	// endpoints collapses any network with links into one domain — even a
	// hybrid one, because nodes carrying both technologies bridge them.
	b := graph.NewBuilder(nil)
	a := b.AddNode("a", 0, 0, graph.TechWiFi, graph.TechPLC)
	m := b.AddNode("b", 1, 0, graph.TechWiFi, graph.TechPLC)
	z := b.AddNode("c", 2, 0, graph.TechPLC)
	b.AddDuplex(a, m, graph.TechWiFi, 54)
	b.AddDuplex(m, z, graph.TechPLC, 30)
	d := InterferenceDomains(b.Build())
	if d.Num != 1 {
		t.Fatalf("domains = %d, want 1", d.Num)
	}
}

func TestInterferenceDomainsCapacityIndependent(t *testing.T) {
	net := clusteredNet(2)
	before := InterferenceDomains(net)
	// Kill a whole cluster's links: the partition must not change, or a
	// dynamic scenario could migrate links between shards mid-run.
	for l := 0; l < 4; l++ {
		net.Link(graph.LinkID(l)).Capacity = 0
	}
	after := InterferenceDomains(net)
	if after.Num != before.Num {
		t.Fatalf("domains changed with capacities: %d -> %d", before.Num, after.Num)
	}
	for l := range before.Link {
		if before.Link[l] != after.Link[l] {
			t.Fatalf("link %d migrated: %d -> %d", l, before.Link[l], after.Link[l])
		}
	}
}

func TestInterferenceDomainsRespectCliqueComponents(t *testing.T) {
	// Every maximal clique of the conflict graph must be contained in one
	// domain: clique edges are interference edges, and airtime contention
	// couples the event order of its members.
	net := clusteredNet(3)
	d := InterferenceDomains(net)
	cg := NewConflictGraph(net)
	for _, clique := range cg.MaximalCliques() {
		for _, l := range clique[1:] {
			if d.Link[l] != d.Link[clique[0]] {
				t.Fatalf("clique %v spans domains %d and %d", clique, d.Link[clique[0]], d.Link[l])
			}
		}
	}
	// Isolated nodes belong to domain 0.
	b := graph.NewBuilder(nil)
	b.AddNode("lone", 0, 0, graph.TechWiFi)
	u := b.AddNode("u", 1, 0, graph.TechWiFi)
	v := b.AddNode("v", 2, 0, graph.TechWiFi)
	b.AddDuplex(u, v, graph.TechWiFi, 54)
	dd := InterferenceDomains(b.Build())
	if dd.Num != 1 || dd.Node[0] != 0 {
		t.Fatalf("isolated node: domains=%d node0=%d, want 1/0", dd.Num, dd.Node[0])
	}
}
