package optimal

import (
	"repro/internal/graph"
)

// Domains is a partition of a network into interference domains: the
// connected components of the relation "links interfere" ∪ "links share
// an endpoint node". Two links in the same maximal-clique-connected
// component of the conflict graph always land in the same domain (clique
// edges are interference edges), and merging across shared endpoints
// additionally pins every node's whole incident link set to one domain —
// which is what makes a domain a closed sub-emulation: MAC contention,
// forwarding, price earshot and flow paths never cross a domain
// boundary.
//
// The partition is capacity-independent: a failed (zero-capacity) link
// keeps its domain, so dynamic scenarios cannot migrate links between
// shards mid-run.
type Domains struct {
	// Num is the number of domains (at least 1, even for an empty
	// network).
	Num int
	// Link maps every LinkID to its domain index.
	Link []int
	// Node maps every NodeID to its domain index. Isolated nodes (no
	// incident links) belong to domain 0.
	Node []int
}

// InterferenceDomains decomposes a network into interference domains.
// Domain numbering is deterministic: domains are numbered by the first
// appearance of one of their links in LinkID order.
func InterferenceDomains(net *graph.Network) *Domains {
	nl := net.NumLinks()
	nn := net.NumNodes()
	d := &Domains{
		Link: make([]int, nl),
		Node: make([]int, nn),
	}
	// Union-find over links.
	parent := make([]int, nl)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for l := 0; l < nl; l++ {
		for _, j := range net.Interference(graph.LinkID(l)) {
			union(l, int(j))
		}
	}
	for n := 0; n < nn; n++ {
		first := -1
		for _, l := range net.Out(graph.NodeID(n)) {
			if first < 0 {
				first = int(l)
			} else {
				union(first, int(l))
			}
		}
		for _, l := range net.In(graph.NodeID(n)) {
			if first < 0 {
				first = int(l)
			} else {
				union(first, int(l))
			}
		}
	}
	// Number the components by first appearance in LinkID order.
	num := map[int]int{}
	for l := 0; l < nl; l++ {
		r := find(l)
		id, ok := num[r]
		if !ok {
			id = len(num)
			num[r] = id
		}
		d.Link[l] = id
	}
	d.Num = len(num)
	if d.Num == 0 {
		d.Num = 1 // no links: one trivial domain holding every node
	}
	for n := 0; n < nn; n++ {
		first := -1
		if out := net.Out(graph.NodeID(n)); len(out) > 0 {
			first = int(out[0])
		} else if in := net.In(graph.NodeID(n)); len(in) > 0 {
			first = int(in[0])
		}
		if first >= 0 {
			d.Node[n] = d.Link[first]
		}
	}
	return d
}
