package optimal

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/congestion"
)

// Constraint is one linear airtime constraint Σ_r coef_r · x_r ≤ Bound.
type Constraint struct {
	// Coef maps route index to its airtime coefficient in this
	// constraint (a sum of d_l values).
	Coef map[int]float64
	// Bound is the right-hand side (1, or 1−δ with a margin).
	Bound float64
}

// Problem is a concave network-utility maximization over route rates:
//
//	max Σ_f U_f(Σ_{r∈f} x_r)   s.t.  A x ≤ b,  0 ≤ x ≤ cap.
type Problem struct {
	// Flows maps each flow to the indices of its routes.
	Flows [][]int
	// Utilities gives each flow's utility (proportional fairness when nil).
	Utilities []congestion.Utility
	// Constraints are the linear airtime constraints.
	Constraints []Constraint
	// RateCap optionally caps each route's rate (bottleneck capacity);
	// nil or +Inf entries mean uncapped. Caps only speed up convergence:
	// a route can never carry more than its bottleneck.
	RateCap []float64
	// NumRoutes is the total number of routes.
	NumRoutes int
}

// SolveOptions tunes the solver.
type SolveOptions struct {
	// Iters is the number of proximal/dual iterations. The default
	// scales with the problem: 8000 plus 600·√routes (wide flows ramp
	// slower under the per-route gain normalization), capped at 40000.
	Iters int
	// Step is the dual/primal step size (default 0.05).
	Step float64
	// Gain is the primal gain on (U' − q) (default 50; see
	// congestion.Options.UtilityScale).
	Gain float64
}

func (o SolveOptions) iters() int { return o.itersFor(1) }

func (o SolveOptions) itersFor(routes int) int {
	if o.Iters > 0 {
		return o.Iters
	}
	n := 8000 + int(600*math.Sqrt(float64(routes)))
	if n > 40000 {
		n = 40000
	}
	return n
}

func (o SolveOptions) step() float64 {
	if o.Step <= 0 {
		return 0.05
	}
	return o.Step
}

func (o SolveOptions) gain() float64 {
	if o.Gain <= 0 {
		return 50
	}
	return o.Gain
}

// Solution is the result of Solve.
type Solution struct {
	// X is the per-route rate vector.
	X []float64
	// FlowRates is the per-flow total rate.
	FlowRates []float64
	// Utility is Σ_f U_f at the solution.
	Utility float64
	// MaxViolation is max_c ((Ax)_c − b_c), ≤ ~0 when feasible.
	MaxViolation float64
}

// Solve maximizes the problem with a proximal primal update and dual
// subgradient prices — the same fixed-point structure as the EMPoWER
// controller, which for this concave program is the KKT point, i.e. the
// global optimum. The final iterate is projected onto the feasible set by
// uniform scaling if it slightly overshoots, so the reported rates are
// always feasible.
func Solve(p Problem, opts SolveOptions) (Solution, error) {
	n := p.NumRoutes
	if n == 0 {
		return Solution{}, fmt.Errorf("optimal: no routes")
	}
	flowOf := make([]int, n)
	for i := range flowOf {
		flowOf[i] = -1
	}
	for f, rs := range p.Flows {
		for _, r := range rs {
			if r < 0 || r >= n {
				return Solution{}, fmt.Errorf("optimal: route index %d out of range", r)
			}
			flowOf[r] = f
		}
	}
	for r, f := range flowOf {
		if f < 0 {
			return Solution{}, fmt.Errorf("optimal: route %d belongs to no flow", r)
		}
	}
	util := make([]congestion.Utility, len(p.Flows))
	for f := range util {
		if p.Utilities != nil && f < len(p.Utilities) && p.Utilities[f] != nil {
			util[f] = p.Utilities[f]
		} else {
			util[f] = congestion.ProportionalFairness{}
		}
	}
	cap := make([]float64, n)
	for r := range cap {
		cap[r] = math.Inf(1)
		if p.RateCap != nil && r < len(p.RateCap) && p.RateCap[r] > 0 {
			cap[r] = p.RateCap[r]
		}
	}

	// Densify the constraints once, with route indices sorted: iterating
	// the Coef maps directly would make every airtime sum follow Go's
	// randomized map order, i.e. a different float summation order — and a
	// different 16th decimal — on every run. Sorted slices make the solver
	// deterministic and keep map lookups out of the iteration loop.
	conIdx := make([][]int, len(p.Constraints))      // constraint -> route indices
	conCoef := make([][]float64, len(p.Constraints)) // constraint -> coefficients
	routeCons := make([][]int, n)                    // route -> constraint indices
	routeCoef := make([][]float64, n)                // route -> coefficients
	for c, con := range p.Constraints {
		idx := make([]int, 0, len(con.Coef))
		for r := range con.Coef {
			if r < 0 || r >= n {
				return Solution{}, fmt.Errorf("optimal: constraint %d references route %d out of range", c, r)
			}
			idx = append(idx, r)
		}
		sort.Ints(idx)
		cf := make([]float64, len(idx))
		for i, r := range idx {
			cf[i] = con.Coef[r]
			routeCons[r] = append(routeCons[r], c)
			routeCoef[r] = append(routeCoef[r], con.Coef[r])
		}
		conIdx[c], conCoef[c] = idx, cf
	}

	alpha, gain := opts.step(), opts.gain()
	// With many routes per flow, every route initially sees the same
	// positive (U' − q) term, so the aggregate primal gain grows with the
	// route count and can overshoot before the duals price it. A mild
	// square-root normalization tames wide flows without starving the
	// narrow ones; the ergodic average below absorbs the residual
	// oscillation either way.
	perRouteGain := make([]float64, n)
	for _, rs := range p.Flows {
		g := gain / math.Sqrt(float64(len(rs)))
		for _, r := range rs {
			perRouteGain[r] = g
		}
	}
	x := make([]float64, n)
	xbar := make([]float64, n)
	// Warm start: each route begins at an equal share of its flow's
	// bottleneck budget. Starting above the optimum is cheap — the duals
	// price overload within tens of iterations — while starting at zero
	// costs a slow ramp on fast instances.
	for _, rs := range p.Flows {
		for _, r := range rs {
			c := cap[r]
			if math.IsInf(c, 1) {
				c = 1000
			}
			x[r] = 0.6 * c / float64(len(rs))
			xbar[r] = x[r]
		}
	}
	lambda := make([]float64, len(p.Constraints))
	usage := make([]float64, len(p.Constraints))
	flowRate := make([]float64, len(p.Flows))
	newX := make([]float64, n)
	iters := opts.itersFor(n)
	// Ergodic averaging over the last third of the run: with a fixed
	// step the iterates hover around the optimizer, and the average is
	// the reliable read-out.
	avg := make([]float64, n)
	avgFrom := iters * 2 / 3
	avgCount := 0

	for t := 0; t < iters; t++ {
		// Constraint usages and dual update.
		for c := range usage {
			usage[c] = 0
		}
		for c := range conIdx {
			var u float64
			for i, r := range conIdx[c] {
				u += conCoef[c][i] * x[r]
			}
			usage[c] = u
			l := lambda[c] + alpha*(u-p.Constraints[c].Bound)
			if l < 0 {
				l = 0
			}
			lambda[c] = l
		}
		// Flow totals.
		for f := range flowRate {
			flowRate[f] = 0
		}
		for r := 0; r < n; r++ {
			flowRate[flowOf[r]] += x[r]
		}
		// Proximal primal update.
		for r := 0; r < n; r++ {
			var q float64
			for i, c := range routeCons[r] {
				q += lambda[c] * routeCoef[r][i]
			}
			f := flowOf[r]
			inner := xbar[r] + perRouteGain[r]*(util[f].Prime(flowRate[f])-q)
			if inner < 0 {
				inner = 0
			}
			nx := (1-alpha)*x[r] + alpha*inner
			if nx > cap[r] {
				nx = cap[r]
			}
			newX[r] = nx
		}
		for r := 0; r < n; r++ {
			xbar[r] = (1-alpha)*xbar[r] + alpha*x[r]
		}
		copy(x, newX)
		if t >= avgFrom {
			for r := 0; r < n; r++ {
				avg[r] += x[r]
			}
			avgCount++
		}
	}
	if avgCount > 0 {
		for r := 0; r < n; r++ {
			x[r] = avg[r] / float64(avgCount)
		}
	}

	// Project onto feasibility by uniform scaling if needed.
	worst := 0.0
	for c := range conIdx {
		var u float64
		for i, r := range conIdx[c] {
			u += conCoef[c][i] * x[r]
		}
		if b := p.Constraints[c].Bound; b > 0 && u/b > worst {
			worst = u / b
		}
		usage[c] = u
	}
	if worst > 1 {
		for r := range x {
			x[r] /= worst
		}
	}

	sol := Solution{X: x, FlowRates: make([]float64, len(p.Flows))}
	for r := 0; r < n; r++ {
		sol.FlowRates[flowOf[r]] += x[r]
	}
	for f := range p.Flows {
		sol.Utility += util[f].Value(sol.FlowRates[f])
	}
	sol.MaxViolation = math.Inf(-1)
	for c := range conIdx {
		var u float64
		for i, r := range conIdx[c] {
			u += conCoef[c][i] * x[r]
		}
		if v := u - p.Constraints[c].Bound; v > sol.MaxViolation {
			sol.MaxViolation = v
		}
	}
	if len(p.Constraints) == 0 {
		sol.MaxViolation = 0
	}
	return sol, nil
}
