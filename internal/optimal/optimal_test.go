package optimal

import (
	"math"
	"testing"

	"repro/internal/congestion"
	"repro/internal/graph"
)

// figure1 builds the paper's Figure 1 network.
func figure1() (*graph.Network, graph.NodeID, graph.NodeID) {
	b := graph.NewBuilder(nil)
	a := b.AddNode("a", 0, 0, graph.TechPLC, graph.TechWiFi)
	bb := b.AddNode("b", 10, 0, graph.TechPLC, graph.TechWiFi)
	c := b.AddNode("c", 20, 0, graph.TechWiFi)
	b.AddDuplex(a, bb, graph.TechPLC, 10)
	b.AddDuplex(a, bb, graph.TechWiFi, 15)
	b.AddDuplex(bb, c, graph.TechWiFi, 30)
	return b.Build(), a, c
}

// chain builds a 4-node WiFi chain with partial (adjacent-only)
// interference, where the conservative constraint is strictly tighter than
// the true capacity region.
func chain() (*graph.Network, graph.NodeID, graph.NodeID) {
	m := graph.RangeBased{SenseRadius: map[graph.Tech]float64{graph.TechWiFi: 5}}
	b := graph.NewBuilder(m)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 10, 0, graph.TechWiFi)
	w := b.AddNode("w", 20, 0, graph.TechWiFi)
	z := b.AddNode("z", 30, 0, graph.TechWiFi)
	b.AddLink(u, v, graph.TechWiFi, 10)
	b.AddLink(v, w, graph.TechWiFi, 10)
	b.AddLink(w, z, graph.TechWiFi, 10)
	return b.Build(), u, z
}

func TestEnumeratePathsFigure1(t *testing.T) {
	net, a, c := figure1()
	paths := EnumeratePaths(net, a, c, EnumerateOptions{})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if err := net.ValidatePath(p, a, c); err != nil {
			t.Errorf("invalid path: %v", err)
		}
	}
}

func TestEnumeratePathsLimits(t *testing.T) {
	net, a, c := figure1()
	if got := EnumeratePaths(net, a, c, EnumerateOptions{MaxHops: 1}); len(got) != 0 {
		t.Errorf("1-hop limit should yield no paths, got %d", len(got))
	}
	if got := EnumeratePaths(net, a, c, EnumerateOptions{MaxPaths: 1}); len(got) != 1 {
		t.Errorf("MaxPaths=1 should yield 1 path, got %d", len(got))
	}
}

func TestEnumeratePathsSkipsDeadLinks(t *testing.T) {
	net, a, c := figure1()
	// Kill the PLC direction a->b: only the WiFi-WiFi path remains.
	for i := 0; i < net.NumLinks(); i++ {
		l := net.Link(graph.LinkID(i))
		if l.Tech == graph.TechPLC && l.From == a {
			l.Capacity = 0
		}
	}
	paths := EnumeratePaths(net, a, c, EnumerateOptions{})
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
}

func TestConflictGraphCliques(t *testing.T) {
	net, _, _ := figure1()
	cg := NewConflictGraph(net)
	cliques := cg.MaximalCliques()
	// Single-domain-per-tech: one clique of the 4 WiFi links, one of the
	// 2 PLC links.
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques, want 2: %v", len(cliques), cliques)
	}
	sizes := []int{len(cliques[0]), len(cliques[1])}
	if !(sizes[0] == 2 && sizes[1] == 4 || sizes[0] == 4 && sizes[1] == 2) {
		t.Errorf("clique sizes %v, want {2,4}", sizes)
	}
}

func TestConflictGraphChainCliques(t *testing.T) {
	net, _, _ := chain()
	cg := NewConflictGraph(net)
	cliques := cg.MaximalCliques()
	// Path conflict graph 1-2-3: cliques {1,2} and {2,3}.
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques, want 2: %v", len(cliques), cliques)
	}
	for _, c := range cliques {
		if len(c) != 2 {
			t.Errorf("clique %v, want size 2", c)
		}
	}
}

func TestMaxWeightIndependentSetExact(t *testing.T) {
	net, _, _ := chain()
	cg := NewConflictGraph(net)
	// Weights: ends 5 each, middle 8. MWIS = {0, 2} with weight 10 > 8.
	w := []float64{5, 8, 5}
	got := cg.MaxWeightIndependentSet(w, 24)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("MWIS = %v, want [0 2]", got)
	}
	// With a dominant middle weight the middle alone wins.
	w = []float64{5, 20, 5}
	got = cg.MaxWeightIndependentSet(w, 24)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("MWIS = %v, want [1]", got)
	}
	// Greedy fallback picks the heaviest first (here it happens to agree).
	got = cg.MaxWeightIndependentSet(w, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("greedy MWIS = %v, want [1]", got)
	}
	if got := cg.MaxWeightIndependentSet([]float64{0, 0, 0}, 24); got != nil {
		t.Errorf("MWIS with zero weights = %v, want nil", got)
	}
}

func TestSolveSingleLink(t *testing.T) {
	p := Problem{
		NumRoutes: 1,
		Flows:     [][]int{{0}},
		Constraints: []Constraint{
			{Coef: map[int]float64{0: 0.1}, Bound: 1}, // x/10 <= 1
		},
		RateCap: []float64{10},
	}
	sol, err := Solve(p, SolveOptions{Iters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.FlowRates[0]-10) > 0.3 {
		t.Errorf("optimal rate = %v, want 10", sol.FlowRates[0])
	}
	if sol.MaxViolation > 1e-9 {
		t.Errorf("violation %v after projection", sol.MaxViolation)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Problem{}, SolveOptions{}); err == nil {
		t.Error("empty problem accepted")
	}
	p := Problem{NumRoutes: 2, Flows: [][]int{{0}}}
	if _, err := Solve(p, SolveOptions{Iters: 1}); err == nil {
		t.Error("orphan route accepted")
	}
	p2 := Problem{NumRoutes: 1, Flows: [][]int{{5}}}
	if _, err := Solve(p2, SolveOptions{Iters: 1}); err == nil {
		t.Error("out-of-range route accepted")
	}
}

func TestOptimalFigure1(t *testing.T) {
	net, a, c := figure1()
	res, err := Optimal(net, []FlowSpec{{Src: a, Dst: c}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 10 on the hybrid route + 6.67 on the WiFi route = 16.67.
	if math.Abs(res.FlowRates[0]-50.0/3) > 0.5 {
		t.Errorf("optimal rate = %v, want 16.67", res.FlowRates[0])
	}
}

func TestConservativeEqualsOptimalInSingleDomain(t *testing.T) {
	// With per-technology collision domains, the conservative constraint
	// coincides with the clique constraint, so the two baselines agree.
	net, a, c := figure1()
	opt, err := Optimal(net, []FlowSpec{{Src: a, Dst: c}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := ConservativeOpt(net, []FlowSpec{{Src: a, Dst: c}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.FlowRates[0]-cons.FlowRates[0]) > 0.5 {
		t.Errorf("optimal %v vs conservative %v should match", opt.FlowRates[0], cons.FlowRates[0])
	}
}

func TestConservativeStrictlyBelowOptimalOnChain(t *testing.T) {
	// On the 3-hop chain with adjacent-only interference, spatial reuse
	// lets links 1 and 3 transmit together: optimal = 5 Mbps, while the
	// conservative constraint charges the whole domain: 10/3 Mbps.
	net, u, z := chain()
	opt, err := Optimal(net, []FlowSpec{{Src: u, Dst: z}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := ConservativeOpt(net, []FlowSpec{{Src: u, Dst: z}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.FlowRates[0]-5) > 0.3 {
		t.Errorf("optimal = %v, want 5", opt.FlowRates[0])
	}
	if math.Abs(cons.FlowRates[0]-10.0/3) > 0.3 {
		t.Errorf("conservative = %v, want 3.33", cons.FlowRates[0])
	}
	if cons.FlowRates[0] >= opt.FlowRates[0] {
		t.Error("conservative opt must be below optimal here")
	}
}

func TestOptimalNoConnectivity(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	net := b.Build()
	res, err := Optimal(net, []FlowSpec{{Src: u, Dst: v}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowRates[0] != 0 {
		t.Errorf("rate without connectivity = %v", res.FlowRates[0])
	}
}

func TestOptimalTwoFlowsFairness(t *testing.T) {
	// Two flows over one 10 Mbps link: proportional fairness gives 5/5.
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	b.AddLink(u, v, graph.TechWiFi, 10)
	net := b.Build()
	res, err := Optimal(net, []FlowSpec{{Src: u, Dst: v}, {Src: u, Dst: v}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowRates[0]-5) > 0.3 || math.Abs(res.FlowRates[1]-5) > 0.3 {
		t.Errorf("rates = %v, want ~[5 5]", res.FlowRates)
	}
}

func TestOptimalWithDelta(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	b.AddLink(u, v, graph.TechWiFi, 10)
	net := b.Build()
	res, err := ConservativeOpt(net, []FlowSpec{{Src: u, Dst: v}}, Config{Delta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FlowRates[0]-7) > 0.3 {
		t.Errorf("rate with δ=0.3 = %v, want 7", res.FlowRates[0])
	}
}

func TestBackpressureSingleLink(t *testing.T) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	b.AddLink(u, v, graph.TechWiFi, 10)
	net := b.Build()
	bp := NewBackpressure(net, []FlowSpec{{Src: u, Dst: v}})
	series := bp.Run(8000, 0, 200)
	if got := series[len(series)-1]; got < 8 || got > 10.5 {
		t.Errorf("backpressure trailing rate %v, want ~10", got)
	}
}

func TestBackpressureReachesNearOptimalButSlowly(t *testing.T) {
	net, a, c := figure1()
	bp := NewBackpressure(net, []FlowSpec{{Src: a, Dst: c}})
	series := bp.Run(12000, 0, 200)
	final := series[len(series)-1]
	// Should approach the 16.67 optimum (within 25%: V-dependent gap).
	if final < 0.75*50.0/3 {
		t.Errorf("backpressure final rate %v too far from optimum 16.67", final)
	}
	// And it must be slow: far from optimal after 50 slots.
	early := SlotsToFractionOfOptimal(series, 50.0/3, 0.9)
	if early < 100 {
		t.Errorf("backpressure converged suspiciously fast: %d slots", early)
	}
	t.Logf("backpressure: 90%% of optimal after %d slots (final %.2f, queue %.1f Mb)",
		early, final, bp.TotalQueue())
}

func TestBackpressureQueuesGrow(t *testing.T) {
	net, a, c := figure1()
	bp := NewBackpressure(net, []FlowSpec{{Src: a, Dst: c}})
	bp.Run(500, 0, 0)
	if bp.TotalQueue() < 1 {
		t.Errorf("backpressure queues should build up, got %v Mb", bp.TotalQueue())
	}
}

func TestSlotsToFractionOfOptimal(t *testing.T) {
	s := []float64{1, 5, 9, 10}
	if got := SlotsToFractionOfOptimal(s, 10, 0.9); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if got := SlotsToFractionOfOptimal(s, 100, 0.9); got != 4 {
		t.Errorf("got %d, want len", got)
	}
}

func TestSolveWithAlphaFairUtility(t *testing.T) {
	// Flow 0 has a 2x weighted PF utility; it should receive more than
	// flow 1 on a shared link.
	p := Problem{
		NumRoutes: 2,
		Flows:     [][]int{{0}, {1}},
		Utilities: []congestion.Utility{
			congestion.ProportionalFairness{Weight: 2},
			congestion.ProportionalFairness{},
		},
		Constraints: []Constraint{
			{Coef: map[int]float64{0: 0.1, 1: 0.1}, Bound: 1},
		},
		RateCap: []float64{10, 10},
	}
	sol, err := Solve(p, SolveOptions{Iters: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.FlowRates[0] <= sol.FlowRates[1] {
		t.Errorf("weighted flow should win: %v", sol.FlowRates)
	}
	if v := sol.FlowRates[0] + sol.FlowRates[1]; math.Abs(v-10) > 0.5 {
		t.Errorf("total %v, want 10", v)
	}
}
