package optimal

import (
	"math"

	"repro/internal/congestion"
	"repro/internal/graph"
)

// FlowSpec is a source-destination pair with an optional utility
// (proportional fairness when nil).
type FlowSpec struct {
	Src, Dst graph.NodeID
	Utility  congestion.Utility
}

// Config tunes the baselines.
type Config struct {
	Enumerate EnumerateOptions
	Solver    SolveOptions
	// Delta is the constraint margin (0 for the paper's baselines).
	Delta float64
}

// Result reports a baseline's optimum.
type Result struct {
	// FlowRates is the optimal per-flow throughput (Mbps).
	FlowRates []float64
	// Utility is the optimal aggregate utility.
	Utility float64
	// Paths[f] are the enumerated paths of flow f (shared by both
	// baselines for a given network).
	Paths [][]graph.Path
	// X[f][i] is the rate on Paths[f][i].
	X [][]float64
}

// buildProblem enumerates paths for every flow and assembles the
// constraint matrix rows produced by the given constraint generator.
func buildProblem(net *graph.Network, flows []FlowSpec, cfg Config, conservative bool) (Problem, [][]graph.Path) {
	allPaths := make([][]graph.Path, len(flows))
	var routes []graph.Path
	problem := Problem{Flows: make([][]int, len(flows))}
	for f, spec := range flows {
		paths := EnumeratePaths(net, spec.Src, spec.Dst, cfg.Enumerate)
		allPaths[f] = paths
		for _, p := range paths {
			idx := len(routes)
			routes = append(routes, p)
			problem.Flows[f] = append(problem.Flows[f], idx)
		}
		problem.Utilities = append(problem.Utilities, spec.Utility)
	}
	problem.NumRoutes = len(routes)
	problem.RateCap = make([]float64, len(routes))
	for i, p := range routes {
		cap := math.Inf(1)
		for _, l := range p {
			if c := net.Link(l).Capacity; c < cap {
				cap = c
			}
		}
		problem.RateCap[i] = cap
	}

	bound := 1 - cfg.Delta

	// Incidence: which routes traverse each link, with multiplicity.
	// Precomputing it makes constraint assembly linear in Σ|I_l| plus the
	// incidence size instead of quadratic in routes × links.
	routesOnLink := make([][]int, net.NumLinks())
	for r, p := range routes {
		for _, rl := range p {
			routesOnLink[rl] = append(routesOnLink[rl], r)
		}
	}

	if conservative {
		// Constraint (2): for every link l,
		// Σ_{l'∈I_l} d_{l'} Σ_{r∋l'} x_r ≤ 1−δ. Domains with identical
		// membership produce identical rows; deduplicate them.
		seen := map[string]bool{}
		for l := 0; l < net.NumLinks(); l++ {
			if net.Link(graph.LinkID(l)).Capacity <= 0 {
				continue
			}
			coef := map[int]float64{}
			key := make([]byte, 0, 64)
			for _, lp := range net.Interference(graph.LinkID(l)) {
				link := net.Link(lp)
				if link.Capacity <= 0 {
					continue
				}
				key = append(key, byte(lp>>8), byte(lp))
				for _, r := range routesOnLink[lp] {
					coef[r] += link.D()
				}
			}
			if len(coef) == 0 || seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			problem.Constraints = append(problem.Constraints, Constraint{Coef: coef, Bound: bound})
		}
	} else {
		// Per-clique constraints: for every maximal clique Q of the
		// conflict graph, Σ_{l∈Q} d_l Σ_{r∋l} x_r ≤ 1−δ. This is the
		// capacity region of a perfect scheduler when the conflict graph
		// is perfect (e.g. per-technology collision domains), and a tight
		// outer bound otherwise.
		cg := NewConflictGraph(net)
		for _, clique := range cg.MaximalCliques() {
			coef := map[int]float64{}
			for _, l := range clique {
				d := net.Link(graph.LinkID(l)).D()
				for _, r := range routesOnLink[l] {
					coef[r] += d
				}
			}
			if len(coef) > 0 {
				problem.Constraints = append(problem.Constraints, Constraint{Coef: coef, Bound: bound})
			}
		}
	}
	return problem, allPaths
}

func run(net *graph.Network, flows []FlowSpec, cfg Config, conservative bool) (Result, error) {
	problem, allPaths := buildProblem(net, flows, cfg, conservative)
	res := Result{Paths: allPaths, FlowRates: make([]float64, len(flows)), X: make([][]float64, len(flows))}
	if problem.NumRoutes == 0 {
		// No connectivity: all-zero rates.
		for f := range flows {
			u := flows[f].Utility
			if u == nil {
				u = congestion.ProportionalFairness{}
			}
			res.Utility += u.Value(0)
		}
		return res, nil
	}
	sol, err := Solve(problem, cfg.Solver)
	if err != nil {
		return Result{}, err
	}
	res.FlowRates = sol.FlowRates
	res.Utility = sol.Utility
	for f, idxs := range problem.Flows {
		res.X[f] = make([]float64, len(idxs))
		for i, r := range idxs {
			res.X[f][i] = sol.X[r]
		}
	}
	return res, nil
}

// Optimal computes the paper's "optimal" baseline: maximum aggregate
// utility over all simple paths under the perfect-scheduler (per-clique)
// capacity region.
func Optimal(net *graph.Network, flows []FlowSpec, cfg Config) (Result, error) {
	return run(net, flows, cfg, false)
}

// ConservativeOpt computes the paper's "conservative opt" baseline: the
// optimum under EMPoWER's conservative interference constraint (2).
func ConservativeOpt(net *graph.Network, flows []FlowSpec, cfg Config) (Result, error) {
	return run(net, flows, cfg, true)
}
