package optimal

import (
	"sort"

	"repro/internal/graph"
)

// ConflictGraph is the undirected graph whose vertices are the network
// links and whose edges connect pairs of links that cannot transmit
// simultaneously.
type ConflictGraph struct {
	n   int
	adj [][]bool
}

// NewConflictGraph derives the conflict graph of a network from its
// interference domains. Zero-capacity links become isolated vertices.
func NewConflictGraph(net *graph.Network) *ConflictGraph {
	n := net.NumLinks()
	cg := &ConflictGraph{n: n, adj: make([][]bool, n)}
	for i := 0; i < n; i++ {
		cg.adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		if net.Link(graph.LinkID(i)).Capacity <= 0 {
			continue
		}
		for _, j := range net.Interference(graph.LinkID(i)) {
			if int(j) == i || net.Link(j).Capacity <= 0 {
				continue
			}
			cg.adj[i][j] = true
			cg.adj[j][i] = true
		}
	}
	return cg
}

// Adjacent reports whether links a and b conflict.
func (cg *ConflictGraph) Adjacent(a, b int) bool { return cg.adj[a][b] }

// MaximalCliques enumerates all maximal cliques using Bron–Kerbosch with
// pivoting. Isolated vertices yield singleton cliques. The result is
// deterministic (cliques sorted by their sorted member lists).
func (cg *ConflictGraph) MaximalCliques() [][]int {
	var cliques [][]int
	all := make([]int, cg.n)
	for i := range all {
		all[i] = i
	}
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if len(p) == 0 && len(x) == 0 {
			cliques = append(cliques, append([]int(nil), r...))
			return
		}
		// Choose the pivot with the most neighbors in p.
		pivot, best := -1, -1
		for _, u := range append(append([]int(nil), p...), x...) {
			cnt := 0
			for _, v := range p {
				if cg.adj[u][v] {
					cnt++
				}
			}
			if cnt > best {
				best, pivot = cnt, u
			}
		}
		var candidates []int
		for _, v := range p {
			if pivot < 0 || !cg.adj[pivot][v] {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int
			for _, w := range p {
				if cg.adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if cg.adj[v][w] {
					nx = append(nx, w)
				}
			}
			bk(append(r, v), np, nx)
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	bk(nil, all, nil)
	for _, c := range cliques {
		sort.Ints(c)
	}
	sort.Slice(cliques, func(i, j int) bool {
		a, b := cliques[i], cliques[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return cliques
}

// MaxWeightIndependentSet returns an independent set maximizing the sum of
// the given non-negative vertex weights. Vertices with zero weight are
// ignored. For graphs with at most exactLimit weighted vertices the result
// is exact (branch and bound); beyond that a greedy heuristic is used.
func (cg *ConflictGraph) MaxWeightIndependentSet(weights []float64, exactLimit int) []int {
	// Collect the weighted vertices.
	var verts []int
	for i := 0; i < cg.n && i < len(weights); i++ {
		if weights[i] > 0 {
			verts = append(verts, i)
		}
	}
	if len(verts) == 0 {
		return nil
	}
	if exactLimit <= 0 {
		exactLimit = 24
	}
	if len(verts) > exactLimit {
		return cg.greedyMWIS(verts, weights)
	}
	// Branch and bound over verts sorted by decreasing weight.
	sort.Slice(verts, func(i, j int) bool { return weights[verts[i]] > weights[verts[j]] })
	bestW := 0.0
	var best, cur []int
	var rec func(idx int, curW, remW float64)
	rec = func(idx int, curW, remW float64) {
		if curW > bestW {
			bestW = curW
			best = append(best[:0], cur...)
		}
		if idx >= len(verts) || curW+remW <= bestW {
			return
		}
		v := verts[idx]
		// Remaining weight after this vertex.
		nextRem := remW - weights[v]
		// Branch 1: include v if compatible.
		ok := true
		for _, u := range cur {
			if cg.adj[u][v] {
				ok = false
				break
			}
		}
		if ok {
			cur = append(cur, v)
			rec(idx+1, curW+weights[v], nextRem)
			cur = cur[:len(cur)-1]
		}
		// Branch 2: exclude v.
		rec(idx+1, curW, nextRem)
	}
	var total float64
	for _, v := range verts {
		total += weights[v]
	}
	rec(0, 0, total)
	sort.Ints(best)
	return best
}

func (cg *ConflictGraph) greedyMWIS(verts []int, weights []float64) []int {
	sorted := append([]int(nil), verts...)
	sort.Slice(sorted, func(i, j int) bool { return weights[sorted[i]] > weights[sorted[j]] })
	var out []int
	for _, v := range sorted {
		ok := true
		for _, u := range out {
			if cg.adj[u][v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
