package optimal

import (
	"math/rand"
	"testing"

	"repro/internal/congestion"
	"repro/internal/graph"
	"repro/internal/routing"
)

// randomHybrid builds a small random hybrid network for agreement tests.
func randomHybrid(seed int64) (*graph.Network, graph.NodeID, graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nil)
	n := 4 + rng.Intn(3)
	ids := make([]graph.NodeID, n)
	plc := make([]bool, n)
	for i := 0; i < n; i++ {
		plc[i] = rng.Float64() < 0.7
		techs := []graph.Tech{graph.TechWiFi}
		if plc[i] {
			techs = append(techs, graph.TechPLC)
		}
		ids[i] = b.AddNode("", float64(i), 0, techs...)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.6 {
				b.AddDuplex(ids[i], ids[j], graph.TechWiFi, 5+rng.Float64()*60)
			}
			if plc[i] && plc[j] && rng.Float64() < 0.6 {
				b.AddDuplex(ids[i], ids[j], graph.TechPLC, 5+rng.Float64()*60)
			}
		}
	}
	return b.Build(), ids[0], ids[n-1]
}

// TestControllerAgreesWithCentralizedOptimum is the keystone validation
// of §4: the distributed controller run over ALL simple paths must reach
// (a small neighborhood of) the centralized conservative optimum, since
// both solve the same concave program under constraint (2).
func TestControllerAgreesWithCentralizedOptimum(t *testing.T) {
	agree, total := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		net, src, dst := randomHybrid(seed)
		paths := EnumeratePaths(net, src, dst, EnumerateOptions{MaxHops: 4, MaxPaths: 64})
		if len(paths) == 0 {
			continue
		}
		cons, err := ConservativeOpt(net, []FlowSpec{{Src: src, Dst: dst}},
			Config{Enumerate: EnumerateOptions{MaxHops: 4, MaxPaths: 64}})
		if err != nil {
			t.Fatal(err)
		}
		if cons.FlowRates[0] < 3 {
			continue // weak flows: relative comparison too noisy
		}
		var routes []congestion.Route
		for _, p := range paths {
			routes = append(routes, congestion.Route{Links: p, Flow: 0})
		}
		ctrl, err := congestion.New(net, routes, congestion.Options{Alpha: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		traj := ctrl.Run(8000)
		// Ergodic average of the last quarter.
		var sum float64
		tail := traj[len(traj)*3/4:]
		for _, row := range tail {
			sum += row[0]
		}
		got := sum / float64(len(tail))
		total++
		ratio := got / cons.FlowRates[0]
		if ratio > 0.85 && ratio < 1.1 {
			agree++
		} else {
			t.Logf("seed %d: controller %.2f vs conservative opt %.2f (ratio %.2f, %d paths)",
				seed, got, cons.FlowRates[0], ratio, len(paths))
		}
	}
	if total == 0 {
		t.Skip("no usable instances")
	}
	if agree*10 < total*7 {
		t.Errorf("controller agreed with the centralized optimum on only %d/%d instances", agree, total)
	}
	t.Logf("agreement on %d/%d instances", agree, total)
}

// TestSinglePathQualityVsBruteForce measures the §3.1 single-path
// procedure against the brute-force best-R(P) path: the heuristic metric
// may pick a slightly slower path, but across random instances it should
// land within 75 % of the best single-path rate on average (the §5
// finding that "the procedure succeeds in finding good routes").
func TestSinglePathQualityVsBruteForce(t *testing.T) {
	var ratioSum float64
	n := 0
	for seed := int64(100); seed < 130; seed++ {
		net, src, dst := randomHybrid(seed)
		best := 0.0
		for _, p := range EnumeratePaths(net, src, dst, EnumerateOptions{MaxHops: 4, MaxPaths: 256}) {
			if r := routing.RatePath(net, p); r > best {
				best = r
			}
		}
		if best <= 0 {
			continue
		}
		sp := routing.SinglePath(net, src, dst, routing.DefaultConfig())
		if sp == nil {
			t.Errorf("seed %d: single-path found nothing but brute force did", seed)
			continue
		}
		ratioSum += routing.RatePath(net, sp) / best
		n++
	}
	if n == 0 {
		t.Skip("no connected instances")
	}
	avg := ratioSum / float64(n)
	if avg < 0.75 {
		t.Errorf("single-path procedure achieves only %.0f%% of brute-force rate on average", avg*100)
	}
	t.Logf("single-path averages %.0f%% of the brute-force best rate over %d instances", avg*100, n)
}
