// Package stats provides the small statistical toolkit used throughout the
// EMPoWER reproduction: empirical CDFs, summary statistics, ratio
// distributions and seeded random-number helpers.
//
// All functions are deterministic given their inputs; randomness is always
// injected through an explicit *rand.Rand so that every experiment in the
// repository can be reproduced from a seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the usual first and second moment statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics over xs. It returns the zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function: for each X[i],
// P[i] is the fraction of samples ≤ X[i]. X is sorted ascending.
type CDF struct {
	X []float64
	P []float64
}

// NewCDF builds the empirical CDF of xs. The input is not modified.
func NewCDF(xs []float64) CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	c := CDF{X: sorted, P: make([]float64, n)}
	for i := range sorted {
		c.P[i] = float64(i+1) / float64(n)
	}
	return c
}

// At returns the CDF evaluated at x: the fraction of samples ≤ x.
func (c CDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with X[i] >= x; we want
	// the count of samples <= x.
	i := sort.Search(len(c.X), func(i int) bool { return c.X[i] > x })
	if len(c.X) == 0 {
		return math.NaN()
	}
	return float64(i) / float64(len(c.X))
}

// InvAt returns the smallest sample value x such that At(x) ≥ p.
func (c CDF) InvAt(p float64) float64 {
	if len(c.X) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(c.P), func(i int) bool { return c.P[i] >= p })
	if i >= len(c.X) {
		i = len(c.X) - 1
	}
	return c.X[i]
}

// Points down-samples the CDF to at most n points for printing, always
// keeping the first and last point.
func (c CDF) Points(n int) CDF {
	if n <= 0 || len(c.X) <= n {
		return c
	}
	out := CDF{X: make([]float64, 0, n), P: make([]float64, 0, n)}
	step := float64(len(c.X)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		j := int(math.Round(float64(i) * step))
		out.X = append(out.X, c.X[j])
		out.P = append(out.P, c.P[j])
	}
	return out
}

// String renders the CDF as "x p" rows, suitable for plotting tools.
func (c CDF) String() string {
	var b []byte
	for i := range c.X {
		b = append(b, fmt.Sprintf("%.4f\t%.4f\n", c.X[i], c.P[i])...)
	}
	return string(b)
}

// Ratios returns elementwise a[i]/b[i], skipping pairs where both are zero
// and mapping x/0 (x>0) to +Inf, matching how the paper treats
// no-connectivity cases in Figure 5.
func Ratios(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case a[i] == 0 && b[i] == 0:
			continue
		case b[i] == 0:
			out = append(out, math.Inf(1))
		default:
			out = append(out, a[i]/b[i])
		}
	}
	return out
}

// BottomFractionByMin selects the indices of the bottom fraction frac of
// flows ranked by min(a[i], b[i]), the paper's "worst flows" criterion
// (Figure 5). Pairs where both entries are zero are excluded.
func BottomFractionByMin(a, b []float64, frac float64) []int {
	type entry struct {
		idx int
		key float64
	}
	var entries []entry
	for i := range a {
		if i >= len(b) {
			break
		}
		if a[i] == 0 && b[i] == 0 {
			continue
		}
		entries = append(entries, entry{i, math.Min(a[i], b[i])})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	k := int(math.Ceil(frac * float64(len(entries))))
	if k > len(entries) {
		k = len(entries)
	}
	out := make([]int, 0, k)
	for _, e := range entries[:k] {
		out = append(out, e.idx)
	}
	sort.Ints(out)
	return out
}

// NewRand returns a deterministic RNG for the given seed. A dedicated
// constructor keeps all experiment seeding in one place.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives the seed of replication index from a base seed, so a
// parallel sweep can hand every replication its own independent RNG
// stream (NewRand(SplitSeed(base, i))) without the streams overlapping
// the way raw base+i seeding of adjacent sweeps does. The mix is the
// splitmix64 finalizer over the base advanced by the golden-gamma
// increment; the result depends only on (base, index), never on
// scheduling, so it is safe for any worker count.
func SplitSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// TruncNormal draws from a normal distribution with the given mean and
// standard deviation, truncated to [lo, hi] by resampling (with a bounded
// number of attempts, falling back to clamping).
func TruncNormal(rng *rand.Rand, mean, std, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := rng.NormFloat64()*std + mean
		if x >= lo && x <= hi {
			return x
		}
	}
	x := rng.NormFloat64()*std + mean
	return math.Min(hi, math.Max(lo, x))
}

// Mean is a convenience over Summarize for the common case.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return Summarize(xs).Std }
