package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// sample std of this classic dataset is sqrt(32/7)
	if !almostEqual(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v, want %v", s.Std, math.Sqrt(32.0/7.0))
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Std != 0 || s.Median != 3.5 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice should be NaN")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestCDFBasic(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if !sort.Float64sAreSorted(c.X) {
		t.Fatal("CDF X not sorted")
	}
	if c.At(0.5) != 0 {
		t.Errorf("At(0.5) = %v, want 0", c.At(0.5))
	}
	if !almostEqual(c.At(1), 1.0/3, 1e-12) {
		t.Errorf("At(1) = %v, want 1/3", c.At(1))
	}
	if !almostEqual(c.At(2.5), 2.0/3, 1e-12) {
		t.Errorf("At(2.5) = %v, want 2/3", c.At(2.5))
	}
	if c.At(3) != 1 {
		t.Errorf("At(3) = %v, want 1", c.At(3))
	}
}

func TestCDFInvAt(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.InvAt(0.5); got != 20 {
		t.Errorf("InvAt(0.5) = %v, want 20", got)
	}
	if got := c.InvAt(1.0); got != 40 {
		t.Errorf("InvAt(1.0) = %v, want 40", got)
	}
	if got := c.InvAt(0.01); got != 10 {
		t.Errorf("InvAt(0.01) = %v, want 10", got)
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	p := c.Points(10)
	if len(p.X) != 10 {
		t.Fatalf("Points(10) returned %d points", len(p.X))
	}
	if p.X[0] != c.X[0] || p.X[9] != c.X[99] {
		t.Error("Points must keep first and last samples")
	}
	// Down-sampling a smaller CDF is the identity.
	small := NewCDF([]float64{1, 2})
	if got := small.Points(10); len(got.X) != 2 {
		t.Errorf("Points on small CDF changed size: %d", len(got.X))
	}
}

func TestCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		for i := 1; i < len(c.P); i++ {
			if c.P[i] < c.P[i-1] || c.X[i] < c.X[i-1] {
				return false
			}
		}
		return c.P[len(c.P)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		v := Quantile(xs, q)
		s := Summarize(xs)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatios(t *testing.T) {
	got := Ratios([]float64{4, 0, 3, 0}, []float64{2, 0, 0, 5})
	if len(got) != 3 {
		t.Fatalf("Ratios len = %d, want 3 (0/0 skipped)", len(got))
	}
	if got[0] != 2 {
		t.Errorf("got[0] = %v, want 2", got[0])
	}
	if !math.IsInf(got[1], 1) {
		t.Errorf("got[1] = %v, want +Inf", got[1])
	}
	if got[2] != 0 {
		t.Errorf("got[2] = %v, want 0", got[2])
	}
}

func TestBottomFractionByMin(t *testing.T) {
	a := []float64{10, 1, 5, 0, 8}
	b := []float64{12, 2, 4, 0, 9}
	// keys: min -> 10, 1, 4, (skip 0/0), 8 ; bottom 50% of 4 entries = 2
	idx := BottomFractionByMin(a, b, 0.5)
	if len(idx) != 2 {
		t.Fatalf("got %d indices, want 2", len(idx))
	}
	if idx[0] != 1 || idx[1] != 2 {
		t.Errorf("got indices %v, want [1 2]", idx)
	}
}

func TestBottomFractionFull(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	idx := BottomFractionByMin(a, b, 1.0)
	if len(idx) != 2 {
		t.Fatalf("frac=1 should select everything, got %v", idx)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := NewRand(42)
	for i := 0; i < 1000; i++ {
		x := TruncNormal(rng, 50, 30, 0, 100)
		if x < 0 || x > 100 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
	if !almostEqual(Std([]float64{1, 2, 3}), 1, 1e-12) {
		t.Error("Std wrong")
	}
}
