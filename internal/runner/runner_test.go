package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// burn draws a few values from the replication's RNG stream and folds
// them into one number — a stand-in for a Monte-Carlo replication whose
// result depends only on its seed.
func burn(seed int64) float64 {
	rng := stats.NewRand(seed)
	var x float64
	for i := 0; i < 100; i++ {
		x += rng.Float64()
	}
	return x
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const total = 64
	job := func(_ context.Context, rep Rep) (float64, error) {
		return burn(rep.Seed) + float64(rep.Index), nil
	}
	var want []float64
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got, err := Run(context.Background(), total, Config{Workers: workers, BaseSeed: 7}, job)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != total {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), total)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v (bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSplitSeedsAreStableAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10_000; i++ {
		s := stats.SplitSeed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("SplitSeed(42, %d) == SplitSeed(42, %d)", i, j)
		}
		seen[s] = i
	}
	if stats.SplitSeed(1, 5) != stats.SplitSeed(1, 5) {
		t.Fatal("SplitSeed is not a pure function")
	}
	if stats.SplitSeed(1, 5) == stats.SplitSeed(2, 5) {
		t.Fatal("SplitSeed ignores the base seed")
	}
}

func TestRunCancellationStopsDispatch(t *testing.T) {
	const total = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	_, err := Run(ctx, total, Config{Workers: 2}, func(ctx context.Context, rep Rep) (int, error) {
		if executed.Add(1) == 5 {
			cancel()
		}
		return rep.Index, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n >= total {
		t.Fatalf("all %d replications ran despite mid-sweep cancellation", n)
	}
}

func TestRunErrorFailsFastWithLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	res, err := Run(context.Background(), 10_000, Config{Workers: 4},
		func(_ context.Context, rep Rep) (int, error) {
			executed.Add(1)
			if rep.Index == 3 || rep.Index == 7 {
				return 0, boom
			}
			return rep.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if res != nil {
		t.Fatal("results should be nil on error")
	}
	if n := executed.Load(); n >= 10_000 {
		t.Fatalf("all %d replications ran despite a failing job", n)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run swallowed the replication panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "replication 3 panicked: kaboom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	_, _ = Run(context.Background(), 8, Config{Workers: 4},
		func(_ context.Context, rep Rep) (int, error) {
			if rep.Index == 3 {
				panic("kaboom")
			}
			return rep.Index, nil
		})
}

func TestRunProgressReachesTotal(t *testing.T) {
	const total = 50
	var calls atomic.Int64
	var maxDone atomic.Int64
	cfg := Config{Workers: 4, OnProgress: func(done, tot int) {
		calls.Add(1)
		if tot != total {
			t.Errorf("progress total = %d, want %d", tot, total)
		}
		if int64(done) > maxDone.Load() {
			maxDone.Store(int64(done))
		}
	}}
	if _, err := Run(context.Background(), total, cfg, func(_ context.Context, rep Rep) (int, error) {
		return rep.Index, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != total || maxDone.Load() != total {
		t.Fatalf("progress: %d calls, max done %d, want %d of each", calls.Load(), maxDone.Load(), total)
	}
}

func TestRunEmptyAndCanceledUpfront(t *testing.T) {
	res, err := Run(context.Background(), 0, Config{}, func(_ context.Context, rep Rep) (int, error) {
		t.Error("job ran for an empty sweep")
		return 0, nil
	})
	if res != nil || err != nil {
		t.Fatalf("empty sweep: (%v, %v), want (nil, nil)", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, 5, Config{}, func(_ context.Context, rep Rep) (int, error) {
		t.Error("job ran under a pre-canceled context")
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v", err)
	}
}

// TestRunFromMergesBitIdentical is the resume contract behind the fleet
// daemon: a sweep executed as a plain Run and a sweep executed in two
// RunFrom halves (the first half's results carried over, as a daemon
// restores them from its WAL) must merge to bit-identical output at any
// worker count — and the second half must never re-execute a completed
// index.
func TestRunFromMergesBitIdentical(t *testing.T) {
	const total = 97
	job := func(_ context.Context, rep Rep) (float64, error) {
		return burn(rep.Seed) + float64(rep.Index), nil
	}
	want, err := Run(context.Background(), total, Config{Workers: 5, BaseSeed: 11}, job)
	if err != nil {
		t.Fatal(err)
	}
	// "Checkpoint" an arbitrary completed set — every third index plus a
	// dense prefix, mimicking a sweep killed mid-flight.
	done := NewRepSet(total)
	for i := 0; i < total; i++ {
		if i < 20 || i%3 == 0 {
			done.Add(i)
		}
	}
	for _, workers := range []int{1, 4, 16} {
		var reran atomic.Int64
		got, err := RunFrom(context.Background(), total, done,
			Config{Workers: workers, BaseSeed: 11},
			func(ctx context.Context, rep Rep) (float64, error) {
				if done.Has(rep.Index) {
					t.Errorf("completed replication %d re-executed", rep.Index)
				}
				if rep.Seed != stats.SplitSeed(11, rep.Index) {
					t.Errorf("replication %d seed %d, want SplitSeed(11, %d)", rep.Index, rep.Seed, rep.Index)
				}
				reran.Add(1)
				return job(ctx, rep)
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if int(reran.Load()) != total-done.Count() {
			t.Fatalf("workers=%d: %d replications ran, want %d", workers, reran.Load(), total-done.Count())
		}
		// Fill the skipped slots from the checkpoint, as the daemon does.
		for i := range got {
			if done.Has(i) {
				got[i] = want[i]
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: merged result[%d] = %v, want %v (bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunFromProgressCountsFromCheckpoint pins the (done, total) progress
// convention: a resumed sweep reports sweep-level completion, starting
// above the checkpointed count, ending at total.
func TestRunFromProgressCountsFromCheckpoint(t *testing.T) {
	const total = 10
	done := NewRepSet(total)
	for _, i := range []int{0, 2, 4} {
		done.Add(i)
	}
	var first, last atomic.Int64
	first.Store(-1)
	_, err := RunFrom(context.Background(), total, done,
		Config{Workers: 2, OnProgress: func(d, tot int) {
			if tot != total {
				t.Errorf("progress total = %d, want %d", tot, total)
			}
			if first.Load() == -1 {
				first.Store(int64(d))
			}
			last.Store(int64(d))
		}},
		func(_ context.Context, rep Rep) (int, error) { return rep.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	if first.Load() != int64(done.Count())+1 {
		t.Fatalf("first progress call reported %d, want %d", first.Load(), done.Count()+1)
	}
	if last.Load() != total {
		t.Fatalf("last progress call reported %d, want %d", last.Load(), total)
	}
}

// TestRepSet covers the bitset basics plus the nil-receiver convention
// RunFrom relies on.
func TestRepSet(t *testing.T) {
	s := NewRepSet(130)
	if s.Count() != 0 || s.Total() != 130 || s.Has(0) {
		t.Fatal("fresh set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	s.Add(129) // idempotent
	s.Add(-1)  // ignored
	s.Add(130) // ignored
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if s.Has(1) || s.Has(-1) || s.Has(130) {
		t.Error("Has reports indices never added")
	}
	var nilSet *RepSet
	if nilSet.Count() != 0 || nilSet.Has(3) || nilSet.Total() != 0 {
		t.Error("nil RepSet must behave as empty")
	}
	nilSet.Add(1) // must not panic
}

func TestCollectIndexesResults(t *testing.T) {
	got, err := Collect(context.Background(), 9, Config{Workers: 3},
		func(_ context.Context, rep Rep) int { return rep.Index * rep.Index })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestPoolSize(t *testing.T) {
	if PoolSize(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if PoolSize(0) < 1 || PoolSize(-1) < 1 {
		t.Error("default pool size must be at least 1")
	}
}
