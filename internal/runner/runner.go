// Package runner is the deterministic parallel replication runner behind
// every Monte-Carlo sweep in the repository.
//
// The discrete-event engine (internal/sim) is deliberately single-threaded
// within one run so that a seed fully determines a trajectory; the scaling
// axis for the paper's 1000-instance sweeps (§5) and repeated testbed
// emulations (§6) is therefore replication-level parallelism. Run executes
// N independent replications of a job on a worker pool bounded by
// GOMAXPROCS (overridable via Config.Workers) and collects the results
// into a slice indexed by replication number, so any aggregate computed
// from them in index order is bit-identical regardless of how many workers
// ran the sweep or how the scheduler interleaved them: determinism is
// preserved by construction, not by luck.
//
// Each replication receives a seed split from Config.BaseSeed with
// stats.SplitSeed, which depends only on (base, index). Jobs must draw all
// their randomness from that seed (or another pure function of the
// replication index) and must not mutate state shared across replications
// — the experiment packages uphold this by building every topology view
// and emulation per replication and cloning networks before estimation.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/stats"
)

// Config tunes a parallel sweep.
type Config struct {
	// Workers bounds the worker pool; values <= 0 use
	// runtime.GOMAXPROCS(0). The worker count never affects results,
	// only wall-clock time.
	Workers int
	// BaseSeed is split into per-replication seeds with stats.SplitSeed.
	BaseSeed int64
	// OnProgress, when non-nil, is called after each replication
	// completes with the number finished so far and the total. Calls
	// are serialized, but completions may arrive out of replication
	// order.
	OnProgress func(done, total int)
	// OnJobTime, when non-nil, receives each replication's wall-clock
	// duration. Calls are serialized with OnProgress under the same
	// mutex; sweeps feed the durations into phase breakdowns and
	// worker-utilization gauges.
	OnJobTime func(d time.Duration)
}

// PoolSize reports the effective worker count for a configured Workers
// value: the value itself when positive, otherwise runtime.GOMAXPROCS(0).
func PoolSize(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) workers(total int) int {
	w := PoolSize(c.Workers)
	if w > total {
		w = total
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Rep identifies one replication handed to a Job.
type Rep struct {
	// Index is the replication number in [0, N).
	Index int
	// Seed is stats.SplitSeed(Config.BaseSeed, Index): an independent
	// RNG stream for this replication.
	Seed int64
}

// Job computes one replication. The context is canceled when the sweep is
// aborted (caller cancellation, a failed replication, or a panic in
// another replication); long-running jobs may poll it to stop early.
type Job[T any] func(ctx context.Context, rep Rep) (T, error)

// panicRecord remembers the first (lowest-index) replication panic so Run
// can rethrow it on the caller's goroutine.
type panicRecord struct {
	index int
	value any
	stack []byte
}

// RepSet is a fixed-size bitset over replication indices [0, total) —
// the checkpoint currency of resumable sweeps. A sweep's completed set
// is a RepSet; RunFrom skips its members. The zero value is unusable;
// build with NewRepSet.
type RepSet struct {
	bits  []uint64
	total int
	count int
}

// NewRepSet returns an empty set over [0, total).
func NewRepSet(total int) *RepSet {
	if total < 0 {
		total = 0
	}
	return &RepSet{bits: make([]uint64, (total+63)/64), total: total}
}

// Add marks index i completed. Out-of-range indices are ignored.
func (s *RepSet) Add(i int) {
	if s == nil || i < 0 || i >= s.total {
		return
	}
	w, b := i/64, uint(i%64)
	if s.bits[w]&(1<<b) == 0 {
		s.bits[w] |= 1 << b
		s.count++
	}
}

// Has reports whether index i is in the set.
func (s *RepSet) Has(i int) bool {
	if s == nil || i < 0 || i >= s.total {
		return false
	}
	return s.bits[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of completed indices.
func (s *RepSet) Count() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Total returns the universe size the set was built over.
func (s *RepSet) Total() int {
	if s == nil {
		return 0
	}
	return s.total
}

// Run executes total replications of job on the worker pool and returns
// their results indexed by replication number.
//
// If any job returns an error, the remaining replications are canceled
// and Run returns a nil slice and the error with the lowest replication
// index among those observed. If a job panics, Run cancels the sweep,
// waits for the workers to drain, and re-panics on the caller's goroutine
// with the replication index and original stack attached. If ctx is
// canceled first, Run returns ctx.Err().
func Run[T any](ctx context.Context, total int, cfg Config, job Job[T]) ([]T, error) {
	return RunFrom(ctx, total, nil, cfg, job)
}

// RunFrom is Run with a resume point: indices in done are never
// re-executed — their slots in the returned slice stay zero values for
// the caller to fill from its checkpoint — while every missing index
// runs with exactly the seed a fresh Run would have handed it
// (stats.SplitSeed(BaseSeed, index)). Collection stays index-ordered,
// so a sweep that completes across any number of RunFrom resumptions
// merges to output bit-identical to a single uninterrupted Run at any
// worker count. OnProgress counts from done.Count(), so (done, total)
// reflects sweep-level completion, not just this resumption's share.
//
// A nil done set makes RunFrom identical to Run.
func RunFrom[T any](ctx context.Context, total int, done *RepSet, cfg Config, job Job[T]) ([]T, error) {
	if total <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, total)
	errs := make([]error, total)
	var (
		mu       sync.Mutex
		finished = done.Count()
		panicked *panicRecord
		failed   bool
	)

	runOne := func(idx int) {
		defer func() {
			if r := recover(); r != nil {
				stack := debug.Stack()
				mu.Lock()
				if panicked == nil || idx < panicked.index {
					panicked = &panicRecord{index: idx, value: r, stack: stack}
				}
				mu.Unlock()
				cancel()
			}
		}()
		var start time.Time
		if cfg.OnJobTime != nil {
			start = time.Now()
		}
		out, err := job(runCtx, Rep{Index: idx, Seed: stats.SplitSeed(cfg.BaseSeed, idx)})
		if cfg.OnJobTime != nil {
			elapsed := time.Since(start)
			mu.Lock()
			cfg.OnJobTime(elapsed)
			mu.Unlock()
		}
		if err != nil {
			errs[idx] = err
			mu.Lock()
			failed = true
			mu.Unlock()
			cancel()
			return
		}
		results[idx] = out
		mu.Lock()
		finished++
		if cfg.OnProgress != nil {
			cfg.OnProgress(finished, total)
		}
		mu.Unlock()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.workers(total - done.Count())
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for idx := range next {
				runOne(idx)
			}
		}()
	}
feed:
	for i := 0; i < total; i++ {
		if done.Has(i) {
			continue
		}
		select {
		case next <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if panicked != nil {
		panic(fmt.Sprintf("runner: replication %d panicked: %v\n%s",
			panicked.index, panicked.value, panicked.stack))
	}
	if failed {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Collect is Run for jobs that cannot fail: replications that have
// nothing to report encode it in T (typically a nil pointer) rather than
// an error, so a sweep never aborts halfway.
func Collect[T any](ctx context.Context, total int, cfg Config, job func(ctx context.Context, rep Rep) T) ([]T, error) {
	return Run(ctx, total, cfg, func(ctx context.Context, rep Rep) (T, error) {
		return job(ctx, rep), nil
	})
}
