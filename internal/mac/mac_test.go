package mac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// twoContenders builds two same-medium links from distinct senders plus
// one independent PLC link.
func twoContenders() (*graph.Network, graph.LinkID, graph.LinkID, graph.LinkID) {
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi, graph.TechPLC)
	v := b.AddNode("v", 1, 0, graph.TechWiFi, graph.TechPLC)
	w := b.AddNode("w", 2, 0, graph.TechWiFi)
	x := b.AddNode("x", 3, 0, graph.TechWiFi)
	l1 := b.AddLink(u, v, graph.TechWiFi, 10)
	l2 := b.AddLink(w, x, graph.TechWiFi, 10)
	l3 := b.AddLink(u, v, graph.TechPLC, 10)
	return b.Build(), l1, l2, l3
}

func TestSingleLinkThroughput(t *testing.T) {
	var e sim.Engine
	net, l1, _, _ := twoContenders()
	m := New(&e, net, rng(1), Options{})
	delivered := 0.0
	m.Deliver = func(l graph.LinkID, pkt Packet) { delivered += pkt.Bits }
	// Saturate: inject a packet whenever the queue drains below 2.
	pktBits := 12000.0 // 1500 B
	refill := func() {
		for m.QueueLen(l1) < 2 {
			m.Send(l1, pktBits, nil)
		}
	}
	refill()
	e.Every(0.001, refill)
	e.Run(10)
	rate := delivered / 10 / 1e6 // Mbps
	if math.Abs(rate-10) > 0.5 {
		t.Errorf("single-link rate = %v Mbps, want ~10", rate)
	}
}

func TestInterferingLinksShareAirtime(t *testing.T) {
	var e sim.Engine
	net, l1, l2, _ := twoContenders()
	m := New(&e, net, rng(2), Options{})
	got := map[graph.LinkID]float64{}
	m.Deliver = func(l graph.LinkID, pkt Packet) { got[l] += pkt.Bits }
	refill := func() {
		for _, l := range []graph.LinkID{l1, l2} {
			for m.QueueLen(l) < 2 {
				m.Send(l, 12000, nil)
			}
		}
	}
	refill()
	e.Every(0.001, refill)
	e.Run(20)
	r1 := got[l1] / 20 / 1e6
	r2 := got[l2] / 20 / 1e6
	// Two equal contenders on a 10 Mbps medium: ~5 each.
	if math.Abs(r1-5) > 0.5 || math.Abs(r2-5) > 0.5 {
		t.Errorf("shared rates = %v, %v; want ~5 each", r1, r2)
	}
	// Never simultaneous: total ≤ medium capacity.
	if r1+r2 > 10.2 {
		t.Errorf("total %v exceeds medium capacity", r1+r2)
	}
}

func TestNonInterferingTechsParallel(t *testing.T) {
	var e sim.Engine
	net, l1, _, l3 := twoContenders()
	m := New(&e, net, rng(3), Options{})
	got := map[graph.LinkID]float64{}
	m.Deliver = func(l graph.LinkID, pkt Packet) { got[l] += pkt.Bits }
	refill := func() {
		for _, l := range []graph.LinkID{l1, l3} {
			for m.QueueLen(l) < 2 {
				m.Send(l, 12000, nil)
			}
		}
	}
	refill()
	e.Every(0.001, refill)
	e.Run(10)
	// WiFi and PLC do not interfere: both reach ~10.
	if r := got[l1] / 10 / 1e6; math.Abs(r-10) > 0.5 {
		t.Errorf("WiFi rate = %v, want ~10", r)
	}
	if r := got[l3] / 10 / 1e6; math.Abs(r-10) > 0.5 {
		t.Errorf("PLC rate = %v, want ~10", r)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	var e sim.Engine
	net, l1, _, _ := twoContenders()
	m := New(&e, net, rng(4), Options{QueueLimit: 5})
	drops := 0
	m.Drop = func(l graph.LinkID, pkt Packet, reason DropReason) {
		if reason != DropQueueOverflow {
			t.Errorf("unexpected drop reason %v", reason)
		}
		drops++
	}
	for i := 0; i < 10; i++ {
		m.Send(l1, 12000, nil)
	}
	if drops != 5 {
		t.Errorf("drops = %d, want 5", drops)
	}
	st := m.Stats(l1)
	if st.DroppedPkts != 5 || st.Dropped[DropQueueOverflow] != 5 {
		t.Errorf("stats drops = %d (per-reason %v), want 5", st.DroppedPkts, st.Dropped)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Errorf("consistency after overflow drops: %v", err)
	}
}

func TestDeadLinkRejects(t *testing.T) {
	var e sim.Engine
	net, l1, _, _ := twoContenders()
	net.Link(l1).Capacity = 0
	m := New(&e, net, rng(5), Options{})
	if m.Send(l1, 12000, nil) {
		t.Error("send on dead link should fail")
	}
}

func TestChannelErrors(t *testing.T) {
	var e sim.Engine
	net, l1, _, _ := twoContenders()
	loss := make([]float64, net.NumLinks())
	loss[l1] = 0.5
	m := New(&e, net, rng(6), Options{LossProb: loss})
	if got := m.LossProb(l1); got != 0.5 {
		t.Fatalf("LossProb = %v, want 0.5 (Options not copied)", got)
	}
	delivered, dropped := 0, 0
	m.Deliver = func(l graph.LinkID, pkt Packet) { delivered++ }
	m.Drop = func(l graph.LinkID, pkt Packet, reason DropReason) {
		if reason == DropChannelLoss {
			dropped++
		}
	}
	for i := 0; i < 500; i++ {
		m.Send(l1, 12000, nil)
		e.RunUntilIdle()
	}
	frac := float64(dropped) / float64(delivered+dropped)
	if math.Abs(frac-0.5) > 0.1 {
		t.Errorf("loss fraction = %v, want ~0.5", frac)
	}
	if st := m.Stats(l1); st.Dropped[DropChannelLoss] != dropped {
		t.Errorf("per-reason channel-loss counter %d, want %d", st.Dropped[DropChannelLoss], dropped)
	}
}

// TestSetLossProb covers the mid-run gray-failure hook: the loss
// probability changes live, clamps to [0,1], and a link reset to zero
// stops consuming RNG draws (no more channel losses).
func TestSetLossProb(t *testing.T) {
	var e sim.Engine
	net, l1, _, _ := twoContenders()
	m := New(&e, net, rng(9), Options{})
	dropped := 0
	m.Drop = func(l graph.LinkID, pkt Packet, reason DropReason) {
		if reason == DropChannelLoss {
			dropped++
		}
	}
	m.SetLossProb(l1, 1)
	for i := 0; i < 20; i++ {
		m.Send(l1, 12000, nil)
		e.RunUntilIdle()
	}
	if dropped != 20 {
		t.Errorf("dropped %d of 20 at loss 1.0", dropped)
	}
	m.SetLossProb(l1, 0)
	for i := 0; i < 20; i++ {
		m.Send(l1, 12000, nil)
		e.RunUntilIdle()
	}
	if dropped != 20 {
		t.Errorf("loss 0 still dropping (total %d)", dropped)
	}
	m.SetLossProb(l1, 2)
	if got := m.LossProb(l1); got != 1 {
		t.Errorf("loss clamped to %v, want 1", got)
	}
	m.SetLossProb(l1, -3)
	if got := m.LossProb(l1); got != 0 {
		t.Errorf("loss clamped to %v, want 0", got)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Errorf("consistency: %v", err)
	}
}

func TestBusyAndStats(t *testing.T) {
	var e sim.Engine
	net, l1, _, _ := twoContenders()
	m := New(&e, net, rng(7), Options{})
	m.Send(l1, 1e6, nil) // 0.1 s on the air
	if !m.Busy(l1) {
		t.Error("link should be transmitting")
	}
	e.RunUntilIdle()
	if m.Busy(l1) {
		t.Error("link still busy after completion")
	}
	st := m.Stats(l1)
	if st.DeliveredPkts != 1 || st.DeliveredBits != 1e6 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.BusySeconds-0.1) > 1e-9 {
		t.Errorf("busy seconds = %v, want 0.1", st.BusySeconds)
	}
}

func TestFluidSingleLink(t *testing.T) {
	net, l1, _, _ := twoContenders()
	routes := []graph.Path{{l1}}
	// Under-loaded: everything delivered.
	got := FluidDelivered(net, routes, []float64{4}, 0)
	if math.Abs(got[0]-4) > 1e-6 {
		t.Errorf("underload delivery = %v, want 4", got[0])
	}
	// Overloaded single link: delivery equals capacity.
	got = FluidDelivered(net, routes, []float64{50}, 0)
	if math.Abs(got[0]-10) > 0.2 {
		t.Errorf("overload delivery = %v, want ~10", got[0])
	}
}

func TestFluidTwoHopCollapse(t *testing.T) {
	// Two-hop WiFi path where both links share the medium: saturating the
	// first hop wastes airtime and the delivered rate falls below the
	// ideal 5 Mbps split (congestion collapse).
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechWiFi)
	w := b.AddNode("w", 2, 0, graph.TechWiFi)
	l1 := b.AddLink(u, v, graph.TechWiFi, 10)
	l2 := b.AddLink(v, w, graph.TechWiFi, 10)
	net := b.Build()
	route := graph.Path{l1, l2}
	got := FluidDelivered(net, []graph.Path{route}, []float64{100}, 0)
	// The ideal coordinated rate is 5 (Lemma 1); saturation must do
	// strictly worse but still deliver something.
	if got[0] <= 0.5 || got[0] >= 5 {
		t.Errorf("saturated 2-hop delivery = %v, want in (0.5, 5)", got[0])
	}
	// A well-chosen injection of 5 passes through unharmed.
	got = FluidDelivered(net, []graph.Path{route}, []float64{5}, 0)
	if math.Abs(got[0]-5) > 0.3 {
		t.Errorf("balanced 2-hop delivery = %v, want ~5", got[0])
	}
}

func TestFluidHybridPathUnaffected(t *testing.T) {
	// PLC hop then WiFi hop: no intra-path interference; injection at the
	// PLC bottleneck passes end to end.
	b := graph.NewBuilder(nil)
	u := b.AddNode("u", 0, 0, graph.TechPLC, graph.TechWiFi)
	v := b.AddNode("v", 1, 0, graph.TechPLC, graph.TechWiFi)
	w := b.AddNode("w", 2, 0, graph.TechWiFi)
	l1 := b.AddLink(u, v, graph.TechPLC, 10)
	l2 := b.AddLink(v, w, graph.TechWiFi, 30)
	net := b.Build()
	got := FluidDelivered(net, []graph.Path{{l1, l2}}, []float64{10}, 0)
	if math.Abs(got[0]-10) > 0.3 {
		t.Errorf("hybrid path delivery = %v, want 10", got[0])
	}
}

func TestFluidMatchesPacketMAC(t *testing.T) {
	// Cross-check the fluid model against the packet MAC on a contended
	// scenario: two single-hop routes on one medium.
	net, l1, l2, _ := twoContenders()
	fluid := FluidDelivered(net, []graph.Path{{l1}, {l2}}, []float64{8, 8}, 0)

	var e sim.Engine
	m := New(&e, net, rng(8), Options{})
	got := map[graph.LinkID]float64{}
	m.Deliver = func(l graph.LinkID, pkt Packet) { got[l] += pkt.Bits }
	// Inject at 8 Mbps on each: a 12 kb packet every 1.5 ms.
	e.Every(0.0015, func() {
		m.Send(l1, 12000, nil)
		m.Send(l2, 12000, nil)
	})
	e.Run(20)
	p1 := got[l1] / 20 / 1e6
	p2 := got[l2] / 20 / 1e6
	if math.Abs(p1-fluid[0]) > 0.6 || math.Abs(p2-fluid[1]) > 0.6 {
		t.Errorf("packet (%.2f, %.2f) vs fluid (%.2f, %.2f)", p1, p2, fluid[0], fluid[1])
	}
}
