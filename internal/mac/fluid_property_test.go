package mac

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomFluidScenario builds a random small network and route set for
// property-testing the fluid model.
func randomFluidScenario(seed int64) (*graph.Network, []graph.Path, []float64) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nil)
	n := 3 + rng.Intn(4)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		techs := []graph.Tech{graph.TechWiFi}
		if rng.Float64() < 0.5 {
			techs = append(techs, graph.TechPLC)
		}
		ids[i] = b.AddNode("", float64(i), 0, techs...)
	}
	type link struct {
		id   graph.LinkID
		from graph.NodeID
		to   graph.NodeID
	}
	var links []link
	for i := 0; i < n-1; i++ {
		id := b.AddLink(ids[i], ids[i+1], graph.TechWiFi, 5+rng.Float64()*50)
		links = append(links, link{id, ids[i], ids[i+1]})
	}
	net := b.Build()
	// Routes: random prefixes of the chain.
	var routes []graph.Path
	var inject []float64
	for r := 0; r < 1+rng.Intn(3); r++ {
		hops := 1 + rng.Intn(len(links))
		var p graph.Path
		for h := 0; h < hops; h++ {
			p = append(p, links[h].id)
		}
		routes = append(routes, p)
		inject = append(inject, rng.Float64()*80)
	}
	return net, routes, inject
}

// TestFluidPropertyConservation: delivered never exceeds injected, never
// exceeds the route's bottleneck capacity, and is non-negative.
func TestFluidPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		net, routes, inject := randomFluidScenario(seed)
		out := FluidDelivered(net, routes, inject, 0)
		for r, p := range routes {
			if out[r] < -1e-9 || out[r] > inject[r]+1e-6 {
				return false
			}
			bottleneck := 1e18
			for _, l := range p {
				if c := net.Link(l).Capacity; c < bottleneck {
					bottleneck = c
				}
			}
			if out[r] > bottleneck+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFluidPropertyMonotoneUnderLoad: reducing one route's injection
// never reduces another route's delivery (less contention can only help
// the others).
func TestFluidPropertyMonotoneUnderLoad(t *testing.T) {
	f := func(seed int64) bool {
		net, routes, inject := randomFluidScenario(seed)
		if len(routes) < 2 {
			return true
		}
		base := FluidDelivered(net, routes, inject, 0)
		reduced := append([]float64(nil), inject...)
		reduced[0] = reduced[0] / 2
		after := FluidDelivered(net, routes, reduced, 0)
		for r := 1; r < len(routes); r++ {
			if after[r] < base[r]-0.5 { // allow fixed-point wiggle
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFluidPropertyAirtimeFeasible: at the fixed point, served rates
// respect the airtime constraint in every interference domain (within
// fixed-point tolerance).
func TestFluidPropertyAirtimeFeasible(t *testing.T) {
	f := func(seed int64) bool {
		net, routes, inject := randomFluidScenario(seed)
		// Served per-link rates: re-derive by running the model and
		// accumulating per-hop deliveries.
		nl := net.NumLinks()
		served := make([]float64, nl)
		out := FluidDelivered(net, routes, inject, 0)
		for r, p := range routes {
			// The delivered rate traverses every hop; upstream hops carry
			// at least that much.
			for _, l := range p {
				served[l] += out[r]
			}
		}
		for l := 0; l < nl; l++ {
			var mu float64
			for _, lp := range net.Interference(graph.LinkID(l)) {
				link := net.Link(lp)
				if link.Capacity > 0 {
					mu += served[lp] / link.Capacity
				}
			}
			if mu > 1.25 { // lower bound on served; generous tolerance
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
