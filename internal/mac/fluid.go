package mac

import (
	"repro/internal/graph"
)

// FluidDelivered computes the steady-state delivered rate of each route
// under the airtime-sharing MAC without simulating packets. Each route r
// injects traffic at inject[r] Mbps at its first hop; at every link the
// served fraction is the link's airtime share when its interference
// domain is overloaded, and traffic not served at a hop never reaches the
// next hop (queues overflow). The fixed point is computed by damped
// iteration.
//
// This reproduces the congestion-collapse behaviour of saturated multihop
// paths (§1: "saturating multihop paths is inefficient and can lead to
// congestion collapse") and backs the analytic MP-w/o-CC and SP-w/o-CC
// baselines.
func FluidDelivered(net *graph.Network, routes []graph.Path, inject []float64, iters int) []float64 {
	if iters <= 0 {
		iters = 60
	}
	nl := net.NumLinks()
	// offered[r][h]: rate offered to hop h of route r.
	offered := make([][]float64, len(routes))
	for r, p := range routes {
		offered[r] = make([]float64, len(p)+1)
		offered[r][0] = inject[r]
	}
	demand := make([]float64, nl)
	serveFrac := make([]float64, nl)
	for it := 0; it < iters; it++ {
		// Per-link demand from current offered rates.
		for l := range demand {
			demand[l] = 0
		}
		for r, p := range routes {
			for h, l := range p {
				demand[l] += offered[r][h]
			}
		}
		// Airtime share per link: if Σ_{l'∈I_l} μ_{l'} > 1 the domain is
		// overloaded and link l is served in proportion to its demand.
		for l := 0; l < nl; l++ {
			link := net.Link(graph.LinkID(l))
			if link.Capacity <= 0 || demand[l] <= 0 {
				serveFrac[l] = 0
				continue
			}
			var mu float64
			for _, lp := range net.Interference(graph.LinkID(l)) {
				lk := net.Link(lp)
				if lk.Capacity > 0 && demand[lp] > 0 {
					mu += demand[lp] / lk.Capacity
				}
			}
			if mu <= 1 {
				serveFrac[l] = 1
			} else {
				serveFrac[l] = 1 / mu
			}
		}
		// Propagate along routes with damping for stability.
		const damp = 0.5
		for r, p := range routes {
			for h, l := range p {
				next := offered[r][h] * serveFrac[l]
				offered[r][h+1] = damp*offered[r][h+1] + (1-damp)*next
			}
		}
	}
	out := make([]float64, len(routes))
	for r, p := range routes {
		out[r] = offered[r][len(p)]
	}
	return out
}
