package mac

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestAllocsSteadyStatePath guards the MAC fast path: once the rings,
// the timer pool and the engine heap are warm, a full
// enqueue→transmit→deliver cycle performs zero heap allocations. CI runs
// the Allocs guards as a regression gate (`go test -run Allocs ./...`).
func TestAllocsSteadyStatePath(t *testing.T) {
	var e sim.Engine
	net, l1, l2, _ := twoContenders()
	m := New(&e, net, rng(9), Options{})
	delivered := 0
	m.Deliver = func(l graph.LinkID, pkt Packet) { delivered++ }

	// Warm up: grow the rings past any size the guard loop reaches.
	for i := 0; i < 20; i++ {
		m.Send(l1, 12000, nil)
		m.Send(l2, 12000, nil)
	}
	e.RunUntilIdle()

	if avg := testing.AllocsPerRun(500, func() {
		m.Send(l1, 12000, nil)
		m.Send(l2, 12000, nil)
		e.RunUntilIdle()
	}); avg != 0 {
		t.Errorf("steady-state enqueue→transmit→deliver allocates %v per cycle, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("guard loop delivered nothing")
	}

	// The drop paths (overflow, dead link) are equally steady-state.
	full := New(&e, net, rng(10), Options{QueueLimit: 1})
	full.Send(l1, 12000, nil) // fills the 1-packet queue (and starts transmitting)
	if avg := testing.AllocsPerRun(200, func() {
		full.Send(l1, 12000, nil) // overflow drop
	}); avg != 0 {
		t.Errorf("steady-state overflow drop allocates %v per packet, want 0", avg)
	}
}
