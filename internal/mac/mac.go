// Package mac simulates the medium access layer of the paper's evaluation:
// a simplified CSMA/CA with perfect carrier sensing and no back-off
// (§5.1). A link may start transmitting only when no link in its
// interference domain is active; when a transmission ends, a uniformly
// random eligible contender grabs the medium. There are no collisions
// (sensing is perfect), so contention manifests purely as airtime sharing,
// exactly the abstraction the paper's model of §2 builds on.
//
// The package also provides a fluid approximation (FluidDelivered) used by
// the analytic no-congestion-control baselines: it reproduces the
// congestion-collapse behaviour of saturated multihop paths without
// simulating individual packets.
package mac

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Packet is one MAC-layer frame in flight.
type Packet struct {
	// Bits is the frame size in bits (including layer-2.5 overhead).
	Bits float64
	// Payload carries upper-layer state (e.g. a wire.Frame); the MAC
	// never inspects it.
	Payload interface{}
	// Enqueued is the virtual time the packet entered the MAC queue.
	Enqueued float64
}

// DeliverFunc receives packets on the far end of a link.
type DeliverFunc func(l graph.LinkID, pkt *Packet)

// DropFunc observes packets lost to queue overflow or channel errors.
type DropFunc func(l graph.LinkID, pkt *Packet, reason string)

// Options configures the MAC.
type Options struct {
	// QueueLimit is the per-link FIFO capacity in packets (default 100,
	// drop-tail).
	QueueLimit int
	// LossProb[l] is an optional per-link channel error probability
	// applied per packet (default none).
	LossProb []float64
}

func (o Options) queueLimit() int {
	if o.QueueLimit <= 0 {
		return 100
	}
	return o.QueueLimit
}

// LinkStats accumulates per-link counters.
type LinkStats struct {
	DeliveredBits float64
	DeliveredPkts int
	DroppedPkts   int
	BusySeconds   float64
}

// MAC is the shared-medium scheduler. It must only be driven from the
// owning sim.Engine's event loop (single-threaded).
type MAC struct {
	engine *sim.Engine
	net    *graph.Network
	rng    *rand.Rand
	opts   Options

	queues       [][]*Packet
	transmitting []bool
	// blocked[l] counts active transmitters in I_l; l may start only when
	// blocked[l] == 0.
	blocked []int
	stats   []LinkStats

	// Deliver is invoked when a packet crosses a link (after channel-loss
	// filtering). Drop is invoked on losses. Either may be nil.
	Deliver DeliverFunc
	Drop    DropFunc
}

// New creates a MAC over the network's links.
func New(engine *sim.Engine, net *graph.Network, rng *rand.Rand, opts Options) *MAC {
	n := net.NumLinks()
	return &MAC{
		engine:       engine,
		net:          net,
		rng:          rng,
		opts:         opts,
		queues:       make([][]*Packet, n),
		transmitting: make([]bool, n),
		blocked:      make([]int, n),
		stats:        make([]LinkStats, n),
	}
}

// QueueLen returns the backlog of link l in packets (including the packet
// currently on the air).
func (m *MAC) QueueLen(l graph.LinkID) int { return len(m.queues[l]) }

// Stats returns a copy of link l's counters.
func (m *MAC) Stats(l graph.LinkID) LinkStats { return m.stats[l] }

// Busy reports whether link l is currently transmitting.
func (m *MAC) Busy(l graph.LinkID) bool { return m.transmitting[l] }

// Send enqueues a packet on link l. It returns false (and invokes Drop)
// when the queue is full or the link is dead.
func (m *MAC) Send(l graph.LinkID, pkt *Packet) bool {
	link := m.net.Link(l)
	if link.Capacity <= 0 {
		m.drop(l, pkt, "dead-link")
		return false
	}
	if len(m.queues[l]) >= m.opts.queueLimit() {
		m.drop(l, pkt, "queue-overflow")
		return false
	}
	pkt.Enqueued = m.engine.Now()
	m.queues[l] = append(m.queues[l], pkt)
	m.tryStart(l)
	return true
}

// LinkChanged notifies the MAC that link l's capacity was mutated
// mid-run (the scenario-engine hook). A link that died flushes its queue
// — the frames are gone with the medium, and holding them would leak
// their transport metadata and replay stale traffic on recovery — except
// for a frame already on the air, whose completion event is scheduled. A
// link that (re)gained capacity re-enters contention immediately; without
// the kick, queued frames would wait for the next Send to call tryStart.
func (m *MAC) LinkChanged(l graph.LinkID) {
	if m.net.Link(l).Capacity > 0 {
		m.tryStart(l)
		return
	}
	q := m.queues[l]
	keep := 0
	if m.transmitting[l] {
		keep = 1 // in-flight frame: complete() pops it
	}
	for _, pkt := range q[keep:] {
		m.drop(l, pkt, "link-down")
	}
	for i := keep; i < len(q); i++ {
		q[i] = nil
	}
	m.queues[l] = q[:keep]
}

func (m *MAC) drop(l graph.LinkID, pkt *Packet, reason string) {
	m.stats[l].DroppedPkts++
	if m.Drop != nil {
		m.Drop(l, pkt, reason)
	}
}

// tryStart begins a transmission on l if it has backlog and its medium is
// idle.
func (m *MAC) tryStart(l graph.LinkID) {
	if m.transmitting[l] || len(m.queues[l]) == 0 || m.blocked[l] > 0 {
		return
	}
	link := m.net.Link(l)
	if link.Capacity <= 0 {
		return
	}
	pkt := m.queues[l][0]
	m.transmitting[l] = true
	for _, i := range m.net.Interference(l) {
		m.blocked[i]++
	}
	duration := pkt.Bits / (link.Capacity * 1e6)
	m.stats[l].BusySeconds += duration
	m.engine.Schedule(duration, func() { m.complete(l, pkt) })
}

func (m *MAC) complete(l graph.LinkID, pkt *Packet) {
	m.transmitting[l] = false
	// Pop the head.
	q := m.queues[l]
	copy(q, q[1:])
	q[len(q)-1] = nil
	m.queues[l] = q[:len(q)-1]

	for _, i := range m.net.Interference(l) {
		m.blocked[i]--
	}

	// Channel-error filtering happens at reception, as with real CSMA/CA
	// where the airtime is consumed regardless.
	lost := false
	if m.opts.LossProb != nil && int(l) < len(m.opts.LossProb) {
		if p := m.opts.LossProb[l]; p > 0 && m.rng.Float64() < p {
			lost = true
		}
	}
	if lost {
		m.drop(l, pkt, "channel-error")
	} else {
		m.stats[l].DeliveredBits += pkt.Bits
		m.stats[l].DeliveredPkts++
		if m.Deliver != nil {
			m.Deliver(l, pkt)
		}
	}

	// Hand the medium to the next contender(s): all links freed by this
	// completion, in uniformly random order (perfect sensing, no
	// back-off, no collisions).
	cands := m.net.Interference(l)
	order := make([]graph.LinkID, len(cands))
	copy(order, cands)
	m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, c := range order {
		m.tryStart(c)
	}
}
