// Package mac simulates the medium access layer of the paper's evaluation:
// a simplified CSMA/CA with perfect carrier sensing and no back-off
// (§5.1). A link may start transmitting only when no link in its
// interference domain is active; when a transmission ends, a uniformly
// random eligible contender grabs the medium. There are no collisions
// (sensing is perfect), so contention manifests purely as airtime sharing,
// exactly the abstraction the paper's model of §2 builds on.
//
// The steady-state packet path — enqueue, transmission start, completion,
// delivery — performs zero heap allocations: per-link queues are ring
// buffers of inline Packet values (they grow to the configured queue
// limit once and are reused forever), completion timers ride the
// engine's closure-free pooled scheduling, and packets cross the
// Deliver/Drop callbacks by value. Callbacks therefore must not retain a
// Packet's address; the value they receive is theirs, the queue slot it
// came from is not.
//
// The package also provides a fluid approximation (FluidDelivered) used by
// the analytic no-congestion-control baselines: it reproduces the
// congestion-collapse behaviour of saturated multihop paths without
// simulating individual packets.
package mac

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Packet is one MAC-layer frame in flight. Packets live inline in the
// per-link ring buffers and are handed to callbacks by value.
type Packet struct {
	// Bits is the frame size in bits (including layer-2.5 overhead).
	Bits float64
	// Payload carries upper-layer state (e.g. a wire frame); the MAC
	// never inspects it.
	Payload interface{}
	// Enqueued is the virtual time the packet entered the MAC queue.
	Enqueued float64
}

// DeliverFunc receives packets on the far end of a link. The packet is
// passed by value; the receiver owns it from here on.
type DeliverFunc func(l graph.LinkID, pkt Packet)

// DropReason classifies a packet loss. The enum is dense so per-reason
// counters live in a fixed array on LinkStats and the invariant checker
// can verify the totals without string comparisons.
type DropReason uint8

// Drop reasons.
const (
	// DropDeadLink rejects a Send on a link with zero capacity.
	DropDeadLink DropReason = iota
	// DropQueueOverflow is drop-tail on a full per-link FIFO.
	DropQueueOverflow
	// DropLinkDown flushes queued frames when a link's capacity reaches
	// zero mid-run (the frames are gone with the medium).
	DropLinkDown
	// DropChannelLoss is a per-packet channel error at reception (the
	// gray-failure model: the link is up, the airtime is consumed, the
	// frame is corrupt).
	DropChannelLoss
	// NumDropReasons sizes dense per-reason arrays.
	NumDropReasons
)

var dropReasonNames = [NumDropReasons]string{
	"dead-link", "queue-overflow", "link-down", "channel-loss",
}

func (r DropReason) String() string {
	if int(r) < len(dropReasonNames) {
		return dropReasonNames[r]
	}
	return "unknown"
}

// DropFunc observes packets lost to queue overflow, link death or
// channel errors (by value, like DeliverFunc).
type DropFunc func(l graph.LinkID, pkt Packet, reason DropReason)

// Options configures the MAC.
type Options struct {
	// QueueLimit is the per-link FIFO capacity in packets (default 100,
	// drop-tail).
	QueueLimit int
	// LossProb[l] is an optional per-link channel error probability
	// applied per packet (default none). The MAC copies it into its own
	// dense table at New; later mutations go through SetLossProb.
	LossProb []float64
}

func (o Options) queueLimit() int {
	if o.QueueLimit <= 0 {
		return 100
	}
	return o.QueueLimit
}

// LinkStats accumulates per-link counters. DroppedPkts is incremented
// separately from the per-reason array (not derived from it), so the
// invariant DroppedPkts == Σ Dropped[r] is a real consistency check.
type LinkStats struct {
	DeliveredBits float64
	DeliveredPkts int
	DroppedPkts   int
	// Dropped counts losses by reason, indexed by DropReason.
	Dropped     [NumDropReasons]int
	BusySeconds float64
}

// ring is a FIFO of inline Packet values. It grows geometrically up to
// the queue limit and never shrinks, so steady-state enqueue/dequeue is
// allocation-free.
type ring struct {
	buf  []Packet
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) at(i int) *Packet { return &r.buf[(r.head+i)%len(r.buf)] }

func (r *ring) push(p Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *ring) pop() Packet {
	p := r.buf[r.head]
	r.buf[r.head] = Packet{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// truncate drops every packet past position keep, clearing the slots so
// payloads don't leak through the ring's backing array.
func (r *ring) truncate(keep int) {
	for i := keep; i < r.n; i++ {
		*r.at(i) = Packet{}
	}
	r.n = keep
}

func (r *ring) grow() {
	next := make([]Packet, max(8, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		next[i] = *r.at(i)
	}
	r.buf = next
	r.head = 0
}

// completeArg binds a MAC and a link for the closure-free completion
// timer; one per link, allocated once at New.
type completeArg struct {
	m *MAC
	l graph.LinkID
}

func macComplete(arg any) {
	a := arg.(*completeArg)
	a.m.complete(a.l)
}

// MAC is the shared-medium scheduler. It must only be driven from the
// owning sim.Engine's event loop (single-threaded).
type MAC struct {
	engine *sim.Engine
	net    *graph.Network
	rng    *rand.Rand
	opts   Options

	queues       []ring
	transmitting []bool
	// blocked[l] counts active transmitters in I_l; l may start only when
	// blocked[l] == 0.
	blocked []int
	stats   []LinkStats
	// lossProb[l] is the live per-link channel error probability (dense;
	// seeded from Options.LossProb, mutated by SetLossProb).
	lossProb []float64

	// completion[l] is the preallocated argument of link l's completion
	// timers; shuffleScratch backs the contender shuffle in complete.
	completion     []completeArg
	shuffleScratch []graph.LinkID

	// Deliver is invoked when a packet crosses a link (after channel-loss
	// filtering). Drop is invoked on losses. Either may be nil.
	Deliver DeliverFunc
	Drop    DropFunc

	// rec is the optional flight recorder (nil: recording off). Records
	// are written on the engine's event loop, so the ring keeps its
	// single-writer discipline.
	rec *obs.Recorder
}

// New creates a MAC over the network's links.
func New(engine *sim.Engine, net *graph.Network, rng *rand.Rand, opts Options) *MAC {
	n := net.NumLinks()
	m := &MAC{
		engine:       engine,
		net:          net,
		rng:          rng,
		opts:         opts,
		queues:       make([]ring, n),
		transmitting: make([]bool, n),
		blocked:      make([]int, n),
		stats:        make([]LinkStats, n),
		lossProb:     make([]float64, n),
		completion:   make([]completeArg, n),
	}
	for l := range m.completion {
		m.completion[l] = completeArg{m: m, l: graph.LinkID(l)}
	}
	for l := 0; l < n && l < len(opts.LossProb); l++ {
		m.SetLossProb(graph.LinkID(l), opts.LossProb[l])
	}
	return m
}

// SetRecorder attaches a flight recorder for tx-start, deliver and drop
// records. A nil recorder (the default) disables recording.
func (m *MAC) SetRecorder(r *obs.Recorder) { m.rec = r }

// QueueLen returns the backlog of link l in packets (including the packet
// currently on the air).
func (m *MAC) QueueLen(l graph.LinkID) int { return m.queues[l].len() }

// Stats returns a copy of link l's counters.
func (m *MAC) Stats(l graph.LinkID) LinkStats { return m.stats[l] }

// TotalStats folds every link's counters into one LinkStats — the
// sampling read of the observability layer.
func (m *MAC) TotalStats() LinkStats {
	var t LinkStats
	for l := range m.stats {
		st := &m.stats[l]
		t.DeliveredBits += st.DeliveredBits
		t.DeliveredPkts += st.DeliveredPkts
		t.DroppedPkts += st.DroppedPkts
		for r := range st.Dropped {
			t.Dropped[r] += st.Dropped[r]
		}
		t.BusySeconds += st.BusySeconds
	}
	return t
}

// TotalQueueLen sums the per-link backlogs — instantaneous queue
// occupancy across the MAC.
func (m *MAC) TotalQueueLen() int {
	n := 0
	for l := range m.queues {
		n += m.queues[l].len()
	}
	return n
}

// Busy reports whether link l is currently transmitting.
func (m *MAC) Busy(l graph.LinkID) bool { return m.transmitting[l] }

// QueueLimit returns the per-link FIFO capacity in packets.
func (m *MAC) QueueLimit() int { return m.opts.queueLimit() }

// LossProb returns link l's current channel error probability.
func (m *MAC) LossProb(l graph.LinkID) float64 { return m.lossProb[l] }

// SetLossProb sets link l's channel error probability, clamped to
// [0, 1] — the gray-failure hook (scenario set-loss events reach it via
// node.Emulation.SetLinkLoss). The RNG is only consulted for packets on
// links with positive loss, so setting (or leaving) zero never perturbs
// a trajectory.
func (m *MAC) SetLossProb(l graph.LinkID, p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	m.lossProb[l] = p
}

// CheckConsistency verifies the MAC's internal bookkeeping: queue
// lengths within the limit, a transmitting link has backlog, blocked
// counts equal to the number of active transmitters in each link's
// interference set, and per-reason drop counters summing to the total.
// It is read-only and cheap enough for a periodic invariant checker.
func (m *MAC) CheckConsistency() error {
	for l := range m.queues {
		id := graph.LinkID(l)
		if n := m.queues[l].len(); n > m.opts.queueLimit() {
			return fmt.Errorf("mac: link %d queue %d exceeds limit %d", l, n, m.opts.queueLimit())
		}
		if m.transmitting[l] && m.queues[l].len() == 0 {
			return fmt.Errorf("mac: link %d transmitting with empty queue", l)
		}
		active := 0
		for _, i := range m.net.Interference(id) {
			if m.transmitting[i] {
				active++
			}
		}
		if m.blocked[l] != active {
			return fmt.Errorf("mac: link %d blocked=%d but %d active transmitters in its interference set", l, m.blocked[l], active)
		}
		st := &m.stats[l]
		sum := 0
		for _, c := range st.Dropped {
			sum += c
		}
		if sum != st.DroppedPkts {
			return fmt.Errorf("mac: link %d per-reason drops sum to %d, total says %d", l, sum, st.DroppedPkts)
		}
		if p := m.lossProb[l]; p < 0 || p > 1 {
			return fmt.Errorf("mac: link %d loss probability %g outside [0,1]", l, p)
		}
	}
	return nil
}

// Send enqueues a frame of the given size and payload on link l. It
// returns false (and invokes Drop) when the queue is full or the link is
// dead. The packet is built in place in the link's ring buffer — the
// caller never constructs one.
func (m *MAC) Send(l graph.LinkID, bits float64, payload interface{}) bool {
	pkt := Packet{Bits: bits, Payload: payload, Enqueued: m.engine.Now()}
	link := m.net.Link(l)
	if link.Capacity <= 0 {
		m.drop(l, pkt, DropDeadLink)
		return false
	}
	if m.queues[l].len() >= m.opts.queueLimit() {
		m.drop(l, pkt, DropQueueOverflow)
		return false
	}
	m.queues[l].push(pkt)
	m.tryStart(l)
	return true
}

// LinkChanged notifies the MAC that link l's capacity was mutated
// mid-run (the scenario-engine hook). A link that died flushes its queue
// — the frames are gone with the medium, and holding them would leak
// their transport metadata and replay stale traffic on recovery — except
// for a frame already on the air, whose completion event is scheduled. A
// link that (re)gained capacity re-enters contention immediately; without
// the kick, queued frames would wait for the next Send to call tryStart.
func (m *MAC) LinkChanged(l graph.LinkID) {
	if m.net.Link(l).Capacity > 0 {
		m.tryStart(l)
		return
	}
	q := &m.queues[l]
	keep := 0
	if m.transmitting[l] {
		keep = 1 // in-flight frame: complete() pops it
	}
	for i := keep; i < q.len(); i++ {
		m.drop(l, *q.at(i), DropLinkDown)
	}
	q.truncate(keep)
}

func (m *MAC) drop(l graph.LinkID, pkt Packet, reason DropReason) {
	m.stats[l].DroppedPkts++
	m.stats[l].Dropped[reason]++
	if m.rec != nil {
		m.rec.Record(m.engine.Now(), obs.RecDrop, int32(l), int32(reason), pkt.Bits)
	}
	if m.Drop != nil {
		m.Drop(l, pkt, reason)
	}
}

// tryStart begins a transmission on l if it has backlog and its medium is
// idle.
func (m *MAC) tryStart(l graph.LinkID) {
	if m.transmitting[l] || m.queues[l].len() == 0 || m.blocked[l] > 0 {
		return
	}
	link := m.net.Link(l)
	if link.Capacity <= 0 {
		return
	}
	bits := m.queues[l].at(0).Bits
	m.transmitting[l] = true
	for _, i := range m.net.Interference(l) {
		m.blocked[i]++
	}
	duration := bits / (link.Capacity * 1e6)
	m.stats[l].BusySeconds += duration
	if m.rec != nil {
		m.rec.Record(m.engine.Now(), obs.RecTxStart, int32(l), 0, bits)
	}
	m.engine.ScheduleFunc(duration, macComplete, &m.completion[l])
}

func (m *MAC) complete(l graph.LinkID) {
	m.transmitting[l] = false
	// Pop the frame that was on the air (LinkChanged keeps it at the
	// head even when the link died mid-flight).
	pkt := m.queues[l].pop()

	for _, i := range m.net.Interference(l) {
		m.blocked[i]--
	}

	// Channel-error filtering happens at reception, as with real CSMA/CA
	// where the airtime is consumed regardless.
	lost := false
	if p := m.lossProb[l]; p > 0 && m.rng.Float64() < p {
		lost = true
	}
	if lost {
		m.drop(l, pkt, DropChannelLoss)
	} else {
		m.stats[l].DeliveredBits += pkt.Bits
		m.stats[l].DeliveredPkts++
		if m.rec != nil {
			m.rec.Record(m.engine.Now(), obs.RecDeliver, int32(l), 0, pkt.Bits)
		}
		if m.Deliver != nil {
			m.Deliver(l, pkt)
		}
	}

	// Hand the medium to the next contender(s): all links freed by this
	// completion, in uniformly random order (perfect sensing, no
	// back-off, no collisions).
	cands := m.net.Interference(l)
	order := append(m.shuffleScratch[:0], cands...)
	m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, c := range order {
		m.tryStart(c)
	}
	m.shuffleScratch = order[:0]
}
