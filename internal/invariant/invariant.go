// Package invariant checks runtime invariants of a running emulation:
// properties that hold for every correct trajectory regardless of
// scenario, seed, or shard count. The checker rides the emulation's own
// engines — one periodic tick per interference domain, on the domain's
// worker goroutine — so it observes exactly the state the handlers see,
// with no synchronization and no perturbation of the trajectory beyond
// its own timer (which never reorders the existing timeline: timer
// sequence numbers are assigned at scheduling time, and the checker
// only reads).
//
// Checked per tick, per domain:
//
//   - virtual time is monotone;
//   - the MAC's internal bookkeeping is consistent (backlog within the
//     queue limit, blocked counters matching the interference sets, the
//     per-reason drop counters summing to the total);
//   - per-link delivery and drop counters never decrease;
//   - a dead link delivers nothing beyond the one frame already on the
//     air when it died (witnessed by the capacity-change epoch, so a
//     link that failed and recovered between two ticks is never
//     falsely accused);
//   - relay conservation: every data packet entering an agent is
//     consumed locally, forwarded, or dropped with a recorded reason;
//   - a sink never delivers more packets than its flow injected;
//   - a congestion-controlled flow's rate stays within a slack bound of
//     its routes' estimated capacity (multi-strike, ack-fresh flows
//     only, so estimate transients don't false-positive).
package invariant

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/node"
)

// Violation is one observed invariant breach.
type Violation struct {
	At     float64 `json:"at"`
	Domain int     `json:"domain"`
	Check  string  `json:"check"`
	Detail string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.3f dom=%d %s: %s", v.At, v.Domain, v.Check, v.Detail)
}

// FlowInfo is what the checker needs to know about one running flow.
type FlowInfo struct {
	Name     string
	Flow     *node.Flow
	Src, Dst graph.NodeID
}

// Config tunes the checker.
type Config struct {
	// Interval is the tick period in seconds (0: 0.5).
	Interval float64
	// Limit caps the violations recorded per domain (0: 64); past it
	// the domain stops recording (the run is already broken).
	Limit int
	// Flows lists the running flows a domain owns, in creation order.
	// The checker calls it on the domain's worker goroutine at every
	// tick; it may be nil (flow-level checks are then skipped).
	Flows func(domain int) []FlowInfo
}

func (c Config) interval() float64 {
	if c.Interval <= 0 {
		return 0.5
	}
	return c.Interval
}

func (c Config) limit() int {
	if c.Limit <= 0 {
		return 64
	}
	return c.Limit
}

// rateSlack and rateFloor bound the rate-vs-capacity check: a flow may
// transiently overshoot its routes' estimated bottlenecks while
// estimates converge, so the bound is rateSlack times the estimated
// route capacity plus a rateFloor absolute allowance, and a violation
// needs rateStrikes consecutive over-bound ticks.
const (
	rateSlack   = 1.5
	rateFloor   = 1.0 // Mbps
	rateStrikes = 3
	// ackFresh is the maximum age of a flow's last ack for the rate
	// check to apply: a flow whose acks stopped (failure in progress)
	// holds a stale rate the controller can no longer correct.
	ackFresh = 1.0
)

// Checker observes an emulation. Attach it once, run the emulation,
// then call Final; Violations returns everything found.
type Checker struct {
	em    *node.Emulation
	cfg   Config
	doms  []*domChecker
	final []Violation
	done  bool
}

// linkSnap is the previous tick's view of one owned link.
type linkSnap struct {
	delivered int
	dropped   int
	epoch     uint32
	dead      bool
	busy      bool // a frame was on the air (it may legally complete)
}

// domChecker is the per-domain checker state, touched only by the
// owning domain's goroutine until Final.
type domChecker struct {
	c   *Checker
	d   int
	em  *node.Emulation // the domain's closed sub-emulation
	eng engineNow

	links   []graph.LinkID
	nodes   []graph.NodeID
	prev    []linkSnap // indexed like links
	lastNow float64
	strikes map[string]int // consecutive over-bound ticks per flow

	violations []Violation
}

// engineNow narrows the engine to what the checker reads.
type engineNow interface{ Now() float64 }

// Attach builds a checker over the emulation and registers its periodic
// tick on every domain engine. The emulation must not have run yet.
func Attach(em *node.Emulation, cfg Config) *Checker {
	c := &Checker{em: em, cfg: cfg}
	c.doms = make([]*domChecker, em.NumDomains())
	for d := range c.doms {
		dc := &domChecker{
			c:       c,
			d:       d,
			em:      em.Domain(d),
			strikes: map[string]int{},
		}
		dc.eng = dc.em.Engine
		for l := 0; l < em.Net.NumLinks(); l++ {
			if em.LinkDomain(graph.LinkID(l)) == d {
				dc.links = append(dc.links, graph.LinkID(l))
			}
		}
		for n := 0; n < em.Net.NumNodes(); n++ {
			if em.NodeDomain(graph.NodeID(n)) == d {
				dc.nodes = append(dc.nodes, graph.NodeID(n))
			}
		}
		dc.prev = make([]linkSnap, len(dc.links))
		dc.snapshot()
		c.doms[d] = dc
		dc.em.Engine.Every(cfg.interval(), dc.tick)
	}
	return c
}

// Final runs one last tick per domain (end-state checks) and merges the
// per-domain records. Call it only once all engines have stopped; it is
// idempotent.
func (c *Checker) Final() []Violation {
	if !c.done {
		c.done = true
		for _, dc := range c.doms {
			dc.tick()
		}
		for _, dc := range c.doms {
			c.final = append(c.final, dc.violations...)
		}
		sort.SliceStable(c.final, func(i, j int) bool {
			if c.final[i].At != c.final[j].At {
				return c.final[i].At < c.final[j].At
			}
			return c.final[i].Domain < c.final[j].Domain
		})
	}
	return c.final
}

// Violations returns the merged violations (after Final).
func (c *Checker) Violations() []Violation { return c.final }

func (dc *domChecker) violate(check, format string, args ...interface{}) {
	if len(dc.violations) >= dc.c.cfg.limit() {
		return
	}
	dc.violations = append(dc.violations, Violation{
		At:     dc.eng.Now(),
		Domain: dc.d,
		Check:  check,
		Detail: fmt.Sprintf(format, args...),
	})
}

// tick runs every check once, then snapshots the link state for the
// next tick's monotonicity and dead-link comparisons.
func (dc *domChecker) tick() {
	now := dc.eng.Now()
	if now < dc.lastNow {
		dc.violate("monotone-time", "virtual time went backwards: %.6f after %.6f", now, dc.lastNow)
	}
	dc.lastNow = now
	if err := dc.em.MAC.CheckConsistency(); err != nil {
		dc.violate("mac-consistency", "%v", err)
	}
	dc.checkLinks()
	dc.checkAgents()
	dc.checkFlows(now)
	dc.snapshot()
}

func (dc *domChecker) checkLinks() {
	for i, l := range dc.links {
		st := dc.em.MAC.Stats(l)
		prev := dc.prev[i]
		if st.DeliveredPkts < prev.delivered || st.DroppedPkts < prev.dropped {
			dc.violate("counter-monotone",
				"link %d: delivered %d->%d dropped %d->%d",
				l, prev.delivered, st.DeliveredPkts, prev.dropped, st.DroppedPkts)
		}
		// A dead link delivers nothing. The capacity epoch brackets the
		// interval: equal readings mean no fail/recover transition
		// happened between the ticks, so a link dead at both ends was
		// dead throughout — any delivery in between is a violation,
		// except the single frame that was already on the air when the
		// link died (the MAC lets it complete; see mac.LinkChanged).
		allow := 0
		if prev.busy {
			allow = 1
		}
		if prev.dead && prev.epoch == dc.em.CapacityEpoch(l) &&
			st.DeliveredPkts > prev.delivered+allow {
			dc.violate("dead-link-delivery",
				"link %d delivered %d packets while dead",
				l, st.DeliveredPkts-prev.delivered)
		}
	}
}

// checkAgents verifies relay flow conservation: every data packet an
// agent received is accounted for exactly once.
func (dc *domChecker) checkAgents() {
	for _, n := range dc.nodes {
		a := dc.em.Agents[n]
		if a == nil {
			continue
		}
		if out := a.Consumed + a.Forwarded + a.RouteDrops; a.DataIn != out {
			dc.violate("flow-conservation",
				"node %d: %d data packets in, %d accounted (%d consumed + %d forwarded + %d route-dropped)",
				n, a.DataIn, out, a.Consumed, a.Forwarded, a.RouteDrops)
		}
	}
}

func (dc *domChecker) checkFlows(now float64) {
	if dc.c.cfg.Flows == nil {
		return
	}
	for _, fi := range dc.c.cfg.Flows(dc.d) {
		f := fi.Flow
		// Sink conservation holds whether or not the flow still runs.
		if s := dc.em.Agent(fi.Dst).PeekSink(fi.Src, f.ID); s != nil {
			if s.TotalPackets > f.InjectedPackets() {
				dc.violate("sink-conservation",
					"flow %s: sink delivered %d packets of %d injected",
					fi.Name, s.TotalPackets, f.InjectedPackets())
			}
		}
		if !f.Active() || !f.CC() {
			delete(dc.strikes, fi.Name)
			continue
		}
		// Rate within estimated capacity: only meaningful while the ack
		// loop is live — without acks the controller cannot move the
		// rate, and the estimates underneath may be collapsing.
		if last := f.LastAckAt(); last < 0 || now-last > ackFresh {
			delete(dc.strikes, fi.Name)
			continue
		}
		var bound float64
		for _, p := range f.Routes() {
			cap := -1.0
			for _, l := range p {
				if c := dc.em.LinkEstimate(l); cap < 0 || c < cap {
					cap = c
				}
			}
			if cap > 0 {
				bound += cap
			}
		}
		if f.TotalRate() > rateSlack*bound+rateFloor {
			dc.strikes[fi.Name]++
			if dc.strikes[fi.Name] >= rateStrikes {
				dc.violate("rate-bound",
					"flow %s: rate %.2f Mbps above %.2f (%.1fx estimated capacity %.2f + %.1f) for %d ticks",
					fi.Name, f.TotalRate(), rateSlack*bound+rateFloor, rateSlack, bound, rateFloor, dc.strikes[fi.Name])
				dc.strikes[fi.Name] = 0
			}
		} else {
			delete(dc.strikes, fi.Name)
		}
	}
}

func (dc *domChecker) snapshot() {
	for i, l := range dc.links {
		st := dc.em.MAC.Stats(l)
		dc.prev[i] = linkSnap{
			delivered: st.DeliveredPkts,
			dropped:   st.DroppedPkts,
			epoch:     dc.em.CapacityEpoch(l),
			dead:      dc.em.Net.Link(l).Capacity <= 0,
			busy:      dc.em.MAC.Busy(l),
		}
	}
}
