package netio

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

const sampleDoc = `{
  "nodes": [
    {"name": "a", "x": 0, "y": 0, "techs": ["plc", "wifi"]},
    {"name": "b", "x": 10, "y": 0, "techs": ["plc", "wifi"]},
    {"name": "c", "x": 20, "y": 0, "techs": ["wifi"]}
  ],
  "links": [
    {"from": "a", "to": "b", "tech": "plc", "capacity": 10, "duplex": true},
    {"from": "a", "to": "b", "tech": "wifi", "capacity": 15, "duplex": true},
    {"from": "b", "to": "c", "tech": "wifi", "capacity": 30}
  ]
}`

func TestReadAndBuild(t *testing.T) {
	doc, err := Read(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	net, ids, err := doc.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", net.NumNodes())
	}
	if net.NumLinks() != 5 { // 2 duplex pairs + 1 simplex
		t.Errorf("links = %d, want 5", net.NumLinks())
	}
	if net.FindLink(ids["a"], ids["b"], graph.TechPLC) < 0 {
		t.Error("missing a->b PLC")
	}
	if net.FindLink(ids["c"], ids["b"], graph.TechWiFi) != -1 {
		t.Error("simplex link should not have a reverse")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown tech", `{"nodes":[{"name":"a","techs":["lte"]}],"links":[]}`},
		{"dup node", `{"nodes":[{"name":"a"},{"name":"a"}],"links":[]}`},
		{"unnamed node", `{"nodes":[{"x":1}],"links":[]}`},
		{"unknown endpoint", `{"nodes":[{"name":"a","techs":["wifi"]}],"links":[{"from":"a","to":"zz","tech":"wifi","capacity":5}]}`},
		{"bad capacity", `{"nodes":[{"name":"a","techs":["wifi"]},{"name":"b","techs":["wifi"]}],"links":[{"from":"a","to":"b","tech":"wifi","capacity":0}]}`},
		{"self link", `{"nodes":[{"name":"a","techs":["wifi"]}],"links":[{"from":"a","to":"a","tech":"wifi","capacity":5}]}`},
		{"bad link tech", `{"nodes":[{"name":"a","techs":["wifi"]},{"name":"b","techs":["wifi"]}],"links":[{"from":"a","to":"b","tech":"zz","capacity":5}]}`},
	}
	for _, c := range cases {
		doc, err := Read(strings.NewReader(c.doc))
		if err != nil {
			continue // some cases fail at parse time, equally fine
		}
		if _, _, err := doc.Build(nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"nodes":[],"links":[],"bogus":1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
}

func TestRoundTripThroughNetwork(t *testing.T) {
	doc, err := Read(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := doc.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Export and re-import.
	out := FromNetwork(net)
	var b strings.Builder
	if err := out.Write(&b); err != nil {
		t.Fatal(err)
	}
	doc2, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, b.String())
	}
	net2, _, err := doc2.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumNodes() != net.NumNodes() || net2.NumLinks() != net.NumLinks() {
		t.Errorf("round trip changed shape: %d/%d -> %d/%d",
			net.NumNodes(), net.NumLinks(), net2.NumNodes(), net2.NumLinks())
	}
}

func TestParseTechAndName(t *testing.T) {
	for _, tech := range []graph.Tech{graph.TechPLC, graph.TechWiFi, graph.TechWiFi2} {
		got, err := ParseTech(TechName(tech))
		if err != nil || got != tech {
			t.Errorf("ParseTech(TechName(%v)) = %v, %v", tech, got, err)
		}
	}
	if _, err := ParseTech("ethernet"); err == nil {
		t.Error("unknown tech accepted")
	}
	if TechName(graph.Tech(9)) != "tech9" {
		t.Error("fallback tech name wrong")
	}
}
