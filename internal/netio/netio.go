// Package netio loads and saves hybrid network topologies as JSON, the
// interchange format used by cmd/empower-route. The format describes
// nodes (name, position, technologies) and links (endpoints, technology,
// capacity, optional duplex flag):
//
//	{
//	  "nodes": [{"name": "a", "x": 0, "y": 0, "techs": ["plc", "wifi"]}],
//	  "links": [{"from": "a", "to": "b", "tech": "plc",
//	             "capacity": 10, "duplex": true}]
//	}
//
// Interference defaults to the single-collision-domain-per-technology
// model; callers needing a different model can rebuild from the parsed
// Topology.
package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Node is the JSON form of a station.
type Node struct {
	Name  string   `json:"name"`
	X     float64  `json:"x"`
	Y     float64  `json:"y"`
	Techs []string `json:"techs"`
}

// Link is the JSON form of a link.
type Link struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Tech     string  `json:"tech"`
	Capacity float64 `json:"capacity"`
	// Duplex adds the reverse link with the same capacity.
	Duplex bool `json:"duplex,omitempty"`
}

// Topology is the JSON document.
type Topology struct {
	Nodes []Node `json:"nodes"`
	Links []Link `json:"links"`
}

// ParseTech maps the JSON technology names to graph.Tech.
func ParseTech(s string) (graph.Tech, error) {
	switch strings.ToLower(s) {
	case "plc":
		return graph.TechPLC, nil
	case "wifi", "wifi1":
		return graph.TechWiFi, nil
	case "wifi2":
		return graph.TechWiFi2, nil
	default:
		return 0, fmt.Errorf("netio: unknown technology %q", s)
	}
}

// TechName is the inverse of ParseTech.
func TechName(t graph.Tech) string {
	switch t {
	case graph.TechPLC:
		return "plc"
	case graph.TechWiFi:
		return "wifi"
	case graph.TechWiFi2:
		return "wifi2"
	default:
		return fmt.Sprintf("tech%d", int(t))
	}
}

// Read parses a topology document.
func Read(r io.Reader) (*Topology, error) {
	var t Topology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	return &t, nil
}

// Build materializes the document into a Network (nil model = single
// collision domain per technology) and returns the name→ID mapping.
func (t *Topology) Build(model graph.InterferenceModel) (*graph.Network, map[string]graph.NodeID, error) {
	b := graph.NewBuilder(model)
	ids := map[string]graph.NodeID{}
	for _, n := range t.Nodes {
		if n.Name == "" {
			return nil, nil, fmt.Errorf("netio: node without a name")
		}
		if _, dup := ids[n.Name]; dup {
			return nil, nil, fmt.Errorf("netio: duplicate node %q", n.Name)
		}
		var techs []graph.Tech
		for _, ts := range n.Techs {
			tech, err := ParseTech(ts)
			if err != nil {
				return nil, nil, err
			}
			techs = append(techs, tech)
		}
		ids[n.Name] = b.AddNode(n.Name, n.X, n.Y, techs...)
	}
	for _, l := range t.Links {
		tech, err := ParseTech(l.Tech)
		if err != nil {
			return nil, nil, err
		}
		from, ok := ids[l.From]
		if !ok {
			return nil, nil, fmt.Errorf("netio: link references unknown node %q", l.From)
		}
		to, ok := ids[l.To]
		if !ok {
			return nil, nil, fmt.Errorf("netio: link references unknown node %q", l.To)
		}
		if l.Capacity <= 0 {
			return nil, nil, fmt.Errorf("netio: link %s->%s has non-positive capacity", l.From, l.To)
		}
		if from == to {
			return nil, nil, fmt.Errorf("netio: self-link at %q", l.From)
		}
		if l.Duplex {
			b.AddDuplex(from, to, tech, l.Capacity)
		} else {
			b.AddLink(from, to, tech, l.Capacity)
		}
	}
	return b.Build(), ids, nil
}

// FromNetwork converts a Network back into the JSON document form
// (links are exported individually; duplex pairs are not re-merged).
func FromNetwork(net *graph.Network) *Topology {
	t := &Topology{}
	for i := 0; i < net.NumNodes(); i++ {
		n := net.Node(graph.NodeID(i))
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("n%d", i+1)
		}
		var techs []string
		for _, k := range n.Techs {
			techs = append(techs, TechName(k))
		}
		t.Nodes = append(t.Nodes, Node{Name: name, X: n.X, Y: n.Y, Techs: techs})
	}
	nameOf := func(id graph.NodeID) string {
		if n := net.Node(id).Name; n != "" {
			return n
		}
		return fmt.Sprintf("n%d", int(id)+1)
	}
	for i := 0; i < net.NumLinks(); i++ {
		l := net.Link(graph.LinkID(i))
		if l.Capacity <= 0 {
			continue
		}
		t.Links = append(t.Links, Link{
			From:     nameOf(l.From),
			To:       nameOf(l.To),
			Tech:     TechName(l.Tech),
			Capacity: l.Capacity,
		})
	}
	sort.Slice(t.Links, func(a, b int) bool {
		if t.Links[a].From != t.Links[b].From {
			return t.Links[a].From < t.Links[b].From
		}
		if t.Links[a].To != t.Links[b].To {
			return t.Links[a].To < t.Links[b].To
		}
		return t.Links[a].Tech < t.Links[b].Tech
	})
	return t
}

// Write serializes the document with indentation.
func (t *Topology) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	return nil
}
