package topology

import (
	"math/rand"
)

// testbedPositions approximates the 22-node office-floor layout of the
// paper's Figure 8 on a 65×40 m floor: nodes spread along two office rows
// and a central corridor. Coordinates are meters; node k of the paper is
// index k−1 here.
var testbedPositions = [22][2]float64{
	{4, 36},  // 1
	{10, 37}, // 2
	{4, 30},  // 3
	{9, 31},  // 4
	{15, 33}, // 5
	{21, 35}, // 6
	{14, 27}, // 7
	{20, 27}, // 8
	{27, 30}, // 9
	{26, 24}, // 10
	{8, 22},  // 11
	{33, 33}, // 12
	{3, 16},  // 13
	{40, 30}, // 14
	{39, 22}, // 15
	{47, 35}, // 16
	{33, 17}, // 17
	{46, 25}, // 18
	{52, 28}, // 19
	{45, 13}, // 20
	{55, 17}, // 21
	{61, 10}, // 22
}

// Testbed generates the 22-node instance of §6.1: every node has two WiFi
// interfaces and a HomePlug AV PLC interface on the building's electrical
// network (two panels splitting the floor). Capacities are drawn from the
// same distance-based distributions as the random topologies, using the
// supplied RNG so experiments can fix the channel realization by seed.
func Testbed(rng *rand.Rand, cfg Config) *Instance {
	inst := &Instance{Kind: "testbed", Config: cfg}
	for i, p := range testbedPositions {
		panel := 0
		if p[0] >= 32.5 {
			panel = 1
		}
		inst.Nodes = append(inst.Nodes, NodeSpec{
			Name:   nodeName(i + 1),
			X:      p[0],
			Y:      p[1],
			Hybrid: true,
			Panel:  panel,
		})
	}
	inst.fillCaps(rng)
	return inst
}

func nodeName(k int) string {
	const digits = "0123456789"
	if k < 10 {
		return "node" + string(digits[k])
	}
	return "node" + string(digits[k/10]) + string(digits[k%10])
}
