package topology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestResidentialShape(t *testing.T) {
	inst := Residential(rng(1), Config{})
	if len(inst.Nodes) != 10 {
		t.Fatalf("residential has %d nodes, want 10", len(inst.Nodes))
	}
	hybrid := 0
	for _, n := range inst.Nodes {
		if n.Hybrid {
			hybrid++
		}
		if n.X < 0 || n.X > 50 || n.Y < 0 || n.Y > 30 {
			t.Errorf("node outside 50x30 rectangle: (%v,%v)", n.X, n.Y)
		}
		if n.Panel != 0 {
			t.Error("residential should have a single panel")
		}
	}
	if hybrid != 5 {
		t.Errorf("residential has %d hybrid nodes, want 5", hybrid)
	}
}

func TestEnterpriseShape(t *testing.T) {
	inst := Enterprise(rng(2), Config{})
	if len(inst.Nodes) != 20 {
		t.Fatalf("enterprise has %d nodes, want 20", len(inst.Nodes))
	}
	hybrid := 0
	for i, n := range inst.Nodes {
		if n.Hybrid {
			hybrid++
			// APs sit on the 10 m grid.
			if math.Mod(n.X, 10) != 0 || math.Mod(n.Y, 10) != 0 {
				t.Errorf("AP %d not on grid: (%v,%v)", i, n.X, n.Y)
			}
		}
		if n.X < 0 || n.X > 100 || n.Y < 0 || n.Y > 60 {
			t.Errorf("node outside 100x60: (%v,%v)", n.X, n.Y)
		}
		wantPanel := 0
		if n.X >= 50 {
			wantPanel = 1
		}
		if n.Panel != wantPanel {
			t.Errorf("node %d panel %d, want %d", i, n.Panel, wantPanel)
		}
	}
	if hybrid != 10 {
		t.Errorf("enterprise has %d hybrid nodes, want 10", hybrid)
	}
}

func TestEnterprisePLCWithinPanelOnly(t *testing.T) {
	inst := Enterprise(rng(3), Config{})
	for i := range inst.Nodes {
		for j := range inst.Nodes {
			if inst.PLCCap[i][j] > 0 && inst.Nodes[i].Panel != inst.Nodes[j].Panel {
				t.Fatalf("PLC link across panels %d->%d", i, j)
			}
		}
	}
}

func TestCapacityBoundsAndRadii(t *testing.T) {
	cfg := Config{}
	for seed := int64(0); seed < 5; seed++ {
		inst := Residential(rng(seed), cfg)
		for i := range inst.Nodes {
			for j := range inst.Nodes {
				d := math.Hypot(inst.Nodes[i].X-inst.Nodes[j].X, inst.Nodes[i].Y-inst.Nodes[j].Y)
				if c := inst.WiFiCap[i][j]; c > 0 {
					if c > 100 || c < 2 {
						t.Fatalf("WiFi capacity out of range: %v", c)
					}
					if d > 35 {
						t.Fatalf("WiFi link beyond radius: %v m", d)
					}
				}
				if c := inst.PLCCap[i][j]; c > 0 {
					if c > 100 || c < 2 {
						t.Fatalf("PLC capacity out of range: %v", c)
					}
					if d > 50 {
						t.Fatalf("PLC link beyond radius: %v m", d)
					}
				}
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Residential(rng(42), Config{})
	b := Residential(rng(42), Config{})
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("same seed must give same nodes")
		}
		for j := range a.Nodes {
			if a.WiFiCap[i][j] != b.WiFiCap[i][j] || a.PLCCap[i][j] != b.PLCCap[i][j] {
				t.Fatal("same seed must give same capacities")
			}
		}
	}
}

func TestBuildViews(t *testing.T) {
	inst := Residential(rng(7), Config{})
	hybrid := inst.Build(ViewHybrid)
	single := inst.Build(ViewWiFiSingle)
	dual := inst.Build(ViewWiFiDual)

	countTech := func(n *Network, tech graph.Tech) int {
		c := 0
		for i := 0; i < n.NumLinks(); i++ {
			if n.Link(graph.LinkID(i)).Tech == tech {
				c++
			}
		}
		return c
	}
	wifi := countTech(hybrid, graph.TechWiFi)
	if countTech(single, graph.TechWiFi) != wifi {
		t.Error("views disagree on WiFi link count")
	}
	if countTech(single, graph.TechPLC) != 0 || countTech(single, graph.TechWiFi2) != 0 {
		t.Error("single view has extra technologies")
	}
	if countTech(dual, graph.TechWiFi2) != wifi {
		t.Error("dual view should mirror every WiFi link on channel 2")
	}
	if countTech(dual, graph.TechPLC) != 0 {
		t.Error("dual view must not contain PLC")
	}
	if countTech(hybrid, graph.TechPLC) == 0 {
		t.Error("hybrid view lost its PLC links (check seed)")
	}
	if len(hybrid.HybridNodes) != 5 {
		t.Errorf("hybrid nodes %d, want 5", len(hybrid.HybridNodes))
	}
}

func TestDualChannelCapacitiesMatch(t *testing.T) {
	inst := Residential(rng(8), Config{})
	dual := inst.Build(ViewWiFiDual)
	// For every WiFi link there must be a WiFi2 link with equal capacity.
	type key struct {
		from, to graph.NodeID
	}
	ch1 := map[key]float64{}
	ch2 := map[key]float64{}
	for i := 0; i < dual.NumLinks(); i++ {
		l := dual.Link(graph.LinkID(i))
		switch l.Tech {
		case graph.TechWiFi:
			ch1[key{l.From, l.To}] = l.Capacity
		case graph.TechWiFi2:
			ch2[key{l.From, l.To}] = l.Capacity
		}
	}
	if len(ch1) != len(ch2) {
		t.Fatalf("channel link counts differ: %d vs %d", len(ch1), len(ch2))
	}
	for k, c := range ch1 {
		if ch2[k] != c {
			t.Fatalf("capacities differ on %v: %v vs %v", k, c, ch2[k])
		}
	}
}

func TestInterferenceModelProperties(t *testing.T) {
	inst := Enterprise(rng(9), Config{})
	net := inst.Build(ViewHybrid)
	for i := 0; i < net.NumLinks(); i++ {
		li := net.Link(graph.LinkID(i))
		for _, j := range net.Interference(graph.LinkID(i)) {
			lj := net.Link(j)
			if i != int(j) && li.Tech != lj.Tech {
				t.Fatal("cross-technology interference")
			}
			if li.Tech == graph.TechPLC && int(j) != i {
				if inst.Nodes[li.From].Panel != inst.Nodes[lj.From].Panel {
					t.Fatal("PLC interference across panels")
				}
			}
		}
	}
	// Channels 1 and 2 never interfere in the dual view.
	dual := inst.Build(ViewWiFiDual)
	for i := 0; i < dual.NumLinks(); i++ {
		li := dual.Link(graph.LinkID(i))
		for _, j := range dual.Interference(graph.LinkID(i)) {
			if lj := dual.Link(j); li.Tech != lj.Tech {
				t.Fatal("cross-channel interference in dual view")
			}
		}
	}
}

func TestRandomFlow(t *testing.T) {
	inst := Residential(rng(10), Config{})
	r := rng(11)
	for i := 0; i < 100; i++ {
		src, dst := inst.RandomFlow(r)
		if src == dst {
			t.Fatal("flow with identical endpoints")
		}
		if !inst.Nodes[src].Hybrid {
			t.Fatal("source must be a hybrid node")
		}
	}
}

func TestTestbed(t *testing.T) {
	inst := Testbed(rng(12), Config{})
	if len(inst.Nodes) != 22 {
		t.Fatalf("testbed has %d nodes, want 22", len(inst.Nodes))
	}
	for i, n := range inst.Nodes {
		if !n.Hybrid {
			t.Errorf("testbed node %d should be hybrid", i)
		}
		if n.X < 0 || n.X > 65 || n.Y < 0 || n.Y > 40 {
			t.Errorf("testbed node %d outside floor: (%v,%v)", i, n.X, n.Y)
		}
	}
	if inst.Nodes[0].Name != "node1" || inst.Nodes[21].Name != "node22" {
		t.Error("testbed node names wrong")
	}
	// The floor must be connected enough to route between far corners in
	// the hybrid view.
	net := inst.Build(ViewHybrid)
	if net.NumLinks() == 0 {
		t.Fatal("testbed has no links")
	}
}

func TestViewString(t *testing.T) {
	if ViewHybrid.String() != "hybrid" || ViewWiFiSingle.String() != "wifi-single" || ViewWiFiDual.String() != "wifi-dual" {
		t.Error("View.String wrong")
	}
}
