// Package topology generates the network instances of the paper's
// evaluation (§5.1 and §6.1):
//
//   - residential: 50×30 m, 10 nodes (5 hybrid PLC/WiFi, 5 WiFi-only),
//     uniform random positions;
//   - enterprise: 100×60 m, 20 nodes (10 hybrid APs on a 10 m grid, 10
//     WiFi-only clients), with two electrical panels splitting the
//     building — PLC links exist only within a panel;
//   - testbed: the 22-node office floor (65×40 m) of §6, with every node
//     equipped with two WiFi interfaces and one PLC interface.
//
// Link existence follows the paper's connection radii (35 m for WiFi,
// 50 m for PLC) and capacities are sampled from distance-based
// distributions calibrated to the paper's reported ranges (both
// technologies top out near 100 Mbps; PLC has much higher variance because
// electrical-wiring attenuation correlates only loosely with Euclidean
// distance).
//
// A generated Instance is view-independent: the same node positions and
// capacities materialize as a hybrid PLC/WiFi network, a single-channel
// WiFi network, or a two-channel WiFi network (the two channels share the
// same capacities, as in the paper, since fading affects both channels of
// the same radio similarly).
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Config holds generation parameters; zero values select the paper's.
type Config struct {
	// WiFiRadius is the WiFi connection radius in meters (default 35).
	WiFiRadius float64
	// PLCRadius is the PLC connection radius in meters (default 50).
	PLCRadius float64
	// WiFiSenseFactor scales the WiFi carrier-sensing radius relative to
	// the connection radius (default 1.5; sensing reaches further than
	// decoding).
	WiFiSenseFactor float64
	// MaxCapacity is the per-link capacity ceiling in Mbps (default 100,
	// the paper's reported maximum for both 802.11n 40 MHz and HPAV 200).
	MaxCapacity float64
}

func (c Config) wifiRadius() float64 {
	if c.WiFiRadius <= 0 {
		return 35
	}
	return c.WiFiRadius
}

func (c Config) plcRadius() float64 {
	if c.PLCRadius <= 0 {
		return 50
	}
	return c.PLCRadius
}

func (c Config) senseFactor() float64 {
	if c.WiFiSenseFactor <= 0 {
		return 1.5
	}
	return c.WiFiSenseFactor
}

func (c Config) maxCap() float64 {
	if c.MaxCapacity <= 0 {
		return 100
	}
	return c.MaxCapacity
}

// NodeSpec describes one station of an instance.
type NodeSpec struct {
	Name   string
	X, Y   float64
	Hybrid bool // has a PLC interface
	Panel  int  // electrical panel (PLC collision/connectivity domain)
}

// Instance is a generated topology before materialization into a
// graph.Network view.
type Instance struct {
	Kind  string
	Nodes []NodeSpec
	// WiFiCap[i][j] is the capacity of the directed WiFi link i->j in
	// Mbps (0 = no link). PLCCap likewise for PLC.
	WiFiCap [][]float64
	PLCCap  [][]float64
	Config  Config

	// built caches one materialization per view for BuildCached.
	built [3]*Network
}

// View selects which technologies materialize.
type View int

const (
	// ViewHybrid uses PLC plus one WiFi channel (the paper's EMPoWER/SP
	// configuration).
	ViewHybrid View = iota
	// ViewWiFiSingle uses a single WiFi channel only (SP-WiFi/MP-WiFi).
	ViewWiFiSingle
	// ViewWiFiDual uses two non-interfering WiFi channels with identical
	// capacities (MP-mWiFi).
	ViewWiFiDual
)

// String implements fmt.Stringer.
func (v View) String() string {
	switch v {
	case ViewHybrid:
		return "hybrid"
	case ViewWiFiSingle:
		return "wifi-single"
	case ViewWiFiDual:
		return "wifi-dual"
	default:
		return fmt.Sprintf("View(%d)", int(v))
	}
}

// Network couples the materialized multigraph with instance metadata.
type Network struct {
	*graph.Network
	Instance *Instance
	View     View
	// HybridNodes lists nodes with a PLC interface (candidate flow
	// sources per §5.1).
	HybridNodes []graph.NodeID
}

// interferenceModel implements graph.InterferenceModel for generated
// instances: WiFi links interfere within the carrier-sensing radius (per
// channel); PLC links interfere whenever they share an electrical panel
// (one IEEE 1901 central coordinator per panel).
type interferenceModel struct {
	inst  *Instance
	sense float64
}

// Interferes implements graph.InterferenceModel.
func (m interferenceModel) Interferes(net *graph.Network, a, b *graph.Link) bool {
	if a.Tech != b.Tech {
		return false
	}
	if a.Tech == graph.TechPLC {
		return m.inst.Nodes[a.From].Panel == m.inst.Nodes[b.From].Panel
	}
	// WiFi channels: shared endpoint or proximity.
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	for _, u := range []graph.NodeID{a.From, a.To} {
		for _, v := range []graph.NodeID{b.From, b.To} {
			if net.Distance(u, v) <= m.sense {
				return true
			}
		}
	}
	return false
}

// Name implements graph.InterferenceModel.
func (m interferenceModel) Name() string { return "hybrid-paper-model" }

// Build materializes a view of the instance as a Network.
func (inst *Instance) Build(view View) *Network {
	model := interferenceModel{inst: inst, sense: inst.Config.wifiRadius() * inst.Config.senseFactor()}
	b := graph.NewBuilder(model)
	n := len(inst.Nodes)
	for i, spec := range inst.Nodes {
		techs := []graph.Tech{graph.TechWiFi}
		if view == ViewWiFiDual {
			techs = append(techs, graph.TechWiFi2)
		}
		if view == ViewHybrid && spec.Hybrid {
			techs = append(techs, graph.TechPLC)
		}
		name := spec.Name
		if name == "" {
			name = defaultNodeName(i + 1)
		}
		b.AddNode(name, spec.X, spec.Y, techs...)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if c := inst.WiFiCap[i][j]; c > 0 {
				b.AddLink(graph.NodeID(i), graph.NodeID(j), graph.TechWiFi, c)
				if view == ViewWiFiDual {
					b.AddLink(graph.NodeID(i), graph.NodeID(j), graph.TechWiFi2, c)
				}
			}
			if view == ViewHybrid {
				if c := inst.PLCCap[i][j]; c > 0 {
					b.AddLink(graph.NodeID(i), graph.NodeID(j), graph.TechPLC, c)
				}
			}
		}
	}
	net := &Network{Network: b.Build(), Instance: inst, View: view}
	for i, spec := range inst.Nodes {
		if spec.Hybrid {
			net.HybridNodes = append(net.HybridNodes, graph.NodeID(i))
		}
	}
	return net
}

// nodeNames interns the default "n1", "n2", ... node names: sweeps
// materialize thousands of instances and the per-node fmt.Sprintf was the
// single largest allocation source of a Figure-4 run.
var nodeNames = func() (a [64]string) {
	for i := range a {
		a[i] = fmt.Sprintf("n%d", i)
	}
	return
}()

func defaultNodeName(i int) string {
	if i >= 0 && i < len(nodeNames) {
		return nodeNames[i]
	}
	return fmt.Sprintf("n%d", i)
}

// BuildCached returns the instance's materialization of a view, building
// it on first use and reusing it afterwards. Scheme sweeps evaluate
// several schemes over at most three distinct views of the same
// instance, and materialization dominates their allocation profile; the
// cache collapses those rebuilds. The cached networks serve the
// read-only analytic paths (routing, the centralized controller, the
// fluid MAC): a caller that mutates link capacities — every emulation
// does — must take a fresh Build. Not safe for concurrent use on one
// Instance; the Monte-Carlo runners give each replication its own.
func (inst *Instance) BuildCached(view View) *Network {
	if int(view) >= len(inst.built) {
		return inst.Build(view)
	}
	if inst.built[view] == nil {
		inst.built[view] = inst.Build(view)
	}
	return inst.built[view]
}

// wifiCapacity samples the capacity of a WiFi link of length dist from
// the distance-based distribution: near-max at short range, decaying
// toward the edge of the connection radius, with lognormal shadowing and
// a distance-growing outage probability (deep fades and walls make some
// in-range links unusable — this is what gives PLC its coverage value in
// Figure 5).
func wifiCapacity(rng *rand.Rand, dist, radius, maxCap float64) float64 {
	if dist > radius {
		return 0
	}
	frac := dist / radius
	if rng.Float64() < 0.45*math.Pow(frac, 1.5) {
		return 0 // deep fade / obstruction outage
	}
	base := maxCap * math.Pow(1-frac/1.05, 1.7)
	noise := math.Exp(rng.NormFloat64() * 0.4)
	return clamp(base*noise, 2, maxCap)
}

// plcCapacity samples a PLC link capacity. Electrical attenuation depends
// on wiring topology more than Euclidean distance, so the distance
// dependence is weak, the variance large, and a wiring-dependent outage
// (different phases, long wiring detours) affects ~12 % of in-range
// pairs.
func plcCapacity(rng *rand.Rand, dist, radius, maxCap float64) float64 {
	if dist > radius {
		return 0
	}
	if rng.Float64() < 0.12 {
		return 0 // unfavorable wiring path
	}
	base := 0.8 * maxCap * math.Pow(1-dist/(radius*1.15), 0.7)
	noise := math.Exp(rng.NormFloat64() * 0.55)
	return clamp(base*noise, 2, maxCap)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// fillCaps populates the directed capacity matrices. Forward and reverse
// capacities are correlated but not identical (σ ≈ 0.1 asymmetry).
func (inst *Instance) fillCaps(rng *rand.Rand) {
	n := len(inst.Nodes)
	inst.WiFiCap = matrix(n)
	inst.PLCCap = matrix(n)
	cfg := inst.Config
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(inst.Nodes[i].X-inst.Nodes[j].X, inst.Nodes[i].Y-inst.Nodes[j].Y)
			if c := wifiCapacity(rng, d, cfg.wifiRadius(), cfg.maxCap()); c > 0 {
				inst.WiFiCap[i][j] = c
				inst.WiFiCap[j][i] = clamp(c*math.Exp(rng.NormFloat64()*0.1), 2, cfg.maxCap())
			}
			if inst.Nodes[i].Hybrid && inst.Nodes[j].Hybrid && inst.Nodes[i].Panel == inst.Nodes[j].Panel {
				if c := plcCapacity(rng, d, cfg.plcRadius(), cfg.maxCap()); c > 0 {
					inst.PLCCap[i][j] = c
					inst.PLCCap[j][i] = clamp(c*math.Exp(rng.NormFloat64()*0.15), 2, cfg.maxCap())
				}
			}
		}
	}
}

func matrix(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// Residential generates the §5.1 residential instance: 10 nodes on a
// 50×30 m rectangle, 5 hybrid and 5 WiFi-only, one electrical panel.
func Residential(rng *rand.Rand, cfg Config) *Instance {
	inst := &Instance{Kind: "residential", Config: cfg}
	for i := 0; i < 10; i++ {
		inst.Nodes = append(inst.Nodes, NodeSpec{
			X:      rng.Float64() * 50,
			Y:      rng.Float64() * 30,
			Hybrid: i < 5,
			Panel:  0,
		})
	}
	inst.fillCaps(rng)
	return inst
}

// Enterprise generates the §5.1 enterprise instance: 20 nodes on a
// 100×60 m rectangle; 10 hybrid PLC/WiFi APs placed on distinct points of
// a 10 m grid; 10 WiFi-only clients placed uniformly; two electrical
// panels split the building at x = 50 and PLC links exist only within a
// panel.
func Enterprise(rng *rand.Rand, cfg Config) *Instance {
	inst := &Instance{Kind: "enterprise", Config: cfg}
	// Grid points strictly inside the rectangle.
	type pt struct{ x, y float64 }
	var grid []pt
	for x := 10.0; x <= 90; x += 10 {
		for y := 10.0; y <= 50; y += 10 {
			grid = append(grid, pt{x, y})
		}
	}
	rng.Shuffle(len(grid), func(i, j int) { grid[i], grid[j] = grid[j], grid[i] })
	for i := 0; i < 10; i++ {
		p := grid[i]
		panel := 0
		if p.x >= 50 {
			panel = 1
		}
		inst.Nodes = append(inst.Nodes, NodeSpec{X: p.x, Y: p.y, Hybrid: true, Panel: panel})
	}
	for i := 0; i < 10; i++ {
		x, y := rng.Float64()*100, rng.Float64()*60
		panel := 0
		if x >= 50 {
			panel = 1
		}
		inst.Nodes = append(inst.Nodes, NodeSpec{X: x, Y: y, Hybrid: false, Panel: panel})
	}
	inst.fillCaps(rng)
	return inst
}

// RandomFlow draws a flow per §5.1: the source uniformly among hybrid
// nodes, the destination uniformly among all other nodes (flows between
// two WiFi-only nodes are excluded by construction).
func (inst *Instance) RandomFlow(rng *rand.Rand) (src, dst graph.NodeID) {
	var hybrid []int
	for i, n := range inst.Nodes {
		if n.Hybrid {
			hybrid = append(hybrid, i)
		}
	}
	s := hybrid[rng.Intn(len(hybrid))]
	d := s
	for d == s {
		d = rng.Intn(len(inst.Nodes))
	}
	return graph.NodeID(s), graph.NodeID(d)
}
