package linkest

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimatorConvergesInTrafficMode(t *testing.T) {
	e := New(Config{})
	e.SetMode(ModeTraffic)
	rng := rand.New(rand.NewSource(1))
	// High-rate samples every 1 ms of a 50 Mbps link.
	now := 0.0
	for i := 0; i < 2000; i++ {
		now += 0.001
		e.Observe(e.Sample(50, rng), now)
	}
	if got := e.Estimate(); math.Abs(got-50) > 1 {
		t.Errorf("traffic estimate = %v, want ~50", got)
	}
}

func TestTrafficModeReactsWithin100ms(t *testing.T) {
	e := New(Config{})
	e.SetMode(ModeTraffic)
	rng := rand.New(rand.NewSource(2))
	now := 0.0
	for i := 0; i < 1000; i++ {
		now += 0.001
		e.Observe(e.Sample(80, rng), now)
	}
	// Capacity collapses to 20; within ~300 ms the estimate must be close.
	for i := 0; i < 300; i++ {
		now += 0.001
		e.Observe(e.Sample(20, rng), now)
	}
	if got := e.Estimate(); math.Abs(got-20) > 5 {
		t.Errorf("estimate after capacity drop = %v, want ~20", got)
	}
}

func TestProbeModeSlowerButConverges(t *testing.T) {
	e := New(Config{})
	e.SetMode(ModeProbe)
	rng := rand.New(rand.NewSource(3))
	now := 0.0
	// Probes every 250 ms for 20 s.
	for i := 0; i < 80; i++ {
		now += e.ProbeInterval()
		e.Observe(e.Sample(40, rng), now)
	}
	if got := e.Estimate(); math.Abs(got-40) > 4 {
		t.Errorf("probe estimate = %v, want ~40 ± noise", got)
	}
}

func TestProbeModeNoisierThanTraffic(t *testing.T) {
	// Empirical spread of samples should be wider in probe mode.
	rng := rand.New(rand.NewSource(4))
	probe := New(Config{})
	probe.SetMode(ModeProbe)
	traffic := New(Config{})
	traffic.SetMode(ModeTraffic)
	var probeVar, trafficVar float64
	n := 3000
	for i := 0; i < n; i++ {
		p := probe.Sample(100, rng) - 100
		q := traffic.Sample(100, rng) - 100
		probeVar += p * p
		trafficVar += q * q
	}
	if probeVar <= trafficVar*4 {
		t.Errorf("probe variance %v should dwarf traffic variance %v", probeVar/float64(n), trafficVar/float64(n))
	}
}

func TestFirstSampleInitializes(t *testing.T) {
	e := New(Config{})
	if e.Estimate() != 0 {
		t.Error("estimate before samples should be 0")
	}
	e.Observe(33, 1)
	if e.Estimate() != 33 {
		t.Errorf("estimate = %v, want 33 (first sample)", e.Estimate())
	}
}

func TestFailureDetection(t *testing.T) {
	e := New(Config{})
	e.Observe(50, 1)
	if e.Failed(1.5) {
		t.Error("failed too early")
	}
	if !e.Failed(2.5) {
		t.Error("failure not detected after timeout")
	}
	// No samples ever: not failed (nothing to fail).
	f := New(Config{})
	if f.Failed(100) {
		t.Error("virgin estimator cannot fail")
	}
}

func TestReset(t *testing.T) {
	e := New(Config{})
	e.Observe(50, 1)
	e.Reset()
	if e.Estimate() != 0 {
		t.Error("reset did not clear estimate")
	}
	if e.Failed(100) {
		t.Error("reset estimator cannot be failed")
	}
}

func TestNegativeSampleClamped(t *testing.T) {
	e := New(Config{})
	e.Observe(-5, 1)
	if e.Estimate() != 0 {
		t.Errorf("negative sample should clamp to 0, got %v", e.Estimate())
	}
}

func TestModeSwitching(t *testing.T) {
	e := New(Config{})
	if e.Mode() != ModeProbe {
		t.Error("default mode should be probe")
	}
	e.SetMode(ModeTraffic)
	if e.Mode() != ModeTraffic {
		t.Error("mode switch failed")
	}
}
