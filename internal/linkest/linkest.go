// Package linkest models the link-capacity estimation of §6.1. On the real
// testbed, capacities are read from modulation information in frame
// headers — the MCS index for 802.11n and the bit-loading estimate (BLE)
// for HomePlug AV PLC. Two regimes exist:
//
//   - probe mode: when a link carries no flow, ~1 kB/s probes give a
//     precise-but-not-perfect estimate that reacts to capacity changes in
//     a few seconds;
//   - traffic mode: when a flow is active, per-frame readings at high rate
//     make the estimate extremely precise and reactive within ~100 ms —
//     the precision the congestion controller needs, since an
//     overestimated capacity yields congestion.
//
// The estimator consumes per-sample noisy capacity readings and maintains
// an EWMA whose gain depends on the sampling rate, reproducing both
// regimes with one mechanism. It also detects link failures when samples
// stop arriving.
package linkest

import (
	"math"
	"math/rand"
)

// Mode identifies the estimation regime.
type Mode int

// Modes.
const (
	// ModeProbe: low-rate probing, no active flow.
	ModeProbe Mode = iota
	// ModeTraffic: high-rate data-driven estimation.
	ModeTraffic
)

// Config tunes an Estimator.
type Config struct {
	// ProbeInterval is the probing period in seconds when no traffic
	// flows (default 0.25 s ≈ 1 kB/s of 256 B probes).
	ProbeInterval float64
	// ProbeNoise is the relative standard deviation of a probe-mode
	// sample (default 0.08).
	ProbeNoise float64
	// TrafficNoise is the relative standard deviation of a traffic-mode
	// sample (default 0.01).
	TrafficNoise float64
	// TrafficWindow is the EWMA time constant in traffic mode in seconds
	// (default 0.1, the paper's "order of hundred of milliseconds").
	TrafficWindow float64
	// ProbeWindow is the EWMA time constant in probe mode (default 2 s,
	// "a few seconds").
	ProbeWindow float64
	// FailureTimeout declares the link failed when no sample arrives for
	// this long (default 1 s).
	FailureTimeout float64
}

func (c Config) probeInterval() float64 {
	if c.ProbeInterval <= 0 {
		return 0.25
	}
	return c.ProbeInterval
}

func (c Config) probeNoise() float64 {
	if c.ProbeNoise <= 0 {
		return 0.08
	}
	return c.ProbeNoise
}

func (c Config) trafficNoise() float64 {
	if c.TrafficNoise <= 0 {
		return 0.01
	}
	return c.TrafficNoise
}

func (c Config) trafficWindow() float64 {
	if c.TrafficWindow <= 0 {
		return 0.1
	}
	return c.TrafficWindow
}

func (c Config) probeWindow() float64 {
	if c.ProbeWindow <= 0 {
		return 2.0
	}
	return c.ProbeWindow
}

func (c Config) failureTimeout() float64 {
	if c.FailureTimeout <= 0 {
		return 1.0
	}
	return c.FailureTimeout
}

// Estimator tracks one link's capacity.
type Estimator struct {
	cfg Config

	estimate   float64
	haveSample bool
	lastSample float64 // virtual time of the last sample
	mode       Mode
}

// New returns an estimator with the given configuration.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg}
}

// Mode returns the current regime.
func (e *Estimator) Mode() Mode { return e.mode }

// SetMode switches between probe and traffic regimes (driven by whether a
// flow is active on the link).
func (e *Estimator) SetMode(m Mode) { e.mode = m }

// Observe feeds a capacity reading (Mbps) taken at virtual time now.
// Sample arrival density determines the effective reaction time via the
// per-sample EWMA gain a = 1 − exp(−dt/window).
func (e *Estimator) Observe(sample, now float64) {
	if sample < 0 {
		sample = 0
	}
	if !e.haveSample {
		e.estimate = sample
		e.haveSample = true
		e.lastSample = now
		return
	}
	dt := now - e.lastSample
	if dt <= 0 {
		dt = 1e-6
	}
	window := e.cfg.trafficWindow()
	if e.mode == ModeProbe {
		window = e.cfg.probeWindow()
	}
	a := 1 - math.Exp(-dt/window)
	e.estimate += a * (sample - e.estimate)
	e.lastSample = now
}

// Estimate returns the current capacity estimate in Mbps (0 before any
// sample).
func (e *Estimator) Estimate() float64 {
	if !e.haveSample {
		return 0
	}
	return e.estimate
}

// Failed reports whether the link should be considered down at time now:
// samples stopped arriving for longer than the failure timeout.
func (e *Estimator) Failed(now float64) bool {
	return e.haveSample && now-e.lastSample > e.cfg.failureTimeout()
}

// Reset clears the estimator (e.g. after a detected failure recovers).
func (e *Estimator) Reset() {
	e.estimate = 0
	e.haveSample = false
	e.lastSample = 0
}

// Sample draws a noisy capacity reading from the true capacity for the
// current mode, using the supplied RNG. It stands in for the MCS/BLE
// decoding of real frames.
func (e *Estimator) Sample(trueCapacity float64, rng *rand.Rand) float64 {
	noise := e.cfg.trafficNoise()
	if e.mode == ModeProbe {
		noise = e.cfg.probeNoise()
	}
	return trueCapacity * math.Exp(rng.NormFloat64()*noise)
}

// ProbeInterval exposes the configured probing period for schedulers.
func (e *Estimator) ProbeInterval() float64 { return e.cfg.probeInterval() }
