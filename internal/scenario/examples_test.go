package scenario

import (
	"path/filepath"
	"testing"

	"repro/internal/node"
)

// TestExampleScenariosLoadAndBind is the schema-drift guard: every JSON
// shipped under examples/scenarios must parse through the strict
// schema, validate, build its topology, and bind onto a fresh emulation
// with every reference resolved. A field rename or a new event kind
// that forgets the JSON plumbing breaks loudly here, not in a user's
// terminal.
func TestExampleScenariosLoadAndBind(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found %d example scenarios, want at least flaps/churn/clusters/grayfail", len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Topology == nil {
				t.Fatal("example scenario ships without a topology")
			}
			net, err := sc.Topology.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			em := node.NewEmulation(net, node.Config{Estimation: true}, 1)
			rt, err := Bind(em, sc, 1, Options{Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rt.Unresolved) != 0 {
				t.Fatalf("unresolved references: %v", rt.Unresolved)
			}
		})
	}
}
