package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/mac"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/routing"
)

// RouteFn selects the routes of a starting flow — the hook scheme sweeps
// use (core.RoutesFor curried over a scheme). The default is the §3.2
// multipath procedure.
type RouteFn func(net *graph.Network, src, dst graph.NodeID) []graph.Path

// Options tunes the binding of a scenario to an emulation.
type Options struct {
	// Routes selects routes for starting flows (default: the §3.2
	// multipath combination with the default routing configuration).
	Routes RouteFn
	// MaxRoutes caps every flow's route count (0: no cap). A flow's own
	// FlowSpec.MaxRoutes still applies on top.
	MaxRoutes int
	// ManageRoutes attaches a route manager (§3.2 maintenance) with fast
	// failover to every flow the scenario starts.
	ManageRoutes bool
	// RoutingConfig is the route manager's configuration (zero value:
	// routing.DefaultConfig).
	RoutingConfig routing.Config
	// FastFailover is the manager's dead-route check period in seconds
	// (0: 0.25).
	FastFailover float64
	// Strict makes Bind fail on event references that don't resolve
	// against the network. The default is lenient — unresolvable events
	// are dropped and counted in Runtime.Unresolved — because scheme
	// sweeps legitimately run scenarios on views that lack some links
	// (a PLC flap has nothing to kill on a WiFi-only view).
	Strict bool
	// OnEvent, when set, observes every applied event (for logs). On a
	// sharded emulation it is called from the owning domain's worker
	// goroutine, so a sharded run's observer must be safe for concurrent
	// calls.
	OnEvent func(ev Event)
	// Invariants attaches a runtime invariant checker to every domain
	// engine: flow conservation at relays, dead links delivering
	// nothing, controller rates within estimated capacity, monotone
	// virtual time, per-reason drop accounting. Violations accumulate
	// in Runtime.Violations once Finish runs.
	Invariants bool
	// InvariantInterval is the checker's tick period in seconds (0:
	// the checker's default).
	InvariantInterval float64
}

func (o Options) routes() RouteFn {
	if o.Routes != nil {
		return o.Routes
	}
	return func(net *graph.Network, src, dst graph.NodeID) []graph.Path {
		return routing.Multipath(net, src, dst, routing.DefaultConfig()).Paths
	}
}

func (o Options) routingConfig() routing.Config {
	if o.RoutingConfig == (routing.Config{}) {
		return routing.DefaultConfig()
	}
	return o.RoutingConfig
}

// FlowRecord is the runtime state of one scenario flow.
type FlowRecord struct {
	Spec      FlowSpec
	Flow      *node.Flow
	Mgr       *node.RouteManager
	Src, Dst  graph.NodeID
	StartedAt float64
	StoppedAt float64 // 0 while running
}

// Failure is one recorded failure episode affecting one flow: a
// link-fail (or node-leave, or set-capacity-to-zero) event whose links
// were on the flow's routes at the time. RecoveredAt is the end of the
// measurement window — when the link came back, or the scenario
// duration if it never did.
type Failure struct {
	Flow        string
	Links       []graph.LinkID
	At          float64
	RecoveredAt float64
}

// Transition is one applied ground-truth mutation (for traces and logs).
type Transition struct {
	At       float64
	Kind     EventKind
	Link     graph.LinkID // -1 for node/flow events
	Capacity float64
	Loss     float64 // set-loss events only: the new channel error rate
}

// Runtime is a scenario bound to a running emulation.
//
// The runtime mirrors the emulation's domain decomposition: all state an
// event handler mutates — flow records, failure windows, transitions,
// departed-node links — lives in per-domain substates, because on a
// sharded emulation the handlers of different domains run on different
// worker goroutines. The classic single-engine emulation is simply the
// one-domain case running the identical code path. The exported
// observation fields (Transitions, Failures, SkippedFlows) are merged
// deterministically from the domains by Finish.
type Runtime struct {
	Scenario *Scenario
	Em       *node.Emulation

	opts Options
	doms []*rtDomain
	// flowDom maps every flow name known at bind time to its owning
	// domain (the source node's domain). Read-only during the run.
	flowDom map[string]int

	// base and saved are indexed by LinkID and shared across domains:
	// every handler only touches its own domain's links, so the element
	// writes are disjoint.
	base  []float64 // capacities at bind time
	saved []float64 // capacity before the last fail

	// Unresolved lists events dropped at bind time because a reference
	// didn't resolve (lenient mode). The remaining observation fields are
	// rebuilt by Finish (which Run calls): Transitions and Failures merge
	// the per-domain records in time order (ties in domain order),
	// SkippedFlows lists flows that found no routes.
	Unresolved   []string
	SkippedFlows []string
	Transitions  []Transition
	Failures     []*Failure

	// checker is the invariant checker (nil unless Options.Invariants).
	checker *invariant.Checker
}

// rtDomain is the per-domain slice of the runtime: the state the owning
// domain's event handlers mutate, plus the domain's sub-emulation (whose
// engine the domain's timeline rides on). In the one-domain case em is
// the emulation itself.
type rtDomain struct {
	rt *Runtime
	em *node.Emulation

	flows map[string]*FlowRecord
	order []string // flow names in creation order (deterministic iteration)
	left  map[graph.NodeID][]graph.LinkID

	skipped     []string
	transitions []Transition
	failures    []*Failure
}

// boundEvent is an event with its references resolved at bind time.
type boundEvent struct {
	Event
	links []graph.LinkID
	src   graph.NodeID
	dst   graph.NodeID
	node  graph.NodeID
}

// Bind expands the scenario's processes with the given seed, resolves
// every reference against the emulation's network, and schedules the
// whole timeline on the emulation's engines — each event on the engine
// of the domain that owns its link, node or flow source. The emulation
// must be at virtual time 0. Run the result with Runtime.Run (or advance
// the emulation manually and call Finish at the end).
func Bind(em *node.Emulation, sc *Scenario, seed int64, opts Options) (*Runtime, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		Scenario: sc,
		Em:       em,
		opts:     opts,
		flowDom:  map[string]int{},
		base:     make([]float64, em.Net.NumLinks()),
		saved:    make([]float64, em.Net.NumLinks()),
	}
	for l := 0; l < em.Net.NumLinks(); l++ {
		rt.base[l] = em.Net.Link(graph.LinkID(l)).Capacity
		rt.saved[l] = rt.base[l]
	}
	rt.doms = make([]*rtDomain, em.NumDomains())
	for i := range rt.doms {
		rt.doms[i] = &rtDomain{
			rt:    rt,
			em:    em.Domain(i),
			flows: map[string]*FlowRecord{},
			left:  map[graph.NodeID][]graph.LinkID{},
		}
	}

	for i := range sc.Flows {
		spec := sc.Flows[i]
		src, err := rt.bindFlowSpec(&spec)
		if err != nil {
			if opts.Strict {
				return nil, err
			}
			rt.Unresolved = append(rt.Unresolved, err.Error())
			continue
		}
		d := rt.domainOfNode(src)
		rt.flowDom[spec.Name] = d.index()
		d.em.Engine.At(spec.Start, func() { d.startFlow(spec) })
	}

	events := append([]Event(nil), sc.Events...)
	events = append(events, expandProcesses(sc, em.Net, seed)...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	// Timeline events ride the engine's closure-free scheduling: the
	// bound events live in one slice allocated here, and each timer
	// carries a pointer into it instead of a captured closure.
	bound := make([]timelineEvent, 0, len(events))
	for _, ev := range events {
		if ev.At > sc.Duration {
			continue
		}
		be, err := rt.bindEvent(ev)
		if err != nil {
			if opts.Strict {
				return nil, err
			}
			rt.Unresolved = append(rt.Unresolved, err.Error())
			continue
		}
		// A group event may span interference domains. Each domain's
		// handlers run on their own worker goroutine, so split the group
		// into per-domain slices, each applied at the event time on its
		// owning engine — atomic within a domain, simultaneous in
		// virtual time across them.
		if (be.Kind == GroupFail || be.Kind == GroupRecover) && rt.Em.NumDomains() > 1 {
			for di := 0; di < rt.Em.NumDomains(); di++ {
				var part []graph.LinkID
				for _, l := range be.links {
					if rt.Em.LinkDomain(l) == di {
						part = append(part, l)
					}
				}
				if len(part) > 0 {
					sub := be
					sub.links = part
					bound = append(bound, timelineEvent{d: rt.doms[di], be: sub})
				}
			}
			continue
		}
		bound = append(bound, timelineEvent{d: rt.eventDomain(be), be: be})
	}
	for i := range bound {
		bound[i].d.em.Engine.AtFunc(bound[i].be.At, applyTimelineEvent, &bound[i])
	}
	if opts.Invariants {
		rt.checker = invariant.Attach(em, invariant.Config{
			Interval: opts.InvariantInterval,
			Flows:    rt.domainFlows,
		})
	}
	return rt, nil
}

// domainFlows feeds the invariant checker the flows a domain owns, in
// creation order. The checker calls it on the owning domain's worker
// goroutine — the same goroutine that mutates d.flows — so the read
// needs no synchronization.
func (rt *Runtime) domainFlows(dom int) []invariant.FlowInfo {
	d := rt.doms[dom]
	out := make([]invariant.FlowInfo, 0, len(d.order))
	for _, name := range d.order {
		rec := d.flows[name]
		if rec.StoppedAt > 0 {
			continue
		}
		out = append(out, invariant.FlowInfo{
			Name: name, Flow: rec.Flow, Src: rec.Src, Dst: rec.Dst,
		})
	}
	return out
}

func (d *rtDomain) index() int {
	for i, dd := range d.rt.doms {
		if dd == d {
			return i
		}
	}
	return 0
}

func (rt *Runtime) domainOfNode(n graph.NodeID) *rtDomain {
	return rt.doms[rt.Em.NodeDomain(n)]
}

// eventDomain routes a bound event to the domain owning its subject:
// link events by the link, node events by the node, flow starts by the
// source, flow stops by the flow's bind-time domain (unknown names fall
// to domain 0, where the stop is a no-op, exactly as an unknown name was
// before).
func (rt *Runtime) eventDomain(be boundEvent) *rtDomain {
	switch be.Kind {
	case LinkFail, LinkRecover, SetCapacity, ScaleCapacity, SetLoss, GroupFail, GroupRecover:
		return rt.doms[rt.Em.LinkDomain(be.links[0])]
	case NodeLeave, NodeJoin:
		return rt.domainOfNode(be.node)
	case FlowStart:
		return rt.domainOfNode(be.src)
	case FlowStop:
		return rt.doms[rt.flowDom[be.FlowName]]
	}
	return rt.doms[0]
}

// timelineEvent pairs a bound event with its owning domain for the
// closure-free timeline scheduling.
type timelineEvent struct {
	d  *rtDomain
	be boundEvent
}

func applyTimelineEvent(arg any) {
	ev := arg.(*timelineEvent)
	ev.d.apply(ev.be)
}

// Run advances the emulation to the scenario's duration and closes the
// measurement windows.
func (rt *Runtime) Run() {
	rt.Em.Run(rt.Scenario.Duration)
	rt.Finish()
}

// Finish closes open failure windows at the current virtual time and
// merges the per-domain observations into the exported fields. Run calls
// it; callers driving the emulation themselves call it once at the end.
// It is idempotent (the merge rebuilds from the domain records).
func (rt *Runtime) Finish() {
	for _, d := range rt.doms {
		now := d.em.Engine.Now()
		for _, f := range d.failures {
			if f.RecoveredAt == 0 {
				f.RecoveredAt = now
			}
		}
	}
	if rt.checker != nil {
		rt.checker.Final()
	}
	rt.merge()
}

// Violations returns the invariant violations collected during the run
// (nil without Options.Invariants). Valid after Finish.
func (rt *Runtime) Violations() []invariant.Violation {
	if rt.checker == nil {
		return nil
	}
	return rt.checker.Violations()
}

// DropsByReason aggregates the per-reason MAC drop counters across all
// links, keyed by reason name. Every reason appears, zero or not, so
// reports have a stable shape.
func (rt *Runtime) DropsByReason() map[string]int {
	out := make(map[string]int, int(mac.NumDropReasons))
	for r := mac.DropReason(0); r < mac.NumDropReasons; r++ {
		out[r.String()] = 0
	}
	for l := 0; l < rt.Em.Net.NumLinks(); l++ {
		id := graph.LinkID(l)
		st := rt.Em.Domain(rt.Em.LinkDomain(id)).MAC.Stats(id)
		for r := mac.DropReason(0); r < mac.NumDropReasons; r++ {
			out[r.String()] += st.Dropped[r]
		}
	}
	return out
}

// merge rebuilds the exported observation fields from the per-domain
// records: concatenated in domain order, then stably sorted by time.
// Within a domain the records are already time-ordered (virtual time is
// monotone), so for a single domain the merge is the identity and the
// fields read exactly as the classic engine always produced them; across
// domains the (time, domain) order is a pure function of the scenario
// and seed — never of shard or worker counts.
func (rt *Runtime) merge() {
	rt.Transitions = rt.Transitions[:0]
	rt.Failures = rt.Failures[:0]
	rt.SkippedFlows = rt.SkippedFlows[:0]
	for _, d := range rt.doms {
		rt.Transitions = append(rt.Transitions, d.transitions...)
		rt.Failures = append(rt.Failures, d.failures...)
		rt.SkippedFlows = append(rt.SkippedFlows, d.skipped...)
	}
	sort.SliceStable(rt.Transitions, func(i, j int) bool { return rt.Transitions[i].At < rt.Transitions[j].At })
	sort.SliceStable(rt.Failures, func(i, j int) bool { return rt.Failures[i].At < rt.Failures[j].At })
}

// Flow returns the runtime record of a named flow (nil if it never
// started).
func (rt *Runtime) Flow(name string) *FlowRecord {
	for _, d := range rt.doms {
		if rec := d.flows[name]; rec != nil {
			return rec
		}
	}
	return nil
}

// FlowNames lists the started flows in creation order (across domains:
// by start time, ties in domain order).
func (rt *Runtime) FlowNames() []string {
	if len(rt.doms) == 1 {
		return append([]string(nil), rt.doms[0].order...)
	}
	var names []string
	for _, d := range rt.doms {
		names = append(names, d.order...)
	}
	starts := map[string]float64{}
	for _, d := range rt.doms {
		for name, rec := range d.flows {
			starts[name] = rec.StartedAt
		}
	}
	sort.SliceStable(names, func(i, j int) bool { return starts[names[i]] < starts[names[j]] })
	return names
}

// bindEvent resolves an event's references.
func (rt *Runtime) bindEvent(ev Event) (boundEvent, error) {
	be := boundEvent{Event: ev, node: -1}
	var err error
	switch ev.Kind {
	case LinkFail, LinkRecover, SetCapacity, ScaleCapacity, SetLoss:
		be.links, err = resolveLink(rt.Em.Net, *ev.Link)
	case GroupFail, GroupRecover:
		be.links, err = rt.resolveGroup(ev.Group)
	case NodeLeave, NodeJoin:
		be.node, err = resolveNode(rt.Em.Net, ev.Node)
	case FlowStart:
		spec := *ev.Flow
		be.src, err = rt.bindFlowSpec(&spec)
		be.Flow = &spec
		if err == nil {
			rt.flowDom[spec.Name] = rt.Em.NodeDomain(be.src)
		}
	case FlowStop:
		// Resolution happens at apply time (the flow may not exist yet).
	}
	return be, err
}

// bindFlowSpec resolves a flow's endpoints (mutating the spec is safe:
// every caller works on its own copy) and returns the source node, which
// decides the owning domain.
func (rt *Runtime) bindFlowSpec(spec *FlowSpec) (graph.NodeID, error) {
	src, err := resolveNode(rt.Em.Net, spec.Src)
	if err != nil {
		return 0, fmt.Errorf("scenario: flow %q: %w", spec.Name, err)
	}
	if _, err := resolveNode(rt.Em.Net, spec.Dst); err != nil {
		return 0, fmt.Errorf("scenario: flow %q: %w", spec.Name, err)
	}
	return src, nil
}

// apply executes one event at its scheduled virtual time, on the owning
// domain's engine.
func (d *rtDomain) apply(be boundEvent) {
	if d.rt.opts.OnEvent != nil {
		d.rt.opts.OnEvent(be.Event)
	}
	if rec := d.em.Engine.Recorder(); rec != nil {
		subject := int32(-1)
		if len(be.links) > 0 {
			subject = int32(be.links[0])
		} else if be.Kind == NodeLeave || be.Kind == NodeJoin {
			subject = int32(be.node)
		}
		rec.Record(d.em.Engine.Now(), obs.RecScenarioEvent, EventKindOrdinal(be.Kind), subject, 0)
	}
	switch be.Kind {
	case LinkFail:
		d.fail(be.links)
	case LinkRecover:
		d.recoverLinks(be.links)
	case GroupFail:
		d.fail(be.links)
	case GroupRecover:
		d.recoverLinks(be.links)
	case SetLoss:
		d.setLoss(be.links, be.Loss)
	case SetCapacity:
		d.setCapacities(be.Kind, be.links, be.Capacity)
	case ScaleCapacity:
		for _, l := range be.links {
			// Drift rides on a live link: a link that failed (flap,
			// node-leave) stays dead until its own recovery event —
			// a drift step must not resurrect it, nor close its
			// failure window as a spurious recovery.
			if d.em.Net.Link(l).Capacity <= 0 {
				continue
			}
			d.setCapacity(be.Kind, l, d.rt.base[l]*be.Factor)
		}
	case NodeLeave:
		links := d.nodeLinks(be.node)
		d.left[be.node] = links
		d.fail(links)
	case NodeJoin:
		d.recoverLinks(d.left[be.node])
		delete(d.left, be.node)
	case FlowStart:
		d.startFlow(*be.Flow)
	case FlowStop:
		d.stopFlow(be.FlowName)
	}
}

// setLinkCapacity mutates a domain-owned link's ground truth through the
// top-level emulation, which dispatches into the owning domain's network
// clone and mirrors the value into the shared top-level network (an
// element-disjoint write: no other domain touches this link).
func (d *rtDomain) setLinkCapacity(l graph.LinkID, c float64) {
	d.rt.Em.SetLinkCapacity(l, c)
}

// fail kills links (saving their capacities) and opens failure windows
// for the flows whose current routes traverse them.
func (d *rtDomain) fail(links []graph.LinkID) {
	now := d.em.Engine.Now()
	var killed []graph.LinkID
	for _, l := range links {
		if c := d.em.Net.Link(l).Capacity; c > 0 {
			d.rt.saved[l] = c
			d.setLinkCapacity(l, 0)
			d.transitions = append(d.transitions, Transition{At: now, Kind: LinkFail, Link: l})
			killed = append(killed, l)
		}
	}
	d.openFailures(killed, now)
}

// recoverLinks restores dead links to their pre-failure capacity and
// closes the matching failure windows.
func (d *rtDomain) recoverLinks(links []graph.LinkID) {
	now := d.em.Engine.Now()
	for _, l := range links {
		if d.em.Net.Link(l).Capacity <= 0 {
			c := d.rt.saved[l]
			if c <= 0 {
				c = d.rt.base[l]
			}
			d.setLinkCapacity(l, c)
			d.transitions = append(d.transitions, Transition{At: now, Kind: LinkRecover, Link: l, Capacity: c})
		}
	}
	d.closeFailures(links, now)
}

func (d *rtDomain) setCapacities(kind EventKind, links []graph.LinkID, c float64) {
	for _, l := range links {
		d.setCapacity(kind, l, c)
	}
}

// setCapacity applies an arbitrary capacity change, treating a
// transition through zero as a failure/recovery for the measurement
// windows.
func (d *rtDomain) setCapacity(kind EventKind, l graph.LinkID, c float64) {
	now := d.em.Engine.Now()
	was := d.em.Net.Link(l).Capacity
	if was == c {
		return
	}
	if c <= 0 && was > 0 {
		d.rt.saved[l] = was
	}
	d.setLinkCapacity(l, c)
	d.transitions = append(d.transitions, Transition{At: now, Kind: kind, Link: l, Capacity: c})
	if c <= 0 && was > 0 {
		d.openFailures([]graph.LinkID{l}, now)
	} else if c > 0 && was <= 0 {
		d.closeFailures([]graph.LinkID{l}, now)
	}
}

// setLoss applies a gray-failure phase: the links stay up (capacity
// unchanged, so no failure windows open) but every packet is lost with
// the given probability. Estimation sees the loss through the effective
// capacity it samples, so detection happens through the same noisy
// channel the paper's schemes rely on — no oracle side-channel.
func (d *rtDomain) setLoss(links []graph.LinkID, p float64) {
	now := d.em.Engine.Now()
	for _, l := range links {
		if d.rt.Em.LinkLoss(l) == p {
			continue
		}
		d.rt.Em.SetLinkLoss(l, p)
		d.transitions = append(d.transitions, Transition{At: now, Kind: SetLoss, Link: l, Loss: p})
	}
}

// resolveGroup maps a correlated failure group's name to the concrete
// links of its members. In lenient mode members that don't resolve on
// this network are skipped (mirroring single-link events on partial
// views); a group with no resolvable member at all is an error either
// way.
func (rt *Runtime) resolveGroup(name string) ([]graph.LinkID, error) {
	for _, g := range rt.Scenario.Groups {
		if g.Name != name {
			continue
		}
		var links []graph.LinkID
		var firstErr error
		for _, ref := range g.Links {
			ls, err := resolveLink(rt.Em.Net, ref)
			if err != nil {
				if rt.opts.Strict {
					return nil, fmt.Errorf("scenario: group %q: %w", name, err)
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			links = append(links, ls...)
		}
		if len(links) == 0 {
			if firstErr != nil {
				return nil, fmt.Errorf("scenario: group %q: %w", name, firstErr)
			}
			return nil, fmt.Errorf("scenario: group %q resolved no links", name)
		}
		return links, nil
	}
	return nil, fmt.Errorf("scenario: no group %q", name)
}

// nodeLinks returns the node's live links (both directions).
func (d *rtDomain) nodeLinks(n graph.NodeID) []graph.LinkID {
	var out []graph.LinkID
	for _, l := range d.em.Net.Out(n) {
		if d.em.Net.Link(l).Capacity > 0 {
			out = append(out, l)
		}
	}
	for _, l := range d.em.Net.In(n) {
		if d.em.Net.Link(l).Capacity > 0 {
			out = append(out, l)
		}
	}
	return out
}

// openFailures records a failure window for every running flow of this
// domain whose current routes use one of the killed links (a killed link
// can only be routed by its own domain's flows). A flow with an open
// window is not re-registered: overlapping failures measure as one
// episode.
func (d *rtDomain) openFailures(killed []graph.LinkID, now float64) {
	if len(killed) == 0 {
		return
	}
	open := map[string]bool{}
	for _, f := range d.failures {
		if f.RecoveredAt == 0 {
			open[f.Flow] = true
		}
	}
	for _, name := range d.order {
		rec := d.flows[name]
		if rec.StoppedAt > 0 || open[name] {
			continue
		}
		var hit []graph.LinkID
		for _, p := range rec.Flow.Routes() {
			for _, l := range p {
				for _, k := range killed {
					if l == k {
						hit = append(hit, k)
					}
				}
			}
		}
		if len(hit) > 0 {
			d.failures = append(d.failures, &Failure{Flow: name, Links: hit, At: now})
		}
	}
}

// closeFailures ends the windows of failures involving a recovered link.
func (d *rtDomain) closeFailures(links []graph.LinkID, now float64) {
	for _, f := range d.failures {
		if f.RecoveredAt != 0 {
			continue
		}
		for _, fl := range f.Links {
			for _, l := range links {
				if fl == l {
					f.RecoveredAt = now
					break
				}
			}
		}
	}
}

// startFlow computes routes and starts a flow at the current virtual
// time. Routes are computed on the domain's network as it now is (failed
// links have zero capacity and are avoided); a flow with no routes is
// recorded in SkippedFlows, as a blocked arrival would be.
func (d *rtDomain) startFlow(spec FlowSpec) {
	now := d.em.Engine.Now()
	if d.flows[spec.Name] != nil {
		// Validate catches duplicates among scripted flows; this guards
		// the remaining hole (a scripted name colliding with a generated
		// arrival name) so measurements never double-count a record.
		d.skipped = append(d.skipped, spec.Name)
		return
	}
	src, err1 := resolveNode(d.em.Net, spec.Src)
	dst, err2 := resolveNode(d.em.Net, spec.Dst)
	if err1 != nil || err2 != nil {
		d.skipped = append(d.skipped, spec.Name)
		return
	}
	routes := d.rt.opts.routes()(d.em.Net, src, dst)
	if max := d.rt.opts.MaxRoutes; max > 0 && len(routes) > max {
		routes = routes[:max]
	}
	if max := spec.MaxRoutes; max > 0 && len(routes) > max {
		routes = routes[:max]
	}
	if len(routes) == 0 {
		d.skipped = append(d.skipped, spec.Name)
		return
	}
	kind := node.TrafficSaturated
	if spec.Kind == "file" {
		kind = node.TrafficFile
	}
	f, err := d.em.AddFlow(node.FlowSpec{
		Src: src, Dst: dst, Routes: routes, Kind: kind, FileBytes: spec.FileBytes,
	}, now)
	if err != nil {
		d.skipped = append(d.skipped, spec.Name)
		return
	}
	rec := &FlowRecord{Spec: spec, Flow: f, Src: src, Dst: dst, StartedAt: now}
	if d.rt.opts.ManageRoutes {
		rec.Mgr = d.em.ManageRoutes(f, d.rt.opts.routingConfig())
		// Reroutes re-run the same selection the flow started with, so
		// scheme semantics survive maintenance (a single-path scheme's
		// manager recomputes a single path).
		rec.Mgr.Select = node.SelectFn(d.rt.opts.routes())
		rec.Mgr.EnableFastFailover(d.rt.opts.FastFailover)
	}
	d.flows[spec.Name] = rec
	d.order = append(d.order, spec.Name)
	if spec.Stop > now {
		name := spec.Name
		d.em.Engine.At(spec.Stop, func() { d.stopFlow(name) })
	}
}

// stopFlow halts a running flow (and its route manager).
func (d *rtDomain) stopFlow(name string) {
	rec := d.flows[name]
	if rec == nil || rec.StoppedAt > 0 {
		return
	}
	rec.StoppedAt = d.em.Engine.Now()
	rec.Flow.Stop()
	if rec.Mgr != nil {
		rec.Mgr.Stop()
	}
}

// Reroutes sums the route swaps across all managed flows.
func (rt *Runtime) Reroutes() int {
	n := 0
	for _, d := range rt.doms {
		for _, name := range d.order {
			if rec := d.flows[name]; rec.Mgr != nil {
				n += rec.Mgr.Reroutes
			}
		}
	}
	return n
}

// sink returns a flow's destination sink.
func (rt *Runtime) sink(rec *FlowRecord) *node.Sink {
	return rt.Em.Agent(rec.Dst).SinkFor(rec.Src, rec.Flow.ID)
}

// FlowGoodput returns the delivered goodput (Mbps) of a named flow over
// [from, to].
func (rt *Runtime) FlowGoodput(name string, from, to float64) float64 {
	rec := rt.Flow(name)
	if rec == nil {
		return 0
	}
	return rt.sink(rec).MeanRate(from, to)
}

// AggregateGoodput returns the total delivered goodput of all scenario
// flows, in Mbps averaged over the scenario duration.
func (rt *Runtime) AggregateGoodput() float64 {
	var bits float64
	for _, d := range rt.doms {
		for _, name := range d.order {
			bits += float64(rt.sink(d.flows[name]).TotalBytes) * 8
		}
	}
	if rt.Scenario.Duration <= 0 {
		return 0
	}
	return bits / rt.Scenario.Duration / 1e6
}

// FailoverLatencies measures, for every recorded failure episode, the
// time from the failure until the affected flow's delivered goodput
// recovered: the first full `bin`-second window inside the episode whose
// goodput reaches frac of the episode's own steady level (measured over
// the episode's second half). Episodes whose steady level never exceeds
// 5 % of the pre-failure goodput did not fail over at all — a
// single-path scheme that lost its only route — and are counted in
// `censored` instead of producing a latency, as are episodes that only
// recover when the link itself returns. Flows that were not delivering
// before the failure are skipped entirely.
//
// This is the §6.1 measurement: EMPoWER's detection (estimation timeout)
// plus rerouting shows up as a sub-second latency; a scheme without an
// alternative route shows up censored.
func (rt *Runtime) FailoverLatencies(bin, frac float64) (latencies []float64, censored int) {
	if bin <= 0 {
		bin = 0.2
	}
	if frac <= 0 {
		frac = 0.8
	}
	for _, f := range rt.Failures {
		rec := rt.Flow(f.Flow)
		if rec == nil || f.RecoveredAt <= f.At {
			continue
		}
		sink := rt.sink(rec)
		preFrom := f.At - 5
		if preFrom < rec.StartedAt {
			preFrom = rec.StartedAt
		}
		pre := sink.MeanRate(preFrom, f.At)
		if pre <= 0.5 {
			continue // the flow wasn't delivering; nothing to fail over
		}
		mid := f.At + (f.RecoveredAt-f.At)/2
		steady := sink.MeanRate(mid, f.RecoveredAt)
		if steady < 0.05*pre {
			censored++ // degraded for the whole episode (no alternative)
			continue
		}
		target := frac * steady
		ts, rates := sink.RateSeries(bin)
		lat := math.Inf(1)
		for i, t := range ts {
			if t-bin/2 < f.At {
				continue // bin overlaps the pre-failure regime
			}
			if t+bin/2 > f.RecoveredAt {
				break
			}
			if rates[i] >= target {
				lat = t + bin/2 - f.At
				break
			}
		}
		if math.IsInf(lat, 1) {
			censored++
			continue
		}
		latencies = append(latencies, lat)
	}
	return latencies, censored
}

// DegradedGoodput returns, per failure episode, the affected flow's mean
// goodput inside the episode window — the quantity that stays near zero
// for schemes that cannot fail over (§6.1's contrast case).
func (rt *Runtime) DegradedGoodput() []float64 {
	var out []float64
	for _, f := range rt.Failures {
		rec := rt.Flow(f.Flow)
		if rec == nil || f.RecoveredAt <= f.At {
			continue
		}
		out = append(out, rt.sink(rec).MeanRate(f.At, f.RecoveredAt))
	}
	return out
}

// resolveNode maps a node reference — a graph node name, or a bare
// integer taken as a 0-based node index — to its NodeID.
func resolveNode(net *graph.Network, ref string) (graph.NodeID, error) {
	for i := range net.Nodes {
		if net.Nodes[i].Name == ref {
			return graph.NodeID(i), nil
		}
	}
	if k, err := strconv.Atoi(ref); err == nil && k >= 0 && k < net.NumNodes() {
		return graph.NodeID(k), nil
	}
	return 0, fmt.Errorf("scenario: no node %q in the network", ref)
}

// resolveLink maps a LinkRef to concrete link IDs (both directions
// unless one-way), ignoring current capacities so dead links resolve
// too.
func resolveLink(net *graph.Network, ref LinkRef) ([]graph.LinkID, error) {
	from, err := resolveNode(net, ref.From)
	if err != nil {
		return nil, err
	}
	to, err := resolveNode(net, ref.To)
	if err != nil {
		return nil, err
	}
	tech, err := ParseTech(ref.Tech)
	if err != nil {
		return nil, err
	}
	find := func(a, b graph.NodeID) (graph.LinkID, bool) {
		for _, l := range net.Out(a) {
			link := net.Link(l)
			if link.To == b && link.Tech == tech {
				return l, true
			}
		}
		return 0, false
	}
	var out []graph.LinkID
	fwd, ok := find(from, to)
	if ok {
		out = append(out, fwd)
	}
	if !ref.OneWay {
		if rev, ok := find(to, from); ok {
			out = append(out, rev)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: no %s link %s->%s in the network", ref.Tech, ref.From, ref.To)
	}
	return out, nil
}
