package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/routing"
)

// RouteFn selects the routes of a starting flow — the hook scheme sweeps
// use (core.RoutesFor curried over a scheme). The default is the §3.2
// multipath procedure.
type RouteFn func(net *graph.Network, src, dst graph.NodeID) []graph.Path

// Options tunes the binding of a scenario to an emulation.
type Options struct {
	// Routes selects routes for starting flows (default: the §3.2
	// multipath combination with the default routing configuration).
	Routes RouteFn
	// MaxRoutes caps every flow's route count (0: no cap). A flow's own
	// FlowSpec.MaxRoutes still applies on top.
	MaxRoutes int
	// ManageRoutes attaches a route manager (§3.2 maintenance) with fast
	// failover to every flow the scenario starts.
	ManageRoutes bool
	// RoutingConfig is the route manager's configuration (zero value:
	// routing.DefaultConfig).
	RoutingConfig routing.Config
	// FastFailover is the manager's dead-route check period in seconds
	// (0: 0.25).
	FastFailover float64
	// Strict makes Bind fail on event references that don't resolve
	// against the network. The default is lenient — unresolvable events
	// are dropped and counted in Runtime.Unresolved — because scheme
	// sweeps legitimately run scenarios on views that lack some links
	// (a PLC flap has nothing to kill on a WiFi-only view).
	Strict bool
	// OnEvent, when set, observes every applied event (for logs).
	OnEvent func(ev Event)
}

func (o Options) routes() RouteFn {
	if o.Routes != nil {
		return o.Routes
	}
	return func(net *graph.Network, src, dst graph.NodeID) []graph.Path {
		return routing.Multipath(net, src, dst, routing.DefaultConfig()).Paths
	}
}

func (o Options) routingConfig() routing.Config {
	if o.RoutingConfig == (routing.Config{}) {
		return routing.DefaultConfig()
	}
	return o.RoutingConfig
}

// FlowRecord is the runtime state of one scenario flow.
type FlowRecord struct {
	Spec      FlowSpec
	Flow      *node.Flow
	Mgr       *node.RouteManager
	Src, Dst  graph.NodeID
	StartedAt float64
	StoppedAt float64 // 0 while running
}

// Failure is one recorded failure episode affecting one flow: a
// link-fail (or node-leave, or set-capacity-to-zero) event whose links
// were on the flow's routes at the time. RecoveredAt is the end of the
// measurement window — when the link came back, or the scenario
// duration if it never did.
type Failure struct {
	Flow        string
	Links       []graph.LinkID
	At          float64
	RecoveredAt float64
}

// Transition is one applied ground-truth mutation (for traces and logs).
type Transition struct {
	At       float64
	Kind     EventKind
	Link     graph.LinkID // -1 for node/flow events
	Capacity float64
}

// Runtime is a scenario bound to a running emulation.
type Runtime struct {
	Scenario *Scenario
	Em       *node.Emulation

	opts  Options
	flows map[string]*FlowRecord
	order []string // flow names in creation order (deterministic iteration)

	base  []float64 // capacities at bind time, by LinkID
	saved []float64 // capacity before the last fail, by LinkID
	left  map[graph.NodeID][]graph.LinkID

	// Unresolved lists events dropped because a reference didn't resolve
	// (lenient mode). SkippedFlows lists flows that found no routes.
	Unresolved   []string
	SkippedFlows []string
	Transitions  []Transition
	Failures     []*Failure
}

// boundEvent is an event with its references resolved at bind time.
type boundEvent struct {
	Event
	links []graph.LinkID
	src   graph.NodeID
	dst   graph.NodeID
	node  graph.NodeID
}

// Bind expands the scenario's processes with the given seed, resolves
// every reference against the emulation's network, and schedules the
// whole timeline on the emulation's engine. The emulation must be at
// virtual time 0. Run the result with Runtime.Run (or advance the
// emulation manually and call Finish at the end).
func Bind(em *node.Emulation, sc *Scenario, seed int64, opts Options) (*Runtime, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		Scenario: sc,
		Em:       em,
		opts:     opts,
		flows:    map[string]*FlowRecord{},
		left:     map[graph.NodeID][]graph.LinkID{},
		base:     make([]float64, em.Net.NumLinks()),
		saved:    make([]float64, em.Net.NumLinks()),
	}
	for l := 0; l < em.Net.NumLinks(); l++ {
		rt.base[l] = em.Net.Link(graph.LinkID(l)).Capacity
		rt.saved[l] = rt.base[l]
	}

	for i := range sc.Flows {
		spec := sc.Flows[i]
		if _, err := rt.bindFlowSpec(&spec); err != nil {
			if opts.Strict {
				return nil, err
			}
			rt.Unresolved = append(rt.Unresolved, err.Error())
			continue
		}
		em.Engine.At(spec.Start, func() { rt.startFlow(spec) })
	}

	events := append([]Event(nil), sc.Events...)
	events = append(events, expandProcesses(sc, em.Net, seed)...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	// Timeline events ride the engine's closure-free scheduling: the
	// bound events live in one slice allocated here, and each timer
	// carries a pointer into it instead of a captured closure.
	bound := make([]timelineEvent, 0, len(events))
	for _, ev := range events {
		if ev.At > sc.Duration {
			continue
		}
		be, err := rt.bindEvent(ev)
		if err != nil {
			if opts.Strict {
				return nil, err
			}
			rt.Unresolved = append(rt.Unresolved, err.Error())
			continue
		}
		bound = append(bound, timelineEvent{rt: rt, be: be})
	}
	for i := range bound {
		em.Engine.AtFunc(bound[i].be.At, applyTimelineEvent, &bound[i])
	}
	return rt, nil
}

// timelineEvent pairs a bound event with its runtime for the
// closure-free timeline scheduling.
type timelineEvent struct {
	rt *Runtime
	be boundEvent
}

func applyTimelineEvent(arg any) {
	ev := arg.(*timelineEvent)
	ev.rt.apply(ev.be)
}

// Run advances the emulation to the scenario's duration and closes the
// measurement windows.
func (rt *Runtime) Run() {
	rt.Em.Run(rt.Scenario.Duration)
	rt.Finish()
}

// Finish closes open failure windows at the current virtual time. Run
// calls it; callers driving the emulation themselves call it once at the
// end.
func (rt *Runtime) Finish() {
	now := rt.Em.Engine.Now()
	for _, f := range rt.Failures {
		if f.RecoveredAt == 0 {
			f.RecoveredAt = now
		}
	}
}

// Flow returns the runtime record of a named flow (nil if it never
// started).
func (rt *Runtime) Flow(name string) *FlowRecord { return rt.flows[name] }

// FlowNames lists the started flows in creation order.
func (rt *Runtime) FlowNames() []string { return append([]string(nil), rt.order...) }

// bindEvent resolves an event's references.
func (rt *Runtime) bindEvent(ev Event) (boundEvent, error) {
	be := boundEvent{Event: ev, node: -1}
	var err error
	switch ev.Kind {
	case LinkFail, LinkRecover, SetCapacity, ScaleCapacity:
		be.links, err = resolveLink(rt.Em.Net, *ev.Link)
	case NodeLeave, NodeJoin:
		be.node, err = resolveNode(rt.Em.Net, ev.Node)
	case FlowStart:
		spec := *ev.Flow
		_, err = rt.bindFlowSpec(&spec)
		be.Flow = &spec
	case FlowStop:
		// Resolution happens at apply time (the flow may not exist yet).
	}
	return be, err
}

// bindFlowSpec resolves a flow's endpoints (mutating the spec is safe:
// every caller works on its own copy).
func (rt *Runtime) bindFlowSpec(spec *FlowSpec) (*FlowSpec, error) {
	if _, err := resolveNode(rt.Em.Net, spec.Src); err != nil {
		return nil, fmt.Errorf("scenario: flow %q: %w", spec.Name, err)
	}
	if _, err := resolveNode(rt.Em.Net, spec.Dst); err != nil {
		return nil, fmt.Errorf("scenario: flow %q: %w", spec.Name, err)
	}
	return spec, nil
}

// apply executes one event at its scheduled virtual time.
func (rt *Runtime) apply(be boundEvent) {
	if rt.opts.OnEvent != nil {
		rt.opts.OnEvent(be.Event)
	}
	switch be.Kind {
	case LinkFail:
		rt.fail(be.links)
	case LinkRecover:
		rt.recoverLinks(be.links)
	case SetCapacity:
		rt.setCapacities(be.Kind, be.links, be.Capacity)
	case ScaleCapacity:
		for _, l := range be.links {
			// Drift rides on a live link: a link that failed (flap,
			// node-leave) stays dead until its own recovery event —
			// a drift step must not resurrect it, nor close its
			// failure window as a spurious recovery.
			if rt.Em.Net.Link(l).Capacity <= 0 {
				continue
			}
			rt.setCapacity(be.Kind, l, rt.base[l]*be.Factor)
		}
	case NodeLeave:
		links := rt.nodeLinks(be.node)
		rt.left[be.node] = links
		rt.fail(links)
	case NodeJoin:
		rt.recoverLinks(rt.left[be.node])
		delete(rt.left, be.node)
	case FlowStart:
		rt.startFlow(*be.Flow)
	case FlowStop:
		rt.stopFlow(be.FlowName)
	}
}

// fail kills links (saving their capacities) and opens failure windows
// for the flows whose current routes traverse them.
func (rt *Runtime) fail(links []graph.LinkID) {
	now := rt.Em.Engine.Now()
	var killed []graph.LinkID
	for _, l := range links {
		if c := rt.Em.Net.Link(l).Capacity; c > 0 {
			rt.saved[l] = c
			rt.Em.SetLinkCapacity(l, 0)
			rt.Transitions = append(rt.Transitions, Transition{At: now, Kind: LinkFail, Link: l})
			killed = append(killed, l)
		}
	}
	rt.openFailures(killed, now)
}

// recoverLinks restores dead links to their pre-failure capacity and
// closes the matching failure windows.
func (rt *Runtime) recoverLinks(links []graph.LinkID) {
	now := rt.Em.Engine.Now()
	for _, l := range links {
		if rt.Em.Net.Link(l).Capacity <= 0 {
			c := rt.saved[l]
			if c <= 0 {
				c = rt.base[l]
			}
			rt.Em.SetLinkCapacity(l, c)
			rt.Transitions = append(rt.Transitions, Transition{At: now, Kind: LinkRecover, Link: l, Capacity: c})
		}
	}
	rt.closeFailures(links, now)
}

func (rt *Runtime) setCapacities(kind EventKind, links []graph.LinkID, c float64) {
	for _, l := range links {
		rt.setCapacity(kind, l, c)
	}
}

// setCapacity applies an arbitrary capacity change, treating a
// transition through zero as a failure/recovery for the measurement
// windows.
func (rt *Runtime) setCapacity(kind EventKind, l graph.LinkID, c float64) {
	now := rt.Em.Engine.Now()
	was := rt.Em.Net.Link(l).Capacity
	if was == c {
		return
	}
	if c <= 0 && was > 0 {
		rt.saved[l] = was
	}
	rt.Em.SetLinkCapacity(l, c)
	rt.Transitions = append(rt.Transitions, Transition{At: now, Kind: kind, Link: l, Capacity: c})
	if c <= 0 && was > 0 {
		rt.openFailures([]graph.LinkID{l}, now)
	} else if c > 0 && was <= 0 {
		rt.closeFailures([]graph.LinkID{l}, now)
	}
}

// nodeLinks returns the node's live links (both directions).
func (rt *Runtime) nodeLinks(n graph.NodeID) []graph.LinkID {
	var out []graph.LinkID
	for _, l := range rt.Em.Net.Out(n) {
		if rt.Em.Net.Link(l).Capacity > 0 {
			out = append(out, l)
		}
	}
	for _, l := range rt.Em.Net.In(n) {
		if rt.Em.Net.Link(l).Capacity > 0 {
			out = append(out, l)
		}
	}
	return out
}

// openFailures records a failure window for every running flow whose
// current routes use one of the killed links. A flow with an open window
// is not re-registered: overlapping failures measure as one episode.
func (rt *Runtime) openFailures(killed []graph.LinkID, now float64) {
	if len(killed) == 0 {
		return
	}
	open := map[string]bool{}
	for _, f := range rt.Failures {
		if f.RecoveredAt == 0 {
			open[f.Flow] = true
		}
	}
	for _, name := range rt.order {
		rec := rt.flows[name]
		if rec.StoppedAt > 0 || open[name] {
			continue
		}
		var hit []graph.LinkID
		for _, p := range rec.Flow.Routes() {
			for _, l := range p {
				for _, k := range killed {
					if l == k {
						hit = append(hit, k)
					}
				}
			}
		}
		if len(hit) > 0 {
			rt.Failures = append(rt.Failures, &Failure{Flow: name, Links: hit, At: now})
		}
	}
}

// closeFailures ends the windows of failures involving a recovered link.
func (rt *Runtime) closeFailures(links []graph.LinkID, now float64) {
	for _, f := range rt.Failures {
		if f.RecoveredAt != 0 {
			continue
		}
		for _, fl := range f.Links {
			for _, l := range links {
				if fl == l {
					f.RecoveredAt = now
					break
				}
			}
		}
	}
}

// startFlow computes routes and starts a flow at the current virtual
// time. Routes are computed on the network as it now is (failed links
// have zero capacity and are avoided); a flow with no routes is recorded
// in SkippedFlows, as a blocked arrival would be.
func (rt *Runtime) startFlow(spec FlowSpec) {
	now := rt.Em.Engine.Now()
	if rt.flows[spec.Name] != nil {
		// Validate catches duplicates among scripted flows; this guards
		// the remaining hole (a scripted name colliding with a generated
		// arrival name) so measurements never double-count a record.
		rt.SkippedFlows = append(rt.SkippedFlows, spec.Name)
		return
	}
	src, err1 := resolveNode(rt.Em.Net, spec.Src)
	dst, err2 := resolveNode(rt.Em.Net, spec.Dst)
	if err1 != nil || err2 != nil {
		rt.SkippedFlows = append(rt.SkippedFlows, spec.Name)
		return
	}
	routes := rt.opts.routes()(rt.Em.Net, src, dst)
	if max := rt.opts.MaxRoutes; max > 0 && len(routes) > max {
		routes = routes[:max]
	}
	if max := spec.MaxRoutes; max > 0 && len(routes) > max {
		routes = routes[:max]
	}
	if len(routes) == 0 {
		rt.SkippedFlows = append(rt.SkippedFlows, spec.Name)
		return
	}
	kind := node.TrafficSaturated
	if spec.Kind == "file" {
		kind = node.TrafficFile
	}
	f, err := rt.Em.AddFlow(node.FlowSpec{
		Src: src, Dst: dst, Routes: routes, Kind: kind, FileBytes: spec.FileBytes,
	}, now)
	if err != nil {
		rt.SkippedFlows = append(rt.SkippedFlows, spec.Name)
		return
	}
	rec := &FlowRecord{Spec: spec, Flow: f, Src: src, Dst: dst, StartedAt: now}
	if rt.opts.ManageRoutes {
		rec.Mgr = rt.Em.ManageRoutes(f, rt.opts.routingConfig())
		// Reroutes re-run the same selection the flow started with, so
		// scheme semantics survive maintenance (a single-path scheme's
		// manager recomputes a single path).
		rec.Mgr.Select = node.SelectFn(rt.opts.routes())
		rec.Mgr.EnableFastFailover(rt.opts.FastFailover)
	}
	rt.flows[spec.Name] = rec
	rt.order = append(rt.order, spec.Name)
	if spec.Stop > now {
		name := spec.Name
		rt.Em.Engine.At(spec.Stop, func() { rt.stopFlow(name) })
	}
}

// stopFlow halts a running flow (and its route manager).
func (rt *Runtime) stopFlow(name string) {
	rec := rt.flows[name]
	if rec == nil || rec.StoppedAt > 0 {
		return
	}
	rec.StoppedAt = rt.Em.Engine.Now()
	rec.Flow.Stop()
	if rec.Mgr != nil {
		rec.Mgr.Stop()
	}
}

// Reroutes sums the route swaps across all managed flows.
func (rt *Runtime) Reroutes() int {
	n := 0
	for _, name := range rt.order {
		if rec := rt.flows[name]; rec.Mgr != nil {
			n += rec.Mgr.Reroutes
		}
	}
	return n
}

// sink returns a flow's destination sink.
func (rt *Runtime) sink(rec *FlowRecord) *node.Sink {
	return rt.Em.Agent(rec.Dst).SinkFor(rec.Src, rec.Flow.ID)
}

// FlowGoodput returns the delivered goodput (Mbps) of a named flow over
// [from, to].
func (rt *Runtime) FlowGoodput(name string, from, to float64) float64 {
	rec := rt.flows[name]
	if rec == nil {
		return 0
	}
	return rt.sink(rec).MeanRate(from, to)
}

// AggregateGoodput returns the total delivered goodput of all scenario
// flows, in Mbps averaged over the scenario duration.
func (rt *Runtime) AggregateGoodput() float64 {
	var bits float64
	for _, name := range rt.order {
		bits += float64(rt.sink(rt.flows[name]).TotalBytes) * 8
	}
	if rt.Scenario.Duration <= 0 {
		return 0
	}
	return bits / rt.Scenario.Duration / 1e6
}

// FailoverLatencies measures, for every recorded failure episode, the
// time from the failure until the affected flow's delivered goodput
// recovered: the first full `bin`-second window inside the episode whose
// goodput reaches frac of the episode's own steady level (measured over
// the episode's second half). Episodes whose steady level never exceeds
// 5 % of the pre-failure goodput did not fail over at all — a
// single-path scheme that lost its only route — and are counted in
// `censored` instead of producing a latency, as are episodes that only
// recover when the link itself returns. Flows that were not delivering
// before the failure are skipped entirely.
//
// This is the §6.1 measurement: EMPoWER's detection (estimation timeout)
// plus rerouting shows up as a sub-second latency; a scheme without an
// alternative route shows up censored.
func (rt *Runtime) FailoverLatencies(bin, frac float64) (latencies []float64, censored int) {
	if bin <= 0 {
		bin = 0.2
	}
	if frac <= 0 {
		frac = 0.8
	}
	for _, f := range rt.Failures {
		rec := rt.flows[f.Flow]
		if rec == nil || f.RecoveredAt <= f.At {
			continue
		}
		sink := rt.sink(rec)
		preFrom := f.At - 5
		if preFrom < rec.StartedAt {
			preFrom = rec.StartedAt
		}
		pre := sink.MeanRate(preFrom, f.At)
		if pre <= 0.5 {
			continue // the flow wasn't delivering; nothing to fail over
		}
		mid := f.At + (f.RecoveredAt-f.At)/2
		steady := sink.MeanRate(mid, f.RecoveredAt)
		if steady < 0.05*pre {
			censored++ // degraded for the whole episode (no alternative)
			continue
		}
		target := frac * steady
		ts, rates := sink.RateSeries(bin)
		lat := math.Inf(1)
		for i, t := range ts {
			if t-bin/2 < f.At {
				continue // bin overlaps the pre-failure regime
			}
			if t+bin/2 > f.RecoveredAt {
				break
			}
			if rates[i] >= target {
				lat = t + bin/2 - f.At
				break
			}
		}
		if math.IsInf(lat, 1) {
			censored++
			continue
		}
		latencies = append(latencies, lat)
	}
	return latencies, censored
}

// DegradedGoodput returns, per failure episode, the affected flow's mean
// goodput inside the episode window — the quantity that stays near zero
// for schemes that cannot fail over (§6.1's contrast case).
func (rt *Runtime) DegradedGoodput() []float64 {
	var out []float64
	for _, f := range rt.Failures {
		rec := rt.flows[f.Flow]
		if rec == nil || f.RecoveredAt <= f.At {
			continue
		}
		out = append(out, rt.sink(rec).MeanRate(f.At, f.RecoveredAt))
	}
	return out
}

// resolveNode maps a node reference — a graph node name, or a bare
// integer taken as a 0-based node index — to its NodeID.
func resolveNode(net *graph.Network, ref string) (graph.NodeID, error) {
	for i := range net.Nodes {
		if net.Nodes[i].Name == ref {
			return graph.NodeID(i), nil
		}
	}
	if k, err := strconv.Atoi(ref); err == nil && k >= 0 && k < net.NumNodes() {
		return graph.NodeID(k), nil
	}
	return 0, fmt.Errorf("scenario: no node %q in the network", ref)
}

// resolveLink maps a LinkRef to concrete link IDs (both directions
// unless one-way), ignoring current capacities so dead links resolve
// too.
func resolveLink(net *graph.Network, ref LinkRef) ([]graph.LinkID, error) {
	from, err := resolveNode(net, ref.From)
	if err != nil {
		return nil, err
	}
	to, err := resolveNode(net, ref.To)
	if err != nil {
		return nil, err
	}
	tech, err := ParseTech(ref.Tech)
	if err != nil {
		return nil, err
	}
	find := func(a, b graph.NodeID) (graph.LinkID, bool) {
		for _, l := range net.Out(a) {
			link := net.Link(l)
			if link.To == b && link.Tech == tech {
				return l, true
			}
		}
		return 0, false
	}
	var out []graph.LinkID
	fwd, ok := find(from, to)
	if ok {
		out = append(out, fwd)
	}
	if !ref.OneWay {
		if rev, ok := find(to, from); ok {
			out = append(out, rev)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: no %s link %s->%s in the network", ref.Tech, ref.From, ref.To)
	}
	return out, nil
}
