package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/node"
)

// clustersFingerprint runs the shipped multi-cluster scenario end to end
// at a shard count and folds every observable output — transitions,
// failure windows, per-flow goodput, failover measurement, reroutes —
// into a string.
func clustersFingerprint(t *testing.T, shards int) string {
	t.Helper()
	sc, err := Load("../../examples/scenarios/clusters.json")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		sc.Duration = 25
	}
	net, err := sc.Topology.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	em := node.NewEmulation(net, node.Config{
		Estimation: true, ExpectedDuration: sc.Duration, Shards: shards,
	}, 9)
	rt, err := Bind(em, sc, 41, Options{ManageRoutes: true, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()

	out := ""
	for _, tr := range rt.Transitions {
		out += fmt.Sprintf("tr at=%.9f kind=%v link=%d cap=%g\n", tr.At, tr.Kind, tr.Link, tr.Capacity)
	}
	for _, f := range rt.Failures {
		out += fmt.Sprintf("fail flow=%s at=%.9f rec=%.9f links=%v\n", f.Flow, f.At, f.RecoveredAt, f.Links)
	}
	for _, name := range rt.FlowNames() {
		out += fmt.Sprintf("flow %s goodput=%.9f\n", name, rt.FlowGoodput(name, 0, sc.Duration))
	}
	lat, cens := rt.FailoverLatencies(0.2, 0.8)
	out += fmt.Sprintf("latencies=%v censored=%d reroutes=%d skipped=%v agg=%.9f\n",
		lat, cens, rt.Reroutes(), rt.SkippedFlows, rt.AggregateGoodput())
	return out
}

// TestScenarioShardedDeterminism is the tentpole contract at the
// scenario layer: the shipped multi-cluster scenario decomposes into
// four interference domains, and the complete run — event timeline,
// failure windows, goodput, failover measurement — is bit-identical at
// shards 1, 2 and 4.
func TestScenarioShardedDeterminism(t *testing.T) {
	// Confirm the example really exercises the sharded engine.
	sc, err := Load("../../examples/scenarios/clusters.json")
	if err != nil {
		t.Fatal(err)
	}
	net, err := sc.Topology.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	em := node.NewEmulation(net, node.Config{Shards: 4}, 9)
	if !em.Sharded() || em.NumDomains() != 4 {
		t.Fatalf("clusters.json: sharded=%v domains=%d, want true/4", em.Sharded(), em.NumDomains())
	}

	ref := clustersFingerprint(t, 1)
	for _, shards := range []int{2, 4} {
		if got := clustersFingerprint(t, shards); got != ref {
			t.Fatalf("shards=%d diverged from shards=1:\n--- shards=1\n%s--- shards=%d\n%s", shards, ref, shards, got)
		}
	}
}

// TestShardedMatchesSingleEngine pins the fallback side of the
// contract, in the spirit of TestPoolMatchesNaiveReference: on the
// shipped flaps scenario — a connected topology, hence one interference
// domain — any Shards value runs the classic engine, and the scenario
// trajectory matches the Shards=0 reference event for event.
func TestShardedMatchesSingleEngine(t *testing.T) {
	run := func(shards int) (*Runtime, *node.Emulation) {
		sc, err := Load("../../examples/scenarios/flaps.json")
		if err != nil {
			t.Fatal(err)
		}
		if testing.Short() {
			sc.Duration = 30
		}
		net, err := sc.Topology.Build(11)
		if err != nil {
			t.Fatal(err)
		}
		em := node.NewEmulation(net, node.Config{
			Estimation: true, ExpectedDuration: sc.Duration, Shards: shards,
		}, 13)
		rt, err := Bind(em, sc, 17, Options{ManageRoutes: true, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		rt.Run()
		return rt, em
	}
	ref, _ := run(0)
	got, em := run(4)
	if em.Sharded() {
		t.Fatal("flaps.json topology is connected; it must fall back to the classic engine")
	}
	if len(got.Transitions) != len(ref.Transitions) {
		t.Fatalf("transition count %d != reference %d", len(got.Transitions), len(ref.Transitions))
	}
	for i := range ref.Transitions {
		if got.Transitions[i] != ref.Transitions[i] {
			t.Fatalf("transition %d: %+v != reference %+v", i, got.Transitions[i], ref.Transitions[i])
		}
	}
	if len(got.Failures) != len(ref.Failures) {
		t.Fatalf("failure count %d != reference %d", len(got.Failures), len(ref.Failures))
	}
	for i := range ref.Failures {
		g, r := got.Failures[i], ref.Failures[i]
		if g.Flow != r.Flow || g.At != r.At || g.RecoveredAt != r.RecoveredAt || !reflect.DeepEqual(g.Links, r.Links) {
			t.Fatalf("failure %d: %+v != reference %+v", i, g, r)
		}
	}
	if g, r := got.AggregateGoodput(), ref.AggregateGoodput(); g != r {
		t.Fatalf("aggregate goodput %v != reference %v", g, r)
	}
}
