package scenario

import (
	"strconv"

	"repro/internal/invariant"
	"repro/internal/obs"
)

// This file is the scenario runtime's face of internal/obs: the dense
// event-kind ordinals of the flight-recorder records, barrier sampling of
// the runtime's observations into registry slots, and the recorder-tail
// helper behind the -invariants failure messages.

// eventKindOrder fixes the ordinal each EventKind carries in a
// RecScenarioEvent record (EventKind itself is a string for the JSON
// schema's sake). Append only — ordinals are part of the trace format.
var eventKindOrder = []EventKind{
	LinkFail, LinkRecover, SetCapacity, ScaleCapacity, NodeLeave, NodeJoin,
	FlowStart, FlowStop, SetLoss, GroupFail, GroupRecover,
}

// EventKindOrdinal returns the dense ordinal of an event kind, or -1 for
// an unknown kind.
func EventKindOrdinal(k EventKind) int32 {
	for i, e := range eventKindOrder {
		if e == k {
			return int32(i)
		}
	}
	return -1
}

// OrdinalEventKind inverts EventKindOrdinal (empty for out-of-range).
func OrdinalEventKind(i int32) EventKind {
	if i < 0 || int(i) >= len(eventKindOrder) {
		return ""
	}
	return eventKindOrder[i]
}

// SampleMetrics reads the runtime's observations — and the underlying
// emulation's intrinsic counters — into registry slots. Call it after
// Finish; it only reads.
func (rt *Runtime) SampleMetrics(r *obs.Registry) {
	rt.Em.SampleMetrics(r)
	r.Counter("empower_scenario_transitions_total",
		"scenario state transitions (fail/recover/drift/flow events applied)").
		Add(float64(len(rt.Transitions)))
	r.Counter("empower_scenario_failures_total",
		"failure windows opened by the scenario").Add(float64(len(rt.Failures)))
	r.Counter("empower_scenario_skipped_flows_total",
		"flows skipped for want of routes").Add(float64(len(rt.SkippedFlows)))
	active := 0
	for _, d := range rt.doms {
		for _, name := range d.order {
			if rec := d.flows[name]; rec != nil && rec.Flow != nil && rec.Flow.Active() {
				active++
			}
		}
	}
	r.Gauge("empower_scenario_active_flows",
		"flows still active at the end of the run (max across replications)").
		Max(float64(active))
	r.Counter("empower_flow_reroutes_total",
		"route swaps by scenario-managed flows").Add(float64(rt.Reroutes()))
	if rt.checker != nil {
		r.Counter("empower_invariant_violations_total",
			"runtime invariant violations").Add(float64(len(rt.Violations())))
	}
	for reason, n := range rt.DropsByReason() {
		r.Counter("empower_scenario_dropped_packets_total",
			"frames dropped during the scenario, by reason",
			obs.Label{Key: "reason", Value: reason}).Add(float64(n))
	}
}

// RecorderTail returns the last n flight-recorder records of the domain
// owning a violation (oldest first), or nil when recording is off
// (node.Config.Recorder == 0).
func (rt *Runtime) RecorderTail(domain, n int) []obs.Record {
	if domain < 0 || domain >= rt.Em.NumDomains() {
		return nil
	}
	rec := rt.Em.DomainRecorder(domain)
	if rec == nil {
		return nil
	}
	return rec.Tail(n)
}

// ViolationReport renders a violation together with the owning domain's
// recorder tail (up to tail records) — the -invariants failure payload.
// Without a recorder it degrades to the bare violation line.
func (rt *Runtime) ViolationReport(v invariant.Violation, tail int) string {
	recs := rt.RecorderTail(v.Domain, tail)
	if len(recs) == 0 {
		return v.String()
	}
	return v.String() + "\n flight recorder (last " +
		strconv.Itoa(len(recs)) + " events of domain " + strconv.Itoa(v.Domain) + "):\n" +
		obs.FormatTail(v.Domain, recs)
}
