package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/graph"
	"repro/internal/stats"
)

// expandProcesses turns every stochastic process into concrete timeline
// events. Each process draws from its own RNG stream seeded by
// stats.SplitSeed(seed, index) — a pure function of (seed, process
// position), never of scheduling — so the realized timeline is
// bit-identical across runs and worker counts, and adding a process at
// the end never perturbs the ones before it.
func expandProcesses(sc *Scenario, net *graph.Network, seed int64) []Event {
	var out []Event
	for i, p := range sc.Processes {
		rng := stats.NewRand(stats.SplitSeed(seed, i))
		switch p.Kind {
		case ProcFlap:
			out = append(out, expandFlap(p, sc.Duration, rng)...)
		case ProcDrift:
			out = append(out, expandDrift(p, sc.Duration, rng)...)
		case ProcPoissonFlows:
			out = append(out, expandPoisson(p, i, sc.Duration, net, rng)...)
		}
	}
	return out
}

// expandFlap alternates fail/recover (or leave/join) with exponential
// holding times.
func expandFlap(p Process, duration float64, rng *rand.Rand) []Event {
	fail, recover := LinkFail, LinkRecover
	if p.Node != "" {
		fail, recover = NodeLeave, NodeJoin
	}
	t := p.FirstAt
	if t <= 0 {
		t = rng.ExpFloat64() * p.UpMean
	}
	var out []Event
	for t < duration {
		out = append(out, Event{At: t, Kind: fail, Link: p.Link, Node: p.Node})
		t += rng.ExpFloat64() * p.DownMean
		if t >= duration {
			break
		}
		out = append(out, Event{At: t, Kind: recover, Link: p.Link, Node: p.Node})
		t += rng.ExpFloat64() * p.UpMean
	}
	return out
}

// expandDrift emits a multiplicative lognormal random walk as
// scale-capacity events. Factors are cumulative relative to the
// bind-time capacity (clamped to [floor, ceil] of it), so the realized
// trajectory never depends on what other events did to the link in
// between.
func expandDrift(p Process, duration float64, rng *rand.Rand) []Event {
	floor, ceil := p.Floor, p.Ceil
	if floor <= 0 {
		floor = 0.1
	}
	if ceil <= 0 {
		ceil = 1.5
	}
	t := p.FirstAt
	if t <= 0 {
		t = p.Interval
	}
	factor := 1.0
	var out []Event
	for ; t < duration; t += p.Interval {
		factor *= math.Exp(rng.NormFloat64() * p.Std)
		if factor < floor {
			factor = floor
		}
		if factor > ceil {
			factor = ceil
		}
		out = append(out, Event{At: t, Kind: ScaleCapacity, Link: p.Link, Factor: factor})
	}
	return out
}

// expandPoisson emits flow-start events with Poisson arrival times; each
// flow carries its departure in Stop (exponential holding time) or a
// file size. Random pairs draw the source uniformly among nodes with
// egress links and the destination among the remaining nodes, mirroring
// topology.Instance.RandomFlow; whether a route exists is decided at the
// event time, on the network as it then is.
func expandPoisson(p Process, index int, duration float64, net *graph.Network, rng *rand.Rand) []Event {
	var sources []graph.NodeID
	if p.Src == "" {
		for i := 0; i < net.NumNodes(); i++ {
			if len(net.Out(graph.NodeID(i))) > 0 {
				sources = append(sources, graph.NodeID(i))
			}
		}
		if len(sources) == 0 {
			return nil
		}
	}
	t := p.FirstAt
	var out []Event
	for n := 0; ; n++ {
		t += rng.ExpFloat64() / p.Rate
		if t >= duration {
			return out
		}
		spec := FlowSpec{
			Name:  fmt.Sprintf("arrival-%d-%d", index, n),
			Src:   p.Src,
			Dst:   p.Dst,
			Start: t,
		}
		if p.Src == "" {
			src := sources[rng.Intn(len(sources))]
			dst := graph.NodeID(rng.Intn(net.NumNodes() - 1))
			if dst >= src {
				dst++
			}
			spec.Src = strconv.Itoa(int(src))
			spec.Dst = strconv.Itoa(int(dst))
		}
		if p.FileBytes > 0 {
			spec.Kind = "file"
			spec.FileBytes = p.FileBytes
		} else {
			spec.Stop = t + rng.ExpFloat64()*p.HoldMean
		}
		f := spec
		out = append(out, Event{At: t, Kind: FlowStart, Flow: &f})
	}
}
