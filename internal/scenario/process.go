package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/graph"
	"repro/internal/stats"
)

// expandProcesses turns every stochastic process into concrete timeline
// events. Each process draws from its own RNG stream seeded by
// stats.SplitSeed(seed, index) — a pure function of (seed, process
// position), never of scheduling — so the realized timeline is
// bit-identical across runs and worker counts, and adding a process at
// the end never perturbs the ones before it.
func expandProcesses(sc *Scenario, net *graph.Network, seed int64) []Event {
	var out []Event
	for i, p := range sc.Processes {
		rng := stats.NewRand(stats.SplitSeed(seed, i))
		switch p.Kind {
		case ProcFlap:
			out = append(out, expandFlap(p, sc.Duration, rng)...)
		case ProcDrift:
			out = append(out, expandDrift(p, sc.Duration, rng)...)
		case ProcPoissonFlows:
			out = append(out, expandPoisson(p, i, sc.Duration, net, rng)...)
		case ProcGrayLoss:
			out = append(out, expandGrayLoss(p, sc.Duration, rng)...)
		case ProcFlashCrowd:
			out = append(out, expandFlashCrowd(p, i, sc.Duration, net, rng)...)
		}
	}
	return out
}

// expandFlap alternates fail/recover (or leave/join for a node target,
// group-fail/group-recover for a group target) with exponential holding
// times.
func expandFlap(p Process, duration float64, rng *rand.Rand) []Event {
	fail, recover := LinkFail, LinkRecover
	switch {
	case p.Node != "":
		fail, recover = NodeLeave, NodeJoin
	case p.Group != "":
		fail, recover = GroupFail, GroupRecover
	}
	t := p.FirstAt
	if t <= 0 {
		t = rng.ExpFloat64() * p.UpMean
	}
	var out []Event
	for t < duration {
		out = append(out, Event{At: t, Kind: fail, Link: p.Link, Node: p.Node, Group: p.Group})
		t += rng.ExpFloat64() * p.DownMean
		if t >= duration {
			break
		}
		out = append(out, Event{At: t, Kind: recover, Link: p.Link, Node: p.Node, Group: p.Group})
		t += rng.ExpFloat64() * p.UpMean
	}
	return out
}

// expandGrayLoss alternates the link between a lossy phase (set-loss at
// p.Loss) and a clean phase (set-loss 0), mirroring expandFlap's timing
// structure: first lossy phase at FirstAt (or an exponential draw into
// the clean phase), exponential holding times.
func expandGrayLoss(p Process, duration float64, rng *rand.Rand) []Event {
	t := p.FirstAt
	if t <= 0 {
		t = rng.ExpFloat64() * p.UpMean
	}
	var out []Event
	for t < duration {
		out = append(out, Event{At: t, Kind: SetLoss, Link: p.Link, Loss: p.Loss})
		t += rng.ExpFloat64() * p.DownMean
		if t >= duration {
			break
		}
		out = append(out, Event{At: t, Kind: SetLoss, Link: p.Link})
		t += rng.ExpFloat64() * p.UpMean
	}
	return out
}

// expandDrift emits a multiplicative lognormal random walk as
// scale-capacity events. Factors are cumulative relative to the
// bind-time capacity (clamped to [floor, ceil] of it), so the realized
// trajectory never depends on what other events did to the link in
// between.
func expandDrift(p Process, duration float64, rng *rand.Rand) []Event {
	floor, ceil := p.Floor, p.Ceil
	if floor <= 0 {
		floor = 0.1
	}
	if ceil <= 0 {
		ceil = 1.5
	}
	t := p.FirstAt
	if t <= 0 {
		t = p.Interval
	}
	factor := 1.0
	var out []Event
	for ; t < duration; t += p.Interval {
		factor *= math.Exp(rng.NormFloat64() * p.Std)
		if factor < floor {
			factor = floor
		}
		if factor > ceil {
			factor = ceil
		}
		out = append(out, Event{At: t, Kind: ScaleCapacity, Link: p.Link, Factor: factor})
	}
	return out
}

// expandPoisson emits flow-start events with Poisson arrival times; each
// flow carries its departure in Stop (exponential holding time) or a
// file size. Random pairs draw the source uniformly among nodes with
// egress links and the destination among the remaining nodes, mirroring
// topology.Instance.RandomFlow; whether a route exists is decided at the
// event time, on the network as it then is.
func expandPoisson(p Process, index int, duration float64, net *graph.Network, rng *rand.Rand) []Event {
	sources := egressSources(net)
	if p.Src == "" && len(sources) == 0 {
		return nil
	}
	t := p.FirstAt
	var out []Event
	for n := 0; ; n++ {
		t += rng.ExpFloat64() / p.Rate
		if t >= duration {
			return out
		}
		spec := FlowSpec{
			Name:  fmt.Sprintf("arrival-%d-%d", index, n),
			Src:   p.Src,
			Dst:   p.Dst,
			Start: t,
		}
		if p.Src == "" {
			drawPair(&spec, sources, net, rng)
		}
		if p.FileBytes > 0 {
			spec.Kind = "file"
			spec.FileBytes = p.FileBytes
		} else {
			spec.Stop = t + rng.ExpFloat64()*p.HoldMean
		}
		f := spec
		out = append(out, Event{At: t, Kind: FlowStart, Flow: &f})
	}
}

// expandFlashCrowd emits bursts of near-simultaneous flow starts: Count
// flows per burst, each offset uniformly within the Spread window —
// synchronized demand the Poisson process's independent arrivals never
// produce (everyone starting a stream when the match kicks off). Burst
// times follow expandPoisson's arrival structure when Rate is positive;
// Rate 0 is a single scripted burst at FirstAt.
func expandFlashCrowd(p Process, index int, duration float64, net *graph.Network, rng *rand.Rand) []Event {
	sources := egressSources(net)
	if p.Src == "" && len(sources) == 0 {
		return nil
	}
	spread := p.Spread
	if spread <= 0 {
		spread = 1
	}
	var out []Event
	burst := func(b int, at float64) {
		for k := 0; k < p.Count; k++ {
			t := at + rng.Float64()*spread
			if t >= duration {
				continue
			}
			spec := FlowSpec{
				Name:  fmt.Sprintf("crowd-%d-%d-%d", index, b, k),
				Src:   p.Src,
				Dst:   p.Dst,
				Start: t,
			}
			if p.Src == "" {
				drawPair(&spec, sources, net, rng)
			}
			if p.FileBytes > 0 {
				spec.Kind = "file"
				spec.FileBytes = p.FileBytes
			} else {
				spec.Stop = t + rng.ExpFloat64()*p.HoldMean
			}
			f := spec
			out = append(out, Event{At: t, Kind: FlowStart, Flow: &f})
		}
	}
	if p.Rate <= 0 {
		if p.FirstAt < duration {
			burst(0, p.FirstAt)
		}
		return out
	}
	t := p.FirstAt
	for b := 0; ; b++ {
		t += rng.ExpFloat64() / p.Rate
		if t >= duration {
			return out
		}
		burst(b, t)
	}
}

// egressSources lists the nodes random flow pairs may start from (those
// with at least one egress link).
func egressSources(net *graph.Network) []graph.NodeID {
	var sources []graph.NodeID
	for i := 0; i < net.NumNodes(); i++ {
		if len(net.Out(graph.NodeID(i))) > 0 {
			sources = append(sources, graph.NodeID(i))
		}
	}
	return sources
}

// drawPair fills a random (src, dst) pair: the source uniform among
// nodes with egress links, the destination among the remaining nodes,
// mirroring topology.Instance.RandomFlow.
func drawPair(spec *FlowSpec, sources []graph.NodeID, net *graph.Network, rng *rand.Rand) {
	src := sources[rng.Intn(len(sources))]
	dst := graph.NodeID(rng.Intn(net.NumNodes() - 1))
	if dst >= src {
		dst++
	}
	spec.Src = strconv.Itoa(int(src))
	spec.Dst = strconv.Itoa(int(dst))
}
