// Package scenario is the declarative dynamic-network engine of the
// reproduction: a deterministic, composable timeline of network dynamics
// — link failure and recovery, capacity drift, node churn, and stochastic
// flow arrival/departure processes — driven into a running packet
// emulation (internal/node) through its scenario hooks.
//
// The paper's central claim is that EMPoWER's traffic-driven estimation
// and distributed congestion controller adapt to *changing* hybrid
// networks (§6.1 reports failover within hundreds of milliseconds), yet
// its evaluation scripts each dynamic case by hand. A Scenario
// systematizes that workload class: it is data (JSON-loadable, see Load)
// or code (the builder methods), and binding it to an emulation expands
// every stochastic process into a concrete event timeline using seeds
// split with stats.SplitSeed — so a (scenario, seed) pair fully
// determines a trajectory, replications stay bit-identical at any worker
// count, and the runner can fan sweeps out across cores.
//
// Dynamics remain honest: scenario events mutate ground truth (link
// capacities, node presence, offered load) through
// node.Emulation.SetLinkCapacity and friends; the agents still have to
// *detect* the change through traffic-driven capacity estimation, exactly
// as on the paper's testbed. There is no oracle side channel from the
// scenario engine into the congestion controller or the route manager.
package scenario

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/netio"
)

// Scenario is a declarative dynamic-workload description: an optional
// topology, the initial flows, an explicit event timeline, and stochastic
// processes expanded at bind time.
type Scenario struct {
	Name string `json:"name"`
	// Duration is the emulated length in seconds; Bind schedules nothing
	// past it and Runtime.Run advances the engine exactly this far.
	Duration float64 `json:"duration"`
	// Topology, when present, makes the scenario self-contained: the CLI
	// and the experiment sweeps materialize the network from it (per-run
	// channel realizations for generated kinds). A nil Topology means the
	// caller supplies the network.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Flows are the scripted flows (arrival processes add more).
	Flows []FlowSpec `json:"flows,omitempty"`
	// Events is the explicit timeline.
	Events []Event `json:"events,omitempty"`
	// Processes are stochastic event generators (flapping links, capacity
	// drift, Poisson flow arrivals), expanded deterministically at Bind.
	Processes []Process `json:"processes,omitempty"`
	// Groups name sets of links that fail and recover atomically —
	// correlated failures sharing a physical cause, like every PLC link
	// on one mains phase dying with the appliance that shorts it.
	// Group-fail/group-recover events and group-targeted flap processes
	// reference them by name.
	Groups []GroupSpec `json:"groups,omitempty"`
}

// GroupSpec names a set of links for correlated failure events.
type GroupSpec struct {
	Name  string    `json:"name"`
	Links []LinkRef `json:"links"`
}

// EventKind enumerates the timeline mutations.
type EventKind string

// Event kinds.
const (
	// LinkFail sets the referenced link's capacity to zero (both
	// directions unless the reference is one-way), remembering the
	// previous capacity for LinkRecover.
	LinkFail EventKind = "link-fail"
	// LinkRecover restores the capacity saved by the last LinkFail (or
	// the bind-time capacity when the link never failed).
	LinkRecover EventKind = "link-recover"
	// SetCapacity sets the referenced link's capacity to Event.Capacity
	// (Mbps) — e.g. a modulation downgrade.
	SetCapacity EventKind = "set-capacity"
	// ScaleCapacity sets the capacity to Event.Factor times the bind-time
	// capacity (drift processes emit these, so the walk is relative to
	// the realized topology, never path-dependent).
	ScaleCapacity EventKind = "scale-capacity"
	// NodeLeave fails every link touching Event.Node (the station powers
	// off / roams away).
	NodeLeave EventKind = "node-leave"
	// NodeJoin restores exactly the links the matching NodeLeave killed.
	NodeJoin EventKind = "node-join"
	// FlowStart starts Event.Flow at the event time; routes are computed
	// then, on the network as it is.
	FlowStart EventKind = "flow-start"
	// FlowStop stops the flow named Event.FlowName.
	FlowStop EventKind = "flow-stop"
	// SetLoss sets the referenced link's channel error probability to
	// Event.Loss — a gray failure: the link stays up and keeps consuming
	// airtime, but a fraction of its frames is corrupted at reception.
	// Loss 0 restores a clean channel.
	SetLoss EventKind = "set-loss"
	// GroupFail fails every link of the named group atomically (one
	// event, one shared cause — a PLC phase outage takes all its links
	// in the same instant).
	GroupFail EventKind = "group-fail"
	// GroupRecover restores the named group's links, like LinkRecover
	// does for a single reference.
	GroupRecover EventKind = "group-recover"
)

// LinkRef names a link by its endpoints and technology. Nodes are
// referenced by graph node name, with a bare integer accepted as a
// 0-based node index (generated topologies name their nodes "n1".."nN"
// or "node1".."node22", so names are always available). A LinkRef covers
// both directions of the connection unless OneWay is set — a dying
// medium (the noisy appliance of §6.1) takes both with it.
type LinkRef struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Tech   string `json:"tech"`
	OneWay bool   `json:"one_way,omitempty"`
}

func (r LinkRef) String() string {
	arrow := "<->"
	if r.OneWay {
		arrow = "->"
	}
	return fmt.Sprintf("%s%s%s/%s", r.From, arrow, r.To, r.Tech)
}

// FlowSpec scripts one flow of the scenario.
type FlowSpec struct {
	// Name identifies the flow for FlowStop events and measurements.
	// Bind rejects duplicate names; expanded arrival processes generate
	// unique names ("arrival-<process>-<n>").
	Name string `json:"name"`
	Src  string `json:"src"`
	Dst  string `json:"dst"`
	// Start and Stop are absolute virtual times; Stop 0 means the flow
	// runs to the end of the scenario.
	Start float64 `json:"start"`
	Stop  float64 `json:"stop,omitempty"`
	// Kind is "saturated" (default) or "file".
	Kind string `json:"kind,omitempty"`
	// FileBytes is the transfer size for "file" flows.
	FileBytes int64 `json:"file_bytes,omitempty"`
	// MaxRoutes caps the number of routes the flow uses (0: no cap
	// beyond the binding Options).
	MaxRoutes int `json:"max_routes,omitempty"`
}

// Process kinds.
const (
	// ProcFlap alternates the referenced link (or node) between down and
	// up with exponential holding times.
	ProcFlap = "flap"
	// ProcDrift random-walks the referenced link's capacity around its
	// bind-time value (a noisy appliance degrading PLC, a fading WiFi
	// channel).
	ProcDrift = "drift"
	// ProcPoissonFlows adds flows with Poisson arrivals and exponential
	// holding times between a fixed or random pair.
	ProcPoissonFlows = "poisson-flows"
	// ProcGrayLoss alternates the referenced link between a lossy phase
	// (channel error probability Loss) and a clean phase, with
	// exponential holding times — the flap process's gray sibling: the
	// link never goes down, it just starts corrupting frames.
	ProcGrayLoss = "gray-loss"
	// ProcFlashCrowd adds bursts of simultaneous flow arrivals: at each
	// burst time, Count flows start within a short Spread window — the
	// load spike a Poisson process never produces.
	ProcFlashCrowd = "flash-crowd"
)

// Process is a stochastic event generator. Expansion happens at Bind
// with a per-process RNG stream seeded by stats.SplitSeed(seed, index),
// so the realized timeline depends only on (scenario, seed).
type Process struct {
	Kind string `json:"kind"`
	// Link targets ProcFlap / ProcDrift / ProcGrayLoss at a link; Node
	// targets ProcFlap at a whole node (churn); Group targets ProcFlap
	// at a named link group (correlated flapping).
	Link  *LinkRef `json:"link,omitempty"`
	Node  string   `json:"node,omitempty"`
	Group string   `json:"group,omitempty"`

	// FirstAt is the time of the first transition (flap: first failure;
	// drift: first step; arrivals: start of the arrival window).
	FirstAt float64 `json:"first_at,omitempty"`
	// DownMean and UpMean are the mean down/up holding times in seconds
	// for ProcFlap (exponential).
	DownMean float64 `json:"down_mean,omitempty"`
	UpMean   float64 `json:"up_mean,omitempty"`

	// Interval is the drift step period; Std the per-step lognormal
	// standard deviation; Floor and Ceil clamp the cumulative factor
	// (defaults 0.1 and 1.5 of the bind-time capacity).
	Interval float64 `json:"interval,omitempty"`
	Std      float64 `json:"std,omitempty"`
	Floor    float64 `json:"floor,omitempty"`
	Ceil     float64 `json:"ceil,omitempty"`

	// Rate is the arrival rate in flows per second; HoldMean the mean
	// exponential flow lifetime. Src/Dst empty means each arrival draws
	// a random pair (source among nodes with egress links).
	Rate     float64 `json:"rate,omitempty"`
	HoldMean float64 `json:"hold_mean,omitempty"`
	Src      string  `json:"src,omitempty"`
	Dst      string  `json:"dst,omitempty"`
	// FileBytes > 0 makes arrivals file transfers of that size instead
	// of holding-time-bounded saturated flows.
	FileBytes int64 `json:"file_bytes,omitempty"`

	// Loss is ProcGrayLoss's channel error probability during the lossy
	// phase (0 < Loss <= 1).
	Loss float64 `json:"loss,omitempty"`
	// Count is the number of flows per ProcFlashCrowd burst; Spread the
	// window (seconds, default 1) the burst's arrivals scatter over. A
	// positive Rate draws recurring burst times with exponential gaps of
	// mean 1/Rate after FirstAt; Rate 0 fires a single burst at FirstAt.
	Count  int     `json:"count,omitempty"`
	Spread float64 `json:"spread,omitempty"`
}

// Event is one timed mutation of the running emulation.
type Event struct {
	At       float64   `json:"at"`
	Kind     EventKind `json:"kind"`
	Link     *LinkRef  `json:"link,omitempty"`
	Node     string    `json:"node,omitempty"`
	Capacity float64   `json:"capacity,omitempty"`
	Factor   float64   `json:"factor,omitempty"`
	Flow     *FlowSpec `json:"flow,omitempty"`
	FlowName string    `json:"flow_name,omitempty"`
	// Loss is the channel error probability for SetLoss events.
	Loss float64 `json:"loss,omitempty"`
	// Group names the link group for GroupFail/GroupRecover events.
	Group string `json:"group,omitempty"`
}

// New starts a scenario of the given name and duration (builder API).
func New(name string, duration float64) *Scenario {
	return &Scenario{Name: name, Duration: duration}
}

// Link is a convenience constructor for a bidirectional link reference.
func Link(from, to string, tech graph.Tech) LinkRef {
	return LinkRef{From: from, To: to, Tech: tech.String()}
}

// AddFlow schedules a flow.
func (s *Scenario) AddFlow(f FlowSpec) *Scenario {
	s.Flows = append(s.Flows, f)
	return s
}

// FailLink schedules a link failure at time t.
func (s *Scenario) FailLink(t float64, ref LinkRef) *Scenario {
	r := ref
	s.Events = append(s.Events, Event{At: t, Kind: LinkFail, Link: &r})
	return s
}

// RecoverLink schedules a link recovery at time t.
func (s *Scenario) RecoverLink(t float64, ref LinkRef) *Scenario {
	r := ref
	s.Events = append(s.Events, Event{At: t, Kind: LinkRecover, Link: &r})
	return s
}

// SetLinkCapacity schedules a capacity change at time t (Mbps).
func (s *Scenario) SetLinkCapacity(t float64, ref LinkRef, capacity float64) *Scenario {
	r := ref
	s.Events = append(s.Events, Event{At: t, Kind: SetCapacity, Link: &r, Capacity: capacity})
	return s
}

// SetLinkLoss schedules a gray failure at time t: the link's channel
// error probability becomes p (0 restores a clean channel).
func (s *Scenario) SetLinkLoss(t float64, ref LinkRef, p float64) *Scenario {
	r := ref
	s.Events = append(s.Events, Event{At: t, Kind: SetLoss, Link: &r, Loss: p})
	return s
}

// Group declares a named link group for correlated failure events.
func (s *Scenario) Group(name string, links ...LinkRef) *Scenario {
	s.Groups = append(s.Groups, GroupSpec{Name: name, Links: links})
	return s
}

// FailGroup schedules the atomic failure of a named link group at time t.
func (s *Scenario) FailGroup(t float64, name string) *Scenario {
	s.Events = append(s.Events, Event{At: t, Kind: GroupFail, Group: name})
	return s
}

// RecoverGroup schedules the named group's recovery at time t.
func (s *Scenario) RecoverGroup(t float64, name string) *Scenario {
	s.Events = append(s.Events, Event{At: t, Kind: GroupRecover, Group: name})
	return s
}

// NodeLeave schedules a node departure at time t.
func (s *Scenario) NodeLeave(t float64, node string) *Scenario {
	s.Events = append(s.Events, Event{At: t, Kind: NodeLeave, Node: node})
	return s
}

// NodeJoin schedules the node's return at time t.
func (s *Scenario) NodeJoin(t float64, node string) *Scenario {
	s.Events = append(s.Events, Event{At: t, Kind: NodeJoin, Node: node})
	return s
}

// StopFlow schedules stopping the named flow at time t.
func (s *Scenario) StopFlow(t float64, name string) *Scenario {
	s.Events = append(s.Events, Event{At: t, Kind: FlowStop, FlowName: name})
	return s
}

// Flap adds a link-flapping process: first failure at firstAt, then
// exponential down/up holding times with the given means.
func (s *Scenario) Flap(ref LinkRef, firstAt, downMean, upMean float64) *Scenario {
	r := ref
	s.Processes = append(s.Processes, Process{
		Kind: ProcFlap, Link: &r, FirstAt: firstAt, DownMean: downMean, UpMean: upMean,
	})
	return s
}

// FlapNode adds a node-churn process (the node leaves and rejoins with
// exponential holding times).
func (s *Scenario) FlapNode(node string, firstAt, downMean, upMean float64) *Scenario {
	s.Processes = append(s.Processes, Process{
		Kind: ProcFlap, Node: node, FirstAt: firstAt, DownMean: downMean, UpMean: upMean,
	})
	return s
}

// FlapGroup adds a correlated flapping process: the whole named group
// fails and recovers atomically with exponential holding times.
func (s *Scenario) FlapGroup(group string, firstAt, downMean, upMean float64) *Scenario {
	s.Processes = append(s.Processes, Process{
		Kind: ProcFlap, Group: group, FirstAt: firstAt, DownMean: downMean, UpMean: upMean,
	})
	return s
}

// GrayLoss adds a gray-failure process on a link: lossy phases at
// channel error probability p alternating with clean phases, first
// lossy phase at firstAt, exponential holding times.
func (s *Scenario) GrayLoss(ref LinkRef, p, firstAt, downMean, upMean float64) *Scenario {
	r := ref
	s.Processes = append(s.Processes, Process{
		Kind: ProcGrayLoss, Link: &r, Loss: p, FirstAt: firstAt, DownMean: downMean, UpMean: upMean,
	})
	return s
}

// FlashCrowd adds a flow-burst process: bursts of count flows (each
// scattered over spread seconds, living an exponential holdMean) at
// exponential burst gaps of mean 1/rate after firstAt; rate 0 fires a
// single burst at firstAt. Empty src/dst draws a random pair per flow.
func (s *Scenario) FlashCrowd(firstAt, rate float64, count int, spread, holdMean float64, src, dst string) *Scenario {
	s.Processes = append(s.Processes, Process{
		Kind: ProcFlashCrowd, FirstAt: firstAt, Rate: rate, Count: count,
		Spread: spread, HoldMean: holdMean, Src: src, Dst: dst,
	})
	return s
}

// Drift adds a capacity-drift process on a link: every interval seconds
// the capacity moves one lognormal random-walk step (std per step),
// clamped to [floor, ceil] times the bind-time capacity.
func (s *Scenario) Drift(ref LinkRef, interval, std, floor, ceil float64) *Scenario {
	r := ref
	s.Processes = append(s.Processes, Process{
		Kind: ProcDrift, Link: &r, Interval: interval, Std: std, Floor: floor, Ceil: ceil,
	})
	return s
}

// PoissonFlows adds a flow arrival process: arrivals at `rate` per
// second, each flow living an exponential time of mean holdMean. Empty
// src/dst draws a random pair per arrival.
func (s *Scenario) PoissonFlows(rate, holdMean float64, src, dst string) *Scenario {
	s.Processes = append(s.Processes, Process{
		Kind: ProcPoissonFlows, Rate: rate, HoldMean: holdMean, Src: src, Dst: dst,
	})
	return s
}

// Validate checks the scenario's static structure (reference resolution
// happens at Bind, against the concrete network).
func (s *Scenario) Validate() error {
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %q: duration must be positive, got %g", s.Name, s.Duration)
	}
	groups := map[string]bool{}
	for i, g := range s.Groups {
		if g.Name == "" {
			return fmt.Errorf("scenario %q: group %d has no name", s.Name, i)
		}
		if groups[g.Name] {
			return fmt.Errorf("scenario %q: duplicate group name %q", s.Name, g.Name)
		}
		if len(g.Links) == 0 {
			return fmt.Errorf("scenario %q: group %q has no links", s.Name, g.Name)
		}
		groups[g.Name] = true
	}
	names := map[string]bool{}
	checkFlow := func(f FlowSpec, what string) error {
		if f.Name == "" {
			return fmt.Errorf("scenario %q: %s has no name", s.Name, what)
		}
		if names[f.Name] {
			return fmt.Errorf("scenario %q: duplicate flow name %q", s.Name, f.Name)
		}
		names[f.Name] = true
		if f.Src == "" || f.Dst == "" {
			return fmt.Errorf("scenario %q: flow %q needs src and dst", s.Name, f.Name)
		}
		if f.Kind != "" && f.Kind != "saturated" && f.Kind != "file" {
			return fmt.Errorf("scenario %q: flow %q has unknown kind %q", s.Name, f.Name, f.Kind)
		}
		if f.Kind == "file" && f.FileBytes <= 0 {
			return fmt.Errorf("scenario %q: file flow %q needs file_bytes", s.Name, f.Name)
		}
		return nil
	}
	for i, f := range s.Flows {
		if err := checkFlow(f, fmt.Sprintf("flow %d", i)); err != nil {
			return err
		}
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("scenario %q: event %d at negative time %g", s.Name, i, ev.At)
		}
		switch ev.Kind {
		case LinkFail, LinkRecover, SetCapacity, ScaleCapacity:
			if ev.Link == nil {
				return fmt.Errorf("scenario %q: %s event %d needs a link", s.Name, ev.Kind, i)
			}
		case SetLoss:
			if ev.Link == nil {
				return fmt.Errorf("scenario %q: set-loss event %d needs a link", s.Name, i)
			}
			if ev.Loss < 0 || ev.Loss > 1 {
				return fmt.Errorf("scenario %q: set-loss event %d needs loss in [0,1], got %g", s.Name, i, ev.Loss)
			}
		case GroupFail, GroupRecover:
			if ev.Group == "" {
				return fmt.Errorf("scenario %q: %s event %d needs a group", s.Name, ev.Kind, i)
			}
			if !groups[ev.Group] {
				return fmt.Errorf("scenario %q: %s event %d references unknown group %q", s.Name, ev.Kind, i, ev.Group)
			}
		case NodeLeave, NodeJoin:
			if ev.Node == "" {
				return fmt.Errorf("scenario %q: %s event %d needs a node", s.Name, ev.Kind, i)
			}
		case FlowStart:
			if ev.Flow == nil {
				return fmt.Errorf("scenario %q: flow-start event %d needs a flow", s.Name, i)
			}
			if err := checkFlow(*ev.Flow, fmt.Sprintf("flow-start event %d's flow", i)); err != nil {
				return err
			}
		case FlowStop:
			if ev.FlowName == "" {
				return fmt.Errorf("scenario %q: flow-stop event %d needs a flow name", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: event %d has unknown kind %q", s.Name, i, ev.Kind)
		}
	}
	for i, p := range s.Processes {
		switch p.Kind {
		case ProcFlap:
			targets := 0
			if p.Link != nil {
				targets++
			}
			if p.Node != "" {
				targets++
			}
			if p.Group != "" {
				targets++
				if !groups[p.Group] {
					return fmt.Errorf("scenario %q: flap process %d references unknown group %q", s.Name, i, p.Group)
				}
			}
			if targets != 1 {
				return fmt.Errorf("scenario %q: flap process %d needs exactly one of link, node or group", s.Name, i)
			}
			if p.DownMean <= 0 || p.UpMean <= 0 {
				return fmt.Errorf("scenario %q: flap process %d needs positive down_mean and up_mean", s.Name, i)
			}
		case ProcGrayLoss:
			if p.Link == nil {
				return fmt.Errorf("scenario %q: gray-loss process %d needs a link", s.Name, i)
			}
			if p.Loss <= 0 || p.Loss > 1 {
				return fmt.Errorf("scenario %q: gray-loss process %d needs loss in (0,1], got %g", s.Name, i, p.Loss)
			}
			if p.DownMean <= 0 || p.UpMean <= 0 {
				return fmt.Errorf("scenario %q: gray-loss process %d needs positive down_mean and up_mean", s.Name, i)
			}
		case ProcFlashCrowd:
			if p.Count <= 0 {
				return fmt.Errorf("scenario %q: flash-crowd process %d needs a positive count", s.Name, i)
			}
			if p.Rate < 0 || p.Spread < 0 {
				return fmt.Errorf("scenario %q: flash-crowd process %d needs non-negative rate and spread", s.Name, i)
			}
			if p.HoldMean <= 0 && p.FileBytes <= 0 {
				return fmt.Errorf("scenario %q: flash-crowd process %d needs hold_mean or file_bytes", s.Name, i)
			}
			if (p.Src == "") != (p.Dst == "") {
				return fmt.Errorf("scenario %q: flash-crowd process %d needs both src and dst, or neither", s.Name, i)
			}
		case ProcDrift:
			if p.Link == nil {
				return fmt.Errorf("scenario %q: drift process %d needs a link", s.Name, i)
			}
			if p.Interval <= 0 || p.Std <= 0 {
				return fmt.Errorf("scenario %q: drift process %d needs positive interval and std", s.Name, i)
			}
		case ProcPoissonFlows:
			if p.Rate <= 0 {
				return fmt.Errorf("scenario %q: poisson-flows process %d needs a positive rate", s.Name, i)
			}
			if p.HoldMean <= 0 && p.FileBytes <= 0 {
				return fmt.Errorf("scenario %q: poisson-flows process %d needs hold_mean or file_bytes", s.Name, i)
			}
			if (p.Src == "") != (p.Dst == "") {
				return fmt.Errorf("scenario %q: poisson-flows process %d needs both src and dst, or neither", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: process %d has unknown kind %q", s.Name, i, p.Kind)
		}
	}
	if s.Topology != nil {
		if err := s.Topology.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// ParseTech maps a technology name to its graph.Tech value. It defers
// to netio.ParseTech — the codebase's one JSON tech parser — so both
// JSON dialects accept the same case-insensitive names ("PLC", "wifi",
// "WiFi2", ...).
func ParseTech(name string) (graph.Tech, error) {
	return netio.ParseTech(name)
}
