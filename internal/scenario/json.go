package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Load reads and validates a scenario from a JSON file. The schema is
// the JSON encoding of the Scenario struct; DESIGN.md documents it field
// by field and examples/scenarios/ ships runnable files.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a JSON scenario. Unknown fields are
// rejected so typos in hand-written files fail loudly instead of
// silently disabling dynamics.
func Parse(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
