package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/node"
	"repro/internal/obs"
)

// TestEventKindOrdinalRoundTrip pins the compact encoding the flight
// recorder uses for scenario events: every kind must have a stable
// ordinal that round-trips, and unknown kinds must map to -1.
func TestEventKindOrdinalRoundTrip(t *testing.T) {
	kinds := []EventKind{
		LinkFail, LinkRecover, SetCapacity, ScaleCapacity, NodeLeave,
		NodeJoin, FlowStart, FlowStop, SetLoss, GroupFail, GroupRecover,
	}
	seen := map[int32]bool{}
	for _, k := range kinds {
		ord := EventKindOrdinal(k)
		if ord < 0 {
			t.Errorf("%s: no ordinal", k)
			continue
		}
		if seen[ord] {
			t.Errorf("%s: ordinal %d reused", k, ord)
		}
		seen[ord] = true
		if back := OrdinalEventKind(ord); back != k {
			t.Errorf("%s: ordinal %d maps back to %s", k, ord, back)
		}
	}
	if EventKindOrdinal(EventKind("no-such-kind")) != -1 {
		t.Error("unknown kind must map to -1")
	}
	if OrdinalEventKind(-1) != "" || OrdinalEventKind(10_000) != "" {
		t.Error("out-of-range ordinals must map to the empty kind")
	}
}

// TestViolationReportCarriesTail checks the -invariants failure message:
// with a flight recorder attached, a violation report must include the
// owning domain's event tail; without one it degrades to the bare
// violation line.
func TestViolationReportCarriesTail(t *testing.T) {
	run := func(recorder int) *Runtime {
		b := graph.NewBuilder(nil)
		s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
		d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
		b.AddDuplex(s, d, graph.TechPLC, 40)
		b.AddDuplex(s, d, graph.TechWiFi, 40)
		net := b.Build()
		sc := New("tail", 10)
		sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
		sc.FailLink(4, Link("s", "d", graph.TechPLC))
		em := node.NewEmulation(net, node.Config{Estimation: true, Recorder: recorder}, 31)
		rt, err := Bind(em, sc, 7, Options{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		rt.Run()
		return rt
	}

	v := invariant.Violation{At: 5, Domain: 0, Check: "flow-conservation", Detail: "synthetic"}

	with := run(256).ViolationReport(v, 8)
	if !strings.Contains(with, v.String()) {
		t.Errorf("report does not contain the violation line:\n%s", with)
	}
	if !strings.Contains(with, "flight recorder") {
		t.Errorf("report with recorder lacks the event tail:\n%s", with)
	}
	if strings.Count(with, "dom=0 t=") == 0 {
		t.Errorf("report tail has no records:\n%s", with)
	}

	without := run(0).ViolationReport(v, 8)
	if without != v.String() {
		t.Errorf("report without recorder must be the bare violation line, got:\n%s", without)
	}
}

// TestRuntimeSampleMetrics checks the scenario layer's registry slots:
// a bound run samples engine, MAC, routing and scenario series, and the
// snapshot is lint-clean.
func TestRuntimeSampleMetrics(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	b.AddDuplex(s, d, graph.TechPLC, 40)
	b.AddDuplex(s, d, graph.TechWiFi, 40)
	net := b.Build()
	sc := New("metrics", 10)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.FailLink(4, Link("s", "d", graph.TechPLC))
	em := node.NewEmulation(net, node.Config{Estimation: true}, 31)
	rt, err := Bind(em, sc, 7, Options{Strict: true, Invariants: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()

	reg := obs.NewRegistry()
	rt.SampleMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.String()
	for _, want := range []string{
		"empower_events_fired_total",
		"empower_scenario_transitions_total",
		"empower_scenario_failures_total",
		"empower_mac_delivered_packets_total",
		"empower_invariant_violations_total",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %s:\n%s", want, snap)
		}
	}
	if err := obs.Lint(buf.Bytes()); err != nil {
		t.Fatalf("snapshot fails lint: %v", err)
	}
}
