package scenario

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/node"
)

// twoRouteNet builds the canonical two-route hybrid: a direct PLC
// connection and a direct WiFi connection between s and d, 40 Mbps each
// way.
func twoRouteNet(t *testing.T) (*graph.Network, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	b.AddDuplex(s, d, graph.TechPLC, 40)
	b.AddDuplex(s, d, graph.TechWiFi, 40)
	return b.Build(), s, d
}

// TestFlapFailoverMeasurement drives the canonical §6.1 case through the
// scenario engine: PLC dies mid-run and comes back. The congestion
// controller must move traffic to WiFi (a finite measured failover
// latency, sub-5s: estimation timeout + reordering stall + rate shift)
// and back after recovery.
func TestFlapFailoverMeasurement(t *testing.T) {
	net, _, _ := twoRouteNet(t)
	sc := New("flap", 150)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.FailLink(30, Link("s", "d", graph.TechPLC))
	sc.RecoverLink(90, Link("s", "d", graph.TechPLC))

	em := node.NewEmulation(net, node.Config{Estimation: true}, 31)
	rt, err := Bind(em, sc, 7, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()

	if len(rt.Unresolved) != 0 {
		t.Fatalf("unresolved refs: %v", rt.Unresolved)
	}
	if len(rt.Failures) != 1 {
		t.Fatalf("recorded %d failure episodes, want 1", len(rt.Failures))
	}
	f := rt.Failures[0]
	if f.At != 30 || f.RecoveredAt != 90 {
		t.Fatalf("failure window [%g, %g], want [30, 90]", f.At, f.RecoveredAt)
	}
	lat, censored := rt.FailoverLatencies(0.2, 0.8)
	if censored != 0 || len(lat) != 1 {
		t.Fatalf("latencies %v censored %d, want one finite latency", lat, censored)
	}
	if lat[0] <= 0 || lat[0] > 5 {
		t.Errorf("failover latency %.2f s, want within (0, 5]", lat[0])
	}
	rec := rt.Flow("f")
	// After failover: WiFi (route with the WiFi first hop) carries ~40.
	during := rt.FlowGoodput("f", 60, 90)
	if during < 25 {
		t.Errorf("goodput %.2f Mbps during the PLC outage, want most of the WiFi capacity", during)
	}
	// After recovery: both routes again.
	after := rt.FlowGoodput("f", 130, 150)
	if after < during+8 {
		t.Errorf("goodput %.2f Mbps after recovery vs %.2f during outage: traffic did not shift back", after, during)
	}
	if got := rec.Flow.TotalRate(); got < 40 {
		t.Errorf("total rate %.2f Mbps at the end, want both routes loaded", got)
	}
}

// TestDegradedSinglePath pins the §6.1 contrast case: a single-route
// flow without congestion control loses its only link; the episode is
// censored (no failover) and the goodput inside the window collapses.
func TestDegradedSinglePath(t *testing.T) {
	net, s, d := twoRouteNet(t)
	plc := net.FindLink(s, d, graph.TechPLC)
	sc := New("degraded", 90)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.FailLink(30, Link("s", "d", graph.TechPLC))

	em := node.NewEmulation(net, node.Config{Estimation: true, DisableCC: true}, 5)
	rt, err := Bind(em, sc, 7, Options{
		Strict: true,
		Routes: func(n *graph.Network, src, dst graph.NodeID) []graph.Path {
			return []graph.Path{{plc}} // pinned single route, SP-style
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	lat, censored := rt.FailoverLatencies(0.2, 0.8)
	if len(lat) != 0 || censored != 1 {
		t.Fatalf("latencies %v censored %d, want one censored episode", lat, censored)
	}
	deg := rt.DegradedGoodput()
	if len(deg) != 1 || deg[0] > 2 {
		t.Errorf("degraded goodput %v, want ~0 (the only route is dead)", deg)
	}
}

// TestNodeChurnRestoresCapacities checks that node-leave kills exactly
// the node's live links and node-join restores exactly those.
func TestNodeChurnRestoresCapacities(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechWiFi)
	r := b.AddNode("r", 1, 0, graph.TechWiFi)
	d := b.AddNode("d", 2, 0, graph.TechWiFi)
	b.AddDuplex(s, r, graph.TechWiFi, 30)
	b.AddDuplex(r, d, graph.TechWiFi, 30)
	b.AddDuplex(s, d, graph.TechWiFi, 10)
	net := b.Build()
	before := make([]float64, net.NumLinks())
	for l := range before {
		before[l] = net.Link(graph.LinkID(l)).Capacity
	}

	sc := New("churn", 60)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.NodeLeave(20, "r")
	sc.NodeJoin(40, "r")

	em := node.NewEmulation(net, node.Config{Estimation: true}, 9)
	rt, err := Bind(em, sc, 3, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	for _, l := range append(net.Out(r), net.In(r)...) {
		if c := net.Link(l).Capacity; c != 0 {
			t.Fatalf("link %d capacity %.1f while node r is away, want 0", l, c)
		}
	}
	if c := net.Link(net.FindLink(s, d, graph.TechWiFi)).Capacity; c != 10 {
		t.Fatalf("bypass link capacity %.1f during churn, want untouched 10", c)
	}
	rt.Run()
	for l := range before {
		if c := net.Link(graph.LinkID(l)).Capacity; c != before[l] {
			t.Errorf("link %d capacity %.1f after rejoin, want %.1f", l, c, before[l])
		}
	}
}

// TestPoissonArrivalsDeterministic expands the same arrival process
// twice with the same seed and checks the realized timelines are
// identical, and that arrivals actually start and stop flows.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	net, _, _ := twoRouteNet(t)
	sc := New("arrivals", 120)
	sc.PoissonFlows(0.1, 15, "s", "d")

	e1 := expandProcesses(sc, net, 42)
	e2 := expandProcesses(sc, net, 42)
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("same seed expanded to different timelines")
	}
	e3 := expandProcesses(sc, net, 43)
	if reflect.DeepEqual(e1, e3) {
		t.Fatal("different seeds expanded to identical timelines (suspicious)")
	}
	if len(e1) == 0 {
		t.Fatal("rate 0.1/s over 120 s expanded to no arrivals")
	}

	em := node.NewEmulation(net, node.Config{Estimation: true}, 1)
	rt, err := Bind(em, sc, 42, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	if len(rt.FlowNames()) != len(e1) {
		t.Fatalf("started %d flows, expansion had %d arrivals", len(rt.FlowNames()), len(e1))
	}
	stopped := 0
	for _, name := range rt.FlowNames() {
		if rt.Flow(name).StoppedAt > 0 {
			stopped++
		}
	}
	if stopped == 0 {
		t.Error("no arrival departed despite 15 s mean holding time over 120 s")
	}
}

// TestDriftStaysClamped checks the drift walk's cumulative factor
// honours the clamp and actually moves the capacity.
func TestDriftStaysClamped(t *testing.T) {
	net, s, d := twoRouteNet(t)
	plc := net.FindLink(s, d, graph.TechPLC)
	sc := New("drift", 60)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.Drift(Link("s", "d", graph.TechPLC), 1, 0.3, 0.25, 1.25)

	em := node.NewEmulation(net, node.Config{Estimation: true}, 2)
	rt, err := Bind(em, sc, 11, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for t2 := 1.0; t2 <= 60; t2++ {
		em.Run(t2)
		c := net.Link(plc).Capacity
		if c < 0.25*40-1e-9 || c > 1.25*40+1e-9 {
			t.Fatalf("capacity %.2f at t=%.0f outside the clamp [10, 50]", c, t2)
		}
		if math.Abs(c-40) > 1 {
			moved = true
		}
	}
	rt.Finish()
	if !moved {
		t.Error("drift never moved the capacity by more than 1 Mbps")
	}
}

// TestJSONRoundTrip saves a built scenario and loads it back.
func TestJSONRoundTrip(t *testing.T) {
	sc := New("roundtrip", 90)
	sc.Topology = &TopologySpec{
		Kind: "custom",
		Nodes: []NodeSpec{
			{Name: "s", Techs: []string{"PLC", "WiFi"}},
			{Name: "d", X: 1, Techs: []string{"PLC", "WiFi"}},
		},
		Links: []LinkSpec{
			{From: "s", To: "d", Tech: "PLC", Capacity: 40},
			{From: "s", To: "d", Tech: "WiFi", Capacity: 40},
		},
	}
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.Flap(Link("s", "d", graph.TechPLC), 20, 8, 25)
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, sc)
	}
	// The loaded topology must build and the scenario must bind.
	net, err := got.Topology.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	em := node.NewEmulation(net, node.Config{Estimation: true}, 1)
	if _, err := Bind(em, got, 1, Options{Strict: true}); err != nil {
		t.Fatal(err)
	}
}

// TestParseRejectsUnknownFields guards hand-written files against typos.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","duration":10,"evnets":[]}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","duration":-1}`)); err == nil {
		t.Fatal("negative duration accepted")
	}
}

// TestLenientUnresolved drops events whose links don't exist on this
// view and records them, instead of failing the bind — scheme sweeps on
// WiFi-only views depend on this.
func TestLenientUnresolved(t *testing.T) {
	b := graph.NewBuilder(nil)
	b.AddNode("s", 0, 0, graph.TechWiFi)
	b.AddNode("d", 1, 0, graph.TechWiFi)
	b.AddDuplex(0, 1, graph.TechWiFi, 40)
	net := b.Build()
	sc := New("lenient", 30)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.FailLink(10, Link("s", "d", graph.TechPLC)) // no PLC on this view

	em := node.NewEmulation(net, node.Config{Estimation: true}, 1)
	if _, err := Bind(em, sc, 1, Options{Strict: true}); err == nil {
		t.Fatal("strict bind accepted an unresolvable link")
	}
	em = node.NewEmulation(net, node.Config{Estimation: true}, 1)
	rt, err := Bind(em, sc, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Unresolved) != 1 {
		t.Fatalf("unresolved %v, want exactly the PLC fail event", rt.Unresolved)
	}
	rt.Run()
	if len(rt.Failures) != 0 {
		t.Fatal("dropped event still produced a failure episode")
	}
}

// TestCustomViews materializes a custom topology under the three views.
func TestCustomViews(t *testing.T) {
	spec := &TopologySpec{
		Kind: "custom",
		Nodes: []NodeSpec{
			{Name: "a", Techs: []string{"PLC", "WiFi"}},
			{Name: "b", X: 1, Techs: []string{"PLC", "WiFi"}},
		},
		Links: []LinkSpec{
			{From: "a", To: "b", Tech: "PLC", Capacity: 40},
			{From: "a", To: "b", Tech: "WiFi", Capacity: 30},
		},
	}
	hybrid, err := spec.BuildView(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.NumLinks() != 4 {
		t.Fatalf("hybrid view has %d links, want 4", hybrid.NumLinks())
	}
	wifi, err := spec.BuildView(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wifi.NumLinks() != 2 {
		t.Fatalf("wifi view has %d links, want 2", wifi.NumLinks())
	}
	dual, err := spec.BuildView(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dual.NumLinks() != 4 {
		t.Fatalf("dual view has %d links, want 4 (two channels)", dual.NumLinks())
	}
	for l := 0; l < dual.NumLinks(); l++ {
		if dual.Link(graph.LinkID(l)).Tech == graph.TechPLC {
			t.Fatal("dual-WiFi view still contains a PLC link")
		}
	}
}

// TestManagedRerouteOnFailure covers the route-manager integration: a
// flow pinned to the only direct route loses it; the manager's fast
// failover check must detect the death through the estimates and swap
// onto the relay path, then re-adopt the direct route after recovery
// (the network-wide capacity-variation trigger).
func TestManagedRerouteOnFailure(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	r := b.AddNode("r", 10, 0, graph.TechWiFi)
	d := b.AddNode("d", 20, 0, graph.TechPLC, graph.TechWiFi)
	b.AddDuplex(s, d, graph.TechPLC, 40)
	b.AddDuplex(s, r, graph.TechWiFi, 60)
	b.AddDuplex(r, d, graph.TechWiFi, 60)
	net := b.Build()

	sc := New("reroute", 180)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0, MaxRoutes: 1})
	sc.FailLink(30, Link("s", "d", graph.TechPLC))
	sc.RecoverLink(90, Link("s", "d", graph.TechPLC))

	em := node.NewEmulation(net, node.Config{Estimation: true}, 17)
	rt, err := Bind(em, sc, 5, Options{Strict: true, ManageRoutes: true, MaxRoutes: 1})
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	rec := rt.Flow("f")
	if n := len(rec.Flow.Routes()); n != 1 {
		t.Fatalf("flow started with %d routes, want the single direct PLC route", n)
	}
	em.Run(90)
	if rec.Mgr.Reroutes == 0 {
		t.Fatal("manager never rerouted off the dead direct route")
	}
	if g := rt.FlowGoodput("f", 60, 90); g < 15 {
		t.Errorf("goodput %.2f Mbps on the relay path during the outage, want ~25", g)
	}
	rt.Run()
	// After recovery the manager must come back to the (better) direct
	// route: the current relay route's total cannot see the recovery,
	// only the network-wide capacity signal does.
	onPLC := false
	for _, p := range rec.Flow.Routes() {
		for _, l := range p {
			if em.Net.Link(l).Tech == graph.TechPLC {
				onPLC = true
			}
		}
	}
	if !onPLC {
		t.Errorf("flow still on %d relay route(s) 90 s after the direct route recovered", len(rec.Flow.Routes()))
	}
	if g := rt.FlowGoodput("f", 150, 180); g < 30 {
		t.Errorf("goodput %.2f Mbps after re-adoption, want most of the 40 Mbps direct route", g)
	}
}

// TestDriftDoesNotResurrectDeadLink pins the drift/failure interplay: a
// drift step on a link that a failure event killed must not bring it
// back to life (nor close the failure window as a spurious recovery).
func TestDriftDoesNotResurrectDeadLink(t *testing.T) {
	net, s, d := twoRouteNet(t)
	plc := net.FindLink(s, d, graph.TechPLC)
	sc := New("drift-vs-fail", 60)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.FailLink(10, Link("s", "d", graph.TechPLC))
	sc.RecoverLink(40, Link("s", "d", graph.TechPLC))
	sc.Drift(Link("s", "d", graph.TechPLC), 1, 0.3, 0.25, 1.25)

	em := node.NewEmulation(net, node.Config{Estimation: true}, 4)
	rt, err := Bind(em, sc, 13, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 11.0; t2 < 40; t2++ {
		em.Run(t2)
		if c := net.Link(plc).Capacity; c != 0 {
			t.Fatalf("drift resurrected the failed link to %.2f Mbps at t=%.0f", c, t2)
		}
	}
	rt.Run()
	if len(rt.Failures) != 1 || rt.Failures[0].RecoveredAt != 40 {
		t.Fatalf("failure windows %+v, want one closed exactly at the recover event", rt.Failures)
	}
	if c := net.Link(plc).Capacity; c <= 0 {
		t.Fatalf("link still dead after its recovery event")
	}
}

// TestGrayLossWiresMACLossProb drives a gray-failure window through the
// engine: the set-loss event must land in the MAC's per-link loss
// probability, actually drop packets with the channel-loss reason, and
// record a Loss-carrying transition — all without tripping the runtime
// invariant checker (a gray failure is a legal trajectory).
func TestGrayLossWiresMACLossProb(t *testing.T) {
	net, s, d := twoRouteNet(t)
	plc := net.FindLink(s, d, graph.TechPLC)
	sc := New("gray", 60)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	// down_mean far beyond the duration: the first window opens at t=5
	// and stays open, so the end state is deterministic.
	sc.GrayLoss(Link("s", "d", graph.TechPLC), 0.3, 5, 1e6, 10)

	em := node.NewEmulation(net, node.Config{Estimation: true}, 21)
	rt, err := Bind(em, sc, 9, Options{Strict: true, Invariants: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	if got := em.LinkLoss(plc); got != 0.3 {
		t.Errorf("MAC loss probability %.2f after the run, want the 0.3 the window set", got)
	}
	found := false
	for _, tr := range rt.Transitions {
		if tr.Kind == SetLoss && tr.Link == plc && tr.Loss == 0.3 {
			found = true
		}
	}
	if !found {
		t.Error("no set-loss transition with loss 0.3 recorded")
	}
	if n := rt.DropsByReason()["channel-loss"]; n == 0 {
		t.Error("0 channel-loss drops across 55 s of 30% loss under load")
	}
	if v := rt.Violations(); len(v) != 0 {
		t.Errorf("invariant checker flagged a legal gray-failure run: %v", v)
	}
}

// TestGroupFailKillsAndRestoresMembers pins correlated failures: a
// group-fail event must kill exactly the member links in one virtual
// instant, and group-recover must restore exactly those.
func TestGroupFailKillsAndRestoresMembers(t *testing.T) {
	b := graph.NewBuilder(nil)
	s := b.AddNode("s", 0, 0, graph.TechPLC, graph.TechWiFi)
	d := b.AddNode("d", 1, 0, graph.TechPLC, graph.TechWiFi)
	b.AddDuplex(s, d, graph.TechPLC, 40)
	b.AddDuplex(s, d, graph.TechWiFi, 40)
	net := b.Build()
	plc := net.FindLink(s, d, graph.TechPLC)
	wifi := net.FindLink(s, d, graph.TechWiFi)

	sc := New("group", 60)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.Group("phase", Link("s", "d", graph.TechPLC))
	sc.FailGroup(20, "phase")
	sc.RecoverGroup(40, "phase")

	em := node.NewEmulation(net, node.Config{Estimation: true}, 23)
	rt, err := Bind(em, sc, 3, Options{Strict: true, Invariants: true})
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	if c := net.Link(plc).Capacity; c != 0 {
		t.Fatalf("group member capacity %.1f inside the failure window, want 0", c)
	}
	if c := net.Link(wifi).Capacity; c != 40 {
		t.Fatalf("non-member capacity %.1f inside the failure window, want untouched 40", c)
	}
	rt.Run()
	if c := net.Link(plc).Capacity; c != 40 {
		t.Fatalf("group member capacity %.1f after recovery, want 40", c)
	}
	if len(rt.Failures) == 0 {
		t.Error("group failure opened no failure episode for the crossing flow")
	}
	if v := rt.Violations(); len(v) != 0 {
		t.Errorf("invariant checker flagged a legal group-failure run: %v", v)
	}
}

// TestFlashCrowdExpansion covers the flash-crowd process: deterministic
// expansion per seed, the full burst arriving, and the crowd flows
// actually running and departing.
func TestFlashCrowdExpansion(t *testing.T) {
	net, _, _ := twoRouteNet(t)
	sc := New("crowd", 40)
	sc.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d", Start: 0})
	sc.FlashCrowd(10, 0, 4, 2, 5, "s", "d")

	e1 := expandProcesses(sc, net, 42)
	e2 := expandProcesses(sc, net, 42)
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("same seed expanded to different crowd timelines")
	}
	if len(e1) != 4 {
		t.Fatalf("single burst of 4 expanded to %d events", len(e1))
	}

	em := node.NewEmulation(net, node.Config{Estimation: true}, 27)
	rt, err := Bind(em, sc, 42, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	crowd, stopped := 0, 0
	for _, name := range rt.FlowNames() {
		if name == "f" {
			continue
		}
		crowd++
		if rt.Flow(name).StoppedAt > 0 {
			stopped++
		}
	}
	if crowd != 4 {
		t.Fatalf("started %d crowd flows, want the full burst of 4", crowd)
	}
	if stopped == 0 {
		t.Error("no crowd flow departed despite 5 s mean holding time over 30 s")
	}
}

// TestValidateRejectsDuplicateFlowNames covers scripted flows, event
// flows, and the cross product of both.
func TestValidateRejectsDuplicateFlowNames(t *testing.T) {
	dup := New("dup", 30)
	dup.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d"})
	dup.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d"})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate scripted flow names accepted")
	}
	ev := New("dup-ev", 30)
	ev.AddFlow(FlowSpec{Name: "f", Src: "s", Dst: "d"})
	ev.Events = append(ev.Events, Event{At: 5, Kind: FlowStart, Flow: &FlowSpec{Name: "f", Src: "s", Dst: "d"}})
	if err := ev.Validate(); err == nil {
		t.Fatal("flow-start event reusing a scripted flow name accepted")
	}
	anon := New("anon", 30)
	anon.Events = append(anon.Events, Event{At: 5, Kind: FlowStart, Flow: &FlowSpec{Src: "s", Dst: "d"}})
	if err := anon.Validate(); err == nil {
		t.Fatal("nameless flow-start flow accepted")
	}
}
