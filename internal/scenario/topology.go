package scenario

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/topology"
)

// TopologySpec makes a scenario self-contained: it either names one of
// the paper's generated instances (seeded per run, so Monte-Carlo sweeps
// get fresh channel realizations) or lays out a custom network
// explicitly.
type TopologySpec struct {
	// Kind is "custom", "residential", "enterprise" or "testbed".
	Kind string `json:"kind"`
	// View selects the materialization for generated kinds and the
	// technology filter for custom kinds: "hybrid" (default), "wifi"
	// (single channel) or "wifi-dual". Scheme sweeps override it with
	// the scheme's own view.
	View string `json:"view,omitempty"`
	// Nodes and Links describe a custom topology (Kind "custom").
	Nodes []NodeSpec `json:"nodes,omitempty"`
	Links []LinkSpec `json:"links,omitempty"`
	// SenseRadius switches a custom topology from the default
	// single-domain-per-tech interference model to the range-based one:
	// two same-tech links interfere only when their endpoints come within
	// the tech's radius (metres). Techs absent from the map keep an
	// infinite radius. Spatially separated clusters then fall into
	// independent interference domains, which the sharded emulation
	// engine (-shards) exploits.
	SenseRadius map[string]float64 `json:"sense_radius,omitempty"`
}

// NodeSpec is one station of a custom topology.
type NodeSpec struct {
	Name  string   `json:"name"`
	X     float64  `json:"x"`
	Y     float64  `json:"y"`
	Techs []string `json:"techs"`
}

// LinkSpec is one connection of a custom topology.
type LinkSpec struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Tech     string  `json:"tech"`
	Capacity float64 `json:"capacity"`
	// OneWay suppresses the reverse direction (default: duplex).
	OneWay bool `json:"one_way,omitempty"`
}

func (t *TopologySpec) validate() error {
	switch t.Kind {
	case "residential", "enterprise", "testbed":
		return nil
	case "custom":
		if len(t.Nodes) == 0 || len(t.Links) == 0 {
			return fmt.Errorf("custom topology needs nodes and links")
		}
		seen := map[string]bool{}
		for i, n := range t.Nodes {
			if n.Name == "" {
				return fmt.Errorf("custom topology: node %d has no name", i)
			}
			if seen[n.Name] {
				return fmt.Errorf("custom topology: duplicate node name %q", n.Name)
			}
			seen[n.Name] = true
		}
		for i, l := range t.Links {
			if !seen[l.From] || !seen[l.To] {
				return fmt.Errorf("custom topology: link %d references unknown node (%q -> %q)", i, l.From, l.To)
			}
			if l.Capacity <= 0 {
				return fmt.Errorf("custom topology: link %d needs positive capacity", i)
			}
			if _, err := ParseTech(l.Tech); err != nil {
				return fmt.Errorf("custom topology: link %d: %w", i, err)
			}
		}
		for name, r := range t.SenseRadius {
			if _, err := ParseTech(name); err != nil {
				return fmt.Errorf("custom topology: sense_radius: %w", err)
			}
			if r <= 0 {
				return fmt.Errorf("custom topology: sense_radius[%s] must be positive, got %g", name, r)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown topology kind %q", t.Kind)
	}
}

// ParseView maps a view name to the topology view.
func ParseView(name string) (topology.View, error) {
	switch name {
	case "", "hybrid":
		return topology.ViewHybrid, nil
	case "wifi", "wifi-single":
		return topology.ViewWiFiSingle, nil
	case "wifi-dual", "mwifi":
		return topology.ViewWiFiDual, nil
	default:
		return 0, fmt.Errorf("scenario: unknown topology view %q", name)
	}
}

// Build materializes the topology with the spec's own view.
func (t *TopologySpec) Build(seed int64) (*graph.Network, error) {
	view, err := ParseView(t.View)
	if err != nil {
		return nil, err
	}
	return t.BuildView(seed, view)
}

// BuildView materializes the topology under an explicit view — the hook
// scheme sweeps use (core.Scheme.View decides the view per scheme). The
// seed fixes the channel realization of generated kinds; custom
// topologies are deterministic and ignore it.
func (t *TopologySpec) BuildView(seed int64, view topology.View) (*graph.Network, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	switch t.Kind {
	case "residential":
		return topology.Residential(stats.NewRand(seed), topology.Config{}).Build(view).Network, nil
	case "enterprise":
		return topology.Enterprise(stats.NewRand(seed), topology.Config{}).Build(view).Network, nil
	case "testbed":
		return topology.Testbed(stats.NewRand(seed), topology.Config{}).Build(view).Network, nil
	}
	return t.buildCustom(view)
}

// buildCustom assembles a custom topology under a view: hybrid keeps the
// spec as written; the WiFi views mirror topology.Instance.Build — the
// single-channel view drops non-WiFi links, the dual view clones each
// WiFi link onto a second non-interfering channel with equal capacity.
func (t *TopologySpec) buildCustom(view topology.View) (*graph.Network, error) {
	var model graph.InterferenceModel
	if len(t.SenseRadius) > 0 {
		radii := map[graph.Tech]float64{}
		for name, r := range t.SenseRadius {
			tech, err := ParseTech(name)
			if err != nil {
				return nil, err
			}
			radii[tech] = r
		}
		// The dual-WiFi view clones links onto the second channel; unless
		// the spec says otherwise, that channel senses like the first.
		if r, ok := radii[graph.TechWiFi]; ok {
			if _, explicit := radii[graph.TechWiFi2]; !explicit {
				radii[graph.TechWiFi2] = r
			}
		}
		model = graph.RangeBased{SenseRadius: radii}
	}
	b := graph.NewBuilder(model)
	ids := map[string]graph.NodeID{}
	for _, n := range t.Nodes {
		techs := make([]graph.Tech, 0, len(n.Techs)+1)
		for _, name := range n.Techs {
			tech, err := ParseTech(name)
			if err != nil {
				return nil, err
			}
			switch view {
			case topology.ViewWiFiSingle:
				if tech != graph.TechWiFi {
					continue
				}
			case topology.ViewWiFiDual:
				if tech != graph.TechWiFi {
					continue
				}
				techs = append(techs, graph.TechWiFi2)
			}
			techs = append(techs, tech)
		}
		ids[n.Name] = b.AddNode(n.Name, n.X, n.Y, techs...)
	}
	for _, l := range t.Links {
		tech, err := ParseTech(l.Tech)
		if err != nil {
			return nil, err
		}
		if view != topology.ViewHybrid && tech != graph.TechWiFi {
			continue
		}
		add := func(tech graph.Tech) {
			b.AddLink(ids[l.From], ids[l.To], tech, l.Capacity)
			if !l.OneWay {
				b.AddLink(ids[l.To], ids[l.From], tech, l.Capacity)
			}
		}
		add(tech)
		if view == topology.ViewWiFiDual && tech == graph.TechWiFi {
			add(graph.TechWiFi2)
		}
	}
	return b.Build(), nil
}
