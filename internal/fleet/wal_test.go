package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// walPayloads collects every record in the log at path.
func walPayloads(t *testing.T, path string) [][]byte {
	t.Helper()
	var got [][]byte
	w, err := OpenWAL(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.wal")
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf(`{"rec":%d,"pad":%q}`, i, bytes.Repeat([]byte{'x'}, i*7)))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if w.Records() != 50 {
		t.Fatalf("records = %d, want 50", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := walPayloads(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

// TestWALTornTailEveryOffset is the kill -9 model: a crash can leave the
// file ending at ANY byte. For every truncation point inside the last
// two records, recovery must return exactly the records that were fully
// framed before the cut, never error, never panic — and the reopened
// log must accept fresh appends that then replay cleanly.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	w, err := OpenWAL(ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	var sizes []int64
	for i := 0; i < 4; i++ {
		p := []byte(fmt.Sprintf(`{"rec":%d,"body":"%s"}`, i, bytes.Repeat([]byte{'a' + byte(i)}, 20+i)))
		recs = append(recs, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// complete(cut) = how many records survive a file of `cut` bytes.
	complete := func(cut int64) int {
		n := 0
		for _, s := range sizes {
			if cut >= s {
				n++
			}
		}
		return n
	}

	for cut := sizes[1]; cut <= sizes[3]; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := walPayloads(t, path)
		if len(got) != complete(cut) {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), complete(cut))
		}
		for i := range got {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut at %d: record %d corrupted on recovery", cut, i)
			}
		}
		// The torn tail must be gone: a reopen + append + replay cycle
		// yields the surviving prefix plus the new record.
		w2, err := OpenWAL(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Append([]byte(`{"rec":"appended"}`)); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		again := walPayloads(t, path)
		if len(again) != complete(cut)+1 {
			t.Fatalf("cut at %d: after append, %d records, want %d", cut, len(again), complete(cut)+1)
		}
		if !bytes.Equal(again[len(again)-1], []byte(`{"rec":"appended"}`)) {
			t.Fatalf("cut at %d: appended record lost", cut)
		}
		os.Remove(path)
	}
}

// TestWALCorruptTail flips bits in the last record's payload and header:
// recovery keeps the intact prefix and drops the damaged record.
func TestWALCorruptTail(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	w, err := OpenWAL(ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf(`{"rec":%d}`, i))); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at every offset inside the final record's frame.
	for off := sizes[1]; off < sizes[2]; off++ {
		data := append([]byte(nil), full...)
		data[off] ^= 0x40
		path := filepath.Join(dir, "corrupt.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got := walPayloads(t, path)
		// A flipped length byte may also be caught as a nonsense frame;
		// either way exactly the two intact records must survive.
		if len(got) != 2 {
			t.Fatalf("corrupt byte at %d: recovered %d records, want 2", off, len(got))
		}
		os.Remove(path)
	}
}

// TestWALGarbageFile feeds pure noise: recovery finds zero records and
// the file becomes a usable empty log.
func TestWALGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noise.wal")
	noise := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}, 100)
	if err := os.WriteFile(path, noise, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := walPayloads(t, path); len(got) != 0 {
		t.Fatalf("recovered %d records from noise", len(got))
	}
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := walPayloads(t, path); len(got) != 1 {
		t.Fatalf("post-recovery append: %d records, want 1", len(got))
	}
}

func TestWALRejectsBadAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.wal")
	w, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err == nil {
		t.Error("append after close accepted")
	}
}
