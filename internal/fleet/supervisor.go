package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// SupervisorConfig tunes the worker pool and its failure policy.
type SupervisorConfig struct {
	// Workers bounds each sweep's replication pool (<= 0: GOMAXPROCS).
	// Determinism makes this a pure throughput knob: results are
	// byte-identical at any worker count.
	Workers int
	// MaxRetries is how many times a failed/timed-out/panicked
	// replication is retried before the whole sweep fails (default 2,
	// so 3 attempts; a pure function of the seed will fail the same way
	// every time unless the failure was environmental — timeouts,
	// memory pressure — which is exactly what retries are for).
	MaxRetries int
	// RepTimeout bounds one replication attempt's wall clock (0: no
	// timeout). The emulation cannot be preempted mid-event-loop, so a
	// timed-out attempt is abandoned to finish in the background while
	// the supervisor moves on; its late result is discarded.
	RepTimeout time.Duration
	// BackoffBase/BackoffMax shape the exponential retry backoff:
	// base·2^(attempt-1) capped at max, with ±50% uniform jitter so
	// co-failing replications don't retry in lockstep (defaults 100ms /
	// 5s). Backoff timing never touches result bytes — replication
	// outputs are pure functions of (spec, seed, index).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RepDelay injects a fixed sleep before every replication attempt —
	// a fault-injection/testing aid (it widens the window in which a
	// crash catches a sweep mid-flight) in the spirit of the scenario
	// fuzzer's -inject modes. Zero in production.
	RepDelay time.Duration
	// Log receives supervision events (retries, timeouts, sweep
	// transitions); nil silences them.
	Log *log.Logger
}

func (c SupervisorConfig) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 2
	}
	return c.MaxRetries
}

func (c SupervisorConfig) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.BackoffBase
}

func (c SupervisorConfig) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 5 * time.Second
	}
	return c.BackoffMax
}

// backoff returns the sleep before retry `attempt` (1-based):
// exponential with ±50% jitter, capped.
func (c SupervisorConfig) backoff(attempt int) time.Duration {
	d := c.backoffBase() << uint(attempt-1)
	if max := c.backoffMax(); d > max || d <= 0 {
		d = max
	}
	// Uniform in [d/2, 3d/2): full-jitter's tamer cousin — enough to
	// decorrelate retry storms, small enough to keep tests brisk.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Supervisor executes queued sweeps one at a time on a replication
// worker pool, checkpointing every completion through the store and
// surviving per-replication faults: a poisoned replication is retried
// with backoff and, if it keeps failing, fails its sweep — never the
// daemon.
type Supervisor struct {
	st  *Store
	cfg SupervisorConfig
	// agg is the daemon-level aggregator (/metrics): queue depth,
	// reps/sec, retry/timeout/panic/restart counters.
	agg *obs.Aggregator

	mu       sync.Mutex
	resumed  int // sweeps resumed from a previous process's checkpoint
	finished int

	// wrapJob, when non-nil, wraps every sweep's replication job — the
	// test seam fault-injection uses to make replications fail, hang,
	// or panic on demand without touching the experiment code.
	wrapJob func(runner.Job[*experiments.ChurnRepOut]) runner.Job[*experiments.ChurnRepOut]
}

// NewSupervisor wires a supervisor over a store; agg receives the
// daemon-level series (it may be shared with the gateway's /metrics).
func NewSupervisor(st *Store, cfg SupervisorConfig, agg *obs.Aggregator) *Supervisor {
	return &Supervisor{st: st, cfg: cfg, agg: agg}
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// Run executes sweeps until ctx is done, then drains: the in-flight
// replications of the current sweep finish and checkpoint, nothing new
// starts, and Run returns. A partially executed sweep stays resumable —
// its next run (this process or the next) starts from the completed set.
func (s *Supervisor) Run(ctx context.Context) {
	for {
		s.sampleDaemon()
		sw, ok := s.st.NextPending(ctx)
		if !ok {
			return
		}
		s.runSweep(ctx, sw)
	}
}

// runSweep executes one sweep from its checkpoint to a terminal state,
// or to a drain point.
func (s *Supervisor) runSweep(ctx context.Context, sw *Sweep) {
	done := sw.doneSnapshot()
	if done.Count() > 0 {
		s.mu.Lock()
		s.resumed++
		s.mu.Unlock()
		s.logf("fleet: resuming sweep %s from %d/%d completed replications",
			sw.ID, done.Count(), sw.Spec.Total)
	} else {
		s.logf("fleet: starting sweep %s (%d replications)", sw.ID, sw.Spec.Total)
	}

	sweepCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	sw.mu.Lock()
	sw.cancel = cancel
	sw.mu.Unlock()

	ccfg := sw.Spec.churnConfig()
	ccfg.Parallel = s.cfg.Workers
	ccfg.Metrics = sw.Agg
	rs := obs.NewRunnerStats(runner.PoolSize(s.cfg.Workers))
	jobTime := func(d time.Duration) {
		rs.JobTime(d)
		sw.Agg.With(rs.Sample)
	}

	job := experiments.ChurnRepJob(sw.Spec.Scenario, ccfg)
	if s.wrapJob != nil {
		job = s.wrapJob(job)
	}
	supervised := func(repCtx context.Context, rep runner.Rep) (*experiments.ChurnRepOut, error) {
		out, err := s.superviseRep(repCtx, sw, job, rep)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(out)
		if err != nil {
			return nil, fmt.Errorf("replication %d: encode output: %w", rep.Index, err)
		}
		// Durability before acknowledgement: the rep record hits the
		// fsync'd WAL before the runner counts the replication done.
		if err := s.st.CompleteRep(sw, rep.Index, raw); err != nil {
			return nil, fmt.Errorf("replication %d: checkpoint: %w", rep.Index, err)
		}
		s.sampleDaemon()
		return out, nil
	}

	_, err := runner.RunFrom(sweepCtx, sw.Spec.Total, done,
		runner.Config{Workers: s.cfg.Workers, BaseSeed: sw.Spec.Seed, OnJobTime: jobTime},
		supervised)

	s.mu.Lock()
	s.finished++
	s.mu.Unlock()

	switch {
	case err == nil:
		if ferr := s.st.Finish(sw, StateDone, ""); ferr != nil {
			s.logf("fleet: sweep %s: recording completion: %v", sw.ID, ferr)
		}
		s.logf("fleet: sweep %s done (%d replications)", sw.ID, sw.Spec.Total)
	case errors.Is(context.Cause(sweepCtx), errSweepCancelled):
		s.st.Finish(sw, StateCancelled, "cancelled while running")
		s.logf("fleet: sweep %s cancelled", sw.ID)
	case ctx.Err() != nil:
		// Drain: every checkpointed replication is durable; if the last
		// in-flight ones actually completed the set, close the sweep out
		// now rather than leaving a fully-computed sweep "pending".
		if sw.doneSnapshot().Count() == sw.Spec.Total {
			s.st.Finish(sw, StateDone, "")
			s.logf("fleet: sweep %s completed during drain", sw.ID)
			return
		}
		s.st.Finish(sw, StatePending, "")
		s.logf("fleet: drain: sweep %s checkpointed at %d/%d replications",
			sw.ID, sw.doneSnapshot().Count(), sw.Spec.Total)
	default:
		s.st.Finish(sw, StateFailed, err.Error())
		s.logf("fleet: sweep %s failed: %v", sw.ID, err)
	}
	s.sampleDaemon()
}

// superviseRep runs one replication with panic isolation, a per-attempt
// timeout, and bounded retries with exponential backoff + jitter.
func (s *Supervisor) superviseRep(ctx context.Context, sw *Sweep, job runner.Job[*experiments.ChurnRepOut], rep runner.Rep) (*experiments.ChurnRepOut, error) {
	maxRetries := s.cfg.maxRetries()
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if attempt > 0 {
			sw.mu.Lock()
			sw.retries++
			sw.mu.Unlock()
			s.bumpCounter("fleet_rep_retries_total", "replication retry attempts")
			delay := s.cfg.backoff(attempt)
			s.logf("fleet: sweep %s replication %d: attempt %d/%d after %v (last error: %v)",
				sw.ID, rep.Index, attempt+1, maxRetries+1, delay.Round(time.Millisecond), lastErr)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		out, err := s.attemptRep(ctx, sw, job, rep)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("replication %d failed after %d attempts: %w",
		rep.Index, maxRetries+1, lastErr)
}

// attemptRep is a single supervised attempt: the job runs on its own
// goroutine so a panic is contained and a timeout can abandon it.
func (s *Supervisor) attemptRep(ctx context.Context, sw *Sweep, job runner.Job[*experiments.ChurnRepOut], rep runner.Rep) (*experiments.ChurnRepOut, error) {
	type result struct {
		out *experiments.ChurnRepOut
		err error
	}
	// Buffered so an abandoned (timed-out) attempt can still deposit
	// its late result and exit instead of leaking a blocked goroutine.
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				sw.mu.Lock()
				sw.panics++
				sw.mu.Unlock()
				s.bumpCounter("fleet_rep_panics_total", "replication panics isolated by the supervisor")
				ch <- result{nil, fmt.Errorf("replication %d panicked: %v\n%s", rep.Index, r, debug.Stack())}
			}
		}()
		if s.cfg.RepDelay > 0 {
			time.Sleep(s.cfg.RepDelay)
		}
		out, err := job(ctx, rep)
		ch <- result{out, err}
	}()

	if s.cfg.RepTimeout <= 0 {
		r := <-ch
		return r.out, r.err
	}
	timer := time.NewTimer(s.cfg.RepTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-timer.C:
		sw.mu.Lock()
		sw.timeouts++
		sw.mu.Unlock()
		s.bumpCounter("fleet_rep_timeouts_total", "replication attempts abandoned on timeout")
		return nil, fmt.Errorf("replication %d timed out after %v", rep.Index, s.cfg.RepTimeout)
	}
}

// bumpCounter increments a daemon-level counter series.
func (s *Supervisor) bumpCounter(name, help string) {
	if s.agg == nil {
		return
	}
	s.agg.With(func(r *obs.Registry) {
		r.Counter(name, help).Inc()
	})
}

// sampleDaemon refreshes the daemon-level gauges: queue depth, sweep
// states, WAL size. Counters for retries/timeouts/panics are bumped at
// their sites; everything here is a snapshot.
func (s *Supervisor) sampleDaemon() {
	if s.agg == nil {
		return
	}
	statuses := s.st.List()
	byState := map[string]int{}
	var completed int
	for _, st := range statuses {
		byState[st.State]++
		completed += st.Completed
	}
	records, bytes := s.st.WALStats()
	s.mu.Lock()
	resumed, finished := s.resumed, s.finished
	s.mu.Unlock()
	s.agg.With(func(r *obs.Registry) {
		r.Gauge("fleet_queue_depth", "sweeps queued and not yet running").
			Set(float64(s.st.QueueDepth()))
		for _, state := range []SweepState{StatePending, StateRunning, StateDone, StateFailed, StateCancelled} {
			r.Gauge("fleet_sweeps", "sweeps by lifecycle state",
				obs.Label{Key: "state", Value: string(state)}).
				Set(float64(byState[string(state)]))
		}
		r.Counter("fleet_reps_completed_total", "replications completed and checkpointed").
			Set(float64(completed))
		r.Counter("fleet_sweeps_resumed_total", "sweeps resumed from a prior process's checkpoint").
			Set(float64(resumed))
		r.Counter("fleet_sweep_runs_total", "sweep executions finished (any outcome)").
			Set(float64(finished))
		r.Gauge("fleet_wal_records", "durable WAL records").Set(float64(records))
		r.Gauge("fleet_wal_bytes", "durable WAL bytes").Set(float64(bytes))
	})
}
