package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
)

// Gateway is the HTTP/JSON surface of the daemon:
//
//	POST   /sweeps               submit a sweep spec (strict schema)
//	GET    /sweeps               list sweep statuses
//	GET    /sweeps/{id}          one sweep's status
//	GET    /sweeps/{id}/results  final results (done sweeps), or a live
//	                             SSE stream with ?stream=1 / Accept:
//	                             text/event-stream
//	GET    /sweeps/{id}/metrics  the sweep's own Prometheus snapshot
//	DELETE /sweeps/{id}          cancel (queued or running)
//	GET    /metrics              daemon + all sweeps, Prometheus text
//	GET    /healthz              liveness
//
// Backpressure: when the pending queue is at its bound, POST /sweeps
// answers 429 with a Retry-After header instead of accepting work the
// daemon cannot hold. Bad specs answer 400 with a structured
// {"error":{"field","reason"}} body.
type Gateway struct {
	st  *Store
	agg *obs.Aggregator
	mux *http.ServeMux
}

// NewGateway builds the HTTP handler over a store; agg is the
// daemon-level aggregator merged into /metrics alongside every sweep's.
func NewGateway(st *Store, agg *obs.Aggregator) *Gateway {
	g := &Gateway{st: st, agg: agg, mux: http.NewServeMux()}
	g.mux.HandleFunc("POST /sweeps", g.handleSubmit)
	g.mux.HandleFunc("GET /sweeps", g.handleList)
	g.mux.HandleFunc("GET /sweeps/{id}", g.handleStatus)
	g.mux.HandleFunc("GET /sweeps/{id}/results", g.handleResults)
	g.mux.HandleFunc("GET /sweeps/{id}/metrics", g.handleSweepMetrics)
	g.mux.HandleFunc("DELETE /sweeps/{id}", g.handleCancel)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`+"\n")
	})
	return g
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// errorBody is every non-2xx JSON response: a human line plus the
// structured field error when the failure is a spec rejection.
type errorBody struct {
	Error struct {
		Message string `json:"message"`
		Field   string `json:"field,omitempty"`
		Reason  string `json:"reason,omitempty"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	var b errorBody
	b.Error.Message = msg
	writeJSON(w, code, b)
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	sw, err := g.st.Submit(body)
	if err != nil {
		var spec *SpecError
		switch {
		case errors.As(err, &spec):
			var b errorBody
			b.Error.Message = "sweep spec rejected"
			b.Error.Field = spec.Field
			b.Error.Reason = spec.Reason
			writeJSON(w, http.StatusBadRequest, b)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "pending sweep queue is full; retry later")
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, sw.Status())
}

func (g *Gateway) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sweeps []Status `json:"sweeps"`
	}{g.st.List()})
}

// sweep resolves {id} or answers 404.
func (g *Gateway) sweep(w http.ResponseWriter, r *http.Request) (*Sweep, bool) {
	id := r.PathValue("id")
	sw, ok := g.st.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no sweep %q", id))
		return nil, false
	}
	return sw, true
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sw, ok := g.sweep(w, r); ok {
		writeJSON(w, http.StatusOK, sw.Status())
	}
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweep(w, r)
	if !ok {
		return
	}
	accepted, err := g.st.Cancel(sw)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !accepted {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("sweep %s is already %s", sw.ID, sw.State()))
		return
	}
	writeJSON(w, http.StatusAccepted, sw.Status())
}

func (g *Gateway) handleResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweep(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("stream") != "" || r.Header.Get("Accept") == "text/event-stream" {
		g.streamResults(w, r, sw)
		return
	}
	switch sw.State() {
	case StateDone:
		data, err := sw.Results()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		w.Write([]byte("\n"))
	case StateFailed, StateCancelled:
		writeError(w, http.StatusConflict,
			fmt.Sprintf("sweep %s is %s; no results", sw.ID, sw.State()))
	default:
		// Not finished: point the client at the terminal states or the
		// stream, and include progress so dumb pollers can just loop.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, sw.Status())
	}
}

// streamResults is the SSE path: every completed replication (replayed
// from the checkpoint first, then live) as an `event: rep`, then one
// terminal event — `done` carrying the full merged results document,
// or `failed`/`cancelled` carrying the status. The response is chunked
// and flushed per event, so a consumer sees replications as they land.
func (g *Gateway) streamResults(w http.ResponseWriter, r *http.Request, sw *Sweep) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}

	cursor := 0
	for {
		changed, n, state := sw.Watch()
		for ; cursor < n; cursor++ {
			idx, out := sw.CompletedAt(cursor)
			payload, _ := json.Marshal(struct {
				Index int             `json:"index"`
				Out   json.RawMessage `json:"out"`
			}{idx, out})
			send("rep", payload)
		}
		switch state {
		case StateDone:
			data, err := sw.Results()
			if err != nil {
				payload, _ := json.Marshal(map[string]string{"error": err.Error()})
				send("error", payload)
				return
			}
			send("done", data)
			return
		case StateFailed, StateCancelled:
			payload, _ := json.Marshal(sw.Status())
			send(string(state), payload)
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (g *Gateway) handleSweepMetrics(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweep(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sw.Agg.WritePrometheus(w)
}

// handleMetrics renders one merged snapshot: the daemon-level series
// plus every sweep's aggregator folded in with the registry's
// commutative merge — so /metrics stays a single well-formed Prometheus
// document (no duplicate series) while still reflecting each sweep's
// per-replication samples.
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snapshot := obs.NewRegistry()
	if g.agg != nil {
		g.agg.With(func(r *obs.Registry) { snapshot.Merge(r) })
	}
	st := g.st.List()
	for _, status := range st {
		if sw, ok := g.st.Get(status.ID); ok {
			sw.Agg.With(func(r *obs.Registry) { snapshot.Merge(r) })
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snapshot.WritePrometheus(w)
}
