package fleet

// Crash e2e: the tests here re-exec the test binary as a real daemon
// process (TestMain intercepts the child via environment variables),
// kill it — SIGKILL mid-sweep for the crash test, SIGTERM for the
// drain test — and verify the contract on the survivor WAL: a restart
// resumes from the checkpoint and produces results byte-identical to
// an uninterrupted run, and a drain exits 0 with the checkpoint intact.

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if wal := os.Getenv("FLEET_HELPER_WAL"); wal != "" {
		runHelperDaemon(wal)
		return
	}
	os.Exit(m.Run())
}

// runHelperDaemon is the child-process body: a real fleet daemon on a
// kernel-assigned port, with the listen address published through a
// rename (so the parent never reads a half-written file). It exits 0
// after a graceful drain — the exit code the SIGTERM test asserts.
func runHelperDaemon(wal string) {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "fleet helper:", err)
		os.Exit(1)
	}
	repDelay, _ := time.ParseDuration(os.Getenv("FLEET_HELPER_REPDELAY"))
	srv, err := New(Config{
		WALPath:  wal,
		Workers:  2,
		RepDelay: repDelay,
		Log:      log.New(os.Stderr, "fleet helper: ", 0),
	})
	if err != nil {
		die(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(err)
	}
	addrFile := os.Getenv("FLEET_HELPER_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		die(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		die(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, ln); err != nil {
		die(err)
	}
	os.Exit(0)
}

// startHelper launches the daemon child and waits for it to serve.
func startHelper(t *testing.T, wal, repDelay string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"FLEET_HELPER_WAL="+wal,
		"FLEET_HELPER_ADDRFILE="+addrFile,
		"FLEET_HELPER_REPDELAY="+repDelay)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if addr, err := os.ReadFile(addrFile); err == nil {
			base := "http://" + string(addr)
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				return cmd, base
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("helper daemon never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetCrashRecovery is the headline robustness test: SIGKILL the
// daemon mid-sweep (no drain, no flush beyond the per-replication
// fsync), restart it on the same WAL, and require the finished sweep's
// results to be byte-identical to an uninterrupted in-process run —
// with the resume visible in /metrics.
func TestFleetCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and runs real replications")
	}
	spec := testSpecJSON(4, 17, "EMPoWER,SP-w/o-CC") // 8 reps
	want := referenceResults(t, spec)
	wal := filepath.Join(t.TempDir(), "fleet.wal")

	// Phase 1: daemon with slowed replications; kill -9 once the WAL
	// holds a partial checkpoint.
	cmd1, base1 := startHelper(t, wal, "40ms")
	st, resp := postSweep(t, base1, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := getStatus(t, base1, st.ID)
		if cur.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint before kill (state %s)", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no handler runs
		t.Fatal(err)
	}
	cmd1.Wait()

	// The WAL alone must carry the checkpoint. Peek at it (read-only
	// replay) to pin down how much work the crash preserved.
	peek, err := OpenStore(wal, 0)
	if err != nil {
		t.Fatalf("WAL unreadable after kill -9: %v", err)
	}
	sw, ok := peek.Get(st.ID)
	if !ok {
		t.Fatal("sweep lost by kill -9")
	}
	atCrash := sw.doneSnapshot().Count()
	peek.Close()
	if atCrash == 0 {
		t.Fatal("kill -9 lost every acknowledged replication")
	}
	t.Logf("crash preserved %d/8 replications", atCrash)

	// Phase 2: restart on the same WAL; the sweep must finish to
	// byte-identical results.
	cmd2, base2 := startHelper(t, wal, "")
	fin := waitState(t, base2, st.ID, StateDone, 120*time.Second)
	if fin.Completed != 8 {
		t.Fatalf("resumed sweep completed %d/8", fin.Completed)
	}
	got := getResults(t, base2, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash results differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mbuf.Bytes(), []byte("fleet_sweeps_resumed_total 1")) {
		t.Errorf("/metrics does not report the resume:\n%s", mbuf.String())
	}

	// Drain the survivor; after a completed sweep it must exit 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("drained daemon exited non-zero: %v", err)
	}
}

// TestFleetSigtermDrain: SIGTERM mid-sweep is a graceful drain — the
// daemon finishes in-flight replications, checkpoints, and exits 0;
// the WAL holds a resumable partial sweep.
func TestFleetSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and runs real replications")
	}
	wal := filepath.Join(t.TempDir(), "fleet.wal")
	cmd, base := startHelper(t, wal, "60ms")
	st, _ := postSweep(t, base, testSpecJSON(6, 23, "EMPoWER,SP-w/o-CC")) // 12 reps
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, base, st.ID).Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no replication completed before drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited non-zero: %v", err)
	}

	store, err := OpenStore(wal, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sw, ok := store.Get(st.ID)
	if !ok {
		t.Fatal("sweep lost by drain")
	}
	n := sw.doneSnapshot().Count()
	if n == 0 {
		t.Fatal("drain checkpointed nothing")
	}
	if n < 12 {
		if sw.State() != StatePending {
			t.Fatalf("partial sweep replayed as %s, want pending (resumable)", sw.State())
		}
		if store.QueueDepth() != 1 {
			t.Fatalf("partial sweep not requeued (depth %d)", store.QueueDepth())
		}
	} else if sw.State() != StateDone {
		t.Fatalf("complete sweep replayed as %s", sw.State())
	}
	t.Logf("drain checkpointed %d/12 replications", n)
}
