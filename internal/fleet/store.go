package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// SweepState is a sweep's lifecycle position. Pending and Running are
// volatile (a restart demotes Running to Pending — the WAL holds no
// "running" records because a crash can interleave with any of them);
// Done, Failed and Cancelled are terminal and logged.
type SweepState string

// Sweep lifecycle states.
const (
	StatePending   SweepState = "pending"
	StateRunning   SweepState = "running"
	StateDone      SweepState = "done"
	StateFailed    SweepState = "failed"
	StateCancelled SweepState = "cancelled"
)

func (s SweepState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// walRecord is the single WAL payload schema, a tagged union:
//
//   - kind "sweep": a submission — ID plus the raw spec bytes.
//   - kind "rep":   one completed replication — ID, index, output JSON.
//   - kind "state": a terminal transition — ID, state, optional error.
//
// Replay folds records in append order; unknown IDs and out-of-range
// indices are skipped (a truncated log can legally lose a submission's
// later records, never the reverse).
type walRecord struct {
	Kind  string          `json:"kind"`
	ID    string          `json:"id"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Rep   int             `json:"rep,omitempty"`
	Out   json.RawMessage `json:"out,omitempty"`
	State SweepState      `json:"state,omitempty"`
	Error string          `json:"error,omitempty"`
}

// Sweep is one submitted sweep's full state. Mutations go through the
// Store so they hit the WAL first; reads snapshot under the sweep mutex.
type Sweep struct {
	ID   string
	Spec *SweepSpec
	// Agg aggregates this sweep's per-replication metric registries —
	// the per-sweep obs.Aggregator the gateway mounts on /metrics and
	// /sweeps/{id}/metrics.
	Agg *obs.Aggregator

	mu    sync.Mutex
	state SweepState
	done  *runner.RepSet
	// outs[i] is replication i's serialized ChurnRepOut ("" until
	// completed). Results are always merged from these bytes — never
	// from live in-memory values — so an uninterrupted sweep and a
	// resumed one share one code path and one output byte stream.
	outs []json.RawMessage
	// order lists completed indices in completion order; SSE streams
	// replay it through subscriber cursors.
	order   []int
	errMsg  string
	retries int
	timeouts int
	panics  int
	// changed is closed (and replaced) on every mutation — a broadcast
	// primitive for streaming watchers.
	changed chan struct{}
	// cancel aborts the in-flight execution (set by the supervisor
	// while the sweep runs).
	cancel context.CancelCauseFunc
	// final caches the merged results JSON once the sweep is done.
	final []byte
}

func newSweep(id string, spec *SweepSpec) *Sweep {
	return &Sweep{
		ID:      id,
		Spec:    spec,
		Agg:     obs.NewAggregator(),
		state:   StatePending,
		done:    runner.NewRepSet(spec.Total),
		outs:    make([]json.RawMessage, spec.Total),
		changed: make(chan struct{}),
	}
}

func (sw *Sweep) notifyLocked() {
	close(sw.changed)
	sw.changed = make(chan struct{})
}

// Watch returns a channel closed on the next mutation plus the current
// completion cursor and state — the streaming handler's wait primitive.
func (sw *Sweep) Watch() (<-chan struct{}, int, SweepState) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.changed, len(sw.order), sw.state
}

// CompletedAt returns the i'th completed replication (completion order)
// as (index, output bytes).
func (sw *Sweep) CompletedAt(i int) (int, json.RawMessage) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	idx := sw.order[i]
	return idx, sw.outs[idx]
}

// Status is the gateway's sweep summary.
type Status struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Retries   int    `json:"retries"`
	Timeouts  int    `json:"timeouts"`
	Panics    int    `json:"panics"`
	Error     string `json:"error,omitempty"`
}

// Status snapshots the sweep.
func (sw *Sweep) Status() Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return Status{
		ID:        sw.ID,
		Name:      sw.Spec.Name,
		State:     string(sw.state),
		Total:     sw.Spec.Total,
		Completed: sw.done.Count(),
		Retries:   sw.retries,
		Timeouts:  sw.timeouts,
		Panics:    sw.panics,
		Error:     sw.errMsg,
	}
}

// State returns the current lifecycle state.
func (sw *Sweep) State() SweepState {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// doneSnapshot copies the completed set — RunFrom's starting point.
func (sw *Sweep) doneSnapshot() *runner.RepSet {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	s := runner.NewRepSet(sw.Spec.Total)
	for i := 0; i < sw.Spec.Total; i++ {
		if sw.done.Has(i) {
			s.Add(i)
		}
	}
	return s
}

// Results merges the persisted replication outputs into the final sweep
// result and returns its JSON encoding. Only legal once the sweep is
// done; the merge reads exclusively the WAL-persisted bytes, making
// "resumed" vs "uninterrupted" indistinguishable by construction.
func (sw *Sweep) Results() ([]byte, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.final != nil {
		return sw.final, nil
	}
	if sw.state != StateDone {
		return nil, fmt.Errorf("fleet: sweep %s is %s, results need state done", sw.ID, sw.state)
	}
	outs := make([]*experiments.ChurnRepOut, sw.Spec.Total)
	for i, raw := range sw.outs {
		if len(raw) == 0 {
			return nil, fmt.Errorf("fleet: sweep %s done but replication %d has no output", sw.ID, i)
		}
		var out experiments.ChurnRepOut
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("fleet: sweep %s replication %d: decode: %w", sw.ID, i, err)
		}
		outs[i] = &out
	}
	res := experiments.MergeChurnReps(sw.Spec.Scenario.Name, sw.Spec.churnConfig(), outs)
	data, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("fleet: sweep %s: encode results: %w", sw.ID, err)
	}
	sw.final = data
	return data, nil
}

// Store is the durable sweep registry: every mutation is WAL-appended
// before it is applied in memory, and OpenStore rebuilds the identical
// state from the log. The pending queue lives here too, so recovery and
// live submission share one path.
type Store struct {
	mu     sync.Mutex
	wal    *WAL
	sweeps map[string]*Sweep
	byAge  []*Sweep // submission order
	seq    int
	// pending is the FIFO of sweeps awaiting execution; wake nudges the
	// supervisor without holding the lock.
	pending []*Sweep
	wake    chan struct{}
	// QueueBound caps len(pending) for live submissions (recovery is
	// exempt: a restart must never drop previously accepted work).
	QueueBound int
}

// ErrQueueFull is returned by Submit when the pending queue is at its
// bound; the gateway maps it to 429 + Retry-After.
var ErrQueueFull = fmt.Errorf("fleet: pending sweep queue is full")

// DefaultQueueBound caps the pending queue when Config.QueueBound is 0.
const DefaultQueueBound = 64

// OpenStore opens the WAL at path, replays it into a fresh store, and
// re-queues every non-terminal sweep for resumption in submission order.
func OpenStore(path string, queueBound int) (*Store, error) {
	if queueBound <= 0 {
		queueBound = DefaultQueueBound
	}
	st := &Store{
		sweeps:     map[string]*Sweep{},
		wake:       make(chan struct{}, 1),
		QueueBound: queueBound,
	}
	wal, err := OpenWAL(path, st.replay)
	if err != nil {
		return nil, err
	}
	st.wal = wal
	for _, sw := range st.byAge {
		if !sw.State().terminal() {
			st.pending = append(st.pending, sw)
		}
	}
	return st, nil
}

// replay folds one WAL record into the store during OpenStore.
func (st *Store) replay(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		// An intact frame with an undecodable payload means the record
		// schema moved underneath an old log; surface it rather than
		// silently dropping acknowledged state.
		return fmt.Errorf("fleet: wal record decode: %w", err)
	}
	switch rec.Kind {
	case "sweep":
		spec, err := ParseSpec(rec.Spec)
		if err != nil {
			// The spec was valid when acknowledged; if it no longer
			// parses the schema drifted. Keep the sweep visible as
			// failed instead of resurrecting it wrong or dying.
			spec = &SweepSpec{Raw: append([]byte(nil), rec.Spec...), Total: 0}
			sw := newSweep(rec.ID, spec)
			sw.state = StateFailed
			sw.errMsg = fmt.Sprintf("spec no longer parses after restart: %v", err)
			st.sweeps[rec.ID] = sw
			st.byAge = append(st.byAge, sw)
			st.bumpSeq(rec.ID)
			return nil
		}
		sw := newSweep(rec.ID, spec)
		st.sweeps[rec.ID] = sw
		st.byAge = append(st.byAge, sw)
		st.bumpSeq(rec.ID)
	case "rep":
		sw := st.sweeps[rec.ID]
		if sw == nil || rec.Rep < 0 || rec.Rep >= sw.Spec.Total || len(rec.Out) == 0 {
			return nil
		}
		sw.mu.Lock()
		if !sw.done.Has(rec.Rep) {
			sw.done.Add(rec.Rep)
			sw.outs[rec.Rep] = append(json.RawMessage(nil), rec.Out...)
			sw.order = append(sw.order, rec.Rep)
		}
		sw.mu.Unlock()
	case "state":
		sw := st.sweeps[rec.ID]
		if sw == nil || !rec.State.terminal() {
			return nil
		}
		sw.mu.Lock()
		sw.state = rec.State
		sw.errMsg = rec.Error
		sw.mu.Unlock()
	}
	return nil
}

// bumpSeq keeps the ID counter above every replayed ID so restarts
// never reuse one.
func (st *Store) bumpSeq(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "sweep-%d", &n); err == nil && n > st.seq {
		st.seq = n
	}
}

// appendRecord WAL-appends one record.
func (st *Store) appendRecord(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: wal record encode: %w", err)
	}
	return st.wal.Append(payload)
}

// Submit validates raw spec bytes, makes the submission durable, and
// queues the sweep. The spec is rejected with *SpecError on schema or
// validation failures and with ErrQueueFull under backpressure.
func (st *Store) Submit(raw []byte) (*Sweep, error) {
	spec, err := ParseSpec(raw)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.pending) >= st.QueueBound {
		return nil, ErrQueueFull
	}
	st.seq++
	id := fmt.Sprintf("sweep-%06d", st.seq)
	if err := st.appendRecord(walRecord{Kind: "sweep", ID: id, Spec: spec.Raw}); err != nil {
		st.seq--
		return nil, err
	}
	sw := newSweep(id, spec)
	st.sweeps[id] = sw
	st.byAge = append(st.byAge, sw)
	st.pending = append(st.pending, sw)
	st.wakeSupervisor()
	return sw, nil
}

func (st *Store) wakeSupervisor() {
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// NextPending blocks until a sweep is ready to run (marking it running)
// or ctx is done. Cancelled-while-queued sweeps are skipped.
func (st *Store) NextPending(ctx context.Context) (*Sweep, bool) {
	for {
		st.mu.Lock()
		for len(st.pending) > 0 {
			sw := st.pending[0]
			st.pending = st.pending[1:]
			sw.mu.Lock()
			runnable := sw.state == StatePending
			if runnable {
				sw.state = StateRunning
				sw.notifyLocked()
			}
			sw.mu.Unlock()
			if runnable {
				st.mu.Unlock()
				return sw, true
			}
		}
		st.mu.Unlock()
		select {
		case <-st.wake:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// QueueDepth returns the number of queued (not yet running) sweeps.
func (st *Store) QueueDepth() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.pending)
}

// Get returns a sweep by ID.
func (st *Store) Get(id string) (*Sweep, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sw, ok := st.sweeps[id]
	return sw, ok
}

// List snapshots every sweep's status in submission order.
func (st *Store) List() []Status {
	st.mu.Lock()
	sweeps := append([]*Sweep(nil), st.byAge...)
	st.mu.Unlock()
	out := make([]Status, 0, len(sweeps))
	for _, sw := range sweeps {
		out = append(out, sw.Status())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CompleteRep makes one replication's output durable and visible. It is
// called from worker goroutines; the WAL serializes appends internally.
func (st *Store) CompleteRep(sw *Sweep, idx int, out []byte) error {
	if err := st.appendRecord(walRecord{Kind: "rep", ID: sw.ID, Rep: idx, Out: out}); err != nil {
		return err
	}
	sw.mu.Lock()
	if !sw.done.Has(idx) {
		sw.done.Add(idx)
		sw.outs[idx] = append(json.RawMessage(nil), out...)
		sw.order = append(sw.order, idx)
		sw.notifyLocked()
	}
	sw.mu.Unlock()
	return nil
}

// Finish logs and applies a terminal transition. Demote (state
// StatePending) is the drain path: in-memory only, nothing logged.
func (st *Store) Finish(sw *Sweep, state SweepState, errMsg string) error {
	if state.terminal() {
		if err := st.appendRecord(walRecord{Kind: "state", ID: sw.ID, State: state, Error: errMsg}); err != nil {
			return err
		}
	}
	sw.mu.Lock()
	sw.state = state
	sw.errMsg = errMsg
	sw.cancel = nil
	sw.notifyLocked()
	sw.mu.Unlock()
	return nil
}

// Cancel requests cancellation: queued sweeps transition immediately,
// running sweeps get their execution context cancelled (the supervisor
// then records the terminal state). Terminal sweeps return false.
func (st *Store) Cancel(sw *Sweep) (bool, error) {
	sw.mu.Lock()
	state := sw.state
	cancel := sw.cancel
	sw.mu.Unlock()
	switch state {
	case StatePending:
		return true, st.Finish(sw, StateCancelled, "cancelled while queued")
	case StateRunning:
		if cancel != nil {
			cancel(errSweepCancelled)
		}
		return true, nil
	default:
		return false, nil
	}
}

// errSweepCancelled is the cancellation cause DELETE injects, letting
// the supervisor distinguish "user cancelled" from "daemon draining".
var errSweepCancelled = fmt.Errorf("fleet: sweep cancelled")

// Close closes the WAL; in-flight appends fail afterwards.
func (st *Store) Close() error {
	return st.wal.Close()
}

// WALStats reports (records, bytes) for metrics.
func (st *Store) WALStats() (int, int64) {
	return st.wal.Records(), st.wal.Size()
}
