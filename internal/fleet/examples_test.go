package fleet

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleSweepsParse is the sweep-spec schema-drift guard, the
// sibling of scenario.TestExampleScenariosLoadAndBind: every JSON under
// examples/sweeps must pass the strict POST /sweeps parser — scenario
// included — and derive a sane replication count. A renamed spec field
// or scenario-schema change that breaks the shipped examples fails
// here, not against a live daemon.
func TestExampleSweepsParse(t *testing.T) {
	files, err := filepath.Glob("../../examples/sweeps/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("found %d example sweep specs, want at least quickstart and churn-audit", len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Total <= 0 {
				t.Fatalf("spec derives %d replications", spec.Total)
			}
			if spec.Scenario == nil || spec.Scenario.Topology == nil {
				t.Fatal("example spec lacks a self-contained scenario")
			}
		})
	}
}
