package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// testScenario is a tiny self-contained flap scenario (a shrunk cousin
// of examples/scenarios/flaps.json) — short enough that one replication
// runs in tens of milliseconds, rich enough to exercise failover.
const testScenario = `{
  "name": "fleet-test-flaps",
  "duration": 20,
  "topology": {
    "kind": "custom",
    "nodes": [
      { "name": "src", "x": 0, "y": 0, "techs": ["PLC", "WiFi"] },
      { "name": "relay", "x": 10, "y": 0, "techs": ["PLC", "WiFi"] },
      { "name": "dst", "x": 20, "y": 0, "techs": ["PLC", "WiFi"] }
    ],
    "links": [
      { "from": "src", "to": "dst", "tech": "PLC", "capacity": 40 },
      { "from": "src", "to": "relay", "tech": "WiFi", "capacity": 60 },
      { "from": "relay", "to": "dst", "tech": "WiFi", "capacity": 60 }
    ]
  },
  "flows": [ { "name": "main", "src": "src", "dst": "dst", "start": 0 } ],
  "processes": [
    {
      "kind": "flap",
      "link": { "from": "src", "to": "dst", "tech": "PLC" },
      "first_at": 3,
      "down_mean": 5,
      "up_mean": 6
    }
  ]
}`

// testSpecJSON builds a sweep spec over the test scenario.
func testSpecJSON(runs int, seed int64, schemes string) []byte {
	return []byte(fmt.Sprintf(
		`{"name":"t","scenario":%s,"runs":%d,"seed":%d,"schemes":%q}`,
		testScenario, runs, seed, schemes))
}

// referenceResults computes what an uninterrupted in-process sweep of
// the same spec produces — through the same ParseSpec → ChurnConfig →
// merge pipeline the daemon uses, but with zero fleet machinery.
func referenceResults(t *testing.T, specJSON []byte) []byte {
	t.Helper()
	spec, err := ParseSpec(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.ChurnFailover(spec.Scenario, spec.churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// startServer runs a fleet server (store + supervisor) and its HTTP
// gateway; the returned stop func drains and waits for Run to return.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	if cfg.WALPath == "" {
		cfg.WALPath = filepath.Join(t.TempDir(), "fleet.wal")
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Run(ctx, nil)
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		wg.Wait()
		hts.Close()
	}
	t.Cleanup(stop)
	return srv, hts, stop
}

func postSweep(t *testing.T, base string, spec []byte) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/sweeps", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the sweep reaches a terminal state.
func waitState(t *testing.T, base, id string, want SweepState, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		if st.State == string(want) {
			return st
		}
		if SweepState(st.State).terminal() {
			t.Fatalf("sweep %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s after %v (%d/%d)", id, st.State, timeout, st.Completed, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getResults(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

// TestFleetEndToEnd: submit over HTTP, run to completion, and require
// the served results to be byte-identical to a plain in-process
// ChurnFailover of the same spec — the daemon's checkpoint pipeline
// (marshal → WAL → unmarshal → merge) must be invisible in the bytes.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real emulation replications")
	}
	spec := testSpecJSON(2, 7, "EMPoWER,SP-w/o-CC")
	want := referenceResults(t, spec)

	_, hts, _ := startServer(t, Config{Workers: 4})
	st, resp := postSweep(t, hts.URL, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st.Total != 4 {
		t.Fatalf("total = %d, want 4 (2 runs x 2 schemes)", st.Total)
	}
	waitState(t, hts.URL, st.ID, StateDone, 60*time.Second)
	got := getResults(t, hts.URL, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon results differ from uninterrupted in-process run:\n got %s\nwant %s", got, want)
	}

	// The merged /metrics snapshot must lint and carry fleet series.
	mresp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mbuf.String(), "fleet_reps_completed_total") {
		t.Error("/metrics misses fleet_reps_completed_total")
	}
	if !strings.Contains(mbuf.String(), "empower_runner_replications_total") {
		t.Error("/metrics misses the per-sweep runner series")
	}
}

// TestFleetDrainAndResume is the in-process half of the crash story:
// drain a server mid-sweep (context cancel, like SIGTERM), reopen the
// same WAL in a fresh server, let it finish, and require byte-identical
// results — with the completed replications never re-executed.
func TestFleetDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real emulation replications")
	}
	spec := testSpecJSON(4, 11, "EMPoWER,SP-w/o-CC") // 8 reps
	want := referenceResults(t, spec)
	wal := filepath.Join(t.TempDir(), "fleet.wal")

	// Phase 1: run with a per-rep delay so the drain catches the sweep
	// mid-flight, stop after a few completions.
	srv1, hts1, stop1 := startServer(t, Config{WALPath: wal, Workers: 2, RepDelay: 30 * time.Millisecond})
	st, _ := postSweep(t, hts1.URL, spec)
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := getStatus(t, hts1.URL, st.ID)
		if cur.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no replications completed before drain (state %s)", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop1()
	sw1, _ := srv1.Store().Get(st.ID)
	atDrain := sw1.doneSnapshot().Count()
	if atDrain == 0 || atDrain == 8 {
		t.Fatalf("drain caught %d/8 completions; need a mid-flight cut", atDrain)
	}

	// Phase 2: fresh server, same WAL. The sweep must come back
	// resumable with the checkpointed completions intact and finish to
	// byte-identical results without re-running them.
	executed := make(map[int]bool)
	var mu sync.Mutex
	srv2, err := New(Config{WALPath: wal, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Resumable() != 1 {
		t.Fatalf("recovered %d resumable sweeps, want 1", srv2.Resumable())
	}
	srv2.sup.wrapJob = func(job runner.Job[*experiments.ChurnRepOut]) runner.Job[*experiments.ChurnRepOut] {
		return func(ctx context.Context, rep runner.Rep) (*experiments.ChurnRepOut, error) {
			mu.Lock()
			executed[rep.Index] = true
			mu.Unlock()
			return job(ctx, rep)
		}
	}
	hts2 := httptest.NewServer(srv2.Handler())
	defer hts2.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go srv2.Run(ctx2, nil)

	waitState(t, hts2.URL, st.ID, StateDone, 60*time.Second)
	got := getResults(t, hts2.URL, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed results differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(executed) != 8-atDrain {
		t.Fatalf("resume executed %d replications, want %d (checkpointed %d of 8)",
			len(executed), 8-atDrain, atDrain)
	}
	for idx := range executed {
		if sw1.doneSnapshot().Has(idx) {
			t.Errorf("replication %d was checkpointed before drain but re-executed", idx)
		}
	}
}

// TestFleetSupervisionFaults injects failures, panics, and hangs into
// replications and requires (a) the daemon to survive, (b) the sweep to
// finish after retries, and (c) the final bytes to still match the
// uninterrupted reference — supervision must never leak into results.
func TestFleetSupervisionFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real emulation replications")
	}
	spec := testSpecJSON(2, 3, "EMPoWER")
	want := referenceResults(t, spec)

	wal := filepath.Join(t.TempDir(), "fleet.wal")
	srv, err := New(Config{
		WALPath:     wal,
		Workers:     2,
		MaxRetries:  3,
		RepTimeout:  20 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	attempts := map[int]int{}
	srv.sup.wrapJob = func(job runner.Job[*experiments.ChurnRepOut]) runner.Job[*experiments.ChurnRepOut] {
		return func(ctx context.Context, rep runner.Rep) (*experiments.ChurnRepOut, error) {
			mu.Lock()
			attempts[rep.Index]++
			n := attempts[rep.Index]
			mu.Unlock()
			switch {
			case rep.Index == 0 && n == 1:
				return nil, fmt.Errorf("injected transient failure")
			case rep.Index == 1 && n <= 2:
				panic("injected replication panic")
			}
			return job(ctx, rep)
		}
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx, nil)

	st, _ := postSweep(t, hts.URL, spec)
	fin := waitState(t, hts.URL, st.ID, StateDone, 60*time.Second)
	if fin.Retries < 3 {
		t.Errorf("retries = %d, want >= 3 (1 failure + 2 panics)", fin.Retries)
	}
	if fin.Panics != 2 {
		t.Errorf("panics = %d, want 2", fin.Panics)
	}
	got := getResults(t, hts.URL, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("supervised results differ from reference:\n got %s\nwant %s", got, want)
	}
}

// TestFleetPoisonedSweepFailsAlone: a replication that fails every
// attempt fails its sweep — and only its sweep; the daemon keeps
// serving and runs the next sweep to completion.
func TestFleetPoisonedSweepFailsAlone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real emulation replications")
	}
	wal := filepath.Join(t.TempDir(), "fleet.wal")
	srv, err := New(Config{
		WALPath:     wal,
		Workers:     2,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	poison := true
	var mu sync.Mutex
	srv.sup.wrapJob = func(job runner.Job[*experiments.ChurnRepOut]) runner.Job[*experiments.ChurnRepOut] {
		return func(ctx context.Context, rep runner.Rep) (*experiments.ChurnRepOut, error) {
			mu.Lock()
			bad := poison
			mu.Unlock()
			if bad && rep.Index == 1 {
				panic("poisoned replication")
			}
			return job(ctx, rep)
		}
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx, nil)

	bad, _ := postSweep(t, hts.URL, testSpecJSON(1, 5, "EMPoWER,SP-w/o-CC"))
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, hts.URL, bad.ID)
		if st.State == string(StateFailed) {
			if !strings.Contains(st.Error, "attempts") {
				t.Errorf("failure error %q misses the attempt count", st.Error)
			}
			break
		}
		if st.State == string(StateDone) {
			t.Fatal("poisoned sweep completed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("poisoned sweep stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	poison = false
	mu.Unlock()

	good, _ := postSweep(t, hts.URL, testSpecJSON(1, 5, "EMPoWER"))
	waitState(t, hts.URL, good.ID, StateDone, 60*time.Second)
	// The failed sweep's results endpoint must answer 409, not 500.
	resp, err := http.Get(hts.URL + "/sweeps/" + bad.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("failed sweep results: status %d, want 409", resp.StatusCode)
	}
}

// TestFleetSSEStream consumes the results stream: per-replication
// events followed by a final done event whose payload equals the
// non-streamed results document byte for byte.
func TestFleetSSEStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real emulation replications")
	}
	spec := testSpecJSON(2, 9, "EMPoWER")
	_, hts, _ := startServer(t, Config{Workers: 2})
	st, _ := postSweep(t, hts.URL, spec)

	resp, err := http.Get(hts.URL + "/sweeps/" + st.ID + "/results?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	events := strings.Split(strings.TrimSpace(buf.String()), "\n\n")
	if len(events) != 3 {
		t.Fatalf("stream carried %d events, want 2 reps + 1 done:\n%s", len(events), buf.String())
	}
	seen := map[int]bool{}
	for _, ev := range events[:2] {
		if !strings.HasPrefix(ev, "event: rep\n") {
			t.Fatalf("expected rep event, got %q", ev)
		}
		var rep struct {
			Index int             `json:"index"`
			Out   json.RawMessage `json:"out"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.SplitN(ev, "\n", 2)[1], "data: ")), &rep); err != nil {
			t.Fatal(err)
		}
		if seen[rep.Index] || len(rep.Out) == 0 {
			t.Fatalf("bad rep event: index %d (dup %v), %d out bytes", rep.Index, seen[rep.Index], len(rep.Out))
		}
		seen[rep.Index] = true
	}
	if !strings.HasPrefix(events[2], "event: done\n") {
		t.Fatalf("expected done event, got %q", events[2])
	}
	final := strings.TrimPrefix(strings.SplitN(events[2], "\n", 2)[1], "data: ")
	if want := string(getResults(t, hts.URL, st.ID)); final != want {
		t.Fatalf("streamed final result differs from GET results:\n got %s\nwant %s", final, want)
	}
}

// TestFleetSpecRejections covers the structured 400 path: every bad
// spec names its offending field, and nothing is enqueued.
func TestFleetSpecRejections(t *testing.T) {
	_, hts, _ := startServer(t, Config{})
	cases := []struct {
		name, body, field string
	}{
		{"empty", ``, ""},
		{"malformed", `{"scenario":`, ""},
		{"unknown-field", `{"scenario":` + testScenario + `,"runz":3}`, "runz"},
		{"missing-scenario", `{"runs":3}`, "scenario"},
		{"bad-scenario", `{"scenario":{"name":"x","duration":10,"nope":1}}`, "scenario"},
		{"bad-scheme", `{"scenario":` + testScenario + `,"schemes":"NoSuch"}`, "schemes"},
		{"negative-runs", `{"scenario":` + testScenario + `,"runs":-1}`, "runs"},
		{"bad-delta", `{"scenario":` + testScenario + `,"delta":1.5}`, "delta"},
		{"bad-frac", `{"scenario":` + testScenario + `,"frac":2}`, "frac"},
		{"wrong-type", `{"scenario":` + testScenario + `,"runs":"three"}`, "runs"},
		{"trailing", `{"scenario":` + testScenario + `} {"again":1}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hts.URL+"/sweeps", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var b errorBody
			if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
				t.Fatalf("400 body is not structured JSON: %v", err)
			}
			if b.Error.Field != tc.field {
				t.Errorf("field = %q, want %q (reason %q)", b.Error.Field, tc.field, b.Error.Reason)
			}
			if b.Error.Reason == "" && b.Error.Message == "" {
				t.Error("400 carries no reason")
			}
		})
	}
	resp, err := http.Get(hts.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Sweeps []Status `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 0 {
		t.Fatalf("rejected specs enqueued %d sweeps", len(list.Sweeps))
	}
}

// TestFleetBackpressure: with a bound-1 queue and no supervisor
// draining it, the second submission answers 429 with Retry-After.
func TestFleetBackpressure(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "fleet.wal")
	srv, err := New(Config{WALPath: wal, QueueBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Store().Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	// No supervisor running: the first sweep stays queued.
	if _, resp := postSweep(t, hts.URL, testSpecJSON(1, 1, "EMPoWER")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	_, resp := postSweep(t, hts.URL, testSpecJSON(1, 2, "EMPoWER"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestFleetCancel covers both cancellation paths: a queued sweep
// transitions immediately; a running sweep is cancelled through its
// execution context and records the terminal state durably.
func TestFleetCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real emulation replications")
	}
	wal := filepath.Join(t.TempDir(), "fleet.wal")

	// Queued cancellation: no supervisor.
	srv, err := New(Config{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	st, _ := postSweep(t, hts.URL, testSpecJSON(1, 1, "EMPoWER"))
	req, _ := http.NewRequest(http.MethodDelete, hts.URL+"/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: %d, want 202", resp.StatusCode)
	}
	if got := getStatus(t, hts.URL, st.ID); got.State != string(StateCancelled) {
		t.Fatalf("queued sweep state %s after cancel", got.State)
	}
	// Double-cancel conflicts.
	req2, _ := http.NewRequest(http.MethodDelete, hts.URL+"/sweeps/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", resp2.StatusCode)
	}
	hts.Close()
	srv.Store().Close()

	// Running cancellation: slow reps, cancel mid-sweep, reopen the WAL
	// and require the cancelled state to have survived.
	srv2, hts2, stop2 := startServer(t, Config{WALPath: wal, Workers: 1, RepDelay: 50 * time.Millisecond})
	st2, _ := postSweep(t, hts2.URL, testSpecJSON(4, 2, "EMPoWER,SP-w/o-CC"))
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, hts2.URL, st2.ID).State != string(StateRunning) {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req3, _ := http.NewRequest(http.MethodDelete, hts2.URL+"/sweeps/"+st2.ID, nil)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	deadline = time.Now().Add(30 * time.Second)
	for getStatus(t, hts2.URL, st2.ID).State != string(StateCancelled) {
		if time.Now().After(deadline) {
			t.Fatalf("running sweep stuck in %s after cancel", getStatus(t, hts2.URL, st2.ID).State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop2()
	_ = srv2

	st3, err := OpenStore(wal, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	sw, ok := st3.Get(st2.ID)
	if !ok {
		t.Fatal("cancelled sweep lost on replay")
	}
	if sw.State() != StateCancelled {
		t.Fatalf("replayed state %s, want cancelled", sw.State())
	}
	if st3.QueueDepth() != 0 {
		t.Fatalf("cancelled sweeps requeued: depth %d", st3.QueueDepth())
	}
}
