// Package fleet is the crash-safe sweep service: a long-running daemon
// that accepts churn-sweep specs over HTTP, executes their replications
// on a supervised worker pool, and checkpoints every completion to an
// append-only write-ahead log so that `kill -9` at any instant loses at
// most the replications that were in flight.
//
// The architecture is four small layers:
//
//   - WAL (this file): CRC-framed, fsync'd, torn-write-tolerant record
//     log. It knows nothing about sweeps — it persists opaque payloads
//     and recovers the longest intact prefix on open.
//   - Store (store.go): the sweep state machine rebuilt from WAL replay
//     — specs, per-replication completion sets and outputs, terminal
//     states. Every mutation is logged before it is acknowledged.
//   - Supervisor (supervisor.go): a worker pool over runner.RunFrom
//     adding per-replication timeouts, panic isolation, bounded retries
//     with exponential backoff + jitter, and graceful drain.
//   - Gateway (gateway.go): the HTTP/JSON surface — submit, status,
//     streamed results, cancel, metrics — with strict spec parsing and
//     bounded-queue backpressure.
//
// The load-bearing property is inherited from the rest of the repo: a
// replication's output is a pure function of (scenario, seed, index),
// so completed replications are never recomputed and a resumed sweep's
// final result is byte-identical to an uninterrupted run at any worker
// count.
package fleet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Frame layout: 4-byte little-endian payload length, 4-byte little-endian
// CRC-32C (Castagnoli) of the payload, then the payload bytes. A record
// is valid only if the full frame is present and the checksum matches;
// anything else is a torn tail and recovery stops at the last good
// record.
const (
	walHeaderSize = 8
	// walMaxRecord bounds a single payload so a corrupted length field
	// cannot drive a huge allocation during replay.
	walMaxRecord = 64 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only record log. Appends are serialized, framed,
// written, and fsync'd before returning, so an acknowledged record
// survives an immediate power cut (up to the filesystem's guarantees).
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	hdr     [walHeaderSize]byte
	records int
	size    int64
}

// OpenWAL opens (creating if absent) the log at path, replays every
// intact record into fn in append order, truncates any torn or corrupt
// tail, and returns the WAL positioned for appends. Replay never
// fails on bad data — a partial frame, a short payload, or a checksum
// mismatch simply ends the log there; only I/O errors and a non-nil
// error from fn are returned.
func OpenWAL(path string, fn func(payload []byte) error) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: wal open: %w", err)
	}
	w := &WAL{f: f, path: path}
	good, records, err := replayWAL(f, fn)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.records = records
	w.size = good
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: wal stat: %w", err)
	}
	if fi.Size() > good {
		// Drop the torn tail so the next append starts on a frame
		// boundary; the data past `good` was never acknowledged.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: wal truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: wal sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: wal seek: %w", err)
	}
	// Make the log's existence itself durable: fsync the parent
	// directory once at open, so a daemon that checkpoints into a fresh
	// file cannot lose the whole file to a crash.
	syncDir(filepath.Dir(path))
	return w, nil
}

// replayWAL scans every intact frame, calling fn per payload, and
// returns the offset just past the last good record plus the record
// count. Corruption is not an error — it ends the scan.
func replayWAL(r io.Reader, fn func([]byte) error) (good int64, records int, err error) {
	br := bufio.NewReader(r)
	var hdr [walHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return good, records, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > walMaxRecord {
			return good, records, nil // nonsense length: corrupt tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, records, nil // torn payload
		}
		if crc32.Checksum(payload, walCRC) != sum {
			return good, records, nil // bit rot or torn rewrite
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return good, records, err
			}
		}
		good += int64(walHeaderSize + n)
		records++
	}
}

// Append frames, writes, and fsyncs one payload. The record is durable
// when Append returns nil.
func (w *WAL) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > walMaxRecord {
		return fmt.Errorf("fleet: wal append: payload size %d out of range", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("fleet: wal append: closed")
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32.Checksum(payload, walCRC))
	if _, err := w.f.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("fleet: wal write header: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("fleet: wal write payload: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: wal fsync: %w", err)
	}
	w.records++
	w.size += int64(walHeaderSize + len(payload))
	return nil
}

// Records returns the number of durable records (replayed + appended).
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Size returns the durable log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir best-effort fsyncs a directory (ignored on filesystems that
// refuse it — the file contents are still fsync'd per record).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
