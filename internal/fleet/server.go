package fleet

import (
	"context"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config assembles a daemon: durability, supervision, and backpressure
// knobs in one place. The zero value is a working development setup
// (WAL in ./fleet.wal, GOMAXPROCS workers, default retry policy).
type Config struct {
	// WALPath locates the write-ahead log (default "fleet.wal"). The
	// file is the daemon's entire durable state: point a restarted
	// daemon at the same path and it resumes every incomplete sweep.
	WALPath string
	// QueueBound caps the pending sweep queue; POST /sweeps answers 429
	// beyond it (default DefaultQueueBound).
	QueueBound int
	// Workers, MaxRetries, RepTimeout, BackoffBase, BackoffMax,
	// RepDelay: see SupervisorConfig.
	Workers     int
	MaxRetries  int
	RepTimeout  time.Duration
	BackoffBase time.Duration
	BackoffMax  time.Duration
	RepDelay    time.Duration
	// Log receives daemon events; nil silences them.
	Log *log.Logger
}

func (c Config) walPath() string {
	if c.WALPath == "" {
		return "fleet.wal"
	}
	return c.WALPath
}

// Server ties store, supervisor and gateway together behind one
// lifecycle: New recovers, Run serves until the context is done, then
// drains and returns with everything checkpointed.
type Server struct {
	cfg Config
	st  *Store
	sup *Supervisor
	gw  *Gateway
	agg *obs.Aggregator
}

// New opens (or creates) the WAL, replays it, and prepares the daemon.
// Incomplete sweeps from a previous process are already queued for
// resumption when New returns.
func New(cfg Config) (*Server, error) {
	st, err := OpenStore(cfg.walPath(), cfg.QueueBound)
	if err != nil {
		return nil, err
	}
	agg := obs.NewAggregator()
	sup := NewSupervisor(st, SupervisorConfig{
		Workers:     cfg.Workers,
		MaxRetries:  cfg.MaxRetries,
		RepTimeout:  cfg.RepTimeout,
		BackoffBase: cfg.BackoffBase,
		BackoffMax:  cfg.BackoffMax,
		RepDelay:    cfg.RepDelay,
		Log:         cfg.Log,
	}, agg)
	return &Server{cfg: cfg, st: st, sup: sup, gw: NewGateway(st, agg), agg: agg}, nil
}

// Store exposes the sweep registry (tests and embedders).
func (s *Server) Store() *Store { return s.st }

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.gw }

// Resumable reports how many sweeps recovery queued for resumption.
func (s *Server) Resumable() int { return s.st.QueueDepth() }

// Run serves HTTP on ln and executes sweeps until ctx is done, then
// drains gracefully: the listener closes first (no new submissions),
// in-flight replications finish and checkpoint, and the WAL is closed.
// A nil ln runs the supervisor without HTTP (embedded use).
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	var srv *http.Server
	if ln != nil {
		srv = &http.Server{Handler: s.gw}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Serve(ln)
		}()
	}

	s.sup.Run(ctx) // returns when ctx is done and in-flight reps drained

	if srv != nil {
		// The drain already happened; give in-flight HTTP responses a
		// moment, then close.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		srv.Shutdown(shutdownCtx)
		cancel()
		wg.Wait()
	}
	return s.st.Close()
}
