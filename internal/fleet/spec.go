package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// maxSpecBytes bounds a submitted spec body; maxSweepReps bounds the
// flat replication count of one sweep (runs × schemes), since the store
// keeps one completion record per replication in memory.
const (
	maxSpecBytes = 8 << 20
	maxSweepReps = 1_000_000
)

// SpecError is a structured rejection of a sweep spec: which field is
// wrong and why. The gateway renders it as a 400 body instead of a
// generic 500, so a client can fix its request without reading daemon
// logs.
type SpecError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("fleet: bad spec: field %q: %s", e.Field, e.Reason)
}

func specErr(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// rawSpec is the submission schema of POST /sweeps. It reuses the
// repository's strict-parsing convention end to end: unknown fields at
// this level and inside the embedded scenario are rejected, so a typo'd
// knob fails loudly at submission instead of silently running a
// different experiment.
type rawSpec struct {
	// Name is an optional human label echoed in status responses.
	Name string `json:"name,omitempty"`
	// Scenario is the inline scenario object, exactly the schema of the
	// scenario JSON files (examples/scenarios/, DESIGN.md).
	Scenario json.RawMessage `json:"scenario"`
	// Runs is the number of scenario replications per scheme (default 20).
	Runs int `json:"runs,omitempty"`
	// Seed is the base RNG seed; (spec, seed) fully determines results.
	Seed int64 `json:"seed,omitempty"`
	// Schemes is a comma-separated scheme list, or "all"/empty for all
	// eight §5.1 schemes.
	Schemes string `json:"schemes,omitempty"`
	// Delta, Bin, Frac mirror the empower-scenario flags (0 = default).
	Delta float64 `json:"delta,omitempty"`
	Bin   float64 `json:"bin,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	// Manage attaches the route manager to CC schemes (default true).
	Manage *bool `json:"manage,omitempty"`
	// Shards enables the domain-sharded engine inside each replication.
	Shards int `json:"shards,omitempty"`
	// Invariants attaches the runtime invariant checker per replication.
	Invariants bool `json:"invariants,omitempty"`
}

// SweepSpec is a validated sweep: the raw bytes the WAL persists plus
// everything derived from them. Derivation is a pure function of Raw,
// so a spec replayed after a crash rebuilds the identical sweep.
type SweepSpec struct {
	Raw      []byte
	Name     string
	Scenario *scenario.Scenario
	Schemes  []core.Scheme
	Runs     int
	Seed     int64
	Delta    float64
	Bin      float64
	Frac     float64
	Manage   bool
	Shards   int
	Invars   bool
	// Total is the flat replication count: runs × schemes.
	Total int
}

// ParseSpec strictly parses and validates a sweep submission. Every
// rejection is a *SpecError naming the offending field.
func ParseSpec(data []byte) (*SweepSpec, error) {
	if len(data) == 0 {
		return nil, specErr("", "empty body")
	}
	if len(data) > maxSpecBytes {
		return nil, specErr("", "spec body exceeds %d bytes", maxSpecBytes)
	}
	var raw rawSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, decodeSpecError(err)
	}
	// Trailing garbage after the object is a malformed request, not a
	// second document.
	if dec.More() {
		return nil, specErr("", "trailing data after spec object")
	}

	if len(raw.Scenario) == 0 || string(raw.Scenario) == "null" {
		return nil, specErr("scenario", "required: inline scenario object")
	}
	sc, err := scenario.Parse(raw.Scenario)
	if err != nil {
		return nil, specErr("scenario", "%v", err)
	}
	if sc.Topology == nil {
		return nil, specErr("scenario.topology", "required: sweeps need self-contained scenarios")
	}
	schemes, err := experiments.ParseSchemes(raw.Schemes)
	if err != nil {
		return nil, specErr("schemes", "%v", err)
	}
	if raw.Runs < 0 {
		return nil, specErr("runs", "must be >= 0 (0 = default 20), got %d", raw.Runs)
	}
	if raw.Delta < 0 || raw.Delta >= 1 {
		return nil, specErr("delta", "must be in [0, 1), got %g", raw.Delta)
	}
	if raw.Bin < 0 {
		return nil, specErr("bin", "must be >= 0, got %g", raw.Bin)
	}
	if raw.Frac < 0 || raw.Frac > 1 {
		return nil, specErr("frac", "must be in [0, 1], got %g", raw.Frac)
	}
	if raw.Shards < 0 {
		return nil, specErr("shards", "must be >= 0, got %d", raw.Shards)
	}

	spec := &SweepSpec{
		Raw:      append([]byte(nil), data...),
		Name:     raw.Name,
		Scenario: sc,
		Schemes:  schemes,
		Runs:     raw.Runs,
		Seed:     raw.Seed,
		Delta:    raw.Delta,
		Bin:      raw.Bin,
		Frac:     raw.Frac,
		Manage:   raw.Manage == nil || *raw.Manage,
		Shards:   raw.Shards,
		Invars:   raw.Invariants,
	}
	spec.Total = experiments.ChurnReps(spec.churnConfig())
	if spec.Total > maxSweepReps {
		return nil, specErr("runs", "%d replications (runs × schemes) exceed the per-sweep cap %d",
			spec.Total, maxSweepReps)
	}
	return spec, nil
}

// churnConfig derives the experiment configuration. Only fields that
// influence results live here; observability hooks are attached by the
// supervisor per execution.
func (s *SweepSpec) churnConfig() experiments.ChurnConfig {
	return experiments.ChurnConfig{
		Seed:         s.Seed,
		Runs:         s.Runs,
		Schemes:      s.Schemes,
		Delta:        s.Delta,
		Bin:          s.Bin,
		Frac:         s.Frac,
		ManageRoutes: s.Manage,
		Shards:       s.Shards,
		Invariants:   s.Invars,
	}
}

// decodeSpecError maps an encoding/json error onto the offending field
// where the stdlib exposes one.
func decodeSpecError(err error) *SpecError {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		field := typeErr.Field
		if field == "" {
			field = "(body)"
		}
		return specErr(field, "expected %s, got %s", typeErr.Type, typeErr.Value)
	}
	var synErr *json.SyntaxError
	if errors.As(err, &synErr) {
		return specErr("", "malformed JSON at byte %d: %v", synErr.Offset, synErr)
	}
	// DisallowUnknownFields produces an unexported error type; recover
	// the field name from its fixed message shape.
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, `json: unknown field `); ok {
		return specErr(strings.Trim(rest, `"`), "unknown field")
	}
	return specErr("", "%v", err)
}
