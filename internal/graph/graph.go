// Package graph implements the network model of the EMPoWER paper (§2):
// a multigraph G(V, {E_1..E_K}) where V is a set of nodes and E_k the set
// of directed links available with technology k. Each link l has a capacity
// c_l (Mbps) and cost d_l = 1/c_l; I_l denotes the interference domain of l,
// the set containing l and every link that cannot transmit simultaneously
// with l.
//
// The airtime of an unsaturated link carrying rate x_l is µ_l = x_l·d_l
// (eq. 1 of the paper); Lemma 1 gives the maximum common rate of links that
// all contend for one medium as Rmax = (Σ d_li)^-1.
package graph

import (
	"fmt"
	"math"
)

// Tech identifies a link technology (a medium), e.g. PLC, a WiFi channel,
// or Ethernet. Technologies are small dense integers so they can index
// slices.
type Tech int

// Conventional technologies used across the repository. Additional
// technologies (e.g. a second WiFi channel) are just further Tech values.
const (
	TechPLC   Tech = 0
	TechWiFi  Tech = 1
	TechWiFi2 Tech = 2
)

// String implements fmt.Stringer.
func (t Tech) String() string {
	switch t {
	case TechPLC:
		return "PLC"
	case TechWiFi:
		return "WiFi"
	case TechWiFi2:
		return "WiFi2"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// NodeID identifies a node in the multigraph.
type NodeID int

// LinkID identifies a directed link in the multigraph. LinkIDs are dense:
// they index Network.Links.
type LinkID int

// Node is a network station. Position is in meters; Techs lists the
// technologies (interfaces) the node is equipped with.
type Node struct {
	ID    NodeID
	Name  string
	X, Y  float64
	Techs []Tech
}

// HasTech reports whether the node has an interface of technology t.
func (n *Node) HasTech(t Tech) bool {
	for _, k := range n.Techs {
		if k == t {
			return true
		}
	}
	return false
}

// Link is a directed communication opportunity between two nodes over one
// technology. Capacity is in Mbps; a link exists only with Capacity > 0.
type Link struct {
	ID       LinkID
	From, To NodeID
	Tech     Tech
	Capacity float64 // Mbps
}

// D returns d_l = 1/c_l, the per-bit airtime cost of the link
// (seconds per megabit). D of a zero-capacity link is +Inf.
func (l *Link) D() float64 {
	if l.Capacity <= 0 {
		return math.Inf(1)
	}
	return 1 / l.Capacity
}

// Path is a loop-free sequence of links joining a source to a destination.
type Path []LinkID

// Network is the multigraph. It is the central data structure of the
// reproduction: routing, congestion control and the simulators all operate
// on it. A Network is mutable (capacities can be updated) but its topology
// (nodes, link endpoints, interference structure) is fixed after Build.
type Network struct {
	Nodes []Node
	Links []Link

	// interference[l] lists the links in I_l, including l itself.
	interference [][]LinkID

	// out[n] lists the egress links of node n.
	out [][]LinkID
	// in[n] lists the ingress links of node n.
	in [][]LinkID

	model InterferenceModel
}

// InterferenceModel decides which pairs of links interfere. Two links
// interfere when they cannot transmit simultaneously (a transmission on one
// would collide at a receiver of the other, or carrier sensing blocks it).
type InterferenceModel interface {
	// Interferes reports whether links a and b cannot transmit
	// simultaneously. It must be symmetric and is never called with a == b.
	Interferes(net *Network, a, b *Link) bool
	// Name identifies the model in logs and docs.
	Name() string
}

// SingleDomainPerTech is the interference model used by the paper's
// simulations and examples (Figure 3 caption: "all links using the same
// medium interfere"): every pair of same-technology links interferes, and
// links of different technologies never do.
type SingleDomainPerTech struct{}

// Interferes implements InterferenceModel.
func (SingleDomainPerTech) Interferes(_ *Network, a, b *Link) bool { return a.Tech == b.Tech }

// Name implements InterferenceModel.
func (SingleDomainPerTech) Name() string { return "single-domain-per-tech" }

// RangeBased models carrier sensing with a sensing radius per technology:
// two same-technology links interfere when any endpoint of one is within
// the sensing range of any endpoint of the other. Links sharing an endpoint
// always interfere (a node has one radio per technology).
type RangeBased struct {
	// SenseRadius maps each technology to its carrier-sensing radius in
	// meters. Technologies absent from the map fall back to infinite radius
	// (single collision domain).
	SenseRadius map[Tech]float64
}

// Interferes implements InterferenceModel.
func (m RangeBased) Interferes(net *Network, a, b *Link) bool {
	if a.Tech != b.Tech {
		return false
	}
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	r, ok := m.SenseRadius[a.Tech]
	if !ok {
		return true
	}
	// The four endpoint pairs spelled out: this runs inside Build's O(L²)
	// loop, so it must not allocate.
	return net.Distance(a.From, b.From) <= r ||
		net.Distance(a.From, b.To) <= r ||
		net.Distance(a.To, b.From) <= r ||
		net.Distance(a.To, b.To) <= r
}

// Name implements InterferenceModel.
func (m RangeBased) Name() string { return "range-based" }

// Builder accumulates nodes and links and produces an immutable-topology
// Network.
type Builder struct {
	nodes []Node
	links []Link
	model InterferenceModel
}

// NewBuilder returns a Builder using the given interference model
// (SingleDomainPerTech if nil).
func NewBuilder(model InterferenceModel) *Builder {
	if model == nil {
		model = SingleDomainPerTech{}
	}
	return &Builder{model: model}
}

// internedTechs maps a bitmask over the conventional technologies
// (PLC/WiFi/WiFi2) to its canonical ascending tech list. Node tech sets
// are immutable after Build, so all nodes with the same interfaces share
// one backing array — sweeps build thousands of topologies and the
// per-node slice was a measurable share of their allocations.
var internedTechs = [8][]Tech{
	1: {TechPLC},
	2: {TechWiFi},
	3: {TechPLC, TechWiFi},
	4: {TechWiFi2},
	5: {TechPLC, TechWiFi2},
	6: {TechWiFi, TechWiFi2},
	7: {TechPLC, TechWiFi, TechWiFi2},
}

// AddNode adds a node and returns its ID.
func (b *Builder) AddNode(name string, x, y float64, techs ...Tech) NodeID {
	id := NodeID(len(b.nodes))
	mask, ok := 0, true
	for _, t := range techs {
		if t < 0 || t > TechWiFi2 {
			ok = false
			break
		}
		mask |= 1 << t
	}
	var ts []Tech
	if ok && len(internedTechs[mask]) == len(techs) {
		ts = internedTechs[mask]
	} else {
		// Unconventional technologies or duplicates: durable sorted copy.
		ts = append([]Tech(nil), techs...)
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
	}
	b.nodes = append(b.nodes, Node{ID: id, Name: name, X: x, Y: y, Techs: ts})
	return id
}

// AddLink adds a directed link and returns its ID. It panics on invalid
// endpoints, which are programming errors.
func (b *Builder) AddLink(from, to NodeID, tech Tech, capacity float64) LinkID {
	if from == to {
		panic(fmt.Sprintf("graph: self-link at node %d", from))
	}
	if int(from) >= len(b.nodes) || int(to) >= len(b.nodes) || from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: link endpoints %d->%d out of range", from, to))
	}
	id := LinkID(len(b.links))
	b.links = append(b.links, Link{ID: id, From: from, To: to, Tech: tech, Capacity: capacity})
	return id
}

// AddDuplex adds the two directed links of a bidirectional connection with
// equal capacities and returns both IDs.
func (b *Builder) AddDuplex(u, v NodeID, tech Tech, capacity float64) (LinkID, LinkID) {
	return b.AddLink(u, v, tech, capacity), b.AddLink(v, u, tech, capacity)
}

// Build computes the interference domains and adjacency and returns the
// Network. Both structures are built in two passes (count, then fill) over
// single flat backing arrays: the §5 sweeps rebuild thousands of topologies
// and the per-list append growth plus sort.Slice dominated their allocation
// profile. The fill orders reproduce the original appended-then-sorted
// lists exactly: adjacency in link order, interference ascending by LinkID
// with the link itself included.
func (b *Builder) Build() *Network {
	net := &Network{
		Nodes: b.nodes,
		Links: b.links,
		model: b.model,
	}
	nn, nl := len(net.Nodes), len(net.Links)

	net.out = make([][]LinkID, nn)
	net.in = make([][]LinkID, nn)
	degOut := make([]int, nn)
	degIn := make([]int, nn)
	for i := range net.Links {
		degOut[net.Links[i].From]++
		degIn[net.Links[i].To]++
	}
	adjFlat := make([]LinkID, 2*nl)
	pos := 0
	for n := 0; n < nn; n++ {
		net.out[n] = adjFlat[pos:pos : pos+degOut[n]]
		pos += degOut[n]
		net.in[n] = adjFlat[pos:pos : pos+degIn[n]]
		pos += degIn[n]
	}
	for i := range net.Links {
		l := &net.Links[i]
		net.out[l.From] = append(net.out[l.From], l.ID)
		net.in[l.To] = append(net.in[l.To], l.ID)
	}

	// Interference: one Interferes call per unordered pair, recorded in a
	// bitmap (bit i*nl+j for i<j) alongside per-link domain sizes, then an
	// ascending fill over the flat backing.
	net.interference = make([][]LinkID, nl)
	bits := make([]uint64, (nl*nl+63)/64)
	count := make([]int, nl)
	total := nl // every domain contains the link itself
	for i := 0; i < nl; i++ {
		count[i]++
		for j := i + 1; j < nl; j++ {
			if b.model.Interferes(net, &net.Links[i], &net.Links[j]) {
				p := i*nl + j
				bits[p>>6] |= 1 << (p & 63)
				count[i]++
				count[j]++
				total += 2
			}
		}
	}
	intFlat := make([]LinkID, total)
	pos = 0
	for i := 0; i < nl; i++ {
		row := intFlat[pos:pos : pos+count[i]]
		for j := 0; j < i; j++ {
			p := j*nl + i
			if bits[p>>6]&(1<<(p&63)) != 0 {
				row = append(row, LinkID(j))
			}
		}
		row = append(row, LinkID(i))
		for j := i + 1; j < nl; j++ {
			p := i*nl + j
			if bits[p>>6]&(1<<(p&63)) != 0 {
				row = append(row, LinkID(j))
			}
		}
		net.interference[i] = row
		pos += count[i]
	}
	return net
}

// Clone returns a deep copy of the network sharing no mutable state with
// the receiver. The interference structure is copied by reference
// internally since topology is immutable; capacities are copied by value.
func (n *Network) Clone() *Network {
	c := &Network{
		Nodes:        n.Nodes, // nodes are immutable after Build
		Links:        append([]Link(nil), n.Links...),
		interference: n.interference,
		out:          n.out,
		in:           n.in,
		model:        n.model,
	}
	return c
}

// Model returns the interference model the network was built with.
func (n *Network) Model() InterferenceModel { return n.model }

// Link returns the link with the given ID.
func (n *Network) Link(id LinkID) *Link { return &n.Links[id] }

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return &n.Nodes[id] }

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// NumLinks returns the number of links.
func (n *Network) NumLinks() int { return len(n.Links) }

// Out returns the egress links of node id. The returned slice must not be
// modified.
func (n *Network) Out(id NodeID) []LinkID { return n.out[id] }

// In returns the ingress links of node id. The returned slice must not be
// modified.
func (n *Network) In(id NodeID) []LinkID { return n.in[id] }

// Interference returns I_l: the link itself plus all links that cannot
// transmit simultaneously with it. The returned slice must not be modified.
func (n *Network) Interference(l LinkID) []LinkID { return n.interference[l] }

// Distance returns the Euclidean distance in meters between two nodes.
func (n *Network) Distance(a, b NodeID) float64 {
	dx := n.Nodes[a].X - n.Nodes[b].X
	dy := n.Nodes[a].Y - n.Nodes[b].Y
	return math.Hypot(dx, dy)
}

// FindLink returns the first link from -> to using tech with positive
// capacity, or -1.
func (n *Network) FindLink(from, to NodeID, tech Tech) LinkID {
	for _, id := range n.out[from] {
		l := &n.Links[id]
		if l.To == to && l.Tech == tech && l.Capacity > 0 {
			return id
		}
	}
	return -1
}

// Rmax implements Lemma 1: the maximum rate simultaneously achievable by
// each of a set of links that all contend for the same medium,
// Rmax = (Σ d_li)^-1. Links with zero capacity make the result 0.
func Rmax(links []*Link) float64 {
	var sum float64
	for _, l := range links {
		d := l.D()
		if math.IsInf(d, 1) {
			return 0
		}
		sum += d
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 1 / sum
}

// PathNodes returns the node sequence visited by a path, starting with the
// source. It returns an error if the links do not form a connected
// chain.
func (n *Network) PathNodes(p Path) ([]NodeID, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("graph: empty path")
	}
	nodes := []NodeID{n.Links[p[0]].From}
	cur := n.Links[p[0]].From
	for _, id := range p {
		l := &n.Links[id]
		if l.From != cur {
			return nil, fmt.Errorf("graph: path broken at link %d (%d->%d), expected from %d", id, l.From, l.To, cur)
		}
		cur = l.To
		nodes = append(nodes, cur)
	}
	return nodes, nil
}

// ValidatePath checks that p is a loop-free path from src to dst.
func (n *Network) ValidatePath(p Path, src, dst NodeID) error {
	nodes, err := n.PathNodes(p)
	if err != nil {
		return err
	}
	if nodes[0] != src {
		return fmt.Errorf("graph: path starts at %d, want %d", nodes[0], src)
	}
	if nodes[len(nodes)-1] != dst {
		return fmt.Errorf("graph: path ends at %d, want %d", nodes[len(nodes)-1], dst)
	}
	seen := make(map[NodeID]bool, len(nodes))
	for _, v := range nodes {
		if seen[v] {
			return fmt.Errorf("graph: path visits node %d twice", v)
		}
		seen[v] = true
	}
	return nil
}

// PathString renders a path as "a -[WiFi 30.0]-> b -[PLC 10.0]-> c" for
// logs and examples.
func (n *Network) PathString(p Path) string {
	if len(p) == 0 {
		return "<empty>"
	}
	s := n.Nodes[n.Links[p[0]].From].Name
	if s == "" {
		s = fmt.Sprintf("n%d", n.Links[p[0]].From)
	}
	for _, id := range p {
		l := &n.Links[id]
		toName := n.Nodes[l.To].Name
		if toName == "" {
			toName = fmt.Sprintf("n%d", l.To)
		}
		s += fmt.Sprintf(" -[%s %.1f]-> %s", l.Tech, l.Capacity, toName)
	}
	return s
}

// TotalAirtime returns Σ_{l'∈I_l} d_{l'}·x_{l'} for the given per-link rate
// vector: the airtime demand in link l's interference domain. rates is
// indexed by LinkID.
func (n *Network) TotalAirtime(l LinkID, rates []float64) float64 {
	var sum float64
	for _, i := range n.interference[l] {
		link := &n.Links[i]
		if rates[i] > 0 && link.Capacity > 0 {
			sum += rates[i] / link.Capacity
		}
	}
	return sum
}
