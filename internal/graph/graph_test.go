package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// buildFigure1 builds the three-node scenario of Figure 1 of the paper:
// gateway a, extender b, client c; PLC a-b at 10 Mbps, WiFi a-b at 30 Mbps,
// WiFi b-c at 15 Mbps.
func buildFigure1() (*Network, NodeID, NodeID, NodeID) {
	b := NewBuilder(nil)
	a := b.AddNode("a", 0, 0, TechPLC, TechWiFi)
	bb := b.AddNode("b", 10, 0, TechPLC, TechWiFi)
	c := b.AddNode("c", 20, 0, TechWiFi)
	b.AddDuplex(a, bb, TechPLC, 10)
	b.AddDuplex(a, bb, TechWiFi, 30)
	b.AddDuplex(bb, c, TechWiFi, 15)
	return b.Build(), a, bb, c
}

func TestBuilderBasics(t *testing.T) {
	net, a, bb, c := buildFigure1()
	if net.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", net.NumNodes())
	}
	if net.NumLinks() != 6 {
		t.Fatalf("NumLinks = %d, want 6", net.NumLinks())
	}
	if !net.Node(a).HasTech(TechPLC) || net.Node(c).HasTech(TechPLC) {
		t.Error("tech membership wrong")
	}
	if net.FindLink(a, bb, TechWiFi) < 0 {
		t.Error("missing a->b WiFi link")
	}
	if net.FindLink(c, a, TechWiFi) != -1 {
		t.Error("found nonexistent link c->a")
	}
	if got := len(net.Out(a)); got != 2 {
		t.Errorf("Out(a) = %d links, want 2", got)
	}
	if got := len(net.In(c)); got != 1 {
		t.Errorf("In(c) = %d links, want 1", got)
	}
	_ = c
}

func TestAddLinkPanics(t *testing.T) {
	b := NewBuilder(nil)
	n := b.AddNode("x", 0, 0, TechWiFi)
	for _, fn := range []func(){
		func() { b.AddLink(n, n, TechWiFi, 10) },
		func() { b.AddLink(n, NodeID(99), TechWiFi, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestInterferenceSingleDomain(t *testing.T) {
	net, a, bb, _ := buildFigure1()
	plc := net.FindLink(a, bb, TechPLC)
	wifiAB := net.FindLink(a, bb, TechWiFi)
	// PLC link interferes only with PLC links (2 directed PLC links total).
	if got := len(net.Interference(plc)); got != 2 {
		t.Errorf("|I_plc| = %d, want 2", got)
	}
	// WiFi a->b interferes with 4 directed WiFi links.
	if got := len(net.Interference(wifiAB)); got != 4 {
		t.Errorf("|I_wifiAB| = %d, want 4", got)
	}
	// I_l always contains l itself.
	found := false
	for _, id := range net.Interference(plc) {
		if id == plc {
			found = true
		}
	}
	if !found {
		t.Error("I_l must contain l")
	}
}

func TestInterferenceSymmetryProperty(t *testing.T) {
	net, _, _, _ := buildFigure1()
	for i := 0; i < net.NumLinks(); i++ {
		for _, j := range net.Interference(LinkID(i)) {
			sym := false
			for _, k := range net.Interference(j) {
				if k == LinkID(i) {
					sym = true
					break
				}
			}
			if !sym {
				t.Fatalf("interference not symmetric between %d and %d", i, j)
			}
		}
	}
}

func TestRangeBasedInterference(t *testing.T) {
	m := RangeBased{SenseRadius: map[Tech]float64{TechWiFi: 20}}
	b := NewBuilder(m)
	// Two WiFi link pairs far apart (>20m between all endpoints).
	a1 := b.AddNode("a1", 0, 0, TechWiFi)
	a2 := b.AddNode("a2", 5, 0, TechWiFi)
	b1 := b.AddNode("b1", 100, 0, TechWiFi)
	b2 := b.AddNode("b2", 105, 0, TechWiFi)
	l1 := b.AddLink(a1, a2, TechWiFi, 50)
	l2 := b.AddLink(b1, b2, TechWiFi, 50)
	net := b.Build()
	if len(net.Interference(l1)) != 1 {
		t.Errorf("far links should not interfere, |I| = %d", len(net.Interference(l1)))
	}
	if len(net.Interference(l2)) != 1 {
		t.Errorf("far links should not interfere, |I| = %d", len(net.Interference(l2)))
	}
}

func TestRangeBasedSharedEndpoint(t *testing.T) {
	m := RangeBased{SenseRadius: map[Tech]float64{TechWiFi: 1}}
	b := NewBuilder(m)
	u := b.AddNode("u", 0, 0, TechWiFi)
	v := b.AddNode("v", 50, 0, TechWiFi)
	w := b.AddNode("w", 100, 0, TechWiFi)
	l1 := b.AddLink(u, v, TechWiFi, 10)
	l2 := b.AddLink(v, w, TechWiFi, 10)
	net := b.Build()
	// Shared endpoint v forces interference regardless of radius.
	if len(net.Interference(l1)) != 2 || len(net.Interference(l2)) != 2 {
		t.Error("links sharing an endpoint must interfere")
	}
}

func TestLinkD(t *testing.T) {
	l := Link{Capacity: 10}
	if l.D() != 0.1 {
		t.Errorf("D = %v, want 0.1", l.D())
	}
	z := Link{Capacity: 0}
	if !math.IsInf(z.D(), 1) {
		t.Error("D of zero-capacity link should be +Inf")
	}
}

func TestRmaxLemma1(t *testing.T) {
	// Paper Figure 1 computation: links of 15 and 30 Mbps sharing a medium
	// can each sustain x where x/15 + x/30 = 1 => x = 10.
	l1 := &Link{Capacity: 15}
	l2 := &Link{Capacity: 30}
	if got := Rmax([]*Link{l1, l2}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Rmax = %v, want 10", got)
	}
	// Single link: Rmax is its capacity.
	if got := Rmax([]*Link{l1}); math.Abs(got-15) > 1e-9 {
		t.Errorf("Rmax single = %v, want 15", got)
	}
	// A dead link zeroes the rate.
	if got := Rmax([]*Link{l1, {Capacity: 0}}); got != 0 {
		t.Errorf("Rmax with dead link = %v, want 0", got)
	}
	// No links: infinite.
	if !math.IsInf(Rmax(nil), 1) {
		t.Error("Rmax of no links should be +Inf")
	}
}

func TestRmaxProperty(t *testing.T) {
	// For λ equal-capacity links, Rmax = c/λ.
	f := func(c uint8, lam uint8) bool {
		cap := float64(c%100) + 1
		n := int(lam%10) + 1
		links := make([]*Link, n)
		for i := range links {
			links[i] = &Link{Capacity: cap}
		}
		got := Rmax(links)
		return math.Abs(got-cap/float64(n)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathNodesAndValidate(t *testing.T) {
	net, a, bb, c := buildFigure1()
	plc := net.FindLink(a, bb, TechPLC)
	wifiBC := net.FindLink(bb, c, TechWiFi)
	p := Path{plc, wifiBC}
	nodes, err := net.PathNodes(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[0] != a || nodes[1] != bb || nodes[2] != c {
		t.Errorf("PathNodes = %v", nodes)
	}
	if err := net.ValidatePath(p, a, c); err != nil {
		t.Errorf("ValidatePath: %v", err)
	}
	// Wrong order is broken.
	if _, err := net.PathNodes(Path{wifiBC, plc}); err == nil {
		t.Error("expected broken-path error")
	}
	// Wrong endpoints.
	if err := net.ValidatePath(p, bb, c); err == nil {
		t.Error("expected wrong-source error")
	}
	if err := net.ValidatePath(p, a, bb); err == nil {
		t.Error("expected wrong-destination error")
	}
	// Empty path.
	if _, err := net.PathNodes(nil); err == nil {
		t.Error("expected empty-path error")
	}
}

func TestValidatePathLoop(t *testing.T) {
	b := NewBuilder(nil)
	u := b.AddNode("u", 0, 0, TechWiFi)
	v := b.AddNode("v", 1, 0, TechWiFi)
	uv := b.AddLink(u, v, TechWiFi, 10)
	vu := b.AddLink(v, u, TechWiFi, 10)
	uv2 := b.AddLink(u, v, TechWiFi, 20)
	net := b.Build()
	if err := net.ValidatePath(Path{uv, vu, uv2}, u, v); err == nil {
		t.Error("expected loop detection")
	}
}

func TestCloneIndependence(t *testing.T) {
	net, a, bb, _ := buildFigure1()
	c := net.Clone()
	id := net.FindLink(a, bb, TechPLC)
	c.Link(id).Capacity = 99
	if net.Link(id).Capacity == 99 {
		t.Error("Clone shares link storage with original")
	}
	if c.NumLinks() != net.NumLinks() || c.NumNodes() != net.NumNodes() {
		t.Error("Clone changed sizes")
	}
}

func TestDistance(t *testing.T) {
	b := NewBuilder(nil)
	u := b.AddNode("u", 0, 0, TechWiFi)
	v := b.AddNode("v", 3, 4, TechWiFi)
	net := b.Build()
	if got := net.Distance(u, v); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
}

func TestTotalAirtime(t *testing.T) {
	net, a, bb, c := buildFigure1()
	rates := make([]float64, net.NumLinks())
	wifiAB := net.FindLink(a, bb, TechWiFi)
	wifiBC := net.FindLink(bb, c, TechWiFi)
	rates[wifiAB] = 15 // µ = 0.5
	rates[wifiBC] = 7.5
	// Airtime in the WiFi domain: 15/30 + 7.5/15 = 1.0
	if got := net.TotalAirtime(wifiAB, rates); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("TotalAirtime = %v, want 1.0", got)
	}
	// PLC domain sees none of it.
	plc := net.FindLink(a, bb, TechPLC)
	if got := net.TotalAirtime(plc, rates); got != 0 {
		t.Errorf("PLC TotalAirtime = %v, want 0", got)
	}
}

func TestPathString(t *testing.T) {
	net, a, bb, c := buildFigure1()
	p := Path{net.FindLink(a, bb, TechPLC), net.FindLink(bb, c, TechWiFi)}
	s := net.PathString(p)
	if s == "" || s == "<empty>" {
		t.Errorf("PathString = %q", s)
	}
	if net.PathString(nil) != "<empty>" {
		t.Error("empty path string wrong")
	}
}

func TestTechString(t *testing.T) {
	if TechPLC.String() != "PLC" || TechWiFi.String() != "WiFi" || TechWiFi2.String() != "WiFi2" {
		t.Error("Tech.String wrong")
	}
	if Tech(9).String() != "Tech(9)" {
		t.Error("unknown tech string wrong")
	}
}
