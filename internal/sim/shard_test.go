package sim

import (
	"testing"
)

// The shard suite simulates P logical processes, each with local state,
// periodic local ticks, and occasional messages to its neighbor process
// arriving after msgDelay. The same workload runs on one engine (the
// naive reference, messages being ordinary scheduled events) and on one
// engine per process under the Sharded coordinator with a finite
// lookahead below msgDelay — per-process trajectories must match the
// reference exactly, at any worker count.

// msgDelay and the tick intervals are chosen so a message arrival never
// collides with a local tick: the tie-break between a cross arrival and
// a simultaneous local event is deliberately out of contract.
const msgDelay = 0.7703137

type procEntry struct {
	t float64
	v int
}

type shardProc struct {
	sh      *Sharded // nil in the single-engine reference
	e       *Engine
	id, n   int
	peer    *shardProc
	ticks   int
	counter int
	tickLog []procEntry
	msgLog  []procEntry
}

func (p *shardProc) tick() {
	p.counter += p.id + 1
	p.tickLog = append(p.tickLog, procEntry{p.e.Now(), p.counter})
	p.ticks++
	if p.ticks%3 == 0 {
		if p.sh != nil {
			p.sh.Cross(p.id, p.peer.id, msgDelay, procMsg, p.peer)
		} else {
			p.e.ScheduleFunc(msgDelay, procMsg, p.peer)
		}
	}
}

// procMsg records the destination's local counter at arrival time: if the
// coordinator ever let a shard process local ticks beyond a pending
// arrival, the recorded counter would run ahead of the reference.
func procMsg(arg any) {
	q := arg.(*shardProc)
	q.counter += 100
	q.msgLog = append(q.msgLog, procEntry{q.e.Now(), q.counter})
}

func runProcs(nProcs, workers int, sharded bool, until float64, step float64) []*shardProc {
	procs := make([]*shardProc, nProcs)
	var engines []*Engine
	var shared *Engine
	if sharded {
		engines = make([]*Engine, nProcs)
		for i := range engines {
			engines[i] = &Engine{}
		}
	} else {
		shared = &Engine{}
	}
	for i := range procs {
		procs[i] = &shardProc{id: i, n: nProcs}
		if sharded {
			procs[i].e = engines[i]
		} else {
			procs[i].e = shared
		}
	}
	var sh *Sharded
	if sharded {
		sh = NewSharded(engines, workers)
		sh.SetLookahead(0.5)
		for _, p := range procs {
			p.sh = sh
		}
	}
	for i, p := range procs {
		p.peer = procs[(i+1)%nProcs]
		p := p
		p.e.Every(0.1+0.013*float64(p.id), p.tick)
	}
	for t := step; t <= until+1e-9; t += step {
		if sharded {
			sh.Run(t)
		} else {
			shared.Run(t)
		}
	}
	return procs
}

func sameLogs(t *testing.T, kind string, p, q *shardProc) {
	t.Helper()
	pick := func(r *shardProc) []procEntry {
		if kind == "tick" {
			return r.tickLog
		}
		return r.msgLog
	}
	a, b := pick(p), pick(q)
	if len(a) != len(b) {
		t.Fatalf("proc %d %s log length %d vs %d", p.id, kind, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("proc %d %s log[%d] = %+v vs %+v", p.id, kind, i, a[i], b[i])
		}
	}
}

// TestShardedMatchesSingleEngineReference pins the conservative-window
// protocol against the naive single-engine run, in the spirit of
// TestPoolMatchesNaiveReference: every process's trajectory — local tick
// sequence and message arrival sequence, with the counter values the
// handlers observed — is identical.
func TestShardedMatchesSingleEngineReference(t *testing.T) {
	const n, until = 5, 25.0
	ref := runProcs(n, 1, false, until, until) // one engine, one Run call
	for _, workers := range []int{1, 2, 4} {
		got := runProcs(n, workers, true, until, until)
		for i := range got {
			sameLogs(t, "tick", ref[i], got[i])
			sameLogs(t, "msg", ref[i], got[i])
		}
		if len(got[0].msgLog) == 0 {
			t.Fatal("workload sent no cross-shard messages; the test is vacuous")
		}
	}
}

// TestShardedChunkedRuns checks that many small Run calls (the
// per-second advancement the emulation benches use) land on the same
// trajectory as one big Run.
func TestShardedChunkedRuns(t *testing.T) {
	const n, until = 4, 12.0
	oneShot := runProcs(n, 2, true, until, until)
	chunked := runProcs(n, 2, true, until, 0.25)
	for i := range oneShot {
		sameLogs(t, "tick", oneShot[i], chunked[i])
		sameLogs(t, "msg", oneShot[i], chunked[i])
	}
}

// TestShardedClocksClamped: like Engine.Run, a sharded Run leaves every
// shard clock exactly at `until`, even for shards that had no events.
func TestShardedClocksClamped(t *testing.T) {
	engines := []*Engine{{}, {}}
	sh := NewSharded(engines, 2)
	engines[0].Schedule(1.0, func() {})
	sh.Run(3.5)
	for i, e := range engines {
		if e.Now() != 3.5 {
			t.Fatalf("shard %d clock = %g, want 3.5", i, e.Now())
		}
	}
	if sh.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", sh.Pending())
	}
}

// TestCrossBelowLookaheadPanics: undercutting the lookahead would let a
// cross event order before already-processed local events — the
// coordinator refuses loudly.
func TestCrossBelowLookaheadPanics(t *testing.T) {
	engines := []*Engine{{}, {}}
	sh := NewSharded(engines, 1)
	sh.SetLookahead(0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("Cross below lookahead did not panic")
		}
	}()
	sh.Cross(0, 1, 0.25, func(any) {}, nil)
}

// TestRunBefore pins the strict-horizon primitive: events exactly at the
// horizon stay queued and the clock is not clamped forward.
func TestRunBefore(t *testing.T) {
	var e Engine
	var fired []float64
	e.At(1.0, func() { fired = append(fired, 1.0) })
	e.At(2.0, func() { fired = append(fired, 2.0) })
	if n := e.RunBefore(2.0); n != 1 {
		t.Fatalf("processed %d, want 1", n)
	}
	if len(fired) != 1 || fired[0] != 1.0 {
		t.Fatalf("fired %v, want [1]", fired)
	}
	if e.Now() != 1.0 {
		t.Fatalf("clock = %g, want 1 (no clamp)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the horizon event still queued", e.Pending())
	}
}
