package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/obs"
)

// Sharded coordinates a set of engines — one per interference domain —
// with conservative lookahead windows (Chandy–Misra–Bryant style,
// without null messages: the window barrier plays their role). Each
// window runs every engine up to a horizon that no cross-shard event can
// undercut, then drains the cross-shard queues at a barrier in a fixed
// order, so the trajectory is bit-identical at any worker count:
//
//   - the global horizon of a window is min(next event) + lookahead,
//     where lookahead is the minimum cross-shard propagation delay;
//     an engine processes events strictly below the horizon (RunBefore)
//     and leaves its clock short of it, because a cross event may land
//     exactly on the horizon;
//   - a cross-shard event sent at local time t arrives at t+delay ≥
//     t+lookahead ≥ horizon, so it can never order before an event the
//     destination already processed this window;
//   - queues are drained single-threaded at the barrier in (destination,
//     source, FIFO) order, so destination sequence numbers — the FIFO
//     tie-break among simultaneous events — are assigned identically no
//     matter which worker ran which shard.
//
// With an infinite lookahead (fully independent domains, the common case
// for disconnected interference components) a Run is a single window.
type Sharded struct {
	engines   []*Engine
	workers   int
	lookahead float64
	// queues[src*n+dst] is the SPSC cross queue from shard src to dst:
	// only src's worker appends (during a window), only the coordinator
	// drains (at the barrier).
	queues [][]crossMsg
	counts []int // per-engine processed counts of the current window

	// Intrinsic window statistics, updated by the single-threaded
	// coordinator loop and sampled by the observability layer after Run.
	stats WindowStats
}

// WindowStats counts the conservative-window behavior of a Sharded run:
// how many windows executed, how many were lookahead stalls (windows cut
// short of the run horizon because the lookahead could not cover it),
// how many cross-shard events were drained at barriers, and the deepest
// any single cross queue got.
type WindowStats struct {
	Windows       uint64
	Stalls        uint64
	CrossDrained  uint64
	MaxCrossDepth int
}

type crossMsg struct {
	at  float64
	fn  func(any)
	arg any
}

// NewSharded builds a coordinator over the given engines with up to
// `workers` goroutines per window (clamped to [1, len(engines)]) and an
// infinite lookahead — callers with coupled shards must SetLookahead to
// their minimum cross-shard delay before sending cross events.
func NewSharded(engines []*Engine, workers int) *Sharded {
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	n := len(engines)
	return &Sharded{
		engines:   engines,
		workers:   workers,
		lookahead: math.Inf(1),
		queues:    make([][]crossMsg, n*n),
		counts:    make([]int, n),
	}
}

// SetLookahead sets the conservative window width: the minimum virtual
// delay of any cross-shard event. It must be positive.
func (s *Sharded) SetLookahead(l float64) {
	if l <= 0 {
		panic("sim: lookahead must be positive")
	}
	s.lookahead = l
}

// NumShards returns the number of coordinated engines.
func (s *Sharded) NumShards() int { return len(s.engines) }

// Workers returns the worker-goroutine cap per window.
func (s *Sharded) Workers() int { return s.workers }

// Engine returns shard i's engine.
func (s *Sharded) Engine(i int) *Engine { return s.engines[i] }

// Stats returns the accumulated window statistics.
func (s *Sharded) Stats() WindowStats { return s.stats }

// Pending sums the scheduled timers across shards (queued cross events
// are always drained before Run returns, so they never count here).
func (s *Sharded) Pending() int {
	n := 0
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// NextEventTime returns the earliest pending event across shards.
func (s *Sharded) NextEventTime() float64 {
	next := math.Inf(1)
	for _, e := range s.engines {
		if t := e.NextEventTime(); t < next {
			next = t
		}
	}
	return next
}

// Cross schedules fn(arg) on shard dst at src's local time plus delay.
// It must be called from within shard src's event handlers (during a
// window), and the delay must not undercut the lookahead — that is the
// conservative contract that keeps already-processed events safe.
func (s *Sharded) Cross(src, dst int, delay float64, fn func(any), arg any) {
	if delay < s.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %g below lookahead %g", delay, s.lookahead))
	}
	i := src*len(s.engines) + dst
	s.queues[i] = append(s.queues[i], crossMsg{at: s.engines[src].Now() + delay, fn: fn, arg: arg})
}

// Run advances every shard to absolute virtual time `until` in
// conservative windows and returns the number of events processed. All
// shard clocks end exactly at `until`, like Engine.Run.
func (s *Sharded) Run(until float64) int {
	total := 0
	for {
		next := s.NextEventTime()
		if next > until {
			break
		}
		s.stats.Windows++
		if end := next + s.lookahead; end < until {
			s.stats.Stalls++
			total += s.runAll(end, false)
		} else {
			// The horizon covers the rest of the run: finish inclusively,
			// clamping clocks to `until`. Cross events sent in this window
			// arrive at ≥ next+lookahead ≥ until, so nothing already
			// processed is undercut; arrivals exactly at `until` go around
			// the loop once more.
			total += s.runAll(until, true)
		}
		s.drain()
	}
	s.runAll(until, true) // clamp every clock to the end of the run
	return total
}

// runAll runs every engine of the window, fanning out across workers.
// Engines are statically assigned (shard i → worker i mod W): each shard
// is touched by exactly one goroutine per window, and shards share no
// state within a window, so the assignment never affects the trajectory.
func (s *Sharded) runAll(until float64, inclusive bool) int {
	if s.workers <= 1 {
		n := 0
		for _, e := range s.engines {
			n += runOne(e, until, inclusive)
		}
		return n
	}
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(s.engines); i += s.workers {
				s.counts[i] = runOne(s.engines[i], until, inclusive)
			}
		}(w)
	}
	wg.Wait()
	n := 0
	for _, c := range s.counts {
		n += c
	}
	return n
}

func runOne(e *Engine, until float64, inclusive bool) int {
	if inclusive {
		return e.Run(until)
	}
	return e.RunBefore(until)
}

// drain moves queued cross events onto their destination engines at the
// window barrier, in (destination, source, FIFO) order. Scheduling
// through AtFunc assigns destination sequence numbers in this fixed
// order, which is what makes simultaneous cross arrivals tie-break
// identically at any worker count.
func (s *Sharded) drain() {
	n := len(s.engines)
	for dst := 0; dst < n; dst++ {
		drained := 0
		for src := 0; src < n; src++ {
			q := s.queues[src*n+dst]
			if len(q) == 0 {
				continue
			}
			if len(q) > s.stats.MaxCrossDepth {
				s.stats.MaxCrossDepth = len(q)
			}
			drained += len(q)
			e := s.engines[dst]
			for i := range q {
				e.AtFunc(q[i].at, q[i].fn, q[i].arg)
				q[i] = crossMsg{} // drop references for the pool's sake
			}
			s.queues[src*n+dst] = q[:0]
		}
		if drained > 0 {
			s.stats.CrossDrained += uint64(drained)
		}
		// Barrier records are written here by the coordinator, after the
		// window's workers have joined, so the destination engine's ring
		// still has a single writer.
		if rec := s.engines[dst].rec; rec != nil {
			rec.Record(s.engines[dst].Now(), obs.RecWindowBarrier, int32(drained), 0, 0)
		}
	}
}
