package sim

import (
	"math"
	"math/rand"
	"testing"
)

// naiveEngine is an unpooled, obviously-correct reference: events live in
// a flat slice and fire in (at, seq) order, scanned linearly. It exists
// only to pin the pooled engine's semantics event-for-event.
type naiveEvent struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
}

type naiveEngine struct {
	now    float64
	seq    uint64
	events []*naiveEvent
}

func (n *naiveEngine) schedule(delay float64, fn func()) *naiveEvent {
	if delay < 0 {
		delay = 0
	}
	n.seq++
	ev := &naiveEvent{at: n.now + delay, seq: n.seq, fn: fn}
	n.events = append(n.events, ev)
	return ev
}

func (n *naiveEngine) runUntilIdle() {
	for {
		var next *naiveEvent
		for _, ev := range n.events {
			if ev.cancelled || ev.fn == nil {
				continue
			}
			if next == nil || ev.at < next.at || (ev.at == next.at && ev.seq < next.seq) {
				next = ev
			}
		}
		if next == nil {
			return
		}
		n.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
	}
}

// storm drives one engine through a deterministic random script of
// schedule/cancel/fire decisions and records the firing order. The
// script depends only on the rng seed and the firing order itself, so
// two semantically equivalent engines driven with the same seed must
// produce identical traces.
type storm struct {
	rng      *rand.Rand
	fired    []int
	times    []float64
	nextID   int
	live     []int // granted, unfired, uncancelled ids in grant order
	sched    func(id int, delay float64)
	cancel   func(id int)
	maxSpawn int
}

func (s *storm) dropLive(id int) {
	for i, v := range s.live {
		if v == id {
			s.live = append(s.live[:i], s.live[i+1:]...)
			return
		}
	}
}

func (s *storm) grant(delay float64) {
	id := s.nextID
	s.nextID++
	s.live = append(s.live, id)
	s.sched(id, delay)
}

// handler is the body every scheduled timer runs: record, maybe spawn,
// maybe cancel. Delays are quantized so simultaneous events (the FIFO
// tie-break) occur constantly.
func (s *storm) handler(id int, now float64) {
	s.dropLive(id)
	s.fired = append(s.fired, id)
	s.times = append(s.times, now)
	if s.nextID < s.maxSpawn {
		for k := 1 + s.rng.Intn(3); k > 0; k-- {
			s.grant(float64(s.rng.Intn(8)) * 0.25)
		}
	}
	if len(s.live) > 0 && s.rng.Float64() < 0.35 {
		victim := s.live[s.rng.Intn(len(s.live))]
		s.dropLive(victim)
		s.cancel(victim)
	}
}

// TestPoolMatchesNaiveReference is the timer-pool property test: a
// cancel/reschedule/fire storm of thousands of timers must fire in
// exactly the order the unpooled reference fires them, event for event,
// at the same virtual times.
func TestPoolMatchesNaiveReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 12345} {
		var e Engine
		pooled := &storm{rng: rand.New(rand.NewSource(seed)), maxSpawn: 4000}
		refs := map[int]TimerRef{}
		pooled.sched = func(id int, delay float64) {
			refs[id] = e.Schedule(delay, func() { pooled.handler(id, e.Now()) })
		}
		pooled.cancel = func(id int) { refs[id].Cancel() }

		var n naiveEngine
		naive := &storm{rng: rand.New(rand.NewSource(seed)), maxSpawn: 4000}
		evs := map[int]*naiveEvent{}
		naive.sched = func(id int, delay float64) {
			evs[id] = n.schedule(delay, func() { naive.handler(id, n.now) })
		}
		naive.cancel = func(id int) { evs[id].cancelled = true }

		for i := 0; i < 50; i++ {
			pooled.grant(float64(i%10) * 0.5)
			naive.grant(float64(i%10) * 0.5)
		}
		e.RunUntilIdle()
		n.runUntilIdle()

		if len(pooled.fired) != len(naive.fired) {
			t.Fatalf("seed %d: pooled fired %d events, reference %d", seed, len(pooled.fired), len(naive.fired))
		}
		if len(pooled.fired) < 1000 {
			t.Fatalf("seed %d: storm too small to be meaningful (%d events)", seed, len(pooled.fired))
		}
		for i := range pooled.fired {
			if pooled.fired[i] != naive.fired[i] || pooled.times[i] != naive.times[i] {
				t.Fatalf("seed %d: event %d diverged: pooled (id %d, t %v), reference (id %d, t %v)",
					seed, i, pooled.fired[i], pooled.times[i], naive.fired[i], naive.times[i])
			}
		}
		if len(e.heap) != 0 {
			t.Fatalf("seed %d: %d timers left in heap after idle", seed, len(e.heap))
		}
	}
}

// TestStaleCancelAfterRecycle is the regression test for the pool's
// generation counters: a TimerRef held across its timer's firing must
// not cancel the recycled slot's next occupant.
func TestStaleCancelAfterRecycle(t *testing.T) {
	var e Engine
	a := e.Schedule(1, func() {})
	e.RunUntilIdle()

	firedB := false
	b := e.Schedule(1, func() { firedB = true })
	if a.t != b.t {
		t.Fatalf("test setup broken: b did not reuse a's slot (pool order changed?)")
	}
	a.Cancel() // stale handle: must be a no-op
	if !b.Active() {
		t.Fatal("stale Cancel deactivated the slot's new occupant")
	}
	e.RunUntilIdle()
	if !firedB {
		t.Fatal("stale Cancel killed the recycled slot's timer")
	}
	// Also stale after cancel (not just after fire).
	c := e.Schedule(1, func() {})
	c.Cancel()
	firedD := false
	d := e.Schedule(1, func() { firedD = true })
	if c.t != d.t {
		t.Fatalf("test setup broken: d did not reuse c's slot")
	}
	c.Cancel()
	e.RunUntilIdle()
	if !firedD {
		t.Fatal("double Cancel through a stale handle killed the new occupant")
	}
}

// TestHeapEntriesAlwaysLive pins the invariant behind the O(1)
// Pending/NextEventTime: Cancel removes timers from the heap
// immediately, so every heap entry has a live handler.
func TestHeapEntriesAlwaysLive(t *testing.T) {
	var e Engine
	rng := rand.New(rand.NewSource(3))
	var refs []TimerRef
	for i := 0; i < 500; i++ {
		refs = append(refs, e.Schedule(rng.Float64()*10, func() {}))
	}
	for i := 0; i < 200; i++ {
		refs[rng.Intn(len(refs))].Cancel()
	}
	live := 0
	for _, r := range refs {
		if r.Active() {
			live++
		}
	}
	if e.Pending() != live {
		t.Fatalf("Pending = %d, want %d live timers", e.Pending(), live)
	}
	min := math.Inf(1)
	for _, timer := range e.heap {
		if timer.fn == nil && timer.hfn == nil {
			t.Fatal("heap contains a dead entry; Pending/NextEventTime invariant broken")
		}
		if timer.at < min {
			min = timer.at
		}
	}
	if e.NextEventTime() != min {
		t.Fatalf("NextEventTime = %v, want %v", e.NextEventTime(), min)
	}
	e.Run(5)
	for _, timer := range e.heap {
		if timer.fn == nil && timer.hfn == nil {
			t.Fatal("dead heap entry after partial run")
		}
	}
}

// TestAllocsScheduleFireSteadyState: the schedule→fire cycle must not
// allocate once the pool is warm, in both the closure-free and the
// pre-built-closure form.
func TestAllocsScheduleFireSteadyState(t *testing.T) {
	var e Engine
	count := 0
	tick := func(any) { count++ }
	// Warm the pool.
	e.ScheduleFunc(1, tick, nil)
	e.RunUntilIdle()
	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleFunc(1, tick, nil)
		e.RunUntilIdle()
	}); avg != 0 {
		t.Errorf("ScheduleFunc steady state allocates %v per cycle, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r := e.ScheduleFunc(1, tick, nil)
		r.Cancel()
	}); avg != 0 {
		t.Errorf("schedule+cancel steady state allocates %v per cycle, want 0", avg)
	}
}
