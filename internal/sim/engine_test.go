package sim

import (
	"math"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if n := e.RunUntilIdle(); n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	timer := e.Schedule(1, func() { fired = true })
	timer.Cancel()
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled timer fired")
	}
	// Cancel after fire is a no-op.
	timer2 := e.Schedule(1, func() {})
	e.RunUntilIdle()
	timer2.Cancel()
}

func TestRunStopsAtLimit(t *testing.T) {
	var e Engine
	var fired []float64
	for _, d := range []float64{0.5, 1.0, 1.5, 2.0} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.Run(1.0)
	if n != 2 {
		t.Errorf("processed %d, want 2", n)
	}
	if e.Now() != 1.0 {
		t.Errorf("Now = %v, want 1.0", e.Now())
	}
	n = e.Run(5)
	if n != 2 {
		t.Errorf("second run processed %d, want 2", n)
	}
}

func TestRunAdvancesClockWhenIdle(t *testing.T) {
	var e Engine
	e.Run(10)
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(1, rec)
	e.RunUntilIdle()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var e Engine
	e.Run(2)
	fired := math.NaN()
	e.Schedule(-5, func() { fired = e.Now() })
	e.RunUntilIdle()
	if fired != 2 {
		t.Errorf("negative-delay event fired at %v, want 2", fired)
	}
}

func TestAtClampsToPast(t *testing.T) {
	var e Engine
	e.Run(3)
	fired := math.NaN()
	e.At(1, func() { fired = e.Now() })
	e.RunUntilIdle()
	if fired != 3 {
		t.Errorf("past event fired at %v, want 3", fired)
	}
}

func TestPeriodic(t *testing.T) {
	var e Engine
	count := 0
	p := e.Every(1, func() { count++ })
	e.Run(5.5)
	if count != 5 {
		t.Errorf("periodic fired %d times, want 5", count)
	}
	p.Stop()
	e.Run(10)
	if count != 5 {
		t.Errorf("periodic fired after Stop: %d", count)
	}
}

func TestPeriodicStopInsideHandler(t *testing.T) {
	var e Engine
	count := 0
	var p *Periodic
	p = e.Every(1, func() {
		count++
		if count == 3 {
			p.Stop()
		}
	})
	e.Run(10)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestPendingAndNextEventTime(t *testing.T) {
	var e Engine
	if !math.IsInf(e.NextEventTime(), 1) {
		t.Error("empty engine should have no next event")
	}
	a := e.Schedule(2, func() {})
	e.Schedule(5, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	if e.NextEventTime() != 2 {
		t.Errorf("NextEventTime = %v, want 2", e.NextEventTime())
	}
	a.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", e.Pending())
	}
	if e.NextEventTime() != 5 {
		t.Errorf("NextEventTime after cancel = %v, want 5", e.NextEventTime())
	}
}

func TestTimerWhen(t *testing.T) {
	var e Engine
	timer := e.Schedule(4, func() {})
	if timer.When() != 4 {
		t.Errorf("When = %v, want 4", timer.When())
	}
}

// TestCancelRemovesFromHeap pins the heap-hygiene contract of Cancel:
// cancelling a timer removes it from the heap immediately (via the
// tracked index) instead of leaving a dead entry behind until it is
// popped. Scenario engines that schedule and cancel many flap timers
// would otherwise bloat the heap with corpses.
func TestCancelRemovesFromHeap(t *testing.T) {
	var e Engine
	var timers []TimerRef
	for i := 0; i < 100; i++ {
		i := i
		timers = append(timers, e.Schedule(float64(i+1), func() { _ = i }))
	}
	if len(e.heap) != 100 {
		t.Fatalf("heap length %d after scheduling, want 100", len(e.heap))
	}
	// Cancel from the middle, the head, and the tail.
	for _, i := range []int{50, 0, 99, 25, 75} {
		timers[i].Cancel()
	}
	if len(e.heap) != 95 {
		t.Fatalf("heap length %d after 5 cancels, want 95", len(e.heap))
	}
	// Double-cancel is a no-op.
	timers[50].Cancel()
	if len(e.heap) != 95 {
		t.Fatalf("heap length %d after double cancel, want 95", len(e.heap))
	}
	// The survivors still fire, in order.
	fired := e.RunUntilIdle()
	if fired != 95 {
		t.Fatalf("fired %d timers, want 95", fired)
	}
	if len(e.heap) != 0 {
		t.Fatalf("heap length %d after drain, want 0", len(e.heap))
	}
	// Cancelling a fired timer is a no-op.
	timers[1].Cancel()
}

// TestCancelDuringHandler cancels a pending timer from inside another
// handler at the same timestamp; the heap must stay consistent and the
// cancelled timer must not fire.
func TestCancelDuringHandler(t *testing.T) {
	var e Engine
	firedB := false
	var b TimerRef
	e.Schedule(1, func() { b.Cancel() }) // same time, scheduled first: fires first (FIFO)
	b = e.Schedule(1, func() { firedB = true })
	e.RunUntilIdle()
	if firedB {
		t.Fatal("timer fired despite being cancelled by an earlier same-time handler")
	}
	if len(e.heap) != 0 {
		t.Fatalf("heap length %d after run, want 0", len(e.heap))
	}
}
