// Package sim provides the deterministic discrete-event engine that the
// packet-level simulator and the testbed emulation run on: a virtual
// clock, a cancellable timer heap, and periodic tasks. The paper's Matlab
// simulator and Click testbed are both reproduced on top of this engine —
// the former with the simplified CSMA/CA MAC of §5.1, the latter with the
// full EMPoWER node agents of §6.1.
//
// The engine is single-threaded by design: every event handler runs to
// completion before the next event fires, which keeps runs reproducible
// from a seed without locking.
package sim

import (
	"container/heap"
	"math"
)

// Timer is a scheduled callback; it can be cancelled before firing.
type Timer struct {
	at    float64
	seq   uint64
	fn    func()
	index int     // heap index, -1 when fired or cancelled
	owner *Engine // heap the timer lives in while scheduled
}

// Cancel prevents the timer from firing and removes it from the engine's
// heap immediately (via the tracked heap index), so workloads that
// schedule and cancel many timers — scenario engines flapping links, the
// emulation's per-flow send timers — don't accumulate dead entries until
// they are popped. Cancelling a fired or already-cancelled timer is a
// no-op.
func (t *Timer) Cancel() {
	if t.index >= 0 && t.owner != nil {
		heap.Remove(&t.owner.heap, t.index)
	}
	t.fn = nil
}

// When returns the virtual time the timer fires at.
func (t *Timer) When() float64 { return t.at }

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x interface{}) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is the event loop. The zero value is ready to use, starting at
// time 0.
type Engine struct {
	now  float64
	seq  uint64
	heap timerHeap
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled (uncancelled) timers.
func (e *Engine) Pending() int {
	n := 0
	for _, t := range e.heap {
		if t.fn != nil {
			n++
		}
	}
	return n
}

// Schedule runs fn after delay seconds of virtual time. A negative delay
// is treated as zero (fires at the current time, after currently-running
// handlers).
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	timer := &Timer{at: t, seq: e.seq, fn: fn, owner: e}
	heap.Push(&e.heap, timer)
	return timer
}

// Every schedules fn every interval seconds, starting after the first
// interval, until the returned Periodic is stopped.
func (e *Engine) Every(interval float64, fn func()) *Periodic {
	p := &Periodic{engine: e, interval: interval, fn: fn}
	p.arm()
	return p
}

// Periodic is a repeating task created by Every.
type Periodic struct {
	engine   *Engine
	interval float64
	fn       func()
	timer    *Timer
	stopped  bool
}

func (p *Periodic) arm() {
	p.timer = p.engine.Schedule(p.interval, func() {
		if p.stopped {
			return
		}
		p.fn()
		if !p.stopped {
			p.arm()
		}
	})
}

// Stop ends the periodic task.
func (p *Periodic) Stop() {
	p.stopped = true
	if p.timer != nil {
		p.timer.Cancel()
	}
}

// Run processes events until the virtual clock would pass `until`
// (inclusive), leaving later events queued. It returns the number of
// events processed.
func (e *Engine) Run(until float64) int {
	processed := 0
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.at
		if next.fn != nil {
			fn := next.fn
			next.fn = nil
			fn()
			processed++
		}
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// RunUntilIdle processes every queued event (including ones scheduled by
// handlers) and returns the count. It guards against runaway schedules
// with a generous event budget; exceeding it panics, which in practice
// flags an accidental infinite loop in a handler.
func (e *Engine) RunUntilIdle() int {
	const budget = 50_000_000
	processed := 0
	for len(e.heap) > 0 {
		next := heap.Pop(&e.heap).(*Timer)
		e.now = next.at
		if next.fn != nil {
			fn := next.fn
			next.fn = nil
			fn()
			processed++
			if processed > budget {
				panic("sim: event budget exceeded; runaway schedule?")
			}
		}
	}
	return processed
}

// NextEventTime returns the time of the earliest pending (uncancelled)
// event, or +Inf when the queue is empty. O(n); intended for tests and
// diagnostics.
func (e *Engine) NextEventTime() float64 {
	min := math.Inf(1)
	for _, t := range e.heap {
		if t.fn != nil && t.at < min {
			min = t.at
		}
	}
	return min
}
