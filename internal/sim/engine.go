// Package sim provides the deterministic discrete-event engine that the
// packet-level simulator and the testbed emulation run on: a virtual
// clock, a cancellable timer heap, and periodic tasks. The paper's Matlab
// simulator and Click testbed are both reproduced on top of this engine —
// the former with the simplified CSMA/CA MAC of §5.1, the latter with the
// full EMPoWER node agents of §6.1.
//
// The engine is single-threaded by design: every event handler runs to
// completion before the next event fires, which keeps runs reproducible
// from a seed without locking.
//
// Timers are pooled on a per-engine free list: steady-state workloads
// (per-packet send timers, MAC transmission completions) schedule and
// fire millions of timers without a single heap allocation. A fired or
// cancelled Timer returns to the pool and may be handed out again, so
// callers never hold a *Timer — they hold a TimerRef, a value handle
// carrying the generation at grant time. Cancelling a TimerRef whose
// timer was recycled is a no-op instead of killing the slot's new
// occupant.
package sim

import (
	"container/heap"
	"math"

	"repro/internal/obs"
)

// Timer is a scheduled callback slot. Timers are owned by the engine's
// pool; user code interacts with them through TimerRef handles.
type Timer struct {
	at  float64
	seq uint64
	// gen increments every time the slot is recycled; TimerRef handles
	// carry the generation at grant time so stale handles go inert.
	gen uint64
	// Exactly one of fn (closure form) or hfn (closure-free form) is set
	// while the timer is scheduled.
	fn    func()
	hfn   func(any)
	arg   any
	index int     // heap index, -1 when fired or cancelled
	owner *Engine // the engine whose pool owns this slot
}

// TimerRef is a handle to a scheduled timer. The zero value is inert:
// Cancel on it is a no-op. Handles are plain values — storing or copying
// them never allocates, which is what lets per-packet timers be
// rescheduled on the hot path for free.
type TimerRef struct {
	t   *Timer
	gen uint64
}

// Cancel prevents the timer from firing and removes it from the engine's
// heap immediately (via the tracked heap index), returning the slot to
// the pool. Cancelling a fired, already-cancelled, or zero handle is a
// no-op — in particular, a handle held across the timer's firing does
// not cancel the slot's next occupant.
func (r TimerRef) Cancel() {
	t := r.t
	if t == nil || t.gen != r.gen || t.index < 0 {
		return
	}
	heap.Remove(&t.owner.heap, t.index)
	t.owner.recycle(t)
}

// Active reports whether the handle still refers to a scheduled timer.
func (r TimerRef) Active() bool {
	return r.t != nil && r.t.gen == r.gen && r.t.index >= 0
}

// When returns the virtual time the timer fires at, or NaN for a handle
// whose timer already fired or was cancelled.
func (r TimerRef) When() float64 {
	if !r.Active() {
		return math.NaN()
	}
	return r.t.at
}

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x interface{}) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is the event loop. The zero value is ready to use, starting at
// time 0.
type Engine struct {
	now   float64
	seq   uint64
	heap  timerHeap
	free  []*Timer // recycled timer slots
	fired uint64   // intrinsic counter: events processed so far
	rec   *obs.Recorder
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events this engine has processed — an
// intrinsic counter sampled by the observability layer at barriers.
func (e *Engine) Fired() uint64 { return e.fired }

// FreeTimers returns the current timer pool occupancy (recycled slots
// waiting for reuse).
func (e *Engine) FreeTimers() int { return len(e.free) }

// SetRecorder attaches a flight recorder; every fired event writes one
// record. A nil recorder (the default) disables recording.
func (e *Engine) SetRecorder(r *obs.Recorder) { e.rec = r }

// Recorder returns the attached flight recorder, or nil.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Pending returns the number of scheduled timers. Cancel removes timers
// from the heap immediately, so every heap entry is live and this is
// O(1).
func (e *Engine) Pending() int { return len(e.heap) }

// NextEventTime returns the time of the earliest pending event, or +Inf
// when the queue is empty. O(1): the heap root is the earliest live
// timer (see Pending).
func (e *Engine) NextEventTime() float64 {
	if len(e.heap) == 0 {
		return math.Inf(1)
	}
	return e.heap[0].at
}

// alloc hands out a timer slot from the free list (or a fresh one).
func (e *Engine) alloc() *Timer {
	if n := len(e.free); n > 0 {
		t := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return t
	}
	return &Timer{owner: e}
}

// recycle returns a popped or removed slot to the pool. The generation
// bump is what invalidates outstanding TimerRef handles.
func (e *Engine) recycle(t *Timer) {
	t.gen++
	t.fn = nil
	t.hfn = nil
	t.arg = nil
	t.index = -1
	e.free = append(e.free, t)
}

// push allocates a slot at absolute time `at` with the next sequence
// number. The (at, seq) pair is assigned exactly as it always was —
// pooling recycles slots, never sequence numbers — so the heap's FIFO
// tie-break among simultaneous events is unchanged.
func (e *Engine) push(at float64) *Timer {
	if at < e.now {
		at = e.now
	}
	e.seq++
	t := e.alloc()
	t.at = at
	t.seq = e.seq
	heap.Push(&e.heap, t)
	return t
}

// Schedule runs fn after delay seconds of virtual time. A negative delay
// is treated as zero (fires at the current time, after currently-running
// handlers).
func (e *Engine) Schedule(delay float64, fn func()) TimerRef {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (clamped to now).
func (e *Engine) At(at float64, fn func()) TimerRef {
	t := e.push(at)
	t.fn = fn
	return TimerRef{t, t.gen}
}

// ScheduleFunc is the closure-free form of Schedule: fn is typically a
// package-level function and arg the state it operates on (a pointer
// fits in the interface without allocating). Hot paths that would
// otherwise capture a fresh closure per event — per-packet send timers,
// MAC completions — use this to stay allocation-free.
func (e *Engine) ScheduleFunc(delay float64, fn func(any), arg any) TimerRef {
	if delay < 0 {
		delay = 0
	}
	return e.AtFunc(e.now+delay, fn, arg)
}

// AtFunc is the closure-free form of At.
func (e *Engine) AtFunc(at float64, fn func(any), arg any) TimerRef {
	t := e.push(at)
	t.hfn = fn
	t.arg = arg
	return TimerRef{t, t.gen}
}

// Every schedules fn every interval seconds, starting after the first
// interval, until the returned Periodic is stopped.
func (e *Engine) Every(interval float64, fn func()) *Periodic {
	p := &Periodic{engine: e, interval: interval, fn: fn}
	p.arm()
	return p
}

// Periodic is a repeating task created by Every.
type Periodic struct {
	engine   *Engine
	interval float64
	fn       func()
	timer    TimerRef
	stopped  bool
}

// arm schedules the next firing through the closure-free path: the one
// Periodic allocation at Every covers every subsequent rearm.
func (p *Periodic) arm() {
	p.timer = p.engine.ScheduleFunc(p.interval, periodicTick, p)
}

func periodicTick(arg any) {
	p := arg.(*Periodic)
	if p.stopped {
		return
	}
	p.fn()
	if !p.stopped {
		p.arm()
	}
}

// Stop ends the periodic task.
func (p *Periodic) Stop() {
	p.stopped = true
	p.timer.Cancel()
}

// fire pops the heap root, advances the clock, recycles the slot, and
// runs the handler. The slot is recycled before the handler runs so a
// handler that immediately reschedules reuses it; any TimerRef to the
// firing timer went stale at the generation bump.
func (e *Engine) fire() {
	next := heap.Pop(&e.heap).(*Timer)
	e.now = next.at
	e.fired++
	if e.rec != nil {
		e.rec.Record(next.at, obs.RecTimerFire, 0, 0, 0)
	}
	fn, hfn, arg := next.fn, next.hfn, next.arg
	e.recycle(next)
	if hfn != nil {
		hfn(arg)
	} else if fn != nil {
		fn()
	}
}

// Run processes events until the virtual clock would pass `until`
// (inclusive), leaving later events queued. It returns the number of
// events processed.
func (e *Engine) Run(until float64) int {
	processed := 0
	for len(e.heap) > 0 && e.heap[0].at <= until {
		e.fire()
		processed++
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// RunBefore processes events strictly before `until`, leaving the clock
// at the last processed event instead of clamping it forward. It is the
// window primitive of the sharded coordinator: a shard may only process
// events below its conservative horizon, and must not advance its clock
// to the horizon itself — a cross-shard event may still arrive exactly
// there.
func (e *Engine) RunBefore(until float64) int {
	processed := 0
	for len(e.heap) > 0 && e.heap[0].at < until {
		e.fire()
		processed++
	}
	return processed
}

// RunUntilIdle processes every queued event (including ones scheduled by
// handlers) and returns the count. It guards against runaway schedules
// with a generous event budget; exceeding it panics, which in practice
// flags an accidental infinite loop in a handler.
func (e *Engine) RunUntilIdle() int {
	const budget = 50_000_000
	processed := 0
	for len(e.heap) > 0 {
		e.fire()
		processed++
		if processed > budget {
			panic("sim: event budget exceeded; runaway schedule?")
		}
	}
	return processed
}
