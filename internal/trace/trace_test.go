package trace

import (
	"strings"
	"testing"
)

func TestTableBasic(t *testing.T) {
	tb := NewTable("a", "b")
	if err := tb.AddRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow(3, 4); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.Rows())
	}
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (header + 2)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# a\tb") {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1\t2" || lines[2] != "3\t4" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestTableArityErrors(t *testing.T) {
	tb := NewTable("a", "b")
	if err := tb.AddRow(1); err == nil {
		t.Error("short row accepted")
	}
	if err := tb.AddColumnwise([]float64{1}); err == nil {
		t.Error("wrong column count accepted")
	}
	if err := tb.AddColumnwise([]float64{1, 2}, []float64{3}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestTableSeparator(t *testing.T) {
	tb := NewTable("x", "y")
	tb.SetSeparator(",")
	tb.AddRow(1, 2)
	if !strings.Contains(tb.String(), "1,2") {
		t.Errorf("custom separator not applied: %q", tb.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable()
	if tb.Rows() != 0 {
		t.Error("empty table has rows")
	}
	if !strings.HasPrefix(tb.String(), "# ") {
		t.Error("empty table should still render a header")
	}
}

func TestWriteCDF(t *testing.T) {
	var b strings.Builder
	if _, err := WriteCDF(&b, []float64{3, 1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1\t") {
		t.Errorf("first row = %q, want sorted values", lines[1])
	}
	// Down-sampling.
	var c strings.Builder
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	WriteCDF(&c, xs, 10)
	if n := len(strings.Split(strings.TrimSpace(c.String()), "\n")); n != 11 {
		t.Errorf("downsampled lines = %d, want 11", n)
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	if _, err := WriteSeries(&b, "rate", []float64{0, 1}, []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# t\trate") {
		t.Errorf("header missing: %q", b.String())
	}
	if _, err := WriteSeries(&b, "rate", []float64{0}, []float64{5, 6}); err == nil {
		t.Error("length mismatch accepted")
	}
}
