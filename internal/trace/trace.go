// Package trace exports experiment results as delimiter-separated values
// so the regenerated figures can be plotted with standard tools (gnuplot,
// matplotlib, R). Each writer produces a header row followed by aligned
// data rows; columns are tab-separated by default.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Table accumulates named columns of equal length and writes them as TSV.
type Table struct {
	names []string
	cols  [][]float64
	sep   string
}

// NewTable creates a table with the given column names.
func NewTable(names ...string) *Table {
	t := &Table{names: names, sep: "\t"}
	t.cols = make([][]float64, len(names))
	return t
}

// SetSeparator changes the column separator (default tab).
func (t *Table) SetSeparator(sep string) { t.sep = sep }

// AddRow appends one value per column. It returns an error on arity
// mismatch, which is always a programming error worth surfacing.
func (t *Table) AddRow(values ...float64) error {
	if len(values) != len(t.names) {
		return fmt.Errorf("trace: row has %d values, table has %d columns", len(values), len(t.names))
	}
	for i, v := range values {
		t.cols[i] = append(t.cols[i], v)
	}
	return nil
}

// AddColumnwise appends whole columns at once; all columns must have the
// same length.
func (t *Table) AddColumnwise(cols ...[]float64) error {
	if len(cols) != len(t.names) {
		return fmt.Errorf("trace: %d columns given, table has %d", len(cols), len(t.names))
	}
	n := -1
	for _, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("trace: ragged columns (%d vs %d)", len(c), n)
		}
	}
	for i, c := range cols {
		t.cols[i] = append(t.cols[i], c...)
	}
	return nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// WriteTo implements io.WriterTo: header then rows.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintln(w, "# "+strings.Join(t.names, t.sep))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for r := 0; r < t.Rows(); r++ {
		parts := make([]string, len(t.cols))
		for c := range t.cols {
			parts[c] = strconv.FormatFloat(t.cols[c][r], 'g', 6, 64)
		}
		n, err := fmt.Fprintln(w, strings.Join(parts, t.sep))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// WriteCDF writes an empirical CDF of xs as a two-column table
// ("value", "cdf"), down-sampled to at most points rows (0 = all).
func WriteCDF(w io.Writer, xs []float64, points int) (int64, error) {
	c := stats.NewCDF(xs)
	if points > 0 {
		c = c.Points(points)
	}
	t := NewTable("value", "cdf")
	if err := t.AddColumnwise(c.X, c.P); err != nil {
		return 0, err
	}
	return t.WriteTo(w)
}

// WriteSeries writes a time series as ("t", name) columns.
func WriteSeries(w io.Writer, name string, ts, values []float64) (int64, error) {
	if len(ts) != len(values) {
		return 0, fmt.Errorf("trace: series lengths differ: %d vs %d", len(ts), len(values))
	}
	t := NewTable("t", name)
	if err := t.AddColumnwise(ts, values); err != nil {
		return 0, err
	}
	return t.WriteTo(w)
}
