package fuzz

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// TestGenerateDeterministic pins the generator's seed contract: the
// same stream yields the same scenario, and every generated scenario
// passes the schema's own validation (a scenario that cannot bind is a
// generator bug, not a fuzzing finding).
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		r1 := stats.NewRand(stats.SplitSeed(1, seedGenerate+i))
		r2 := stats.NewRand(stats.SplitSeed(1, seedGenerate+i))
		s1 := Generate(r1, 12)
		s2 := Generate(r2, 12)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("run %d: same seed generated different scenarios", i)
		}
		if err := s1.Validate(); err != nil {
			t.Fatalf("run %d: generated scenario fails validation: %v", i, err)
		}
		if len(s1.Flows) == 0 && len(s1.Processes) == 0 {
			t.Fatalf("run %d: generated scenario has neither flows nor processes", i)
		}
	}
}

// TestCleanSession runs a short fuzzing session with no injected
// defect: every scenario must pass all oracles.
func TestCleanSession(t *testing.T) {
	if testing.Short() {
		t.Skip("each fuzz run emulates three full trajectories")
	}
	res, err := Run(Config{Runs: 3, Seed: 1, OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		t.Fatalf("clean session failed %s: %s (repro %s)",
			res.Failure.Check, res.Failure.Detail, res.Failure.Repro)
	}
	if res.Clean != 3 {
		t.Fatalf("clean count %d, want 3", res.Clean)
	}
}

// TestInjectCounterCaught seeds a deliberate relay-counter corruption
// and demands the invariant oracle catch it and write a reproducer that
// reloads through the strict schema — the checker self-test the
// acceptance criteria ask for.
func TestInjectCounterCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("each fuzz run emulates three full trajectories")
	}
	res, err := Run(Config{Runs: 1, Seed: 1, OutDir: t.TempDir(), Inject: InjectCounter})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("injected counter corruption went uncaught")
	}
	if res.Failure.Check != "invariant:flow-conservation" {
		t.Fatalf("caught as %q, want invariant:flow-conservation (detail: %s)",
			res.Failure.Check, res.Failure.Detail)
	}
	if res.Failure.Repro == "" {
		t.Fatalf("no reproducer written: %s", res.Failure.Detail)
	}
	if _, err := scenario.Load(res.Failure.Repro); err != nil {
		t.Fatalf("reproducer does not reload through the strict schema: %v", err)
	}
}

// TestInjectSeedCaught perturbs the differential arm's seeds and
// demands the shards=1 vs shards=4 signature comparison flag the
// divergence.
func TestInjectSeedCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("each fuzz run emulates three full trajectories")
	}
	res, err := Run(Config{Runs: 1, Seed: 1, OutDir: t.TempDir(), Inject: InjectSeed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("injected seed divergence went uncaught")
	}
	if res.Failure.Check != "differential" {
		t.Fatalf("caught as %q, want differential (detail: %s)",
			res.Failure.Check, res.Failure.Detail)
	}
	if res.Failure.Repro == "" {
		t.Fatalf("no reproducer written: %s", res.Failure.Detail)
	}
	if _, err := scenario.Load(res.Failure.Repro); err != nil {
		t.Fatalf("reproducer does not reload through the strict schema: %v", err)
	}
}
